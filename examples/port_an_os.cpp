// Example: one OS, three substrates — the port layer in action.
//
// MiniOS contains no substrate-specific code; everything architectural
// lives behind minios::ArchPort. This example boots the same OS on the bare
// machine, on the microkernel, and on the VMM, runs the same program, and
// shows what each port turned the program's system calls into. It then
// boots the microkernel stack on every simulated platform to demonstrate
// the §2.2 portability claim.
//
//   ./build/examples/port_an_os

#include <cstdio>

#include "src/experiments/table.h"
#include "src/stacks/native_stack.h"
#include "src/stacks/ukernel_stack.h"
#include "src/stacks/vmm_stack.h"

namespace {

// The "application": completely ordinary MiniOS user code.
void TheProgram(minios::Os& os, ukvm::ProcessId pid) {
  std::vector<uint8_t> hello = {'h', 'i', '\n'};
  (void)os.Write(pid, 1, hello);                       // console
  const auto fd = os.Create(pid, "notes.txt");         // storage
  std::vector<uint8_t> note = {'p', 'o', 'r', 't'};
  (void)os.Write(pid, fd, note);
  (void)os.Close(pid, fd);
  (void)os.NetSend(pid, 80, 7, note);                  // network
  (void)os.GetPid(pid);
}

void Report(const char* substrate, hwsim::Machine& machine,
            const ukvm::CrossingSnapshot& before) {
  const auto diff = ukvm::DiffSnapshots(before, machine.ledger().Snapshot());
  std::printf("\n[%s] the same five-line program became:\n", substrate);
  for (const auto& mech : diff.mechanisms) {
    if (mech.count > 0) {
      std::printf("    %-22s x%llu\n", mech.name.c_str(),
                  static_cast<unsigned long long>(mech.count));
    }
  }
}

}  // namespace

int main() {
  std::printf("port_an_os: the ArchPort boundary keeps MiniOS substrate-agnostic\n");

  {
    ustack::NativeStack stack;
    auto pid = stack.os().Spawn("program");
    const auto before = stack.machine().ledger().Snapshot();
    TheProgram(stack.os(), *pid);
    stack.machine().RunUntilIdle();
    Report("native port", stack.machine(), before);
  }
  {
    ustack::UkernelStack stack;
    auto pid = stack.guest_os(0).Spawn("program");
    const auto before = stack.machine().ledger().Snapshot();
    stack.RunAsApp(0, [&] { TheProgram(stack.guest_os(0), *pid); });
    stack.machine().RunUntilIdle();
    Report("ukernel port (L4Linux-style)", stack.machine(), before);
  }
  {
    ustack::VmmStack stack;
    auto pid = stack.guest_os(0).Spawn("program");
    const auto before = stack.machine().ledger().Snapshot();
    stack.RunAsApp(0, [&] { TheProgram(stack.guest_os(0), *pid); });
    stack.machine().RunUntilIdle();
    Report("vmm port (paravirtual)", stack.machine(), before);
  }

  // The portability sweep: identical sources, six platforms.
  uharness::Table table("microkernel stack across platforms (no code changes)",
                        {"platform", "page size", "program ran"});
  for (const hwsim::Platform& platform : hwsim::AllPlatforms()) {
    ustack::UkernelStack::Config config;
    config.platform = platform;
    ustack::UkernelStack stack(config);
    bool ok = stack.guest(0).booted;
    if (ok) {
      stack.RunAsApp(0, [&] {
        auto pid = stack.guest_os(0).Spawn("program");
        TheProgram(stack.guest_os(0), *pid);
        ok = stack.guest_os(0).Open(*pid, "notes.txt") >= 0;
      });
    }
    table.AddRow({platform.name, uharness::FmtInt(platform.page_size()), ok ? "yes" : "NO"});
  }
  table.Print();

  std::printf(
      "\n'Software that is written for an L4 microkernel naturally runs on nine\n"
      "different processor platforms' (section 2.2) — here, six simulated ones,\n"
      "from a single source tree.\n");
  return 0;
}
