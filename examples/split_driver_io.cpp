// Example: anatomy of one network receive through Xen-style split drivers.
//
// Walks a single packet from the wire to a guest application, narrating
// every protection-domain crossing on the way — the round trip through Dom0
// that §3.2 of Heiser et al. identifies as "nothing else than a form of
// asynchronous IPC". Run it twice to compare the page-flipping and
// grant-copy receive paths.
//
//   ./build/examples/split_driver_io

#include <cstdio>

#include "src/experiments/table.h"
#include "src/stacks/vmm_stack.h"
#include "src/workloads/netio.h"

namespace {

void TraceOnePacket(ustack::RxMode mode) {
  std::printf("\n=== receive path with %s ===\n", ustack::RxModeName(mode));

  ustack::VmmStack::Config config;
  config.rx_mode = mode;
  ustack::VmmStack stack(config);
  uwork::WireHost wire(stack.machine(), stack.nic());
  stack.RouteWirePort(40, 0);

  auto& machine = stack.machine();
  auto& ledger = machine.ledger();

  stack.RunAsApp(0, [&] {
    auto& os = stack.guest_os(0);
    auto pid = os.Spawn("listener");
    (void)os.NetBind(*pid, 40);

    const auto before = ledger.Snapshot();
    const uint64_t t0 = machine.Now();
    const uint64_t dom0_before = machine.accounting().CyclesOf(stack.dom0());

    // One 1460-byte packet arrives from the wire.
    wire.StartStream(/*dst_port=*/40, /*payload_size=*/1460, /*interval=*/10, /*count=*/1);
    machine.RunUntilIdle();

    std::vector<uint8_t> buf(2048);
    const auto n = os.NetRecv(*pid, 40, buf);
    std::printf("guest application received %lld bytes\n", static_cast<long long>(n));

    const auto diff = ukvm::DiffSnapshots(before, ledger.Snapshot());
    uharness::Table table("crossings for ONE inbound packet",
                          {"mechanism", "kind", "count", "bytes"});
    for (const auto& mech : diff.mechanisms) {
      if (mech.count > 0) {
        table.AddRow({mech.name, ukvm::CrossingKindName(mech.kind),
                      uharness::FmtInt(mech.count), uharness::FmtInt(mech.bytes)});
      }
    }
    table.Print();
    std::printf("elapsed: %s simulated cycles; Dom0 consumed %s of them\n",
                uharness::FmtCycles(machine.Now() - t0).c_str(),
                uharness::FmtCycles(machine.accounting().CyclesOf(stack.dom0()) - dom0_before)
                    .c_str());
  });
}

}  // namespace

int main() {
  std::printf(
      "split_driver_io: one packet, wire -> NIC -> Dom0 driver -> netback -> %s\n"
      "-> netfront -> guest netstack -> application.\n",
      "flip/copy");
  TraceOnePacket(ustack::RxMode::kPageFlip);
  TraceOnePacket(ustack::RxMode::kGrantCopy);
  std::printf(
      "\nNote the round trip: hardware IRQ to Dom0, then an event-channel notification\n"
      "back into the guest — at least one inter-VM round trip per I/O, exactly the\n"
      "paper's point about Xen's Dom0 architecture.\n");
  return 0;
}
