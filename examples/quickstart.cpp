// Quickstart: boots all three systems — native MiniOS, MiniOS on the
// L4-style microkernel (L4Linux-style), and MiniOS as a paravirtual guest
// of the Xen-style VMM — runs the same small workload on each, and prints
// what the paper argues about: how many protection-domain crossings each
// architecture performed, by which mechanisms.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "src/experiments/table.h"
#include "src/stacks/native_stack.h"
#include "src/stacks/ukernel_stack.h"
#include "src/stacks/vmm_stack.h"
#include "src/workloads/netio.h"
#include "src/workloads/oswork.h"

namespace {

struct RunOutcome {
  uwork::WorkloadResult work;
  ukvm::CrossingSnapshot crossings;
};

template <typename StackT>
RunOutcome RunWorkload(StackT& stack, minios::Os& os, hwsim::Machine& machine) {
  uwork::WireHost wire(machine, stack.nic());
  auto pid = os.Spawn("quickstart");
  const ukvm::CrossingSnapshot before = machine.ledger().Snapshot();
  RunOutcome outcome;
  outcome.work = uwork::RunMixedWorkload(machine, os, *pid, /*dst_port=*/40);
  machine.RunUntilIdle();
  outcome.crossings = ukvm::DiffSnapshots(before, machine.ledger().Snapshot());
  return outcome;
}

void PrintOutcome(const char* name, const RunOutcome& outcome) {
  std::printf("\n--- %s ---\n", name);
  std::printf("workload: %llu/%llu ops succeeded, %s simulated cycles\n",
              static_cast<unsigned long long>(outcome.work.ops_succeeded),
              static_cast<unsigned long long>(outcome.work.ops_attempted),
              uharness::FmtCycles(outcome.work.cycles).c_str());
  uharness::Table table(std::string(name) + ": crossings by mechanism",
                        {"mechanism", "kind", "count", "bytes"});
  for (const auto& mech : outcome.crossings.mechanisms) {
    if (mech.count == 0) {
      continue;
    }
    table.AddRow({mech.name, ukvm::CrossingKindName(mech.kind), uharness::FmtInt(mech.count),
                  uharness::FmtInt(mech.bytes)});
  }
  table.Print();
  std::printf("total crossings (IPC-like): %s\n",
              uharness::FmtInt(outcome.crossings.IpcLikeCount()).c_str());
}

}  // namespace

int main() {
  std::printf("ukvm quickstart: one OS, three substrates\n");

  // 1. Native baseline.
  ustack::NativeStack native;
  RunOutcome native_out = RunWorkload(native, native.os(), native.machine());
  PrintOutcome("native", native_out);

  // 2. Microkernel (L4Linux-style).
  ustack::UkernelStack uk;
  RunOutcome uk_out;
  uk.RunAsApp(0, [&] { uk_out = RunWorkload(uk, uk.guest_os(0), uk.machine()); });
  PrintOutcome("microkernel", uk_out);

  // 3. VMM (Xen-style, page-flipping receive path).
  ustack::VmmStack vmm;
  RunOutcome vmm_out;
  vmm.RunAsApp(0, [&] { vmm_out = RunWorkload(vmm, vmm.guest_os(0), vmm.machine()); });
  PrintOutcome("vmm", vmm_out);

  std::printf(
      "\nHeiser et al.'s point (section 3.2): the VMM performs essentially the same\n"
      "number of IPC operations as the microkernel — it just calls them hypercalls,\n"
      "event channels, and page flips.\n");
  return 0;
}
