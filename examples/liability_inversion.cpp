// Example: the liability-inversion argument, §3.1, made runnable.
//
// Hand et al. argued microkernels suffer "liability inversion" (the kernel
// depending on user-level code) and that Xen avoids it. Heiser et al.
// counter with Hand's own Parallax: a storage VM serving other VMs is
// exactly a microkernel-style user-level server, with exactly the same
// failure semantics. This example builds both systems, kills the storage
// service in each, and shows the identical blast radius — then kills Dom0
// to show the one configuration that really is worse.
//
//   ./build/examples/liability_inversion

#include <cstdio>

#include "src/stacks/ukernel_stack.h"
#include "src/stacks/vmm_stack.h"

namespace {

using minios::ErrOf;

template <typename StackT>
void Probe(const char* label, StackT& stack, size_t guest) {
  stack.RunAsApp(guest, [&] {
    auto& os = stack.guest_os(guest);
    auto pid = os.Spawn("probe");
    const bool syscalls = os.Null(*pid) == 0;
    std::vector<uint8_t> p = {1, 2, 3};
    const bool net = os.NetSend(*pid, 80, 7, p) == 3;
    const bool disk = os.Create(*pid, "probe") >= 0;
    std::printf("  %-28s syscalls:%-4s network:%-4s storage:%-4s\n", label,
                syscalls ? "OK" : "DEAD", net ? "OK" : "DEAD", disk ? "OK" : "DEAD");
  });
}

}  // namespace

int main() {
  std::printf("liability_inversion: kill the storage service, watch who suffers\n");

  std::printf("\n--- microkernel: user-level block server dies ---\n");
  {
    ustack::UkernelStack::Config c;
    c.num_guests = 2;
    ustack::UkernelStack stack(c);
    Probe("guest0 before", stack, 0);
    (void)stack.KillBlockServer();
    std::printf("  >>> block server killed <<<\n");
    Probe("guest0 after", stack, 0);
    Probe("guest1 after", stack, 1);
  }

  std::printf("\n--- VMM: Parallax-style storage VM dies ---\n");
  {
    ustack::VmmStack::Config c;
    c.num_guests = 2;
    c.parallax_storage = true;
    ustack::VmmStack stack(c);
    Probe("guest0 before", stack, 0);
    (void)stack.KillStorage();
    std::printf("  >>> Parallax storage VM killed <<<\n");
    Probe("guest0 after", stack, 0);
    Probe("guest1 after", stack, 1);
  }

  std::printf(
      "\nIdentical semantics: storage gone, everything else intact, in BOTH systems.\n"
      "'Exactly the same situation as if a server fails in an L4-based system' (3.1).\n");

  std::printf("\n--- VMM without disaggregation: the super-VM (Dom0) dies ---\n");
  {
    ustack::VmmStack::Config c;
    c.num_guests = 2;
    ustack::VmmStack stack(c);
    Probe("guest0 before", stack, 0);
    (void)stack.KillDom0();
    std::printf("  >>> Dom0 killed <<<\n");
    Probe("guest0 after", stack, 0);
    Probe("guest1 after", stack, 1);
  }
  std::printf(
      "\nWith drivers AND storage colocated in Dom0, one failure is a system-wide I/O\n"
      "outage — the 'centralized super-VM ... single point of failure' of section 2.2.\n");
  return 0;
}
