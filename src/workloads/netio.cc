#include "src/workloads/netio.h"

#include "src/os/netstack.h"

namespace uwork {

WireHost::WireHost(hwsim::Machine& machine, hwsim::Nic& nic) : machine_(machine), nic_(nic) {
  nic_.SetPeer([this](std::vector<uint8_t> packet) { OnPacket(std::move(packet)); });
}

void WireHost::OnPacket(std::vector<uint8_t> packet) {
  ++packets_received_;
  bytes_received_ += packet.size();
  if (echo_) {
    minios::ParsedPacket parsed;
    if (minios::ParsePacket(packet, parsed)) {
      std::vector<uint8_t> reply = minios::BuildPacket(parsed.src_port, parsed.dst_port,
                                                       parsed.payload);
      nic_.InjectPacket(reply);
    }
  }
  if (capture_) {
    captured_.push_back(std::move(packet));
  }
}

void WireHost::StartStream(uint16_t dst_port, uint32_t payload_size, uint64_t interval_cycles,
                           uint64_t count) {
  if (count == 0) {
    return;
  }
  InjectNext(dst_port, payload_size, interval_cycles, count, 0);
}

void WireHost::InjectNext(uint16_t dst_port, uint32_t payload_size, uint64_t interval_cycles,
                          uint64_t remaining, uint64_t seq) {
  machine_.ScheduleAfter(interval_cycles, [=, this] {
    std::vector<uint8_t> payload(payload_size);
    for (uint32_t i = 0; i < payload_size; ++i) {
      payload[i] = PatternByte(seq, i);
    }
    nic_.InjectPacket(minios::BuildPacket(dst_port, /*src_port=*/9999, payload));
    ++packets_injected_;
    if (remaining > 1) {
      InjectNext(dst_port, payload_size, interval_cycles, remaining - 1, seq + 1);
    }
  });
}

}  // namespace uwork
