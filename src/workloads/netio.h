// Wire-side traffic generation and sinking (the "remote host" of a
// netperf-style experiment, as in Cherkasova & Gardner's setup).

#ifndef UKVM_SRC_WORKLOADS_NETIO_H_
#define UKVM_SRC_WORKLOADS_NETIO_H_

#include <cstdint>
#include <vector>

#include "src/hw/machine.h"
#include "src/hw/nic.h"

namespace uwork {

class WireHost {
 public:
  // Attaches to `nic` as its wire peer: transmitted packets arrive here;
  // injected packets arrive at the NIC.
  WireHost(hwsim::Machine& machine, hwsim::Nic& nic);

  // --- Sink side --------------------------------------------------------------

  uint64_t packets_received() const { return packets_received_; }
  uint64_t bytes_received() const { return bytes_received_; }
  void SetCapture(bool capture) { capture_ = capture; }
  const std::vector<std::vector<uint8_t>>& captured() const { return captured_; }

  // Echo mode: received packets are reflected back with src/dst ports
  // swapped (for round-trip experiments).
  void SetEcho(bool echo) { echo_ = echo; }

  // --- Generator side -----------------------------------------------------------

  // Streams `count` datagrams of `payload_size` bytes to `dst_port`, one
  // every `interval_cycles`. Payload bytes carry a deterministic pattern
  // checkable by receivers.
  void StartStream(uint16_t dst_port, uint32_t payload_size, uint64_t interval_cycles,
                   uint64_t count);

  uint64_t packets_injected() const { return packets_injected_; }

  // The deterministic payload byte at position `i` of stream packet `seq`.
  static uint8_t PatternByte(uint64_t seq, uint32_t i) {
    return static_cast<uint8_t>((seq * 131 + i * 7 + 3) & 0xff);
  }

 private:
  void OnPacket(std::vector<uint8_t> packet);
  void InjectNext(uint16_t dst_port, uint32_t payload_size, uint64_t interval_cycles,
                  uint64_t remaining, uint64_t seq);

  hwsim::Machine& machine_;
  hwsim::Nic& nic_;
  bool capture_ = false;
  bool echo_ = false;
  uint64_t packets_received_ = 0;
  uint64_t bytes_received_ = 0;
  uint64_t packets_injected_ = 0;
  std::vector<std::vector<uint8_t>> captured_;
};

}  // namespace uwork

#endif  // UKVM_SRC_WORKLOADS_NETIO_H_
