#include "src/workloads/oswork.h"

#include <vector>

namespace uwork {

using minios::Os;
using minios::SyscallRet;
using ukvm::Err;
using ukvm::ProcessId;

namespace {

void Note(WorkloadResult& result, SyscallRet ret) {
  ++result.ops_attempted;
  if (ret >= 0) {
    ++result.ops_succeeded;
  } else if (result.first_error == Err::kNone) {
    result.first_error = minios::ErrOf(ret);
  }
}

void NoteBool(WorkloadResult& result, bool ok, Err err) {
  ++result.ops_attempted;
  if (ok) {
    ++result.ops_succeeded;
  } else if (result.first_error == Err::kNone) {
    result.first_error = err;
  }
}

}  // namespace

WorkloadResult RunNullSyscalls(hwsim::Machine& machine, Os& os, ProcessId pid, uint64_t count) {
  WorkloadResult result;
  const uint64_t t0 = machine.Now();
  for (uint64_t i = 0; i < count; ++i) {
    Note(result, os.Null(pid));
  }
  result.cycles = machine.Now() - t0;
  return result;
}

WorkloadResult RunFileChurn(hwsim::Machine& machine, Os& os, ProcessId pid, uint32_t files,
                            uint32_t bytes_per_file, const std::string& prefix) {
  WorkloadResult result;
  const uint64_t t0 = machine.Now();
  std::vector<uint8_t> data(bytes_per_file);
  std::vector<uint8_t> back(bytes_per_file);
  for (uint32_t f = 0; f < files; ++f) {
    for (uint32_t i = 0; i < bytes_per_file; ++i) {
      data[i] = static_cast<uint8_t>((f * 31 + i) & 0xff);
    }
    const std::string name = prefix + std::to_string(f);
    const SyscallRet fd = os.Create(pid, name);
    Note(result, fd);
    if (fd < 0) {
      continue;
    }
    Note(result, os.Write(pid, fd, data));
    Note(result, os.Seek(pid, fd, 0));
    const SyscallRet nread = os.Read(pid, fd, back);
    Note(result, nread);
    NoteBool(result,
             nread == static_cast<SyscallRet>(bytes_per_file) && back == data,
             Err::kFault);
    Note(result, os.Close(pid, fd));
    Note(result, os.Unlink(pid, name));
  }
  result.cycles = machine.Now() - t0;
  return result;
}

WorkloadResult RunUdpSend(hwsim::Machine& machine, Os& os, ProcessId pid, uint16_t dst_port,
                          uint32_t payload_size, uint64_t count) {
  WorkloadResult result;
  const uint64_t t0 = machine.Now();
  std::vector<uint8_t> payload(payload_size);
  for (uint64_t i = 0; i < count; ++i) {
    for (uint32_t b = 0; b < payload_size; ++b) {
      payload[b] = static_cast<uint8_t>((i + b) & 0xff);
    }
    Note(result, os.NetSend(pid, dst_port, /*src_port=*/7, payload));
    // Let DMA/wire events drain so NIC buffers recycle.
    machine.RunFor(hwsim::kCyclesPerUs);
  }
  result.cycles = machine.Now() - t0;
  return result;
}

WorkloadResult RunUdpReceive(hwsim::Machine& machine, Os& os, ProcessId pid, uint16_t port,
                             uint64_t count, uint64_t timeout_cycles) {
  WorkloadResult result;
  const uint64_t t0 = machine.Now();
  const uint64_t deadline = t0 + timeout_cycles;
  std::vector<uint8_t> buf(2048);
  while (result.ops_succeeded < count && machine.Now() < deadline) {
    // Model a blocked receiver: sleep (simulated) until the net stack has
    // queued a datagram, then issue one receive syscall. The wait itself
    // costs no guest CPU — that is what a blocking socket buys.
    if (os.net().QueuedOn(port) == 0) {
      const Err wait = machine.WaitUntil([&] { return os.net().QueuedOn(port) > 0; },
                                         deadline - machine.Now());
      if (wait != Err::kNone) {
        break;
      }
    }
    const SyscallRet n = os.NetRecv(pid, port, buf);
    ++result.ops_attempted;
    if (n >= 0) {
      ++result.ops_succeeded;
    } else if (minios::ErrOf(n) != Err::kWouldBlock) {
      if (result.first_error == Err::kNone) {
        result.first_error = minios::ErrOf(n);
      }
      break;
    }
  }
  result.cycles = machine.Now() - t0;
  return result;
}

WorkloadResult RunMixedWorkload(hwsim::Machine& machine, Os& os, ProcessId pid,
                                uint16_t dst_port) {
  WorkloadResult result;
  const uint64_t t0 = machine.Now();
  auto merge = [&result](const WorkloadResult& r) {
    result.ops_attempted += r.ops_attempted;
    result.ops_succeeded += r.ops_succeeded;
    if (result.first_error == Err::kNone) {
      result.first_error = r.first_error;
    }
  };
  merge(RunNullSyscalls(machine, os, pid, 200));
  merge(RunFileChurn(machine, os, pid, /*files=*/4, /*bytes_per_file=*/2048, "mixed"));
  merge(RunUdpSend(machine, os, pid, dst_port, /*payload_size=*/512, /*count=*/50));
  result.cycles = machine.Now() - t0;
  return result;
}

}  // namespace uwork
