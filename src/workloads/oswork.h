// OS-level workloads shared by the crossing-count (E4) and fault-isolation
// (E5) experiments: syscall loops, file churn, and datagram streams, all
// expressed against the MiniOS API so they run unchanged on every stack.

#ifndef UKVM_SRC_WORKLOADS_OSWORK_H_
#define UKVM_SRC_WORKLOADS_OSWORK_H_

#include <cstdint>
#include <string>

#include "src/core/error.h"
#include "src/os/kernel.h"

namespace uwork {

struct WorkloadResult {
  uint64_t ops_attempted = 0;
  uint64_t ops_succeeded = 0;
  uint64_t cycles = 0;  // simulated cycles consumed by the workload
  ukvm::Err first_error = ukvm::Err::kNone;

  double SuccessRate() const {
    return ops_attempted == 0
               ? 1.0
               : static_cast<double>(ops_succeeded) / static_cast<double>(ops_attempted);
  }
};

// `count` null system calls.
WorkloadResult RunNullSyscalls(hwsim::Machine& machine, minios::Os& os, ukvm::ProcessId pid,
                               uint64_t count);

// Creates `files` files, writes `bytes_per_file` to each, reads them back
// verifying contents, and unlinks them.
WorkloadResult RunFileChurn(hwsim::Machine& machine, minios::Os& os, ukvm::ProcessId pid,
                            uint32_t files, uint32_t bytes_per_file, const std::string& prefix);

// Sends `count` datagrams of `payload_size` bytes to `dst_port`.
WorkloadResult RunUdpSend(hwsim::Machine& machine, minios::Os& os, ukvm::ProcessId pid,
                          uint16_t dst_port, uint32_t payload_size, uint64_t count);

// Receives until `count` datagrams arrived on `port` or `timeout_cycles`
// passed (pumping simulated time while waiting).
WorkloadResult RunUdpReceive(hwsim::Machine& machine, minios::Os& os, ukvm::ProcessId pid,
                             uint16_t port, uint64_t count, uint64_t timeout_cycles);

// The fixed mixed workload used for the crossing-equivalence experiment:
// a deterministic blend of null syscalls, file churn, and datagram sends.
WorkloadResult RunMixedWorkload(hwsim::Machine& machine, minios::Os& os, ukvm::ProcessId pid,
                                uint16_t dst_port);

}  // namespace uwork

#endif  // UKVM_SRC_WORKLOADS_OSWORK_H_
