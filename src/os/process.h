// MiniOS processes and file descriptors.

#ifndef UKVM_SRC_OS_PROCESS_H_
#define UKVM_SRC_OS_PROCESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/ids.h"

namespace minios {

enum class ProcState : uint8_t { kReady, kRunning, kBlocked, kZombie };

struct FileHandle {
  bool open = false;
  bool is_console = false;
  uint32_t inode = 0;
  uint64_t offset = 0;
};

struct Process {
  ukvm::ProcessId pid;
  std::string name;
  ProcState state = ProcState::kReady;
  int64_t exit_code = 0;
  uint32_t priority = 128;
  std::vector<FileHandle> fds;  // fd 0/1 are the console
  uint64_t syscalls_made = 0;

  Process(ukvm::ProcessId pid_in, std::string name_in)
      : pid(pid_in), name(std::move(name_in)), fds(2) {
    fds[0].open = true;
    fds[0].is_console = true;
    fds[1].open = true;
    fds[1].is_console = true;
  }
};

}  // namespace minios

#endif  // UKVM_SRC_OS_PROCESS_H_
