#include "src/os/kernel.h"

#include <cstring>

#include "src/core/log.h"

namespace minios {

using ukvm::Err;
using ukvm::ProcessId;
using ukvm::Result;

const char* SysName(Sys nr) {
  switch (nr) {
    case Sys::kNull:
      return "null";
    case Sys::kExit:
      return "exit";
    case Sys::kGetPid:
      return "getpid";
    case Sys::kYield:
      return "yield";
    case Sys::kGetTime:
      return "gettime";
    case Sys::kOpen:
      return "open";
    case Sys::kCreate:
      return "create";
    case Sys::kClose:
      return "close";
    case Sys::kRead:
      return "read";
    case Sys::kWrite:
      return "write";
    case Sys::kUnlink:
      return "unlink";
    case Sys::kStat:
      return "stat";
    case Sys::kSeek:
      return "seek";
    case Sys::kNetBind:
      return "net_bind";
    case Sys::kNetSend:
      return "net_send";
    case Sys::kNetRecv:
      return "net_recv";
  }
  return "?";
}

Os::Os(hwsim::Machine& machine, ArchPort& port, std::string name)
    : machine_(machine), port_(port), name_(std::move(name)) {
  vfs_ = std::make_unique<Vfs>(*port_.block());
  net_ = std::make_unique<NetStack>(*port_.net());
}

Err Os::Boot(bool format_disk) {
  const Err err = format_disk ? vfs_->Format() : vfs_->Mount();
  if (err != Err::kNone) {
    return err;
  }
  if (port_.console() != nullptr) {
    port_.console()->Write(name_ + ": MiniOS up on " + port_.name());
  }
  return Err::kNone;
}

Result<ProcessId> Os::Spawn(std::string proc_name, uint32_t priority) {
  const ProcessId pid{next_pid_++};
  auto proc = std::make_unique<Process>(pid, std::move(proc_name));
  proc->priority = priority;
  machine_.Charge(machine_.costs().kernel_op);  // process setup
  processes_.emplace(pid, std::move(proc));
  return pid;
}

Process* Os::FindProcess(ProcessId pid) {
  auto it = processes_.find(pid);
  return it == processes_.end() ? nullptr : it->second.get();
}

Err Os::AttachProgram(ProcessId pid, ProgramStep step) {
  Process* proc = FindProcess(pid);
  if (proc == nullptr || proc->state == ProcState::kZombie) {
    return Err::kBadHandle;
  }
  if (!step) {
    return Err::kInvalidArgument;
  }
  programs_[pid] = std::move(step);
  proc->state = ProcState::kReady;
  ready_.Enqueue(pid, proc->priority);
  return Err::kNone;
}

uint64_t Os::RunPrograms(uint64_t max_quanta) {
  uint64_t quanta = 0;
  while (quanta < max_quanta) {
    auto pid = ready_.PickNext();
    if (!pid.has_value()) {
      return quanta;  // everything finished
    }
    Process* proc = FindProcess(*pid);
    auto it = programs_.find(*pid);
    if (proc == nullptr || proc->state == ProcState::kZombie || it == programs_.end()) {
      continue;  // died or detached while queued
    }
    machine_.Charge(machine_.costs().schedule_decision);
    proc->state = ProcState::kRunning;
    const bool done = it->second();
    ++quanta;
    if (done || proc->state == ProcState::kZombie) {
      programs_.erase(*pid);
      if (proc->state != ProcState::kZombie) {
        proc->state = ProcState::kZombie;
      }
    } else {
      proc->state = ProcState::kReady;
      ready_.Enqueue(*pid, proc->priority);
    }
  }
  return quanta;
}

SyscallRet Os::Syscall(ProcessId pid, SyscallReq& req) {
  return port_.InvokeSyscall(*this, pid, req);
}

SyscallRet Os::SyscallImpl(ProcessId pid, SyscallReq& req) {
  Process* proc = FindProcess(pid);
  if (proc == nullptr || proc->state == ProcState::kZombie) {
    return RetOf(Err::kBadHandle);
  }
  ++proc->syscalls_made;
  ++total_syscalls_;
  machine_.Charge(machine_.costs().kernel_op);  // syscall-table dispatch + checks

  switch (req.nr) {
    case Sys::kNull:
      return 0;
    case Sys::kGetPid:
      return pid.value();
    case Sys::kGetTime:
      return static_cast<SyscallRet>(machine_.Now());
    case Sys::kYield:
      machine_.Charge(machine_.costs().schedule_decision);
      return 0;
    case Sys::kExit:
      proc->state = ProcState::kZombie;
      proc->exit_code = static_cast<int64_t>(req.a0);
      return 0;
    case Sys::kOpen:
    case Sys::kCreate:
    case Sys::kClose:
    case Sys::kRead:
    case Sys::kWrite:
    case Sys::kUnlink:
    case Sys::kStat:
    case Sys::kSeek:
      return DoFileSyscall(*proc, req);
    case Sys::kNetBind:
    case Sys::kNetSend:
    case Sys::kNetRecv:
      return DoNetSyscall(*proc, req);
  }
  return RetOf(Err::kNotSupported);
}

SyscallRet Os::DoFileSyscall(Process& proc, SyscallReq& req) {
  auto fd_handle = [&](int64_t fd) -> FileHandle* {
    if (fd < 0 || static_cast<size_t>(fd) >= proc.fds.size() || !proc.fds[fd].open) {
      return nullptr;
    }
    return &proc.fds[static_cast<size_t>(fd)];
  };

  switch (req.nr) {
    case Sys::kOpen:
    case Sys::kCreate: {
      const std::string_view file(reinterpret_cast<const char*>(req.in.data()), req.in.size());
      auto inode = req.nr == Sys::kCreate ? vfs_->Create(file) : vfs_->LookUp(file);
      if (!inode.ok()) {
        return RetOf(inode.error());
      }
      for (size_t fd = 0; fd < proc.fds.size(); ++fd) {
        if (!proc.fds[fd].open) {
          proc.fds[fd] = FileHandle{true, false, *inode, 0};
          return static_cast<SyscallRet>(fd);
        }
      }
      proc.fds.push_back(FileHandle{true, false, *inode, 0});
      return static_cast<SyscallRet>(proc.fds.size() - 1);
    }
    case Sys::kClose: {
      FileHandle* fh = fd_handle(static_cast<int64_t>(req.a0));
      if (fh == nullptr) {
        return RetOf(Err::kBadHandle);
      }
      fh->open = false;
      return 0;
    }
    case Sys::kRead: {
      FileHandle* fh = fd_handle(static_cast<int64_t>(req.a0));
      if (fh == nullptr) {
        return RetOf(Err::kBadHandle);
      }
      if (fh->is_console) {
        return 0;  // console EOF
      }
      auto n = vfs_->ReadAt(fh->inode, fh->offset, req.out);
      if (!n.ok()) {
        return RetOf(n.error());
      }
      fh->offset += *n;
      return *n;
    }
    case Sys::kWrite: {
      FileHandle* fh = fd_handle(static_cast<int64_t>(req.a0));
      if (fh == nullptr) {
        return RetOf(Err::kBadHandle);
      }
      if (fh->is_console) {
        if (port_.console() != nullptr) {
          port_.console()->Write(
              std::string_view(reinterpret_cast<const char*>(req.in.data()), req.in.size()));
        }
        return static_cast<SyscallRet>(req.in.size());
      }
      auto n = vfs_->WriteAt(fh->inode, fh->offset, req.in);
      if (!n.ok()) {
        return RetOf(n.error());
      }
      fh->offset += *n;
      return *n;
    }
    case Sys::kSeek: {
      FileHandle* fh = fd_handle(static_cast<int64_t>(req.a0));
      if (fh == nullptr) {
        return RetOf(Err::kBadHandle);
      }
      fh->offset = req.a1;
      return static_cast<SyscallRet>(fh->offset);
    }
    case Sys::kUnlink: {
      const std::string_view file(reinterpret_cast<const char*>(req.in.data()), req.in.size());
      const Err err = vfs_->Unlink(file);
      return err == Err::kNone ? 0 : RetOf(err);
    }
    case Sys::kStat: {
      FileHandle* fh = fd_handle(static_cast<int64_t>(req.a0));
      if (fh == nullptr || fh->is_console) {
        return RetOf(Err::kBadHandle);
      }
      auto stat = vfs_->Stat(fh->inode);
      if (!stat.ok()) {
        return RetOf(stat.error());
      }
      return static_cast<SyscallRet>(stat->size);
    }
    default:
      return RetOf(Err::kNotSupported);
  }
}

SyscallRet Os::DoNetSyscall(Process& proc, SyscallReq& req) {
  (void)proc;
  switch (req.nr) {
    case Sys::kNetBind: {
      const Err err = net_->Bind(static_cast<uint16_t>(req.a0));
      return err == Err::kNone ? 0 : RetOf(err);
    }
    case Sys::kNetSend: {
      const Err err = net_->Send(static_cast<uint16_t>(req.a0), static_cast<uint16_t>(req.a1),
                                 req.in);
      return err == Err::kNone ? static_cast<SyscallRet>(req.in.size()) : RetOf(err);
    }
    case Sys::kNetRecv: {
      auto payload = net_->Recv(static_cast<uint16_t>(req.a0));
      if (!payload.ok()) {
        return RetOf(payload.error());
      }
      const size_t n = std::min(req.out.size(), payload->size());
      std::memcpy(req.out.data(), payload->data(), n);
      return static_cast<SyscallRet>(n);
    }
    default:
      return RetOf(Err::kNotSupported);
  }
}

// --- Convenience wrappers ---------------------------------------------------

SyscallRet Os::Null(ProcessId pid) {
  SyscallReq req;
  req.nr = Sys::kNull;
  return Syscall(pid, req);
}

SyscallRet Os::GetPid(ProcessId pid) {
  SyscallReq req;
  req.nr = Sys::kGetPid;
  return Syscall(pid, req);
}

SyscallRet Os::GetTime(ProcessId pid) {
  SyscallReq req;
  req.nr = Sys::kGetTime;
  return Syscall(pid, req);
}

SyscallRet Os::Yield(ProcessId pid) {
  SyscallReq req;
  req.nr = Sys::kYield;
  return Syscall(pid, req);
}

SyscallRet Os::Exit(ProcessId pid, int64_t code) {
  SyscallReq req;
  req.nr = Sys::kExit;
  req.a0 = static_cast<uint64_t>(code);
  return Syscall(pid, req);
}

SyscallRet Os::Create(ProcessId pid, std::string_view file) {
  SyscallReq req;
  req.nr = Sys::kCreate;
  req.in = std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(file.data()), file.size());
  return Syscall(pid, req);
}

SyscallRet Os::Open(ProcessId pid, std::string_view file) {
  SyscallReq req;
  req.nr = Sys::kOpen;
  req.in = std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(file.data()), file.size());
  return Syscall(pid, req);
}

SyscallRet Os::Close(ProcessId pid, int64_t fd) {
  SyscallReq req;
  req.nr = Sys::kClose;
  req.a0 = static_cast<uint64_t>(fd);
  return Syscall(pid, req);
}

SyscallRet Os::Read(ProcessId pid, int64_t fd, std::span<uint8_t> out) {
  SyscallReq req;
  req.nr = Sys::kRead;
  req.a0 = static_cast<uint64_t>(fd);
  req.out = out;
  return Syscall(pid, req);
}

SyscallRet Os::Write(ProcessId pid, int64_t fd, std::span<const uint8_t> in) {
  SyscallReq req;
  req.nr = Sys::kWrite;
  req.a0 = static_cast<uint64_t>(fd);
  req.in = in;
  return Syscall(pid, req);
}

SyscallRet Os::Seek(ProcessId pid, int64_t fd, uint64_t offset) {
  SyscallReq req;
  req.nr = Sys::kSeek;
  req.a0 = static_cast<uint64_t>(fd);
  req.a1 = offset;
  return Syscall(pid, req);
}

SyscallRet Os::Unlink(ProcessId pid, std::string_view file) {
  SyscallReq req;
  req.nr = Sys::kUnlink;
  req.in = std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(file.data()), file.size());
  return Syscall(pid, req);
}

SyscallRet Os::NetBind(ProcessId pid, uint16_t port) {
  SyscallReq req;
  req.nr = Sys::kNetBind;
  req.a0 = port;
  return Syscall(pid, req);
}

SyscallRet Os::NetSend(ProcessId pid, uint16_t dst_port, uint16_t src_port,
                       std::span<const uint8_t> payload) {
  SyscallReq req;
  req.nr = Sys::kNetSend;
  req.a0 = dst_port;
  req.a1 = src_port;
  req.in = payload;
  return Syscall(pid, req);
}

SyscallRet Os::NetRecv(ProcessId pid, uint16_t port, std::span<uint8_t> out) {
  SyscallReq req;
  req.nr = Sys::kNetRecv;
  req.a0 = port;
  req.out = out;
  return Syscall(pid, req);
}

}  // namespace minios
