// The architecture/port interface: everything MiniOS needs from whatever it
// runs on.
//
// This is the portability boundary of experiment E6. The microkernel port
// implements it with IPC to user-level servers; the VMM port with
// netfront/blkfront paravirtual drivers; the native port with direct driver
// access. MiniOS itself contains no substrate-specific code.

#ifndef UKVM_SRC_OS_ARCH_IF_H_
#define UKVM_SRC_OS_ARCH_IF_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string_view>

#include "src/core/error.h"
#include "src/core/ids.h"
#include "src/os/syscall.h"

namespace minios {

class Os;

// A network endpoint: send a packet; receive via an asynchronous handler
// (the port wires it to IPC-delivered packets, netfront upcalls, or the
// bare driver's rx path).
class NetDevice {
 public:
  virtual ~NetDevice() = default;
  using RecvHandler = std::function<void(std::span<const uint8_t> packet)>;

  virtual ukvm::Err Send(std::span<const uint8_t> packet) = 0;
  virtual void SetRecvHandler(RecvHandler handler) = 0;
  virtual uint32_t mtu() const = 0;
};

// A virtual block device (what Parallax serves to its clients; what the
// microkernel's block server serves via IPC).
class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  virtual uint32_t block_size() const = 0;
  virtual uint64_t capacity_blocks() const = 0;
  // Synchronous: the port pumps simulated time until completion.
  virtual ukvm::Err Read(uint64_t lba, uint32_t count, std::span<uint8_t> out) = 0;
  virtual ukvm::Err Write(uint64_t lba, uint32_t count, std::span<const uint8_t> in) = 0;
};

class ConsoleDevice {
 public:
  virtual ~ConsoleDevice() = default;
  virtual void Write(std::string_view text) = 0;
};

// The full port: devices plus the system-call entry path.
class ArchPort {
 public:
  virtual ~ArchPort() = default;

  virtual const char* name() const = 0;

  // Routes one application system call into the OS kernel, modelling the
  // substrate's entry path (trap, IPC, or trap-and-reflect), and returns
  // the kernel's result. `os` is the MiniOS instance owning `pid`.
  virtual SyscallRet InvokeSyscall(Os& os, ukvm::ProcessId pid, SyscallReq& req) = 0;

  virtual NetDevice* net() = 0;
  virtual BlockDevice* block() = 0;
  virtual ConsoleDevice* console() = 0;
};

}  // namespace minios

#endif  // UKVM_SRC_OS_ARCH_IF_H_
