#include "src/os/netstack.h"

#include <cstring>

namespace minios {

using ukvm::Err;
using ukvm::Result;

std::vector<uint8_t> BuildPacket(uint16_t dst_port, uint16_t src_port,
                                 std::span<const uint8_t> payload) {
  std::vector<uint8_t> packet(kNetHeaderBytes + payload.size());
  packet[0] = static_cast<uint8_t>(dst_port >> 8);
  packet[1] = static_cast<uint8_t>(dst_port & 0xff);
  packet[2] = static_cast<uint8_t>(src_port >> 8);
  packet[3] = static_cast<uint8_t>(src_port & 0xff);
  const auto len = static_cast<uint16_t>(payload.size());
  packet[4] = static_cast<uint8_t>(len >> 8);
  packet[5] = static_cast<uint8_t>(len & 0xff);
  std::memcpy(packet.data() + kNetHeaderBytes, payload.data(), payload.size());
  return packet;
}

bool ParsePacket(std::span<const uint8_t> packet, ParsedPacket& out) {
  if (packet.size() < kNetHeaderBytes) {
    return false;
  }
  out.dst_port = static_cast<uint16_t>((packet[0] << 8) | packet[1]);
  out.src_port = static_cast<uint16_t>((packet[2] << 8) | packet[3]);
  const auto len = static_cast<uint16_t>((packet[4] << 8) | packet[5]);
  if (packet.size() < kNetHeaderBytes + len) {
    return false;
  }
  out.payload = packet.subspan(kNetHeaderBytes, len);
  return true;
}

NetStack::NetStack(NetDevice& dev) : dev_(dev) {
  dev_.SetRecvHandler([this](std::span<const uint8_t> packet) { OnPacket(packet); });
}

Err NetStack::Bind(uint16_t port) {
  if (sockets_.contains(port)) {
    return Err::kAlreadyExists;
  }
  sockets_.emplace(port, std::deque<std::vector<uint8_t>>{});
  return Err::kNone;
}

Err NetStack::Unbind(uint16_t port) {
  return sockets_.erase(port) > 0 ? Err::kNone : Err::kNotFound;
}

Err NetStack::Send(uint16_t dst_port, uint16_t src_port, std::span<const uint8_t> payload) {
  if (payload.size() + kNetHeaderBytes > dev_.mtu()) {
    return Err::kInvalidArgument;
  }
  const std::vector<uint8_t> packet = BuildPacket(dst_port, src_port, payload);
  const Err err = dev_.Send(packet);
  if (err == Err::kNone) {
    ++tx_datagrams_;
  }
  return err;
}

Result<std::vector<uint8_t>> NetStack::Recv(uint16_t port) {
  auto it = sockets_.find(port);
  if (it == sockets_.end()) {
    return Err::kNotFound;
  }
  if (it->second.empty()) {
    return Err::kWouldBlock;
  }
  std::vector<uint8_t> payload = std::move(it->second.front());
  it->second.pop_front();
  return payload;
}

size_t NetStack::QueuedOn(uint16_t port) const {
  auto it = sockets_.find(port);
  return it == sockets_.end() ? 0 : it->second.size();
}

void NetStack::OnPacket(std::span<const uint8_t> packet) {
  ParsedPacket parsed;
  if (!ParsePacket(packet, parsed)) {
    ++rx_dropped_;
    return;
  }
  auto it = sockets_.find(parsed.dst_port);
  if (it == sockets_.end() || it->second.size() >= kMaxQueue) {
    ++rx_dropped_;
    return;
  }
  it->second.emplace_back(parsed.payload.begin(), parsed.payload.end());
  ++rx_datagrams_;
}

}  // namespace minios
