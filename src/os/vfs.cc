#include "src/os/vfs.h"

#include <algorithm>
#include <cstring>

namespace minios {

using ukvm::Err;
using ukvm::Result;

namespace {

struct Superblock {
  uint32_t magic = 0;
  uint32_t block_size = 0;
  uint64_t capacity_blocks = 0;
  uint32_t inode_count = 0;
};

}  // namespace

Err Vfs::ReadBlock(uint64_t lba, std::span<uint8_t> out) { return dev_.Read(lba, 1, out); }

Err Vfs::WriteBlock(uint64_t lba, std::span<const uint8_t> in) { return dev_.Write(lba, 1, in); }

Err Vfs::Format() {
  const uint32_t bs = dev_.block_size();
  std::vector<uint8_t> block(bs, 0);

  Superblock sb;
  sb.magic = kVfsMagic;
  sb.block_size = bs;
  sb.capacity_blocks = dev_.capacity_blocks();
  sb.inode_count = kInodeCount;
  std::memcpy(block.data(), &sb, sizeof(sb));
  UKVM_TRY(WriteBlock(0, block));

  // Zeroed inode table.
  std::fill(block.begin(), block.end(), uint8_t{0});
  for (uint32_t b = 0; b < InodeTableBlocks(); ++b) {
    UKVM_TRY(WriteBlock(1 + b, block));
  }
  // Bitmap: metadata blocks (superblock + inodes + bitmap itself) marked used.
  const uint32_t reserved = DataStart();
  for (uint32_t b = 0; b < BitmapBlocks(); ++b) {
    std::fill(block.begin(), block.end(), uint8_t{0});
    const uint64_t first_bit = uint64_t{b} * bs * 8;
    for (uint64_t bit = 0; bit < uint64_t{bs} * 8; ++bit) {
      if (first_bit + bit < reserved) {
        block[bit / 8] |= static_cast<uint8_t>(1u << (bit % 8));
      }
    }
    UKVM_TRY(WriteBlock(BitmapStart() + b, block));
  }
  mounted_ = true;
  return Err::kNone;
}

Err Vfs::Mount() {
  std::vector<uint8_t> block(dev_.block_size());
  UKVM_TRY(ReadBlock(0, block));
  Superblock sb;
  std::memcpy(&sb, block.data(), sizeof(sb));
  if (sb.magic != kVfsMagic || sb.block_size != dev_.block_size()) {
    return Err::kInvalidArgument;
  }
  mounted_ = true;
  return Err::kNone;
}

Result<Vfs::Inode> Vfs::LoadInode(uint32_t idx) {
  if (idx >= kInodeCount) {
    return Err::kOutOfRange;
  }
  std::vector<uint8_t> block(dev_.block_size());
  const uint32_t per = InodesPerBlock();
  UKVM_TRY(ReadBlock(1 + idx / per, block));
  Inode inode;
  std::memcpy(&inode, block.data() + (idx % per) * kInodeSize, sizeof(Inode));
  return inode;
}

Err Vfs::StoreInode(uint32_t idx, const Inode& inode) {
  if (idx >= kInodeCount) {
    return Err::kOutOfRange;
  }
  std::vector<uint8_t> block(dev_.block_size());
  const uint32_t per = InodesPerBlock();
  UKVM_TRY(ReadBlock(1 + idx / per, block));
  std::memcpy(block.data() + (idx % per) * kInodeSize, &inode, sizeof(Inode));
  return WriteBlock(1 + idx / per, block);
}

Result<uint32_t> Vfs::AllocBlock() {
  std::vector<uint8_t> block(dev_.block_size());
  for (uint32_t b = 0; b < BitmapBlocks(); ++b) {
    UKVM_TRY(ReadBlock(BitmapStart() + b, block));
    for (uint64_t bit = 0; bit < uint64_t{dev_.block_size()} * 8; ++bit) {
      const uint64_t lba = uint64_t{b} * dev_.block_size() * 8 + bit;
      if (lba >= dev_.capacity_blocks()) {
        break;
      }
      if ((block[bit / 8] & (1u << (bit % 8))) == 0) {
        block[bit / 8] |= static_cast<uint8_t>(1u << (bit % 8));
        UKVM_TRY(WriteBlock(BitmapStart() + b, block));
        return static_cast<uint32_t>(lba);
      }
    }
  }
  return Err::kNoMemory;
}

Err Vfs::FreeBlock(uint32_t lba) {
  const uint64_t bits_per_block = uint64_t{dev_.block_size()} * 8;
  const uint32_t b = static_cast<uint32_t>(lba / bits_per_block);
  const uint64_t bit = lba % bits_per_block;
  std::vector<uint8_t> block(dev_.block_size());
  UKVM_TRY(ReadBlock(BitmapStart() + b, block));
  block[bit / 8] &= static_cast<uint8_t>(~(1u << (bit % 8)));
  return WriteBlock(BitmapStart() + b, block);
}

Result<uint32_t> Vfs::Create(std::string_view name) {
  if (!mounted_) {
    return Err::kInvalidArgument;
  }
  if (name.empty() || name.size() > kMaxName) {
    return Err::kInvalidArgument;
  }
  if (LookUp(name).ok()) {
    return Err::kAlreadyExists;
  }
  for (uint32_t idx = 0; idx < kInodeCount; ++idx) {
    auto inode = LoadInode(idx);
    UKVM_TRY(inode);
    if (!inode->used) {
      Inode fresh;
      fresh.used = 1;
      std::memcpy(fresh.name, name.data(), name.size());
      UKVM_TRY(StoreInode(idx, fresh));
      return idx;
    }
  }
  return Err::kNoMemory;  // inode table full
}

Result<uint32_t> Vfs::LookUp(std::string_view name) {
  if (!mounted_) {
    return Err::kInvalidArgument;
  }
  for (uint32_t idx = 0; idx < kInodeCount; ++idx) {
    auto inode = LoadInode(idx);
    UKVM_TRY(inode);
    if (inode->used && name == inode->name) {
      return idx;
    }
  }
  return Err::kNotFound;
}

Err Vfs::Unlink(std::string_view name) {
  auto idx = LookUp(name);
  UKVM_TRY(idx);
  auto inode = LoadInode(*idx);
  UKVM_TRY(inode);
  const uint64_t used_blocks = (inode->size + dev_.block_size() - 1) / dev_.block_size();
  for (uint64_t b = 0; b < used_blocks; ++b) {
    UKVM_TRY(FreeBlock(inode->blocks[b]));
  }
  return StoreInode(*idx, Inode{});
}

Result<VfsStat> Vfs::Stat(uint32_t inode_idx) {
  auto inode = LoadInode(inode_idx);
  UKVM_TRY(inode);
  if (!inode->used) {
    return Err::kNotFound;
  }
  VfsStat stat;
  stat.name = inode->name;
  stat.size = inode->size;
  stat.inode = inode_idx;
  return stat;
}

Result<uint32_t> Vfs::ReadAt(uint32_t inode_idx, uint64_t offset, std::span<uint8_t> out) {
  auto inode = LoadInode(inode_idx);
  UKVM_TRY(inode);
  if (!inode->used) {
    return Err::kNotFound;
  }
  if (offset >= inode->size) {
    return uint32_t{0};
  }
  const uint32_t bs = dev_.block_size();
  const auto want = static_cast<uint32_t>(std::min<uint64_t>(out.size(), inode->size - offset));
  std::vector<uint8_t> block(bs);
  uint32_t done = 0;
  while (done < want) {
    const uint64_t pos = offset + done;
    const auto blk = static_cast<uint32_t>(pos / bs);
    const auto off = static_cast<uint32_t>(pos % bs);
    const uint32_t chunk = std::min(want - done, bs - off);
    UKVM_TRY(ReadBlock(inode->blocks[blk], block));
    std::memcpy(out.data() + done, block.data() + off, chunk);
    done += chunk;
  }
  return want;
}

Result<uint32_t> Vfs::WriteAt(uint32_t inode_idx, uint64_t offset, std::span<const uint8_t> in) {
  auto inode = LoadInode(inode_idx);
  UKVM_TRY(inode);
  if (!inode->used) {
    return Err::kNotFound;
  }
  if (offset + in.size() > MaxFileSize()) {
    return Err::kOutOfRange;
  }
  const uint32_t bs = dev_.block_size();
  // Allocate any blocks the write will touch beyond the current allocation.
  const uint64_t have_blocks = (inode->size + bs - 1) / bs;
  const uint64_t need_blocks = (offset + in.size() + bs - 1) / bs;
  for (uint64_t b = have_blocks; b < need_blocks; ++b) {
    auto lba = AllocBlock();
    UKVM_TRY(lba);
    inode->blocks[b] = *lba;
  }
  std::vector<uint8_t> block(bs);
  uint32_t done = 0;
  while (done < in.size()) {
    const uint64_t pos = offset + done;
    const auto blk = static_cast<uint32_t>(pos / bs);
    const auto off = static_cast<uint32_t>(pos % bs);
    const uint32_t chunk = std::min(static_cast<uint32_t>(in.size() - done), bs - off);
    if (off != 0 || chunk != bs) {
      UKVM_TRY(ReadBlock(inode->blocks[blk], block));  // read-modify-write
    }
    std::memcpy(block.data() + off, in.data() + done, chunk);
    UKVM_TRY(WriteBlock(inode->blocks[blk], block));
    done += chunk;
  }
  inode->size = std::max<uint64_t>(inode->size, offset + in.size());
  UKVM_TRY(StoreInode(inode_idx, *inode));
  return static_cast<uint32_t>(in.size());
}

std::vector<VfsStat> Vfs::List() {
  std::vector<VfsStat> out;
  for (uint32_t idx = 0; idx < kInodeCount; ++idx) {
    auto inode = LoadInode(idx);
    if (inode.ok() && inode->used) {
      out.push_back(VfsStat{inode->name, inode->size, idx});
    }
  }
  return out;
}

}  // namespace minios
