// MiniFS: a small flat-namespace filesystem over a virtual block device.
//
// Deliberately cache-less: every file operation turns into block-device
// traffic, which is the point — file workloads must exercise the storage
// path of whichever stack MiniOS runs on (IPC to the block server, or
// blkfront/blkback rings through Dom0/Parallax).
//
// On-disk layout (block_size B blocks):
//   block 0                : superblock
//   blocks 1..inode_blocks : inode table (128-byte inodes)
//   then bitmap blocks     : one bit per data block
//   then data blocks.

#ifndef UKVM_SRC_OS_VFS_H_
#define UKVM_SRC_OS_VFS_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/error.h"
#include "src/os/arch_if.h"

namespace minios {

inline constexpr uint32_t kVfsMagic = 0x4D696E46;  // "MinF"
inline constexpr uint32_t kInodeSize = 128;
inline constexpr uint32_t kInodeCount = 64;
inline constexpr uint32_t kMaxName = 31;
inline constexpr uint32_t kDirectBlocks = 16;

struct VfsStat {
  std::string name;
  uint64_t size = 0;
  uint32_t inode = 0;
};

class Vfs {
 public:
  explicit Vfs(BlockDevice& dev) : dev_(dev) {}

  // Writes a fresh filesystem onto the device.
  ukvm::Err Format();
  // Reads and validates the superblock.
  ukvm::Err Mount();
  bool mounted() const { return mounted_; }

  ukvm::Result<uint32_t> Create(std::string_view name);
  ukvm::Result<uint32_t> LookUp(std::string_view name);
  ukvm::Err Unlink(std::string_view name);
  ukvm::Result<VfsStat> Stat(uint32_t inode);

  // Reads up to out.size() bytes at `offset`; returns bytes read (0 at EOF).
  ukvm::Result<uint32_t> ReadAt(uint32_t inode, uint64_t offset, std::span<uint8_t> out);
  // Writes, extending the file as needed (up to kDirectBlocks blocks).
  ukvm::Result<uint32_t> WriteAt(uint32_t inode, uint64_t offset, std::span<const uint8_t> in);

  std::vector<VfsStat> List();

  uint64_t MaxFileSize() const { return uint64_t{kDirectBlocks} * dev_.block_size(); }

 private:
  struct Inode {
    uint8_t used = 0;
    char name[kMaxName + 1] = {};
    uint64_t size = 0;
    uint32_t blocks[kDirectBlocks] = {};
  };
  static_assert(sizeof(Inode) <= kInodeSize);

  uint32_t InodesPerBlock() const { return dev_.block_size() / kInodeSize; }
  uint32_t InodeTableBlocks() const {
    return (kInodeCount + InodesPerBlock() - 1) / InodesPerBlock();
  }
  uint32_t BitmapStart() const { return 1 + InodeTableBlocks(); }
  uint32_t BitmapBlocks() const {
    const auto bits_per_block = dev_.block_size() * 8;
    return static_cast<uint32_t>((dev_.capacity_blocks() + bits_per_block - 1) / bits_per_block);
  }
  uint32_t DataStart() const { return BitmapStart() + BitmapBlocks(); }

  ukvm::Err ReadBlock(uint64_t lba, std::span<uint8_t> out);
  ukvm::Err WriteBlock(uint64_t lba, std::span<const uint8_t> in);

  ukvm::Result<Inode> LoadInode(uint32_t idx);
  ukvm::Err StoreInode(uint32_t idx, const Inode& inode);

  ukvm::Result<uint32_t> AllocBlock();
  ukvm::Err FreeBlock(uint32_t lba);

  BlockDevice& dev_;
  bool mounted_ = false;
};

}  // namespace minios

#endif  // UKVM_SRC_OS_VFS_H_
