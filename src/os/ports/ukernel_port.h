// Microkernel port: MiniOS as a user-level OS server, L4Linux-style.
//
// Paper §3.2: "A Xen-based system performs essentially the same number of
// IPC operations as a comparable microkernel-based system (such as
// L4Linux)". This port is that comparable system: every application system
// call is one IPC call from the application's thread to the OS server
// (request + reply, with user data as string items), and the OS server in
// turn uses IPC to reach the user-level block and network driver servers.

#ifndef UKVM_SRC_OS_PORTS_UKERNEL_PORT_H_
#define UKVM_SRC_OS_PORTS_UKERNEL_PORT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/hw/machine.h"
#include "src/os/arch_if.h"
#include "src/ukernel/kernel.h"

namespace minios {

// Everything the stack wires up before handing the port its identity.
struct UkernelPortWiring {
  ukern::Kernel* kernel = nullptr;

  // Application identity: the thread whose IPC reaches the OS server.
  ukvm::ThreadId app_thread;
  // The OS server thread (this port installs its handler).
  ukvm::ThreadId os_thread;
  // A thread of the OS task that receives inbound packets from the net
  // server (this port installs its handler too).
  ukvm::ThreadId net_rx_thread;

  // Pre-mapped transfer windows (and registered receive buffers).
  hwsim::Vaddr app_window = 0;
  uint32_t app_window_len = 0;
  hwsim::Vaddr srv_window = 0;
  uint32_t srv_window_len = 0;

  // User-level servers.
  ukvm::ThreadId blk_server;
  ukvm::ThreadId net_server;
};

class UkernelPort : public ArchPort {
 public:
  explicit UkernelPort(hwsim::Machine& machine, UkernelPortWiring wiring);
  ~UkernelPort() override;

  const char* name() const override { return "ukernel"; }
  SyscallRet InvokeSyscall(Os& os, ukvm::ProcessId pid, SyscallReq& req) override;
  NetDevice* net() override;
  BlockDevice* block() override;
  ConsoleDevice* console() override;

  const std::vector<std::string>& console_log() const { return console_log_; }

  // Bytes the app/server windows can carry per transfer.
  uint32_t max_transfer() const;

  // Re-points the port at a restarted server (microkernel multiserver
  // recovery: a crashed driver server is simply replaced).
  void SetBlockServer(ukvm::ThreadId server);
  void SetNetServer(ukvm::ThreadId server);

  // --- Crash recovery (E19) -------------------------------------------------

  // Off by default (byte-identical). On, block writes carry a monotonic
  // journal id in regs[3] and stay journaled until the server genuinely
  // answers; a kernel-level kDead/kBadHandle reply (server task destroyed
  // mid-call) keeps the entry for replay.
  void SetCrashRecovery(bool on);

  // Re-issues every journaled (unacknowledged) write with its original id
  // against the current block server; the server's recovery log suppresses
  // duplicates that landed before the crash. Returns the number of entries
  // resolved; stops early if the server dies again.
  uint64_t ReplayBlockJournal();

  // Write chunks whose final status was success (exactly-once accounting).
  uint64_t blk_writes_acked_ok() const;
  // Journaled writes still awaiting a genuine server answer.
  size_t blk_journal_depth() const;

 private:
  class IpcNet;
  class IpcBlock;
  class PortConsole;

  // The OS server's IPC dispatch (installed on wiring.os_thread).
  ukern::IpcMessage OsServerEntry(ukvm::ThreadId sender, ukern::IpcMessage msg);
  // The rx thread's IPC dispatch (installed on wiring.net_rx_thread).
  ukern::IpcMessage NetRxEntry(ukvm::ThreadId sender, ukern::IpcMessage msg);

  // Zero-cost simulation plumbing: place/fetch bytes in a task's window.
  // (The charged transfer is the kernel's string copy.)
  void PokeWindow(ukvm::ThreadId thread, hwsim::Vaddr va, std::span<const uint8_t> bytes);

  hwsim::Machine& machine_;
  UkernelPortWiring w_;
  Os* os_ = nullptr;

  std::unique_ptr<IpcNet> net_dev_;
  std::unique_ptr<IpcBlock> block_dev_;
  std::unique_ptr<PortConsole> console_dev_;
  std::vector<std::string> console_log_;
  uint32_t req_syscall_name_ = 0;  // E22 "os.syscall" origin
};

}  // namespace minios

#endif  // UKVM_SRC_OS_PORTS_UKERNEL_PORT_H_
