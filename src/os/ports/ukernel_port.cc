#include "src/os/ports/ukernel_port.h"

#include <cassert>
#include <cstring>
#include <map>

#include "src/core/log.h"
#include "src/os/kernel.h"
#include "src/os/ports/protocols.h"

namespace minios {

using ukern::IpcMessage;
using ukvm::Err;
using ukvm::ThreadId;

// --- Device adaptors -----------------------------------------------------------

// Block device backed by IPC to the user-level block server. Calls are made
// from the OS server's thread (nested IPC, as L4Linux calls its driver
// servers).
class UkernelPort::IpcBlock : public BlockDevice {
 public:
  explicit IpcBlock(UkernelPort& port) : port_(port) {
    auto& rt = port_.machine_.reqtrace();
    req_read_name_ = rt.InternName("blk.read");
    req_write_name_ = rt.InternName("blk.write");
    req_replay_name_ = rt.InternName("recovery.replay");
  }

  uint32_t block_size() const override {
    FetchInfo();
    return block_size_;
  }
  uint64_t capacity_blocks() const override {
    FetchInfo();
    return capacity_;
  }

  Err Read(uint64_t lba, uint32_t count, std::span<uint8_t> out) override {
    FetchInfo();
    if (block_size_ == 0) {
      return Err::kDead;
    }
    if (out.size() < uint64_t{count} * block_size_) {
      return Err::kInvalidArgument;
    }
    const uint32_t max_blocks =
        std::max<uint32_t>(1, port_.w_.srv_window_len / block_size_);
    uint32_t done = 0;
    while (done < count) {
      const uint32_t chunk = std::min(count - done, max_blocks);
      // One traced request per chunk; the kernel's string copy back into
      // the reply attributes to it via the ambient scope (the IPC handler
      // runs synchronously inside Call).
      auto& rt = port_.machine_.reqtrace();
      ukvm::ReqOriginScope req_scope(rt, req_read_name_,
                                     port_.machine_.cpu().current_domain());
      IpcMessage msg = IpcMessage::Short(kBlkReadLabel, lba + done, chunk);
      IpcMessage reply = port_.w_.kernel->Call(port_.w_.os_thread, port_.w_.blk_server, msg);
      if (reply.status != Err::kNone) {
        rt.AbandonRequest(req_scope.ref());
        return reply.status;
      }
      if (static_cast<int64_t>(reply.regs[0]) < 0) {
        rt.AbandonRequest(req_scope.ref());
        return ErrOf(static_cast<SyscallRet>(reply.regs[0]));
      }
      const uint64_t bytes = uint64_t{chunk} * block_size_;
      if (reply.string_data.size() < bytes) {
        rt.AbandonRequest(req_scope.ref());
        return Err::kFault;
      }
      std::memcpy(out.data() + uint64_t{done} * block_size_, reply.string_data.data(), bytes);
      rt.EndRequest(req_scope.ref());
      done += chunk;
    }
    return Err::kNone;
  }

  Err Write(uint64_t lba, uint32_t count, std::span<const uint8_t> in) override {
    FetchInfo();
    if (block_size_ == 0) {
      return Err::kDead;
    }
    if (in.size() < uint64_t{count} * block_size_) {
      return Err::kInvalidArgument;
    }
    const uint32_t max_blocks =
        std::max<uint32_t>(1, port_.w_.srv_window_len / block_size_);
    uint32_t done = 0;
    while (done < count) {
      const uint32_t chunk = std::min(count - done, max_blocks);
      const uint64_t bytes = uint64_t{chunk} * block_size_;
      const auto payload = in.subspan(uint64_t{done} * block_size_, bytes);
      auto& rt = port_.machine_.reqtrace();
      ukvm::ReqOriginScope req_scope(rt, req_write_name_,
                                     port_.machine_.cpu().current_domain());
      port_.PokeWindow(port_.w_.os_thread, port_.w_.srv_window, payload);
      IpcMessage msg;
      uint64_t id = 0;
      if (crash_recovery_) {
        // Journal before submitting; the entry lives until the server
        // genuinely answers (any status), so a mid-call server death
        // leaves it behind for ReplayJournal.
        id = next_id_++;
        journal_.emplace(id, JournalEntry{lba + done, chunk,
                                          std::vector<uint8_t>(payload.begin(), payload.end()),
                                          req_scope.ref()});
        msg = IpcMessage::Short(kBlkWriteLabel, lba + done, chunk, id);
      } else {
        msg = IpcMessage::Short(kBlkWriteLabel, lba + done, chunk);
      }
      msg.has_string = true;
      msg.string = ukern::StringItem{port_.w_.srv_window, static_cast<uint32_t>(bytes)};
      IpcMessage reply = port_.w_.kernel->Call(port_.w_.os_thread, port_.w_.blk_server, msg);
      const bool answered =
          reply.status != Err::kDead && reply.status != Err::kBadHandle;
      if (id != 0 && answered) {
        // The server answered (success or error): the write's fate is
        // known, so the journal entry is resolved.
        journal_.erase(id);
        if (reply.status == Err::kNone && static_cast<int64_t>(reply.regs[0]) >= 0) {
          ++writes_acked_ok_;
        }
      }
      const bool ok = reply.status == Err::kNone && static_cast<int64_t>(reply.regs[0]) >= 0;
      if (ok) {
        rt.EndRequest(req_scope.ref());
      } else if (answered || id == 0) {
        rt.AbandonRequest(req_scope.ref());
      }
      // Unanswered journaled writes stay live for ReplayJournal.
      if (reply.status != Err::kNone) {
        return reply.status;
      }
      if (static_cast<int64_t>(reply.regs[0]) < 0) {
        return ErrOf(static_cast<SyscallRet>(reply.regs[0]));
      }
      done += chunk;
    }
    return Err::kNone;
  }

  // --- Crash recovery (E19) ---------------------------------------------------

  void SetCrashRecovery(bool on) { crash_recovery_ = on; }

  uint64_t ReplayJournal() {
    uint64_t replayed = 0;
    auto it = journal_.begin();
    while (it != journal_.end()) {  // id order: writes land in submit order
      const uint64_t id = it->first;
      const JournalEntry& entry = it->second;
      // The replay re-issues the original request on its own DAG; handoffs
      // that died with the old server are forgiven, and the whole replay
      // call becomes a recovery leaf on the request's critical path.
      auto& rt = port_.machine_.reqtrace();
      rt.ForgiveHandoffs(entry.trace);
      ukvm::ReqAdoptScope req_scope(rt, entry.trace);
      const uint64_t replay_t0 = port_.machine_.Now();
      port_.PokeWindow(port_.w_.os_thread, port_.w_.srv_window, entry.payload);
      IpcMessage msg = IpcMessage::Short(kBlkWriteLabel, entry.lba, entry.count, id);
      msg.has_string = true;
      msg.string =
          ukern::StringItem{port_.w_.srv_window, static_cast<uint32_t>(entry.payload.size())};
      IpcMessage reply = port_.w_.kernel->Call(port_.w_.os_thread, port_.w_.blk_server, msg);
      if (reply.status == Err::kDead || reply.status == Err::kBadHandle) {
        break;  // the replacement died too; keep the rest for the next round
      }
      rt.AddLeafTo(entry.trace, req_replay_name_, ukvm::ReqNodeKind::kRecovery,
                   port_.machine_.cpu().current_domain(), replay_t0, port_.machine_.Now());
      rt.EndRequest(entry.trace);
      if (reply.status == Err::kNone && static_cast<int64_t>(reply.regs[0]) >= 0) {
        ++writes_acked_ok_;
      }
      it = journal_.erase(it);
      ++replayed;
    }
    return replayed;
  }

  uint64_t writes_acked_ok() const { return writes_acked_ok_; }
  size_t journal_depth() const { return journal_.size(); }

 private:
  struct JournalEntry {
    uint64_t lba = 0;
    uint32_t count = 0;
    std::vector<uint8_t> payload;
    ukvm::ReqTraceRef trace;  // E22: the write request, live until resolved
  };
  void FetchInfo() const {
    if (info_fetched_) {
      return;
    }
    IpcMessage msg = IpcMessage::Short(kBlkInfoLabel);
    IpcMessage reply = port_.w_.kernel->Call(port_.w_.os_thread, port_.w_.blk_server, msg);
    if (reply.status == Err::kNone) {
      block_size_ = static_cast<uint32_t>(reply.regs[1]);
      capacity_ = reply.regs[2];
      info_fetched_ = true;
    }
  }

  UkernelPort& port_;
  mutable bool info_fetched_ = false;
  mutable uint32_t block_size_ = 0;
  mutable uint64_t capacity_ = 0;
  bool crash_recovery_ = false;
  uint64_t next_id_ = 1;  // monotonic across restarts — replay reuses ids
  std::map<uint64_t, JournalEntry> journal_;  // unacked writes, in id order
  uint64_t writes_acked_ok_ = 0;
  // E22 interned request-trace names.
  uint32_t req_read_name_ = 0;
  uint32_t req_write_name_ = 0;
  uint32_t req_replay_name_ = 0;
};

// Network device backed by IPC to the user-level net driver server.
class UkernelPort::IpcNet : public NetDevice {
 public:
  explicit IpcNet(UkernelPort& port) : port_(port) {
    req_tx_name_ = port_.machine_.reqtrace().InternName("net.tx");
  }

  Err Send(std::span<const uint8_t> packet) override {
    if (packet.size() > port_.w_.srv_window_len) {
      return Err::kInvalidArgument;
    }
    auto& rt = port_.machine_.reqtrace();
    ukvm::ReqOriginScope req_scope(rt, req_tx_name_,
                                   port_.machine_.cpu().current_domain());
    port_.PokeWindow(port_.w_.os_thread, port_.w_.srv_window, packet);
    IpcMessage msg = IpcMessage::Short(kNetSendLabel);
    msg.has_string = true;
    msg.string = ukern::StringItem{port_.w_.srv_window, static_cast<uint32_t>(packet.size())};
    IpcMessage reply = port_.w_.kernel->Call(port_.w_.os_thread, port_.w_.net_server, msg);
    const bool ok = reply.status == Err::kNone && static_cast<int64_t>(reply.regs[0]) >= 0;
    if (ok) {
      rt.EndRequest(req_scope.ref());
    } else {
      rt.AbandonRequest(req_scope.ref());
    }
    if (reply.status != Err::kNone) {
      return reply.status;
    }
    return static_cast<int64_t>(reply.regs[0]) < 0
               ? ErrOf(static_cast<SyscallRet>(reply.regs[0]))
               : Err::kNone;
  }

  void SetRecvHandler(RecvHandler handler) override { handler_ = std::move(handler); }
  uint32_t mtu() const override { return 1514; }

  void Deliver(std::span<const uint8_t> packet) {
    if (handler_) {
      handler_(packet);
    }
  }

 private:
  UkernelPort& port_;
  RecvHandler handler_;
  uint32_t req_tx_name_ = 0;  // E22 "net.tx" origin
};

class UkernelPort::PortConsole : public ConsoleDevice {
 public:
  explicit PortConsole(UkernelPort& port) : port_(port) {}
  void Write(std::string_view text) override {
    port_.machine_.ChargeCopy(text.size());
    port_.console_log_.emplace_back(text);
  }

 private:
  UkernelPort& port_;
};

// --- UkernelPort -----------------------------------------------------------------

UkernelPort::UkernelPort(hwsim::Machine& machine, UkernelPortWiring wiring)
    : machine_(machine), w_(wiring) {
  assert(w_.kernel != nullptr);
  req_syscall_name_ = machine_.reqtrace().InternName("os.syscall");
  net_dev_ = std::make_unique<IpcNet>(*this);
  block_dev_ = std::make_unique<IpcBlock>(*this);
  console_dev_ = std::make_unique<PortConsole>(*this);

  w_.kernel->SetThreadHandler(w_.os_thread, [this](ThreadId sender, IpcMessage msg) {
    return OsServerEntry(sender, std::move(msg));
  });
  w_.kernel->SetThreadHandler(w_.net_rx_thread, [this](ThreadId sender, IpcMessage msg) {
    return NetRxEntry(sender, std::move(msg));
  });

  // Register with the net server so inbound packets reach our rx thread.
  IpcMessage attach = IpcMessage::Short(kNetAttachLabel, w_.net_rx_thread.value());
  (void)w_.kernel->Call(w_.os_thread, w_.net_server, attach);
}

UkernelPort::~UkernelPort() = default;

NetDevice* UkernelPort::net() { return net_dev_.get(); }
BlockDevice* UkernelPort::block() { return block_dev_.get(); }
ConsoleDevice* UkernelPort::console() { return console_dev_.get(); }

void UkernelPort::SetBlockServer(ThreadId server) { w_.blk_server = server; }

void UkernelPort::SetCrashRecovery(bool on) { block_dev_->SetCrashRecovery(on); }
uint64_t UkernelPort::ReplayBlockJournal() { return block_dev_->ReplayJournal(); }
uint64_t UkernelPort::blk_writes_acked_ok() const { return block_dev_->writes_acked_ok(); }
size_t UkernelPort::blk_journal_depth() const { return block_dev_->journal_depth(); }

void UkernelPort::SetNetServer(ThreadId server) {
  w_.net_server = server;
  // Re-attach our rx thread with the new server.
  IpcMessage attach = IpcMessage::Short(kNetAttachLabel, w_.net_rx_thread.value());
  (void)w_.kernel->Call(w_.os_thread, w_.net_server, attach);
}

uint32_t UkernelPort::max_transfer() const {
  return std::min(w_.app_window_len, w_.srv_window_len);
}

void UkernelPort::PokeWindow(ThreadId thread, hwsim::Vaddr va, std::span<const uint8_t> bytes) {
  // Simulation plumbing, not a charged operation: the bytes notionally
  // already exist in the task's memory; this materialises them so the
  // kernel's (charged) string copy moves real data.
  auto task_id = w_.kernel->TaskOf(thread);
  if (!task_id.ok()) {
    return;
  }
  ukern::Task* task = w_.kernel->FindTask(*task_id);
  const uint64_t page = task->space.page_size();
  size_t done = 0;
  while (done < bytes.size()) {
    const hwsim::Vaddr addr = va + done;
    const size_t chunk = std::min<size_t>(bytes.size() - done, page - (addr & (page - 1)));
    hwsim::Pte* pte = task->space.Walk(addr);
    if (pte == nullptr || !pte->present) {
      UKVM_WARN("ukernel port: window page unmapped at 0x%llx",
                static_cast<unsigned long long>(addr));
      return;
    }
    machine_.memory().Write(machine_.memory().FrameBase(pte->frame) + (addr & (page - 1)),
                            bytes.subspan(done, chunk));
    done += chunk;
  }
}

SyscallRet UkernelPort::InvokeSyscall(Os& os, ukvm::ProcessId pid, SyscallReq& req) {
  os_ = &os;
  if (req.in.size() > w_.app_window_len || req.out.size() > w_.srv_window_len) {
    return RetOf(Err::kInvalidArgument);
  }
  IpcMessage msg;
  msg.regs[0] = kOsSyscallLabel;
  msg.regs[1] = pid.value();
  msg.regs[2] = static_cast<uint64_t>(req.nr);
  msg.regs[3] = req.a0;
  msg.regs[4] = req.a1;
  msg.regs[5] = req.a2;
  msg.regs[6] = req.in.size();
  msg.regs[7] = req.out.size();
  msg.reg_count = 8;
  if (!req.in.empty()) {
    PokeWindow(w_.app_thread, w_.app_window, req.in);
    msg.has_string = true;
    msg.string = ukern::StringItem{w_.app_window, static_cast<uint32_t>(req.in.size())};
  }
  // Every application system call is one traced request: the IPC to the OS
  // server (and any nested driver-server work it charges) attributes here.
  ukvm::ReqOriginScope req_scope(machine_.reqtrace(), req_syscall_name_,
                                 machine_.cpu().current_domain());
  IpcMessage reply = w_.kernel->Call(w_.app_thread, w_.os_thread, msg);
  if (reply.status != Err::kNone) {
    machine_.reqtrace().AbandonRequest(req_scope.ref());
    return RetOf(reply.status);
  }
  if (!req.out.empty() && !reply.string_data.empty()) {
    const size_t n = std::min(req.out.size(), reply.string_data.size());
    std::memcpy(req.out.data(), reply.string_data.data(), n);
  }
  machine_.reqtrace().EndRequest(req_scope.ref());
  return static_cast<SyscallRet>(reply.regs[0]);
}

IpcMessage UkernelPort::OsServerEntry(ThreadId sender, IpcMessage msg) {
  (void)sender;
  if (msg.regs[0] != kOsSyscallLabel || os_ == nullptr) {
    return IpcMessage::Error(Err::kNotSupported);
  }
  const ukvm::ProcessId pid{static_cast<uint32_t>(msg.regs[1])};
  SyscallReq req;
  req.nr = static_cast<Sys>(msg.regs[2]);
  req.a0 = msg.regs[3];
  req.a1 = msg.regs[4];
  req.a2 = msg.regs[5];
  req.in = msg.string_data;
  std::vector<uint8_t> out_buf(msg.regs[7]);
  req.out = out_buf;

  const SyscallRet ret = os_->SyscallImpl(pid, req);

  IpcMessage reply;
  reply.regs[0] = static_cast<uint64_t>(ret);
  reply.reg_count = 1;
  if (!out_buf.empty() && ret >= 0) {
    PokeWindow(w_.os_thread, w_.srv_window, out_buf);
    reply.has_string = true;
    reply.string = ukern::StringItem{w_.srv_window, static_cast<uint32_t>(out_buf.size())};
  }
  return reply;
}

IpcMessage UkernelPort::NetRxEntry(ThreadId sender, IpcMessage msg) {
  (void)sender;
  if (msg.regs[0] == kNetRxLabel) {
    net_dev_->Deliver(msg.string_data);
  }
  return IpcMessage{};
}

}  // namespace minios
