// Native port: MiniOS directly on the (simulated) hardware.
//
// This is the baseline configuration of experiment E2: a system call is a
// single trap into the OS kernel, devices are driven directly, and no
// protection-domain crossings beyond user/kernel exist. It doubles as the
// machine's trap handler — MiniOS *is* the kernel here.

#ifndef UKVM_SRC_OS_PORTS_NATIVE_PORT_H_
#define UKVM_SRC_OS_PORTS_NATIVE_PORT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/drivers/disk_driver.h"
#include "src/drivers/nic_driver.h"
#include "src/hw/disk.h"
#include "src/hw/machine.h"
#include "src/hw/nic.h"
#include "src/os/arch_if.h"

namespace minios {

class NativePort : public ArchPort, public hwsim::TrapHandler {
 public:
  // `os_domain` is the accounting domain for the whole OS (kernel + apps
  // share it: no internal protection on this baseline). `pool` are frames
  // for NIC staging.
  NativePort(hwsim::Machine& machine, hwsim::Nic& nic, hwsim::Disk& disk,
             ukvm::DomainId os_domain, std::vector<hwsim::Frame> pool);
  ~NativePort() override;

  // --- ArchPort ---------------------------------------------------------------

  const char* name() const override { return "native"; }
  SyscallRet InvokeSyscall(Os& os, ukvm::ProcessId pid, SyscallReq& req) override;
  NetDevice* net() override;
  BlockDevice* block() override;
  ConsoleDevice* console() override;

  // --- hwsim::TrapHandler --------------------------------------------------------

  void HandleTrap(hwsim::TrapFrame& frame) override;
  void HandleInterrupt(ukvm::IrqLine line) override;

  const std::vector<std::string>& console_log() const { return console_log_; }

 private:
  class NativeNet;
  class NativeBlock;
  class NativeConsole;

  hwsim::Machine& machine_;
  ukvm::DomainId os_domain_;
  hwsim::Disk& disk_;
  udrv::NicDriver nic_driver_;
  udrv::DiskDriver disk_driver_;
  ukvm::IrqLine nic_irq_;
  ukvm::IrqLine disk_irq_;
  uint32_t mech_syscall_ = 0;
  uint32_t mech_irq_ = 0;
  // E22 interned request-trace names.
  uint32_t req_syscall_name_ = 0;  // "os.syscall" origin
  uint32_t req_tx_name_ = 0;       // "net.tx" origin
  uint32_t req_read_name_ = 0;     // "blk.read" origin
  uint32_t req_write_name_ = 0;    // "blk.write" origin
  uint32_t req_dev_name_ = 0;      // "disk.io" device leaf

  std::unique_ptr<NativeNet> net_dev_;
  std::unique_ptr<NativeBlock> block_dev_;
  std::unique_ptr<NativeConsole> console_dev_;
  std::vector<std::string> console_log_;
};

}  // namespace minios

#endif  // UKVM_SRC_OS_PORTS_NATIVE_PORT_H_
