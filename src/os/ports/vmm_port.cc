#include "src/os/ports/vmm_port.h"

#include <cassert>

#include "src/os/kernel.h"

namespace minios {

using ukvm::Err;

class VmmPort::HvConsole : public ConsoleDevice {
 public:
  HvConsole(uvmm::Hypervisor& hv, ukvm::DomainId guest) : hv_(hv), guest_(guest) {}
  void Write(std::string_view text) override {
    (void)hv_.HcConsoleIo(guest_, std::string(text));
  }

 private:
  uvmm::Hypervisor& hv_;
  ukvm::DomainId guest_;
};

VmmPort::VmmPort(hwsim::Machine& machine, uvmm::Hypervisor& hv, ukvm::DomainId guest,
                 NetDevice* net_frontend, BlockDevice* block_frontend, bool request_fast_trap)
    : machine_(machine), hv_(hv), guest_(guest), net_(net_frontend), block_(block_frontend) {
  req_syscall_name_ = machine_.reqtrace().InternName("os.syscall");
  console_dev_ = std::make_unique<HvConsole>(hv_, guest_);
  const Err err = hv_.HcSetTrapTable(
      guest_,
      [this](hwsim::TrapFrame& frame) { return GuestKernelSyscallEntry(frame); },
      [](hwsim::Vaddr, bool) { return Err::kFault; },  // no demand paging in MiniOS
      request_fast_trap);
  assert(err == Err::kNone);
  (void)err;
}

VmmPort::~VmmPort() = default;

ConsoleDevice* VmmPort::console() { return console_dev_.get(); }

SyscallRet VmmPort::InvokeSyscall(Os& os, ukvm::ProcessId pid, SyscallReq& req) {
  uvmm::Domain* dom = hv_.FindDomain(guest_);
  if (dom == nullptr || !dom->alive) {
    return RetOf(Err::kDead);
  }
  os_ = &os;
  pid_ = pid;
  req_ = &req;
  // The application executes int 0x80 at user privilege.
  hv_.sched().SwitchTo(*dom, hwsim::PrivLevel::kUser);
  hwsim::TrapFrame frame;
  frame.vector = hwsim::TrapVector::kSyscall;
  frame.regs[0] = static_cast<uint64_t>(req.nr);
  frame.from_user = true;
  // E22: every guest system call — reflected through the hypervisor or
  // riding the fast trap gate — is one traced request; any frontend work
  // the guest kernel does inside attributes to it via the ambient scope.
  // An OS-level error return is still a completed syscall.
  ukvm::ReqOriginScope req_scope(machine_.reqtrace(), req_syscall_name_,
                                 machine_.cpu().current_domain());
  const uint64_t ret = hv_.GuestSyscall(guest_, frame);
  machine_.reqtrace().EndRequest(req_scope.ref());
  req_ = nullptr;
  machine_.DeliverPendingInterrupts();
  return static_cast<SyscallRet>(ret);
}

uint64_t VmmPort::GuestKernelSyscallEntry(hwsim::TrapFrame& frame) {
  (void)frame;
  if (os_ == nullptr || req_ == nullptr) {
    return static_cast<uint64_t>(RetOf(Err::kInvalidArgument));
  }
  // Guest kernel's copy_from_user / copy_to_user.
  machine_.ChargeCopy(req_->in.size());
  const SyscallRet ret = os_->SyscallImpl(pid_, *req_);
  machine_.ChargeCopy(req_->out.size());
  return static_cast<uint64_t>(ret);
}

Err VmmPort::LoadGlibcStyleSegments() {
  // glibc's TLS wants a flat 4 GiB GS segment; its limit no longer excludes
  // the hypervisor hole.
  hwsim::SegmentDescriptor flat;
  flat.base = 0;
  flat.limit = uint64_t{1} << 32;
  return hv_.HcSetSegment(guest_, hwsim::SegmentReg::kGs, flat);
}

}  // namespace minios
