// IPC protocol labels shared between the microkernel port (client side) and
// the user-level servers in the microkernel stack (server side).
//
// Everything here rides on the one IPC primitive: the OS syscall protocol
// (L4Linux-style syscall redirection), the block-service protocol (the
// microkernel counterpart of blkfront/blkback), and the net-service
// protocol (counterpart of netfront/netback).

#ifndef UKVM_SRC_OS_PORTS_PROTOCOLS_H_
#define UKVM_SRC_OS_PORTS_PROTOCOLS_H_

#include <cstdint>

namespace minios {

// regs[0] labels.
inline constexpr uint64_t kOsSyscallLabel = 0x10;  // app -> OS server
inline constexpr uint64_t kBlkInfoLabel = 0x20;    // -> reply [1]=block_size [2]=capacity
inline constexpr uint64_t kBlkReadLabel = 0x21;    // [1]=lba [2]=count -> reply string=data
inline constexpr uint64_t kBlkWriteLabel = 0x22;   // [1]=lba [2]=count, string=data
                                                   // [3]=journal id for E19
                                                   // exactly-once (0 = legacy)
inline constexpr uint64_t kNetAttachLabel = 0x30;  // [1]=rx thread id
inline constexpr uint64_t kNetSendLabel = 0x31;    // string=wire packet
inline constexpr uint64_t kNetRxLabel = 0x32;      // server -> rx thread, string=packet

// Syscall message layout (label kOsSyscallLabel):
//   regs[1]=pid  regs[2]=syscall nr  regs[3..5]=a0..a2
//   regs[6]=in length (string item)  regs[7]=out length requested
// Reply: regs[0]=SyscallRet (two's complement), string=out data.

}  // namespace minios

#endif  // UKVM_SRC_OS_PORTS_PROTOCOLS_H_
