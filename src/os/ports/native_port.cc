#include "src/os/ports/native_port.h"

#include "src/os/kernel.h"

namespace minios {

using ukvm::Err;

// --- Device adaptors -----------------------------------------------------------

class NativePort::NativeNet : public NetDevice {
 public:
  explicit NativeNet(NativePort& port) : port_(port) {}

  Err Send(std::span<const uint8_t> packet) override {
    // One copy: user payload into the driver's staging frame.
    return port_.nic_driver_.SendCopy(packet);
  }

  void SetRecvHandler(RecvHandler handler) override {
    handler_ = std::move(handler);
    port_.nic_driver_.SetRxCallback([this](hwsim::Frame frame, uint32_t len) {
      // One copy out of the rx staging frame into OS memory.
      std::vector<uint8_t> bytes(len);
      port_.machine_.memory().Read(port_.machine_.memory().FrameBase(frame), bytes);
      port_.machine_.ChargeCopy(len);
      if (handler_) {
        handler_(bytes);
      }
    });
  }

  uint32_t mtu() const override { return 1514; }

 private:
  NativePort& port_;
  RecvHandler handler_;
};

class NativePort::NativeBlock : public BlockDevice {
 public:
  NativeBlock(NativePort& port, hwsim::Frame staging)
      : port_(port), staging_(staging) {}

  uint32_t block_size() const override { return port_.disk_.config().block_size; }
  uint64_t capacity_blocks() const override { return port_.disk_.config().capacity_blocks; }

  Err Read(uint64_t lba, uint32_t count, std::span<uint8_t> out) override {
    const uint32_t bs = block_size();
    if (out.size() < uint64_t{count} * bs) {
      return Err::kInvalidArgument;
    }
    uint32_t done = 0;
    while (done < count) {
      const uint32_t chunk = std::min(count - done, port_.disk_driver_.blocks_per_page());
      bool finished = false;
      Err status = Err::kNone;
      UKVM_TRY(port_.disk_driver_.Read(lba + done, chunk, staging_, [&](Err s) {
        status = s;
        finished = true;
      }));
      UKVM_TRY(port_.machine_.WaitUntil([&] { return finished; }, 1'000'000'000));
      if (status != Err::kNone) {
        return status;
      }
      const uint64_t bytes = uint64_t{chunk} * bs;
      port_.machine_.memory().Read(port_.machine_.memory().FrameBase(staging_),
                                   out.subspan(uint64_t{done} * bs, bytes));
      port_.machine_.ChargeCopy(bytes);
      done += chunk;
    }
    return Err::kNone;
  }

  Err Write(uint64_t lba, uint32_t count, std::span<const uint8_t> in) override {
    const uint32_t bs = block_size();
    if (in.size() < uint64_t{count} * bs) {
      return Err::kInvalidArgument;
    }
    uint32_t done = 0;
    while (done < count) {
      const uint32_t chunk = std::min(count - done, port_.disk_driver_.blocks_per_page());
      const uint64_t bytes = uint64_t{chunk} * bs;
      port_.machine_.memory().Write(port_.machine_.memory().FrameBase(staging_),
                                    in.subspan(uint64_t{done} * bs, bytes));
      port_.machine_.ChargeCopy(bytes);
      bool finished = false;
      Err status = Err::kNone;
      UKVM_TRY(port_.disk_driver_.Write(lba + done, chunk, staging_, [&](Err s) {
        status = s;
        finished = true;
      }));
      UKVM_TRY(port_.machine_.WaitUntil([&] { return finished; }, 1'000'000'000));
      if (status != Err::kNone) {
        return status;
      }
      done += chunk;
    }
    return Err::kNone;
  }

 private:
  NativePort& port_;
  hwsim::Frame staging_;
};

class NativePort::NativeConsole : public ConsoleDevice {
 public:
  explicit NativeConsole(NativePort& port) : port_(port) {}
  void Write(std::string_view text) override {
    port_.machine_.ChargeCopy(text.size());
    port_.console_log_.emplace_back(text);
  }

 private:
  NativePort& port_;
};

// --- NativePort ------------------------------------------------------------------

NativePort::NativePort(hwsim::Machine& machine, hwsim::Nic& nic, hwsim::Disk& disk,
                       ukvm::DomainId os_domain, std::vector<hwsim::Frame> pool)
    : machine_(machine),
      os_domain_(os_domain),
      disk_(disk),
      nic_driver_(machine, nic, std::vector<hwsim::Frame>(pool.begin(), pool.end() - 1)),
      disk_driver_(machine, disk),
      nic_irq_(nic.line()),
      disk_irq_(disk.line()) {
  mech_syscall_ = machine_.ledger().InternMechanism("native.syscall", ukvm::CrossingKind::kTrap);
  mech_irq_ = machine_.ledger().InternMechanism("native.irq", ukvm::CrossingKind::kInterrupt);
  net_dev_ = std::make_unique<NativeNet>(*this);
  block_dev_ = std::make_unique<NativeBlock>(*this, pool.back());
  console_dev_ = std::make_unique<NativeConsole>(*this);
  machine_.SetTrapHandler(this);
  machine_.cpu().SetDomain(os_domain_);
  machine_.cpu().SetInterruptsEnabled(true);
}

NetDevice* NativePort::net() { return net_dev_.get(); }
BlockDevice* NativePort::block() { return block_dev_.get(); }
ConsoleDevice* NativePort::console() { return console_dev_.get(); }

NativePort::~NativePort() {
  if (machine_.trap_handler() == this) {
    machine_.SetTrapHandler(nullptr);
  }
}

SyscallRet NativePort::InvokeSyscall(Os& os, ukvm::ProcessId pid, SyscallReq& req) {
  const uint64_t t0 = machine_.Now();
  // Native path: one trap-gate entry straight into the OS kernel — the same
  // hardware journey as Xen's fast shortcut, with no VMM in the way.
  machine_.Charge(machine_.costs().fast_trap_entry);
  machine_.cpu().ChargeSegmentReloads(hwsim::kTrapReloadedSegments);
  machine_.cpu().SetMode(hwsim::PrivLevel::kPrivileged);
  // copy_from_user / copy_to_user at the kernel boundary.
  machine_.ChargeCopy(req.in.size());
  const SyscallRet ret = os.SyscallImpl(pid, req);
  machine_.ChargeCopy(req.out.size());
  machine_.Charge(machine_.costs().fast_trap_return);
  machine_.cpu().SetMode(hwsim::PrivLevel::kUser);
  machine_.ledger().Record(mech_syscall_, os_domain_, os_domain_, machine_.Now() - t0, 0);
  machine_.DeliverPendingInterrupts();
  return ret;
}

void NativePort::HandleTrap(hwsim::TrapFrame& frame) {
  // Only raw hardware exceptions arrive here (syscalls use InvokeSyscall).
  frame.regs[0] = static_cast<uint64_t>(Err::kNotSupported);
}

void NativePort::HandleInterrupt(ukvm::IrqLine line) {
  machine_.ledger().Record(mech_irq_, ukvm::kHardwareDomain, os_domain_, 0, 0);
  if (line == nic_irq_) {
    nic_driver_.OnInterrupt();
  } else if (line == disk_irq_) {
    disk_driver_.OnInterrupt();
  }
}

}  // namespace minios
