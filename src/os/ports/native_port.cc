#include "src/os/ports/native_port.h"

#include "src/os/kernel.h"

namespace minios {

using ukvm::Err;

// --- Device adaptors -----------------------------------------------------------

class NativePort::NativeNet : public NetDevice {
 public:
  explicit NativeNet(NativePort& port) : port_(port) {}

  Err Send(std::span<const uint8_t> packet) override {
    ukvm::ReqOriginScope req_scope(port_.machine_.reqtrace(), port_.req_tx_name_,
                                   port_.os_domain_);
    // One copy: user payload into the driver's staging frame.
    const Err err = port_.nic_driver_.SendCopy(packet);
    if (err == Err::kNone) {
      port_.machine_.reqtrace().EndRequest(req_scope.ref());
    } else {
      port_.machine_.reqtrace().AbandonRequest(req_scope.ref());
    }
    return err;
  }

  void SetRecvHandler(RecvHandler handler) override {
    handler_ = std::move(handler);
    port_.nic_driver_.SetRxCallback([this](hwsim::Frame frame, uint32_t len) {
      // One copy out of the rx staging frame into OS memory.
      std::vector<uint8_t> bytes(len);
      port_.machine_.memory().Read(port_.machine_.memory().FrameBase(frame), bytes);
      port_.machine_.ChargeCopy(len);
      if (handler_) {
        handler_(bytes);
      }
    });
  }

  uint32_t mtu() const override { return 1514; }

 private:
  NativePort& port_;
  RecvHandler handler_;
};

class NativePort::NativeBlock : public BlockDevice {
 public:
  NativeBlock(NativePort& port, hwsim::Frame staging)
      : port_(port), staging_(staging) {}

  uint32_t block_size() const override { return port_.disk_.config().block_size; }
  uint64_t capacity_blocks() const override { return port_.disk_.config().capacity_blocks; }

  Err Read(uint64_t lba, uint32_t count, std::span<uint8_t> out) override {
    const uint32_t bs = block_size();
    if (out.size() < uint64_t{count} * bs) {
      return Err::kInvalidArgument;
    }
    uint32_t done = 0;
    while (done < count) {
      const uint32_t chunk = std::min(count - done, port_.disk_driver_.blocks_per_page());
      // One traced request per chunk; the DMA wait is its device leaf.
      ukvm::ReqOriginScope req_scope(port_.machine_.reqtrace(), port_.req_read_name_,
                                     port_.os_domain_);
      bool finished = false;
      Err status = Err::kNone;
      const uint64_t submit_t0 = port_.machine_.Now();
      Err err = port_.disk_driver_.Read(lba + done, chunk, staging_, [&](Err s) {
        status = s;
        finished = true;
      });
      if (err == Err::kNone) {
        err = port_.machine_.WaitUntil([&] { return finished; }, 1'000'000'000);
      }
      port_.machine_.reqtrace().AddLeaf(port_.req_dev_name_, ukvm::ReqNodeKind::kDevice,
                                        port_.os_domain_, submit_t0, port_.machine_.Now());
      if (err == Err::kNone && status != Err::kNone) {
        err = status;
      }
      if (err != Err::kNone) {
        port_.machine_.reqtrace().AbandonRequest(req_scope.ref());
        return err;
      }
      const uint64_t bytes = uint64_t{chunk} * bs;
      port_.machine_.memory().Read(port_.machine_.memory().FrameBase(staging_),
                                   out.subspan(uint64_t{done} * bs, bytes));
      port_.machine_.ChargeCopy(bytes);
      port_.machine_.reqtrace().EndRequest(req_scope.ref());
      done += chunk;
    }
    return Err::kNone;
  }

  Err Write(uint64_t lba, uint32_t count, std::span<const uint8_t> in) override {
    const uint32_t bs = block_size();
    if (in.size() < uint64_t{count} * bs) {
      return Err::kInvalidArgument;
    }
    uint32_t done = 0;
    while (done < count) {
      const uint32_t chunk = std::min(count - done, port_.disk_driver_.blocks_per_page());
      const uint64_t bytes = uint64_t{chunk} * bs;
      ukvm::ReqOriginScope req_scope(port_.machine_.reqtrace(), port_.req_write_name_,
                                     port_.os_domain_);
      port_.machine_.memory().Write(port_.machine_.memory().FrameBase(staging_),
                                    in.subspan(uint64_t{done} * bs, bytes));
      port_.machine_.ChargeCopy(bytes);
      bool finished = false;
      Err status = Err::kNone;
      const uint64_t submit_t0 = port_.machine_.Now();
      Err err = port_.disk_driver_.Write(lba + done, chunk, staging_, [&](Err s) {
        status = s;
        finished = true;
      });
      if (err == Err::kNone) {
        err = port_.machine_.WaitUntil([&] { return finished; }, 1'000'000'000);
      }
      port_.machine_.reqtrace().AddLeaf(port_.req_dev_name_, ukvm::ReqNodeKind::kDevice,
                                        port_.os_domain_, submit_t0, port_.machine_.Now());
      if (err == Err::kNone && status != Err::kNone) {
        err = status;
      }
      if (err != Err::kNone) {
        port_.machine_.reqtrace().AbandonRequest(req_scope.ref());
        return err;
      }
      port_.machine_.reqtrace().EndRequest(req_scope.ref());
      done += chunk;
    }
    return Err::kNone;
  }

 private:
  NativePort& port_;
  hwsim::Frame staging_;
};

class NativePort::NativeConsole : public ConsoleDevice {
 public:
  explicit NativeConsole(NativePort& port) : port_(port) {}
  void Write(std::string_view text) override {
    port_.machine_.ChargeCopy(text.size());
    port_.console_log_.emplace_back(text);
  }

 private:
  NativePort& port_;
};

// --- NativePort ------------------------------------------------------------------

NativePort::NativePort(hwsim::Machine& machine, hwsim::Nic& nic, hwsim::Disk& disk,
                       ukvm::DomainId os_domain, std::vector<hwsim::Frame> pool)
    : machine_(machine),
      os_domain_(os_domain),
      disk_(disk),
      nic_driver_(machine, nic, std::vector<hwsim::Frame>(pool.begin(), pool.end() - 1)),
      disk_driver_(machine, disk),
      nic_irq_(nic.line()),
      disk_irq_(disk.line()) {
  mech_syscall_ = machine_.ledger().InternMechanism("native.syscall", ukvm::CrossingKind::kTrap);
  mech_irq_ = machine_.ledger().InternMechanism("native.irq", ukvm::CrossingKind::kInterrupt);
  auto& rt = machine_.reqtrace();
  req_syscall_name_ = rt.InternName("os.syscall");
  req_tx_name_ = rt.InternName("net.tx");
  req_read_name_ = rt.InternName("blk.read");
  req_write_name_ = rt.InternName("blk.write");
  req_dev_name_ = rt.InternName("disk.io");
  net_dev_ = std::make_unique<NativeNet>(*this);
  block_dev_ = std::make_unique<NativeBlock>(*this, pool.back());
  console_dev_ = std::make_unique<NativeConsole>(*this);
  machine_.SetTrapHandler(this);
  machine_.cpu().SetDomain(os_domain_);
  machine_.cpu().SetInterruptsEnabled(true);
}

NetDevice* NativePort::net() { return net_dev_.get(); }
BlockDevice* NativePort::block() { return block_dev_.get(); }
ConsoleDevice* NativePort::console() { return console_dev_.get(); }

NativePort::~NativePort() {
  if (machine_.trap_handler() == this) {
    machine_.SetTrapHandler(nullptr);
  }
}

SyscallRet NativePort::InvokeSyscall(Os& os, ukvm::ProcessId pid, SyscallReq& req) {
  const uint64_t t0 = machine_.Now();
  ukvm::ReqOriginScope req_scope(machine_.reqtrace(), req_syscall_name_, os_domain_);
  // Native path: one trap-gate entry straight into the OS kernel — the same
  // hardware journey as Xen's fast shortcut, with no VMM in the way.
  machine_.Charge(machine_.costs().fast_trap_entry);
  machine_.cpu().ChargeSegmentReloads(hwsim::kTrapReloadedSegments);
  machine_.cpu().SetMode(hwsim::PrivLevel::kPrivileged);
  // copy_from_user / copy_to_user at the kernel boundary.
  machine_.ChargeCopy(req.in.size());
  const SyscallRet ret = os.SyscallImpl(pid, req);
  machine_.ChargeCopy(req.out.size());
  machine_.Charge(machine_.costs().fast_trap_return);
  machine_.cpu().SetMode(hwsim::PrivLevel::kUser);
  machine_.ledger().Record(mech_syscall_, os_domain_, os_domain_, machine_.Now() - t0, 0);
  machine_.reqtrace().EndRequest(req_scope.ref());
  machine_.DeliverPendingInterrupts();
  return ret;
}

void NativePort::HandleTrap(hwsim::TrapFrame& frame) {
  // Only raw hardware exceptions arrive here (syscalls use InvokeSyscall).
  frame.regs[0] = static_cast<uint64_t>(Err::kNotSupported);
}

void NativePort::HandleInterrupt(ukvm::IrqLine line) {
  machine_.ledger().Record(mech_irq_, ukvm::kHardwareDomain, os_domain_, 0, 0);
  if (line == nic_irq_) {
    nic_driver_.OnInterrupt();
  } else if (line == disk_irq_) {
    disk_driver_.OnInterrupt();
  }
}

}  // namespace minios
