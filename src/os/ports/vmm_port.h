// VMM port: MiniOS as a paravirtualized guest (XenoLinux-style).
//
// The system-call path is the one §3.2 dissects: by default every guest
// syscall traps into the hypervisor and is reflected into the guest kernel
// (two VMM entries per syscall); when the trap-gate shortcut is armed and
// every segment excludes the hypervisor, syscalls go straight to the guest
// kernel. Loading a glibc-style full-range segment (HcSetSegment) silently
// revokes the shortcut — experiment E2's punchline.
//
// Net and block devices are the paravirtual frontends (netfront/blkfront),
// built by the VMM stack and handed in here.

#ifndef UKVM_SRC_OS_PORTS_VMM_PORT_H_
#define UKVM_SRC_OS_PORTS_VMM_PORT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/hw/machine.h"
#include "src/os/arch_if.h"
#include "src/vmm/hypervisor.h"

namespace minios {

class VmmPort : public ArchPort {
 public:
  // Registers the guest's trap table (syscall + page-fault entries) with
  // the hypervisor; `request_fast_trap` asks for the trap-gate shortcut.
  VmmPort(hwsim::Machine& machine, uvmm::Hypervisor& hv, ukvm::DomainId guest,
          NetDevice* net_frontend, BlockDevice* block_frontend, bool request_fast_trap);
  ~VmmPort() override;

  const char* name() const override { return "vmm"; }
  SyscallRet InvokeSyscall(Os& os, ukvm::ProcessId pid, SyscallReq& req) override;
  NetDevice* net() override { return net_; }
  BlockDevice* block() override { return block_; }
  ConsoleDevice* console() override;

  ukvm::DomainId guest() const { return guest_; }

  // Simulates glibc's TLS setup: loads a full-range GS segment, which makes
  // the hypervisor revoke the fast trap gate (paper §3.2).
  ukvm::Err LoadGlibcStyleSegments();

 private:
  class HvConsole;

  // Runs at guest-kernel privilege: the guest's syscall trap handler.
  uint64_t GuestKernelSyscallEntry(hwsim::TrapFrame& frame);

  hwsim::Machine& machine_;
  uvmm::Hypervisor& hv_;
  ukvm::DomainId guest_;
  NetDevice* net_;
  BlockDevice* block_;
  std::unique_ptr<HvConsole> console_dev_;

  // In-flight syscall state (single-threaded simulation).
  Os* os_ = nullptr;
  ukvm::ProcessId pid_ = ukvm::ProcessId::Invalid();
  SyscallReq* req_ = nullptr;

  // E22: request-trace origin for the trap-and-reflect syscall path, so the
  // VMM stack's control path parents into the request DAG like the ukernel
  // port's syscalls do.
  uint32_t req_syscall_name_ = 0;
};

}  // namespace minios

#endif  // UKVM_SRC_OS_PORTS_VMM_PORT_H_
