// A minimal datagram network stack (UDP-like) over a NetDevice.
//
// Wire format: a 6-byte header [dst_port:16][src_port:16][len:16] followed
// by the payload. There is no addressing beyond ports: the experiments run
// point-to-point wires (guest <-> traffic generator/sink), matching the
// netperf-style setup of Cherkasova & Gardner's measurements.

#ifndef UKVM_SRC_OS_NETSTACK_H_
#define UKVM_SRC_OS_NETSTACK_H_

#include <cstdint>
#include <deque>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/core/error.h"
#include "src/os/arch_if.h"

namespace minios {

inline constexpr uint32_t kNetHeaderBytes = 6;

// Builds a wire packet from header fields + payload.
std::vector<uint8_t> BuildPacket(uint16_t dst_port, uint16_t src_port,
                                 std::span<const uint8_t> payload);

// Parses a wire packet; returns false if malformed.
struct ParsedPacket {
  uint16_t dst_port = 0;
  uint16_t src_port = 0;
  std::span<const uint8_t> payload;
};
bool ParsePacket(std::span<const uint8_t> packet, ParsedPacket& out);

class NetStack {
 public:
  explicit NetStack(NetDevice& dev);

  // Binds a port; received datagrams for it are queued (bounded).
  ukvm::Err Bind(uint16_t port);
  ukvm::Err Unbind(uint16_t port);

  ukvm::Err Send(uint16_t dst_port, uint16_t src_port, std::span<const uint8_t> payload);

  // Non-blocking receive; kWouldBlock when the queue is empty.
  ukvm::Result<std::vector<uint8_t>> Recv(uint16_t port);

  size_t QueuedOn(uint16_t port) const;
  uint64_t rx_datagrams() const { return rx_datagrams_; }
  uint64_t tx_datagrams() const { return tx_datagrams_; }
  uint64_t rx_dropped() const { return rx_dropped_; }

 private:
  static constexpr size_t kMaxQueue = 512;

  void OnPacket(std::span<const uint8_t> packet);

  NetDevice& dev_;
  std::unordered_map<uint16_t, std::deque<std::vector<uint8_t>>> sockets_;
  uint64_t rx_datagrams_ = 0;
  uint64_t tx_datagrams_ = 0;
  uint64_t rx_dropped_ = 0;
};

}  // namespace minios

#endif  // UKVM_SRC_OS_NETSTACK_H_
