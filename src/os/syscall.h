// MiniOS system-call ABI.
//
// One guest OS, three substrates: the same syscall numbers and argument
// conventions are used on the native port (direct kernel entry), the
// microkernel port (each syscall is an IPC to the OS server, as in
// L4Linux), and the VMM port (each syscall is an int-0x80-style trap
// through the hypervisor's exception virtualisation). Experiments E2 and
// E4 rely on this ABI being identical across ports.

#ifndef UKVM_SRC_OS_SYSCALL_H_
#define UKVM_SRC_OS_SYSCALL_H_

#include <cstdint>
#include <span>

namespace minios {

enum class Sys : uint32_t {
  kNull = 0,   // does nothing; measures the bare syscall path (lmbench-style)
  kExit,
  kGetPid,
  kYield,
  kGetTime,    // simulated cycles since boot
  kOpen,
  kCreate,
  kClose,
  kRead,
  kWrite,      // fd 1 = console
  kUnlink,
  kStat,
  kSeek,
  kNetBind,
  kNetSend,
  kNetRecv,    // non-blocking; returns kWouldBlock when empty
};

const char* SysName(Sys nr);

// A system-call request. Buffer spans model the user/kernel copy boundary;
// every byte moved through them is charged as a copy by the handling OS.
struct SyscallReq {
  Sys nr = Sys::kNull;
  uint64_t a0 = 0;
  uint64_t a1 = 0;
  uint64_t a2 = 0;
  std::span<const uint8_t> in;  // data travelling into the kernel
  std::span<uint8_t> out;       // data travelling back to the application
};

// Return convention: >= 0 success (count / handle / value), < 0 is
// -static_cast<int64_t>(ukvm::Err).
using SyscallRet = int64_t;

}  // namespace minios

#endif  // UKVM_SRC_OS_SYSCALL_H_
