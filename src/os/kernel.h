// The MiniOS kernel: processes, the system-call implementation, and the
// glue to its VFS and network stack.
//
// MiniOS plays the role Linux plays in the paper's systems: the legacy OS
// personality hosted either directly on hardware (native port), as a
// paravirtualized guest of the VMM (vmm port, like XenoLinux), or as a
// user-level server on the microkernel (ukernel port, like L4Linux
// [HHL+97]). The kernel code below is identical in all three cases; only
// the ArchPort differs.
//
// Cost conventions: the *port* charges the entry path (trap / IPC /
// reflect) and the user-data copies across its transport; SyscallImpl
// charges only OS-internal work. This keeps the three ports comparable
// without double-charging.

#ifndef UKVM_SRC_OS_KERNEL_H_
#define UKVM_SRC_OS_KERNEL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/error.h"
#include "src/core/ids.h"
#include "src/hw/machine.h"
#include "src/os/arch_if.h"
#include "src/os/netstack.h"
#include "src/os/process.h"
#include "src/os/syscall.h"
#include "src/os/vfs.h"
#include "src/ukernel/sched.h"

namespace minios {

// Converts between the syscall return convention and error codes.
inline SyscallRet RetOf(ukvm::Err err) { return -static_cast<SyscallRet>(err); }
inline ukvm::Err ErrOf(SyscallRet ret) {
  return ret >= 0 ? ukvm::Err::kNone : static_cast<ukvm::Err>(-ret);
}

class Os {
 public:
  Os(hwsim::Machine& machine, ArchPort& port, std::string name);

  // Mounts (or formats, if `format_disk`) the filesystem and brings up the
  // network stack.
  ukvm::Err Boot(bool format_disk);

  const std::string& name() const { return name_; }
  ArchPort& port() { return port_; }
  Vfs& vfs() { return *vfs_; }
  NetStack& net() { return *net_; }

  // --- Process management ----------------------------------------------------

  ukvm::Result<ukvm::ProcessId> Spawn(std::string proc_name, uint32_t priority = 128);
  Process* FindProcess(ukvm::ProcessId pid);

  // --- Application-facing system calls ---------------------------------------
  // Each routes through the port's entry path (this is the measured edge).

  SyscallRet Syscall(ukvm::ProcessId pid, SyscallReq& req);

  SyscallRet Null(ukvm::ProcessId pid);
  SyscallRet GetPid(ukvm::ProcessId pid);
  SyscallRet GetTime(ukvm::ProcessId pid);
  SyscallRet Yield(ukvm::ProcessId pid);
  SyscallRet Exit(ukvm::ProcessId pid, int64_t code);

  SyscallRet Create(ukvm::ProcessId pid, std::string_view file);
  SyscallRet Open(ukvm::ProcessId pid, std::string_view file);
  SyscallRet Close(ukvm::ProcessId pid, int64_t fd);
  SyscallRet Read(ukvm::ProcessId pid, int64_t fd, std::span<uint8_t> out);
  SyscallRet Write(ukvm::ProcessId pid, int64_t fd, std::span<const uint8_t> in);
  SyscallRet Seek(ukvm::ProcessId pid, int64_t fd, uint64_t offset);
  SyscallRet Unlink(ukvm::ProcessId pid, std::string_view file);

  SyscallRet NetBind(ukvm::ProcessId pid, uint16_t port);
  SyscallRet NetSend(ukvm::ProcessId pid, uint16_t dst_port, uint16_t src_port,
                     std::span<const uint8_t> payload);
  SyscallRet NetRecv(ukvm::ProcessId pid, uint16_t port, std::span<uint8_t> out);

  // --- Cooperative process scheduling ------------------------------------------
  // MiniOS runs multiple processes by time-multiplexing step functions: a
  // program's step executes one quantum of work (issuing syscalls as it
  // goes) and returns true when the process is finished.

  using ProgramStep = std::function<bool()>;

  // Attaches a program to an existing process and makes it runnable.
  ukvm::Err AttachProgram(ukvm::ProcessId pid, ProgramStep step);

  // Priority round-robin over runnable programs until all finish (finished
  // processes are Exited). Returns the number of quanta executed; stops at
  // `max_quanta` as a runaway guard.
  uint64_t RunPrograms(uint64_t max_quanta = 1'000'000);

  // --- Kernel-side entry (called by ArchPort implementations) ------------------

  SyscallRet SyscallImpl(ukvm::ProcessId pid, SyscallReq& req);

  uint64_t total_syscalls() const { return total_syscalls_; }

 private:
  SyscallRet DoFileSyscall(Process& proc, SyscallReq& req);
  SyscallRet DoNetSyscall(Process& proc, SyscallReq& req);

  hwsim::Machine& machine_;
  ArchPort& port_;
  std::string name_;
  std::unique_ptr<Vfs> vfs_;
  std::unique_ptr<NetStack> net_;

  std::unordered_map<ukvm::ProcessId, std::unique_ptr<Process>> processes_;
  std::unordered_map<ukvm::ProcessId, ProgramStep> programs_;
  ukern::BasicRunQueue<ukvm::ProcessId> ready_;
  uint32_t next_pid_ = 1;
  uint64_t total_syscalls_ = 0;
};

}  // namespace minios

#endif  // UKVM_SRC_OS_KERNEL_H_
