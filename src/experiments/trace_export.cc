#include "src/experiments/trace_export.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <set>

namespace uharness {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

// Cycles -> "<us>.<frac>" microseconds with three fixed fraction digits,
// in pure integer math so the output is bit-stable across platforms.
std::string CyclesToUs(uint64_t cycles, uint64_t cycles_per_us) {
  char buf[48];
  const uint64_t us = cycles / cycles_per_us;
  const uint64_t frac = (cycles % cycles_per_us) * 1000 / cycles_per_us;
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03" PRIu64, us, frac);
  return buf;
}

}  // namespace

std::string ChromeTraceJson(const ukvm::Tracer& tracer, uint64_t cycles_per_us) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&out, &first] {
    if (!first) {
      out += ",\n";
    } else {
      out += "\n";
      first = false;
    }
  };

  // One "process" per domain that either registered a name or appears in an
  // event, so Perfetto shows readable track names.
  std::set<uint32_t> pids;
  for (const auto& [id, name] : tracer.domain_names()) {
    pids.insert(id);
  }
  tracer.ForEachEvent([&pids](const ukvm::TraceEvent& e) { pids.insert(e.domain.value()); });
  for (uint32_t pid : pids) {
    sep();
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
           ",\"tid\":" + std::to_string(pid) + ",\"args\":{\"name\":\"" +
           JsonEscape(tracer.DomainName(ukvm::DomainId(pid))) + "\"}}";
  }

  tracer.ForEachEvent([&](const ukvm::TraceEvent& e) {
    sep();
    const uint32_t pid = e.domain.value();
    out += "{\"name\":\"" + JsonEscape(tracer.Name(e.name)) + "\",\"pid\":" +
           std::to_string(pid) + ",\"tid\":" + std::to_string(pid) +
           ",\"ts\":" + CyclesToUs(e.time, cycles_per_us);
    switch (e.type) {
      case ukvm::TraceEventType::kSpan:
        out += ",\"ph\":\"X\",\"dur\":" + CyclesToUs(e.dur, cycles_per_us);
        break;
      case ukvm::TraceEventType::kInstant:
        out += ",\"ph\":\"i\",\"s\":\"t\"";
        break;
      case ukvm::TraceEventType::kCrossing:
        out += ",\"ph\":\"X\",\"dur\":" + CyclesToUs(e.dur, cycles_per_us) +
               ",\"cat\":\"crossing\"";
        break;
    }
    out += ",\"args\":{\"seq\":" + std::to_string(e.seq) + ",\"a\":" + std::to_string(e.a) +
           ",\"b\":" + std::to_string(e.b) + "}}";
  });
  out += "\n]}\n";
  return out;
}

std::string CollapsedStacks(const ukvm::Tracer& tracer) {
  std::string out;
  tracer.profiler().ForEachAttribution(
      [&](ukvm::DomainId domain, const std::vector<uint32_t>& path, uint64_t cycles) {
        out += tracer.DomainName(domain);
        if (path.empty()) {
          out += ";(unattributed)";
        } else {
          for (uint32_t frame : path) {
            out += ';';
            out += tracer.profiler().FrameName(frame);
          }
        }
        out += ' ';
        out += std::to_string(cycles);
        out += '\n';
      });
  return out;
}

uint64_t AttributedCycles(const ukvm::CycleProfiler& profiler) {
  uint64_t attributed = 0;
  profiler.ForEachAttribution(
      [&attributed](ukvm::DomainId, const std::vector<uint32_t>& path, uint64_t cycles) {
        if (!path.empty()) {
          attributed += cycles;
        }
      });
  return attributed;
}

std::string RequestTraceJson(const ukvm::RequestTrace& rt, const ukvm::Tracer& tracer,
                             uint64_t cycles_per_us) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&out, &first] {
    if (!first) {
      out += ",\n";
    } else {
      out += "\n";
      first = false;
    }
  };

  // Process-name metadata for every domain a retained node ran in.
  std::set<uint32_t> pids;
  for (const ukvm::CompletedRequest& req : rt.slowest()) {
    for (const ukvm::ReqNode& node : req.nodes) {
      pids.insert(node.domain.valid() ? node.domain.value() : 0);
    }
  }
  for (uint32_t pid : pids) {
    sep();
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
    out += std::to_string(pid);
    out += ",\"tid\":";
    out += std::to_string(pid);
    out += ",\"args\":{\"name\":\"";
    out += JsonEscape(tracer.DomainName(ukvm::DomainId(pid)));
    out += "\"}}";
  }

  for (const ukvm::CompletedRequest& req : rt.slowest()) {
    for (size_t i = 0; i < req.nodes.size(); ++i) {
      const ukvm::ReqNode& node = req.nodes[i];
      const uint32_t pid = node.domain.valid() ? node.domain.value() : 0;
      const uint64_t t1 = node.t1 == ukvm::kReqOpen ? req.t1 : node.t1;
      std::string label = rt.Name(node.name);
      if (label.empty()) {
        label = ukvm::ReqNodeKindName(node.kind);
      }
      sep();
      out += "{\"name\":\"";
      out += JsonEscape(label);
      out += "\",\"ph\":\"X\",\"pid\":";
      out += std::to_string(pid);
      out += ",\"tid\":";
      out += std::to_string(pid);
      out += ",\"ts\":";
      out += CyclesToUs(node.t0, cycles_per_us);
      out += ",\"dur\":";
      out += CyclesToUs(t1 >= node.t0 ? t1 - node.t0 : 0, cycles_per_us);
      out += ",\"args\":{\"req\":";
      out += std::to_string(req.id);
      out += ",\"node\":";
      out += std::to_string(i);
      out += ",\"parent\":";
      out += node.parent == ukvm::kReqNoParent ? "-1" : std::to_string(node.parent);
      out += ",\"kind\":\"";
      out += ukvm::ReqNodeKindName(node.kind);
      out += "\"}}";
      // Cross-domain parent->child handoffs as flow arrows.
      if (node.parent != ukvm::kReqNoParent && node.parent < req.nodes.size()) {
        const ukvm::ReqNode& parent = req.nodes[node.parent];
        if (parent.domain != node.domain) {
          const uint32_t ppid = parent.domain.valid() ? parent.domain.value() : 0;
          const std::string flow_id =
              std::to_string(uint64_t{req.id} * 100000 + i);
          sep();
          out += "{\"name\":\"req\",\"ph\":\"s\",\"cat\":\"req\",\"id\":";
          out += flow_id;
          out += ",\"pid\":";
          out += std::to_string(ppid);
          out += ",\"tid\":";
          out += std::to_string(ppid);
          out += ",\"ts\":";
          out += CyclesToUs(node.t0, cycles_per_us);
          out += "}";
          sep();
          out += "{\"name\":\"req\",\"ph\":\"f\",\"bp\":\"e\",\"cat\":\"req\",\"id\":";
          out += flow_id;
          out += ",\"pid\":";
          out += std::to_string(pid);
          out += ",\"tid\":";
          out += std::to_string(pid);
          out += ",\"ts\":";
          out += CyclesToUs(node.t0, cycles_per_us);
          out += "}";
        }
      }
    }
  }
  out += "\n]}\n";
  return out;
}

std::string RequestTableJson(const ukvm::RequestTrace& rt, const ukvm::Tracer& tracer) {
  const ukvm::ReqTraceLint lint = rt.Lint();
  std::string out = "{\"lint\":{\"completed\":";
  out += std::to_string(lint.completed);
  out += ",\"fully_parented\":";
  out += std::to_string(lint.fully_parented);
  out += ",\"orphaned_handoffs\":";
  out += std::to_string(lint.orphaned_handoffs);
  out += ",\"abandoned\":";
  out += std::to_string(lint.abandoned);
  out += ",\"open\":";
  out += std::to_string(lint.open);
  out += ",\"dropped_nodes\":";
  out += std::to_string(lint.dropped_nodes);
  out += "},\n\"requests\":[";
  bool first_req = true;
  for (const ukvm::CompletedRequest& req : rt.slowest()) {
    out += first_req ? "\n" : ",\n";
    first_req = false;
    const ukvm::ReqNode& root = req.nodes.empty() ? ukvm::ReqNode{} : req.nodes[0];
    out += "{\"id\":";
    out += std::to_string(req.id);
    out += ",\"origin\":\"";
    out += JsonEscape(rt.Name(root.name));
    out += "\",\"domain\":\"";
    out += JsonEscape(tracer.DomainName(root.domain));
    out += "\",\"t0\":";
    out += std::to_string(req.t0);
    out += ",\"e2e\":";
    out += std::to_string(req.t1 - req.t0);
    out += ",\"parented\":";
    out += req.parented ? "true" : "false";
    out += ",\"breakdown\":{";
    bool first_kind = true;
    for (size_t k = 0; k < ukvm::kReqNodeKindCount; ++k) {
      if (req.breakdown[k] == 0) {
        continue;
      }
      if (!first_kind) {
        out += ",";
      }
      first_kind = false;
      out += "\"";
      out += ukvm::ReqNodeKindName(static_cast<ukvm::ReqNodeKind>(k));
      out += "\":";
      out += std::to_string(req.breakdown[k]);
    }
    out += "},\"critical_path\":[";
    bool first_seg = true;
    for (const ukvm::ReqSegment& seg : req.critical_path) {
      if (!first_seg) {
        out += ",";
      }
      first_seg = false;
      const ukvm::ReqNode& node = req.nodes[seg.node];
      std::string label = rt.Name(node.name);
      if (label.empty()) {
        label = ukvm::ReqNodeKindName(node.kind);
      }
      out += "{\"node\":\"";
      out += JsonEscape(label);
      out += "\",\"kind\":\"";
      out += ukvm::ReqNodeKindName(node.kind);
      out += "\",\"t0\":";
      out += std::to_string(seg.t0);
      out += ",\"dur\":";
      out += std::to_string(seg.t1 - seg.t0);
      out += "}";
    }
    out += "]}";
  }
  out += "\n]}\n";
  return out;
}

bool WriteRequestTraceFilesIfRequested(const ukvm::RequestTrace& rt,
                                       const ukvm::Tracer& tracer, const std::string& tag,
                                       uint64_t cycles_per_us) {
  const char* dir = std::getenv("UKVM_TRACE_DIR");
  if (dir == nullptr || *dir == '\0') {
    return false;
  }
  std::string trace_path = dir;
  trace_path += "/REQTRACE_";
  trace_path += tag;
  trace_path += ".json";
  std::string table_path = dir;
  table_path += "/REQTABLE_";
  table_path += tag;
  table_path += ".json";
  std::FILE* f = std::fopen(trace_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "trace_export: cannot write %s\n", trace_path.c_str());
    return false;
  }
  const std::string trace_json = RequestTraceJson(rt, tracer, cycles_per_us);
  std::fwrite(trace_json.data(), 1, trace_json.size(), f);
  std::fclose(f);
  f = std::fopen(table_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "trace_export: cannot write %s\n", table_path.c_str());
    return false;
  }
  const std::string table_json = RequestTableJson(rt, tracer);
  std::fwrite(table_json.data(), 1, table_json.size(), f);
  std::fclose(f);
  std::printf("\n[reqtrace] wrote %s and %s\n", trace_path.c_str(), table_path.c_str());
  return true;
}

bool WriteTraceFilesIfRequested(const ukvm::Tracer& tracer, const std::string& tag,
                                uint64_t cycles_per_us) {
  const char* dir = std::getenv("UKVM_TRACE_DIR");
  if (dir == nullptr || *dir == '\0') {
    return false;
  }
  const std::string json_path = std::string(dir) + "/TRACE_" + tag + ".json";
  const std::string stacks_path = std::string(dir) + "/STACKS_" + tag + ".txt";
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "trace_export: cannot write %s\n", json_path.c_str());
    return false;
  }
  const std::string json = ChromeTraceJson(tracer, cycles_per_us);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  f = std::fopen(stacks_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "trace_export: cannot write %s\n", stacks_path.c_str());
    return false;
  }
  const std::string stacks = CollapsedStacks(tracer);
  std::fwrite(stacks.data(), 1, stacks.size(), f);
  std::fclose(f);
  std::printf("\n[trace] wrote %s and %s\n", json_path.c_str(), stacks_path.c_str());
  return true;
}

}  // namespace uharness
