#include "src/experiments/trace_export.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <set>

namespace uharness {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

// Cycles -> "<us>.<frac>" microseconds with three fixed fraction digits,
// in pure integer math so the output is bit-stable across platforms.
std::string CyclesToUs(uint64_t cycles, uint64_t cycles_per_us) {
  char buf[48];
  const uint64_t us = cycles / cycles_per_us;
  const uint64_t frac = (cycles % cycles_per_us) * 1000 / cycles_per_us;
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03" PRIu64, us, frac);
  return buf;
}

}  // namespace

std::string ChromeTraceJson(const ukvm::Tracer& tracer, uint64_t cycles_per_us) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&out, &first] {
    if (!first) {
      out += ",\n";
    } else {
      out += "\n";
      first = false;
    }
  };

  // One "process" per domain that either registered a name or appears in an
  // event, so Perfetto shows readable track names.
  std::set<uint32_t> pids;
  for (const auto& [id, name] : tracer.domain_names()) {
    pids.insert(id);
  }
  tracer.ForEachEvent([&pids](const ukvm::TraceEvent& e) { pids.insert(e.domain.value()); });
  for (uint32_t pid : pids) {
    sep();
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
           ",\"tid\":" + std::to_string(pid) + ",\"args\":{\"name\":\"" +
           JsonEscape(tracer.DomainName(ukvm::DomainId(pid))) + "\"}}";
  }

  tracer.ForEachEvent([&](const ukvm::TraceEvent& e) {
    sep();
    const uint32_t pid = e.domain.value();
    out += "{\"name\":\"" + JsonEscape(tracer.Name(e.name)) + "\",\"pid\":" +
           std::to_string(pid) + ",\"tid\":" + std::to_string(pid) +
           ",\"ts\":" + CyclesToUs(e.time, cycles_per_us);
    switch (e.type) {
      case ukvm::TraceEventType::kSpan:
        out += ",\"ph\":\"X\",\"dur\":" + CyclesToUs(e.dur, cycles_per_us);
        break;
      case ukvm::TraceEventType::kInstant:
        out += ",\"ph\":\"i\",\"s\":\"t\"";
        break;
      case ukvm::TraceEventType::kCrossing:
        out += ",\"ph\":\"X\",\"dur\":" + CyclesToUs(e.dur, cycles_per_us) +
               ",\"cat\":\"crossing\"";
        break;
    }
    out += ",\"args\":{\"seq\":" + std::to_string(e.seq) + ",\"a\":" + std::to_string(e.a) +
           ",\"b\":" + std::to_string(e.b) + "}}";
  });
  out += "\n]}\n";
  return out;
}

std::string CollapsedStacks(const ukvm::Tracer& tracer) {
  std::string out;
  tracer.profiler().ForEachAttribution(
      [&](ukvm::DomainId domain, const std::vector<uint32_t>& path, uint64_t cycles) {
        out += tracer.DomainName(domain);
        if (path.empty()) {
          out += ";(unattributed)";
        } else {
          for (uint32_t frame : path) {
            out += ';';
            out += tracer.profiler().FrameName(frame);
          }
        }
        out += ' ';
        out += std::to_string(cycles);
        out += '\n';
      });
  return out;
}

uint64_t AttributedCycles(const ukvm::CycleProfiler& profiler) {
  uint64_t attributed = 0;
  profiler.ForEachAttribution(
      [&attributed](ukvm::DomainId, const std::vector<uint32_t>& path, uint64_t cycles) {
        if (!path.empty()) {
          attributed += cycles;
        }
      });
  return attributed;
}

bool WriteTraceFilesIfRequested(const ukvm::Tracer& tracer, const std::string& tag,
                                uint64_t cycles_per_us) {
  const char* dir = std::getenv("UKVM_TRACE_DIR");
  if (dir == nullptr || *dir == '\0') {
    return false;
  }
  const std::string json_path = std::string(dir) + "/TRACE_" + tag + ".json";
  const std::string stacks_path = std::string(dir) + "/STACKS_" + tag + ".txt";
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "trace_export: cannot write %s\n", json_path.c_str());
    return false;
  }
  const std::string json = ChromeTraceJson(tracer, cycles_per_us);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  f = std::fopen(stacks_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "trace_export: cannot write %s\n", stacks_path.c_str());
    return false;
  }
  const std::string stacks = CollapsedStacks(tracer);
  std::fwrite(stacks.data(), 1, stacks.size(), f);
  std::fclose(f);
  std::printf("\n[trace] wrote %s and %s\n", json_path.c_str(), stacks_path.c_str());
  return true;
}

}  // namespace uharness
