#include "src/experiments/table.h"

#include <algorithm>
#include <cstdio>

namespace uharness {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(columns_.size());
  rows_.push_back(std::move(cells));
}

void Table::Print() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::printf("\n%s\n", title_.c_str());
  auto print_sep = [&] {
    std::printf("+");
    for (size_t w : widths) {
      for (size_t i = 0; i < w + 2; ++i) {
        std::printf("-");
      }
      std::printf("+");
    }
    std::printf("\n");
  };
  print_sep();
  std::printf("|");
  for (size_t c = 0; c < columns_.size(); ++c) {
    std::printf(" %-*s |", static_cast<int>(widths[c]), columns_[c].c_str());
  }
  std::printf("\n");
  print_sep();
  for (const auto& row : rows_) {
    std::printf("|");
    for (size_t c = 0; c < columns_.size(); ++c) {
      std::printf(" %-*s |", static_cast<int>(widths[c]), row[c].c_str());
    }
    std::printf("\n");
  }
  print_sep();
}

std::string FmtInt(uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) {
      out.push_back(',');
    }
    out.push_back(*it);
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string FmtDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FmtPercent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string FmtCycles(uint64_t cycles) { return FmtInt(cycles); }

void PrintHeading(const std::string& experiment_id, const std::string& description) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", experiment_id.c_str(), description.c_str());
  std::printf("================================================================\n");
}

}  // namespace uharness
