#include "src/experiments/table.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace uharness {

namespace {

struct RecordedTable {
  std::string title;
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;
  bool host_time = false;
};

std::vector<RecordedTable>& JsonRegistry() {
  static std::vector<RecordedTable> registry;
  return registry;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void PrintJsonStringArray(std::FILE* f, const std::vector<std::string>& items) {
  std::fputc('[', f);
  for (size_t i = 0; i < items.size(); ++i) {
    std::fprintf(f, "%s\"%s\"", i == 0 ? "" : ", ", JsonEscape(items[i]).c_str());
  }
  std::fputc(']', f);
}

}  // namespace

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(columns_.size());
  rows_.push_back(std::move(cells));
}

void Table::Print() const {
  JsonRegistry().push_back(RecordedTable{title_, columns_, rows_, host_time_});
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::printf("\n%s\n", title_.c_str());
  auto print_sep = [&] {
    std::printf("+");
    for (size_t w : widths) {
      for (size_t i = 0; i < w + 2; ++i) {
        std::printf("-");
      }
      std::printf("+");
    }
    std::printf("\n");
  };
  print_sep();
  std::printf("|");
  for (size_t c = 0; c < columns_.size(); ++c) {
    std::printf(" %-*s |", static_cast<int>(widths[c]), columns_[c].c_str());
  }
  std::printf("\n");
  print_sep();
  for (const auto& row : rows_) {
    std::printf("|");
    for (size_t c = 0; c < columns_.size(); ++c) {
      std::printf(" %-*s |", static_cast<int>(widths[c]), row[c].c_str());
    }
    std::printf("\n");
  }
  print_sep();
}

std::string FmtInt(uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) {
      out.push_back(',');
    }
    out.push_back(*it);
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string FmtDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FmtPercent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string FmtCycles(uint64_t cycles) { return FmtInt(cycles); }

void PrintHeading(const std::string& experiment_id, const std::string& description) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", experiment_id.c_str(), description.c_str());
  std::printf("================================================================\n");
}

namespace {

bool WriteTableSet(const std::string& experiment_id, const std::string& path,
                   const std::vector<const RecordedTable*>& tables) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "table: cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"experiment\": \"%s\",\n  \"tables\": [\n",
               JsonEscape(experiment_id).c_str());
  for (size_t t = 0; t < tables.size(); ++t) {
    std::fprintf(f, "    {\n      \"title\": \"%s\",\n      \"columns\": ",
                 JsonEscape(tables[t]->title).c_str());
    PrintJsonStringArray(f, tables[t]->columns);
    std::fprintf(f, ",\n      \"rows\": [\n");
    for (size_t r = 0; r < tables[t]->rows.size(); ++r) {
      std::fprintf(f, "        ");
      PrintJsonStringArray(f, tables[t]->rows[r]);
      std::fprintf(f, "%s\n", r + 1 == tables[t]->rows.size() ? "" : ",");
    }
    std::fprintf(f, "      ]\n    }%s\n", t + 1 == tables.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\n[json] wrote %s\n", path.c_str());
  return true;
}

}  // namespace

bool WriteJsonIfRequested(const std::string& experiment_id) {
  const char* dir = std::getenv("UKVM_BENCH_JSON");
  if (dir == nullptr || *dir == '\0') {
    return false;
  }
  std::vector<const RecordedTable*> det;
  std::vector<const RecordedTable*> host;
  for (const RecordedTable& table : JsonRegistry()) {
    (table.host_time ? host : det).push_back(&table);
  }
  std::string det_path = dir;
  det_path += "/BENCH_";
  det_path += experiment_id;
  det_path += ".json";
  bool ok = WriteTableSet(experiment_id, det_path, det);
  if (!host.empty()) {
    std::string host_path = dir;
    host_path += "/BENCH_";
    host_path += experiment_id;
    host_path += "_HOST.json";
    ok = WriteTableSet(experiment_id, host_path, host) && ok;
  }
  return ok;
}

}  // namespace uharness
