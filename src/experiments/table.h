// Plain-text table and series printing for the experiment binaries: every
// bench target prints the rows/series of the table or figure it regenerates.

#ifndef UKVM_SRC_EXPERIMENTS_TABLE_H_
#define UKVM_SRC_EXPERIMENTS_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace uharness {

class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  void AddRow(std::vector<std::string> cells);
  void Print() const;

  // Flags this table as carrying host wall-clock measurements. Host-time
  // tables are excluded from BENCH_<id>.json (which scripts/check.sh
  // compares bit-exact across runs) and land in BENCH_<id>_HOST.json
  // instead, so an experiment can report both deterministic counters and
  // host overhead without breaking the determinism gate.
  void MarkHostTime() { host_time_ = true; }

  size_t rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
  bool host_time_ = false;
};

// Number formatting helpers.
std::string FmtInt(uint64_t value);
std::string FmtDouble(double value, int precision = 2);
std::string FmtPercent(double fraction, int precision = 1);
std::string FmtCycles(uint64_t cycles);

// Section header for a bench binary's stdout.
void PrintHeading(const std::string& experiment_id, const std::string& description);

// Machine-readable export: every Table::Print() also records the table in a
// process-global registry. When the environment variable UKVM_BENCH_JSON
// names a directory, this writes the registry's deterministic tables as
// <dir>/BENCH_<experiment_id>.json and — if any table was MarkHostTime()d —
// the host-time tables as <dir>/BENCH_<experiment_id>_HOST.json, returning
// true; otherwise it is a no-op. Bench binaries call it once at the end of
// main (scripts/bench.sh sets the variable and collects the files;
// scripts/check.sh compares only the deterministic file bit-exact).
bool WriteJsonIfRequested(const std::string& experiment_id);

}  // namespace uharness

#endif  // UKVM_SRC_EXPERIMENTS_TABLE_H_
