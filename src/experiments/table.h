// Plain-text table and series printing for the experiment binaries: every
// bench target prints the rows/series of the table or figure it regenerates.

#ifndef UKVM_SRC_EXPERIMENTS_TABLE_H_
#define UKVM_SRC_EXPERIMENTS_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace uharness {

class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  void AddRow(std::vector<std::string> cells);
  void Print() const;

  size_t rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

// Number formatting helpers.
std::string FmtInt(uint64_t value);
std::string FmtDouble(double value, int precision = 2);
std::string FmtPercent(double fraction, int precision = 1);
std::string FmtCycles(uint64_t cycles);

// Section header for a bench binary's stdout.
void PrintHeading(const std::string& experiment_id, const std::string& description);

// Machine-readable export: every Table::Print() also records the table in a
// process-global registry. When the environment variable UKVM_BENCH_JSON
// names a directory, this writes the registry as
// <dir>/BENCH_<experiment_id>.json and returns true; otherwise it is a
// no-op. Bench binaries call it once at the end of main (scripts/bench.sh
// sets the variable and collects the files).
bool WriteJsonIfRequested(const std::string& experiment_id);

}  // namespace uharness

#endif  // UKVM_SRC_EXPERIMENTS_TABLE_H_
