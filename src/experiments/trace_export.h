// Exporters for the E17 observability layer (src/core/trace.h):
//
//  - ChromeTraceJson: the flight recorder's retained window as Chrome
//    trace-event JSON, loadable in Perfetto (ui.perfetto.dev) or
//    chrome://tracing. Each simulated domain becomes a process (pid = tid =
//    domain id) named via Tracer::RegisterDomain; spans are complete "X"
//    events, instants "i", crossings "X" events carrying from-domain and
//    byte payloads in args.
//  - CollapsedStacks: the cycle profiler's attributions in flamegraph.pl's
//    collapsed-stack format, one "domain;frame;... cycles" line each.
//
// Both outputs are deterministic: same seed + same Config => byte-identical
// strings (the tracer stores only simulated time and interned ids, and
// every unordered container is sorted before export).

#ifndef UKVM_SRC_EXPERIMENTS_TRACE_EXPORT_H_
#define UKVM_SRC_EXPERIMENTS_TRACE_EXPORT_H_

#include <cstdint>
#include <string>

#include "src/core/reqtrace.h"
#include "src/core/trace.h"

namespace uharness {

// Chrome trace-event JSON. `cycles_per_us` converts simulated cycles to the
// microsecond timestamps the format expects (hwsim::kCyclesPerUs is 2000).
std::string ChromeTraceJson(const ukvm::Tracer& tracer, uint64_t cycles_per_us = 2000);

// flamegraph.pl input: "domain;frame1;frame2 cycles" lines. Cycles charged
// with no frames pushed appear under the pseudo-frame "(unattributed)".
std::string CollapsedStacks(const ukvm::Tracer& tracer);

// Cycles the profiler attributed to at least one real frame (i.e. excluding
// the empty path). Coverage = AttributedCycles / profiler.total_cycles().
uint64_t AttributedCycles(const ukvm::CycleProfiler& profiler);

// When the environment variable UKVM_TRACE_DIR names a directory, writes
// <dir>/TRACE_<tag>.json and <dir>/STACKS_<tag>.txt and returns true;
// otherwise a no-op (mirrors WriteJsonIfRequested in table.h).
bool WriteTraceFilesIfRequested(const ukvm::Tracer& tracer, const std::string& tag,
                                uint64_t cycles_per_us = 2000);

// --- E22 request-trace exporters ---------------------------------------------
//
// Both are deterministic for the same reasons as ChromeTraceJson: the
// request tracer stores only simulated time and interned ids, and the
// retained-slowest list has a total order (e2e desc, id asc).

// The K retained slowest requests as Chrome trace-event JSON: every DAG
// node is a complete "X" event on its domain's track (args carry request
// id, node index, parent, kind), and each parent->child edge that hops
// domains becomes an "s"/"f" flow pair so Perfetto draws the causal arrows
// across tracks. `tracer` supplies domain display names.
std::string RequestTraceJson(const ukvm::RequestTrace& rt, const ukvm::Tracer& tracer,
                             uint64_t cycles_per_us = 2000);

// Per-request JSON table: lint verdict plus one row per retained request
// with origin, e2e, critical-path breakdown by kind, and the named
// critical-path segments.
std::string RequestTableJson(const ukvm::RequestTrace& rt, const ukvm::Tracer& tracer);

// When UKVM_TRACE_DIR names a directory, writes <dir>/REQTRACE_<tag>.json
// (Perfetto flow view) and <dir>/REQTABLE_<tag>.json (per-request table).
bool WriteRequestTraceFilesIfRequested(const ukvm::RequestTrace& rt,
                                       const ukvm::Tracer& tracer, const std::string& tag,
                                       uint64_t cycles_per_us = 2000);

}  // namespace uharness

#endif  // UKVM_SRC_EXPERIMENTS_TRACE_EXPORT_H_
