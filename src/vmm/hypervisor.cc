#include "src/vmm/hypervisor.h"

#include <cassert>

#include "src/core/log.h"

namespace uvmm {

using ukvm::CrossingKind;
using ukvm::DomainId;
using ukvm::Err;
using ukvm::IrqLine;
using ukvm::Result;

const char* HypercallName(HypercallNr nr) {
  switch (nr) {
    case HypercallNr::kSetTrapTable:
      return "set_trap_table";
    case HypercallNr::kMmuUpdate:
      return "mmu_update";
    case HypercallNr::kSetSegment:
      return "set_segment";
    case HypercallNr::kStackSwitch:
      return "stack_switch";
    case HypercallNr::kSchedOp:
      return "sched_op";
    case HypercallNr::kEventChannelOp:
      return "event_channel_op";
    case HypercallNr::kGrantTableOp:
      return "grant_table_op";
    case HypercallNr::kVcpuOp:
      return "vcpu_op";
    case HypercallNr::kSetTimerOp:
      return "set_timer_op";
    case HypercallNr::kConsoleIo:
      return "console_io";
    case HypercallNr::kPhysdevOp:
      return "physdev_op";
    case HypercallNr::kDomctl:
      return "domctl";
    case HypercallNr::kMulticall:
      return "multicall";
    case HypercallNr::kTlbShootdown:
      return "tlb_shootdown";
  }
  return "?";
}

Hypervisor::Hypervisor(hwsim::Machine& machine) : Hypervisor(machine, Config{}) {}

Hypervisor::Hypervisor(hwsim::Machine& machine, Config config)
    : machine_(machine),
      config_(config),
      sched_(machine),
      exc_(machine, sched_, kVmmDomain, config.hole_base, config.hole_end),
      pt_virt_(machine, config.hole_base, config.hole_end) {
  evtchn_ = std::make_unique<EventChannelTable>(
      [this](DomainId target, uint32_t port) { DeliverUpcall(target, port); }, &machine_);
  const uint32_t evtchn_trace_name = machine_.tracer().InternName("evtchn.send");
  evtchn_->SetTraceHook([this, evtchn_trace_name](DomainId target, uint32_t port,
                                                  bool coalesced) {
    machine_.tracer().Instant(evtchn_trace_name, target, port, coalesced ? 1 : 0);
    // E22: latch the sending request on the channel until the upcall
    // delivers (DeliverUpcall adopts it).
    machine_.reqtrace().ChannelStash(target, port, coalesced);
  });
  gnttab_ = std::make_unique<GrantTable>(
      machine_, [this](DomainId dom) { return FindDomain(dom); });
  gnttab_->SetHole(config_.hole_base, config_.hole_end);
  auto& ledger = machine_.ledger();
  mech_hypercall_ = ledger.InternMechanism("xen.hypercall", CrossingKind::kSyncCall);
  mech_hypercall_ret_ =
      ledger.InternMechanism("xen.hypercall.return", CrossingKind::kSyncReply);
  mech_virq_ = ledger.InternMechanism("xen.virq", CrossingKind::kInterrupt);
  mech_upcall_ = ledger.InternMechanism("xen.evtchn.send", CrossingKind::kAsyncNotify);
  ukvm::Tracer& tracer = machine_.tracer();
  for (uint32_t i = 0; i < kHypercallCount; ++i) {
    const std::string name =
        std::string("xen.hc.") + HypercallName(static_cast<HypercallNr>(i));
    trace_span_names_[i] = tracer.InternName(name);
    trace_frames_[i] = tracer.profiler().InternFrame(name);
  }
  trace_upcall_name_ = tracer.InternName("xen.upcall");
  trace_upcall_frame_ = tracer.profiler().InternFrame("xen.upcall");
  trace_softirq_name_ = tracer.InternName("xen.softirq");
  trace_softirq_frame_ = tracer.profiler().InternFrame("xen.softirq");
  trace_virq_frame_ = tracer.profiler().InternFrame("xen.virq");
  machine_.SetTrapHandler(this);
}

Hypervisor::~Hypervisor() {
  if (machine_.trap_handler() == this) {
    machine_.SetTrapHandler(nullptr);
  }
}

// --- Domain lifecycle ----------------------------------------------------------

Result<DomainId> Hypervisor::CreateDomain(const std::string& name, uint64_t pages,
                                          bool privileged) {
  if (pages == 0 || pages > machine_.memory().free_frames()) {
    return Err::kNoMemory;
  }
  const DomainId id{next_domain_id_++};
  auto dom = std::make_unique<Domain>(id, name, machine_.platform(), privileged);
  dom->p2m.reserve(pages);
  for (uint64_t i = 0; i < pages; ++i) {
    auto frame = machine_.memory().AllocFrame(id);
    assert(frame.ok());
    dom->p2m.push_back(*frame);
  }
  // Paravirtual segment setup: all segments truncated below the hypervisor
  // hole, so the fast system-call gate can be validated.
  dom->segments.TruncateAll(config_.hole_base);
  machine_.ChargeTo(kVmmDomain, machine_.costs().kernel_op * pages / 8 +
                                     machine_.costs().kernel_op);
  if (privileged && !dom0_.valid()) {
    dom0_ = id;
  }
  domains_.emplace(id, std::move(dom));
  return id;
}

Err Hypervisor::DestroyDomain(DomainId id) {
  Domain* dom = FindDomain(id);
  if (dom == nullptr || !dom->alive) {
    return Err::kBadHandle;
  }
  // Collect connected event-channel peers before teardown severs the
  // channels: they are the domains owed a kDomainDead notification.
  std::vector<DomainId> peers;
  if (crash_recovery_) {
    peers = evtchn_->PeersOf(id);
  }
  machine_.ChargeTo(kVmmDomain, machine_.costs().kernel_op);
  dom->alive = false;
  // Address-space death: every vCPU must drop the domain's translations
  // before its frames are freed and recycled. Registers the space in the
  // machine's dead-space registry and quarantine-releases its TLB salt.
  machine_.ShootdownSpaceDeath(&dom->space);
  evtchn_->CloseAllOf(id);
  if (crash_recovery_) {
    // Force-revoke everything the corpse granted or held: surviving
    // grantees lose their PTEs (batched shootdown per victim space) so no
    // window onto the freed frames outlives the domain.
    const GrantTable::ReclaimStats stats = gnttab_->ReclaimDeadDomain(id);
    machine_.counters().AddNamed("xen.reclaim.grants", stats.grants_revoked);
    machine_.counters().AddNamed("xen.reclaim.unmaps", stats.mappings_unmapped);
  } else {
    gnttab_->DropAllOf(id);
  }
  for (auto it = irq_bindings_.begin(); it != irq_bindings_.end();) {
    if (it->second.first == id) {
      it = irq_bindings_.erase(it);
    } else {
      ++it;
    }
  }
  for (hwsim::Frame frame : dom->p2m) {
    // Frames flipped away now belong to another domain; free only our own.
    if (machine_.memory().OwnerOf(frame) == id) {
      (void)machine_.memory().FreeFrame(frame);
    }
  }
  dom->p2m.clear();
  sched_.Detach(dom);
  if (machine_.cpu().current_domain() == id) {
    machine_.cpu().SetDomain(kVmmDomain);
    machine_.cpu().SetMode(hwsim::PrivLevel::kPrivileged);
  }
  // With the corpse fully reclaimed, tell the survivors. Peers that never
  // registered a handler get the historical silence.
  for (DomainId peer : peers) {
    DeliverDomainDead(peer, id);
  }
  if (hwsim::RaceSink* rs = machine_.race_sink()) {
    // The corpse's mappings were force-revoked with a shootdown above;
    // that revocation orders its accesses before anything later.
    rs->ContextDead(id);
  }
  return Err::kNone;
}

Domain* Hypervisor::FindDomain(DomainId dom) {
  auto it = domains_.find(dom);
  return it == domains_.end() ? nullptr : it->second.get();
}

bool Hypervisor::DomainAlive(DomainId dom) {
  Domain* d = FindDomain(dom);
  return d != nullptr && d->alive;
}

void Hypervisor::ForEachDomain(const std::function<void(Domain&)>& fn) {
  for (const auto& [id, dom] : domains_) {
    if (dom->alive) {
      fn(*dom);
    }
  }
}

// --- Hypercall plumbing -----------------------------------------------------------

Domain* Hypervisor::HypercallProlog(DomainId dom, HypercallNr nr) {
  Domain* d = FindDomain(dom);
  if (d == nullptr || !d->alive) {
    return nullptr;
  }
  // Open the trace span/frame before the entry charge so the whole
  // hypercall — entry cost included — lands inside it. The epilog pops;
  // pairing holds because upcall reentrancy nests hypercalls LIFO.
  ukvm::Tracer& tracer = machine_.tracer();
  HcTrace trace;
  if (tracer.enabled()) {
    const auto i = static_cast<size_t>(nr);
    trace.span = tracer.BeginSpan(trace_span_names_[i], dom);
    tracer.profiler().Push(trace_frames_[i]);
    trace.pushed = true;
  }
  hc_trace_stack_.push_back(trace);
  machine_.Charge(machine_.costs().hypercall_entry);
  sched_.EnterHypervisor();
  ++d->hypercalls;
  ++total_hypercalls_;
  ++hypercall_counts_[static_cast<size_t>(nr)];
  machine_.ledger().Record(mech_hypercall_, dom, kVmmDomain, machine_.costs().hypercall_entry, 0);
  if (hwsim::RaceSink* rs = machine_.race_sink()) {
    // Degenerate self-edge (release+acquire by the same context): entry and
    // exit order nothing across domains — the detector must not let the VMM
    // hub transitively serialize all guests, so the crossing events above
    // are also excluded from its edge stream (SetHubDomain).
    rs->Release(dom, hwsim::RaceEdgeKey(hwsim::RaceEdgeKind::kHypercall, dom.value()));
  }
  return d;
}

void Hypervisor::HypercallEpilog(Domain* dom) {
  if (dom != nullptr && dom->alive) {
    sched_.SwitchTo(*dom, hwsim::PrivLevel::kGuestKernel);
  }
  machine_.Charge(machine_.costs().hypercall_return);
  if (dom != nullptr) {
    machine_.ledger().Record(mech_hypercall_ret_, kVmmDomain, dom->id,
                             machine_.costs().hypercall_return, 0);
    if (hwsim::RaceSink* rs = machine_.race_sink()) {
      rs->Acquire(dom->id, hwsim::RaceEdgeKey(hwsim::RaceEdgeKind::kHypercall, dom->id.value()));
    }
  }
  assert(!hc_trace_stack_.empty());
  const HcTrace trace = hc_trace_stack_.back();
  hc_trace_stack_.pop_back();
  if (trace.pushed) {
    machine_.tracer().profiler().Pop();
  }
  machine_.tracer().EndSpan(trace.span);
}

uint64_t Hypervisor::HypercallCountOf(HypercallNr nr) const {
  return hypercall_counts_[static_cast<size_t>(nr)];
}

// --- Hypercalls ----------------------------------------------------------------------

Err Hypervisor::HcSetTrapTable(DomainId dom,
                               std::function<uint64_t(hwsim::TrapFrame&)> syscall_entry,
                               std::function<Err(hwsim::Vaddr, bool)> pagefault_entry,
                               bool request_fast_trap) {
  Domain* d = HypercallProlog(dom, HypercallNr::kSetTrapTable);
  if (d == nullptr) {
    return Err::kBadHandle;
  }
  d->syscall_entry = std::move(syscall_entry);
  d->pagefault_entry = std::move(pagefault_entry);
  d->fast_trap_requested = request_fast_trap;
  exc_.RecheckFastPath(*d);
  HypercallEpilog(d);
  return Err::kNone;
}

Err Hypervisor::HcSetUpcall(DomainId dom, std::function<void(uint32_t)> upcall) {
  Domain* d = HypercallProlog(dom, HypercallNr::kVcpuOp);
  if (d == nullptr) {
    return Err::kBadHandle;
  }
  d->evtchn_upcall = std::move(upcall);
  HypercallEpilog(d);
  return Err::kNone;
}

Err Hypervisor::HcSetDomainDeadHandler(DomainId dom, std::function<void(DomainId)> handler) {
  Domain* d = HypercallProlog(dom, HypercallNr::kVcpuOp);
  if (d == nullptr) {
    return Err::kBadHandle;
  }
  d->domain_dead_upcall = std::move(handler);
  HypercallEpilog(d);
  return Err::kNone;
}

Err Hypervisor::HcSetExceptionHandler(DomainId dom,
                                      std::function<Err(hwsim::TrapFrame&)> handler) {
  Domain* d = HypercallProlog(dom, HypercallNr::kSetTrapTable);
  if (d == nullptr) {
    return Err::kBadHandle;
  }
  d->exception_entry = std::move(handler);
  HypercallEpilog(d);
  return Err::kNone;
}

Err Hypervisor::HcSetSegment(DomainId dom, hwsim::SegmentReg reg,
                             hwsim::SegmentDescriptor descriptor) {
  Domain* d = HypercallProlog(dom, HypercallNr::kSetSegment);
  if (d == nullptr) {
    return Err::kBadHandle;
  }
  machine_.Charge(machine_.costs().kernel_op);  // descriptor validation
  d->segments.Set(reg, descriptor);
  machine_.cpu().ChargeSegmentReloads(1);
  // The moment any segment stops excluding the hypervisor, the trap-gate
  // shortcut becomes unsafe and is revoked (§3.2: "Linux's latest glibc
  // violates the assumption and renders the shortcut useless").
  exc_.RecheckFastPath(*d);
  HypercallEpilog(d);
  return Err::kNone;
}

Err Hypervisor::HcMmuUpdate(DomainId dom, std::span<const MmuUpdate> updates) {
  Domain* d = HypercallProlog(dom, HypercallNr::kMmuUpdate);
  if (d == nullptr) {
    return Err::kBadHandle;
  }
  const Err err = pt_virt_.Apply(*d, updates);
  HypercallEpilog(d);
  return err;
}

Result<uint32_t> Hypervisor::HcEvtchnAllocUnbound(DomainId dom, DomainId remote) {
  Domain* d = HypercallProlog(dom, HypercallNr::kEventChannelOp);
  if (d == nullptr) {
    return Err::kBadHandle;
  }
  machine_.Charge(machine_.costs().kernel_op);
  auto port = evtchn_->AllocUnbound(dom, remote);
  HypercallEpilog(d);
  return port;
}

Result<uint32_t> Hypervisor::HcEvtchnBind(DomainId dom, DomainId remote_dom,
                                          uint32_t remote_port) {
  Domain* d = HypercallProlog(dom, HypercallNr::kEventChannelOp);
  if (d == nullptr) {
    return Err::kBadHandle;
  }
  machine_.Charge(machine_.costs().kernel_op);
  auto port = evtchn_->BindInterdomain(dom, remote_dom, remote_port);
  HypercallEpilog(d);
  return port;
}

Err Hypervisor::HcEvtchnSend(DomainId dom, uint32_t port) {
  Domain* d = HypercallProlog(dom, HypercallNr::kEventChannelOp);
  if (d == nullptr) {
    return Err::kBadHandle;
  }
  machine_.Charge(machine_.costs().kernel_op);
  const uint64_t t0 = machine_.Now();
  const Err err = evtchn_->Send(dom, port);
  if (err == Err::kNone) {
    machine_.ledger().Record(mech_upcall_, dom, DomainId::Invalid(), machine_.Now() - t0, 0);
  }
  HypercallEpilog(d);
  return err;
}

Err Hypervisor::HcEvtchnClose(DomainId dom, uint32_t port) {
  Domain* d = HypercallProlog(dom, HypercallNr::kEventChannelOp);
  if (d == nullptr) {
    return Err::kBadHandle;
  }
  const Err err = evtchn_->Close(dom, port);
  HypercallEpilog(d);
  return err;
}

Err Hypervisor::HcEvtchnMask(DomainId dom, uint32_t port, bool masked) {
  Domain* d = HypercallProlog(dom, HypercallNr::kEventChannelOp);
  if (d == nullptr) {
    return Err::kBadHandle;
  }
  const Err err = evtchn_->SetMask(dom, port, masked);
  HypercallEpilog(d);
  return err;
}

Result<uint32_t> Hypervisor::HcGrantAccess(DomainId dom, DomainId grantee, Pfn pfn,
                                           bool writable) {
  Domain* d = HypercallProlog(dom, HypercallNr::kGrantTableOp);
  if (d == nullptr) {
    return Err::kBadHandle;
  }
  auto ref = gnttab_->GrantAccess(dom, grantee, pfn, writable);
  HypercallEpilog(d);
  return ref;
}

Result<uint32_t> Hypervisor::HcGrantTransferSlot(DomainId dom, DomainId grantee, Pfn pfn) {
  Domain* d = HypercallProlog(dom, HypercallNr::kGrantTableOp);
  if (d == nullptr) {
    return Err::kBadHandle;
  }
  auto ref = gnttab_->GrantTransfer(dom, grantee, pfn);
  HypercallEpilog(d);
  return ref;
}

Err Hypervisor::HcGrantEnd(DomainId dom, uint32_t ref) {
  Domain* d = HypercallProlog(dom, HypercallNr::kGrantTableOp);
  if (d == nullptr) {
    return Err::kBadHandle;
  }
  const Err err = gnttab_->EndGrant(dom, ref);
  HypercallEpilog(d);
  return err;
}

Err Hypervisor::HcGrantMap(DomainId dom, DomainId granter, uint32_t ref, hwsim::Vaddr va,
                           bool write) {
  Domain* d = HypercallProlog(dom, HypercallNr::kGrantTableOp);
  if (d == nullptr) {
    return Err::kBadHandle;
  }
  const Err err = gnttab_->MapGrant(dom, granter, ref, va, write);
  HypercallEpilog(d);
  return err;
}

Err Hypervisor::HcGrantUnmap(DomainId dom, DomainId granter, uint32_t ref, hwsim::Vaddr va) {
  Domain* d = HypercallProlog(dom, HypercallNr::kGrantTableOp);
  if (d == nullptr) {
    return Err::kBadHandle;
  }
  const Err err = gnttab_->UnmapGrant(dom, granter, ref, va);
  HypercallEpilog(d);
  return err;
}

Err Hypervisor::HcGrantCopy(DomainId dom, DomainId granter, uint32_t ref, uint64_t grant_off,
                            Pfn local_pfn, uint64_t local_off, uint32_t len, bool to_grant) {
  Domain* d = HypercallProlog(dom, HypercallNr::kGrantTableOp);
  if (d == nullptr) {
    return Err::kBadHandle;
  }
  const Err err = gnttab_->Copy(dom, granter, ref, grant_off, local_pfn, local_off, len, to_grant);
  HypercallEpilog(d);
  return err;
}

Result<hwsim::Frame> Hypervisor::HcGrantTransfer(DomainId dom, Pfn pfn, DomainId granter,
                                                 uint32_t ref) {
  Domain* d = HypercallProlog(dom, HypercallNr::kGrantTableOp);
  if (d == nullptr) {
    return Err::kBadHandle;
  }
  auto frame = gnttab_->Transfer(dom, pfn, granter, ref);
  HypercallEpilog(d);
  return frame;
}

Err Hypervisor::HcTlbShootdown(DomainId dom, std::span<const hwsim::Vaddr> vas) {
  Domain* d = HypercallProlog(dom, HypercallNr::kTlbShootdown);
  if (d == nullptr) {
    return Err::kBadHandle;
  }
  machine_.Charge(machine_.costs().kernel_op);  // validate the batch
  std::vector<hwsim::Vaddr> vpns;
  vpns.reserve(vas.size());
  for (const hwsim::Vaddr va : vas) {
    vpns.push_back(d->space.VpnOf(va));
  }
  // Local invalidation is priced like the guest's own invlpg loop; the
  // machine protocol adds the IPI round (free on a single-vCPU machine).
  machine_.Charge(vpns.empty() ? machine_.costs().tlb_flush_full
                               : machine_.costs().tlb_flush_page * vpns.size());
  machine_.TlbShootdown(&d->space, vpns);
  HypercallEpilog(d);
  return Err::kNone;
}

MulticallOutcome Hypervisor::HcMulticall(DomainId dom, std::span<const MulticallOp> ops) {
  MulticallOutcome out;
  Domain* d = HypercallProlog(dom, HypercallNr::kMulticall);
  if (d == nullptr) {
    out.status = Err::kBadHandle;
    return out;
  }
  out.results.reserve(ops.size());
  multicall_subops_ += ops.size();
  // Transfers in the batch share one TLB shootdown, charged at EndBatch.
  gnttab_->BeginBatch();
  // kTlbShootdown sub-ops likewise coalesce into one deferred IPI round.
  std::vector<hwsim::Vaddr> shootdown_vpns;
  for (const MulticallOp& op : ops) {
    MulticallResult r;
    switch (op.kind) {
      case MulticallOp::Kind::kGrantAccess: {
        auto ref = gnttab_->GrantAccess(dom, op.peer, op.pfn, op.flag);
        r.status = ref.ok() ? Err::kNone : ref.error();
        r.value = ref.ok() ? *ref : 0;
        break;
      }
      case MulticallOp::Kind::kGrantTransferSlot: {
        auto ref = gnttab_->GrantTransfer(dom, op.peer, op.pfn);
        r.status = ref.ok() ? Err::kNone : ref.error();
        r.value = ref.ok() ? *ref : 0;
        break;
      }
      case MulticallOp::Kind::kGrantEnd:
        r.status = gnttab_->EndGrant(dom, op.ref);
        break;
      case MulticallOp::Kind::kGrantMap:
        r.status = gnttab_->MapGrant(dom, op.peer, op.ref, op.va, op.flag);
        break;
      case MulticallOp::Kind::kGrantUnmap:
        r.status = gnttab_->UnmapGrant(dom, op.peer, op.ref, op.va);
        break;
      case MulticallOp::Kind::kGrantCopy:
        r.status = gnttab_->Copy(dom, op.peer, op.ref, op.grant_off, op.pfn, op.local_off,
                                 op.len, op.flag);
        break;
      case MulticallOp::Kind::kGrantTransfer: {
        auto frame = gnttab_->Transfer(dom, op.pfn, op.peer, op.ref);
        r.status = frame.ok() ? Err::kNone : frame.error();
        r.value = frame.ok() ? *frame : 0;
        break;
      }
      case MulticallOp::Kind::kEvtchnSend: {
        machine_.Charge(machine_.costs().kernel_op);
        const uint64_t t0 = machine_.Now();
        r.status = evtchn_->Send(dom, op.port);
        if (r.status == Err::kNone) {
          machine_.ledger().Record(mech_upcall_, dom, DomainId::Invalid(),
                                   machine_.Now() - t0, 0);
        }
        break;
      }
      case MulticallOp::Kind::kTlbShootdown: {
        // Queue `len` pages starting at va; the flush itself (local invlpg
        // loop + one shared IPI round) happens after the batch completes.
        machine_.Charge(machine_.costs().kernel_op);
        const uint32_t pages = op.len == 0 ? 1 : op.len;
        for (uint32_t i = 0; i < pages; ++i) {
          shootdown_vpns.push_back(d->space.VpnOf(op.va) + i);
        }
        break;
      }
    }
    out.results.push_back(r);
    if (r.status != Err::kNone) {
      // Xen aborts a multicall at the first failing sub-op; earlier sub-ops
      // stay applied and their results stand.
      out.status = r.status;
      break;
    }
    ++out.completed;
  }
  gnttab_->EndBatch();
  if (!shootdown_vpns.empty()) {
    machine_.Charge(machine_.costs().tlb_flush_page * shootdown_vpns.size());
    machine_.TlbShootdown(&d->space, shootdown_vpns);
  }
  HypercallEpilog(d);
  return out;
}

Err Hypervisor::HcBindIrq(DomainId dom, IrqLine line, uint32_t port) {
  Domain* d = HypercallProlog(dom, HypercallNr::kPhysdevOp);
  if (d == nullptr) {
    return Err::kBadHandle;
  }
  Err err = Err::kNone;
  if (!d->privileged) {
    err = Err::kPermissionDenied;  // only Dom0/driver domains control hardware
  } else {
    irq_bindings_[line] = {dom, port};
  }
  HypercallEpilog(d);
  return err;
}

Err Hypervisor::HcConsoleIo(DomainId dom, const std::string& text) {
  Domain* d = HypercallProlog(dom, HypercallNr::kConsoleIo);
  if (d == nullptr) {
    return Err::kBadHandle;
  }
  machine_.ChargeCopy(text.size());
  console_log_.push_back(d->name + ": " + text);
  HypercallEpilog(d);
  return Err::kNone;
}

Err Hypervisor::HcSchedYield(DomainId dom) {
  Domain* d = HypercallProlog(dom, HypercallNr::kSchedOp);
  if (d == nullptr) {
    return Err::kBadHandle;
  }
  machine_.Charge(machine_.costs().schedule_decision);
  HypercallEpilog(d);
  return Err::kNone;
}

// --- Guest execution support --------------------------------------------------------

Err Hypervisor::RunGuestUser(DomainId dom, const std::function<void()>& fn) {
  Domain* d = FindDomain(dom);
  if (d == nullptr || !d->alive) {
    return Err::kBadHandle;
  }
  sched_.SwitchTo(*d, hwsim::PrivLevel::kUser);
  machine_.cpu().SetInterruptsEnabled(true);
  machine_.DeliverPendingInterrupts();
  fn();
  return Err::kNone;
}

Err Hypervisor::RunAsDomainKernel(DomainId dom, const std::function<void()>& fn) {
  Domain* d = FindDomain(dom);
  if (d == nullptr || !d->alive) {
    return Err::kBadHandle;
  }
  // Save/switch/restore as DeliverUpcall does, minus the virtual-interrupt
  // injection: this is softirq-style deferred work, not an upcall.
  Domain* prev = sched_.current();
  const hwsim::PrivLevel prev_mode = machine_.cpu().mode();
  const DomainId prev_domain = machine_.cpu().current_domain();

  ukvm::SpanScope span(machine_.tracer(), trace_softirq_name_, dom);
  ukvm::ProfScope frame(machine_.tracer(), trace_softirq_frame_);
  machine_.Charge(machine_.costs().kernel_op);  // softirq dispatch
  sched_.SwitchTo(*d, hwsim::PrivLevel::kGuestKernel);
  fn();

  if (prev != nullptr && prev->alive && prev != d) {
    sched_.SwitchTo(*prev, prev_mode);
  } else if (prev == d) {
    machine_.cpu().SetMode(prev_mode);
  } else {
    machine_.cpu().SetDomain(prev_domain);
    machine_.cpu().SetMode(prev_mode);
  }
  return Err::kNone;
}

uint64_t Hypervisor::GuestSyscall(DomainId dom, hwsim::TrapFrame& frame) {
  Domain* d = FindDomain(dom);
  if (d == nullptr || !d->alive) {
    return static_cast<uint64_t>(-1);
  }
  return exc_.GuestSyscall(*d, frame);
}

Err Hypervisor::GuestPageFault(DomainId dom, hwsim::Vaddr va, bool write) {
  Domain* d = FindDomain(dom);
  if (d == nullptr || !d->alive) {
    return Err::kBadHandle;
  }
  return exc_.GuestPageFault(*d, va, write);
}

Err Hypervisor::GuestException(DomainId dom, hwsim::TrapFrame& frame) {
  Domain* d = FindDomain(dom);
  if (d == nullptr || !d->alive) {
    return Err::kBadHandle;
  }
  return exc_.GuestException(*d, frame);
}

// --- Upcall delivery ------------------------------------------------------------------

void Hypervisor::DeliverUpcall(DomainId target, uint32_t port) {
  Domain* d = FindDomain(target);
  if (d == nullptr || !d->alive || !d->evtchn_upcall) {
    return;
  }
  // Save the interrupted context, inject the virtual interrupt, restore.
  Domain* prev = sched_.current();
  const hwsim::PrivLevel prev_mode = machine_.cpu().mode();
  const DomainId prev_domain = machine_.cpu().current_domain();

  ukvm::SpanScope span(machine_.tracer(), trace_upcall_name_, target);
  ukvm::ProfScope frame(machine_.tracer(), trace_upcall_frame_);
  machine_.Charge(machine_.costs().interrupt_dispatch);
  sched_.SwitchTo(*d, hwsim::PrivLevel::kGuestKernel);
  if (hwsim::RaceSink* rs = machine_.race_sink()) {
    // Acquire half of send->upcall: one upcall covers every Send latched
    // into the pending bit since the last consume.
    rs->Acquire(target, hwsim::RaceEdgeKey(hwsim::RaceEdgeKind::kEvtchn, target.value(), port));
  }
  // E22: the upcall handler runs on behalf of whichever request kicked the
  // channel — adopt its stash (a crossing node [send, now]) for the scope
  // of the handler so ring pops and copies attach to the right DAG.
  const ukvm::ReqTraceRef req_ref =
      machine_.reqtrace().ChannelAdopt(target, port, target);
  ukvm::ReqAdoptScope req_scope(machine_.reqtrace(), req_ref);
  (void)evtchn_->ConsumePending(target, port);
  ++d->upcalls;
  d->evtchn_upcall(port);

  if (prev != nullptr && prev->alive && prev != d) {
    sched_.SwitchTo(*prev, prev_mode);
  } else if (prev == d) {
    machine_.cpu().SetMode(prev_mode);
  } else {
    machine_.cpu().SetDomain(prev_domain);
    machine_.cpu().SetMode(prev_mode);
  }
}

void Hypervisor::DeliverDomainDead(DomainId target, DomainId dead) {
  Domain* d = FindDomain(target);
  if (d == nullptr || !d->alive || !d->domain_dead_upcall) {
    return;
  }
  // Same discipline as DeliverUpcall: save the interrupted context, run the
  // handler at guest-kernel privilege, restore.
  Domain* prev = sched_.current();
  const hwsim::PrivLevel prev_mode = machine_.cpu().mode();
  const DomainId prev_domain = machine_.cpu().current_domain();

  ukvm::SpanScope span(machine_.tracer(), trace_upcall_name_, target);
  ukvm::ProfScope frame(machine_.tracer(), trace_upcall_frame_);
  machine_.Charge(machine_.costs().interrupt_dispatch);
  sched_.SwitchTo(*d, hwsim::PrivLevel::kGuestKernel);
  ++d->upcalls;
  d->domain_dead_upcall(dead);

  if (prev != nullptr && prev->alive && prev != d) {
    sched_.SwitchTo(*prev, prev_mode);
  } else if (prev == d) {
    machine_.cpu().SetMode(prev_mode);
  } else {
    machine_.cpu().SetDomain(prev_domain);
    machine_.cpu().SetMode(prev_mode);
  }
}

// --- hwsim::TrapHandler ------------------------------------------------------------------

void Hypervisor::HandleTrap(hwsim::TrapFrame& frame) {
  const DomainId dom = machine_.cpu().current_domain();
  switch (frame.vector) {
    case hwsim::TrapVector::kSyscall:
      frame.regs[0] = GuestSyscall(dom, frame);
      break;
    case hwsim::TrapVector::kPageFault:
      frame.regs[0] = static_cast<uint64_t>(GuestPageFault(dom, frame.fault_addr,
                                                           frame.write_access));
      break;
    default:
      frame.regs[0] = static_cast<uint64_t>(GuestException(dom, frame));
      break;
  }
}

void Hypervisor::HandleInterrupt(IrqLine line) {
  auto it = irq_bindings_.find(line);
  if (it == irq_bindings_.end()) {
    return;  // unbound hardware interrupt
  }
  const auto [target, port] = it->second;
  // Interrupt demultiplexing is genuine hypervisor work.
  ukvm::ProfScope frame(machine_.tracer(), trace_virq_frame_);
  machine_.ChargeTo(kVmmDomain, machine_.costs().kernel_op);
  machine_.ledger().Record(mech_virq_, ukvm::kHardwareDomain, target, 0, 0);
  Domain* d = FindDomain(target);
  if (d == nullptr || !d->alive) {
    return;
  }
  DeliverUpcall(target, port);
}

}  // namespace uvmm
