// Exception virtualization: trap-and-reflect, and the fast trap-gate
// shortcut (paper §3.2).
//
// The slow path is the architectural fact the paper highlights: "each
// guest-application exception and system call causes a trap into the VMM,
// which then invokes corresponding functionality in the guest OS. This is
// nothing but an IPC operation between the guest application and the guest
// OS." The fast path is Xen's trap-gate shortcut, valid only while every
// active segment excludes the hypervisor; because an x86 trap reloads only
// CS and SS (two of six registers), the hypervisor must disable the
// shortcut the moment the guest loads a non-excluding segment — which
// modern glibc does for TLS.

#ifndef UKVM_SRC_VMM_EXCEPTION_VIRT_H_
#define UKVM_SRC_VMM_EXCEPTION_VIRT_H_

#include <cstdint>

#include "src/core/error.h"
#include "src/hw/machine.h"
#include "src/hw/trap.h"
#include "src/vmm/domain.h"
#include "src/vmm/sched.h"

namespace uvmm {

class ExceptionVirt {
 public:
  ExceptionVirt(hwsim::Machine& machine, DomainScheduler& sched, ukvm::DomainId vmm_domain,
                uint64_t hole_base, uint64_t hole_end);

  // A guest application's system call. Takes the fast path when armed,
  // otherwise the full trap-reflect-iret journey. Returns the guest
  // kernel's return value.
  uint64_t GuestSyscall(Domain& dom, hwsim::TrapFrame& frame);

  // A guest page fault: always reflected through the hypervisor.
  ukvm::Err GuestPageFault(Domain& dom, hwsim::Vaddr va, bool write);

  // Any other guest exception (divide error, GP, ...): §3.2's "each
  // guest-application exception ... causes a trap into the VMM, which then
  // invokes corresponding functionality in the guest OS". There is no fast
  // gate for exceptions — they always pay the full reflect.
  ukvm::Err GuestException(Domain& dom, hwsim::TrapFrame& frame);

  // Recomputes `dom.fast_trap_enabled` from its segment state. Called by
  // the hypervisor after every segment-changing hypercall.
  void RecheckFastPath(Domain& dom) const;

 private:
  hwsim::Machine& machine_;
  DomainScheduler& sched_;
  ukvm::DomainId vmm_domain_;
  uint64_t hole_base_;
  uint64_t hole_end_;

  uint32_t mech_fastgate_ = 0;
  uint32_t mech_reflect_ = 0;
  uint32_t mech_pf_reflect_ = 0;
  uint32_t mech_exc_reflect_ = 0;
  uint32_t mech_iret_ = 0;
};

}  // namespace uvmm

#endif  // UKVM_SRC_VMM_EXCEPTION_VIRT_H_
