// The Xen-style hypervisor.
//
// This is the "rich variety of primitives" system of paper §2.2: domains,
// a thirteen-entry hypercall table (including Xen's multicall batching
// entry), event channels, grant tables (map, copy,
// and page-flip transfer), paravirtual page-table updates, a virtualized
// interrupt controller routing hardware IRQs to driver domains, exception
// virtualisation with the fragile fast system-call gate, and a privileged
// Dom0. Each primitive carries its own validation and security mechanism —
// the structural contrast with the microkernel's single IPC primitive that
// experiment E7 tabulates.

#ifndef UKVM_SRC_VMM_HYPERVISOR_H_
#define UKVM_SRC_VMM_HYPERVISOR_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/error.h"
#include "src/core/ids.h"
#include "src/hw/machine.h"
#include "src/hw/trap.h"
#include "src/vmm/domain.h"
#include "src/vmm/event_channel.h"
#include "src/vmm/exception_virt.h"
#include "src/vmm/grant_table.h"
#include "src/vmm/pt_virt.h"
#include "src/vmm/sched.h"

namespace uvmm {

// One sub-operation of a multicall batch (Xen's multicall_entry_t, typed).
// A tagged union over the hot-path grant and event-channel operations; the
// fields each kind consumes mirror the corresponding Hc* signature.
struct MulticallOp {
  enum class Kind : uint8_t {
    kGrantAccess,        // peer=grantee, pfn, flag=writable -> value=gref
    kGrantTransferSlot,  // peer=grantee, pfn               -> value=gref
    kGrantEnd,           // ref
    kGrantMap,           // peer=granter, ref, va, flag=write
    kGrantUnmap,         // peer=granter, ref, va
    kGrantCopy,          // peer=granter, ref, grant_off, pfn, local_off, len, flag=to_grant
    kGrantTransfer,      // peer=granter, ref, pfn           -> value=received frame
    kEvtchnSend,         // port
    kTlbShootdown,       // va, len=pages: queue for one deferred flush round
  };
  Kind kind = Kind::kEvtchnSend;
  ukvm::DomainId peer = ukvm::DomainId::Invalid();
  uint32_t ref = 0;
  Pfn pfn = 0;
  hwsim::Vaddr va = 0;
  uint64_t grant_off = 0;
  uint64_t local_off = 0;
  uint32_t len = 0;
  uint32_t port = 0;
  bool flag = false;
};

struct MulticallResult {
  ukvm::Err status = ukvm::Err::kNone;
  uint64_t value = 0;  // gref or received frame, per the op kind
};

struct MulticallOutcome {
  // kNone when every sub-op succeeded; otherwise the first failure, with
  // Xen semantics: sub-ops [0, completed) are applied and stay applied.
  ukvm::Err status = ukvm::Err::kNone;
  size_t completed = 0;
  std::vector<MulticallResult> results;  // one per attempted sub-op
  bool ok() const { return status == ukvm::Err::kNone; }
};

// The hypercall table — the VMM ABI (contrast: ukern::SyscallNr has 6
// entries, and 5 of its 6 are degenerate; IPC does almost everything).
enum class HypercallNr : uint32_t {
  kSetTrapTable = 0,
  kMmuUpdate = 1,
  kSetSegment = 2,      // set_gdt / update_descriptor
  kStackSwitch = 3,
  kSchedOp = 4,
  kEventChannelOp = 5,
  kGrantTableOp = 6,
  kVcpuOp = 7,
  kSetTimerOp = 8,
  kConsoleIo = 9,
  kPhysdevOp = 10,      // interrupt-controller virtualisation
  kDomctl = 11,         // domain lifecycle (privileged)
  kMulticall = 12,      // batch of sub-hypercalls, one entry/exit
  kTlbShootdown = 13,   // multi-vCPU TLB flush of the caller's own pages
};
inline constexpr uint32_t kHypercallCount = 14;

const char* HypercallName(HypercallNr nr);

class Hypervisor : public hwsim::TrapHandler {
 public:
  struct Config {
    // The hypervisor hole: a VA range mapped in every domain that guest
    // segments must exclude (64 MiB at the top of a 32-bit space, as Xen).
    uint64_t hole_base = 0xFC00'0000ull;
    uint64_t hole_end = 0x1'0000'0000ull;
  };

  explicit Hypervisor(hwsim::Machine& machine, Config config);
  explicit Hypervisor(hwsim::Machine& machine);
  ~Hypervisor() override;

  Hypervisor(const Hypervisor&) = delete;
  Hypervisor& operator=(const Hypervisor&) = delete;

  hwsim::Machine& machine() { return machine_; }
  ukvm::DomainId vmm_domain() const { return kVmmDomain; }
  const Config& config() const { return config_; }

  // --- Domain lifecycle (Domctl; building a domain is Dom0 tooling) ---------

  // Creates a domain with `pages` frames of pseudo-physical memory. The
  // first domain created is Dom0 if `privileged`.
  ukvm::Result<ukvm::DomainId> CreateDomain(const std::string& name, uint64_t pages,
                                            bool privileged);
  ukvm::Err DestroyDomain(ukvm::DomainId dom);
  Domain* FindDomain(ukvm::DomainId dom);
  bool DomainAlive(ukvm::DomainId dom);

  // E19 crash recovery. When enabled, DestroyDomain force-revokes the dead
  // domain's grants (unmapping surviving grantees' PTEs, with E18-batched
  // shootdowns) and delivers a kDomainDead upcall to every event-channel
  // peer. Default off: the historical teardown, byte-identical to pre-E19.
  void SetCrashRecovery(bool enabled) { crash_recovery_ = enabled; }
  bool crash_recovery() const { return crash_recovery_; }

  // Visits every live domain (order unspecified); for the invariant auditor,
  // which also installs per-space audit hooks, hence the non-const refs.
  void ForEachDomain(const std::function<void(Domain&)>& fn);

  EventChannelTable& evtchn() { return *evtchn_; }
  GrantTable& gnttab() { return *gnttab_; }
  DomainScheduler& sched() { return sched_; }
  ExceptionVirt& exceptions() { return exc_; }
  PtVirt& pt_virt() { return pt_virt_; }

  // --- Hypercalls ------------------------------------------------------------
  // Each Hc* models one hypercall from `dom`'s guest kernel: entry/exit
  // costs, a crossing-ledger record, and the per-domain hypercall counter.

  ukvm::Err HcSetTrapTable(ukvm::DomainId dom,
                           std::function<uint64_t(hwsim::TrapFrame&)> syscall_entry,
                           std::function<ukvm::Err(hwsim::Vaddr, bool)> pagefault_entry,
                           bool request_fast_trap);
  ukvm::Err HcSetUpcall(ukvm::DomainId dom, std::function<void(uint32_t)> upcall);
  // Registers the kDomainDead handler (VcpuOp, like the event upcall).
  ukvm::Err HcSetDomainDeadHandler(ukvm::DomainId dom,
                                   std::function<void(ukvm::DomainId)> handler);
  ukvm::Err HcSetExceptionHandler(ukvm::DomainId dom,
                                  std::function<ukvm::Err(hwsim::TrapFrame&)> handler);
  ukvm::Err HcSetSegment(ukvm::DomainId dom, hwsim::SegmentReg reg,
                         hwsim::SegmentDescriptor descriptor);
  ukvm::Err HcMmuUpdate(ukvm::DomainId dom, std::span<const MmuUpdate> updates);

  ukvm::Result<uint32_t> HcEvtchnAllocUnbound(ukvm::DomainId dom, ukvm::DomainId remote);
  ukvm::Result<uint32_t> HcEvtchnBind(ukvm::DomainId dom, ukvm::DomainId remote_dom,
                                      uint32_t remote_port);
  ukvm::Err HcEvtchnSend(ukvm::DomainId dom, uint32_t port);
  ukvm::Err HcEvtchnClose(ukvm::DomainId dom, uint32_t port);
  ukvm::Err HcEvtchnMask(ukvm::DomainId dom, uint32_t port, bool masked);

  ukvm::Result<uint32_t> HcGrantAccess(ukvm::DomainId dom, ukvm::DomainId grantee, Pfn pfn,
                                       bool writable);
  ukvm::Result<uint32_t> HcGrantTransferSlot(ukvm::DomainId dom, ukvm::DomainId grantee, Pfn pfn);
  ukvm::Err HcGrantEnd(ukvm::DomainId dom, uint32_t ref);
  ukvm::Err HcGrantMap(ukvm::DomainId dom, ukvm::DomainId granter, uint32_t ref, hwsim::Vaddr va,
                       bool write);
  ukvm::Err HcGrantUnmap(ukvm::DomainId dom, ukvm::DomainId granter, uint32_t ref,
                         hwsim::Vaddr va);
  ukvm::Err HcGrantCopy(ukvm::DomainId dom, ukvm::DomainId granter, uint32_t ref,
                        uint64_t grant_off, Pfn local_pfn, uint64_t local_off, uint32_t len,
                        bool to_grant);
  ukvm::Result<hwsim::Frame> HcGrantTransfer(ukvm::DomainId dom, Pfn pfn, ukvm::DomainId granter,
                                             uint32_t ref);

  // Flushes `vas` (page-aligned or not; one page each) of the caller's own
  // address space from every vCPU's TLB: one hypercall, one IPI round for
  // the whole span. Guests call this after batching their own PTE updates
  // — the multi-vCPU analogue of Xen's UVMF_TLB_FLUSH|ALL flags.
  ukvm::Err HcTlbShootdown(ukvm::DomainId dom, std::span<const hwsim::Vaddr> vas);

  // Executes `ops` as one hypercall: a single entry/exit pair (one
  // hypercall_entry/return charge, one ledger call/reply pair) amortised
  // over the whole vector, with each sub-op dispatched to the grant-table /
  // event-channel internals so its own kernel work and mechanism-level
  // ledger records still happen. Xen semantics on failure: stop at the
  // first failing sub-op, leave [0, completed) applied. Grant transfers
  // inside the batch share one deferred TLB shootdown (GrantTable batch).
  MulticallOutcome HcMulticall(ukvm::DomainId dom, std::span<const MulticallOp> ops);

  // Binds hardware interrupt `line` to (`dom`, `port`): PhysdevOp, Dom0 or a
  // privileged driver domain only.
  ukvm::Err HcBindIrq(ukvm::DomainId dom, ukvm::IrqLine line, uint32_t port);

  ukvm::Err HcConsoleIo(ukvm::DomainId dom, const std::string& text);
  ukvm::Err HcSchedYield(ukvm::DomainId dom);

  // --- Guest execution support -------------------------------------------------

  // Runs `fn` as guest-user code of `dom` (context switch in and out).
  ukvm::Err RunGuestUser(ukvm::DomainId dom, const std::function<void()>& fn);

  // Runs `fn` in `dom`'s kernel context, saving and restoring the current
  // one. Deferred driver work (NAPI poll rounds) runs off machine timer
  // events, outside any domain; it must still be charged to the domain that
  // owns the driver, the way a softirq is charged to its CPU's current task.
  ukvm::Err RunAsDomainKernel(ukvm::DomainId dom, const std::function<void()>& fn);

  // A guest application's system call (experiment E2's measured operation).
  uint64_t GuestSyscall(ukvm::DomainId dom, hwsim::TrapFrame& frame);
  ukvm::Err GuestPageFault(ukvm::DomainId dom, hwsim::Vaddr va, bool write);
  ukvm::Err GuestException(ukvm::DomainId dom, hwsim::TrapFrame& frame);

  // --- hwsim::TrapHandler --------------------------------------------------------

  void HandleTrap(hwsim::TrapFrame& frame) override;
  void HandleInterrupt(ukvm::IrqLine line) override;

  // --- Introspection ---------------------------------------------------------------

  uint64_t total_hypercalls() const { return total_hypercalls_; }
  uint64_t HypercallCountOf(HypercallNr nr) const;
  // Sub-operations executed under multicall batches (per-sub-op accounting;
  // each multicall itself counts once in total_hypercalls()).
  uint64_t multicall_subops() const { return multicall_subops_; }
  const std::vector<std::string>& console_log() const { return console_log_; }

 private:
  static constexpr ukvm::DomainId kVmmDomain{0};

  // Hypercall prolog/epilog. Accounting stays with the calling domain (see
  // DomainScheduler::EnterHypervisor); mode flips to privileged and back.
  Domain* HypercallProlog(ukvm::DomainId dom, HypercallNr nr);
  void HypercallEpilog(Domain* dom);

  // Event-channel upcall delivery (virtual interrupt into the target).
  void DeliverUpcall(ukvm::DomainId target, uint32_t port);
  // kDomainDead delivery into a surviving peer (same save/switch/restore).
  void DeliverDomainDead(ukvm::DomainId target, ukvm::DomainId dead);

  hwsim::Machine& machine_;
  Config config_;
  DomainScheduler sched_;
  ExceptionVirt exc_;
  PtVirt pt_virt_;
  std::unique_ptr<EventChannelTable> evtchn_;
  std::unique_ptr<GrantTable> gnttab_;

  std::unordered_map<ukvm::DomainId, std::unique_ptr<Domain>> domains_;
  std::unordered_map<ukvm::IrqLine, std::pair<ukvm::DomainId, uint32_t>> irq_bindings_;
  uint32_t next_domain_id_ = 1;  // 0 is the hypervisor itself
  ukvm::DomainId dom0_ = ukvm::DomainId::Invalid();
  bool crash_recovery_ = false;

  uint32_t mech_hypercall_ = 0;
  uint32_t mech_hypercall_ret_ = 0;
  uint32_t mech_virq_ = 0;
  uint32_t mech_upcall_ = 0;

  // E17: per-hypercall span names and profiler frames, interned at
  // construction so the prolog/epilog hot path is allocation-free. The
  // stack mirrors hypercall nesting (upcall handlers issue hypercalls of
  // their own), pairing each prolog's span with its epilog.
  struct HcTrace {
    uint64_t span = 0;
    bool pushed = false;
  };
  std::array<uint32_t, kHypercallCount> trace_span_names_{};
  std::array<uint32_t, kHypercallCount> trace_frames_{};
  std::vector<HcTrace> hc_trace_stack_;
  uint32_t trace_upcall_name_ = 0;
  uint32_t trace_upcall_frame_ = 0;
  uint32_t trace_softirq_name_ = 0;
  uint32_t trace_softirq_frame_ = 0;
  uint32_t trace_virq_frame_ = 0;

  std::array<uint64_t, kHypercallCount> hypercall_counts_{};
  uint64_t total_hypercalls_ = 0;
  uint64_t multicall_subops_ = 0;
  std::vector<std::string> console_log_;
};

}  // namespace uvmm

#endif  // UKVM_SRC_VMM_HYPERVISOR_H_
