#include "src/vmm/pt_virt.h"

#include <vector>

namespace uvmm {

using ukvm::Err;

PtVirt::PtVirt(hwsim::Machine& machine, uint64_t hole_base, uint64_t hole_end)
    : machine_(machine), hole_base_(hole_base), hole_end_(hole_end) {
  mech_update_ =
      machine_.ledger().InternMechanism("xen.mmu_update", ukvm::CrossingKind::kResourceDelegate);
}

Err PtVirt::Apply(Domain& dom, std::span<const MmuUpdate> updates) {
  // Validation pass: the batch must be entirely legal before any of it is
  // applied (Xen aborts a bad batch without partial effects on the failing
  // entry's neighbours; we validate up front for simplicity).
  for (const MmuUpdate& u : updates) {
    machine_.Charge(machine_.costs().kernel_op);  // per-update validation
    if (u.va >= hole_base_ && u.va < hole_end_) {
      return Err::kPermissionDenied;  // the guest may never map the hypervisor
    }
    if (u.present) {
      auto mfn = dom.MfnOf(u.pfn);
      if (!mfn.ok()) {
        return Err::kOutOfRange;
      }
      if (machine_.memory().OwnerOf(*mfn) != dom.id) {
        return Err::kPermissionDenied;  // e.g. the frame was flipped away
      }
    }
  }
  // Revoked or downgraded translations must leave every vCPU's TLB, not
  // just the local one; the whole batch shares a single shootdown round.
  std::vector<hwsim::Vaddr> revoked_vpns;
  for (const MmuUpdate& u : updates) {
    machine_.Charge(machine_.costs().pte_write);
    if (u.present) {
      // A remap over a live PTE must invalidate the old translation too, or
      // the TLB keeps serving the previous frame.
      const hwsim::Pte* old = dom.space.Walk(u.va);
      if (old != nullptr && old->present) {
        machine_.cpu().InvalidatePage(&dom.space, dom.space.VpnOf(u.va));
        revoked_vpns.push_back(dom.space.VpnOf(u.va));
      }
      dom.space.Map(u.va, *dom.MfnOf(u.pfn), hwsim::PtePerms{u.writable, /*user=*/true});
    } else {
      (void)dom.space.Unmap(u.va);
      // Salt-aware flush: tagged TLBs keep this domain's entries across
      // switches, so the unmap must invalidate even when another space is
      // currently loaded.
      machine_.cpu().InvalidatePage(&dom.space, dom.space.VpnOf(u.va));
      revoked_vpns.push_back(dom.space.VpnOf(u.va));
    }
    ++updates_applied_;
  }
  if (!revoked_vpns.empty()) {
    machine_.TlbShootdown(&dom.space, revoked_vpns);
  }
  machine_.ledger().Record(mech_update_, dom.id, dom.id, 0,
                           updates.size() * machine_.memory().page_size());
  if (audit_hook_) {
    audit_hook_(dom);
  }
  return Err::kNone;
}

}  // namespace uvmm
