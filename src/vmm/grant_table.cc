#include "src/vmm/grant_table.h"

#include <algorithm>
#include <cassert>

namespace uvmm {

using ukvm::CrossingKind;
using ukvm::DomainId;
using ukvm::Err;
using ukvm::Result;

GrantTable::GrantTable(hwsim::Machine& machine, DomainResolver resolver)
    : machine_(machine), resolve_(std::move(resolver)) {
  assert(resolve_);
  auto& ledger = machine_.ledger();
  mech_map_ = ledger.InternMechanism("xen.gnttab.map", CrossingKind::kResourceDelegate);
  mech_unmap_ = ledger.InternMechanism("xen.gnttab.unmap", CrossingKind::kResourceDelegate);
  mech_copy_ = ledger.InternMechanism("xen.gnttab.copy", CrossingKind::kDataTransfer);
  mech_transfer_ = ledger.InternMechanism("xen.gnttab.transfer", CrossingKind::kResourceDelegate);
  ctr_page_flips_ = machine_.counters().Intern("xen.page_flips");
}

GrantTable::Entry* GrantTable::FindEntry(DomainId granter, uint32_t ref) {
  auto it = tables_.find(granter);
  if (it == tables_.end() || ref >= it->second.size() || !it->second[ref].in_use) {
    return nullptr;
  }
  return &it->second[ref];
}

Result<uint32_t> GrantTable::NewEntry(DomainId granter, Entry entry) {
  auto& table = tables_[granter];
  for (uint32_t ref = 0; ref < table.size(); ++ref) {
    if (!table[ref].in_use) {
      table[ref] = entry;
      return ref;
    }
  }
  table.push_back(entry);
  return static_cast<uint32_t>(table.size() - 1);
}

Result<uint32_t> GrantTable::GrantAccess(DomainId granter, DomainId grantee, Pfn pfn,
                                         bool writable) {
  Domain* g = resolve_(granter);
  if (g == nullptr || !g->alive) {
    return Err::kBadHandle;
  }
  if (!g->MfnOf(pfn).ok()) {
    return Err::kOutOfRange;
  }
  machine_.Charge(machine_.costs().kernel_op);
  Entry entry;
  entry.in_use = true;
  entry.grantee = grantee;
  entry.pfn = pfn;
  entry.writable = writable;
  return NewEntry(granter, entry);
}

Result<uint32_t> GrantTable::GrantTransfer(DomainId granter, DomainId grantee, Pfn pfn) {
  Domain* g = resolve_(granter);
  if (g == nullptr || !g->alive) {
    return Err::kBadHandle;
  }
  if (!g->MfnOf(pfn).ok()) {
    return Err::kOutOfRange;
  }
  machine_.Charge(machine_.costs().kernel_op);
  Entry entry;
  entry.in_use = true;
  entry.grantee = grantee;
  entry.pfn = pfn;
  entry.for_transfer = true;
  return NewEntry(granter, entry);
}

Err GrantTable::EndGrant(DomainId granter, uint32_t ref) {
  Entry* entry = FindEntry(granter, ref);
  if (entry == nullptr) {
    return Err::kBadHandle;
  }
  if (entry->active_mappings > 0) {
    return Err::kBusy;  // grantee still holds a mapping; revocation must wait
  }
  machine_.Charge(machine_.costs().kernel_op);
  *entry = Entry{};
  return Err::kNone;
}

Err GrantTable::MapGrant(DomainId grantee, DomainId granter, uint32_t ref, hwsim::Vaddr va,
                         bool write) {
  Entry* entry = FindEntry(granter, ref);
  Domain* g = resolve_(granter);
  Domain* e = resolve_(grantee);
  if (entry == nullptr || g == nullptr || e == nullptr) {
    return Err::kBadHandle;
  }
  if (!g->alive || !e->alive) {
    return Err::kDead;
  }
  if (entry->grantee != grantee || entry->for_transfer) {
    return Err::kPermissionDenied;
  }
  if (write && !entry->writable) {
    return Err::kPermissionDenied;
  }
  if (va >= hole_base_ && va < hole_end_) {
    return Err::kPermissionDenied;  // no guest mapping inside the hypervisor hole
  }
  auto mfn = g->MfnOf(entry->pfn);
  if (!mfn.ok()) {
    return Err::kOutOfRange;
  }
  machine_.Charge(machine_.costs().kernel_op + machine_.costs().pte_write);
  e->space.Map(va, *mfn, hwsim::PtePerms{write, /*user=*/true});
  ++entry->active_mappings;
  entry->mapped_vas.push_back(va);
  machine_.ledger().Record(mech_map_, granter, grantee, 0, machine_.memory().page_size());
  if (audit_hook_) {
    audit_hook_();
  }
  return Err::kNone;
}

Err GrantTable::UnmapGrant(DomainId grantee, DomainId granter, uint32_t ref, hwsim::Vaddr va) {
  Entry* entry = FindEntry(granter, ref);
  Domain* e = resolve_(grantee);
  if (entry == nullptr || e == nullptr) {
    return Err::kBadHandle;
  }
  if (entry->grantee != grantee || entry->active_mappings == 0) {
    return Err::kInvalidArgument;
  }
  machine_.Charge(machine_.costs().kernel_op + machine_.costs().pte_write);
  e->space.Unmap(va);
  // Flush the salted keys too: on tagged-TLB platforms the grantee's entries
  // survive address-space switches, so guarding on the current space would
  // leave a stale translation behind.
  machine_.cpu().InvalidatePage(&e->space, e->space.VpnOf(va));
  // Other vCPUs may cache the revoked translation as well (free at 1 vCPU).
  const hwsim::Vaddr unmapped_vpn = e->space.VpnOf(va);
  machine_.TlbShootdown(&e->space, {&unmapped_vpn, 1});
  --entry->active_mappings;
  if (auto va_it = std::find(entry->mapped_vas.begin(), entry->mapped_vas.end(), va);
      va_it != entry->mapped_vas.end()) {
    entry->mapped_vas.erase(va_it);
  }
  machine_.ledger().Record(mech_unmap_, grantee, granter, 0, 0);
  if (audit_hook_) {
    audit_hook_();
  }
  return Err::kNone;
}

Err GrantTable::Copy(DomainId caller, DomainId granter, uint32_t ref, uint64_t grant_off,
                     Pfn local_pfn, uint64_t local_off, uint32_t len, bool to_grant) {
  Entry* entry = FindEntry(granter, ref);
  Domain* g = resolve_(granter);
  Domain* c = resolve_(caller);
  if (entry == nullptr || g == nullptr || c == nullptr) {
    return Err::kBadHandle;
  }
  if (!g->alive || !c->alive) {
    return Err::kDead;
  }
  if (entry->grantee != caller || entry->for_transfer) {
    return Err::kPermissionDenied;
  }
  if (to_grant && !entry->writable) {
    return Err::kPermissionDenied;
  }
  const uint64_t page = machine_.memory().page_size();
  if (grant_off + len > page || local_off + len > page || len == 0) {
    return Err::kOutOfRange;
  }
  auto grant_mfn = g->MfnOf(entry->pfn);
  auto local_mfn = c->MfnOf(local_pfn);
  if (!grant_mfn.ok() || !local_mfn.ok()) {
    return Err::kOutOfRange;
  }
  machine_.Charge(machine_.costs().kernel_op);
  machine_.ChargeCopy(len);

  auto grant_data = machine_.memory().FrameData(*grant_mfn);
  auto local_data = machine_.memory().FrameData(*local_mfn);
  if (to_grant) {
    std::copy_n(local_data.begin() + static_cast<ptrdiff_t>(local_off), len,
                grant_data.begin() + static_cast<ptrdiff_t>(grant_off));
  } else {
    std::copy_n(grant_data.begin() + static_cast<ptrdiff_t>(grant_off), len,
                local_data.begin() + static_cast<ptrdiff_t>(local_off));
  }
  ++copies_;
  copied_bytes_ += len;
  machine_.ledger().Record(mech_copy_, to_grant ? caller : granter,
                           to_grant ? granter : caller, 0, len);
  return Err::kNone;
}

Result<hwsim::Frame> GrantTable::Transfer(DomainId caller, Pfn caller_pfn, DomainId granter,
                                          uint32_t ref) {
  Entry* entry = FindEntry(granter, ref);
  Domain* g = resolve_(granter);
  Domain* c = resolve_(caller);
  if (entry == nullptr || g == nullptr || c == nullptr) {
    return Err::kBadHandle;
  }
  if (!g->alive || !c->alive) {
    return Err::kDead;
  }
  if (entry->grantee != caller || !entry->for_transfer) {
    return Err::kPermissionDenied;
  }
  auto caller_mfn = c->MfnOf(caller_pfn);
  auto slot_mfn = g->MfnOf(entry->pfn);
  if (!caller_mfn.ok() || !slot_mfn.ok()) {
    return Err::kOutOfRange;
  }

  // The flip itself: two ownership changes, two p2m updates, two PTE-level
  // invalidations and a TLB shootdown. Note: no per-byte term whatsoever.
  // Inside a batch the shootdown is deferred to EndBatch — one flush covers
  // every flip of the multicall.
  machine_.Charge(machine_.costs().kernel_op + 2 * machine_.costs().pte_write);
  if (batch_depth_ > 0) {
    batch_shootdown_pending_ = true;
    ++deferred_shootdowns_;
  } else {
    machine_.Charge(machine_.costs().tlb_shootdown);
  }
  (void)machine_.memory().TransferFrame(*caller_mfn, granter);
  (void)machine_.memory().TransferFrame(*slot_mfn, caller);
  g->p2m[entry->pfn] = *caller_mfn;
  c->p2m[caller_pfn] = *slot_mfn;

  ++transfers_;
  machine_.counters().Add(ctr_page_flips_);
  machine_.ledger().Record(mech_transfer_, caller, granter, 0, machine_.memory().page_size());
  // A transfer grant is single-use.
  *entry = Entry{};
  if (audit_hook_) {
    audit_hook_();
  }
  return *slot_mfn;
}

void GrantTable::BeginBatch() { ++batch_depth_; }

void GrantTable::EndBatch() {
  assert(batch_depth_ > 0);
  if (--batch_depth_ == 0 && batch_shootdown_pending_) {
    machine_.Charge(machine_.costs().tlb_shootdown);
    batch_shootdown_pending_ = false;
  }
}

void GrantTable::DropAllOf(DomainId domain) {
  tables_.erase(domain);
  for (auto& [granter, table] : tables_) {
    for (Entry& entry : table) {
      if (entry.in_use && entry.grantee == domain) {
        entry = Entry{};
      }
    }
  }
  if (audit_hook_) {
    audit_hook_();
  }
}

GrantTable::ReclaimStats GrantTable::ReclaimDeadDomain(DomainId dead) {
  ReclaimStats stats;
  // Grants the dead domain issued: its frames are about to be freed, so any
  // mapping a surviving grantee still holds must be torn out of its page
  // table now — the grantee never cooperates with a crash. Shootdowns batch
  // per grantee space (first-seen order, kept deterministic for the replay
  // digests): one IPI round per victim, not one per page.
  if (auto it = tables_.find(dead); it != tables_.end()) {
    std::vector<std::pair<Domain*, std::vector<hwsim::Vaddr>>> victims;
    for (Entry& entry : it->second) {
      if (!entry.in_use) {
        continue;
      }
      ++stats.grants_revoked;
      if (entry.mapped_vas.empty()) {
        continue;
      }
      Domain* e = resolve_(entry.grantee);
      if (e == nullptr || !e->alive) {
        continue;  // grantee died first; its space is already quarantined
      }
      auto victim = std::find_if(victims.begin(), victims.end(),
                                 [e](const auto& v) { return v.first == e; });
      if (victim == victims.end()) {
        victims.emplace_back(e, std::vector<hwsim::Vaddr>{});
        victim = std::prev(victims.end());
      }
      for (hwsim::Vaddr va : entry.mapped_vas) {
        machine_.Charge(machine_.costs().kernel_op + machine_.costs().pte_write);
        e->space.Unmap(va);
        machine_.cpu().InvalidatePage(&e->space, e->space.VpnOf(va));
        victim->second.push_back(e->space.VpnOf(va));
        ++stats.mappings_unmapped;
        machine_.ledger().Record(mech_unmap_, entry.grantee, dead, 0, 0);
      }
      entry.mapped_vas.clear();
      entry.active_mappings = 0;
    }
    for (auto& [space_owner, vpns] : victims) {
      machine_.TlbShootdown(&space_owner->space, vpns);
    }
    tables_.erase(it);
  }
  // Grants the dead domain held as grantee: its own space is in the
  // machine's dead-space registry (ShootdownSpaceDeath), so the entries
  // just clear — the granter's frames were never at risk.
  for (auto& [granter, table] : tables_) {
    for (Entry& entry : table) {
      if (entry.in_use && entry.grantee == dead) {
        entry = Entry{};
        ++stats.grants_revoked;
      }
    }
  }
  if (audit_hook_) {
    audit_hook_();
  }
  return stats;
}

// --- GrantCache -------------------------------------------------------------------

uint64_t GrantCache::MapKey(DomainId granter, uint32_t ref) {
  return (uint64_t{granter.value()} << 32) | ref;
}

std::optional<uint32_t> GrantCache::LookupGrant(uint64_t key) const {
  auto it = grants_.find(key);
  if (it == grants_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

void GrantCache::InsertGrant(uint64_t key, uint32_t gref) { grants_[key] = gref; }

void GrantCache::DropGrant(uint64_t key) { grants_.erase(key); }

std::optional<hwsim::Vaddr> GrantCache::LookupMapping(DomainId granter, uint32_t ref) const {
  auto it = mappings_.find(MapKey(granter, ref));
  if (it == mappings_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

void GrantCache::InsertMapping(DomainId granter, uint32_t ref, hwsim::Vaddr va) {
  mappings_[MapKey(granter, ref)] = va;
}

void GrantCache::DropMappingsOf(DomainId granter) {
  for (auto it = mappings_.begin(); it != mappings_.end();) {
    if (DomainId{static_cast<uint32_t>(it->first >> 32)} == granter) {
      it = mappings_.erase(it);
    } else {
      ++it;
    }
  }
}

void GrantCache::Clear() {
  grants_.clear();
  mappings_.clear();
}

void GrantTable::ForEachActive(const std::function<void(const GrantView&)>& fn) const {
  for (const auto& [granter, table] : tables_) {
    for (uint32_t ref = 0; ref < table.size(); ++ref) {
      const Entry& entry = table[ref];
      if (entry.in_use) {
        fn(GrantView{granter, ref, entry.grantee, entry.pfn, entry.writable, entry.for_transfer,
                     entry.active_mappings});
      }
    }
  }
}

}  // namespace uvmm
