// Virtual machines (domains, in Xen terminology).
//
// A domain owns machine frames (tracked through a pseudo-physical p2m map),
// a page table maintained only through validated hypercalls, segment state
// (which gates the fast system-call path), and the upcall entry points of
// the guest kernel running inside it. Dom0 — the privileged domain hosting
// legacy drivers — is a Domain with `privileged` set; the paper's super-VM
// critique (§2.2) and the Dom0 I/O measurements (§3.2) revolve around it.

#ifndef UKVM_SRC_VMM_DOMAIN_H_
#define UKVM_SRC_VMM_DOMAIN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/core/error.h"
#include "src/core/ids.h"
#include "src/hw/paging.h"
#include "src/hw/platform.h"
#include "src/hw/segmentation.h"
#include "src/hw/trap.h"

namespace uvmm {

// Guest pseudo-physical frame number (what the guest believes is physical).
using Pfn = uint64_t;

struct Domain {
  Domain(ukvm::DomainId id_in, std::string name_in, const hwsim::Platform& platform,
         bool privileged_in)
      : id(id_in),
        name(std::move(name_in)),
        privileged(privileged_in),
        space(platform.page_shift, platform.vaddr_bits) {}

  ukvm::DomainId id;
  std::string name;
  bool privileged = false;  // Dom0: may control devices and other domains
  bool alive = true;

  hwsim::PageTable space;
  hwsim::SegmentState segments;

  // Pseudo-physical memory: pfn -> machine frame.
  std::vector<hwsim::Frame> p2m;

  // --- Guest-kernel entry points (registered via hypercalls) ---------------

  // System-call handler, runs at guest-kernel privilege. Returns the value
  // placed in the app's return register.
  std::function<uint64_t(hwsim::TrapFrame&)> syscall_entry;

  // Event-channel upcall (the guest's virtual-interrupt handler).
  std::function<void(uint32_t port)> evtchn_upcall;

  // Domain-death notification (E19): called when a domain this one had a
  // connected event channel to is destroyed. Registered only by crash-aware
  // frontends; the default (unset) keeps the historical silent-dangle.
  std::function<void(ukvm::DomainId dead)> domain_dead_upcall;

  // Guest page-fault handler.
  std::function<ukvm::Err(hwsim::Vaddr va, bool write)> pagefault_entry;

  // Guest exception handler (divide error, GP fault, ...). Returns kNone if
  // the guest handled it; anything else makes the hypervisor kill the
  // domain's current activity (the app receives kAborted).
  std::function<ukvm::Err(hwsim::TrapFrame& frame)> exception_entry;

  // --- Fast system-call shortcut state (paper §3.2) --------------------------

  // The guest asked for a direct trap gate to its syscall handler.
  bool fast_trap_requested = false;
  // The hypervisor's verdict: granted only while every segment excludes the
  // hypervisor hole. Recomputed on every segment update.
  bool fast_trap_enabled = false;

  // --- Statistics -------------------------------------------------------------

  uint64_t hypercalls = 0;
  uint64_t syscalls_fast = 0;
  uint64_t syscalls_reflected = 0;
  uint64_t exceptions_reflected = 0;
  uint64_t upcalls = 0;

  ukvm::Result<hwsim::Frame> MfnOf(Pfn pfn) const {
    if (pfn >= p2m.size()) {
      return ukvm::Err::kOutOfRange;
    }
    return p2m[pfn];
  }

  ukvm::Result<Pfn> PfnOf(hwsim::Frame mfn) const {
    for (Pfn pfn = 0; pfn < p2m.size(); ++pfn) {
      if (p2m[pfn] == mfn) {
        return pfn;
      }
    }
    return ukvm::Err::kNotFound;
  }
};

}  // namespace uvmm

#endif  // UKVM_SRC_VMM_DOMAIN_H_
