#include "src/vmm/exception_virt.h"

namespace uvmm {

using ukvm::CrossingKind;
using ukvm::Err;

ExceptionVirt::ExceptionVirt(hwsim::Machine& machine, DomainScheduler& sched,
                             ukvm::DomainId vmm_domain, uint64_t hole_base, uint64_t hole_end)
    : machine_(machine),
      sched_(sched),
      vmm_domain_(vmm_domain),
      hole_base_(hole_base),
      hole_end_(hole_end) {
  auto& ledger = machine_.ledger();
  mech_fastgate_ = ledger.InternMechanism("xen.syscall.fastgate", CrossingKind::kTrap);
  mech_reflect_ = ledger.InternMechanism("xen.syscall.reflect", CrossingKind::kTrap);
  mech_pf_reflect_ = ledger.InternMechanism("xen.pf.reflect", CrossingKind::kTrap);
  mech_exc_reflect_ = ledger.InternMechanism("xen.exc.reflect", CrossingKind::kTrap);
  mech_iret_ = ledger.InternMechanism("xen.iret", CrossingKind::kTrapReturn);
}

void ExceptionVirt::RecheckFastPath(Domain& dom) const {
  // The shortcut stays armed only while *all six* segments exclude the
  // hypervisor hole: a trap gate reloads only CS and SS, so the hypervisor
  // cannot fix up DS/ES/FS/GS on the transition. Platforms without
  // segmentation cannot express the shortcut at all.
  dom.fast_trap_enabled = machine_.platform().has_segmentation && dom.fast_trap_requested &&
                          dom.segments.AllExclude(hole_base_, hole_end_);
}

uint64_t ExceptionVirt::GuestSyscall(Domain& dom, hwsim::TrapFrame& frame) {
  const uint64_t t0 = machine_.Now();
  if (!dom.syscall_entry) {
    return static_cast<uint64_t>(-1);
  }

  if (dom.fast_trap_enabled) {
    // Fast trap gate: user -> guest kernel directly, reloading only CS+SS.
    // The VMM is never entered.
    machine_.Charge(machine_.costs().fast_trap_entry);
    machine_.cpu().ChargeSegmentReloads(hwsim::kTrapReloadedSegments);
    machine_.cpu().SetMode(hwsim::PrivLevel::kGuestKernel);
    const uint64_t ret = dom.syscall_entry(frame);
    machine_.Charge(machine_.costs().fast_trap_return);
    machine_.cpu().SetMode(hwsim::PrivLevel::kUser);
    ++dom.syscalls_fast;
    machine_.ledger().Record(mech_fastgate_, dom.id, dom.id, machine_.Now() - t0, 0);
    return ret;
  }

  // Slow path: trap into the VMM, which reflects into the guest kernel.
  machine_.Charge(machine_.costs().trap_entry);
  sched_.EnterHypervisor();
  machine_.Charge(machine_.costs().kernel_op);  // decode + locate guest trap table
  machine_.ledger().Record(mech_reflect_, dom.id, dom.id, 0, 0);

  // Reflect: return into the guest kernel's registered handler.
  sched_.SwitchTo(dom, hwsim::PrivLevel::kGuestKernel);
  machine_.Charge(machine_.costs().trap_return);
  const uint64_t ret = dom.syscall_entry(frame);

  // The guest kernel returns to its application via an iret hypercall —
  // a second VMM entry per system call.
  machine_.Charge(machine_.costs().hypercall_entry);
  sched_.EnterHypervisor();
  machine_.Charge(machine_.costs().kernel_op);
  sched_.SwitchTo(dom, hwsim::PrivLevel::kUser);
  machine_.Charge(machine_.costs().trap_return);
  ++dom.syscalls_reflected;
  machine_.ledger().Record(mech_iret_, dom.id, dom.id, machine_.Now() - t0, 0);
  return ret;
}

Err ExceptionVirt::GuestPageFault(Domain& dom, hwsim::Vaddr va, bool write) {
  if (!dom.pagefault_entry) {
    return Err::kFault;
  }
  const uint64_t t0 = machine_.Now();
  // Page faults always enter the VMM (it must inspect the fault to
  // distinguish guest faults from shadow/validation work).
  machine_.Charge(machine_.costs().trap_entry);
  sched_.EnterHypervisor();
  machine_.Charge(machine_.costs().kernel_op);
  machine_.ledger().Record(mech_pf_reflect_, dom.id, dom.id, 0, 0);

  sched_.SwitchTo(dom, hwsim::PrivLevel::kGuestKernel);
  machine_.Charge(machine_.costs().trap_return);
  const Err err = dom.pagefault_entry(va, write);

  machine_.Charge(machine_.costs().hypercall_entry);
  sched_.EnterHypervisor();
  sched_.SwitchTo(dom, hwsim::PrivLevel::kUser);
  machine_.Charge(machine_.costs().trap_return);
  machine_.ledger().Record(mech_iret_, dom.id, dom.id, machine_.Now() - t0, 0);
  return err;
}

Err ExceptionVirt::GuestException(Domain& dom, hwsim::TrapFrame& frame) {
  if (!dom.exception_entry) {
    return Err::kAborted;  // unhandled: the hypervisor terminates the activity
  }
  const uint64_t t0 = machine_.Now();
  machine_.Charge(machine_.costs().trap_entry);
  sched_.EnterHypervisor();
  machine_.Charge(machine_.costs().kernel_op);
  machine_.ledger().Record(mech_exc_reflect_, dom.id, dom.id, 0, 0);

  sched_.SwitchTo(dom, hwsim::PrivLevel::kGuestKernel);
  machine_.Charge(machine_.costs().trap_return);
  const Err err = dom.exception_entry(frame);
  ++dom.exceptions_reflected;

  machine_.Charge(machine_.costs().hypercall_entry);
  sched_.EnterHypervisor();
  sched_.SwitchTo(dom, hwsim::PrivLevel::kUser);
  machine_.Charge(machine_.costs().trap_return);
  machine_.ledger().Record(mech_iret_, dom.id, dom.id, machine_.Now() - t0, 0);
  return err;
}

}  // namespace uvmm
