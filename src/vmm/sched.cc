#include "src/vmm/sched.h"

namespace uvmm {

void DomainScheduler::SwitchTo(Domain& dom, hwsim::PrivLevel level) {
  hwsim::Cpu& cpu = machine_.cpu();
  if (current_ != &dom) {
    if (machine_.tracer().enabled()) {
      if (trace_switch_name_ == 0) {
        trace_switch_name_ = machine_.tracer().InternName("sched.switch");
      }
      machine_.tracer().Instant(trace_switch_name_, dom.id,
                                current_ != nullptr ? current_->id.value() : 0);
    }
    machine_.Charge(machine_.costs().schedule_decision);
    cpu.SwitchAddressSpace(&dom.space);
    cpu.SetSegments(&dom.segments);
    ++switches_;
    current_ = &dom;
  }
  cpu.SetDomain(dom.id);
  cpu.SetMode(level);
}

void DomainScheduler::EnterHypervisor() {
  machine_.cpu().SetMode(hwsim::PrivLevel::kPrivileged);
}

void CreditRunner::Add(Domain* dom, Step step) {
  jobs_.push_back(Job{dom, std::move(step), false, 0, 0});
}

uint64_t CreditRunner::ConsumedBy(ukvm::DomainId dom) const {
  uint64_t total = 0;
  for (const Job& job : jobs_) {
    if (job.dom->id == dom) {
      total += job.consumed;
    }
  }
  return total;
}

void CreditRunner::Run(uint64_t refill_period) {
  const int64_t period_credits = static_cast<int64_t>(refill_period / hwsim::kCyclesPerUs);

  // Each accounting period hands out exactly as many credits as one period
  // of CPU consumes (1 credit = 1 us), split in proportion to weights —
  // the property that makes long-run shares track the weight vector.
  auto refill = [this, period_credits] {
    uint64_t weight_sum = 0;
    for (const Job& job : jobs_) {
      if (!job.done) {
        weight_sum += sched_.WeightOf(job.dom->id);
      }
    }
    if (weight_sum == 0) {
      return;
    }
    for (Job& job : jobs_) {
      if (!job.done) {
        const int64_t share = period_credits *
                              static_cast<int64_t>(sched_.WeightOf(job.dom->id)) /
                              static_cast<int64_t>(weight_sum);
        // Cap accumulation (Xen's anti-hoarding rule).
        job.credits = std::min(job.credits + share, 2 * period_credits);
      }
    }
  };
  refill();
  uint64_t next_refill = machine_.Now() + refill_period;

  while (true) {
    Job* best = nullptr;
    for (Job& job : jobs_) {
      if (!job.done && (best == nullptr || job.credits > best->credits)) {
        best = &job;
      }
    }
    if (best == nullptr) {
      return;  // all done
    }
    sched_.SwitchTo(*best->dom, hwsim::PrivLevel::kUser);
    const uint64_t t0 = machine_.Now();
    best->done = best->step();
    const uint64_t consumed = machine_.Now() - t0;
    best->consumed += consumed;
    // Debit one credit per microsecond consumed (Xen's accounting grain).
    best->credits -= static_cast<int64_t>(consumed / hwsim::kCyclesPerUs + 1);
    if (machine_.Now() >= next_refill) {
      refill();
      next_refill = machine_.Now() + refill_period;
    }
  }
}

}  // namespace uvmm
