// Grant tables: Xen's mechanism for controlled cross-domain memory access.
//
// Three operations matter to the experiments:
//  - map/unmap: a domain maps another's granted page (resource delegation —
//    what the microkernel does with a single IPC map item);
//  - copy: the hypervisor moves bytes between domains (data transfer —
//    the microkernel's IPC string item);
//  - transfer: page flipping, exchanging frame ownership between domains.
//    Cherkasova & Gardner found Dom0's CPU cost proportional to the number
//    of these flips "irrespective of the message size" — the flip has a
//    fixed price (PTE updates + a TLB shootdown) no matter how few bytes
//    the page carries. Experiments E3 and E9 reproduce exactly that.

#ifndef UKVM_SRC_VMM_GRANT_TABLE_H_
#define UKVM_SRC_VMM_GRANT_TABLE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/core/error.h"
#include "src/core/ids.h"
#include "src/hw/machine.h"
#include "src/vmm/domain.h"

namespace uvmm {

class GrantTable {
 public:
  using DomainResolver = std::function<Domain*(ukvm::DomainId)>;

  GrantTable(hwsim::Machine& machine, DomainResolver resolver);

  // The hypervisor hole: MapGrant refuses to place a grantee mapping inside
  // [base, end), the way mmu_update always has. The hypervisor installs its
  // configured hole at construction; the auditor's kHypervisorHoleMapping
  // rule remains as defence-in-depth behind this check.
  void SetHole(uint64_t base, uint64_t end) {
    hole_base_ = base;
    hole_end_ = end;
  }

  // --- Granter side ----------------------------------------------------------

  // Grants `grantee` (read or read/write) access to `granter`'s page `pfn`.
  ukvm::Result<uint32_t> GrantAccess(ukvm::DomainId granter, ukvm::DomainId grantee, Pfn pfn,
                                     bool writable);

  // Advertises page `pfn` of `granter` as a transfer slot: a Transfer by
  // `grantee` will swap a frame into it.
  ukvm::Result<uint32_t> GrantTransfer(ukvm::DomainId granter, ukvm::DomainId grantee, Pfn pfn);

  // Revokes a grant; fails with kBusy while the grantee has it mapped.
  ukvm::Err EndGrant(ukvm::DomainId granter, uint32_t ref);

  // --- Grantee side ----------------------------------------------------------

  // Maps the granted frame into `grantee`'s space at `va`.
  ukvm::Err MapGrant(ukvm::DomainId grantee, ukvm::DomainId granter, uint32_t ref,
                     hwsim::Vaddr va, bool write);
  ukvm::Err UnmapGrant(ukvm::DomainId grantee, ukvm::DomainId granter, uint32_t ref,
                       hwsim::Vaddr va);

  // Hypervisor-mediated copy of `len` bytes between the granted page
  // (offset `grant_off`) and the caller's own page `local_pfn` (offset
  // `local_off`). `to_grant` selects the direction.
  ukvm::Err Copy(ukvm::DomainId caller, ukvm::DomainId granter, uint32_t ref, uint64_t grant_off,
                 Pfn local_pfn, uint64_t local_off, uint32_t len, bool to_grant);

  // Page flip: exchanges the frame at `caller`'s `caller_pfn` with the frame
  // in `granter`'s advertised transfer slot `ref`. Ownership and p2m entries
  // swap; contents travel with the frames. Fixed cost, independent of how
  // many payload bytes the page holds. Returns the machine frame now backing
  // the caller's `caller_pfn` (the page received in exchange).
  ukvm::Result<hwsim::Frame> Transfer(ukvm::DomainId caller, Pfn caller_pfn,
                                      ukvm::DomainId granter, uint32_t ref);

  // Drops all grants issued by or mapped by `domain` (domain destruction).
  // Entries vanish from the table, but grantee-side PTEs installed through
  // MapGrant stay behind — the historical behaviour, kept for the
  // recovery-disabled path.
  void DropAllOf(ukvm::DomainId domain);

  // Crash-recovery teardown (E19): like DropAllOf, but first force-revokes
  // every live mapping of a grant the dead domain issued — unmapping the
  // grantee's PTEs and shooting down its TLBs (one batched IPI round per
  // grantee space, the E18 protocol) so no surviving domain keeps a window
  // onto frames about to be freed and recycled.
  struct ReclaimStats {
    uint32_t grants_revoked = 0;
    uint32_t mappings_unmapped = 0;
  };
  ReclaimStats ReclaimDeadDomain(ukvm::DomainId dead);

  // --- Batching ---------------------------------------------------------------

  // Between BeginBatch and EndBatch, Transfer defers its TLB shootdown: the
  // per-flip charge drops to the ownership/p2m work, and EndBatch charges a
  // single shootdown covering every flip in the batch (one IPI flush at the
  // end of a multicall, as Xen's deferred-flush hypercalls do). Safe here
  // because no guest translates between sub-ops of one hypercall. Nests.
  void BeginBatch();
  void EndBatch();

  uint64_t deferred_shootdowns() const { return deferred_shootdowns_; }

  // --- Auditing ---------------------------------------------------------------

  // A read-only view of one live grant entry, for the invariant auditor.
  struct GrantView {
    ukvm::DomainId granter;
    uint32_t ref = 0;
    ukvm::DomainId grantee;
    Pfn pfn = 0;
    bool writable = false;
    bool for_transfer = false;
    uint32_t active_mappings = 0;
  };

  // Visits every in-use grant entry.
  void ForEachActive(const std::function<void(const GrantView&)>& fn) const;

  // Observer called after any operation that changes grant state (grant,
  // end, map, unmap, transfer). Installed by the auditor; nullptr detaches.
  void SetAuditHook(std::function<void()> hook) { audit_hook_ = std::move(hook); }

  uint64_t transfers() const { return transfers_; }
  uint64_t copies() const { return copies_; }
  uint64_t copied_bytes() const { return copied_bytes_; }

 private:
  struct Entry {
    bool in_use = false;
    ukvm::DomainId grantee = ukvm::DomainId::Invalid();
    Pfn pfn = 0;
    bool writable = false;
    bool for_transfer = false;
    uint32_t active_mappings = 0;
    // Where the grantee mapped this grant (one VA per active mapping), so
    // ReclaimDeadDomain can force-unmap without the grantee's cooperation.
    std::vector<hwsim::Vaddr> mapped_vas;
  };

  Entry* FindEntry(ukvm::DomainId granter, uint32_t ref);
  ukvm::Result<uint32_t> NewEntry(ukvm::DomainId granter, Entry entry);

  hwsim::Machine& machine_;
  DomainResolver resolve_;
  uint64_t hole_base_ = 0;  // hole_base_ == hole_end_: no hole configured
  uint64_t hole_end_ = 0;
  std::unordered_map<ukvm::DomainId, std::vector<Entry>> tables_;

  uint32_t mech_map_ = 0;
  uint32_t mech_unmap_ = 0;
  uint32_t mech_copy_ = 0;
  uint32_t mech_transfer_ = 0;
  uint32_t ctr_page_flips_ = 0;

  uint64_t transfers_ = 0;
  uint64_t copies_ = 0;
  uint64_t copied_bytes_ = 0;
  uint32_t batch_depth_ = 0;
  bool batch_shootdown_pending_ = false;
  uint64_t deferred_shootdowns_ = 0;
  std::function<void()> audit_hook_;
};

// Persistent-grant recycling cache (Xen's "persistent grants" protocol
// extension): both ends of a split driver keep steady-state grants alive
// across I/Os instead of paying grant/map/unmap/end hypercalls per packet.
// The frontend side remembers pfn -> gref (grant once, reuse forever); the
// backend side remembers (granter, gref) -> mapped va (map once, never
// unmap). Pure bookkeeping — the hypercalls it elides are the saving.
class GrantCache {
 public:
  // Frontend: a live grant of one of our pages. `key` is caller-chosen
  // (usually the pfn; blkfront packs the direction in too).
  std::optional<uint32_t> LookupGrant(uint64_t key) const;
  void InsertGrant(uint64_t key, uint32_t gref);
  void DropGrant(uint64_t key);

  // Backend: a granted page we keep mapped.
  std::optional<hwsim::Vaddr> LookupMapping(ukvm::DomainId granter, uint32_t ref) const;
  void InsertMapping(ukvm::DomainId granter, uint32_t ref, hwsim::Vaddr va);
  void DropMappingsOf(ukvm::DomainId granter);

  void Clear();
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  size_t mappings() const { return mappings_.size(); }
  size_t grants() const { return grants_.size(); }

 private:
  static uint64_t MapKey(ukvm::DomainId granter, uint32_t ref);

  std::unordered_map<uint64_t, uint32_t> grants_;       // key -> gref
  std::unordered_map<uint64_t, hwsim::Vaddr> mappings_; // (granter,ref) -> va
  mutable uint64_t hits_ = 0;
  mutable uint64_t misses_ = 0;
};

}  // namespace uvmm

#endif  // UKVM_SRC_VMM_GRANT_TABLE_H_
