// Domain scheduler: context switching between virtual machines.
//
// The paper (§3.2) notes that a VMM "schedules complete operating systems";
// what matters to the experiments is the architectural price of moving the
// CPU between domains — a scheduling decision plus an address-space switch
// (plus the TLB refill that follows) — charged on every inter-VM upcall,
// reflect, and explicit switch.

#ifndef UKVM_SRC_VMM_SCHED_H_
#define UKVM_SRC_VMM_SCHED_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/core/ids.h"
#include "src/hw/machine.h"
#include "src/vmm/domain.h"

namespace uvmm {

class DomainScheduler {
 public:
  explicit DomainScheduler(hwsim::Machine& machine) : machine_(machine) {}

  // Switches the CPU into `dom`'s context at the given privilege. A switch
  // to the domain already running charges nothing architectural.
  void SwitchTo(Domain& dom, hwsim::PrivLevel level);

  // Enters hypervisor mode without an address-space switch (the hypervisor
  // is mapped in every domain) and — deliberately — without changing the
  // accounting domain: like Xen, hypervisor work done on behalf of a domain
  // is charged to that domain's vCPU. That attribution is what lets
  // experiment E3 see Dom0's CPU grow with page flips, as xentop did for
  // Cherkasova & Gardner.
  void EnterHypervisor();

  // Forgets `dom` if it is the current domain (domain destruction).
  void Detach(const Domain* dom) {
    if (current_ == dom) {
      current_ = nullptr;
    }
  }

  Domain* current() const { return current_; }
  uint64_t domain_switches() const { return switches_; }

  // Scheduling weights (credit-scheduler style); informational plus used by
  // the weighted round-robin pick.
  void SetWeight(ukvm::DomainId dom, uint32_t weight) { weights_[dom] = weight; }
  uint32_t WeightOf(ukvm::DomainId dom) const {
    auto it = weights_.find(dom);
    return it == weights_.end() ? 256 : it->second;
  }

 private:
  hwsim::Machine& machine_;
  Domain* current_ = nullptr;
  uint64_t switches_ = 0;
  uint32_t trace_switch_name_ = 0;  // lazily interned (0 = unset)
  std::unordered_map<ukvm::DomainId, uint32_t> weights_;
};

// Credit scheduler (Xen-style, simplified): interleaves CPU-bound work of
// several domains in proportion to their weights — §2.2 primitive 4,
// "resource allocation per VM via VMM hypercall interface", made
// observable. Work is supplied as step functions (one step = one quantum of
// guest execution); the runner picks the domain with the most credits,
// runs one step in its context, and debits the cycles it consumed.
class CreditRunner {
 public:
  // A step returns true when the job is finished.
  using Step = std::function<bool()>;

  CreditRunner(hwsim::Machine& machine, DomainScheduler& sched)
      : machine_(machine), sched_(sched) {}

  void Add(Domain* dom, Step step);

  // Runs until every job reports done. Credits refill in proportion to
  // DomainScheduler weights every `refill_period` consumed cycles.
  void Run(uint64_t refill_period = 30 * hwsim::kCyclesPerUs);

  // Cycles each job's domain consumed while the runner drove it.
  uint64_t ConsumedBy(ukvm::DomainId dom) const;

 private:
  struct Job {
    Domain* dom;
    Step step;
    bool done = false;
    int64_t credits = 0;
    uint64_t consumed = 0;
  };

  hwsim::Machine& machine_;
  DomainScheduler& sched_;
  std::vector<Job> jobs_;
};

}  // namespace uvmm

#endif  // UKVM_SRC_VMM_SCHED_H_
