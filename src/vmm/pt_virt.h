// Paravirtual page-table interface (Xen's mmu_update).
//
// Paper §2.2, primitive 5: "resource allocation within the VM (e.g., via
// hardware page-table virtualisation)". Guests run with direct (readable)
// page tables but every update goes through the hypervisor, which validates
// that the guest references only frames it owns and never maps the
// hypervisor hole. The per-update validation cost is the paravirtualization
// tax that shows up in the primitive-cost table (E7).

#ifndef UKVM_SRC_VMM_PT_VIRT_H_
#define UKVM_SRC_VMM_PT_VIRT_H_

#include <cstdint>
#include <functional>
#include <span>

#include "src/core/error.h"
#include "src/core/ids.h"
#include "src/hw/machine.h"
#include "src/vmm/domain.h"

namespace uvmm {

struct MmuUpdate {
  hwsim::Vaddr va = 0;
  Pfn pfn = 0;           // guest pseudo-physical frame to map
  bool present = true;   // false: unmap `va`
  bool writable = false;
};

class PtVirt {
 public:
  PtVirt(hwsim::Machine& machine, uint64_t hole_base, uint64_t hole_end);

  // Validates and applies a batch of updates to `dom`'s page table.
  // Rejects the whole batch on the first invalid update (kPermissionDenied
  // for frames the domain does not own or VAs inside the hypervisor hole).
  ukvm::Err Apply(Domain& dom, std::span<const MmuUpdate> updates);

  uint64_t updates_applied() const { return updates_applied_; }
  uint64_t hole_base() const { return hole_base_; }
  uint64_t hole_end() const { return hole_end_; }

  // Observer called once per successfully applied batch, after all updates
  // landed. Installed by the invariant auditor; nullptr detaches.
  void SetAuditHook(std::function<void(const Domain&)> hook) { audit_hook_ = std::move(hook); }

 private:
  hwsim::Machine& machine_;
  uint64_t hole_base_;
  uint64_t hole_end_;
  uint32_t mech_update_ = 0;
  uint64_t updates_applied_ = 0;
  std::function<void(const Domain&)> audit_hook_;
};

}  // namespace uvmm

#endif  // UKVM_SRC_VMM_PT_VIRT_H_
