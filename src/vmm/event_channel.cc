#include "src/vmm/event_channel.h"

#include <algorithm>
#include <cassert>

#include "src/hw/machine.h"

namespace uvmm {

using ukvm::DomainId;
using ukvm::Err;
using ukvm::Result;

EventChannelTable::EventChannelTable(DeliverFn deliver, hwsim::Machine* machine)
    : deliver_(std::move(deliver)), machine_(machine) {
  assert(deliver_);
}

EventChannelTable::Port* EventChannelTable::FindPort(DomainId domain, uint32_t port) {
  auto it = ports_.find(domain);
  if (it == ports_.end() || port >= it->second.size() || !it->second[port].allocated) {
    return nullptr;
  }
  return &it->second[port];
}

Result<uint32_t> EventChannelTable::AllocUnbound(DomainId owner, DomainId remote) {
  auto& vec = ports_[owner];
  const auto port = static_cast<uint32_t>(vec.size());
  Port p;
  p.allocated = true;
  p.connected = false;
  p.remote_dom = remote;
  vec.push_back(p);
  return port;
}

Result<uint32_t> EventChannelTable::BindInterdomain(DomainId caller, DomainId remote_dom,
                                                    uint32_t remote_port) {
  Port* remote = FindPort(remote_dom, remote_port);
  if (remote == nullptr) {
    return Err::kNotFound;
  }
  if (remote->connected) {
    return Err::kBusy;
  }
  if (remote->remote_dom != caller) {
    return Err::kPermissionDenied;  // the unbound port was reserved for someone else
  }
  auto& vec = ports_[caller];
  const auto port = static_cast<uint32_t>(vec.size());
  Port local;
  local.allocated = true;
  local.connected = true;
  local.remote_dom = remote_dom;
  local.remote_port = remote_port;
  vec.push_back(local);
  remote->connected = true;
  remote->remote_port = port;
  return port;
}

Err EventChannelTable::Send(DomainId caller, uint32_t port) {
  Port* local = FindPort(caller, port);
  if (local == nullptr) {
    return Err::kBadHandle;
  }
  if (!local->connected) {
    return Err::kWouldBlock;
  }
  Port* remote = FindPort(local->remote_dom, local->remote_port);
  if (remote == nullptr) {
    return Err::kDead;  // peer domain was destroyed
  }
  ++sends_;
  if (machine_ != nullptr && machine_->race_sink() != nullptr) {
    // Release half of send->upcall, fired on *every* successful Send — the
    // pending bit latches, so the one eventual upcall acquires the joined
    // history of the whole coalesced burst.
    machine_->race_sink()->Release(
        caller, hwsim::RaceEdgeKey(hwsim::RaceEdgeKind::kEvtchn, local->remote_dom.value(),
                                   local->remote_port));
  }
  if (trace_hook_) {
    trace_hook_(local->remote_dom, local->remote_port, remote->pending);
  }
  if (remote->pending) {
    // Already signalled and not yet consumed: the bit latches this Send
    // too. One upcall (on consume/unmask) covers the whole burst.
    ++coalesced_sends_;
    return Err::kNone;
  }
  remote->pending = true;
  if (remote->masked) {
    return Err::kNone;  // delivered when the owner unmasks
  }
  deliver_(local->remote_dom, local->remote_port);
  return Err::kNone;
}

Err EventChannelTable::Close(DomainId caller, uint32_t port) {
  Port* local = FindPort(caller, port);
  if (local == nullptr) {
    return Err::kBadHandle;
  }
  if (local->connected) {
    if (Port* remote = FindPort(local->remote_dom, local->remote_port)) {
      remote->connected = false;
    }
  }
  *local = Port{};
  return Err::kNone;
}

Err EventChannelTable::SetMask(DomainId owner, uint32_t port, bool masked) {
  Port* p = FindPort(owner, port);
  if (p == nullptr) {
    return Err::kBadHandle;
  }
  const bool was_masked = p->masked;
  p->masked = masked;
  if (was_masked && !masked && p->pending) {
    // Flush: everything latched while masked becomes one upcall.
    deliver_(owner, port);
  }
  return Err::kNone;
}

Result<bool> EventChannelTable::ConsumePending(DomainId owner, uint32_t port) {
  Port* p = FindPort(owner, port);
  if (p == nullptr) {
    return Err::kBadHandle;
  }
  const bool was = p->pending;
  p->pending = false;
  return was;
}

void EventChannelTable::CloseAllOf(DomainId domain) {
  auto it = ports_.find(domain);
  if (it != ports_.end()) {
    for (uint32_t port = 0; port < it->second.size(); ++port) {
      if (it->second[port].allocated) {
        (void)Close(domain, port);
      }
    }
    ports_.erase(domain);
  }
  // Disconnect any surviving peers pointing at the dead domain.
  for (auto& [dom, vec] : ports_) {
    for (Port& p : vec) {
      if (p.allocated && p.connected && p.remote_dom == domain) {
        p.connected = false;
      }
    }
  }
}

std::vector<DomainId> EventChannelTable::PeersOf(DomainId domain) const {
  std::vector<DomainId> peers;
  auto it = ports_.find(domain);
  if (it == ports_.end()) {
    return peers;
  }
  for (const Port& p : it->second) {
    if (!p.allocated || !p.connected) {
      continue;
    }
    if (std::find(peers.begin(), peers.end(), p.remote_dom) == peers.end()) {
      peers.push_back(p.remote_dom);
    }
  }
  return peers;
}

void EventChannelTable::ForEachChannel(const std::function<void(const ChannelView&)>& fn) const {
  for (const auto& [dom, vec] : ports_) {
    for (uint32_t port = 0; port < vec.size(); ++port) {
      const Port& p = vec[port];
      if (p.allocated) {
        fn(ChannelView{dom, port, p.connected, p.remote_dom, p.remote_port, p.pending, p.masked});
      }
    }
  }
}

size_t EventChannelTable::ports_of(DomainId domain) const {
  auto it = ports_.find(domain);
  if (it == ports_.end()) {
    return 0;
  }
  size_t n = 0;
  for (const Port& p : it->second) {
    n += p.allocated ? 1 : 0;
  }
  return n;
}

}  // namespace uvmm
