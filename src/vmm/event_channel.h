// Event channels: Xen's asynchronous notification primitive.
//
// Hand et al. called this a "simple asynchronous unidirectional event
// mechanism"; Heiser et al.'s response (§3.2) is that "it is nothing else
// than a form of asynchronous IPC" — which is why every Send here is
// recorded in the crossing ledger as an async-notify crossing, directly
// comparable with the microkernel's Notify.

#ifndef UKVM_SRC_VMM_EVENT_CHANNEL_H_
#define UKVM_SRC_VMM_EVENT_CHANNEL_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/core/error.h"
#include "src/core/ids.h"

namespace hwsim {
class Machine;
}

namespace uvmm {

class EventChannelTable {
 public:
  // `deliver` is the hypervisor's upcall path: schedule/perform a virtual
  // interrupt into `target` for `port`.
  using DeliverFn = std::function<void(ukvm::DomainId target, uint32_t port)>;

  // `machine`, when given, lets Send report the release half of the
  // send->upcall happens-before edge to an installed race sink (E20). The
  // acquire half fires in the hypervisor's upcall delivery.
  explicit EventChannelTable(DeliverFn deliver, hwsim::Machine* machine = nullptr);

  // Creates a local port that `remote` may later bind to.
  ukvm::Result<uint32_t> AllocUnbound(ukvm::DomainId owner, ukvm::DomainId remote);

  // Connects a new local port of `caller` to `remote_dom`'s unbound
  // `remote_port`, completing the channel.
  ukvm::Result<uint32_t> BindInterdomain(ukvm::DomainId caller, ukvm::DomainId remote_dom,
                                         uint32_t remote_port);

  // Signals the peer end of `port` (asynchronous, unidirectional). The
  // pending bit doubles as a coalescing latch: a Send whose peer bit is
  // already set (masked, or signalled again before the earlier upcall was
  // consumed) just leaves it set — N notifications collapse into one upcall,
  // exactly Xen's evtchn_pending bitmap semantics.
  ukvm::Err Send(ukvm::DomainId caller, uint32_t port);

  ukvm::Err Close(ukvm::DomainId caller, uint32_t port);

  // Masking (a masked port accumulates pending state but does not upcall).
  // Unmasking a port whose pending bit is set delivers the single deferred
  // upcall — the flush half of the coalescing protocol.
  ukvm::Err SetMask(ukvm::DomainId owner, uint32_t port, bool masked);

  // Consumes the pending bit of a port (guest-side acknowledgement);
  // returns whether it was pending.
  ukvm::Result<bool> ConsumePending(ukvm::DomainId owner, uint32_t port);

  // Drops all channels touching `domain` (domain destruction). Peers see
  // their ports become dangling (Send returns kDead).
  void CloseAllOf(ukvm::DomainId domain);

  // The distinct domains `domain` has a connected channel to, in port order
  // (deterministic). Collected by DestroyDomain *before* CloseAllOf so the
  // kDomainDead upcall knows who to notify.
  std::vector<ukvm::DomainId> PeersOf(ukvm::DomainId domain) const;

  // A read-only view of one allocated port, for the invariant auditor.
  struct ChannelView {
    ukvm::DomainId owner;
    uint32_t port = 0;
    bool connected = false;
    ukvm::DomainId remote_dom;
    uint32_t remote_port = 0;
    bool pending = false;
    bool masked = false;
  };

  // Visits every allocated port of every domain.
  void ForEachChannel(const std::function<void(const ChannelView&)>& fn) const;

  uint64_t sends() const { return sends_; }
  // Sends absorbed by an already-pending bit (no upcall scheduled).
  uint64_t coalesced_sends() const { return coalesced_sends_; }
  size_t ports_of(ukvm::DomainId domain) const;

  // Flight-recorder observer, fired on every successful Send with the
  // target end of the channel and whether the send coalesced into an
  // already-pending bit. Purely observational.
  void SetTraceHook(
      std::function<void(ukvm::DomainId target, uint32_t port, bool coalesced)> hook) {
    trace_hook_ = std::move(hook);
  }

 private:
  struct Port {
    bool allocated = false;
    bool connected = false;
    ukvm::DomainId remote_dom = ukvm::DomainId::Invalid();
    uint32_t remote_port = 0;
    bool pending = false;
    bool masked = false;
  };

  Port* FindPort(ukvm::DomainId domain, uint32_t port);

  DeliverFn deliver_;
  hwsim::Machine* machine_ = nullptr;
  std::function<void(ukvm::DomainId, uint32_t, bool)> trace_hook_;
  std::unordered_map<ukvm::DomainId, std::vector<Port>> ports_;
  uint64_t sends_ = 0;
  uint64_t coalesced_sends_ = 0;
};

}  // namespace uvmm

#endif  // UKVM_SRC_VMM_EVENT_CHANNEL_H_
