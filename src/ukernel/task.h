// Tasks: the microkernel's protection domains (address space + threads).

#ifndef UKVM_SRC_UKERNEL_TASK_H_
#define UKVM_SRC_UKERNEL_TASK_H_

#include <vector>

#include "src/core/ids.h"
#include "src/hw/paging.h"
#include "src/hw/platform.h"
#include "src/hw/segmentation.h"

namespace ukern {

struct Task {
  Task(ukvm::DomainId id_in, const hwsim::Platform& platform, ukvm::ThreadId pager_in)
      : id(id_in), pager(pager_in), space(platform.page_shift, platform.vaddr_bits) {}

  ukvm::DomainId id;
  ukvm::ThreadId pager;  // user-level pager that resolves this task's faults
  hwsim::PageTable space;
  hwsim::SegmentState segments;
  bool alive = true;
  // Liedtke small space [Lie95]: reached by segment remap, not a page-table
  // base reload; IPC to/from it skips the TLB flush.
  bool small_space = false;
  std::vector<ukvm::ThreadId> threads;
};

}  // namespace ukern

#endif  // UKVM_SRC_UKERNEL_TASK_H_
