// A priority round-robin run queue.
//
// In the passive-server simulation most control transfer is synchronous
// (IPC delivers directly to the receiver, as in L4's direct-switch fast
// path, deliberately bypassing the scheduler). The run queue orders the
// *clients* — workload threads waiting for CPU. The template form is reused
// by MiniOS for its process scheduler (BasicRunQueue<ProcessId>).

#ifndef UKVM_SRC_UKERNEL_SCHED_H_
#define UKVM_SRC_UKERNEL_SCHED_H_

#include <cstdint>
#include <deque>
#include <map>
#include <optional>

#include "src/core/ids.h"

namespace ukern {

template <typename IdT>
class BasicRunQueue {
 public:
  // Enqueues at the tail of `priority`'s bucket (0..255, higher first).
  void Enqueue(IdT id, uint32_t priority) {
    buckets_[~priority].push_back(id);
    ++size_;
  }

  // Dequeues the head of the highest non-empty priority bucket.
  std::optional<IdT> PickNext() {
    while (!buckets_.empty()) {
      auto it = buckets_.begin();
      if (it->second.empty()) {
        buckets_.erase(it);
        continue;
      }
      IdT id = it->second.front();
      it->second.pop_front();
      --size_;
      if (it->second.empty()) {
        buckets_.erase(it);
      }
      return id;
    }
    return std::nullopt;
  }

  // Removes every queued id for which `pred` returns true; returns how
  // many went. This is the reconciliation half of lazy scheduling (E21):
  // the IPC fast path direct-switches without touching the queue, so stale
  // entries are dropped in one sweep at the next real schedule decision.
  template <typename Pred>
  size_t RemoveIf(Pred&& pred) {
    size_t removed = 0;
    for (auto& [prio, bucket] : buckets_) {
      for (auto it = bucket.begin(); it != bucket.end();) {
        if (pred(*it)) {
          it = bucket.erase(it);
          --size_;
          ++removed;
        } else {
          ++it;
        }
      }
    }
    return removed;
  }

  // Visits every queued id, highest priority first, FIFO within a bucket.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [prio, bucket] : buckets_) {
      for (const IdT& id : bucket) {
        fn(id);
      }
    }
  }

  // Removes an id wherever it is queued (thread/process exit).
  void Remove(IdT id) {
    for (auto& [prio, bucket] : buckets_) {
      for (auto it = bucket.begin(); it != bucket.end();) {
        if (*it == id) {
          it = bucket.erase(it);
          --size_;
        } else {
          ++it;
        }
      }
    }
  }

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

 private:
  // Key is ~priority so begin() is the highest priority.
  std::map<uint32_t, std::deque<IdT>> buckets_;
  size_t size_ = 0;
};

using RunQueue = BasicRunQueue<ukvm::ThreadId>;

}  // namespace ukern

#endif  // UKVM_SRC_UKERNEL_SCHED_H_
