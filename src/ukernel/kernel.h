// The L4-style microkernel.
//
// Liedtke's program, quoted in §2.1 of the paper: "minimize the kernel and
// implement whatever possible outside of the kernel". The kernel therefore
// provides only: tasks (address spaces), threads, synchronous IPC with
// string and map/grant items (the single primitive of §2.2), recursive
// unmap, user-level pager invocation on page faults, and interrupt
// conversion to IPC. Everything else — drivers, file service, the guest
// OS personality — lives in user-level servers (see src/stacks).
//
// Execution model: servers are passive objects; Kernel::Call performs the
// full architectural journey (trap in, validate, transfer, address-space
// switch to the receiver, handler runs in the receiver's domain, reply
// transfers back) with every step charged to the cost model and recorded in
// the crossing ledger.

#ifndef UKVM_SRC_UKERNEL_KERNEL_H_
#define UKVM_SRC_UKERNEL_KERNEL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/core/error.h"
#include "src/core/ids.h"
#include "src/hw/machine.h"
#include "src/hw/trap.h"
#include "src/ukernel/ipc.h"
#include "src/ukernel/mapdb.h"
#include "src/ukernel/sched.h"
#include "src/ukernel/task.h"
#include "src/ukernel/thread.h"

namespace ukern {

// Syscall numbers — the entire kernel ABI (experiment E7 contrasts this
// with the VMM's hypercall table).
enum class SyscallNr : uint32_t {
  kIpc = 0,          // send/receive/call, with string and map items
  kUnmap = 1,        // revoke mappings recursively
  kThreadControl = 2,
  kTaskControl = 3,
  kIrqControl = 4,
  kSchedule = 5,
};
inline constexpr uint32_t kSyscallCount = 6;

class Kernel : public hwsim::TrapHandler {
 public:
  explicit Kernel(hwsim::Machine& machine);
  ~Kernel() override;

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  hwsim::Machine& machine() { return machine_; }
  ukvm::DomainId kernel_domain() const { return kKernelDomain; }

  // --- Task and thread management (TaskControl / ThreadControl) ------------

  // Creates a task whose page faults are sent to `pager` (invalid = none;
  // faults then kill the faulting thread). The first task created becomes
  // the privileged root task (sigma0/root server) allowed to use
  // RootMapPhys.
  ukvm::Result<ukvm::DomainId> CreateTask(ukvm::ThreadId pager);
  ukvm::Err DestroyTask(ukvm::DomainId task);

  ukvm::Result<ukvm::ThreadId> CreateThread(ukvm::DomainId task, uint32_t priority,
                                            IpcHandler handler);
  ukvm::Err DestroyThread(ukvm::ThreadId thread);
  ukvm::Err SetThreadHandler(ukvm::ThreadId thread, IpcHandler handler);
  ukvm::Err SetNotifyHandler(ukvm::ThreadId thread, NotifyHandler handler);
  ukvm::Err SetRecvBuffer(ukvm::ThreadId thread, hwsim::Vaddr buffer, uint32_t len);
  ukvm::Err SetPager(ukvm::DomainId task, ukvm::ThreadId pager);

  // Marks a task as a Liedtke small space [Lie95] (cited by the paper as
  // the microkernel answer to address-space-switch costs): switches into it
  // use segment remapping instead of a page-table reload + TLB flush.
  // Requires segmentation or ARM's FCSE PID relocation; kNotSupported
  // otherwise.
  ukvm::Err SetSmallSpace(ukvm::DomainId task, bool small);

  bool TaskAlive(ukvm::DomainId task) const;
  bool ThreadAlive(ukvm::ThreadId thread) const;
  ukvm::Result<ukvm::DomainId> TaskOf(ukvm::ThreadId thread) const;

  // --- IPC (the single primitive) ------------------------------------------

  // Synchronous call: delivers `msg` to `dest`, runs its handler in the
  // receiver's protection domain, returns the reply to `caller`. The reply's
  // `status` carries kernel-detected errors (dead partner, bad transfer).
  IpcMessage Call(ukvm::ThreadId caller, ukvm::ThreadId dest, IpcMessage msg);

  // --- E21: the L4 fast path --------------------------------------------------

  // When enabled, a short Call to a waiting receiver takes the Liedtke
  // fast path: fast trap entry/exit, register transfer at zero copy cost
  // (a short message stays in physical registers across the switch), a
  // direct process switch donating the caller's time slice, lazy
  // run-queue fixup, and a temporary-mapping window for single-page
  // string items. Anything else — map/grant items, long or faulting
  // strings, a receiver that is not blocked in receive — falls back to
  // the slow path unchanged. Default off; with the knob off every charge
  // sequence is byte-identical to the pre-E21 kernel.
  void SetIpcFastpath(bool on) { ipc_fastpath_ = on; }
  bool ipc_fastpath() const { return ipc_fastpath_; }

  // E23: the rest of the Liedtke family. Which members are armed when the
  // fast path is on; `Call` itself is the base member and is implied by
  // SetIpcFastpath. Default is the full family; CallOnly() reproduces the
  // E21 configuration exactly (bench_e21 pins it so its committed numbers
  // stay bit-identical).
  struct FastpathFeatures {
    bool reply_wait = true;     // server reply + next receive fuse into one crossing
    bool send = true;           // register-only Send rides the fast stubs
    bool notify = true;         // Notify to a waiting receiver rides the fast stubs
    bool fault_ipc = true;      // the pager's fault IPC rides the fast stubs
    bool pinned_window = true;  // per-vCPU pinned temp-map string window
    static FastpathFeatures CallOnly() { return {false, false, false, false, false}; }
  };
  void SetFastpathFeatures(const FastpathFeatures& f) { features_ = f; }
  const FastpathFeatures& fastpath_features() const { return features_; }

  struct FastpathStats {
    uint64_t taken = 0;               // calls whose request leg went fast
    uint64_t slow_replies = 0;        // fast request, complex reply fell back
    uint64_t string_windows = 0;      // strings moved via the temp-map window
    uint64_t fallback_not_ready = 0;  // receiver not waiting / no handler / dead
    uint64_t fallback_map = 0;        // map/grant items present
    uint64_t fallback_string = 0;     // string too long, page-crossing, or faulting
    uint64_t lazy_fixups = 0;         // stale run-queue entries reconciled
    // E23 family counters.
    uint64_t replywait_coalesced = 0;  // reply legs fused with the next receive
    uint64_t send_fast = 0;            // sends delivered through the fast stubs
    uint64_t send_slow = 0;            // fastpath-on sends that fell back
    uint64_t notify_fast = 0;          // notifies delivered through the fast stubs
    uint64_t notify_slow = 0;          // fastpath-on notifies that fell back
    uint64_t fault_fast = 0;           // pager fault IPCs on the fast stubs
    uint64_t window_pins = 0;          // string PTE writes skipped via the pinned window
  };
  const FastpathStats& fastpath_stats() const { return fastpath_stats_; }

  // Test-only mutation hook (E21 self-test): a fast path that "forgets" its
  // reply crossing must be caught by the ledger lint as an unbalanced pair.
  void TestSkipFastpathReplyRecord(bool skip) { test_skip_fastpath_reply_record_ = skip; }
  // E23 mutation hooks, one per new discipline: a coalesced reply that drops
  // its `l4.ipc.replywait` crossing must be caught by the ledger lint; a
  // fast notify that delivers only the fresh bits (dropping the latched
  // ones) must be caught by the differential fast-vs-slow fuzzer.
  void TestSkipReplyWaitRecord(bool skip) { test_skip_replywait_record_ = skip; }
  void TestSkipNotifyLatch(bool skip) { test_skip_notify_latch_ = skip; }

  // One-way send (no reply transfer back).
  ukvm::Err Send(ukvm::ThreadId caller, ukvm::ThreadId dest, IpcMessage msg);

  // Asynchronous notification bits (delivered immediately to the
  // destination's notify handler, in its domain).
  ukvm::Err Notify(ukvm::ThreadId dest, uint64_t bits);

  // --- Memory management ----------------------------------------------------

  // Root-task-only: installs an initial physical mapping (sigma0 building
  // its idempotent view of memory at boot).
  ukvm::Err RootMapPhys(ukvm::DomainId task, hwsim::Vaddr va, hwsim::Frame frame, bool writable);

  // Revokes `pages` pages at `va` in `task`'s space: derived mappings always;
  // the task's own mapping too when `include_self`.
  ukvm::Err Unmap(ukvm::DomainId task, hwsim::Vaddr va, uint32_t pages, bool include_self);

  // Resolves `va` for `thread`, invoking its task's pager via IPC on a page
  // fault (the external-pager protocol of §3.1); kFault if unresolvable.
  ukvm::Err TouchPage(ukvm::ThreadId thread, hwsim::Vaddr va, bool write);

  // Copies between a thread's virtual memory and a caller buffer, resolving
  // faults through the pager. These are what OS servers use to access their
  // clients' memory.
  ukvm::Err CopyIn(ukvm::ThreadId thread, hwsim::Vaddr va, std::span<uint8_t> out);
  ukvm::Err CopyOut(ukvm::ThreadId thread, hwsim::Vaddr va, std::span<const uint8_t> in);

  // --- Interrupts (IrqControl) ----------------------------------------------

  // Routes `line` to `handler_thread`: on delivery the kernel synthesizes an
  // IPC with label kIrqLabel and the line number (interrupts become IPC —
  // the microkernel answer to VMM primitive #9 of §2.2).
  ukvm::Err AssociateIrq(ukvm::IrqLine line, ukvm::ThreadId handler_thread);

  static constexpr uint64_t kIrqLabel = 0xf000'0000'0000'0000ull;
  static constexpr uint64_t kPageFaultLabel = 0xf100'0000'0000'0000ull;

  // --- Context activation (what the dispatcher does) -------------------------

  // Switches the CPU to `thread`'s context (address space, accounting
  // domain, user mode), charging a context switch. Used by stacks to run
  // client code.
  ukvm::Err ActivateThread(ukvm::ThreadId thread);
  ukvm::ThreadId current_thread() const { return current_thread_; }

  RunQueue& run_queue() { return run_queue_; }

  // --- hwsim::TrapHandler -----------------------------------------------------

  void HandleTrap(hwsim::TrapFrame& frame) override;
  void HandleInterrupt(ukvm::IrqLine line) override;

  // --- Introspection ----------------------------------------------------------

  Task* FindTask(ukvm::DomainId id);
  Tcb* FindThread(ukvm::ThreadId id);
  MapDb& mapdb() { return mapdb_; }
  uint64_t ipc_calls() const { return ipc_calls_; }

  // Visits every live task (order unspecified); for the invariant auditor,
  // which also installs per-space audit hooks, hence the non-const refs.
  void ForEachTask(const std::function<void(Task&)>& fn);

 private:
  static constexpr ukvm::DomainId kKernelDomain{0};

  struct MechanismIds {
    uint32_t ipc_call;
    uint32_t ipc_reply;
    uint32_t ipc_replywait;
    uint32_t ipc_send;
    uint32_t ipc_string;
    uint32_t ipc_map;
    uint32_t ipc_notify;
    uint32_t unmap;
    uint32_t irq_ipc;
    uint32_t pf_ipc;
  };

  // E17 trace ids (span names and profiler frames), interned at
  // construction so the IPC hot path never allocates.
  struct TraceIds {
    uint32_t call_name = 0;
    uint32_t call_frame = 0;
    uint32_t send_name = 0;
    uint32_t send_frame = 0;
    uint32_t notify_name = 0;
    uint32_t notify_frame = 0;
    uint32_t unmap_name = 0;
    uint32_t unmap_frame = 0;
    uint32_t irq_name = 0;
    uint32_t irq_frame = 0;
    uint32_t pf_name = 0;
    uint32_t pf_frame = 0;
  };

  // Charges syscall entry (user -> kernel trap) and sets kernel context.
  void EnterKernel();
  // Charges the return to `thread`'s user context and switches to it.
  void LeaveKernelTo(ukvm::ThreadId thread);

  // Copies message registers (charging per-word cost).
  void ChargeRegTransfer(const IpcMessage& msg);

  // Performs the string transfer from `sender` to `receiver`'s registered
  // receive buffer; returns bytes moved or an error.
  ukvm::Result<uint64_t> TransferString(Tcb& sender, Tcb& receiver, const IpcMessage& msg,
                                        IpcMessage& delivered);

  // Applies one map/grant item from sender's task to receiver's task.
  ukvm::Err ApplyMapItem(Task& from, Task& to, const MapItem& item);

  // Invokes `dest`'s handler in its own domain and returns the reply.
  IpcMessage InvokeHandler(Tcb& dest, ukvm::ThreadId sender, IpcMessage&& delivered);

  // --- E21 fast-path internals ----------------------------------------------

  enum class FastpathVerdict : uint8_t { kEligible, kNotReady, kMapItem, kString };
  // Pure lookups, no charging: decides whether this Call may take the fast
  // path, or why it must not (the verdict indexes the fallback counters).
  FastpathVerdict ClassifyFastpath(ukvm::ThreadId caller, ukvm::ThreadId dest,
                                   const IpcMessage& msg);
  // A string qualifies for the temporary-mapping window iff it fits the
  // receive buffer untruncated, stays within one page on both sides, and
  // both PTEs are already present (no pager round-trip needed).
  bool FastStringEligible(Tcb& sender, Tcb& receiver, const IpcMessage& msg);
  // One kernel-window PTE write + one charged copy; only called when
  // FastStringEligible said yes. Returns bytes moved.
  uint64_t FastTransferString(Tcb& sender, Tcb& receiver, const IpcMessage& msg,
                              IpcMessage& delivered);
  IpcMessage CallFast(ukvm::ThreadId caller, ukvm::ThreadId dest, IpcMessage msg);
  // E23: register-only one-way send / notify delivery through the fast
  // stubs; only called after the dispatcher verified eligibility.
  ukvm::Err SendFast(ukvm::ThreadId caller, ukvm::ThreadId dest, IpcMessage msg);
  ukvm::Err NotifyFast(Tcb& dest, uint64_t bits);
  // E23: drops any per-vCPU pinned string window covering (space, vpn) —
  // revocation and grant both move the frame out from under the pin.
  void InvalidateStringWindow(const hwsim::PageTable& space, hwsim::Vaddr vpn);
  // Fast-trap variants of EnterKernel/LeaveKernelTo: the short-IPC stub
  // saves no full frame, so entry/exit cost fast_trap_* instead of trap_*.
  void EnterKernelFast();
  void LeaveKernelFastTo(ukvm::ThreadId thread);
  // The real schedule decision reconciling run-queue entries the fast
  // path left stale (lazy scheduling).
  void DrainLazyRunQueue();

  // Clears a PTE, with TLB maintenance costs. Queues the page for the next
  // FlushShootdowns round so remote vCPUs drop it too.
  void RevokePte(ukvm::DomainId task, hwsim::Vaddr vpn);

  // Kernel-mediated unmap IPIs: one machine shootdown round per space
  // covering every revocation queued since the last flush. Unmap and
  // DestroyTask call this once per operation, amortising the IPI cost over
  // the whole revocation batch.
  void FlushShootdowns();

  // ResolveFault mints an E22 request-trace origin ("l4.pf") when no request
  // is already in flight, then delegates to DoResolveFault for the actual
  // pager protocol.
  ukvm::Err ResolveFault(ukvm::ThreadId thread, hwsim::Vaddr va, bool write);
  ukvm::Err DoResolveFault(ukvm::ThreadId thread, hwsim::Vaddr va, bool write);

  hwsim::Machine& machine_;
  MechanismIds mech_;
  TraceIds trace_;

  std::unordered_map<ukvm::DomainId, std::unique_ptr<Task>> tasks_;
  std::unordered_map<ukvm::ThreadId, std::unique_ptr<Tcb>> threads_;
  std::unordered_map<ukvm::IrqLine, ukvm::ThreadId> irq_routes_;
  MapDb mapdb_;
  RunQueue run_queue_;

  // Revocations awaiting their cross-vCPU shootdown round (space is
  // pointer identity only — flushed before any space can die).
  std::vector<std::pair<const hwsim::PageTable*, hwsim::Vaddr>> pending_shootdown_;

  uint32_t next_task_id_ = 1;  // 0 is the kernel itself
  uint32_t next_thread_id_ = 1;
  ukvm::DomainId root_task_ = ukvm::DomainId::Invalid();
  ukvm::ThreadId current_thread_ = ukvm::ThreadId::Invalid();

  uint64_t ipc_calls_ = 0;

  // E21 fast-path state.
  bool ipc_fastpath_ = false;
  FastpathFeatures features_;
  // Set when a fast path direct-switched without touching run_queue_;
  // cleared by DrainLazyRunQueue at the next real schedule decision.
  bool lazy_queue_dirty_ = false;
  bool test_skip_fastpath_reply_record_ = false;
  bool test_skip_replywait_record_ = false;
  bool test_skip_notify_latch_ = false;
  FastpathStats fastpath_stats_;

  // E23: one pinned temp-map string window per vCPU. The pin remembers
  // which source page the window currently maps (space identity is the
  // PageTable's never-recycled instance id, so a dead space can never alias
  // a live one); a burst of strings from the same page pays the window PTE
  // write once. The E22 request-trace origin name for pager fault IPC.
  struct StringWindow {
    uint64_t space_instance = 0;
    hwsim::Vaddr vpn = 0;
    bool valid = false;
  };
  std::vector<StringWindow> string_windows_;
  uint32_t req_pf_name_ = 0;
};

}  // namespace ukern

#endif  // UKVM_SRC_UKERNEL_KERNEL_H_
