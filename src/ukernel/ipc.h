// IPC message format: the microkernel's single primitive (paper §2.2).
//
// One message can simultaneously carry all three orthogonal roles the paper
// identifies: (1) the kernel-controlled control transfer is the delivery
// itself, (2) data transfer rides in the register words and the optional
// string item, (3) resource delegation rides in map/grant items. The VMM in
// src/vmm needs a distinct mechanism for each of these (experiment E7).

#ifndef UKVM_SRC_UKERNEL_IPC_H_
#define UKVM_SRC_UKERNEL_IPC_H_

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/core/ids.h"
#include "src/hw/memory.h"

namespace ukern {

// Resource delegation item: maps `pages` pages from the sender's address
// space at `snd_base` into the receiver's at `rcv_base`. With `grant` the
// sender's own mapping is removed (ownership moves); otherwise the receiver
// gets a derived mapping revocable via Unmap.
struct MapItem {
  hwsim::Vaddr snd_base = 0;
  hwsim::Vaddr rcv_base = 0;
  uint32_t pages = 1;
  bool writable = false;
  bool grant = false;
};

// String item: the kernel copies `len` bytes from the sender's virtual
// address `snd_base` to the receiver's declared receive buffer.
struct StringItem {
  hwsim::Vaddr snd_base = 0;
  uint32_t len = 0;
};

inline constexpr size_t kIpcRegWords = 8;
inline constexpr uint32_t kMaxStringBytes = 1u << 20;

struct IpcMessage {
  // Short data in (virtual) registers; regs[0] conventionally the opcode.
  std::array<uint64_t, kIpcRegWords> regs{};
  uint32_t reg_count = 0;

  // At most one string item per message (as in L4 X.2 simple usage).
  StringItem string;
  bool has_string = false;

  std::vector<MapItem> map_items;

  // Simulation convenience: a mirror of the bytes the kernel landed in the
  // receiver's registered receive buffer. The authoritative copy is in
  // simulated physical memory (and was paid for in cycles); this field just
  // spares handlers a second lookup. Empty when no string was transferred.
  std::vector<uint8_t> string_data;

  // Error the kernel reports to the caller in the reply (kNone on success).
  ukvm::Err status = ukvm::Err::kNone;

  // True when the whole payload fits in registers: no string item and no
  // map/grant items. This is the message shape the E21 Liedtke fast path
  // accepts without falling back (string items may still qualify via the
  // temporary-mapping window; delegation never does).
  bool IsRegisterOnly() const { return !has_string && map_items.empty(); }

  static IpcMessage Short(uint64_t op) {
    IpcMessage msg;
    msg.regs[0] = op;
    msg.reg_count = 1;
    return msg;
  }
  static IpcMessage Short(uint64_t op, uint64_t a1) {
    IpcMessage msg = Short(op);
    msg.regs[1] = a1;
    msg.reg_count = 2;
    return msg;
  }
  static IpcMessage Short(uint64_t op, uint64_t a1, uint64_t a2) {
    IpcMessage msg = Short(op, a1);
    msg.regs[2] = a2;
    msg.reg_count = 3;
    return msg;
  }
  static IpcMessage Short(uint64_t op, uint64_t a1, uint64_t a2, uint64_t a3) {
    IpcMessage msg = Short(op, a1, a2);
    msg.regs[3] = a3;
    msg.reg_count = 4;
    return msg;
  }
  static IpcMessage Error(ukvm::Err err) {
    IpcMessage msg;
    msg.status = err;
    return msg;
  }
};

// A server thread's message handler: receives the sender and the request,
// returns the reply. Handlers run in the receiver's protection domain; the
// kernel performs the domain switches around the invocation.
using IpcHandler = std::function<IpcMessage(ukvm::ThreadId sender, IpcMessage request)>;

// Asynchronous notification handler (L4-style notification bits).
using NotifyHandler = std::function<void(uint64_t bits)>;

}  // namespace ukern

#endif  // UKVM_SRC_UKERNEL_IPC_H_
