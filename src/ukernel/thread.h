// Thread control blocks (TCBs) for the microkernel.

#ifndef UKVM_SRC_UKERNEL_THREAD_H_
#define UKVM_SRC_UKERNEL_THREAD_H_

#include <cstdint>

#include "src/core/ids.h"
#include "src/hw/memory.h"
#include "src/ukernel/ipc.h"

namespace ukern {

enum class ThreadState : uint8_t {
  kReady,
  kRunning,
  kWaiting,  // blocked in receive (servers sit here between requests)
  kDead,
};

struct Tcb {
  ukvm::ThreadId id;
  ukvm::DomainId task;
  uint32_t priority = 128;  // 0..255, higher runs first
  ThreadState state = ThreadState::kReady;

  // Passive-server model: the handler runs when a message is delivered to
  // this thread; the kernel performs the protection-domain switches around
  // the invocation (see Kernel::Call).
  IpcHandler handler;
  NotifyHandler notify_handler;
  uint64_t pending_notify_bits = 0;

  // Receive window for string items, in this thread's address space.
  hwsim::Vaddr recv_buffer = 0;
  uint32_t recv_buffer_len = 0;

  // Statistics.
  uint64_t messages_handled = 0;
  uint64_t notifications = 0;
};

}  // namespace ukern

#endif  // UKVM_SRC_UKERNEL_THREAD_H_
