#include "src/ukernel/mapdb.h"

#include <algorithm>
#include <cassert>

namespace ukern {
namespace {

// Applies `fn` to every node in the subtree rooted at `node` (post-order).
void VisitSubtree(MapNode* node, const std::function<void(MapNode*)>& fn) {
  for (auto& child : node->children) {
    VisitSubtree(child.get(), fn);
  }
  fn(node);
}

}  // namespace

void MapDb::IndexNode(MapNode* node) {
  index_[Key{node->task.value(), node->vpn}] = node;
}

void MapDb::UnindexNode(const MapNode* node) {
  index_.erase(Key{node->task.value(), node->vpn});
}

MapNode* MapDb::AddRoot(ukvm::DomainId task, hwsim::Vaddr vpn, hwsim::Frame frame) {
  auto node = std::make_unique<MapNode>();
  node->task = task;
  node->vpn = vpn;
  node->frame = frame;
  MapNode* raw = node.get();
  roots_.push_back(std::move(node));
  IndexNode(raw);
  if (audit_hook_) {
    audit_hook_();
  }
  return raw;
}

MapNode* MapDb::AddChild(MapNode* parent, ukvm::DomainId task, hwsim::Vaddr vpn,
                         hwsim::Frame frame) {
  assert(parent != nullptr);
  auto node = std::make_unique<MapNode>();
  node->task = task;
  node->vpn = vpn;
  node->frame = frame;
  node->parent = parent;
  MapNode* raw = node.get();
  parent->children.push_back(std::move(node));
  IndexNode(raw);
  if (audit_hook_) {
    audit_hook_();
  }
  return raw;
}

ukvm::Err MapDb::MoveNode(MapNode* node, ukvm::DomainId new_task, hwsim::Vaddr new_vpn) {
  if (node == nullptr) {
    return ukvm::Err::kInvalidArgument;
  }
  if (index_.contains(Key{new_task.value(), new_vpn})) {
    return ukvm::Err::kAlreadyExists;
  }
  UnindexNode(node);
  node->task = new_task;
  node->vpn = new_vpn;
  IndexNode(node);
  if (audit_hook_) {
    audit_hook_();
  }
  return ukvm::Err::kNone;
}

MapNode* MapDb::Find(ukvm::DomainId task, hwsim::Vaddr vpn) {
  auto it = index_.find(Key{task.value(), vpn});
  return it == index_.end() ? nullptr : it->second;
}

void MapDb::DestroyNode(MapNode* node) {
  auto erase_from = [node](std::vector<std::unique_ptr<MapNode>>& vec) {
    auto it = std::find_if(vec.begin(), vec.end(),
                           [node](const std::unique_ptr<MapNode>& p) { return p.get() == node; });
    assert(it != vec.end());
    vec.erase(it);
  };
  if (node->parent != nullptr) {
    erase_from(node->parent->children);
  } else {
    erase_from(roots_);
  }
}

void MapDb::RemoveSubtree(MapNode* node, bool include_self, const RemovalFn& on_remove) {
  assert(node != nullptr);
  for (auto& child : node->children) {
    VisitSubtree(child.get(), [&](MapNode* n) {
      UnindexNode(n);
      on_remove(n->task, n->vpn);
    });
  }
  node->children.clear();
  if (include_self) {
    UnindexNode(node);
    on_remove(node->task, node->vpn);
    DestroyNode(node);
  }
  if (audit_hook_) {
    audit_hook_();
  }
}

void MapDb::RemoveAllOf(ukvm::DomainId task, const RemovalFn& on_remove) {
  // Collect first: removals mutate the index. A node of `task` may be inside
  // the subtree of another node of `task`, so re-check liveness via Find.
  std::vector<Key> keys;
  keys.reserve(index_.size());
  for (const auto& [key, node] : index_) {
    if (node->task == task) {
      keys.push_back(key);
    }
  }
  for (const Key& key : keys) {
    MapNode* node = Find(task, key.vpn);
    if (node != nullptr) {
      RemoveSubtree(node, /*include_self=*/true, on_remove);
    }
  }
}

void MapDb::ForEachNode(const std::function<void(const MapNode&)>& fn) const {
  for (const auto& [key, node] : index_) {
    fn(*node);
  }
}

}  // namespace ukern
