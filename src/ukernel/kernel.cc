#include "src/ukernel/kernel.h"

#include <algorithm>
#include <cassert>

#include "src/core/log.h"

namespace ukern {

using ukvm::CrossingKind;
using ukvm::DomainId;
using ukvm::Err;
using ukvm::IrqLine;
using ukvm::Result;
using ukvm::ThreadId;

Kernel::Kernel(hwsim::Machine& machine) : machine_(machine) {
  auto& ledger = machine_.ledger();
  mech_.ipc_call = ledger.InternMechanism("l4.ipc.call", CrossingKind::kSyncCall);
  mech_.ipc_reply = ledger.InternMechanism("l4.ipc.reply", CrossingKind::kSyncReply);
  mech_.ipc_replywait = ledger.InternMechanism("l4.ipc.replywait", CrossingKind::kSyncReply);
  mech_.ipc_send = ledger.InternMechanism("l4.ipc.send", CrossingKind::kSyncCall);
  mech_.ipc_string = ledger.InternMechanism("l4.ipc.string", CrossingKind::kDataTransfer);
  mech_.ipc_map = ledger.InternMechanism("l4.ipc.map", CrossingKind::kResourceDelegate);
  mech_.ipc_notify = ledger.InternMechanism("l4.ipc.notify", CrossingKind::kAsyncNotify);
  mech_.unmap = ledger.InternMechanism("l4.unmap", CrossingKind::kResourceDelegate);
  mech_.irq_ipc = ledger.InternMechanism("l4.irq.ipc", CrossingKind::kInterrupt);
  mech_.pf_ipc = ledger.InternMechanism("l4.pf.ipc", CrossingKind::kSyncCall);
  ukvm::Tracer& tracer = machine_.tracer();
  ukvm::CycleProfiler& prof = tracer.profiler();
  trace_.call_name = tracer.InternName("l4.ipc.call");
  trace_.call_frame = prof.InternFrame("l4.ipc.call");
  trace_.send_name = tracer.InternName("l4.ipc.send");
  trace_.send_frame = prof.InternFrame("l4.ipc.send");
  trace_.notify_name = tracer.InternName("l4.ipc.notify");
  trace_.notify_frame = prof.InternFrame("l4.ipc.notify");
  trace_.unmap_name = tracer.InternName("l4.unmap");
  trace_.unmap_frame = prof.InternFrame("l4.unmap");
  trace_.irq_name = tracer.InternName("l4.irq.ipc");
  trace_.irq_frame = prof.InternFrame("l4.irq.ipc");
  trace_.pf_name = tracer.InternName("l4.pf.ipc");
  trace_.pf_frame = prof.InternFrame("l4.pf.ipc");
  req_pf_name_ = machine_.reqtrace().InternName("l4.pf");
  string_windows_.resize(machine_.num_vcpus());
  machine_.SetTrapHandler(this);
}

Kernel::~Kernel() {
  if (machine_.trap_handler() == this) {
    machine_.SetTrapHandler(nullptr);
  }
}

// --- Task and thread management ---------------------------------------------

Result<DomainId> Kernel::CreateTask(ThreadId pager) {
  machine_.ChargeTo(kKernelDomain, machine_.costs().kernel_op);
  const DomainId id{next_task_id_++};
  tasks_.emplace(id, std::make_unique<Task>(id, machine_.platform(), pager));
  if (!root_task_.valid()) {
    root_task_ = id;
  }
  return id;
}

Err Kernel::DestroyTask(DomainId task) {
  Task* t = FindTask(task);
  if (t == nullptr || !t->alive) {
    return Err::kBadHandle;
  }
  machine_.ChargeTo(kKernelDomain, machine_.costs().kernel_op);
  t->alive = false;
  for (ThreadId tid : t->threads) {
    if (Tcb* tcb = FindThread(tid)) {
      tcb->state = ThreadState::kDead;
      run_queue_.Remove(tid);
    }
  }
  // Revoke every mapping in this task's space — including mappings it had
  // delegated onward, which vanish with it (the microkernel half of the
  // liability-inversion experiment E5).
  mapdb_.RemoveAllOf(task, [this](DomainId owner, hwsim::Vaddr vpn) { RevokePte(owner, vpn); });
  FlushShootdowns();
  // The space itself dies: run the full shootdown protocol so every vCPU
  // drops its entries, then quarantine the TLB salt until all acks are in.
  machine_.ShootdownSpaceDeath(&t->space);
  // Drop IRQ routes to its threads.
  for (auto it = irq_routes_.begin(); it != irq_routes_.end();) {
    Tcb* tcb = FindThread(it->second);
    if (tcb == nullptr || tcb->state == ThreadState::kDead) {
      it = irq_routes_.erase(it);
    } else {
      ++it;
    }
  }
  if (current_thread_.valid()) {
    Tcb* cur = FindThread(current_thread_);
    if (cur != nullptr && cur->task == task) {
      current_thread_ = ThreadId::Invalid();
      machine_.cpu().SetDomain(kKernelDomain);
      machine_.cpu().SetMode(hwsim::PrivLevel::kPrivileged);
    }
  }
  return Err::kNone;
}

Result<ThreadId> Kernel::CreateThread(DomainId task, uint32_t priority, IpcHandler handler) {
  Task* t = FindTask(task);
  if (t == nullptr || !t->alive) {
    return Err::kBadHandle;
  }
  machine_.ChargeTo(kKernelDomain, machine_.costs().kernel_op);
  const ThreadId id{next_thread_id_++};
  auto tcb = std::make_unique<Tcb>();
  tcb->id = id;
  tcb->task = task;
  tcb->priority = std::min<uint32_t>(priority, 255);
  tcb->state = ThreadState::kWaiting;
  tcb->handler = std::move(handler);
  threads_.emplace(id, std::move(tcb));
  t->threads.push_back(id);
  return id;
}

Err Kernel::DestroyThread(ThreadId thread) {
  Tcb* tcb = FindThread(thread);
  if (tcb == nullptr || tcb->state == ThreadState::kDead) {
    return Err::kBadHandle;
  }
  machine_.ChargeTo(kKernelDomain, machine_.costs().kernel_op);
  tcb->state = ThreadState::kDead;
  run_queue_.Remove(thread);
  if (current_thread_ == thread) {
    current_thread_ = ThreadId::Invalid();
  }
  return Err::kNone;
}

Err Kernel::SetThreadHandler(ThreadId thread, IpcHandler handler) {
  Tcb* tcb = FindThread(thread);
  if (tcb == nullptr || tcb->state == ThreadState::kDead) {
    return Err::kBadHandle;
  }
  tcb->handler = std::move(handler);
  return Err::kNone;
}

Err Kernel::SetNotifyHandler(ThreadId thread, NotifyHandler handler) {
  Tcb* tcb = FindThread(thread);
  if (tcb == nullptr) {
    return Err::kBadHandle;
  }
  tcb->notify_handler = std::move(handler);
  return Err::kNone;
}

Err Kernel::SetRecvBuffer(ThreadId thread, hwsim::Vaddr buffer, uint32_t len) {
  Tcb* tcb = FindThread(thread);
  if (tcb == nullptr) {
    return Err::kBadHandle;
  }
  tcb->recv_buffer = buffer;
  tcb->recv_buffer_len = len;
  return Err::kNone;
}

Err Kernel::SetSmallSpace(DomainId task, bool small) {
  if (small && !machine_.platform().has_segmentation && !machine_.platform().has_fcse) {
    return Err::kNotSupported;
  }
  Task* t = FindTask(task);
  if (t == nullptr || !t->alive) {
    return Err::kBadHandle;
  }
  t->small_space = small;
  return Err::kNone;
}

Err Kernel::SetPager(DomainId task, ThreadId pager) {
  Task* t = FindTask(task);
  if (t == nullptr || !t->alive) {
    return Err::kBadHandle;
  }
  t->pager = pager;
  return Err::kNone;
}

bool Kernel::TaskAlive(DomainId task) const {
  auto it = tasks_.find(task);
  return it != tasks_.end() && it->second->alive;
}

bool Kernel::ThreadAlive(ThreadId thread) const {
  auto it = threads_.find(thread);
  return it != threads_.end() && it->second->state != ThreadState::kDead;
}

Result<DomainId> Kernel::TaskOf(ThreadId thread) const {
  auto it = threads_.find(thread);
  if (it == threads_.end()) {
    return Err::kBadHandle;
  }
  return it->second->task;
}

Task* Kernel::FindTask(DomainId id) {
  auto it = tasks_.find(id);
  return it == tasks_.end() ? nullptr : it->second.get();
}

void Kernel::ForEachTask(const std::function<void(Task&)>& fn) {
  for (const auto& [id, task] : tasks_) {
    if (task->alive) {
      fn(*task);
    }
  }
}

Tcb* Kernel::FindThread(ThreadId id) {
  auto it = threads_.find(id);
  return it == threads_.end() ? nullptr : it->second.get();
}

// --- Kernel entry/exit -------------------------------------------------------

void Kernel::EnterKernel() {
  machine_.Charge(machine_.costs().trap_entry);
  machine_.cpu().SetDomain(kKernelDomain);
  machine_.cpu().SetMode(hwsim::PrivLevel::kPrivileged);
  machine_.cpu().SetInterruptsEnabled(false);
}

void Kernel::LeaveKernelTo(ThreadId thread) {
  Tcb* tcb = FindThread(thread);
  if (tcb == nullptr || tcb->state == ThreadState::kDead) {
    // Nothing to return to; stay in the kernel (idle).
    current_thread_ = ThreadId::Invalid();
    machine_.cpu().SetInterruptsEnabled(true);
    return;
  }
  Task* task = FindTask(tcb->task);
  assert(task != nullptr);
  if (task->small_space) {
    machine_.cpu().SwitchAddressSpaceSmall(&task->space);
  } else {
    machine_.cpu().SwitchAddressSpace(&task->space);
  }
  machine_.cpu().SetSegments(&task->segments);
  machine_.cpu().SetDomain(task->id);
  machine_.cpu().SetMode(hwsim::PrivLevel::kUser);
  machine_.Charge(machine_.costs().trap_return);
  current_thread_ = thread;
  tcb->state = ThreadState::kRunning;
  machine_.cpu().SetInterruptsEnabled(true);
  machine_.DeliverPendingInterrupts();
}

Err Kernel::ActivateThread(ThreadId thread) {
  Tcb* tcb = FindThread(thread);
  if (tcb == nullptr || tcb->state == ThreadState::kDead) {
    return Err::kBadHandle;
  }
  if (!TaskAlive(tcb->task)) {
    return Err::kDead;
  }
  machine_.ChargeTo(kKernelDomain, machine_.costs().schedule_decision);
  if (lazy_queue_dirty_) {
    DrainLazyRunQueue();
  }
  LeaveKernelTo(thread);
  return Err::kNone;
}

void Kernel::DrainLazyRunQueue() {
  // Lazy scheduling's deferred half: the fast path direct-switches without
  // touching run_queue_, so by the next real schedule decision the queue
  // may hold threads that are no longer ready. One sweep reconciles it.
  fastpath_stats_.lazy_fixups += run_queue_.RemoveIf([this](ThreadId id) {
    Tcb* t = FindThread(id);
    return t == nullptr || t->state != ThreadState::kReady;
  });
  lazy_queue_dirty_ = false;
}

// --- IPC ----------------------------------------------------------------------

void Kernel::ChargeRegTransfer(const IpcMessage& msg) {
  machine_.Charge(machine_.costs().CopyCost(uint64_t{msg.reg_count} * 8));
}

Result<uint64_t> Kernel::TransferString(Tcb& sender, Tcb& receiver, const IpcMessage& msg,
                                        IpcMessage& delivered) {
  if (msg.string.len == 0) {
    return uint64_t{0};
  }
  if (msg.string.len > kMaxStringBytes) {
    return Err::kInvalidArgument;
  }
  if (receiver.recv_buffer_len == 0) {
    return Err::kWouldBlock;  // receiver did not open a string receive window
  }
  Task* from = FindTask(sender.task);
  Task* to = FindTask(receiver.task);
  assert(from != nullptr && to != nullptr);

  const uint32_t len = std::min(msg.string.len, receiver.recv_buffer_len);
  const uint64_t page = from->space.page_size();
  std::vector<uint8_t> bytes(len);

  // Gather from the sender's space page by page.
  uint32_t done = 0;
  while (done < len) {
    const hwsim::Vaddr va = msg.string.snd_base + done;
    const uint32_t chunk =
        static_cast<uint32_t>(std::min<uint64_t>(len - done, page - (va & (page - 1))));
    machine_.Charge(machine_.costs().tlb_miss_walk);
    hwsim::Pte* pte = from->space.Walk(va);
    if (pte == nullptr || !pte->present) {
      return Err::kFault;
    }
    pte->accessed = true;
    const hwsim::Paddr pa = machine_.memory().FrameBase(pte->frame) + (va & (page - 1));
    if (machine_.memory().Read(pa, std::span<uint8_t>(&bytes[done], chunk)) != Err::kNone) {
      return Err::kFault;
    }
    done += chunk;
  }

  // Scatter into the receiver's registered window.
  done = 0;
  while (done < len) {
    const hwsim::Vaddr va = receiver.recv_buffer + done;
    const uint32_t chunk =
        static_cast<uint32_t>(std::min<uint64_t>(len - done, page - (va & (page - 1))));
    machine_.Charge(machine_.costs().tlb_miss_walk);
    hwsim::Pte* pte = to->space.Walk(va);
    if (pte == nullptr || !pte->present || !pte->writable) {
      return Err::kFault;
    }
    pte->accessed = true;
    pte->dirty = true;
    const hwsim::Paddr pa = machine_.memory().FrameBase(pte->frame) + (va & (page - 1));
    if (machine_.memory().Write(pa, std::span<const uint8_t>(&bytes[done], chunk)) != Err::kNone) {
      return Err::kFault;
    }
    done += chunk;
  }

  machine_.ChargeCopy(len);
  delivered.string_data = std::move(bytes);
  return uint64_t{len};
}

Err Kernel::ApplyMapItem(Task& from, Task& to, const MapItem& item) {
  const uint64_t page = from.space.page_size();
  for (uint32_t i = 0; i < item.pages; ++i) {
    const hwsim::Vaddr snd_va = item.snd_base + uint64_t{i} * page;
    const hwsim::Vaddr rcv_va = item.rcv_base + uint64_t{i} * page;
    const hwsim::Vaddr snd_vpn = from.space.VpnOf(snd_va);
    const hwsim::Vaddr rcv_vpn = to.space.VpnOf(rcv_va);

    MapNode* node = mapdb_.Find(from.id, snd_vpn);
    hwsim::Pte* pte = from.space.Walk(snd_va);
    if (node == nullptr || pte == nullptr || !pte->present) {
      return Err::kPermissionDenied;  // cannot delegate what you don't hold
    }
    if (mapdb_.Find(to.id, rcv_vpn) != nullptr) {
      return Err::kAlreadyExists;
    }
    const bool writable = item.writable && pte->writable;  // no privilege amplification
    const hwsim::Frame frame = pte->frame;

    if (item.grant) {
      UKVM_TRY(mapdb_.MoveNode(node, to.id, rcv_vpn));
      from.space.Unmap(snd_va);
      InvalidateStringWindow(from.space, snd_vpn);
      machine_.Charge(machine_.costs().pte_write);
      // Salt-aware flush: on tagged-TLB platforms (and for small spaces)
      // the granter's entries outlive address-space switches. Remote vCPUs
      // must drop it too before the receiver relies on exclusivity.
      machine_.cpu().InvalidatePage(&from.space, snd_vpn);
      machine_.TlbShootdown(&from.space, {&snd_vpn, 1});
    } else {
      mapdb_.AddChild(node, to.id, rcv_vpn, frame);
    }
    to.space.Map(rcv_va, frame, hwsim::PtePerms{writable, /*user=*/true});
    machine_.Charge(machine_.costs().pte_write);
  }
  return Err::kNone;
}

IpcMessage Kernel::InvokeHandler(Tcb& dest, ThreadId sender, IpcMessage&& delivered) {
  const ThreadId prev = current_thread_;
  LeaveKernelTo(dest.id);
  IpcMessage reply = dest.handler ? dest.handler(sender, std::move(delivered)) : IpcMessage{};
  ++dest.messages_handled;
  EnterKernel();
  if (Tcb* d = FindThread(dest.id); d != nullptr && d->state == ThreadState::kRunning) {
    d->state = ThreadState::kWaiting;
  }
  current_thread_ = prev;
  return reply;
}

// --- E21: the L4 fast path -----------------------------------------------------
//
// Liedtke's short-IPC fast path [Lie93], structurally: the kernel is
// entered through a minimal stub (fast_trap_entry — no full frame save),
// the message stays in physical registers across the switch (zero copy
// cost), the caller's time slice is donated to the receiver by a direct
// process switch that never consults the scheduler, and the run queue is
// fixed up lazily at the next real schedule decision. Single-page string
// items ride a temporary-mapping window: one kernel PTE write plus one
// charged copy instead of the walk-twice gather/scatter. Everything the
// fast path cannot handle falls back to the slow path below, unchanged.

void Kernel::EnterKernelFast() {
  machine_.Charge(machine_.costs().fast_trap_entry);
  machine_.cpu().SetDomain(kKernelDomain);
  machine_.cpu().SetMode(hwsim::PrivLevel::kPrivileged);
  machine_.cpu().SetInterruptsEnabled(false);
}

void Kernel::LeaveKernelFastTo(ThreadId thread) {
  Tcb* tcb = FindThread(thread);
  if (tcb == nullptr || tcb->state == ThreadState::kDead) {
    current_thread_ = ThreadId::Invalid();
    machine_.cpu().SetInterruptsEnabled(true);
    return;
  }
  Task* task = FindTask(tcb->task);
  assert(task != nullptr);
  if (task->small_space) {
    machine_.cpu().SwitchAddressSpaceSmall(&task->space);
  } else {
    machine_.cpu().SwitchAddressSpace(&task->space);
  }
  machine_.cpu().SetSegments(&task->segments);
  machine_.cpu().SetDomain(task->id);
  machine_.cpu().SetMode(hwsim::PrivLevel::kUser);
  machine_.Charge(machine_.costs().fast_trap_return);
  current_thread_ = thread;
  tcb->state = ThreadState::kRunning;
  machine_.cpu().SetInterruptsEnabled(true);
  machine_.DeliverPendingInterrupts();
}

Kernel::FastpathVerdict Kernel::ClassifyFastpath(ThreadId caller, ThreadId dest,
                                                 const IpcMessage& msg) {
  Tcb* c = FindThread(caller);
  Tcb* d = FindThread(dest);
  // Error paths (bad handle, dead partner) keep the slow path's exact
  // charge-and-reply discipline.
  if (c == nullptr || d == nullptr || d->state == ThreadState::kDead || !TaskAlive(d->task)) {
    return FastpathVerdict::kNotReady;
  }
  if (d->state != ThreadState::kWaiting || !d->handler) {
    return FastpathVerdict::kNotReady;  // receiver not blocked in receive
  }
  if (!msg.map_items.empty()) {
    return FastpathVerdict::kMapItem;  // delegation always goes slow
  }
  if (msg.has_string && msg.string.len > 0 && !FastStringEligible(*c, *d, msg)) {
    return FastpathVerdict::kString;
  }
  return FastpathVerdict::kEligible;
}

bool Kernel::FastStringEligible(Tcb& sender, Tcb& receiver, const IpcMessage& msg) {
  if (receiver.recv_buffer_len == 0 || msg.string.len > receiver.recv_buffer_len) {
    return false;  // no receive window, or the slow path would truncate
  }
  Task* from = FindTask(sender.task);
  Task* to = FindTask(receiver.task);
  if (from == nullptr || to == nullptr) {
    return false;
  }
  const uint64_t page = from->space.page_size();
  const uint64_t len = msg.string.len;
  // One temporary-mapping window covers one source and one destination
  // page; a boundary-crossing string is "too long" for it.
  if ((msg.string.snd_base & (page - 1)) + len > page) {
    return false;
  }
  if ((receiver.recv_buffer & (page - 1)) + len > page) {
    return false;
  }
  const hwsim::Pte* spte = from->space.Walk(msg.string.snd_base);
  if (spte == nullptr || !spte->present) {
    return false;  // would need the pager: slow path
  }
  const hwsim::Pte* dpte = to->space.Walk(receiver.recv_buffer);
  return dpte != nullptr && dpte->present && dpte->writable;
}

uint64_t Kernel::FastTransferString(Tcb& sender, Tcb& receiver, const IpcMessage& msg,
                                    IpcMessage& delivered) {
  Task* from = FindTask(sender.task);
  Task* to = FindTask(receiver.task);
  assert(from != nullptr && to != nullptr);
  const uint64_t page = from->space.page_size();
  const uint32_t len = msg.string.len;
  // One PTE write maps the source page into the kernel's copy window; the
  // destination page is reached through the receiver's space directly, so
  // a single charged copy replaces TransferString's per-page walk-twice
  // gather/scatter. E23: with the pinned window armed, this vCPU remembers
  // which source page its window maps — a burst of strings from the same
  // page pays the PTE write once and every later transfer rides the pin.
  bool pinned = false;
  if (features_.pinned_window) {
    StringWindow& win = string_windows_[machine_.current_vcpu()];
    const uint64_t inst = from->space.instance_id();
    const hwsim::Vaddr vpn = from->space.VpnOf(msg.string.snd_base);
    if (win.valid && win.space_instance == inst && win.vpn == vpn) {
      pinned = true;
      ++fastpath_stats_.window_pins;
    } else {
      win = StringWindow{inst, vpn, true};
    }
  }
  if (!pinned) {
    machine_.Charge(machine_.costs().pte_write);
  }
  hwsim::Pte* spte = from->space.Walk(msg.string.snd_base);
  hwsim::Pte* dpte = to->space.Walk(receiver.recv_buffer);
  assert(spte != nullptr && dpte != nullptr);
  spte->accessed = true;
  dpte->accessed = true;
  dpte->dirty = true;
  std::vector<uint8_t> bytes(len);
  const hwsim::Paddr src =
      machine_.memory().FrameBase(spte->frame) + (msg.string.snd_base & (page - 1));
  const hwsim::Paddr dst =
      machine_.memory().FrameBase(dpte->frame) + (receiver.recv_buffer & (page - 1));
  (void)machine_.memory().Read(src, std::span<uint8_t>(bytes));
  (void)machine_.memory().Write(dst, std::span<const uint8_t>(bytes));
  machine_.ChargeCopy(len);
  delivered.string_data = std::move(bytes);
  return len;
}

void Kernel::InvalidateStringWindow(const hwsim::PageTable& space, hwsim::Vaddr vpn) {
  // Pure bookkeeping — never charges. Instance ids are never recycled, so
  // matching on them can never confuse a dead space with a live one.
  for (StringWindow& win : string_windows_) {
    if (win.valid && win.space_instance == space.instance_id() && win.vpn == vpn) {
      win.valid = false;
    }
  }
}

IpcMessage Kernel::CallFast(ThreadId caller, ThreadId dest, IpcMessage msg) {
  Tcb* c = FindThread(caller);
  Tcb* d = FindThread(dest);
  ukvm::SpanScope trace_span(machine_.tracer(), trace_.call_name, c->task);
  ukvm::ProfScope trace_frame(machine_.tracer(), trace_.call_frame);
  const uint64_t t0 = machine_.Now();
  EnterKernelFast();
  ++ipc_calls_;
  ++fastpath_stats_.taken;

  // Register transfer costs nothing: a short message never leaves the
  // physical registers on its way across the direct process switch.
  IpcMessage delivered = msg;
  delivered.string_data.clear();
  if (msg.has_string && msg.string.len > 0) {
    const uint64_t moved = FastTransferString(*c, *d, msg, delivered);
    machine_.ledger().Record(mech_.ipc_string, c->task, d->task, 0, moved);
    ++fastpath_stats_.string_windows;
  }
  machine_.ledger().Record(mech_.ipc_call, c->task, d->task, machine_.Now() - t0, 0);
  const DomainId dest_task = d->task;

  // Direct process switch: the receiver runs on the caller's donated time
  // slice; run_queue_ is deliberately left stale (lazy scheduling) and
  // reconciled at the next real schedule decision.
  lazy_queue_dirty_ = true;
  const ThreadId prev = current_thread_;
  LeaveKernelFastTo(dest);
  IpcMessage reply = d->handler(caller, std::move(delivered));
  ++d->messages_handled;

  // E23 reply-wait coalescing: the handler's return IS the server's
  // reply-and-wait-next syscall, and its stub is still resident from the
  // call leg — so a register-only reply from a living server never pays a
  // second kernel entry. The server parks straight back into receive
  // (no scheduler pass) and the direct switch to the caller costs one
  // fast_trap_return. The shape must be decided BEFORE charging re-entry
  // so every fallback leg below stays charge-identical to reply_wait=off.
  d = FindThread(dest);
  const bool server_alive =
      d != nullptr && d->state != ThreadState::kDead && TaskAlive(d->task);
  if (features_.reply_wait && server_alive && reply.IsRegisterOnly()) {
    ++fastpath_stats_.replywait_coalesced;
    if (d->state == ThreadState::kRunning) {
      d->state = ThreadState::kWaiting;
    }
    current_thread_ = prev;
    if (!test_skip_replywait_record_) {
      machine_.ledger().Record(mech_.ipc_replywait, d->task, c->task, 0, 0);
    }
    LeaveKernelFastTo(caller);
    return reply;
  }

  EnterKernelFast();
  if (Tcb* dd = FindThread(dest); dd != nullptr && dd->state == ThreadState::kRunning) {
    dd->state = ThreadState::kWaiting;
  }
  current_thread_ = prev;

  // Same mid-call death discipline as the slow path: the kernel
  // synthesizes the reply crossing on the dead server's behalf.
  if (!server_alive) {
    machine_.ledger().Record(mech_.ipc_reply, dest_task, c->task, 0, 0);
    IpcMessage err = IpcMessage::Error(Err::kDead);
    LeaveKernelFastTo(caller);
    return err;
  }

  if (!reply.IsRegisterOnly()) {
    // Complex reply: only the return leg falls off the fast path; it runs
    // the slow path's exact reply sequence.
    ++fastpath_stats_.slow_replies;
    const uint64_t t1 = machine_.Now();
    machine_.Charge(machine_.costs().kernel_op);
    ChargeRegTransfer(reply);
    if (reply.has_string) {
      auto moved = TransferString(*d, *c, reply, reply);
      if (!moved.ok()) {
        reply.status = moved.error();
      } else {
        machine_.ledger().Record(mech_.ipc_string, d->task, c->task, 0, *moved);
      }
    }
    if (!reply.map_items.empty() && reply.status == Err::kNone) {
      Task* from = FindTask(d->task);
      Task* to = FindTask(c->task);
      for (const MapItem& item : reply.map_items) {
        if (Err err = ApplyMapItem(*from, *to, item); err != Err::kNone) {
          reply.status = err;
          break;
        }
        machine_.ledger().Record(mech_.ipc_map, d->task, c->task, 0,
                                 uint64_t{item.pages} * from->space.page_size());
      }
    }
    machine_.ledger().Record(mech_.ipc_reply, d->task, c->task, machine_.Now() - t1, 0);
    LeaveKernelTo(caller);
    return reply;
  }

  if (!test_skip_fastpath_reply_record_) {
    machine_.ledger().Record(mech_.ipc_reply, d->task, c->task, 0, 0);
  }
  LeaveKernelFastTo(caller);
  return reply;
}

IpcMessage Kernel::Call(ThreadId caller, ThreadId dest, IpcMessage msg) {
  if (ipc_fastpath_) {
    switch (ClassifyFastpath(caller, dest, msg)) {
      case FastpathVerdict::kEligible:
        return CallFast(caller, dest, std::move(msg));
      case FastpathVerdict::kNotReady:
        ++fastpath_stats_.fallback_not_ready;
        break;
      case FastpathVerdict::kMapItem:
        ++fastpath_stats_.fallback_map;
        break;
      case FastpathVerdict::kString:
        ++fastpath_stats_.fallback_string;
        break;
    }
  }
  Tcb* c = FindThread(caller);
  Tcb* d = FindThread(dest);
  ukvm::SpanScope trace_span(machine_.tracer(), trace_.call_name,
                             c != nullptr ? c->task : DomainId::Invalid());
  ukvm::ProfScope trace_frame(machine_.tracer(), trace_.call_frame);
  const uint64_t t0 = machine_.Now();
  EnterKernel();
  ++ipc_calls_;
  machine_.Charge(machine_.costs().kernel_op);

  auto fail = [&](Err err) {
    IpcMessage reply = IpcMessage::Error(err);
    if (c != nullptr) {
      LeaveKernelTo(caller);
    }
    return reply;
  };

  if (c == nullptr || d == nullptr) {
    return fail(Err::kBadHandle);
  }
  if (d->state == ThreadState::kDead || !TaskAlive(d->task)) {
    return fail(Err::kDead);
  }

  ChargeRegTransfer(msg);

  IpcMessage delivered = msg;
  delivered.string_data.clear();
  if (msg.has_string) {
    auto moved = TransferString(*c, *d, msg, delivered);
    if (!moved.ok()) {
      return fail(moved.error());
    }
    machine_.ledger().Record(mech_.ipc_string, c->task, d->task, 0, *moved);
  }
  if (!msg.map_items.empty()) {
    Task* from = FindTask(c->task);
    Task* to = FindTask(d->task);
    for (const MapItem& item : msg.map_items) {
      if (Err err = ApplyMapItem(*from, *to, item); err != Err::kNone) {
        return fail(err);
      }
      machine_.ledger().Record(mech_.ipc_map, c->task, d->task, 0,
                               uint64_t{item.pages} * from->space.page_size());
    }
  }

  machine_.ledger().Record(mech_.ipc_call, c->task, d->task, machine_.Now() - t0, 0);
  const DomainId dest_task = d->task;

  IpcMessage reply = InvokeHandler(*d, caller, std::move(delivered));

  // The destination can be destroyed while handling the call (a supervisor
  // killing a server task mid-request). Whatever the doomed handler
  // returned is void: the caller observes the death, exactly as if the
  // call had never been answered, and the stale Tcb is never dereferenced.
  // The kernel synthesizes the error reply on the dead server's behalf, so
  // the crossing ledger still sees a balanced call/reply pair.
  d = FindThread(dest);
  if (d == nullptr || d->state == ThreadState::kDead || !TaskAlive(d->task)) {
    machine_.ledger().Record(mech_.ipc_reply, dest_task, c->task, 0, 0);
    return fail(Err::kDead);
  }

  // Reply path: transfer back to the caller.
  const uint64_t t1 = machine_.Now();
  machine_.Charge(machine_.costs().kernel_op);
  ChargeRegTransfer(reply);
  if (reply.has_string) {
    auto moved = TransferString(*d, *c, reply, reply);
    if (!moved.ok()) {
      reply.status = moved.error();
    } else {
      machine_.ledger().Record(mech_.ipc_string, d->task, c->task, 0, *moved);
    }
  }
  if (!reply.map_items.empty() && reply.status == Err::kNone) {
    Task* from = FindTask(d->task);
    Task* to = FindTask(c->task);
    for (const MapItem& item : reply.map_items) {
      if (Err err = ApplyMapItem(*from, *to, item); err != Err::kNone) {
        reply.status = err;
        break;
      }
      machine_.ledger().Record(mech_.ipc_map, d->task, c->task, 0,
                               uint64_t{item.pages} * from->space.page_size());
    }
  }
  machine_.ledger().Record(mech_.ipc_reply, d->task, c->task, machine_.Now() - t1, 0);
  LeaveKernelTo(caller);
  return reply;
}

Err Kernel::SendFast(ThreadId caller, ThreadId dest, IpcMessage msg) {
  Tcb* c = FindThread(caller);
  Tcb* d = FindThread(dest);
  ukvm::SpanScope trace_span(machine_.tracer(), trace_.send_name, c->task);
  ukvm::ProfScope trace_frame(machine_.tracer(), trace_.send_frame);
  EnterKernelFast();
  ++ipc_calls_;
  ++fastpath_stats_.send_fast;
  // Register transfer costs nothing — the short message stays in physical
  // registers across the direct switch; the one-way crossing is recorded
  // (l4.ipc.send is pairing-exempt by design) and the receiver runs on the
  // sender's donated slice with the run queue left stale.
  machine_.ledger().Record(mech_.ipc_send, c->task, d->task, 0, 0);
  lazy_queue_dirty_ = true;
  const ThreadId prev = current_thread_;
  LeaveKernelFastTo(dest);
  (void)d->handler(caller, std::move(msg));
  ++d->messages_handled;
  EnterKernelFast();
  if (Tcb* dd = FindThread(dest); dd != nullptr && dd->state == ThreadState::kRunning) {
    dd->state = ThreadState::kWaiting;
  }
  current_thread_ = prev;
  LeaveKernelFastTo(caller);
  return Err::kNone;
}

Err Kernel::Send(ThreadId caller, ThreadId dest, IpcMessage msg) {
  if (ipc_fastpath_ && features_.send) {
    // Only the register-only shape rides the stubs; strings and map items
    // keep the slow path's exact charge-and-reply discipline.
    if (!msg.has_string && msg.map_items.empty() &&
        ClassifyFastpath(caller, dest, msg) == FastpathVerdict::kEligible) {
      return SendFast(caller, dest, std::move(msg));
    }
    ++fastpath_stats_.send_slow;
  }
  Tcb* c = FindThread(caller);
  Tcb* d = FindThread(dest);
  ukvm::SpanScope trace_span(machine_.tracer(), trace_.send_name,
                             c != nullptr ? c->task : DomainId::Invalid());
  ukvm::ProfScope trace_frame(machine_.tracer(), trace_.send_frame);
  EnterKernel();
  ++ipc_calls_;
  machine_.Charge(machine_.costs().kernel_op);
  if (c == nullptr || d == nullptr) {
    LeaveKernelTo(caller);
    return Err::kBadHandle;
  }
  if (d->state == ThreadState::kDead || !TaskAlive(d->task)) {
    LeaveKernelTo(caller);
    return Err::kDead;
  }
  ChargeRegTransfer(msg);
  IpcMessage delivered = msg;
  if (msg.has_string) {
    auto moved = TransferString(*c, *d, msg, delivered);
    if (!moved.ok()) {
      LeaveKernelTo(caller);
      return moved.error();
    }
    machine_.ledger().Record(mech_.ipc_string, c->task, d->task, 0, *moved);
  }
  machine_.ledger().Record(mech_.ipc_send, c->task, d->task, 0, 0);
  (void)InvokeHandler(*d, caller, std::move(delivered));
  LeaveKernelTo(caller);
  return Err::kNone;
}

Err Kernel::NotifyFast(Tcb& dest, uint64_t bits) {
  ukvm::SpanScope trace_span(machine_.tracer(), trace_.notify_name, dest.task);
  ukvm::ProfScope trace_frame(machine_.tracer(), trace_.notify_frame);
  ++fastpath_stats_.notify_fast;
  // The latch discipline is identical to the slow path: new bits merge into
  // the pending set first, and the handler consumes the whole merged set.
  // The mutation hook delivers only the fresh bits — anything latched while
  // the receiver was busy is silently lost, which the differential
  // fast-vs-slow fuzzer must flag as an end-state divergence.
  if (!test_skip_notify_latch_) {
    dest.pending_notify_bits |= bits;
  }
  ++dest.notifications;
  machine_.ledger().Record(mech_.ipc_notify, machine_.cpu().current_domain(), dest.task, 0, 0);
  const ThreadId prev = current_thread_;
  lazy_queue_dirty_ = true;
  LeaveKernelFastTo(dest.id);
  uint64_t pending = dest.pending_notify_bits;
  if (test_skip_notify_latch_) {
    pending = bits;
  }
  dest.pending_notify_bits = 0;
  dest.notify_handler(pending);
  EnterKernelFast();
  current_thread_ = prev;
  if (prev.valid()) {
    LeaveKernelFastTo(prev);
  }
  return Err::kNone;
}

Err Kernel::Notify(ThreadId dest, uint64_t bits) {
  Tcb* d = FindThread(dest);
  if (d == nullptr || d->state == ThreadState::kDead || !TaskAlive(d->task)) {
    return Err::kDead;
  }
  if (ipc_fastpath_ && features_.notify) {
    // Fast delivery needs a receiver blocked in receive with a notify
    // handler; everything else (latch-only, busy receiver) falls back to
    // the slow path's exact charge sequence.
    if (d->state == ThreadState::kWaiting && d->notify_handler) {
      return NotifyFast(*d, bits);
    }
    ++fastpath_stats_.notify_slow;
  }
  ukvm::SpanScope trace_span(machine_.tracer(), trace_.notify_name, d->task);
  ukvm::ProfScope trace_frame(machine_.tracer(), trace_.notify_frame);
  machine_.ChargeTo(kKernelDomain, machine_.costs().kernel_op);
  d->pending_notify_bits |= bits;
  ++d->notifications;
  machine_.ledger().Record(mech_.ipc_notify, machine_.cpu().current_domain(), d->task, 0, 0);
  if (d->notify_handler) {
    const ThreadId prev = current_thread_;
    LeaveKernelTo(dest);
    const uint64_t pending = d->pending_notify_bits;
    d->pending_notify_bits = 0;
    d->notify_handler(pending);
    EnterKernel();
    current_thread_ = prev;
    if (prev.valid()) {
      LeaveKernelTo(prev);
    }
  }
  return Err::kNone;
}

// --- Memory management ---------------------------------------------------------

Err Kernel::RootMapPhys(DomainId task, hwsim::Vaddr va, hwsim::Frame frame, bool writable) {
  if (task != root_task_) {
    return Err::kPermissionDenied;
  }
  Task* t = FindTask(task);
  if (t == nullptr || !t->alive) {
    return Err::kBadHandle;
  }
  const hwsim::Vaddr vpn = t->space.VpnOf(va);
  if (mapdb_.Find(task, vpn) != nullptr) {
    return Err::kAlreadyExists;
  }
  machine_.ChargeTo(kKernelDomain, machine_.costs().pte_write);
  t->space.Map(va, frame, hwsim::PtePerms{writable, /*user=*/true});
  mapdb_.AddRoot(task, vpn, frame);
  return Err::kNone;
}

void Kernel::RevokePte(DomainId task, hwsim::Vaddr vpn) {
  Task* t = FindTask(task);
  if (t == nullptr) {
    return;
  }
  t->space.Unmap(vpn << t->space.page_shift());
  InvalidateStringWindow(t->space, vpn);
  machine_.ChargeTo(kKernelDomain, machine_.costs().pte_write);
  // Salt-aware flush: tagged-TLB entries and small-space entries survive
  // address-space switches, so the current-space check alone is not enough.
  machine_.cpu().InvalidatePage(&t->space, vpn);
  pending_shootdown_.emplace_back(&t->space, vpn);
}

void Kernel::FlushShootdowns() {
  if (pending_shootdown_.empty()) {
    return;
  }
  // Group queued revocations by space (first-seen order, so charging stays
  // deterministic) and run one IPI round per space.
  std::vector<std::pair<const hwsim::PageTable*, std::vector<hwsim::Vaddr>>> groups;
  for (const auto& [space, vpn] : pending_shootdown_) {
    auto it = std::find_if(groups.begin(), groups.end(),
                           [space = space](const auto& g) { return g.first == space; });
    if (it == groups.end()) {
      groups.emplace_back(space, std::vector<hwsim::Vaddr>{vpn});
    } else {
      it->second.push_back(vpn);
    }
  }
  pending_shootdown_.clear();
  for (const auto& [space, vpns] : groups) {
    machine_.TlbShootdown(space, vpns);
  }
}

Err Kernel::Unmap(DomainId task, hwsim::Vaddr va, uint32_t pages, bool include_self) {
  Task* t = FindTask(task);
  if (t == nullptr || !t->alive) {
    return Err::kBadHandle;
  }
  ukvm::SpanScope trace_span(machine_.tracer(), trace_.unmap_name, task);
  ukvm::ProfScope trace_frame(machine_.tracer(), trace_.unmap_frame);
  const uint64_t t0 = machine_.Now();
  EnterKernel();
  machine_.Charge(machine_.costs().kernel_op);
  const uint64_t page = t->space.page_size();
  for (uint32_t i = 0; i < pages; ++i) {
    const hwsim::Vaddr vpn = t->space.VpnOf(va + uint64_t{i} * page);
    MapNode* node = mapdb_.Find(task, vpn);
    if (node == nullptr) {
      continue;
    }
    mapdb_.RemoveSubtree(node, include_self,
                         [this](DomainId owner, hwsim::Vaddr v) { RevokePte(owner, v); });
  }
  machine_.Charge(machine_.costs().tlb_shootdown);
  FlushShootdowns();
  machine_.ledger().Record(mech_.unmap, machine_.cpu().current_domain(), task,
                           machine_.Now() - t0, uint64_t{pages} * page);
  if (current_thread_.valid()) {
    LeaveKernelTo(current_thread_);
  }
  return Err::kNone;
}

Err Kernel::ResolveFault(ThreadId thread, hwsim::Vaddr va, bool write) {
  // E22 follow-up: a fault that arrives outside any traced request (a bare
  // TouchPage, a reflected guest fault) mints its own origin so paging
  // control paths parent into the request DAG; a fault inside a request
  // (an OS server touching client memory mid-syscall) stays attributed to
  // that request. Request tracing never charges simulated cycles, so the
  // sim results are byte-identical either way.
  ukvm::RequestTrace& rt = machine_.reqtrace();
  if (!rt.enabled() || rt.current().valid()) {
    return DoResolveFault(thread, va, write);
  }
  Tcb* tcb = FindThread(thread);
  const DomainId origin_domain = tcb != nullptr ? tcb->task : DomainId::Invalid();
  ukvm::ReqOriginScope origin(rt, req_pf_name_, origin_domain);
  const Err err = DoResolveFault(thread, va, write);
  if (err == Err::kNone) {
    rt.EndRequest(origin.ref());
  } else {
    rt.AbandonRequest(origin.ref());
  }
  return err;
}

Err Kernel::DoResolveFault(ThreadId thread, hwsim::Vaddr va, bool write) {
  Tcb* tcb = FindThread(thread);
  if (tcb == nullptr) {
    return Err::kBadHandle;
  }
  Task* task = FindTask(tcb->task);
  if (task == nullptr || !task->alive) {
    return Err::kDead;
  }
  if (!task->pager.valid()) {
    return Err::kFault;
  }
  const ThreadId pager_id = task->pager;
  Tcb* pager = FindThread(pager_id);
  if (pager == nullptr || pager->state == ThreadState::kDead || !TaskAlive(pager->task)) {
    return Err::kDead;  // pager gone: the fault is unresolvable
  }
  const DomainId pager_task_id = pager->task;

  ukvm::SpanScope trace_span(machine_.tracer(), trace_.pf_name, tcb->task);
  ukvm::ProfScope trace_frame(machine_.tracer(), trace_.pf_frame);
  const uint64_t t0 = machine_.Now();
  // Synthesized page-fault IPC, as the L4 pager protocol specifies.
  IpcMessage fault = IpcMessage::Short(kPageFaultLabel, va, write ? 1 : 0);
  machine_.ledger().Record(mech_.pf_ipc, tcb->task, pager->task, 0, 0);
  IpcMessage reply;
  if (ipc_fastpath_ && features_.fault_ipc && pager->state == ThreadState::kWaiting &&
      pager->handler) {
    // E23: the fault IPC rides the fast stubs. The fault trap itself stays
    // a full-cost hardware trap (TouchPage charges trap_entry/trap_return
    // around us); only the two kernel/pager crossings go fast, with the
    // run queue left stale across the direct switch.
    ++fastpath_stats_.fault_fast;
    lazy_queue_dirty_ = true;
    const ThreadId prev = current_thread_;
    LeaveKernelFastTo(pager_id);
    reply = pager->handler(thread, std::move(fault));
    ++pager->messages_handled;
    EnterKernelFast();
    if (Tcb* p = FindThread(pager_id); p != nullptr && p->state == ThreadState::kRunning) {
      p->state = ThreadState::kWaiting;
    }
    current_thread_ = prev;
  } else {
    reply = InvokeHandler(*pager, thread, std::move(fault));
  }
  // E23 bugfix, mirroring Call's mid-call death discipline: the pager can
  // be destroyed while handling the fault (a supervisor killing it
  // mid-request). Whatever the doomed handler returned is void — its map
  // items are never applied — and the kernel synthesizes the reply
  // crossing on the dead pager's behalf so the pf pairing stays balanced.
  pager = FindThread(pager_id);
  if (pager == nullptr || pager->state == ThreadState::kDead || !TaskAlive(pager->task)) {
    machine_.ledger().Record(mech_.ipc_reply, pager_task_id, tcb->task, machine_.Now() - t0, 0);
    return Err::kDead;
  }
  // The pager did answer — even an error reply is a reply, so record it
  // before bailing or the call/reply pairing goes unbalanced.
  machine_.ledger().Record(mech_.ipc_reply, pager->task, tcb->task, machine_.Now() - t0, 0);
  if (reply.status != Err::kNone) {
    return reply.status;
  }
  // The pager answers with map items targeting the faulter's space.
  Task* pager_task = FindTask(pager->task);
  for (const MapItem& item : reply.map_items) {
    if (Err err = ApplyMapItem(*pager_task, *task, item); err != Err::kNone) {
      return err;
    }
    machine_.ledger().Record(mech_.ipc_map, pager->task, task->id, 0,
                             uint64_t{item.pages} * task->space.page_size());
  }

  // Verify the fault is now resolved.
  hwsim::Pte* pte = task->space.Walk(va);
  if (pte == nullptr || !pte->present || (write && !pte->writable)) {
    return Err::kFault;
  }
  return Err::kNone;
}

Err Kernel::TouchPage(ThreadId thread, hwsim::Vaddr va, bool write) {
  Tcb* tcb = FindThread(thread);
  if (tcb == nullptr || tcb->state == ThreadState::kDead) {
    return Err::kBadHandle;
  }
  Task* task = FindTask(tcb->task);
  hwsim::Pte* pte = task->space.Walk(va);
  machine_.Charge(machine_.costs().tlb_miss_walk);
  if (pte != nullptr && pte->present && (!write || pte->writable)) {
    pte->accessed = true;
    if (write) {
      pte->dirty = true;
    }
    return Err::kNone;
  }
  // Hardware page fault: trap into the kernel, run the pager protocol.
  machine_.Charge(machine_.costs().trap_entry);
  const Err err = ResolveFault(thread, va, write);
  machine_.Charge(machine_.costs().trap_return);
  return err;
}

Err Kernel::CopyIn(ThreadId thread, hwsim::Vaddr va, std::span<uint8_t> out) {
  Tcb* tcb = FindThread(thread);
  if (tcb == nullptr) {
    return Err::kBadHandle;
  }
  Task* task = FindTask(tcb->task);
  const uint64_t page = task->space.page_size();
  size_t done = 0;
  while (done < out.size()) {
    const hwsim::Vaddr addr = va + done;
    const size_t chunk = std::min<size_t>(out.size() - done, page - (addr & (page - 1)));
    UKVM_TRY(TouchPage(thread, addr, /*write=*/false));
    const hwsim::Pte* pte = task->space.Walk(addr);
    const hwsim::Paddr pa = machine_.memory().FrameBase(pte->frame) + (addr & (page - 1));
    UKVM_TRY(machine_.memory().Read(pa, out.subspan(done, chunk)));
    done += chunk;
  }
  machine_.ChargeCopy(out.size());
  return Err::kNone;
}

Err Kernel::CopyOut(ThreadId thread, hwsim::Vaddr va, std::span<const uint8_t> in) {
  Tcb* tcb = FindThread(thread);
  if (tcb == nullptr) {
    return Err::kBadHandle;
  }
  Task* task = FindTask(tcb->task);
  const uint64_t page = task->space.page_size();
  size_t done = 0;
  while (done < in.size()) {
    const hwsim::Vaddr addr = va + done;
    const size_t chunk = std::min<size_t>(in.size() - done, page - (addr & (page - 1)));
    UKVM_TRY(TouchPage(thread, addr, /*write=*/true));
    const hwsim::Pte* pte = task->space.Walk(addr);
    const hwsim::Paddr pa = machine_.memory().FrameBase(pte->frame) + (addr & (page - 1));
    UKVM_TRY(machine_.memory().Write(pa, in.subspan(done, chunk)));
    done += chunk;
  }
  machine_.ChargeCopy(in.size());
  return Err::kNone;
}

// --- Interrupts -----------------------------------------------------------------

Err Kernel::AssociateIrq(IrqLine line, ThreadId handler_thread) {
  if (!ThreadAlive(handler_thread)) {
    return Err::kBadHandle;
  }
  machine_.ChargeTo(kKernelDomain, machine_.costs().kernel_op);
  irq_routes_[line] = handler_thread;
  return Err::kNone;
}

void Kernel::HandleInterrupt(IrqLine line) {
  auto it = irq_routes_.find(line);
  if (it == irq_routes_.end()) {
    return;  // spurious / unrouted
  }
  Tcb* handler = FindThread(it->second);
  if (handler == nullptr || handler->state == ThreadState::kDead || !TaskAlive(handler->task)) {
    return;  // driver died; interrupt is dropped
  }
  const ThreadId prev = current_thread_;
  ukvm::SpanScope trace_span(machine_.tracer(), trace_.irq_name, handler->task);
  ukvm::ProfScope trace_frame(machine_.tracer(), trace_.irq_frame);
  const uint64_t t0 = machine_.Now();
  EnterKernel();
  machine_.Charge(machine_.costs().kernel_op);
  machine_.ledger().Record(mech_.irq_ipc, ukvm::kHardwareDomain, handler->task,
                           machine_.Now() - t0, 0);
  IpcMessage msg = IpcMessage::Short(kIrqLabel, line.value());
  (void)InvokeHandler(*handler, ThreadId::Invalid(), std::move(msg));
  if (prev.valid()) {
    LeaveKernelTo(prev);
  } else {
    machine_.cpu().SetInterruptsEnabled(true);
  }
}

void Kernel::HandleTrap(hwsim::TrapFrame& frame) {
  switch (frame.vector) {
    case hwsim::TrapVector::kPageFault: {
      if (current_thread_.valid()) {
        frame.regs[0] =
            static_cast<uint64_t>(ResolveFault(current_thread_, frame.fault_addr,
                                               frame.write_access));
      } else {
        frame.regs[0] = static_cast<uint64_t>(Err::kFault);
      }
      break;
    }
    default: {
      // Unhandled exception in user code: the kernel kills the thread.
      if (current_thread_.valid()) {
        UKVM_WARN("ukernel: killing thread %u on %s", current_thread_.value(),
                  hwsim::TrapVectorName(frame.vector));
        (void)DestroyThread(current_thread_);
      }
      frame.regs[0] = static_cast<uint64_t>(Err::kAborted);
      break;
    }
  }
}

}  // namespace ukern
