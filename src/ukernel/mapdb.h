// The mapping database: who mapped which page to whom.
//
// L4's map/grant/unmap model is recursive: a pager maps pages to its
// clients, who may map them onward; Unmap revokes an entire derivation
// subtree. The database tracks one node per (task, virtual page) mapping,
// organised as forests rooted at the initial sigma0-style mappings. This is
// the "resource delegation ... between multiple (potentially distrusting)
// parties" role of IPC (paper §2.2, role 3).

#ifndef UKVM_SRC_UKERNEL_MAPDB_H_
#define UKVM_SRC_UKERNEL_MAPDB_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/core/ids.h"
#include "src/hw/memory.h"

namespace ukern {

struct MapNode {
  ukvm::DomainId task;
  hwsim::Vaddr vpn = 0;  // virtual page number in `task`'s space
  hwsim::Frame frame = 0;
  MapNode* parent = nullptr;
  std::vector<std::unique_ptr<MapNode>> children;
};

class MapDb {
 public:
  // A mapping removal notification: (task, vpn) whose PTE must be cleared.
  using RemovalFn = std::function<void(ukvm::DomainId task, hwsim::Vaddr vpn)>;

  // Adds a root mapping (initial physical memory grant to the root task).
  MapNode* AddRoot(ukvm::DomainId task, hwsim::Vaddr vpn, hwsim::Frame frame);

  // Adds a mapping derived from `parent` (an IPC map item).
  MapNode* AddChild(MapNode* parent, ukvm::DomainId task, hwsim::Vaddr vpn, hwsim::Frame frame);

  // Re-keys a node to a new (task, vpn): the grant operation, which moves
  // the mapping instead of deriving a new one. Children stay attached.
  ukvm::Err MoveNode(MapNode* node, ukvm::DomainId new_task, hwsim::Vaddr new_vpn);

  MapNode* Find(ukvm::DomainId task, hwsim::Vaddr vpn);

  // Removes the derivation subtree under `node`; with `include_self` the
  // node's own mapping goes too. `on_remove` fires for every removed node.
  void RemoveSubtree(MapNode* node, bool include_self, const RemovalFn& on_remove);

  // Removes every mapping residing in `task` (and their derivation
  // subtrees, which may live in other tasks) — task destruction.
  void RemoveAllOf(ukvm::DomainId task, const RemovalFn& on_remove);

  // Visits every node in the database; for the invariant auditor.
  void ForEachNode(const std::function<void(const MapNode&)>& fn) const;

  // Observer called after any structural mutation (add, move, remove).
  // Installed by the auditor; nullptr detaches.
  void SetAuditHook(std::function<void()> hook) { audit_hook_ = std::move(hook); }

  size_t node_count() const { return index_.size(); }

 private:
  struct Key {
    uint32_t task;
    uint64_t vpn;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<uint64_t>{}((uint64_t{k.task} << 52) ^ k.vpn);
    }
  };

  void IndexNode(MapNode* node);
  void UnindexNode(const MapNode* node);
  // Detaches `node` from its parent (or the root list) and destroys it and
  // its already-unindexed subtree.
  void DestroyNode(MapNode* node);

  std::vector<std::unique_ptr<MapNode>> roots_;
  std::unordered_map<Key, MapNode*, KeyHash> index_;
  std::function<void()> audit_hook_;
};

}  // namespace ukern

#endif  // UKVM_SRC_UKERNEL_MAPDB_H_
