// Service health machinery shared by both stacks: a circuit breaker for
// graceful degradation inside a service, and a watchdog that probes
// services from the outside and restarts the ones that stop answering.
//
// The paper's availability argument (§3, E5/E14) is that user-level
// services and driver domains can fail and be restarted without taking the
// system down. The chaos soak (E15) stresses that claim: under persistent
// device faults a service should degrade to error replies — never wedge —
// and a supervisor should be able to detect an unresponsive service via its
// ordinary request path and drive the stack's existing restart procedure.

#ifndef UKVM_SRC_STACKS_WATCHDOG_H_
#define UKVM_SRC_STACKS_WATCHDOG_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/error.h"
#include "src/hw/machine.h"

namespace ustack {

// --- Graceful degradation --------------------------------------------------

struct DegradePolicy {
  uint32_t fail_threshold = 0;   // consecutive device failures to trip (0 = off)
  uint64_t cooldown_cycles = 0;  // how long the breaker stays open once tripped
  bool enabled() const { return fail_threshold > 0; }
};

// Per-service circuit breaker. Services record the outcome of each
// device-path operation; after `fail_threshold` consecutive failures the
// breaker opens and the service fast-fails requests (an error reply in a
// bounded number of cycles) instead of burning its retry budget against a
// device that is clearly sick. After `cooldown_cycles` the breaker
// half-closes: the next request goes to the device, and one more failure
// re-opens it.
class ServiceHealth {
 public:
  ServiceHealth(hwsim::Machine& machine, std::string_view name)
      : machine_(machine), name_(name) {}

  void SetPolicy(const DegradePolicy& policy) { policy_ = policy; }
  const DegradePolicy& policy() const { return policy_; }

  // True when the caller should skip the device and reply kRetryExhausted.
  // Counts the degraded reply.
  bool ShouldFastFail();

  void RecordSuccess();
  void RecordFailure();

  bool open() const { return open_; }
  uint64_t degraded_replies() const { return degraded_; }
  uint64_t trips() const { return trips_; }
  const std::string& name() const { return name_; }

 private:
  hwsim::Machine& machine_;
  std::string name_;
  DegradePolicy policy_;
  uint32_t consecutive_failures_ = 0;
  bool open_ = false;
  uint64_t open_until_ = 0;
  uint64_t degraded_ = 0;
  uint64_t trips_ = 0;
};

// --- Watchdog --------------------------------------------------------------

// Probes services through their normal request paths (a real IPC or ring
// round-trip, never private back doors) and drives the stack's existing
// restart procedure when a service stops answering. Restarts are bounded
// by a budget and spaced by exponential backoff so a service that is sick
// because the hardware is sick doesn't get restarted in a tight loop.
class Watchdog {
 public:
  struct Policy {
    uint64_t probe_interval = 0;          // cycles between probes of one service
    uint32_t fail_threshold = 2;          // consecutive probe failures before restart
    uint32_t restart_budget = 4;          // lifetime restarts per service
    uint64_t restart_backoff_cycles = 0;  // hold-off after restart k is backoff << (k-1)
  };

  // A probe issues one request via the service's public interface and
  // returns its status; kNone means the service answered correctly.
  using Probe = std::function<ukvm::Err()>;
  using RestartFn = std::function<void()>;

  struct ServiceStats {
    std::string name;
    uint64_t probes = 0;
    uint64_t probe_failures = 0;
    uint32_t restarts = 0;
    uint64_t recovery_cycles = 0;  // time from first failed probe back to healthy
    bool budget_exhausted = false;
    bool healthy = true;
  };

  Watchdog(hwsim::Machine& machine, Policy policy) : machine_(machine), policy_(policy) {}

  void Watch(std::string name, Probe probe, RestartFn restart);

  // Runs every due probe once; call periodically from the workload loop.
  void Poll();

  const std::vector<ServiceStats>& stats() const;
  uint64_t restarts_total() const;

 private:
  struct Service {
    ServiceStats stats;
    Probe probe;
    RestartFn restart;
    uint32_t consecutive_failures = 0;
    uint64_t next_probe_at = 0;
    uint64_t failing_since = 0;  // Now() of the first failure in a streak; 0 = healthy
  };

  void RunProbe(Service& svc);

  hwsim::Machine& machine_;
  Policy policy_;
  std::vector<Service> services_;
  uint32_t trace_restart_name_ = 0;
  mutable std::vector<ServiceStats> stats_snapshot_;
};

}  // namespace ustack

#endif  // UKVM_SRC_STACKS_WATCHDOG_H_
