#include "src/stacks/ukernel_stack.h"

#include <cassert>

#include "src/core/log.h"
#include "src/os/ports/protocols.h"

namespace ustack {

using ukvm::Err;

namespace {

// Guest-visible VA layout.
constexpr hwsim::Vaddr kAppWindowVa = 0x2000'0000ull;
constexpr hwsim::Vaddr kSrvWindowVa = 0x4000'0000ull;
constexpr hwsim::Vaddr kRxWindowVa = 0x4100'0000ull;
constexpr uint32_t kAppWindowPages = 16;
constexpr uint32_t kSrvWindowPages = 16;
constexpr uint32_t kRxWindowPages = 4;
// The watchdog's monitor task (its own protection domain, like any client).
constexpr hwsim::Vaddr kMonitorWindowVa = 0x6000'0000ull;
constexpr uint32_t kMonitorWindowPages = 4;
constexpr uint32_t kProbePayloadBytes = 32;

}  // namespace

UkernelStack::UkernelStack(Config config)
    : machine_(config.platform, config.memory_bytes, config.num_vcpus),
      nic_(machine_, ukvm::IrqLine(kNicIrq), config.nic),
      disk_(machine_, ukvm::IrqLine(kDiskIrq), config.disk) {
  if (config.trace.enabled) {
    machine_.EnableTracing(config.trace);
  }
  if (config.request_trace.enabled) {
    machine_.EnableRequestTracing(config.request_trace);
  }
  slice_blocks_ = config.slice_blocks;
  disk_retry_ = config.disk_retry;
  nic_retry_ = config.nic_retry;
  degrade_ = config.degrade;
  if (config.faults.any_enabled()) {
    ArmFaults(config.faults);
  }
  kernel_ = std::make_unique<ukern::Kernel>(machine_);
  kernel_->SetIpcFastpath(config.ipc_fastpath);
  kernel_->SetFastpathFeatures(config.fastpath_features);
  machine_.tracer().RegisterDomain(kernel_->kernel_domain(), "l4-kernel");
  sigma0_ = std::make_unique<Sigma0>(machine_, *kernel_);
  machine_.tracer().RegisterDomain(sigma0_->task(), "sigma0");
  net_server_ = std::make_unique<UkNetServer>(machine_, *kernel_, *sigma0_, nic_);
  machine_.tracer().RegisterDomain(net_server_->task(), "net-server");
  block_server_ =
      std::make_unique<UkBlockServer>(machine_, *kernel_, *sigma0_, disk_, config.slice_blocks);
  machine_.tracer().RegisterDomain(block_server_->task(), "block-server");
  crash_recovery_ = config.crash_recovery;
  if (crash_recovery_) {
    block_server_->SetRecoveryLog(&blk_recovery_log_);
  }
  ApplyServerPolicies();
  for (uint32_t i = 0; i < config.num_guests; ++i) {
    guests_.push_back(MakeGuest("guest" + std::to_string(i)));
  }
  machine_.cpu().SetInterruptsEnabled(true);
  if (config.audit || config.race_detect) {
    ucheck::Auditor::Options opts;
    opts.race_detect = config.race_detect;
    auditor_ = std::make_unique<ucheck::Auditor>(machine_, opts);
    auditor_->AttachUkernel(*kernel_);
  }
}

void UkernelStack::ArmFaults(const hwsim::FaultPlan& plan) {
  fault_injector_ = std::make_unique<hwsim::FaultInjector>(machine_, plan);
  nic_.SetFaultInjector(fault_injector_.get());
  disk_.SetFaultInjector(fault_injector_.get());
}

void UkernelStack::ApplyServerPolicies() {
  net_server_->SetRetryPolicy(nic_retry_);
  net_server_->SetDegradePolicy(degrade_);
  block_server_->SetRetryPolicy(disk_retry_);
  block_server_->SetDegradePolicy(degrade_);
}

std::unique_ptr<UkernelStack::Guest> UkernelStack::MakeGuest(const std::string& name) {
  auto g = std::make_unique<Guest>();
  const uint32_t page = static_cast<uint32_t>(machine_.memory().page_size());

  auto os_task = kernel_->CreateTask(sigma0_->thread());
  auto app_task = kernel_->CreateTask(sigma0_->thread());
  assert(os_task.ok() && app_task.ok());
  g->os_task = *os_task;
  g->app_task = *app_task;
  machine_.tracer().RegisterDomain(g->os_task, name + "-os");
  machine_.tracer().RegisterDomain(g->app_task, name + "-app");

  // Placeholder handlers; the port installs the real ones.
  auto os_thread = kernel_->CreateThread(g->os_task, 200, nullptr);
  auto rx_thread = kernel_->CreateThread(g->os_task, 210, nullptr);
  auto app_thread = kernel_->CreateThread(g->app_task, 100, nullptr);
  assert(os_thread.ok() && rx_thread.ok() && app_thread.ok());
  g->os_thread = *os_thread;
  g->net_rx_thread = *rx_thread;
  g->app_thread = *app_thread;

  // Transfer windows, obtained from sigma0 via real IPC.
  Err err = sigma0_->RequestPages(g->os_thread, kSrvWindowVa, kSrvWindowPages, true);
  assert(err == Err::kNone);
  err = sigma0_->RequestPages(g->net_rx_thread, kRxWindowVa, kRxWindowPages, true);
  assert(err == Err::kNone);
  err = sigma0_->RequestPages(g->app_thread, kAppWindowVa, kAppWindowPages, true);
  assert(err == Err::kNone);

  err = kernel_->SetRecvBuffer(g->os_thread, kSrvWindowVa, kSrvWindowPages * page);
  assert(err == Err::kNone);
  err = kernel_->SetRecvBuffer(g->net_rx_thread, kRxWindowVa, kRxWindowPages * page);
  assert(err == Err::kNone);
  err = kernel_->SetRecvBuffer(g->app_thread, kAppWindowVa, kAppWindowPages * page);
  assert(err == Err::kNone);
  (void)err;

  minios::UkernelPortWiring wiring;
  wiring.kernel = kernel_.get();
  wiring.app_thread = g->app_thread;
  wiring.os_thread = g->os_thread;
  wiring.net_rx_thread = g->net_rx_thread;
  wiring.app_window = kAppWindowVa;
  wiring.app_window_len = kAppWindowPages * page;
  wiring.srv_window = kSrvWindowVa;
  wiring.srv_window_len = kSrvWindowPages * page;
  wiring.blk_server = block_server_->thread();
  wiring.net_server = net_server_->thread();

  g->port = std::make_unique<minios::UkernelPort>(machine_, wiring);
  if (crash_recovery_) {
    g->port->SetCrashRecovery(true);
    g->xenbus = std::make_unique<XenbusConn>(machine_, "uk-blk", g->os_task);
    g->xenbus->OnConnected();
  }
  g->os = std::make_unique<minios::Os>(machine_, *g->port, name);
  ukvm::ProfScope boot_frame(machine_.tracer(),
                             machine_.tracer().profiler().InternFrame("guest.boot"));
  const Err boot = g->os->Boot(/*format_disk=*/true);
  g->booted = boot == Err::kNone;
  if (!g->booted) {
    UKVM_WARN("ukernel stack: guest %s failed to boot: %s", name.c_str(), ukvm::ErrName(boot));
  }
  return g;
}

Err UkernelStack::RunAsApp(size_t i, const std::function<void()>& fn) {
  Guest& g = guest(i);
  ukvm::ProfScope app_frame(machine_.tracer(),
                            machine_.tracer().profiler().InternFrame("guest.app"));
  UKVM_TRY(kernel_->ActivateThread(g.app_thread));
  fn();
  return Err::kNone;
}

void UkernelStack::RouteWirePort(uint16_t wire_port, size_t i) {
  wire_routes_[wire_port] = i;
  net_server_->RoutePort(wire_port, guest(i).net_rx_thread);
}

Err UkernelStack::KillBlockServer() {
  const Err err = kernel_->DestroyTask(block_server_->task());
  if (crash_recovery_ && err == Err::kNone) {
    // Quiesce at the kill edge, not just at restart: the dead server's DMA
    // sources (its staging/window frames) were freed with its task, so an
    // in-flight request completing now would move garbage. Cancelled ops
    // stay journaled on the client and replay after the restart.
    machine_.counters().AddNamed("recovery.disk.dma_cancelled", disk_.CancelPending());
    // The kill edge: the detection segment in each guest's recovery clock
    // starts here, not at the watchdog's (later) failed probe.
    for (auto& g : guests_) {
      if (g->xenbus != nullptr) {
        g->xenbus->MarkFailure(machine_.Now());
      }
    }
  }
  return err;
}

Err UkernelStack::KillNetServer() { return kernel_->DestroyTask(net_server_->task()); }

Err UkernelStack::RestartBlockServer() {
  if (crash_recovery_) {
    for (auto& g : guests_) {
      if (g->xenbus != nullptr) {
        g->xenbus->OnDetected();
      }
    }
    // Quiesce: the dead server's in-flight DMA must not complete into
    // frames the replacement server is about to reuse as staging.
    machine_.counters().AddNamed("recovery.disk.dma_cancelled", disk_.CancelPending());
  }
  // Carry the slice table over: a fresh server must not hand client A's
  // slice to whichever client happens to speak first.
  auto slices = block_server_->slices();
  const uint64_t next_slice = block_server_->next_slice();
  block_server_ =
      std::make_unique<UkBlockServer>(machine_, *kernel_, *sigma0_, disk_, slice_blocks_);
  machine_.tracer().RegisterDomain(block_server_->task(), "block-server-2");
  block_server_->RestoreSlices(std::move(slices), next_slice);
  block_server_->SetRetryPolicy(disk_retry_);
  block_server_->SetDegradePolicy(degrade_);
  if (crash_recovery_) {
    block_server_->SetRecoveryLog(&blk_recovery_log_);
    for (auto& g : guests_) {
      if (g->xenbus != nullptr) {
        g->xenbus->OnReclaimed();
      }
    }
  }
  for (auto& g : guests_) {
    if (g->port != nullptr) {
      g->port->SetBlockServer(block_server_->thread());
      if (g->xenbus != nullptr) {
        g->xenbus->OnReconnected();
        g->xenbus->OnReplayed(g->port->ReplayBlockJournal());
      }
    }
  }
  return Err::kNone;
}

Err UkernelStack::RestartNetServer() {
  net_server_ = std::make_unique<UkNetServer>(machine_, *kernel_, *sigma0_, nic_);
  machine_.tracer().RegisterDomain(net_server_->task(), "net-server-2");
  net_server_->SetRetryPolicy(nic_retry_);
  net_server_->SetDegradePolicy(degrade_);
  for (const auto& [wire_port, guest_idx] : wire_routes_) {
    if (guest_idx < guests_.size()) {
      net_server_->RoutePort(wire_port, guest(guest_idx).net_rx_thread);
    }
  }
  for (auto& g : guests_) {
    if (g->port != nullptr && kernel_->ThreadAlive(g->net_rx_thread)) {
      g->port->SetNetServer(net_server_->thread());
    }
  }
  return Err::kNone;
}

// --- Health probes ---------------------------------------------------------------

Err UkernelStack::EnsureMonitor() {
  if (monitor_thread_.valid() && kernel_->ThreadAlive(monitor_thread_)) {
    return Err::kNone;
  }
  auto task = kernel_->CreateTask(sigma0_->thread());
  if (!task.ok()) {
    return task.error();
  }
  monitor_task_ = *task;
  auto thread = kernel_->CreateThread(monitor_task_, 120, nullptr);
  if (!thread.ok()) {
    return thread.error();
  }
  monitor_thread_ = *thread;
  UKVM_TRY(sigma0_->RequestPages(monitor_thread_, kMonitorWindowVa, kMonitorWindowPages,
                                 /*writable=*/true));
  return kernel_->SetRecvBuffer(
      monitor_thread_, kMonitorWindowVa,
      kMonitorWindowPages * static_cast<uint32_t>(machine_.memory().page_size()));
}

namespace {

// Both servers reply in the OS syscall convention: regs[0] < 0 is -Err.
Err ProbeReplyStatus(const ukern::IpcMessage& reply) {
  if (reply.status != Err::kNone) {
    return reply.status;
  }
  const auto ret = static_cast<int64_t>(reply.regs[0]);
  return ret < 0 ? minios::ErrOf(static_cast<minios::SyscallRet>(ret)) : Err::kNone;
}

}  // namespace

Err UkernelStack::ProbeBlockService() {
  UKVM_TRY(EnsureMonitor());
  // One real 1-block read of the monitor's own slice, via the ordinary IPC
  // request path — exactly what a client would send.
  ukern::IpcMessage msg = ukern::IpcMessage::Short(minios::kBlkReadLabel, 0, 1);
  return ProbeReplyStatus(kernel_->Call(monitor_thread_, block_server_->thread(), msg));
}

Err UkernelStack::ProbeNetService() {
  UKVM_TRY(EnsureMonitor());
  // One real transmit through the send path (the frame goes out on the
  // wire; nothing routes back, which is fine for a liveness probe).
  ukern::IpcMessage msg = ukern::IpcMessage::Short(minios::kNetSendLabel);
  msg.has_string = true;
  msg.string = ukern::StringItem{kMonitorWindowVa, kProbePayloadBytes};
  return ProbeReplyStatus(kernel_->Call(monitor_thread_, net_server_->thread(), msg));
}

Err UkernelStack::KillGuest(size_t i) {
  Guest& g = guest(i);
  UKVM_TRY(kernel_->DestroyTask(g.app_task));
  return kernel_->DestroyTask(g.os_task);
}

}  // namespace ustack
