// Per-configuration TCB component inventories (experiments E7/E8).
//
// Line counts are taken from this repository's actual implementation files
// at bench time, so the minimality comparison is grounded in the code that
// really runs in each configuration.

#ifndef UKVM_SRC_STACKS_TCB_LISTS_H_
#define UKVM_SRC_STACKS_TCB_LISTS_H_

#include <vector>

#include "src/core/tcb.h"

namespace ustack {

// The microkernel configuration: privileged kernel + user-level servers.
std::vector<ukvm::TcbComponent> UkernelTcbComponents();

// The VMM configuration: hypervisor + Dom0 (legacy OS + drivers + backends).
std::vector<ukvm::TcbComponent> VmmTcbComponents(bool parallax_storage);

// The native baseline: the whole OS is privileged.
std::vector<ukvm::TcbComponent> NativeTcbComponents();

}  // namespace ustack

#endif  // UKVM_SRC_STACKS_TCB_LISTS_H_
