#include "src/stacks/native_stack.h"

#include <cassert>

namespace ustack {

NativeStack::NativeStack(Config config)
    : machine_(config.platform, config.memory_bytes, config.num_vcpus),
      nic_(machine_, ukvm::IrqLine(kNicIrq), config.nic),
      disk_(machine_, ukvm::IrqLine(kDiskIrq), config.disk) {
  if (config.trace.enabled) {
    machine_.EnableTracing(config.trace);
  }
  if (config.request_trace.enabled) {
    machine_.EnableRequestTracing(config.request_trace);
  }
  machine_.tracer().RegisterDomain(kOsDomain, "native-os");
  // Frames for NIC staging plus one disk staging frame.
  std::vector<hwsim::Frame> pool;
  for (int i = 0; i < 33; ++i) {
    auto frame = machine_.memory().AllocFrame(kOsDomain);
    assert(frame.ok());
    pool.push_back(*frame);
  }
  port_ = std::make_unique<minios::NativePort>(machine_, nic_, disk_, kOsDomain,
                                               std::move(pool));
  os_ = std::make_unique<minios::Os>(machine_, *port_, "native-os");
  ukvm::ProfScope boot_frame(machine_.tracer(),
                             machine_.tracer().profiler().InternFrame("guest.boot"));
  const ukvm::Err err = os_->Boot(/*format_disk=*/true);
  assert(err == ukvm::Err::kNone);
  (void)err;
  if (config.audit || config.race_detect) {
    ucheck::Auditor::Options opts;
    opts.race_detect = config.race_detect;
    auditor_ = std::make_unique<ucheck::Auditor>(machine_, opts);
  }
}

}  // namespace ustack
