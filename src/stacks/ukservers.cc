#include "src/stacks/ukservers.h"

#include <cassert>
#include <memory>
#include <utility>

#include "src/core/log.h"
#include "src/os/kernel.h"
#include "src/os/ports/protocols.h"

namespace ustack {

using ukern::IpcMessage;
using ukern::MapItem;
using ukvm::DomainId;
using ukvm::Err;
using ukvm::Result;
using ukvm::ThreadId;

namespace {

// Server-internal VA layout.
constexpr hwsim::Vaddr kDriverPoolVa = 0x0100'0000ull;
constexpr hwsim::Vaddr kStagingVa = 0x0180'0000ull;
constexpr hwsim::Vaddr kWindowVa = 0x0200'0000ull;
constexpr uint32_t kDriverPoolPages = 64;
constexpr uint32_t kWindowPages = 16;

}  // namespace

// --- Sigma0 ----------------------------------------------------------------------

Sigma0::Sigma0(hwsim::Machine& machine, ukern::Kernel& kernel)
    : machine_(machine), kernel_(kernel) {
  auto task = kernel_.CreateTask(ukvm::ThreadId::Invalid());
  assert(task.ok());
  task_ = *task;
  auto thread = kernel_.CreateThread(task_, 255, [this](ThreadId sender, IpcMessage msg) {
    return Handle(sender, std::move(msg));
  });
  assert(thread.ok());
  thread_ = *thread;
}

Result<hwsim::Vaddr> Sigma0::ProvisionPage() {
  auto frame = machine_.memory().AllocFrame(task_);
  if (!frame.ok()) {
    return frame.error();
  }
  // Sigma0 maps physical memory idempotently (va == pa), the classic L4
  // arrangement.
  const hwsim::Vaddr va = machine_.memory().FrameBase(*frame);
  const Err err = kernel_.RootMapPhys(task_, va, *frame, /*writable=*/true);
  if (err != Err::kNone) {
    return err;
  }
  machine_.Charge(machine_.costs().kernel_op);  // allocator bookkeeping
  return va;
}

IpcMessage Sigma0::Handle(ThreadId sender, IpcMessage msg) {
  if (msg.regs[0] == kSigma0MapLabel) {
    const hwsim::Vaddr va = msg.regs[1];
    const auto pages = static_cast<uint32_t>(msg.regs[2]);
    const bool writable = msg.regs[3] != 0;
    if (pages == 0 || pages > 1024) {
      return IpcMessage::Error(Err::kInvalidArgument);
    }
    IpcMessage reply;
    reply.reg_count = 1;
    for (uint32_t i = 0; i < pages; ++i) {
      auto src = ProvisionPage();
      if (!src.ok()) {
        return IpcMessage::Error(src.error());
      }
      reply.map_items.push_back(MapItem{*src, va + uint64_t{i} * machine_.memory().page_size(),
                                        1, writable, /*grant=*/false});
      ++pages_granted_;
    }
    return reply;
  }
  if (msg.regs[0] == ukern::Kernel::kPageFaultLabel) {
    // Default pager: back the faulting page with a fresh zero page.
    const hwsim::Vaddr fault_va = msg.regs[1];
    auto task = kernel_.TaskOf(sender);
    if (!task.ok()) {
      return IpcMessage::Error(Err::kBadHandle);
    }
    auto src = ProvisionPage();
    if (!src.ok()) {
      return IpcMessage::Error(src.error());
    }
    const uint64_t page = machine_.memory().page_size();
    IpcMessage reply;
    reply.reg_count = 1;
    reply.map_items.push_back(MapItem{*src, fault_va & ~(page - 1), 1, /*writable=*/true,
                                      /*grant=*/false});
    ++pages_granted_;
    return reply;
  }
  return IpcMessage::Error(Err::kNotSupported);
}

Err Sigma0::RequestPages(ThreadId requester, hwsim::Vaddr va, uint32_t pages, bool writable) {
  IpcMessage msg = IpcMessage::Short(kSigma0MapLabel, va, pages, writable ? 1 : 0);
  IpcMessage reply = kernel_.Call(requester, thread_, msg);
  return reply.status;
}

// --- UkNetServer -----------------------------------------------------------------

UkNetServer::UkNetServer(hwsim::Machine& machine, ukern::Kernel& kernel, Sigma0& sigma0,
                         hwsim::Nic& nic)
    : machine_(machine), kernel_(kernel), health_(machine, "uk.net") {
  auto task = kernel_.CreateTask(sigma0.thread());
  assert(task.ok());
  task_ = *task;
  auto thread = kernel_.CreateThread(task_, 230, [this](ThreadId sender, IpcMessage msg) {
    return Handle(sender, std::move(msg));
  });
  assert(thread.ok());
  thread_ = *thread;

  // DMA-able buffer pool, obtained from sigma0 like any other task would.
  Err err = sigma0.RequestPages(thread_, kDriverPoolVa, kDriverPoolPages, /*writable=*/true);
  assert(err == Err::kNone);
  // Receive window for inbound string items (kNetSendLabel payloads).
  err = sigma0.RequestPages(thread_, kWindowVa, kWindowPages, /*writable=*/true);
  assert(err == Err::kNone);
  (void)err;
  err = kernel_.SetRecvBuffer(thread_, kWindowVa,
                              kWindowPages * static_cast<uint32_t>(machine_.memory().page_size()));
  assert(err == Err::kNone);

  // Discover the machine frames behind the pool (the driver needs them; a
  // real server would learn them from a dataspace/DMA API).
  std::vector<hwsim::Frame> pool;
  ukern::Task* t = kernel_.FindTask(task_);
  for (uint32_t i = 0; i < kDriverPoolPages; ++i) {
    const hwsim::Vaddr va = kDriverPoolVa + uint64_t{i} * machine_.memory().page_size();
    const hwsim::Pte* pte = t->space.Walk(va);
    assert(pte != nullptr && pte->present);
    pool.push_back(pte->frame);
    frame_to_va_[pte->frame] = va;
  }
  driver_ = std::make_unique<udrv::NicDriver>(machine_, nic, std::move(pool));
  driver_->SetRxCallback([this](hwsim::Frame frame, uint32_t len) { OnPacket(frame, len); });
  err = kernel_.AssociateIrq(nic.line(), thread_);
  assert(err == Err::kNone);
}

hwsim::Vaddr UkNetServer::PoolVaOf(hwsim::Frame frame) const {
  auto it = frame_to_va_.find(frame);
  return it == frame_to_va_.end() ? 0 : it->second;
}

void UkNetServer::RoutePort(uint16_t wire_port, ThreadId client_rx) {
  wire_routes_[wire_port] = client_rx;
}

void UkNetServer::OnPacket(hwsim::Frame frame, uint32_t len) {
  // Demultiplex to a client rx thread and forward the packet as a one-way
  // IPC with a string item sourced directly from the driver buffer
  // (single-copy receive path).
  ThreadId target = ukvm::ThreadId::Invalid();
  std::vector<uint8_t> header(std::min<uint32_t>(len, 6));
  machine_.memory().Read(machine_.memory().FrameBase(frame), header);
  if (header.size() >= 2) {
    const auto dst_port = static_cast<uint16_t>((header[0] << 8) | header[1]);
    auto it = wire_routes_.find(dst_port);
    if (it != wire_routes_.end()) {
      target = it->second;
    }
  }
  if (!target.valid() && !clients_.empty()) {
    target = clients_.front();
  }
  if (!target.valid() || !kernel_.ThreadAlive(target)) {
    ++rx_dropped_;
    return;
  }
  const hwsim::Vaddr src_va = PoolVaOf(frame);
  if (src_va == 0) {
    ++rx_dropped_;
    return;
  }
  IpcMessage msg = IpcMessage::Short(minios::kNetRxLabel);
  msg.has_string = true;
  msg.string = ukern::StringItem{src_va, len};
  if (kernel_.Send(thread_, target, msg) == Err::kNone) {
    ++rx_forwarded_;
  } else {
    ++rx_dropped_;
  }
}

IpcMessage UkNetServer::Handle(ThreadId sender, IpcMessage msg) {
  switch (msg.regs[0]) {
    case ukern::Kernel::kIrqLabel: {
      driver_->OnInterrupt();
      return IpcMessage{};
    }
    case minios::kNetAttachLabel: {
      const ThreadId rx{static_cast<uint32_t>(msg.regs[1])};
      clients_.push_back(rx);
      IpcMessage reply;
      reply.regs[0] = 0;
      reply.reg_count = 1;
      return reply;
    }
    case minios::kNetSendLabel: {
      if (health_.ShouldFastFail()) {
        return IpcMessage::Error(Err::kRetryExhausted);
      }
      const Err err = driver_->SendCopyWithRetry(msg.string_data);
      if (err == Err::kNone) {
        health_.RecordSuccess();
      } else if (err != Err::kInvalidArgument) {
        health_.RecordFailure();  // device-path failure, not a bad argument
      }
      IpcMessage reply;
      reply.regs[0] = static_cast<uint64_t>(minios::RetOf(err));
      if (err == Err::kNone) {
        reply.regs[0] = 0;
      }
      reply.reg_count = 1;
      return reply;
    }
    default:
      (void)sender;
      return IpcMessage::Error(Err::kNotSupported);
  }
}

// --- UkBlockServer ----------------------------------------------------------------

UkBlockServer::UkBlockServer(hwsim::Machine& machine, ukern::Kernel& kernel, Sigma0& sigma0,
                             hwsim::Disk& disk, uint64_t slice_blocks)
    : machine_(machine), kernel_(kernel), disk_(disk), slice_blocks_(slice_blocks),
      health_(machine, "uk.blk") {
  auto task = kernel_.CreateTask(sigma0.thread());
  assert(task.ok());
  task_ = *task;
  auto thread = kernel_.CreateThread(task_, 220, [this](ThreadId sender, IpcMessage msg) {
    return Handle(sender, std::move(msg));
  });
  assert(thread.ok());
  thread_ = *thread;

  Err err = sigma0.RequestPages(thread_, kStagingVa, 1, /*writable=*/true);
  assert(err == Err::kNone);
  err = sigma0.RequestPages(thread_, kWindowVa, kWindowPages, /*writable=*/true);
  assert(err == Err::kNone);
  err = kernel_.SetRecvBuffer(thread_, kWindowVa,
                              kWindowPages * static_cast<uint32_t>(machine_.memory().page_size()));
  assert(err == Err::kNone);
  (void)err;
  staging_va_ = kStagingVa;
  window_va_ = kWindowVa;
  ukern::Task* t = kernel_.FindTask(task_);
  staging_frame_ = t->space.Walk(staging_va_)->frame;
  driver_ = std::make_unique<udrv::DiskDriver>(machine_, disk);
  err = kernel_.AssociateIrq(disk.line(), thread_);
  assert(err == Err::kNone);
}

Result<uint64_t> UkBlockServer::SliceBaseOf(ThreadId sender) {
  auto task = kernel_.TaskOf(sender);
  if (!task.ok()) {
    return task.error();
  }
  auto it = slices_.find(*task);
  if (it == slices_.end()) {
    const uint64_t max_slices = disk_.config().capacity_blocks / slice_blocks_;
    if (next_slice_ >= max_slices) {
      return Err::kNoMemory;
    }
    it = slices_.emplace(*task, next_slice_++).first;
  }
  return it->second * slice_blocks_;
}

IpcMessage UkBlockServer::Handle(ThreadId sender, IpcMessage msg) {
  switch (msg.regs[0]) {
    case ukern::Kernel::kIrqLabel: {
      driver_->OnInterrupt();
      return IpcMessage{};
    }
    case minios::kBlkInfoLabel: {
      auto base = SliceBaseOf(sender);
      if (!base.ok()) {
        return IpcMessage::Error(base.error());
      }
      IpcMessage reply;
      reply.regs[0] = 0;
      reply.regs[1] = disk_.config().block_size;
      reply.regs[2] = slice_blocks_;
      reply.reg_count = 3;
      return reply;
    }
    case minios::kBlkReadLabel: {
      auto base = SliceBaseOf(sender);
      if (!base.ok()) {
        return IpcMessage::Error(base.error());
      }
      const uint64_t lba = msg.regs[1];
      const auto count = static_cast<uint32_t>(msg.regs[2]);
      if (count == 0 || count > driver_->blocks_per_page() || lba + count > slice_blocks_) {
        return IpcMessage::Error(Err::kOutOfRange);
      }
      if (health_.ShouldFastFail()) {
        return IpcMessage::Error(Err::kRetryExhausted);
      }
      // Shared state: a completion that straggles in after we gave up on
      // it (timeout) must not write through dangling stack references.
      auto state = std::make_shared<std::pair<bool, Err>>(false, Err::kNone);
      Err err = driver_->Read(*base + lba, count, staging_frame_, [state](Err s) {
        state->second = s;
        state->first = true;
      });
      if (err == Err::kNone) {
        // Also wake if this server is destroyed mid-request (E19 crash
        // injection): the completion will never arrive — the supervisor
        // cancels the corpse's in-flight DMA — and the caller must see the
        // death, not a stall.
        err = machine_.WaitUntil([&] { return state->first || !kernel_.TaskAlive(task_); },
                                 2'000'000'000ull);
      }
      if (err == Err::kNone && !state->first) {
        return IpcMessage::Error(Err::kDead);
      }
      const Err status = state->second;
      if (err != Err::kNone || status != Err::kNone) {
        health_.RecordFailure();
        return IpcMessage::Error(err != Err::kNone ? err : status);
      }
      health_.RecordSuccess();
      ++served_;
      IpcMessage reply;
      reply.regs[0] = 0;
      reply.reg_count = 1;
      reply.has_string = true;
      reply.string = ukern::StringItem{staging_va_, count * disk_.config().block_size};
      return reply;
    }
    case minios::kBlkWriteLabel: {
      auto base = SliceBaseOf(sender);
      if (!base.ok()) {
        return IpcMessage::Error(base.error());
      }
      const uint64_t lba = msg.regs[1];
      const auto count = static_cast<uint32_t>(msg.regs[2]);
      if (count == 0 || count > driver_->blocks_per_page() || lba + count > slice_blocks_) {
        return IpcMessage::Error(Err::kOutOfRange);
      }
      if (msg.string_data.size() < uint64_t{count} * disk_.config().block_size) {
        return IpcMessage::Error(Err::kInvalidArgument);
      }
      // Exactly-once (E19): regs[3] carries the client's journal id (0 =
      // legacy client, no recovery). A replayed id that already hit the
      // disk is acknowledged from the ledger without re-touching it.
      const uint64_t req_id = msg.regs[3];
      ukvm::DomainId client = ukvm::DomainId::Invalid();
      if (req_id != 0 && recovery_log_ != nullptr) {
        auto task = kernel_.TaskOf(sender);
        if (task.ok()) {
          client = *task;
          if (recovery_log_->Applied(client, req_id)) {
            recovery_log_->CountSuppressed();
            IpcMessage reply;
            reply.regs[0] = 0;
            reply.reg_count = 1;
            return reply;
          }
        }
      }
      if (health_.ShouldFastFail()) {
        return IpcMessage::Error(Err::kRetryExhausted);
      }
      // The payload landed in our receive window; write straight from its
      // backing frame (zero extra copy).
      ukern::Task* t = kernel_.FindTask(task_);
      const hwsim::Frame window_frame = t->space.Walk(window_va_)->frame;
      auto state = std::make_shared<std::pair<bool, Err>>(false, Err::kNone);
      Err err = driver_->Write(*base + lba, count, window_frame, [state](Err s) {
        state->second = s;
        state->first = true;
      });
      if (err == Err::kNone) {
        // Wake on our own death too (see the read path): the write's fate
        // is then unknown — no MarkApplied — so the client's journal keeps
        // the entry and the replay settles it after the restart.
        err = machine_.WaitUntil([&] { return state->first || !kernel_.TaskAlive(task_); },
                                 2'000'000'000ull);
      }
      if (err == Err::kNone && !state->first) {
        return IpcMessage::Error(Err::kDead);
      }
      const Err status = state->second;
      if (err != Err::kNone || status != Err::kNone) {
        health_.RecordFailure();
        return IpcMessage::Error(err != Err::kNone ? err : status);
      }
      health_.RecordSuccess();
      ++served_;
      if (req_id != 0 && recovery_log_ != nullptr && client.valid()) {
        recovery_log_->MarkApplied(client, req_id);
      }
      IpcMessage reply;
      reply.regs[0] = 0;
      reply.reg_count = 1;
      return reply;
    }
    default:
      return IpcMessage::Error(Err::kNotSupported);
  }
}

}  // namespace ustack
