#include "src/stacks/watchdog.h"

#include <utility>

namespace ustack {

using ukvm::Err;

// --- ServiceHealth ---------------------------------------------------------

bool ServiceHealth::ShouldFastFail() {
  if (!policy_.enabled() || !open_) {
    return false;
  }
  if (machine_.Now() >= open_until_) {
    // Half-close: let the next request through to the device; one more
    // failure re-opens the breaker immediately.
    open_ = false;
    consecutive_failures_ = policy_.fail_threshold - 1;
    return false;
  }
  ++degraded_;
  machine_.counters().AddNamed("svc.degraded_reply");
  return true;
}

void ServiceHealth::RecordSuccess() {
  consecutive_failures_ = 0;
  open_ = false;
}

void ServiceHealth::RecordFailure() {
  ++consecutive_failures_;
  if (policy_.enabled() && !open_ && consecutive_failures_ >= policy_.fail_threshold) {
    open_ = true;
    open_until_ = machine_.Now() + policy_.cooldown_cycles;
    ++trips_;
    machine_.counters().AddNamed("svc.breaker_trip");
  }
}

// --- Watchdog --------------------------------------------------------------

void Watchdog::Watch(std::string name, Probe probe, RestartFn restart) {
  Service svc;
  svc.stats.name = std::move(name);
  svc.probe = std::move(probe);
  svc.restart = std::move(restart);
  svc.next_probe_at = machine_.Now() + policy_.probe_interval;
  services_.push_back(std::move(svc));
}

void Watchdog::Poll() {
  for (Service& svc : services_) {
    if (machine_.Now() >= svc.next_probe_at) {
      RunProbe(svc);
    }
  }
}

void Watchdog::RunProbe(Service& svc) {
  ++svc.stats.probes;
  machine_.counters().AddNamed("watchdog.probe");
  const Err err = svc.probe ? svc.probe() : Err::kNotSupported;
  if (err == Err::kNone) {
    if (svc.failing_since != 0) {
      svc.stats.recovery_cycles += machine_.Now() - svc.failing_since;
      svc.failing_since = 0;
    }
    svc.consecutive_failures = 0;
    svc.stats.healthy = true;
    svc.next_probe_at = machine_.Now() + policy_.probe_interval;
    return;
  }

  ++svc.stats.probe_failures;
  machine_.counters().AddNamed("watchdog.probe_fail");
  if (svc.failing_since == 0) {
    svc.failing_since = machine_.Now();
  }
  ++svc.consecutive_failures;
  svc.stats.healthy = false;
  svc.next_probe_at = machine_.Now() + policy_.probe_interval;

  if (svc.consecutive_failures < policy_.fail_threshold) {
    return;
  }
  if (svc.stats.restarts >= policy_.restart_budget) {
    if (!svc.stats.budget_exhausted) {
      svc.stats.budget_exhausted = true;
      machine_.counters().AddNamed("watchdog.budget_exhausted");
    }
    return;
  }
  // Capture the evidence before restarting: the flight recorder and the
  // slowest-request DAGs still hold the window that led to the trip.
  machine_.PostMortemDump("watchdog-restart");
  svc.restart();
  ++svc.stats.restarts;
  machine_.counters().AddNamed("watchdog.restart");
  if (machine_.tracer().enabled()) {
    if (trace_restart_name_ == 0) {
      trace_restart_name_ = machine_.tracer().InternName("watchdog.restart");
    }
    machine_.tracer().Instant(trace_restart_name_, ukvm::kHardwareDomain, svc.stats.restarts);
  }
  svc.consecutive_failures = 0;
  // Give the restarted service room to come up — and back off harder each
  // time in case the underlying device is still sick.
  uint64_t holdoff = policy_.restart_backoff_cycles;
  if (svc.stats.restarts > 1) {
    holdoff <<= (svc.stats.restarts - 1);
  }
  svc.next_probe_at = machine_.Now() + policy_.probe_interval + holdoff;
}

const std::vector<Watchdog::ServiceStats>& Watchdog::stats() const {
  stats_snapshot_.clear();
  for (const Service& svc : services_) {
    stats_snapshot_.push_back(svc.stats);
  }
  return stats_snapshot_;
}

uint64_t Watchdog::restarts_total() const {
  uint64_t total = 0;
  for (const Service& svc : services_) {
    total += svc.stats.restarts;
  }
  return total;
}

}  // namespace ustack
