// The split block driver: blkfront (guest) and blkback (storage domain).
//
// The backend serves each connected guest a private virtual-disk slice —
// the service model of Parallax [WRF+05], the paper's §3.1 example of a
// VMM-world external service that is structurally identical to a
// microkernel user-level server. Data moves via grant mapping (the backend
// maps the guest's I/O page and DMAs directly into/out of it).

#ifndef UKVM_SRC_STACKS_BLKSPLIT_H_
#define UKVM_SRC_STACKS_BLKSPLIT_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/core/error.h"
#include "src/drivers/disk_driver.h"
#include "src/hw/machine.h"
#include "src/os/arch_if.h"
#include "src/stacks/port_mux.h"
#include "src/stacks/watchdog.h"
#include "src/stacks/xenbus.h"
#include "src/stacks/xenring.h"
#include "src/vmm/grant_table.h"
#include "src/vmm/hypervisor.h"

namespace ustack {

struct BlkReq {
  uint64_t id = 0;
  bool is_write = false;
  uint64_t lba = 0;        // slice-relative
  uint32_t count = 0;      // blocks (must fit in one page)
  uint32_t gref = 0;       // guest I/O page
};
struct BlkResp {
  uint64_t id = 0;
  ukvm::Err status = ukvm::Err::kNone;
};

struct BlkChannel {
  ukvm::DomainId guest;
  std::unique_ptr<XenRing<BlkReq, BlkResp>> ring;
  uint32_t back_port = 0;
  uint32_t front_port = 0;
  uint64_t slice_base = 0;    // first block of this guest's slice
  uint64_t slice_blocks = 0;  // slice capacity
};

class BlkBack {
 public:
  // The backend partitions the disk into `slice_blocks`-sized virtual disks
  // handed to guests in connection order.
  BlkBack(hwsim::Machine& machine, uvmm::Hypervisor& hv, ukvm::DomainId backend,
          udrv::DiskDriver& driver, uint64_t slice_blocks, PortMux& mux);

  BlkChannel* Connect(ukvm::DomainId guest);

  // Persistent-grant mode: each guest I/O page stays mapped across requests
  // ((guest, gref) -> va cache, no unmap on completion). Both ends must
  // agree — enable it on BlkFront too, or EndGrant returns kBusy.
  void SetPersistentGrants(bool on) { persistent_ = on; }

  // Circuit breaker: persistent disk failures make the backend answer ring
  // requests with kRetryExhausted instead of burning retries per request.
  void SetDegradePolicy(const DegradePolicy& policy) { health_.SetPolicy(policy); }
  const ServiceHealth& health() const { return health_; }

  // Attaches the stack-owned exactly-once ledger (nullptr detaches). With a
  // log attached, completed writes are recorded and duplicate ids (journal
  // replays of writes that did land before the crash) are answered success
  // without re-touching the disk.
  void SetRecoveryLog(BlkRecoveryLog* log) { recovery_log_ = log; }

  // Test hook: a wedged backend ignores ring kicks entirely — alive but
  // unresponsive, the failure mode neither the domain-dead upcall nor the
  // supervisor's kill-edge MarkFailure can see. The frontend liveness probe
  // exists to detect exactly this.
  void SetWedged(bool wedged) { wedged_ = wedged; }

  ukvm::DomainId backend() const { return backend_; }
  uint32_t block_size() const;
  uint64_t requests_served() const { return served_; }
  const uvmm::GrantCache& map_cache() const { return map_cache_; }

 private:
  void OnKick(BlkChannel& chan);

  hwsim::Machine& machine_;
  uvmm::Hypervisor& hv_;
  ukvm::DomainId backend_;
  udrv::DiskDriver& driver_;
  uint64_t slice_blocks_;
  PortMux& mux_;
  std::vector<std::unique_ptr<BlkChannel>> channels_;
  ServiceHealth health_;
  BlkRecoveryLog* recovery_log_ = nullptr;  // not owned; outlives the backend
  bool wedged_ = false;
  bool persistent_ = false;
  uvmm::GrantCache map_cache_;  // (guest, gref) -> backend map va
  uint32_t next_persistent_slot_ = 0;
  uint64_t next_slice_ = 0;
  uint64_t map_counter_ = 0;
  uint64_t served_ = 0;
  uint32_t req_dev_name_ = 0;  // E22 "disk.io" device leaf
};

class BlkFront : public minios::BlockDevice {
 public:
  // `pool` are guest pfns used as I/O pages.
  BlkFront(hwsim::Machine& machine, uvmm::Hypervisor& hv, ukvm::DomainId guest,
           std::vector<uvmm::Pfn> pool, PortMux& mux);
  ~BlkFront() override;  // cancels any armed liveness-probe event

  ukvm::Err Connect(BlkBack& back);

  // --- minios::BlockDevice ------------------------------------------------------

  uint32_t block_size() const override { return block_size_; }
  uint64_t capacity_blocks() const override { return capacity_; }
  ukvm::Err Read(uint64_t lba, uint32_t count, std::span<uint8_t> out) override;
  ukvm::Err Write(uint64_t lba, uint32_t count, std::span<const uint8_t> in) override;

  // Persistent-grant mode: an I/O page's access grant is cached per
  // (pfn, direction) and never ended, so steady state issues no grant
  // hypercalls on the request path. Must match the backend's setting.
  void SetPersistentGrants(bool on) { persistent_ = on; }
  const uvmm::GrantCache& gref_cache() const { return gref_cache_; }

  // --- Crash recovery (E19) -------------------------------------------------

  // Off by default: without it every path below is inert and the frontend
  // behaves byte-identically to the pre-E19 driver. With it, writes are
  // journaled until acknowledged and replayed (same ids) after a reconnect.
  void SetCrashRecovery(bool on) { crash_recovery_ = on; }

  // The backend domain died (domain-dead upcall or supervisor decision):
  // drop the stale channel so in-flight waits wake with kDead. Journaled
  // writes are retained for replay.
  void OnBackendDead(ukvm::DomainId dead);

  // Rebuilds the connection against a restarted backend, then replays every
  // journaled (unacknowledged) write with its original id; the backend's
  // recovery log suppresses the ones that landed before the crash.
  ukvm::Err Reconnect(BlkBack& back);

  // --- Frontend-driven liveness probing (E19 follow-up) ---------------------
  //
  // A wedged-but-undead backend answers nothing, so neither the domain-dead
  // upcall nor the supervisor's kill-edge MarkFailure fires. The probe is a
  // zero-block read the backend rejects (kOutOfRange) straight from its kick
  // handler — no grant work, no disk I/O; *any* answer proves liveness. No
  // answer within the deadline marks the failure at probe-issue time and
  // drives the xenbus conn to kClosing, feeding the same recovery.detect
  // histogram as supervisor-side detection.

  // One blocking probe. kNone: backend answered. kTimedOut: no answer within
  // `timeout_cycles` (detection recorded). kDead: backend died mid-probe.
  ukvm::Err ProbeBackend(uint64_t timeout_cycles);

  // Issues a non-blocking probe every `interval_cycles`, each judged against
  // a `timeout_cycles` deadline on a later tick. Survives reconnects; probes
  // are only issued while the conn is kConnected.
  void StartLivenessProbe(uint64_t interval_cycles, uint64_t timeout_cycles);
  void StopLivenessProbe();
  uint64_t probe_detections() const { return probe_detections_; }

  XenbusConn& xenbus() { return xenbus_; }
  uint64_t writes_acked_ok() const { return writes_acked_ok_; }
  size_t journal_depth() const { return journal_.size(); }

 private:
  struct JournalEntry {
    uint64_t lba = 0;      // slice-relative
    uint32_t count = 0;    // blocks, fits one page
    std::vector<uint8_t> payload;
    ukvm::ReqTraceRef trace;  // E22: the write request, live until resolved
  };

  ukvm::Err DoRequest(bool is_write, uint64_t lba, uint32_t count, std::span<uint8_t> out,
                      std::span<const uint8_t> in);
  // Re-issues one journaled write with its original id and waits for the
  // acknowledgement. `answered` reports whether the backend replied at all
  // (any status resolves the entry); kDead means it died again mid-replay.
  ukvm::Err ReplayWrite(uint64_t id, const JournalEntry& entry, bool& answered);
  void OnResponse();
  void ProbeTick();

  hwsim::Machine& machine_;
  uvmm::Hypervisor& hv_;
  ukvm::DomainId guest_;
  ukvm::DomainId backend_ = ukvm::DomainId::Invalid();
  PortMux& mux_;
  BlkChannel* chan_ = nullptr;
  std::deque<uvmm::Pfn> free_pfns_;
  bool persistent_ = false;
  uvmm::GrantCache gref_cache_;  // pfn*2+writable -> gref
  uint32_t block_size_ = 0;
  uint64_t capacity_ = 0;
  uint64_t next_id_ = 1;  // monotonic across reconnects — replay reuses ids
  uint32_t hist_blk_e2e_ = 0;  // "blk.e2e": request submit -> completion cycles
  // E22 interned request-trace names.
  uint32_t req_write_name_ = 0;          // "blk.write" origin
  uint32_t req_read_name_ = 0;           // "blk.read" origin
  uint32_t req_rec_detect_name_ = 0;     // "recovery.detect" leaf
  uint32_t req_rec_reconnect_name_ = 0;  // "recovery.reconnect" leaf
  uint32_t req_rec_replay_name_ = 0;     // "recovery.replay" leaf
  std::unordered_map<uint64_t, ukvm::Err> completed_;  // id -> status
  bool crash_recovery_ = false;
  XenbusConn xenbus_;
  std::map<uint64_t, JournalEntry> journal_;  // unacked writes, replayed in id order
  uint64_t writes_acked_ok_ = 0;  // write chunks whose final status was kNone

  // Periodic liveness-probe state (StartLivenessProbe).
  uint64_t probe_interval_ = 0;   // 0 = probing stopped
  uint64_t probe_timeout_ = 0;
  bool probe_inflight_ = false;
  uint64_t probe_id_ = 0;
  uint64_t probe_sent_at_ = 0;
  uint64_t probe_deadline_ = 0;
  hwsim::Machine::EventId probe_event_ = 0;
  bool probe_event_armed_ = false;
  uint64_t probe_detections_ = 0;
};

}  // namespace ustack

#endif  // UKVM_SRC_STACKS_BLKSPLIT_H_
