#include "src/stacks/netsplit.h"

#include <algorithm>
#include <cassert>

#include "src/core/log.h"
#include "src/os/netstack.h"

namespace ustack {

using ukvm::DomainId;
using ukvm::Err;

const char* RxModeName(RxMode mode) {
  return mode == RxMode::kPageFlip ? "page-flip" : "grant-copy";
}

namespace {

// Scratch VA region in the backend where granted tx pages are mapped.
constexpr hwsim::Vaddr kBackendMapBase = 0xE000'0000ull;
constexpr uint32_t kBackendMapSlots = 64;
constexpr size_t kRingCapacity = 256;

// Reports one access to a grant-shared payload frame to the race sink, if
// any. Keying by (frame, current owner) gives a recycled or flipped frame a
// fresh shadow cell — ownership transfer is its own ordering.
void RaceFrameAccess(hwsim::Machine& machine, DomainId ctx, hwsim::Frame frame, bool write,
                     const char* what) {
  hwsim::RaceSink* rs = machine.race_sink();
  if (rs == nullptr || !ctx.valid()) {
    return;
  }
  const DomainId owner = machine.memory().OwnerOf(frame);
  const uint64_t key = hwsim::RaceEdgeKey(hwsim::RaceEdgeKind::kFrame, frame,
                                          owner.valid() ? owner.value() : 0);
  if (write) {
    rs->SharedWrite(ctx, key, 0, what);
  } else {
    rs->SharedRead(ctx, key, 0, what);
  }
}

}  // namespace

// --- NetBack ---------------------------------------------------------------------

NetBack::NetBack(hwsim::Machine& machine, uvmm::Hypervisor& hv, DomainId backend,
                 udrv::NicDriver& driver, RxMode mode, PortMux& mux)
    : machine_(machine), hv_(hv), backend_(backend), driver_(driver), mode_(mode), mux_(mux),
      health_(machine, "vmm.net") {
  hist_rx_backlog_ = machine_.tracer().InternHistogram("net.rx.backlog");
  req_rx_name_ = machine_.reqtrace().InternName("net.rx");
  req_flush_name_ = machine_.reqtrace().InternName("net.rx.flush");
  req_dev_name_ = machine_.reqtrace().InternName("nic.send");
}

NetChannel* NetBack::Connect(DomainId guest) {
  auto chan = std::make_unique<NetChannel>();
  chan->guest = guest;
  chan->tx_ring = std::make_unique<XenRing<NetTxReq, NetTxResp>>(machine_, kRingCapacity);
  chan->rx_ring = std::make_unique<XenRing<NetRxReq, NetRxResp>>(machine_, kRingCapacity);
  auto tx_port = hv_.HcEvtchnAllocUnbound(backend_, guest);
  auto rx_port = hv_.HcEvtchnAllocUnbound(backend_, guest);
  if (!tx_port.ok() || !rx_port.ok()) {
    return nullptr;
  }
  chan->back_tx_port = *tx_port;
  chan->back_rx_port = *rx_port;
  NetChannel* raw = chan.get();
  mux_.Route(raw->back_tx_port, [this, raw] { OnTxKick(*raw); });
  mux_.Route(raw->back_rx_port, [] { /* rx-slot replenish notification */ });
  channels_.push_back(std::move(chan));
  return raw;
}

void NetBack::RoutePort(uint16_t wire_port, DomainId guest) {
  for (auto& chan : channels_) {
    if (chan->guest == guest) {
      wire_routes_[wire_port] = chan.get();
      return;
    }
  }
}

NetChannel* NetBack::ChannelFor(std::span<const uint8_t> packet) {
  minios::ParsedPacket parsed;
  if (minios::ParsePacket(packet, parsed)) {
    auto it = wire_routes_.find(parsed.dst_port);
    if (it != wire_routes_.end()) {
      return it->second;
    }
  }
  return channels_.empty() ? nullptr : channels_.front().get();
}

void NetBack::OnTxKick(NetChannel& chan) {
  bool any = false;
  while (auto req = chan.tx_ring->PopRequest()) {
    // Adopt the guest's tx request for the duration of this service step so
    // the device leaf and the response's ring stash land on its DAG.
    const ukvm::ReqTraceRef req_ref = chan.tx_ring->popped_traces().empty()
                                          ? ukvm::ReqTraceRef{}
                                          : chan.tx_ring->popped_traces()[0];
    ukvm::ReqAdoptScope req_scope(machine_.reqtrace(), req_ref);
    any = true;
    if (health_.ShouldFastFail()) {
      chan.tx_ring->PushResponse(NetTxResp{req->gref, Err::kRetryExhausted});
      continue;
    }
    // Map the guest's granted page and transmit straight out of it
    // (zero-copy TX). Transient mode unmaps after the send; persistent mode
    // keeps the mapping and hits the cache on every reuse of the gref.
    Err err = Err::kNone;
    hwsim::Vaddr map_va = 0;
    if (persistent_) {
      if (auto va = tx_map_cache_.LookupMapping(chan.guest, req->gref)) {
        map_va = *va;
      } else {
        map_va = kBackendMapBase + (kBackendMapSlots + next_persistent_slot_++) *
                                       machine_.memory().page_size();
        err = hv_.HcGrantMap(backend_, chan.guest, req->gref, map_va, /*write=*/false);
        if (err == Err::kNone) {
          tx_map_cache_.InsertMapping(chan.guest, req->gref, map_va);
        }
      }
    } else {
      map_va =
          kBackendMapBase + (tx_packets_ % kBackendMapSlots) * machine_.memory().page_size();
      err = hv_.HcGrantMap(backend_, chan.guest, req->gref, map_va, /*write=*/false);
    }
    if (err == Err::kNone) {
      uvmm::Domain* back_dom = hv_.FindDomain(backend_);
      const hwsim::Pte* pte = back_dom->space.Walk(map_va);
      assert(pte != nullptr && pte->present);
      RaceFrameAccess(machine_, backend_, pte->frame, /*write=*/false, "net.tx.payload");
      const uint64_t dev_t0 = machine_.Now();
      err = driver_.SendFrame(pte->frame, req->len);
      machine_.reqtrace().AddLeaf(req_dev_name_, ukvm::ReqNodeKind::kDevice, backend_, dev_t0,
                                  machine_.Now());
      if (err == Err::kNone) {
        health_.RecordSuccess();
      } else {
        health_.RecordFailure();  // the NIC refused the frame
      }
      if (!persistent_) {
        (void)hv_.HcGrantUnmap(backend_, chan.guest, req->gref, map_va);
      }
    }
    if (err == Err::kNone) {
      ++tx_packets_;
    }
    chan.tx_ring->PushResponse(NetTxResp{req->gref, err});
  }
  if (any) {
    (void)hv_.HcEvtchnSend(backend_, chan.back_tx_port);
  }
}

void NetBack::OnPacketReceived(hwsim::Frame frame, uint32_t len) {
  if (rx_batch_ > 1) {
    // The rx request is born when the wire hands us the packet; it then
    // queues in the staging buffer until the flush delivers it.
    const ukvm::ReqTraceRef trace = machine_.reqtrace().BeginRequest(req_rx_name_, backend_);
    rx_staged_.push_back(StagedRx{frame, len, machine_.Now(), trace});
    if (rx_staged_.size() >= rx_batch_) {
      FlushRx();
    }
    return;
  }
  DeliverOne(frame, len);
}

void NetBack::SetRxBatch(size_t batch) {
  rx_batch_ = batch == 0 ? 1 : batch;
  if (rx_staged_.size() >= rx_batch_) {
    FlushRx();
  }
}

void NetBack::FlushRx() {
  if (rx_staged_.empty()) {
    return;
  }
  std::vector<StagedRx> staged;
  staged.swap(rx_staged_);
  ++rx_flushes_;
  uvmm::Domain* back_dom = hv_.FindDomain(backend_);

  // Partition the burst by destination channel, preserving arrival order.
  // Frames the driver handed us are returned via RepostRx once delivered
  // (flip: the exchanged page; copy/drop: the original).
  std::vector<std::pair<NetChannel*, std::vector<size_t>>> by_chan;
  for (size_t i = 0; i < staged.size(); ++i) {
    auto data = machine_.memory().FrameData(staged[i].frame);
    NetChannel* chan = ChannelFor(data.subspan(0, staged[i].len));
    if (chan == nullptr || !hv_.DomainAlive(chan->guest)) {
      ++rx_dropped_;
      driver_.RepostRx(staged[i].frame);
      machine_.reqtrace().AbandonRequest(staged[i].trace);
      continue;
    }
    auto it = std::find_if(by_chan.begin(), by_chan.end(),
                           [chan](const auto& p) { return p.first == chan; });
    if (it == by_chan.end()) {
      by_chan.push_back({chan, {i}});
    } else {
      it->second.push_back(i);
    }
  }

  for (auto& [chan, idx] : by_chan) {
    auto reqs = chan->rx_ring->PopRequests(idx.size());
    std::vector<uvmm::MulticallOp> ops;
    std::vector<size_t> op_staged;  // staged index per op, parallel to ops
    std::vector<NetRxReq> op_reqs;
    std::vector<NetRxResp> resps;
    std::vector<ukvm::ReqTraceRef> op_traces;    // rx request per op, parallel to ops
    std::vector<ukvm::ReqTraceRef> resp_traces;  // rx request per response slot
    for (size_t k = 0; k < idx.size(); ++k) {
      const StagedRx& pkt = staged[idx[k]];
      if (k >= reqs.size()) {
        ++rx_dropped_;  // guest has no receive slot posted
        driver_.RepostRx(pkt.frame);
        machine_.reqtrace().AbandonRequest(pkt.trace);
        continue;
      }
      auto local_pfn = back_dom->PfnOf(pkt.frame);
      if (!local_pfn.ok()) {
        ++rx_dropped_;
        driver_.RepostRx(pkt.frame);
        // The slot request is consumed; answer it so the guest recycles it.
        // The response carries the trace: the frontend abandons it there.
        resps.push_back(NetRxResp{reqs[k].ref, reqs[k].pfn, 0, Err::kOutOfRange});
        resp_traces.push_back(pkt.trace);
        continue;
      }
      uvmm::MulticallOp op;
      if (mode_ == RxMode::kPageFlip) {
        op.kind = uvmm::MulticallOp::Kind::kGrantTransfer;
        op.peer = chan->guest;
        op.ref = reqs[k].ref;
        op.pfn = *local_pfn;
      } else {
        op.kind = uvmm::MulticallOp::Kind::kGrantCopy;
        op.peer = chan->guest;
        op.ref = reqs[k].ref;
        op.pfn = *local_pfn;
        op.len = pkt.len;
        op.flag = true;  // to_grant
      }
      ops.push_back(op);
      op_staged.push_back(idx[k]);
      op_reqs.push_back(reqs[k]);
      op_traces.push_back(pkt.trace);
    }

    // The whole burst's flips (or copies) cross into the hypervisor once;
    // transfers inside share one deferred TLB shootdown. Every request in
    // the burst shares the multicall span — the amortised cost shows up
    // once per participant, at its true (shared) wall-clock width.
    const uint64_t mc_t0 = machine_.Now();
    auto out = hv_.HcMulticall(backend_, ops);
    machine_.reqtrace().AttachSharedSpan(op_traces, req_flush_name_, ukvm::ReqNodeKind::kCompute,
                                         backend_, mc_t0, machine_.Now());
    for (size_t j = 0; j < ops.size(); ++j) {
      const StagedRx& pkt = staged[op_staged[j]];
      const Err st = j < out.results.size() ? out.results[j].status
                     : out.status != Err::kNone ? out.status
                                                : Err::kAborted;
      if (st == Err::kNone) {
        ++rx_delivered_;
        machine_.tracer().RecordLatency(hist_rx_backlog_, machine_.Now() - pkt.arrived);
        driver_.RepostRx(mode_ == RxMode::kPageFlip
                             ? static_cast<hwsim::Frame>(out.results[j].value)
                             : pkt.frame);
      } else {
        ++rx_dropped_;
        driver_.RepostRx(pkt.frame);
      }
      resps.push_back(NetRxResp{op_reqs[j].ref, op_reqs[j].pfn, pkt.len, st});
      resp_traces.push_back(pkt.trace);
    }
    if (!resps.empty()) {
      chan->rx_ring->SetPushTraceRefs(resp_traces);
      chan->rx_ring->PushResponses(std::span<const NetRxResp>(resps));
      // One notification covers the burst (and coalesces with any pending).
      (void)hv_.HcEvtchnSend(backend_, chan->back_rx_port);
    }
  }
}

void NetBack::DeliverOne(hwsim::Frame frame, uint32_t len) {
  // Unbatched path: the rx request is born and serviced in one step; the
  // scope makes the flip/copy crossings and the response stash its children.
  ukvm::ReqOriginScope req_scope(machine_.reqtrace(), req_rx_name_, backend_);
  auto data = machine_.memory().FrameData(frame);
  NetChannel* chan = ChannelFor(data.subspan(0, len));
  if (chan == nullptr || !hv_.DomainAlive(chan->guest)) {
    ++rx_dropped_;
    machine_.reqtrace().AbandonRequest(req_scope.ref());
    return;
  }
  auto req = chan->rx_ring->PopRequest();
  if (!req) {
    ++rx_dropped_;  // guest has no receive slot posted
    machine_.reqtrace().AbandonRequest(req_scope.ref());
    return;
  }

  uvmm::Domain* back_dom = hv_.FindDomain(backend_);
  auto local_pfn = back_dom->PfnOf(frame);
  if (!local_pfn.ok()) {
    ++rx_dropped_;
    machine_.reqtrace().AbandonRequest(req_scope.ref());
    return;
  }

  Err err = Err::kNone;
  if (mode_ == RxMode::kPageFlip) {
    // The flip: the packet-bearing page moves to the guest; the guest's
    // advertised slot page comes back and becomes a future rx buffer.
    auto exchanged = hv_.HcGrantTransfer(backend_, *local_pfn, chan->guest, req->ref);
    if (exchanged.ok()) {
      driver_.ReplaceRxFrame(frame, *exchanged);
    } else {
      err = exchanged.error();
    }
  } else {
    err = hv_.HcGrantCopy(backend_, chan->guest, req->ref, /*grant_off=*/0, *local_pfn,
                          /*local_off=*/0, len, /*to_grant=*/true);
  }
  if (err == Err::kNone) {
    ++rx_delivered_;
  } else {
    ++rx_dropped_;
  }
  chan->rx_ring->PushResponse(NetRxResp{req->ref, req->pfn, len, err});
  (void)hv_.HcEvtchnSend(backend_, chan->back_rx_port);
}

// --- NetFront --------------------------------------------------------------------

NetFront::NetFront(hwsim::Machine& machine, uvmm::Hypervisor& hv, DomainId guest,
                   std::vector<uvmm::Pfn> pool, PortMux& mux)
    : machine_(machine), hv_(hv), guest_(guest), mux_(mux),
      free_pfns_(pool.begin(), pool.end()), pool_(std::move(pool)),
      xenbus_(machine, "net", guest) {
  hist_tx_e2e_ = machine_.tracer().InternHistogram("net.tx.e2e");
  req_tx_name_ = machine_.reqtrace().InternName("net.tx");
}

void NetFront::OnBackendDead(DomainId dead) {
  if (!crash_recovery_ || dead != backend_) {
    return;
  }
  xenbus_.MarkFailure(machine_.Now());
  // Exactly-once rx read-back: responses already published in the ring
  // carry payloads that landed in guest-visible memory before the backend
  // died (the flip or copy had happened), so draining them now loses
  // nothing — this is the receive-side mirror of the blk journal's
  // "applied but unacknowledged" interleaving. Only responses whose
  // payload cannot be reached count as dropped.
  if (chan_ != nullptr) {
    uvmm::Domain* dom = hv_.FindDomain(guest_);
    while (auto resp = chan_->rx_ring->PopResponse()) {
      const ukvm::ReqTraceRef req_ref = chan_->rx_ring->popped_traces().empty()
                                            ? ukvm::ReqTraceRef{}
                                            : chan_->rx_ring->popped_traces()[0];
      ukvm::ReqAdoptScope req_scope(machine_.reqtrace(), req_ref);
      ForgetOutstandingRxSlot(resp->pfn);
      if (DeliverRxPayload(dom, resp->pfn, resp->len, resp->status)) {
        ++rx_recovered_on_crash_;
        // The notification upcall died with the backend; the read-back IS
        // the delivery, so the dangling evtchn handoff is forgiven.
        machine_.reqtrace().ForgiveHandoffs(req_ref);
        machine_.reqtrace().EndRequest(req_ref);
      } else {
        if (resp->status == Err::kNone) {
          ++rx_dropped_on_crash_;
        }
        machine_.reqtrace().AbandonRequest(req_ref);
      }
    }
  }
  chan_ = nullptr;
  // Every pfn that was staged for tx or advertised as an rx slot was parked
  // with the dead backend; the hypervisor already revoked the grants. In-
  // flight tx packets die with the backend (the NIC contract: upper layers
  // retransmit), counted so the bench can report them.
  tx_dropped_on_crash_ += tx_grants_.size();
  for (const auto& [gref, grant] : tx_grants_) {
    machine_.reqtrace().AbandonRequest(grant.trace);
  }
  tx_grants_.clear();
  tx_gref_cache_.Clear();
  // Advertised-but-unconsumed slots are journaled for exactly-once replay
  // at Reconnect (the rx mirror of the blk write journal); the rest of the
  // pool comes home to the free list.
  rx_slot_journal_.assign(rx_outstanding_.begin(), rx_outstanding_.end());
  rx_outstanding_.clear();
  free_pfns_.clear();
  for (uvmm::Pfn pfn : pool_) {
    if (std::find(rx_slot_journal_.begin(), rx_slot_journal_.end(), pfn) ==
        rx_slot_journal_.end()) {
      free_pfns_.push_back(pfn);
    }
  }
}

Err NetFront::Reconnect(NetBack& back) {
  Err err = Connect(back);
  if (err != Err::kNone) {
    return err;
  }
  // Replay the journaled rx slots exactly once: every slot the dead
  // backend still owed a packet for is re-advertised to its replacement,
  // so the guest's receive window survives the crash at full width.
  const size_t replayed = rx_slot_journal_.size();
  for (uvmm::Pfn pfn : rx_slot_journal_) {
    PostRxSlot(pfn, /*kick=*/false);
  }
  rx_slot_journal_.clear();
  rx_slots_replayed_ += replayed;
  xenbus_.OnReconnected();
  if (replayed > 0) {
    xenbus_.OnReplayed(replayed);
  }
  return Err::kNone;
}

uint32_t NetFront::front_rx_port() const {
  return chan_ != nullptr ? chan_->front_rx_port : 0;
}

bool NetFront::DeliverRxPayload(uvmm::Domain* dom, uint32_t pfn, uint32_t len, Err status) {
  if (status != Err::kNone || dom == nullptr) {
    return false;
  }
  auto mfn = dom->MfnOf(pfn);
  if (!mfn.ok()) {
    return false;
  }
  auto data = machine_.memory().FrameData(*mfn);
  // The guest network stack copies the payload out of the (flipped or
  // filled) page.
  RaceFrameAccess(machine_, guest_, *mfn, /*write=*/false, "net.rx.payload");
  std::vector<uint8_t> bytes(data.begin(), data.begin() + len);
  machine_.ChargeCopy(len);
  ++rx_received_;
  if (handler_) {
    handler_(bytes);
  }
  return true;
}

void NetFront::ForgetOutstandingRxSlot(uvmm::Pfn pfn) {
  auto it = std::find(rx_outstanding_.begin(), rx_outstanding_.end(), pfn);
  if (it != rx_outstanding_.end()) {
    rx_outstanding_.erase(it);
  }
}

Err NetFront::Connect(NetBack& back) {
  // A fresh channel owes nothing: any outstanding-slot bookkeeping from a
  // previous (legacy-restart) epoch is void.
  rx_outstanding_.clear();
  chan_ = back.Connect(guest_);
  if (chan_ == nullptr) {
    return Err::kNoMemory;
  }
  mode_ = back.mode();
  // The handshake carries the backend id out of band (as xenstore would).
  backend_ = back.backend();
  chan_->tx_ring->BindRaceEndpoints(guest_, backend_);
  chan_->rx_ring->BindRaceEndpoints(guest_, backend_);

  auto tx_port = hv_.HcEvtchnBind(guest_, backend_, chan_->back_tx_port);
  auto rx_port = hv_.HcEvtchnBind(guest_, backend_, chan_->back_rx_port);
  if (!tx_port.ok() || !rx_port.ok()) {
    return Err::kNoMemory;
  }
  chan_->front_tx_port = *tx_port;
  chan_->front_rx_port = *rx_port;
  mux_.Route(chan_->front_tx_port, [this] { OnTxResponse(); });
  mux_.Route(chan_->front_rx_port, [this] { OnRxResponse(); });

  // Post half the pool as receive slots; keep the rest for tx staging.
  const size_t rx_slots = free_pfns_.size() / 2;
  for (size_t i = 0; i < rx_slots; ++i) {
    const uvmm::Pfn pfn = free_pfns_.front();
    free_pfns_.pop_front();
    PostRxSlot(pfn, /*kick=*/false);
  }
  xenbus_.OnConnected();  // first connect only; reconnects go via Reconnect
  return Err::kNone;
}

void NetFront::PostRxSlot(uvmm::Pfn pfn, bool kick) {
  ukvm::Result<uint32_t> ref =
      mode_ == RxMode::kPageFlip
          ? hv_.HcGrantTransferSlot(guest_, backend_, pfn)
          : hv_.HcGrantAccess(guest_, backend_, pfn, /*writable=*/true);
  if (!ref.ok()) {
    UKVM_WARN("netfront: cannot post rx slot: %s", ukvm::ErrName(ref.error()));
    return;
  }
  chan_->rx_ring->PushRequest(NetRxReq{*ref, pfn});
  rx_outstanding_.push_back(pfn);
  if (kick) {
    (void)hv_.HcEvtchnSend(guest_, chan_->front_rx_port);
  }
}

Err NetFront::Send(std::span<const uint8_t> packet) {
  if (chan_ == nullptr) {
    return Err::kWouldBlock;
  }
  if (packet.size() > machine_.memory().page_size() || packet.size() > mtu()) {
    return Err::kInvalidArgument;
  }
  if (!hv_.DomainAlive(backend_)) {
    return Err::kDead;
  }
  if (free_pfns_.empty()) {
    return Err::kBusy;
  }
  // The tx request is born here; the staging copy, the grant, the ring
  // stash, and the kick all become its children via the ambient scope.
  ukvm::ReqOriginScope req_scope(machine_.reqtrace(), req_tx_name_, guest_);
  uvmm::Domain* dom = hv_.FindDomain(guest_);
  const uvmm::Pfn pfn = free_pfns_.front();
  free_pfns_.pop_front();

  // Guest kernel copies the payload into a DMA-able page.
  auto mfn = dom->MfnOf(pfn);
  assert(mfn.ok());
  machine_.memory().Write(machine_.memory().FrameBase(*mfn), packet);
  machine_.ChargeCopy(packet.size());
  RaceFrameAccess(machine_, guest_, *mfn, /*write=*/true, "net.tx.payload");

  // Persistent mode recycles the staging page's access grant: after the
  // first send of a given pfn, steady state issues no grant hypercalls here.
  uint32_t gref = 0;
  if (persistent_) {
    if (auto cached = tx_gref_cache_.LookupGrant(pfn)) {
      gref = *cached;
    } else {
      auto fresh = hv_.HcGrantAccess(guest_, backend_, pfn, /*writable=*/false);
      if (!fresh.ok()) {
        free_pfns_.push_back(pfn);
        machine_.reqtrace().AbandonRequest(req_scope.ref());
        return fresh.error();
      }
      gref = *fresh;
      tx_gref_cache_.InsertGrant(pfn, gref);
    }
  } else {
    auto fresh = hv_.HcGrantAccess(guest_, backend_, pfn, /*writable=*/false);
    if (!fresh.ok()) {
      free_pfns_.push_back(pfn);
      machine_.reqtrace().AbandonRequest(req_scope.ref());
      return fresh.error();
    }
    gref = *fresh;
  }
  tx_grants_[gref] = TxGrant{pfn, machine_.Now(), req_scope.ref()};
  chan_->tx_ring->PushRequest(NetTxReq{gref, static_cast<uint32_t>(packet.size())});
  const Err err = hv_.HcEvtchnSend(guest_, chan_->front_tx_port);
  if (err == Err::kNone) {
    ++tx_sent_;
  }
  return err;
}

void NetFront::OnTxResponse() {
  if (chan_ == nullptr) {
    return;  // late upcall after OnBackendDead dropped the channel
  }
  while (auto resp = chan_->tx_ring->PopResponse()) {
    if (!persistent_) {
      // Persistent grants stay live for the next send of the same page.
      (void)hv_.HcGrantEnd(guest_, resp->gref);
    }
    auto it = tx_grants_.find(resp->gref);
    if (it != tx_grants_.end()) {
      machine_.tracer().RecordLatency(hist_tx_e2e_, machine_.Now() - it->second.t0);
      free_pfns_.push_back(it->second.pfn);
      machine_.reqtrace().EndRequest(it->second.trace);
      tx_grants_.erase(it);
    }
  }
}

void NetFront::OnRxResponse() {
  if (chan_ == nullptr) {
    return;  // late upcall after OnBackendDead dropped the channel
  }
  uvmm::Domain* dom = hv_.FindDomain(guest_);
  if (io_batch_ <= 1) {
    while (auto resp = chan_->rx_ring->PopResponse()) {
      const ukvm::ReqTraceRef req_ref = chan_->rx_ring->popped_traces().empty()
                                            ? ukvm::ReqTraceRef{}
                                            : chan_->rx_ring->popped_traces()[0];
      ukvm::ReqAdoptScope req_scope(machine_.reqtrace(), req_ref);
      ForgetOutstandingRxSlot(resp->pfn);
      if (DeliverRxPayload(dom, resp->pfn, resp->len, resp->status)) {
        machine_.reqtrace().EndRequest(req_ref);
      } else {
        machine_.reqtrace().AbandonRequest(req_ref);
      }
      if (mode_ == RxMode::kGrantCopy) {
        if (persistent_) {
          // The writable slot grant survives the backend's copy; reuse it.
          chan_->rx_ring->PushRequest(NetRxReq{resp->ref, resp->pfn});
          rx_outstanding_.push_back(resp->pfn);
          continue;
        }
        (void)hv_.HcGrantEnd(guest_, resp->ref);
      }
      // Re-advertise the slot (the flip consumed the old grant entirely).
      PostRxSlot(resp->pfn, /*kick=*/false);
    }
    return;
  }

  // Batched path: drain the whole ring in one pass, then re-advertise every
  // consumed slot under a single multicall (flip mode needs fresh transfer
  // grants; copy mode ends+re-grants, or reuses the grant when persistent).
  auto resps = chan_->rx_ring->PopResponses(chan_->rx_ring->pending_responses());
  const std::vector<ukvm::ReqTraceRef> popped = chan_->rx_ring->popped_traces();
  std::vector<uvmm::MulticallOp> ops;
  std::vector<NetRxReq> reqs;
  for (size_t i = 0; i < resps.size(); ++i) {
    const NetRxResp& resp = resps[i];
    const ukvm::ReqTraceRef req_ref = i < popped.size() ? popped[i] : ukvm::ReqTraceRef{};
    ukvm::ReqAdoptScope req_scope(machine_.reqtrace(), req_ref);
    ForgetOutstandingRxSlot(resp.pfn);
    if (DeliverRxPayload(dom, resp.pfn, resp.len, resp.status)) {
      machine_.reqtrace().EndRequest(req_ref);
    } else {
      machine_.reqtrace().AbandonRequest(req_ref);
    }
    if (mode_ == RxMode::kPageFlip) {
      uvmm::MulticallOp op;
      op.kind = uvmm::MulticallOp::Kind::kGrantTransferSlot;
      op.peer = backend_;
      op.pfn = resp.pfn;
      ops.push_back(op);
    } else if (persistent_) {
      reqs.push_back(NetRxReq{resp.ref, resp.pfn});
    } else {
      uvmm::MulticallOp end;
      end.kind = uvmm::MulticallOp::Kind::kGrantEnd;
      end.ref = resp.ref;
      ops.push_back(end);
      uvmm::MulticallOp acc;
      acc.kind = uvmm::MulticallOp::Kind::kGrantAccess;
      acc.peer = backend_;
      acc.pfn = resp.pfn;
      acc.flag = true;  // writable
      ops.push_back(acc);
    }
  }
  if (!ops.empty()) {
    auto out = hv_.HcMulticall(guest_, ops);
    for (size_t j = 0; j < out.results.size(); ++j) {
      if (ops[j].kind == uvmm::MulticallOp::Kind::kGrantEnd) {
        continue;
      }
      if (out.results[j].status == Err::kNone) {
        reqs.push_back(NetRxReq{static_cast<uint32_t>(out.results[j].value), ops[j].pfn});
      } else {
        UKVM_WARN("netfront: cannot post rx slot: %s", ukvm::ErrName(out.results[j].status));
      }
    }
  }
  if (!reqs.empty()) {
    chan_->rx_ring->PushRequests(std::span<const NetRxReq>(reqs));
    for (const NetRxReq& req : reqs) {
      rx_outstanding_.push_back(req.pfn);
    }
  }
}

}  // namespace ustack
