#include "src/stacks/netsplit.h"

#include <cassert>

#include "src/core/log.h"
#include "src/os/netstack.h"

namespace ustack {

using ukvm::DomainId;
using ukvm::Err;

const char* RxModeName(RxMode mode) {
  return mode == RxMode::kPageFlip ? "page-flip" : "grant-copy";
}

namespace {

// Scratch VA region in the backend where granted tx pages are mapped.
constexpr hwsim::Vaddr kBackendMapBase = 0xE000'0000ull;
constexpr uint32_t kBackendMapSlots = 64;
constexpr size_t kRingCapacity = 256;

}  // namespace

// --- NetBack ---------------------------------------------------------------------

NetBack::NetBack(hwsim::Machine& machine, uvmm::Hypervisor& hv, DomainId backend,
                 udrv::NicDriver& driver, RxMode mode, PortMux& mux)
    : machine_(machine), hv_(hv), backend_(backend), driver_(driver), mode_(mode), mux_(mux),
      health_(machine, "vmm.net") {}

NetChannel* NetBack::Connect(DomainId guest) {
  auto chan = std::make_unique<NetChannel>();
  chan->guest = guest;
  chan->tx_ring = std::make_unique<XenRing<NetTxReq, NetTxResp>>(machine_, kRingCapacity);
  chan->rx_ring = std::make_unique<XenRing<NetRxReq, NetRxResp>>(machine_, kRingCapacity);
  auto tx_port = hv_.HcEvtchnAllocUnbound(backend_, guest);
  auto rx_port = hv_.HcEvtchnAllocUnbound(backend_, guest);
  if (!tx_port.ok() || !rx_port.ok()) {
    return nullptr;
  }
  chan->back_tx_port = *tx_port;
  chan->back_rx_port = *rx_port;
  NetChannel* raw = chan.get();
  mux_.Route(raw->back_tx_port, [this, raw] { OnTxKick(*raw); });
  mux_.Route(raw->back_rx_port, [] { /* rx-slot replenish notification */ });
  channels_.push_back(std::move(chan));
  return raw;
}

void NetBack::RoutePort(uint16_t wire_port, DomainId guest) {
  for (auto& chan : channels_) {
    if (chan->guest == guest) {
      wire_routes_[wire_port] = chan.get();
      return;
    }
  }
}

NetChannel* NetBack::ChannelFor(std::span<const uint8_t> packet) {
  minios::ParsedPacket parsed;
  if (minios::ParsePacket(packet, parsed)) {
    auto it = wire_routes_.find(parsed.dst_port);
    if (it != wire_routes_.end()) {
      return it->second;
    }
  }
  return channels_.empty() ? nullptr : channels_.front().get();
}

void NetBack::OnTxKick(NetChannel& chan) {
  bool any = false;
  while (auto req = chan.tx_ring->PopRequest()) {
    any = true;
    if (health_.ShouldFastFail()) {
      chan.tx_ring->PushResponse(NetTxResp{req->gref, Err::kRetryExhausted});
      continue;
    }
    // Map the guest's granted page, transmit straight out of it (zero-copy
    // TX), then unmap.
    const hwsim::Vaddr map_va =
        kBackendMapBase + (tx_packets_ % kBackendMapSlots) * machine_.memory().page_size();
    Err err = hv_.HcGrantMap(backend_, chan.guest, req->gref, map_va, /*write=*/false);
    if (err == Err::kNone) {
      uvmm::Domain* back_dom = hv_.FindDomain(backend_);
      const hwsim::Pte* pte = back_dom->space.Walk(map_va);
      assert(pte != nullptr && pte->present);
      err = driver_.SendFrame(pte->frame, req->len);
      if (err == Err::kNone) {
        health_.RecordSuccess();
      } else {
        health_.RecordFailure();  // the NIC refused the frame
      }
      (void)hv_.HcGrantUnmap(backend_, chan.guest, req->gref, map_va);
    }
    if (err == Err::kNone) {
      ++tx_packets_;
    }
    chan.tx_ring->PushResponse(NetTxResp{req->gref, err});
  }
  if (any) {
    (void)hv_.HcEvtchnSend(backend_, chan.back_tx_port);
  }
}

void NetBack::OnPacketReceived(hwsim::Frame frame, uint32_t len) {
  auto data = machine_.memory().FrameData(frame);
  NetChannel* chan = ChannelFor(data.subspan(0, len));
  if (chan == nullptr || !hv_.DomainAlive(chan->guest)) {
    ++rx_dropped_;
    return;
  }
  auto req = chan->rx_ring->PopRequest();
  if (!req) {
    ++rx_dropped_;  // guest has no receive slot posted
    return;
  }

  uvmm::Domain* back_dom = hv_.FindDomain(backend_);
  auto local_pfn = back_dom->PfnOf(frame);
  if (!local_pfn.ok()) {
    ++rx_dropped_;
    return;
  }

  Err err = Err::kNone;
  if (mode_ == RxMode::kPageFlip) {
    // The flip: the packet-bearing page moves to the guest; the guest's
    // advertised slot page comes back and becomes a future rx buffer.
    auto exchanged = hv_.HcGrantTransfer(backend_, *local_pfn, chan->guest, req->ref);
    if (exchanged.ok()) {
      driver_.ReplaceRxFrame(frame, *exchanged);
    } else {
      err = exchanged.error();
    }
  } else {
    err = hv_.HcGrantCopy(backend_, chan->guest, req->ref, /*grant_off=*/0, *local_pfn,
                          /*local_off=*/0, len, /*to_grant=*/true);
  }
  if (err == Err::kNone) {
    ++rx_delivered_;
  } else {
    ++rx_dropped_;
  }
  chan->rx_ring->PushResponse(NetRxResp{req->ref, req->pfn, len, err});
  (void)hv_.HcEvtchnSend(backend_, chan->back_rx_port);
}

// --- NetFront --------------------------------------------------------------------

NetFront::NetFront(hwsim::Machine& machine, uvmm::Hypervisor& hv, DomainId guest,
                   std::vector<uvmm::Pfn> pool, PortMux& mux)
    : machine_(machine), hv_(hv), guest_(guest), mux_(mux),
      free_pfns_(pool.begin(), pool.end()) {}

Err NetFront::Connect(NetBack& back) {
  chan_ = back.Connect(guest_);
  if (chan_ == nullptr) {
    return Err::kNoMemory;
  }
  mode_ = back.mode();
  // The handshake carries the backend id out of band (as xenstore would).
  backend_ = back.backend();

  auto tx_port = hv_.HcEvtchnBind(guest_, backend_, chan_->back_tx_port);
  auto rx_port = hv_.HcEvtchnBind(guest_, backend_, chan_->back_rx_port);
  if (!tx_port.ok() || !rx_port.ok()) {
    return Err::kNoMemory;
  }
  chan_->front_tx_port = *tx_port;
  chan_->front_rx_port = *rx_port;
  mux_.Route(chan_->front_tx_port, [this] { OnTxResponse(); });
  mux_.Route(chan_->front_rx_port, [this] { OnRxResponse(); });

  // Post half the pool as receive slots; keep the rest for tx staging.
  const size_t rx_slots = free_pfns_.size() / 2;
  for (size_t i = 0; i < rx_slots; ++i) {
    const uvmm::Pfn pfn = free_pfns_.front();
    free_pfns_.pop_front();
    PostRxSlot(pfn, /*kick=*/false);
  }
  return Err::kNone;
}

void NetFront::PostRxSlot(uvmm::Pfn pfn, bool kick) {
  ukvm::Result<uint32_t> ref =
      mode_ == RxMode::kPageFlip
          ? hv_.HcGrantTransferSlot(guest_, backend_, pfn)
          : hv_.HcGrantAccess(guest_, backend_, pfn, /*writable=*/true);
  if (!ref.ok()) {
    UKVM_WARN("netfront: cannot post rx slot: %s", ukvm::ErrName(ref.error()));
    return;
  }
  chan_->rx_ring->PushRequest(NetRxReq{*ref, pfn});
  if (kick) {
    (void)hv_.HcEvtchnSend(guest_, chan_->front_rx_port);
  }
}

Err NetFront::Send(std::span<const uint8_t> packet) {
  if (chan_ == nullptr) {
    return Err::kWouldBlock;
  }
  if (packet.size() > machine_.memory().page_size() || packet.size() > mtu()) {
    return Err::kInvalidArgument;
  }
  if (!hv_.DomainAlive(backend_)) {
    return Err::kDead;
  }
  if (free_pfns_.empty()) {
    return Err::kBusy;
  }
  uvmm::Domain* dom = hv_.FindDomain(guest_);
  const uvmm::Pfn pfn = free_pfns_.front();
  free_pfns_.pop_front();

  // Guest kernel copies the payload into a DMA-able page.
  auto mfn = dom->MfnOf(pfn);
  assert(mfn.ok());
  machine_.memory().Write(machine_.memory().FrameBase(*mfn), packet);
  machine_.ChargeCopy(packet.size());

  auto gref = hv_.HcGrantAccess(guest_, backend_, pfn, /*writable=*/false);
  if (!gref.ok()) {
    free_pfns_.push_back(pfn);
    return gref.error();
  }
  tx_grants_[*gref] = pfn;
  chan_->tx_ring->PushRequest(NetTxReq{*gref, static_cast<uint32_t>(packet.size())});
  const Err err = hv_.HcEvtchnSend(guest_, chan_->front_tx_port);
  if (err == Err::kNone) {
    ++tx_sent_;
  }
  return err;
}

void NetFront::OnTxResponse() {
  while (auto resp = chan_->tx_ring->PopResponse()) {
    (void)hv_.HcGrantEnd(guest_, resp->gref);
    auto it = tx_grants_.find(resp->gref);
    if (it != tx_grants_.end()) {
      free_pfns_.push_back(it->second);
      tx_grants_.erase(it);
    }
  }
}

void NetFront::OnRxResponse() {
  uvmm::Domain* dom = hv_.FindDomain(guest_);
  while (auto resp = chan_->rx_ring->PopResponse()) {
    if (resp->status == Err::kNone) {
      auto mfn = dom->MfnOf(resp->pfn);
      if (mfn.ok()) {
        auto data = machine_.memory().FrameData(*mfn);
        // The guest network stack copies the payload out of the (flipped or
        // filled) page.
        std::vector<uint8_t> bytes(data.begin(), data.begin() + resp->len);
        machine_.ChargeCopy(resp->len);
        ++rx_received_;
        if (handler_) {
          handler_(bytes);
        }
      }
    }
    if (mode_ == RxMode::kGrantCopy) {
      (void)hv_.HcGrantEnd(guest_, resp->ref);
    }
    // Re-advertise the slot (the flip consumed the old grant entirely).
    PostRxSlot(resp->pfn, /*kick=*/false);
  }
}

}  // namespace ustack
