#include "src/stacks/tcb_lists.h"

namespace ustack {

using ukvm::TcbComponent;
using ukvm::TrustClass;

namespace {

std::vector<std::string> UkernelKernelFiles() {
  return {"src/ukernel/kernel.cc", "src/ukernel/kernel.h", "src/ukernel/ipc.h",
          "src/ukernel/mapdb.cc", "src/ukernel/mapdb.h",   
          "src/ukernel/sched.h",  "src/ukernel/task.h",    "src/ukernel/thread.h"};
}

std::vector<std::string> HypervisorFiles() {
  return {"src/vmm/hypervisor.cc",     "src/vmm/hypervisor.h",    "src/vmm/domain.h",
          "src/vmm/event_channel.cc",  "src/vmm/event_channel.h", "src/vmm/grant_table.cc",
          "src/vmm/grant_table.h",     "src/vmm/pt_virt.cc",      "src/vmm/pt_virt.h",
          "src/vmm/exception_virt.cc", "src/vmm/exception_virt.h", "src/vmm/sched.cc",
          "src/vmm/sched.h"};
}

std::vector<std::string> MiniOsFiles() {
  return {"src/os/kernel.cc", "src/os/kernel.h", "src/os/vfs.cc",
          "src/os/vfs.h",     "src/os/netstack.cc", "src/os/netstack.h",
          "src/os/process.h", "src/os/syscall.h"};
}

std::vector<std::string> DriverFiles() {
  return {"src/drivers/nic_driver.cc", "src/drivers/nic_driver.h",
          "src/drivers/disk_driver.cc", "src/drivers/disk_driver.h"};
}

}  // namespace

std::vector<TcbComponent> UkernelTcbComponents() {
  return {
      TcbComponent{"microkernel", TrustClass::kPrivileged, UkernelKernelFiles()},
      TcbComponent{"sigma0 (memory server)", TrustClass::kCriticalPath,
                   {"src/stacks/ukservers.cc", "src/stacks/ukservers.h"}},
      TcbComponent{"net driver server", TrustClass::kIsolated, DriverFiles()},
      TcbComponent{"block service", TrustClass::kIsolated, {"src/hw/disk.cc", "src/hw/disk.h"}},
      TcbComponent{"MiniOS server (per guest)", TrustClass::kIsolated, MiniOsFiles()},
      TcbComponent{"syscall redirection port", TrustClass::kIsolated,
                   {"src/os/ports/ukernel_port.cc", "src/os/ports/ukernel_port.h"}},
  };
}

std::vector<TcbComponent> VmmTcbComponents(bool parallax_storage) {
  std::vector<TcbComponent> components = {
      TcbComponent{"hypervisor", TrustClass::kPrivileged, HypervisorFiles()},
      // Dom0 is the super-VM of §2.2: a legacy OS plus drivers plus the
      // netback, all on the critical path of every guest's I/O.
      TcbComponent{"Dom0 legacy OS", TrustClass::kCriticalPath, MiniOsFiles()},
      TcbComponent{"Dom0 drivers", TrustClass::kCriticalPath, DriverFiles()},
      TcbComponent{"netback", TrustClass::kCriticalPath,
                   {"src/stacks/netsplit.cc", "src/stacks/netsplit.h"}},
      TcbComponent{"MiniOS guest (per VM)", TrustClass::kIsolated, MiniOsFiles()},
      TcbComponent{"paravirtual port + frontends", TrustClass::kIsolated,
                   {"src/os/ports/vmm_port.cc", "src/os/ports/vmm_port.h"}},
  };
  components.push_back(TcbComponent{
      parallax_storage ? "Parallax storage VM" : "Dom0 blkback",
      parallax_storage ? TrustClass::kIsolated : TrustClass::kCriticalPath,
      {"src/stacks/blksplit.cc", "src/stacks/blksplit.h"}});
  return components;
}

std::vector<TcbComponent> NativeTcbComponents() {
  std::vector<std::string> everything = MiniOsFiles();
  for (const auto& f : DriverFiles()) {
    everything.push_back(f);
  }
  everything.push_back("src/os/ports/native_port.cc");
  everything.push_back("src/os/ports/native_port.h");
  return {TcbComponent{"monolithic OS", TrustClass::kPrivileged, everything}};
}

}  // namespace ustack
