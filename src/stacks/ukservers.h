// User-level servers for the microkernel stack.
//
// "Implement whatever possible outside of the kernel" (Liedtke, quoted in
// §2.1): memory management (Sigma0), the network driver, and the block
// service all run as ordinary tasks. The block server plays the role
// Parallax plays in the VMM world — a storage service whose failure should
// affect only its clients (experiment E5); the net server is the
// counterpart of the Dom0 netback path (experiments E3/E4).

#ifndef UKVM_SRC_STACKS_UKSERVERS_H_
#define UKVM_SRC_STACKS_UKSERVERS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/core/error.h"
#include "src/drivers/disk_driver.h"
#include "src/drivers/nic_driver.h"
#include "src/drivers/retry_policy.h"
#include "src/hw/disk.h"
#include "src/hw/machine.h"
#include "src/hw/nic.h"
#include "src/stacks/watchdog.h"
#include "src/stacks/xenbus.h"
#include "src/ukernel/kernel.h"

namespace ustack {

// Label for the sigma0 memory protocol: regs[1]=va, [2]=pages, [3]=writable.
inline constexpr uint64_t kSigma0MapLabel = 0x40;

// The root memory server: owns all free physical memory and hands out pages
// via IPC map items. Also the default pager: faults are answered with a
// fresh zero page (demand paging).
class Sigma0 {
 public:
  Sigma0(hwsim::Machine& machine, ukern::Kernel& kernel);

  ukvm::DomainId task() const { return task_; }
  ukvm::ThreadId thread() const { return thread_; }

  // Convenience for boot-time wiring: asks sigma0 (via a real IPC from
  // `requester`) to map `pages` fresh pages at `va` in the requester's task.
  ukvm::Err RequestPages(ukvm::ThreadId requester, hwsim::Vaddr va, uint32_t pages,
                         bool writable);

  uint64_t pages_granted() const { return pages_granted_; }

 private:
  ukern::IpcMessage Handle(ukvm::ThreadId sender, ukern::IpcMessage msg);
  // Allocates a frame and maps it idempotently into sigma0's own space;
  // returns the sigma0-side VA usable as a map-item source.
  ukvm::Result<hwsim::Vaddr> ProvisionPage();

  hwsim::Machine& machine_;
  ukern::Kernel& kernel_;
  ukvm::DomainId task_;
  ukvm::ThreadId thread_;
  uint64_t pages_granted_ = 0;
};

// User-level network driver server.
class UkNetServer {
 public:
  UkNetServer(hwsim::Machine& machine, ukern::Kernel& kernel, Sigma0& sigma0, hwsim::Nic& nic);

  ukvm::DomainId task() const { return task_; }
  ukvm::ThreadId thread() const { return thread_; }

  // Routes inbound wire packets for `wire_port` to a specific client's rx
  // thread (otherwise the first attached client receives them).
  void RoutePort(uint16_t wire_port, ukvm::ThreadId client_rx);

  // Bounded retries for tx-ring starvation (e.g. lost completion IRQs).
  void SetRetryPolicy(const udrv::RetryPolicy& policy) { driver_->SetRetryPolicy(policy); }
  // Circuit breaker: after persistent send failures, reply kRetryExhausted
  // without touching the device until the cooldown passes.
  void SetDegradePolicy(const DegradePolicy& policy) { health_.SetPolicy(policy); }
  const ServiceHealth& health() const { return health_; }

  uint64_t rx_forwarded() const { return rx_forwarded_; }
  uint64_t rx_dropped() const { return rx_dropped_; }

 private:
  ukern::IpcMessage Handle(ukvm::ThreadId sender, ukern::IpcMessage msg);
  void OnPacket(hwsim::Frame frame, uint32_t len);
  hwsim::Vaddr PoolVaOf(hwsim::Frame frame) const;

  hwsim::Machine& machine_;
  ukern::Kernel& kernel_;
  ukvm::DomainId task_;
  ukvm::ThreadId thread_;
  std::unique_ptr<udrv::NicDriver> driver_;
  std::unordered_map<hwsim::Frame, hwsim::Vaddr> frame_to_va_;
  std::vector<ukvm::ThreadId> clients_;  // attached rx threads
  std::unordered_map<uint16_t, ukvm::ThreadId> wire_routes_;
  ServiceHealth health_;
  uint64_t rx_forwarded_ = 0;
  uint64_t rx_dropped_ = 0;
};

// User-level block service: serves per-client virtual-disk slices.
class UkBlockServer {
 public:
  UkBlockServer(hwsim::Machine& machine, ukern::Kernel& kernel, Sigma0& sigma0,
                hwsim::Disk& disk, uint64_t slice_blocks);

  ukvm::DomainId task() const { return task_; }
  ukvm::ThreadId thread() const { return thread_; }

  void SetRetryPolicy(const udrv::RetryPolicy& policy) { driver_->SetRetryPolicy(policy); }
  void SetDegradePolicy(const DegradePolicy& policy) { health_.SetPolicy(policy); }
  const ServiceHealth& health() const { return health_; }

  // Slice-table carry-over for restarts: without it a restarted server
  // would hand slice 0 to whichever client spoke first, silently exposing
  // one client's blocks to another.
  const std::unordered_map<ukvm::DomainId, uint64_t>& slices() const { return slices_; }
  uint64_t next_slice() const { return next_slice_; }
  void RestoreSlices(std::unordered_map<ukvm::DomainId, uint64_t> slices, uint64_t next_slice) {
    slices_ = std::move(slices);
    next_slice_ = next_slice;
  }

  // Attaches the stack-owned exactly-once ledger (nullptr detaches), the
  // mirror of BlkBack::SetRecoveryLog. Write requests carrying a nonzero id
  // in regs[3] are deduplicated against it (keyed by the sender's task):
  // a journal replay of a write that landed before the crash is answered
  // success without re-touching the disk.
  void SetRecoveryLog(BlkRecoveryLog* log) { recovery_log_ = log; }

  uint64_t requests_served() const { return served_; }

 private:
  ukern::IpcMessage Handle(ukvm::ThreadId sender, ukern::IpcMessage msg);
  // Slice of the sender's task (assigned on first contact).
  ukvm::Result<uint64_t> SliceBaseOf(ukvm::ThreadId sender);

  hwsim::Machine& machine_;
  ukern::Kernel& kernel_;
  hwsim::Disk& disk_;
  ukvm::DomainId task_;
  ukvm::ThreadId thread_;
  std::unique_ptr<udrv::DiskDriver> driver_;
  hwsim::Vaddr staging_va_ = 0;
  hwsim::Frame staging_frame_ = 0;
  hwsim::Vaddr window_va_ = 0;
  uint64_t slice_blocks_;
  std::unordered_map<ukvm::DomainId, uint64_t> slices_;  // client task -> slice idx
  uint64_t next_slice_ = 0;
  ServiceHealth health_;
  BlkRecoveryLog* recovery_log_ = nullptr;  // not owned; outlives the server
  uint64_t served_ = 0;
};

}  // namespace ustack

#endif  // UKVM_SRC_STACKS_UKSERVERS_H_
