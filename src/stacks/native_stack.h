// The native baseline: MiniOS directly on the simulated machine, no
// protection domains beyond user/kernel. This is the reference point for
// the syscall-path (E2) and crossing-count (E4) comparisons.

#ifndef UKVM_SRC_STACKS_NATIVE_STACK_H_
#define UKVM_SRC_STACKS_NATIVE_STACK_H_

#include <memory>

#include "src/check/auditor.h"
#include "src/hw/disk.h"
#include "src/hw/machine.h"
#include "src/hw/nic.h"
#include "src/hw/platform.h"
#include "src/os/kernel.h"
#include "src/os/ports/native_port.h"

namespace ustack {

class NativeStack {
 public:
  struct Config {
    hwsim::Platform platform = hwsim::MakeX86Platform();
    uint64_t memory_bytes = 32ull * 1024 * 1024;
    uint32_t num_vcpus = 1;  // >1 arms the TLB shootdown protocol (E18)
    hwsim::Nic::Config nic;
    hwsim::Disk::Config disk;
    // Constructs the isolation auditor (src/check). The native stack has no
    // page tables, so only the ledger linter and DMA checks are live.
    bool audit = UKVM_CHECK_DEFAULT != 0;
    // E20 happens-before race detection. The native stack shares no memory
    // across domains, so this only exercises the edge bookkeeping.
    bool race_detect = false;
    // E17 flight recorder / histograms / profiler (off by default).
    ukvm::TraceConfig trace;
    // E22 causal request tracing (off by default; observation only).
    ukvm::ReqTraceConfig request_trace;
  };

  explicit NativeStack(Config config);
  NativeStack() : NativeStack(Config{}) {}

  hwsim::Machine& machine() { return machine_; }
  hwsim::Nic& nic() { return nic_; }
  hwsim::Disk& disk() { return disk_; }
  minios::NativePort& port() { return *port_; }
  minios::Os& os() { return *os_; }
  // The isolation auditor; nullptr when the config disabled it.
  ucheck::Auditor* auditor() { return auditor_.get(); }

  // Accounting domain of the whole OS.
  ukvm::DomainId os_domain() const { return kOsDomain; }

 private:
  static constexpr ukvm::DomainId kOsDomain{1};
  static constexpr uint32_t kNicIrq = 5;
  static constexpr uint32_t kDiskIrq = 6;

  hwsim::Machine machine_;
  hwsim::Nic nic_;
  hwsim::Disk disk_;
  std::unique_ptr<minios::NativePort> port_;
  std::unique_ptr<minios::Os> os_;
  // Declared last: destroyed first, detaching its hooks while the machine
  // is still alive.
  std::unique_ptr<ucheck::Auditor> auditor_;
};

}  // namespace ustack

#endif  // UKVM_SRC_STACKS_NATIVE_STACK_H_
