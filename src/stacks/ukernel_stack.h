// The complete microkernel system: L4-style kernel, sigma0, user-level
// driver servers, and one or more MiniOS guests whose applications reach
// the OS server — and the OS server reaches the drivers — purely via IPC.

#ifndef UKVM_SRC_STACKS_UKERNEL_STACK_H_
#define UKVM_SRC_STACKS_UKERNEL_STACK_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/check/auditor.h"
#include "src/drivers/retry_policy.h"
#include "src/hw/disk.h"
#include "src/hw/fault_injector.h"
#include "src/hw/machine.h"
#include "src/hw/nic.h"
#include "src/hw/platform.h"
#include "src/os/kernel.h"
#include "src/os/ports/ukernel_port.h"
#include "src/stacks/ukservers.h"
#include "src/stacks/watchdog.h"
#include "src/stacks/xenbus.h"
#include "src/ukernel/kernel.h"

namespace ustack {

class UkernelStack {
 public:
  struct Config {
    hwsim::Platform platform = hwsim::MakeX86Platform();
    uint64_t memory_bytes = 64ull * 1024 * 1024;
    uint32_t num_vcpus = 1;  // >1 arms the TLB shootdown protocol (E18)
    uint32_t num_guests = 1;
    uint64_t slice_blocks = 8192;  // per-client virtual-disk size
    hwsim::Nic::Config nic;
    hwsim::Disk::Config disk;
    // Chaos knobs (E15). `faults` attaches a seeded injector to both
    // devices; the policies harden the driver servers against it.
    hwsim::FaultPlan faults;
    udrv::RetryPolicy disk_retry;
    udrv::RetryPolicy nic_retry;
    DegradePolicy degrade;
    // Constructs the isolation auditor (src/check) over this stack. The
    // default follows the UKVM_CHECK build option; benches flip it off to
    // measure hook-free baselines.
    bool audit = UKVM_CHECK_DEFAULT != 0;
    // E20 happens-before race detection (IPC-edge vector clocks). Off by
    // default; charges no simulated cycles either way.
    bool race_detect = false;
    // E17 flight recorder / histograms / profiler. Off by default; with
    // tracing off, the instrumented paths charge exactly the same simulated
    // cycles as before the tracer existed.
    ukvm::TraceConfig trace;
    // E22 causal request tracing: per-request DAGs across IPC calls, ring
    // slots, and journal replay. Same discipline — observation only.
    ukvm::ReqTraceConfig request_trace;
    // E19 crash recovery — default off, so every pre-E19 path is
    // byte-identical. On: block writes are journaled by the port and
    // replayed (same ids) after RestartBlockServer; the stack-owned
    // BlkRecoveryLog makes them exactly-once across server restarts; the
    // restart path quiesces in-flight disk DMA before the replacement
    // server attaches; each guest's uk-blk xenbus connection records the
    // recovery phases.
    bool crash_recovery = false;
    // E21 L4 fast-path IPC — default off, so every pre-E21 charge sequence
    // is byte-identical. On: short register-only Calls (including the OS
    // servers' syscall redirection) take the Liedtke fast path; everything
    // else falls back to the slow path unchanged.
    bool ipc_fastpath = false;
    // E23: which members of the Liedtke family ride along when the fast
    // path is on. Defaults to the full family (reply-wait coalescing,
    // Send/Notify stubs, pager fault IPC, pinned string window);
    // FastpathFeatures::CallOnly() reproduces the E21 behaviour exactly.
    ukern::Kernel::FastpathFeatures fastpath_features;
  };

  struct Guest {
    ukvm::DomainId os_task;
    ukvm::DomainId app_task;
    ukvm::ThreadId os_thread;
    ukvm::ThreadId app_thread;
    ukvm::ThreadId net_rx_thread;
    std::unique_ptr<minios::UkernelPort> port;
    std::unique_ptr<minios::Os> os;
    // The uk-blk connection state machine (crash recovery only; the
    // microkernel mirror of a frontend's xenbus conn).
    std::unique_ptr<XenbusConn> xenbus;
    bool booted = false;
  };

  explicit UkernelStack(Config config);
  UkernelStack() : UkernelStack(Config{}) {}

  hwsim::Machine& machine() { return machine_; }
  ukern::Kernel& kernel() { return *kernel_; }
  hwsim::Nic& nic() { return nic_; }
  hwsim::Disk& disk() { return disk_; }
  Sigma0& sigma0() { return *sigma0_; }
  UkNetServer& net_server() { return *net_server_; }
  UkBlockServer& block_server() { return *block_server_; }
  // The isolation auditor; nullptr when the config disabled it.
  ucheck::Auditor* auditor() { return auditor_.get(); }

  size_t num_guests() const { return guests_.size(); }
  Guest& guest(size_t i) { return *guests_.at(i); }
  minios::Os& guest_os(size_t i) { return *guests_.at(i)->os; }

  // Runs `fn` in the context of guest `i`'s application thread.
  ukvm::Err RunAsApp(size_t i, const std::function<void()>& fn);

  // Routes inbound wire traffic for `wire_port` to guest `i`.
  void RouteWirePort(uint16_t wire_port, size_t i);

  // --- Fault injection (experiment E5) ----------------------------------------

  ukvm::Err KillBlockServer();
  ukvm::Err KillNetServer();
  ukvm::Err KillGuest(size_t i);

  // --- Service recovery (multiserver restartability) --------------------------

  // Replaces a dead (or live) server with a fresh instance and re-points
  // every guest at it. Disk contents survive (the backing store is intact)
  // and the slice table is carried over so clients keep their slices.
  ukvm::Err RestartBlockServer();
  ukvm::Err RestartNetServer();

  // The stack-owned exactly-once write ledger (survives server restarts).
  const BlkRecoveryLog& blk_recovery_log() const { return blk_recovery_log_; }
  bool crash_recovery() const { return crash_recovery_; }

  // --- Health probes (service watchdog) ----------------------------------------
  // One request through the service's ordinary IPC interface, issued from a
  // dedicated monitor task (created lazily on first probe). kNone means the
  // service answered.
  ukvm::Err ProbeBlockService();
  ukvm::Err ProbeNetService();

  // Attaches (or replaces) a seeded fault injector on both devices. Chaos
  // benches boot the stack clean and arm the plan once steady state holds.
  void ArmFaults(const hwsim::FaultPlan& plan);
  hwsim::FaultInjector* fault_injector() { return fault_injector_.get(); }

 private:
  static constexpr uint32_t kNicIrq = 5;
  static constexpr uint32_t kDiskIrq = 6;

  std::unique_ptr<Guest> MakeGuest(const std::string& name);
  void ApplyServerPolicies();
  ukvm::Err EnsureMonitor();

  hwsim::Machine machine_;
  hwsim::Nic nic_;
  hwsim::Disk disk_;
  std::unique_ptr<hwsim::FaultInjector> fault_injector_;
  std::unique_ptr<ukern::Kernel> kernel_;
  std::unique_ptr<Sigma0> sigma0_;
  std::unique_ptr<UkNetServer> net_server_;
  std::unique_ptr<UkBlockServer> block_server_;
  std::vector<std::unique_ptr<Guest>> guests_;
  std::unordered_map<uint16_t, size_t> wire_routes_;  // re-applied on restart
  uint64_t slice_blocks_ = 8192;
  bool crash_recovery_ = false;
  BlkRecoveryLog blk_recovery_log_;
  udrv::RetryPolicy disk_retry_;
  udrv::RetryPolicy nic_retry_;
  DegradePolicy degrade_;
  ukvm::DomainId monitor_task_ = ukvm::DomainId::Invalid();
  ukvm::ThreadId monitor_thread_ = ukvm::ThreadId::Invalid();
  // Declared last: destroyed first, detaching its hooks while the kernel
  // and machine are still alive.
  std::unique_ptr<ucheck::Auditor> auditor_;
};

}  // namespace ustack

#endif  // UKVM_SRC_STACKS_UKERNEL_STACK_H_
