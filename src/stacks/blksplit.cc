#include "src/stacks/blksplit.h"

#include <cassert>

#include "src/core/log.h"

namespace ustack {

using ukvm::DomainId;
using ukvm::Err;

namespace {

constexpr hwsim::Vaddr kBlkMapBase = 0xE800'0000ull;
constexpr uint32_t kBlkMapSlots = 64;
constexpr size_t kRingCapacity = 64;

// Reports one access to a grant-shared I/O page to the race sink, if any.
// Keyed by (frame, current owner) so a recycled frame gets a fresh cell.
void RaceFrameAccess(hwsim::Machine& machine, DomainId ctx, hwsim::Frame frame, bool write,
                     const char* what) {
  hwsim::RaceSink* rs = machine.race_sink();
  if (rs == nullptr || !ctx.valid()) {
    return;
  }
  const DomainId owner = machine.memory().OwnerOf(frame);
  const uint64_t key = hwsim::RaceEdgeKey(hwsim::RaceEdgeKind::kFrame, frame,
                                          owner.valid() ? owner.value() : 0);
  if (write) {
    rs->SharedWrite(ctx, key, 0, what);
  } else {
    rs->SharedRead(ctx, key, 0, what);
  }
}

}  // namespace

// --- BlkBack ---------------------------------------------------------------------

BlkBack::BlkBack(hwsim::Machine& machine, uvmm::Hypervisor& hv, DomainId backend,
                 udrv::DiskDriver& driver, uint64_t slice_blocks, PortMux& mux)
    : machine_(machine),
      hv_(hv),
      backend_(backend),
      driver_(driver),
      slice_blocks_(slice_blocks),
      mux_(mux),
      health_(machine, "vmm.blk") {
  req_dev_name_ = machine_.reqtrace().InternName("disk.io");
}

uint32_t BlkBack::block_size() const {
  return static_cast<uint32_t>(machine_.memory().page_size() / driver_.blocks_per_page());
}

BlkChannel* BlkBack::Connect(DomainId guest) {
  auto chan = std::make_unique<BlkChannel>();
  chan->guest = guest;
  chan->ring = std::make_unique<XenRing<BlkReq, BlkResp>>(machine_, kRingCapacity);
  auto port = hv_.HcEvtchnAllocUnbound(backend_, guest);
  if (!port.ok()) {
    return nullptr;
  }
  chan->back_port = *port;
  chan->slice_base = next_slice_ * slice_blocks_;
  chan->slice_blocks = slice_blocks_;
  ++next_slice_;
  BlkChannel* raw = chan.get();
  mux_.Route(raw->back_port, [this, raw] { OnKick(*raw); });
  channels_.push_back(std::move(chan));
  return raw;
}

void BlkBack::OnKick(BlkChannel& chan) {
  if (wedged_) {
    return;  // alive but unresponsive; requests rot in the ring
  }
  while (auto req = chan.ring->PopRequest()) {
    // Adopt the guest's request so the grant work and the response stash
    // (or the device completion below) land on its DAG.
    const ukvm::ReqTraceRef req_ref = chan.ring->popped_traces().empty()
                                          ? ukvm::ReqTraceRef{}
                                          : chan.ring->popped_traces()[0];
    ukvm::ReqAdoptScope req_scope(machine_.reqtrace(), req_ref);
    Err err = Err::kNone;
    if (req->count == 0 || req->count > driver_.blocks_per_page() ||
        req->lba + req->count > chan.slice_blocks) {
      err = Err::kOutOfRange;
    } else if (req->is_write && recovery_log_ != nullptr &&
               recovery_log_->Applied(chan.guest, req->id)) {
      // Journal replay of a write that landed before the crash: answer
      // success from the ledger without touching the disk (exactly-once).
      recovery_log_->CountSuppressed();
      chan.ring->PushResponse(BlkResp{req->id, Err::kNone});
      (void)hv_.HcEvtchnSend(backend_, chan.back_port);
      continue;
    } else if (health_.ShouldFastFail()) {
      err = Err::kRetryExhausted;
    }
    hwsim::Vaddr map_va = 0;
    hwsim::Frame frame = 0;
    if (err == Err::kNone) {
      if (persistent_) {
        if (auto va = map_cache_.LookupMapping(chan.guest, req->gref)) {
          map_va = *va;
        } else {
          map_va = kBlkMapBase + (kBlkMapSlots + next_persistent_slot_++) *
                                     machine_.memory().page_size();
          err = hv_.HcGrantMap(backend_, chan.guest, req->gref, map_va, !req->is_write);
          if (err == Err::kNone) {
            map_cache_.InsertMapping(chan.guest, req->gref, map_va);
          }
        }
      } else {
        map_va = kBlkMapBase + (map_counter_++ % kBlkMapSlots) * machine_.memory().page_size();
        err = hv_.HcGrantMap(backend_, chan.guest, req->gref, map_va, !req->is_write);
      }
      if (err == Err::kNone) {
        uvmm::Domain* back_dom = hv_.FindDomain(backend_);
        const hwsim::Pte* pte = back_dom->space.Walk(map_va);
        assert(pte != nullptr && pte->present);
        frame = pte->frame;
        if (req->is_write) {
          // The disk DMA reads the guest's payload out of the mapped page.
          RaceFrameAccess(machine_, backend_, frame, /*write=*/false, "blk.payload");
        }
      }
    }
    if (err != Err::kNone) {
      chan.ring->PushResponse(BlkResp{req->id, err});
      (void)hv_.HcEvtchnSend(backend_, chan.back_port);
      continue;
    }
    const uint64_t abs_lba = chan.slice_base + req->lba;
    const uint64_t id = req->id;
    const uint32_t gref = req->gref;
    const bool is_write = req->is_write;
    BlkChannel* chan_ptr = &chan;
    const uint64_t submit_t0 = machine_.Now();
    auto done = [this, chan_ptr, id, gref, map_va, is_write, frame, req_ref,
                 submit_t0](Err status) {
      // Device completion runs in event context with no ambient request;
      // re-adopt so the disk leaf and the response stash stay causal.
      ukvm::ReqAdoptScope dev_scope(machine_.reqtrace(), req_ref);
      machine_.reqtrace().AddLeaf(req_dev_name_, ukvm::ReqNodeKind::kDevice,
                                  backend_, submit_t0, machine_.Now());
      if (status == Err::kNone) {
        health_.RecordSuccess();
        if (is_write && recovery_log_ != nullptr) {
          recovery_log_->MarkApplied(chan_ptr->guest, id);
        }
        if (!is_write) {
          // The disk DMA filled the guest's page; this completion runs in
          // device-event context, so the backend id is named explicitly.
          RaceFrameAccess(machine_, backend_, frame, /*write=*/true, "blk.payload");
        }
      } else {
        health_.RecordFailure();
      }
      if (!persistent_) {
        (void)hv_.HcGrantUnmap(backend_, chan_ptr->guest, gref, map_va);
      }
      chan_ptr->ring->PushResponse(BlkResp{id, status});
      ++served_;
      (void)hv_.HcEvtchnSend(backend_, chan_ptr->back_port);
    };
    const Err submit = req->is_write ? driver_.Write(abs_lba, req->count, frame, done)
                                     : driver_.Read(abs_lba, req->count, frame, done);
    if (submit != Err::kNone) {
      if (!persistent_) {
        (void)hv_.HcGrantUnmap(backend_, chan.guest, gref, map_va);
      }
      chan.ring->PushResponse(BlkResp{id, submit});
      (void)hv_.HcEvtchnSend(backend_, chan.back_port);
    }
  }
}

// --- BlkFront --------------------------------------------------------------------

BlkFront::BlkFront(hwsim::Machine& machine, uvmm::Hypervisor& hv, DomainId guest,
                   std::vector<uvmm::Pfn> pool, PortMux& mux)
    : machine_(machine), hv_(hv), guest_(guest), mux_(mux),
      free_pfns_(pool.begin(), pool.end()), xenbus_(machine, "blk", guest) {
  hist_blk_e2e_ = machine_.tracer().InternHistogram("blk.e2e");
  auto& rt = machine_.reqtrace();
  req_write_name_ = rt.InternName("blk.write");
  req_read_name_ = rt.InternName("blk.read");
  req_rec_detect_name_ = rt.InternName("recovery.detect");
  req_rec_reconnect_name_ = rt.InternName("recovery.reconnect");
  req_rec_replay_name_ = rt.InternName("recovery.replay");
}

BlkFront::~BlkFront() {
  StopLivenessProbe();  // a queued ProbeTick must not outlive `this`
}

Err BlkFront::ProbeBackend(uint64_t timeout_cycles) {
  if (chan_ == nullptr) {
    return Err::kWouldBlock;
  }
  const uint64_t id = next_id_++;
  const uint64_t t0 = machine_.Now();
  // Zero-block read: the backend's bounds check rejects it (kOutOfRange)
  // straight from the kick handler, before any grant work. The status is
  // irrelevant — any answer proves the backend is pumping its ring.
  if (!chan_->ring->PushRequest(BlkReq{id, /*is_write=*/false, 0, 0, 0})) {
    return Err::kBusy;
  }
  Err err = hv_.HcEvtchnSend(guest_, chan_->front_port);
  if (err != Err::kNone) {
    return err;
  }
  err = machine_.WaitUntil([&] { return completed_.contains(id) || chan_ == nullptr; },
                           timeout_cycles);
  if (completed_.contains(id)) {
    completed_.erase(id);
    return Err::kNone;
  }
  if (chan_ == nullptr) {
    return Err::kDead;  // the backend died outright mid-probe
  }
  if (err == Err::kTimedOut || err == Err::kWouldBlock) {
    // kWouldBlock: the event queue drained with no reply — the backend is
    // just as wedged as on a timeout. Mark the failure at probe-issue time
    // (the wedge predates the probe) and drive the conn to kClosing; this
    // lands in the same recovery.detect histogram as supervisor detection.
    ++probe_detections_;
    xenbus_.MarkFailure(t0);
    xenbus_.OnDetected();
    return Err::kTimedOut;
  }
  return err;
}

void BlkFront::StartLivenessProbe(uint64_t interval_cycles, uint64_t timeout_cycles) {
  StopLivenessProbe();
  if (interval_cycles == 0) {
    return;
  }
  probe_interval_ = interval_cycles;
  probe_timeout_ = timeout_cycles;
  probe_event_ = machine_.ScheduleAfter(probe_interval_, [this] { ProbeTick(); });
  probe_event_armed_ = true;
}

void BlkFront::StopLivenessProbe() {
  if (probe_event_armed_) {
    machine_.CancelEvent(probe_event_);
    probe_event_armed_ = false;
  }
  probe_interval_ = 0;
  probe_inflight_ = false;
}

void BlkFront::ProbeTick() {
  probe_event_armed_ = false;
  if (probe_interval_ == 0) {
    return;  // stopped while the tick was queued
  }
  // Judge the previous probe first.
  if (probe_inflight_) {
    if (completed_.contains(probe_id_)) {
      completed_.erase(probe_id_);
      probe_inflight_ = false;
    } else if (chan_ == nullptr) {
      probe_inflight_ = false;  // backend death already handled elsewhere
    } else if (machine_.Now() >= probe_deadline_) {
      probe_inflight_ = false;
      ++probe_detections_;
      xenbus_.MarkFailure(probe_sent_at_);
      xenbus_.OnDetected();
    }
  }
  // Issue the next one while the connection believes itself healthy.
  if (!probe_inflight_ && chan_ != nullptr && xenbus_.connected()) {
    const uint64_t id = next_id_++;
    if (chan_->ring->PushRequest(BlkReq{id, /*is_write=*/false, 0, 0, 0}) &&
        hv_.HcEvtchnSend(guest_, chan_->front_port) == Err::kNone) {
      probe_inflight_ = true;
      probe_id_ = id;
      probe_sent_at_ = machine_.Now();
      probe_deadline_ = machine_.Now() + probe_timeout_;
    }
  }
  probe_event_ = machine_.ScheduleAfter(probe_interval_, [this] { ProbeTick(); });
  probe_event_armed_ = true;
}

Err BlkFront::Connect(BlkBack& back) {
  chan_ = back.Connect(guest_);
  if (chan_ == nullptr) {
    return Err::kNoMemory;
  }
  // Cached grants name the previous backend; a reconnect (e.g. storage
  // restart) must re-grant against the new one.
  gref_cache_.Clear();
  backend_ = back.backend();
  chan_->ring->BindRaceEndpoints(guest_, backend_);
  block_size_ = back.block_size();
  capacity_ = chan_->slice_blocks;
  auto port = hv_.HcEvtchnBind(guest_, backend_, chan_->back_port);
  if (!port.ok()) {
    return port.error();
  }
  chan_->front_port = *port;
  mux_.Route(chan_->front_port, [this] { OnResponse(); });
  xenbus_.OnConnected();  // first connect only; reconnects go via Reconnect
  return Err::kNone;
}

void BlkFront::OnBackendDead(DomainId dead) {
  if (!crash_recovery_ || dead != backend_) {
    return;
  }
  xenbus_.MarkFailure(machine_.Now());
  // Dropping the channel wakes any in-flight DoRequest wait with kDead; the
  // channel object itself dies with the backend. Journaled writes stay.
  chan_ = nullptr;
}

Err BlkFront::Reconnect(BlkBack& back) {
  Err err = Connect(back);
  if (err != Err::kNone) {
    return err;
  }
  xenbus_.OnReconnected();
  // Attach the recovery phases to every journaled request's DAG: the outage
  // window [failure, detected] and the rebuild [detected, reconnected] are
  // exactly where those requests' wall-clock went (E22). The replay segment
  // is added per entry by ReplayWrite.
  const RecoveryPhases phases = xenbus_.last_phases();
  if (phases.valid()) {
    for (const auto& [id, entry] : journal_) {
      machine_.reqtrace().AddLeafTo(entry.trace, req_rec_detect_name_,
                                    ukvm::ReqNodeKind::kRecovery, guest_, phases.failure_at,
                                    phases.detected_at);
      machine_.reqtrace().AddLeafTo(entry.trace, req_rec_reconnect_name_,
                                    ukvm::ReqNodeKind::kRecovery, guest_, phases.detected_at,
                                    phases.reconnected_at);
    }
  }
  // Replay unacknowledged writes in id order with their original ids; the
  // backend's recovery log turns duplicates into success replies. A write
  // the backend answers (any status) is resolved; if the backend dies again
  // mid-replay the tail stays journaled for the next reconnect.
  uint64_t replayed = 0;
  std::vector<uint64_t> resolved;
  for (const auto& [id, entry] : journal_) {
    bool answered = false;
    (void)ReplayWrite(id, entry, answered);
    if (!answered) {
      break;
    }
    resolved.push_back(id);
    ++replayed;
  }
  for (uint64_t id : resolved) {
    journal_.erase(id);
  }
  xenbus_.OnReplayed(replayed);
  return Err::kNone;
}

Err BlkFront::ReplayWrite(uint64_t id, const JournalEntry& entry, bool& answered) {
  answered = false;
  if (chan_ == nullptr) {
    return Err::kDead;
  }
  if (free_pfns_.empty()) {
    return Err::kBusy;
  }
  // The replay re-issues the *original* request: re-adopt its trace so the
  // second staging copy and ring traversal join the same DAG, and forgive
  // the handoffs that died with the old backend (ring stash, lost upcall).
  machine_.reqtrace().ForgiveHandoffs(entry.trace);
  ukvm::ReqAdoptScope req_scope(machine_.reqtrace(), entry.trace);
  const uint64_t replay_t0 = machine_.Now();
  uvmm::Domain* dom = hv_.FindDomain(guest_);
  const uvmm::Pfn pfn = free_pfns_.front();
  free_pfns_.pop_front();
  auto mfn = dom->MfnOf(pfn);
  assert(mfn.ok());
  machine_.memory().Write(machine_.memory().FrameBase(*mfn), entry.payload);
  machine_.ChargeCopy(entry.payload.size());
  RaceFrameAccess(machine_, guest_, *mfn, /*write=*/true, "blk.payload");
  const uint64_t cache_key = uint64_t{pfn} * 2;  // writes grant read-only pages
  uint32_t gref = 0;
  bool cached_grant = false;
  if (persistent_) {
    if (auto hit = gref_cache_.LookupGrant(cache_key)) {
      gref = *hit;
      cached_grant = true;
    }
  }
  if (!cached_grant) {
    auto fresh = hv_.HcGrantAccess(guest_, backend_, pfn, /*writable=*/false);
    if (!fresh.ok()) {
      free_pfns_.push_back(pfn);
      return fresh.error();
    }
    gref = *fresh;
    if (persistent_) {
      gref_cache_.InsertGrant(cache_key, gref);
    }
  }
  chan_->ring->PushRequest(BlkReq{id, /*is_write=*/true, entry.lba, entry.count, gref});
  Err err = hv_.HcEvtchnSend(guest_, chan_->front_port);
  if (err == Err::kNone) {
    err = machine_.WaitUntil([&] { return completed_.contains(id) || chan_ == nullptr; },
                             2'000'000'000ull);
  }
  if (err == Err::kNone) {
    if (completed_.contains(id)) {
      answered = true;
      err = completed_[id];
      completed_.erase(id);
      if (err == Err::kNone) {
        ++writes_acked_ok_;
      }
    } else {
      err = Err::kDead;  // woke because the backend died again
    }
  }
  if (answered) {
    machine_.reqtrace().AddLeafTo(entry.trace, req_rec_replay_name_,
                                  ukvm::ReqNodeKind::kRecovery, guest_, replay_t0,
                                  machine_.Now());
    machine_.reqtrace().EndRequest(entry.trace);
  }
  if (!persistent_) {
    (void)hv_.HcGrantEnd(guest_, gref);
  }
  free_pfns_.push_back(pfn);
  return err;
}

void BlkFront::OnResponse() {
  if (chan_ == nullptr) {
    // Late upcall from a backend that died after OnBackendDead dropped the
    // channel (a crashed Dom0 driver can still fire queued events); the
    // ring died with it, so there is nothing to pop.
    return;
  }
  while (auto resp = chan_->ring->PopResponse()) {
    completed_[resp->id] = resp->status;
  }
}

Err BlkFront::Read(uint64_t lba, uint32_t count, std::span<uint8_t> out) {
  return DoRequest(/*is_write=*/false, lba, count, out, {});
}

Err BlkFront::Write(uint64_t lba, uint32_t count, std::span<const uint8_t> in) {
  return DoRequest(/*is_write=*/true, lba, count, {}, in);
}

Err BlkFront::DoRequest(bool is_write, uint64_t lba, uint32_t count, std::span<uint8_t> out,
                        std::span<const uint8_t> in) {
  if (chan_ == nullptr) {
    // A never-connected frontend would block; in recovery mode a null
    // channel means OnBackendDead dropped it, so report the death (the
    // channel comes back via Reconnect). Journaling is skipped either way —
    // the request never reached a ring.
    return crash_recovery_ && backend_.valid() ? Err::kDead : Err::kWouldBlock;
  }
  if (block_size_ == 0) {
    return Err::kInvalidArgument;
  }
  const auto span_size = is_write ? in.size() : out.size();
  if (span_size < uint64_t{count} * block_size_) {
    return Err::kInvalidArgument;
  }
  const uint32_t blocks_per_page =
      static_cast<uint32_t>(machine_.memory().page_size() / block_size_);
  uvmm::Domain* dom = hv_.FindDomain(guest_);

  uint32_t done = 0;
  while (done < count) {
    if (!hv_.DomainAlive(backend_)) {
      return Err::kDead;
    }
    const uint32_t chunk = std::min(count - done, blocks_per_page);
    const uint64_t bytes = uint64_t{chunk} * block_size_;
    const uint64_t chunk_t0 = machine_.Now();
    if (free_pfns_.empty()) {
      return Err::kBusy;
    }
    const uvmm::Pfn pfn = free_pfns_.front();
    free_pfns_.pop_front();
    auto mfn = dom->MfnOf(pfn);
    assert(mfn.ok());
    // One traced request per chunk: the staging copy, grant, ring stash,
    // kick, and (on reads) the payload copy-out all attribute to it.
    ukvm::ReqOriginScope req_scope(machine_.reqtrace(),
                                   is_write ? req_write_name_ : req_read_name_, guest_);

    if (is_write) {
      // Guest kernel copies the payload into the I/O page.
      machine_.memory().Write(machine_.memory().FrameBase(*mfn),
                              in.subspan(uint64_t{done} * block_size_, bytes));
      machine_.ChargeCopy(bytes);
      RaceFrameAccess(machine_, guest_, *mfn, /*write=*/true, "blk.payload");
    }
    // Persistent mode caches one grant per (pfn, direction); the backend's
    // mapping stays live, so the grant is never ended (EndGrant would see
    // kBusy anyway while the backend holds it mapped).
    const bool writable = !is_write;
    const uint64_t cache_key = uint64_t{pfn} * 2 + (writable ? 1 : 0);
    uint32_t gref = 0;
    bool cached_grant = false;
    if (persistent_) {
      if (auto hit = gref_cache_.LookupGrant(cache_key)) {
        gref = *hit;
        cached_grant = true;
      }
    }
    if (!cached_grant) {
      auto fresh = hv_.HcGrantAccess(guest_, backend_, pfn, writable);
      if (!fresh.ok()) {
        free_pfns_.push_back(pfn);
        machine_.reqtrace().AbandonRequest(req_scope.ref());
        return fresh.error();
      }
      gref = *fresh;
      if (persistent_) {
        gref_cache_.InsertGrant(cache_key, gref);
      }
    }
    const uint64_t id = next_id_++;
    if (crash_recovery_ && is_write) {
      JournalEntry& entry = journal_[id];
      entry.lba = lba + done;
      entry.count = chunk;
      const auto payload = in.subspan(uint64_t{done} * block_size_, bytes);
      entry.payload.assign(payload.begin(), payload.end());
      entry.trace = req_scope.ref();
    }
    chan_->ring->PushRequest(BlkReq{id, is_write, lba + done, chunk, gref});
    Err err = hv_.HcEvtchnSend(guest_, chan_->front_port);
    if (err == Err::kNone) {
      if (crash_recovery_) {
        // Also wake on backend death (OnBackendDead nulls the channel)
        // instead of riding out the full timeout against a corpse.
        err = machine_.WaitUntil([&] { return completed_.contains(id) || chan_ == nullptr; },
                                 2'000'000'000ull);
      } else {
        err = machine_.WaitUntil([&] { return completed_.contains(id); }, 2'000'000'000ull);
      }
    }
    bool answered = false;
    if (err == Err::kNone) {
      if (completed_.contains(id)) {
        answered = true;
        err = completed_[id];
        completed_.erase(id);
      } else {
        err = Err::kDead;  // recovery wake: the backend died under us
      }
    }
    if (crash_recovery_ && is_write) {
      if (answered) {
        // The backend replied — the write's fate is known, nothing to replay.
        journal_.erase(id);
        if (err == Err::kNone) {
          ++writes_acked_ok_;
        }
      }
      // Unanswered (death or timeout): the entry stays journaled; Reconnect
      // replays it and the recovery log keeps the disk exactly-once.
    }
    if (!persistent_) {
      (void)hv_.HcGrantEnd(guest_, gref);
    }
    if (err == Err::kNone && !is_write) {
      RaceFrameAccess(machine_, guest_, *mfn, /*write=*/false, "blk.payload");
      machine_.memory().Read(machine_.memory().FrameBase(*mfn),
                             out.subspan(uint64_t{done} * block_size_, bytes));
      machine_.ChargeCopy(bytes);
    }
    if (err == Err::kNone) {
      machine_.reqtrace().EndRequest(req_scope.ref());
    } else if (!(crash_recovery_ && is_write && !answered)) {
      // Journaled-unanswered writes stay live: Reconnect's replay resolves
      // them and their DAG gains the recovery-phase leaves.
      machine_.reqtrace().AbandonRequest(req_scope.ref());
    }
    free_pfns_.push_back(pfn);
    if (err != Err::kNone) {
      return err;
    }
    machine_.tracer().RecordLatency(hist_blk_e2e_, machine_.Now() - chunk_t0);
    done += chunk;
  }
  return Err::kNone;
}

}  // namespace ustack
