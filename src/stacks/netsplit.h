// The split network driver: netfront (guest) and netback (driver domain).
//
// This is the I/O architecture of §3.2: "Xen uses a separate virtual
// machine (called Dom0) to encapsulate legacy device drivers. Hence, any
// I/O operation implies at least one round-trip communication between the
// guest VM and Dom0." Transmit uses grant mapping (zero-copy); receive
// supports both of Xen 2.x's modes:
//   kPageFlip  — the guest advertises transfer slots and received packets
//                are flipped into it (fixed cost per packet, the mechanism
//                behind Cherkasova & Gardner's Dom0-CPU ∝ #flips finding);
//   kGrantCopy — the backend grant-copies payloads into guest buffers
//                (cost proportional to bytes).

#ifndef UKVM_SRC_STACKS_NETSPLIT_H_
#define UKVM_SRC_STACKS_NETSPLIT_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/core/error.h"
#include "src/drivers/nic_driver.h"
#include "src/hw/machine.h"
#include "src/os/arch_if.h"
#include "src/stacks/port_mux.h"
#include "src/stacks/watchdog.h"
#include "src/stacks/xenbus.h"
#include "src/stacks/xenring.h"
#include "src/vmm/grant_table.h"
#include "src/vmm/hypervisor.h"

namespace ustack {

enum class RxMode { kPageFlip, kGrantCopy };

const char* RxModeName(RxMode mode);

struct NetTxReq {
  uint32_t gref = 0;
  uint32_t len = 0;
};
struct NetTxResp {
  uint32_t gref = 0;
  ukvm::Err status = ukvm::Err::kNone;
};
struct NetRxReq {
  uint32_t ref = 0;   // transfer slot (flip) or writable access grant (copy)
  uvmm::Pfn pfn = 0;  // the guest page behind it
};
struct NetRxResp {
  uint32_t ref = 0;
  uvmm::Pfn pfn = 0;
  uint32_t len = 0;
  ukvm::Err status = ukvm::Err::kNone;
};

// One frontend/backend connection.
struct NetChannel {
  ukvm::DomainId guest;
  std::unique_ptr<XenRing<NetTxReq, NetTxResp>> tx_ring;
  std::unique_ptr<XenRing<NetRxReq, NetRxResp>> rx_ring;
  uint32_t back_tx_port = 0;  // backend-side ports (guest binds against them)
  uint32_t back_rx_port = 0;
  uint32_t front_tx_port = 0;  // guest-side ports (filled in by the frontend)
  uint32_t front_rx_port = 0;
};

class NetBack {
 public:
  // `mux` is the backend domain's upcall demultiplexer; NetBack registers
  // its ports there. The stack must point the NIC driver's rx callback at
  // OnPacketReceived.
  NetBack(hwsim::Machine& machine, uvmm::Hypervisor& hv, ukvm::DomainId backend,
          udrv::NicDriver& driver, RxMode mode, PortMux& mux);

  // Control plane ("xenstore"): sets up rings and backend event ports for
  // `guest`. The frontend completes the handshake via NetFront::Connect.
  NetChannel* Connect(ukvm::DomainId guest);

  // Routes inbound wire packets addressed to `wire_port` to `guest`.
  void RoutePort(uint16_t wire_port, ukvm::DomainId guest);

  // The NIC driver's rx callback (runs in the backend domain). With an rx
  // batch > 1 the packet is staged instead of delivered; FlushRx pushes a
  // whole burst through one multicall per destination channel.
  void OnPacketReceived(hwsim::Frame frame, uint32_t len);

  // Batch boundary: deliver every staged packet now. Wired as the NIC
  // driver's batch-drain hook so a poll round's worth of packets becomes
  // one flush. A batch > 1 also requires the driver's deferred-repost mode
  // (the backend returns each frame via RepostRx after the flip/copy).
  void FlushRx();
  void SetRxBatch(size_t batch);

  // Persistent-grant mode (a real Xen protocol extension): granted tx pages
  // stay mapped in the backend across packets, keyed by (guest, gref). Both
  // ends must agree — enable it on NetFront too, or EndGrant returns kBusy.
  void SetPersistentGrants(bool on) { persistent_ = on; }

  // Circuit breaker: persistent transmit failures make the backend answer
  // tx requests with kRetryExhausted instead of wedging against the device.
  void SetDegradePolicy(const DegradePolicy& policy) { health_.SetPolicy(policy); }
  const ServiceHealth& health() const { return health_; }

  RxMode mode() const { return mode_; }
  ukvm::DomainId backend() const { return backend_; }
  uint64_t tx_packets() const { return tx_packets_; }
  uint64_t rx_delivered() const { return rx_delivered_; }
  uint64_t rx_dropped() const { return rx_dropped_; }
  uint64_t rx_flushes() const { return rx_flushes_; }
  size_t rx_staged() const { return rx_staged_.size(); }
  const uvmm::GrantCache& tx_map_cache() const { return tx_map_cache_; }

 private:
  struct StagedRx {
    hwsim::Frame frame = 0;
    uint32_t len = 0;
    uint64_t arrived = 0;  // Now() at staging, for the rx-backlog histogram
    ukvm::ReqTraceRef trace;  // E22: the rx request minted at arrival
  };

  void DeliverOne(hwsim::Frame frame, uint32_t len);
  void OnTxKick(NetChannel& chan);
  NetChannel* ChannelFor(std::span<const uint8_t> packet);

  hwsim::Machine& machine_;
  uvmm::Hypervisor& hv_;
  ukvm::DomainId backend_;
  udrv::NicDriver& driver_;
  RxMode mode_;
  PortMux& mux_;
  std::vector<std::unique_ptr<NetChannel>> channels_;
  std::unordered_map<uint16_t, NetChannel*> wire_routes_;
  ServiceHealth health_;
  size_t rx_batch_ = 1;
  bool persistent_ = false;
  std::vector<StagedRx> rx_staged_;
  uvmm::GrantCache tx_map_cache_;   // (guest, gref) -> backend map va
  uint32_t next_persistent_slot_ = 0;
  uint64_t tx_packets_ = 0;
  uint64_t rx_delivered_ = 0;
  uint64_t rx_dropped_ = 0;
  uint64_t rx_flushes_ = 0;
  uint32_t hist_rx_backlog_ = 0;  // "net.rx.backlog": staging -> delivery cycles
  // E22 interned request-trace names.
  uint32_t req_rx_name_ = 0;     // "net.rx" origin
  uint32_t req_flush_name_ = 0;  // "net.rx.flush" shared multicall span
  uint32_t req_dev_name_ = 0;    // "nic.send" device leaf
};

class NetFront : public minios::NetDevice {
 public:
  // `pool` are guest pfns dedicated to network I/O (tx staging + rx slots);
  // `mux` is the guest's upcall demultiplexer.
  NetFront(hwsim::Machine& machine, uvmm::Hypervisor& hv, ukvm::DomainId guest,
           std::vector<uvmm::Pfn> pool, PortMux& mux);

  // Completes the split-driver handshake and posts initial rx slots.
  ukvm::Err Connect(NetBack& back);

  // --- minios::NetDevice ------------------------------------------------------

  ukvm::Err Send(std::span<const uint8_t> packet) override;
  void SetRecvHandler(RecvHandler handler) override { handler_ = std::move(handler); }
  uint32_t mtu() const override { return 1514; }

  // An io batch > 1 makes OnRxResponse drain the whole ring per upcall and
  // re-advertise all consumed slots under one multicall.
  void SetIoBatch(size_t batch) { io_batch_ = batch; }

  // Persistent-grant mode: tx staging pages keep their access grant across
  // sends (pfn -> gref cache, no HcGrantEnd); in grant-copy rx the writable
  // slot grant is simply reused, so steady state posts slots with zero
  // hypercalls. Must match the backend's setting.
  void SetPersistentGrants(bool on) { persistent_ = on; }

  // --- Crash recovery (E19) -------------------------------------------------

  // Off by default (byte-identical). Network recovery is drop-and-
  // retransmit: packets lost with the backend are *counted*, never
  // replayed — upper layers own retransmission, as on a real NIC.
  void SetCrashRecovery(bool on) { crash_recovery_ = on; }

  // The backend domain died: reclaim every pfn parked in tx grants or
  // advertised rx slots back into the free pool and drop the stale channel.
  void OnBackendDead(ukvm::DomainId dead);

  // Rebuilds rings, event channels, grants, and rx slots against a
  // restarted backend.
  ukvm::Err Reconnect(NetBack& back);

  XenbusConn& xenbus() { return xenbus_; }
  uint64_t tx_dropped_on_crash() const { return tx_dropped_on_crash_; }

  // Rx-side crash accounting (the receive twin of tx_dropped_on_crash):
  // packets whose response was in the ring when the backend died are
  // *recovered* (their payload already landed in guest memory — the
  // exactly-once read-back), not dropped; only undeliverable responses
  // still count as dropped.
  uint64_t rx_recovered_on_crash() const { return rx_recovered_on_crash_; }
  uint64_t rx_dropped_on_crash() const { return rx_dropped_on_crash_; }
  // Advertised-but-unconsumed rx slots journaled at backend death and
  // re-advertised exactly once at Reconnect (the rx mirror of the blk
  // write journal).
  uint64_t rx_slots_replayed() const { return rx_slots_replayed_; }
  size_t rx_slot_journal_depth() const { return rx_slot_journal_.size(); }

  // The guest-side event-channel port rx upcalls arrive on (tests use this
  // to pin crash interleavings by intercepting the upcall).
  uint32_t front_rx_port() const;

  uint64_t tx_sent() const { return tx_sent_; }
  uint64_t rx_received() const { return rx_received_; }
  const uvmm::GrantCache& tx_gref_cache() const { return tx_gref_cache_; }

 private:
  void PostRxSlot(uvmm::Pfn pfn, bool kick);
  void OnTxResponse();
  void OnRxResponse();
  // Delivers one rx response's payload to the guest network stack; returns
  // false when the payload cannot be reached (error status, bad pfn).
  bool DeliverRxPayload(uvmm::Domain* dom, uint32_t pfn, uint32_t len, ukvm::Err status);
  void ForgetOutstandingRxSlot(uvmm::Pfn pfn);

  hwsim::Machine& machine_;
  uvmm::Hypervisor& hv_;
  ukvm::DomainId guest_;
  RxMode mode_ = RxMode::kPageFlip;
  PortMux& mux_;
  NetChannel* chan_ = nullptr;
  ukvm::DomainId backend_ = ukvm::DomainId::Invalid();
  struct TxGrant {
    uvmm::Pfn pfn = 0;
    uint64_t t0 = 0;  // Now() at Send, for the tx end-to-end histogram
    ukvm::ReqTraceRef trace;  // E22: the tx request minted at Send
  };

  std::deque<uvmm::Pfn> free_pfns_;
  std::vector<uvmm::Pfn> pool_;  // the full I/O pool, for reclamation on crash
  std::unordered_map<uint32_t, TxGrant> tx_grants_;  // gref -> staging pfn + t0
  RecvHandler handler_;
  bool crash_recovery_ = false;
  XenbusConn xenbus_;
  uint64_t tx_dropped_on_crash_ = 0;  // in-flight tx packets lost with a backend
  // Rx-slot replay state (E21 satellite of the E19 exactly-once work).
  std::deque<uvmm::Pfn> rx_outstanding_;    // slots currently advertised
  std::vector<uvmm::Pfn> rx_slot_journal_;  // captured at death, replayed once
  uint64_t rx_recovered_on_crash_ = 0;
  uint64_t rx_dropped_on_crash_ = 0;
  uint64_t rx_slots_replayed_ = 0;
  size_t io_batch_ = 1;
  bool persistent_ = false;
  uvmm::GrantCache tx_gref_cache_;  // staging pfn -> gref
  uint64_t tx_sent_ = 0;
  uint64_t rx_received_ = 0;
  uint32_t hist_tx_e2e_ = 0;  // "net.tx.e2e": Send -> tx response cycles
  uint32_t req_tx_name_ = 0;  // E22 "net.tx" origin name
};

}  // namespace ustack

#endif  // UKVM_SRC_STACKS_NETSPLIT_H_
