// Demultiplexes a domain's single event-channel upcall onto per-port
// handlers (what a guest kernel's evtchn dispatch loop does).

#ifndef UKVM_SRC_STACKS_PORT_MUX_H_
#define UKVM_SRC_STACKS_PORT_MUX_H_

#include <cstdint>
#include <functional>
#include <unordered_map>

namespace ustack {

class PortMux {
 public:
  void Route(uint32_t port, std::function<void()> handler) {
    routes_[port] = std::move(handler);
  }

  void Dispatch(uint32_t port) {
    auto it = routes_.find(port);
    if (it != routes_.end() && it->second) {
      it->second();
    }
  }

  // Adapter usable as a Domain's evtchn_upcall.
  std::function<void(uint32_t)> AsUpcall() {
    return [this](uint32_t port) { Dispatch(port); };
  }

 private:
  std::unordered_map<uint32_t, std::function<void()>> routes_;
};

}  // namespace ustack

#endif  // UKVM_SRC_STACKS_PORT_MUX_H_
