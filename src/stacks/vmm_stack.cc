#include "src/stacks/vmm_stack.h"

#include <array>
#include <cassert>
#include <vector>

#include "src/core/log.h"

namespace ustack {

using ukvm::Err;

VmmStack::VmmStack(Config config)
    : machine_(config.platform, config.memory_bytes, config.num_vcpus),
      nic_(machine_, ukvm::IrqLine(kNicIrq), config.nic),
      disk_(machine_, ukvm::IrqLine(kDiskIrq), config.disk) {
  if (config.trace.enabled) {
    machine_.EnableTracing(config.trace);
  }
  if (config.request_trace.enabled) {
    machine_.EnableRequestTracing(config.request_trace);
  }
  disk_retry_ = config.disk_retry;
  nic_retry_ = config.nic_retry;
  degrade_ = config.degrade;
  if (config.faults.any_enabled()) {
    ArmFaults(config.faults);
  }
  hv_ = std::make_unique<uvmm::Hypervisor>(machine_);
  machine_.tracer().RegisterDomain(hv_->vmm_domain(), "xen");
  crash_recovery_ = config.crash_recovery;
  if (crash_recovery_) {
    hv_->SetCrashRecovery(true);
  }

  // --- Dom0: the privileged driver domain -----------------------------------
  auto dom0 = hv_->CreateDomain("Dom0", config.dom0_pages, /*privileged=*/true);
  assert(dom0.ok());
  dom0_ = *dom0;
  machine_.tracer().RegisterDomain(dom0_, "Dom0");
  dom0_mux_ = std::make_unique<PortMux>();
  Err err = hv_->HcSetUpcall(dom0_, dom0_mux_->AsUpcall());
  assert(err == Err::kNone);

  // The NIC driver + netback live in Dom0, or in a dedicated driver domain
  // when disaggregated (the Xen "driver domain" arrangement — structurally
  // the microkernel's user-level driver server).
  if (config.net_driver_domain) {
    auto nd = hv_->CreateDomain("NetDriverVM", config.net_domain_pages, /*privileged=*/true);
    assert(nd.ok());
    net_dom_ = *nd;
    machine_.tracer().RegisterDomain(net_dom_, "NetDriverVM");
    net_mux_ = std::make_unique<PortMux>();
    err = hv_->HcSetUpcall(net_dom_, net_mux_->AsUpcall());
    assert(err == Err::kNone);
  } else {
    net_dom_ = dom0_;
  }
  PortMux& net_mux = config.net_driver_domain ? *net_mux_ : *dom0_mux_;
  {
    uvmm::Domain* nd = hv_->FindDomain(net_dom_);
    std::vector<hwsim::Frame> pool;
    for (uvmm::Pfn pfn = 0; pfn < 64; ++pfn) {
      pool.push_back(nd->p2m[pfn]);
    }
    nic_driver_ = std::make_unique<udrv::NicDriver>(machine_, nic_, std::move(pool));
    nic_driver_->SetRetryPolicy(nic_retry_);
  }
  netback_ = std::make_unique<NetBack>(machine_, *hv_, net_dom_, *nic_driver_, config.rx_mode,
                                       net_mux);
  netback_->SetDegradePolicy(degrade_);
  nic_driver_->SetRxCallback(
      [this](hwsim::Frame frame, uint32_t len) { netback_->OnPacketReceived(frame, len); });
  if (config.io_batch > 1) {
    // Batched datapath: NAPI-style polled drains on the NIC driver, with the
    // netback's flush as the per-round batch boundary (deferred-repost mode).
    // Poll rounds are timer events; re-enter the driver domain's kernel
    // context so their cycles are charged like softirq work.
    netback_->SetRxBatch(config.io_batch);
    nic_driver_->SetBatchDrainHook([this] { netback_->FlushRx(); });
    nic_driver_->SetDeferredContext([this](const std::function<void()>& fn) {
      (void)hv_->RunAsDomainKernel(net_dom_, fn);
    });
    nic_driver_->SetInterruptMitigation(true);
  }
  if (config.persistent_grants) {
    netback_->SetPersistentGrants(true);
  }

  // Route the NIC's hardware interrupt into the driver domain as a virtual IRQ.
  auto nic_port = hv_->HcEvtchnAllocUnbound(net_dom_, net_dom_);
  assert(nic_port.ok());
  net_mux.Route(*nic_port, [this] { nic_driver_->OnInterrupt(); });
  err = hv_->HcBindIrq(net_dom_, nic_.line(), *nic_port);
  assert(err == Err::kNone);

  // --- Storage backend: Dom0 or a Parallax-style storage VM ------------------
  parallax_ = config.parallax_storage;
  persistent_grants_ = config.persistent_grants;
  storage_pages_ = config.storage_pages;
  slice_blocks_ = config.slice_blocks;
  net_driver_domain_ = config.net_driver_domain;
  net_domain_pages_ = config.net_domain_pages;
  rx_mode_ = config.rx_mode;
  io_batch_ = config.io_batch;
  if (config.parallax_storage) {
    auto sd = hv_->CreateDomain("ParallaxVM", config.storage_pages, /*privileged=*/true);
    assert(sd.ok());
    storage_dom_ = *sd;
    machine_.tracer().RegisterDomain(storage_dom_, "ParallaxVM");
    storage_mux_ = std::make_unique<PortMux>();
    err = hv_->HcSetUpcall(storage_dom_, storage_mux_->AsUpcall());
    assert(err == Err::kNone);
  } else {
    storage_dom_ = dom0_;
  }
  PortMux& storage_mux = config.parallax_storage ? *storage_mux_ : *dom0_mux_;
  disk_driver_ = std::make_unique<udrv::DiskDriver>(machine_, disk_);
  disk_driver_->SetRetryPolicy(disk_retry_);
  blkback_ = std::make_unique<BlkBack>(machine_, *hv_, storage_dom_, *disk_driver_,
                                       config.slice_blocks, storage_mux);
  blkback_->SetDegradePolicy(degrade_);
  if (config.persistent_grants) {
    blkback_->SetPersistentGrants(true);
  }
  if (crash_recovery_) {
    blkback_->SetRecoveryLog(&blk_recovery_log_);
  }
  auto disk_port = hv_->HcEvtchnAllocUnbound(storage_dom_, storage_dom_);
  assert(disk_port.ok());
  storage_mux.Route(*disk_port, [this] { disk_driver_->OnInterrupt(); });
  err = hv_->HcBindIrq(storage_dom_, disk_.line(), *disk_port);
  assert(err == Err::kNone);
  (void)err;

  // Interrupts must be live before guests boot: their filesystem formatting
  // already goes through blkfront/blkback and the disk's completion IRQ.
  machine_.cpu().SetInterruptsEnabled(true);

  // --- Guests -----------------------------------------------------------------
  for (uint32_t i = 0; i < config.num_guests; ++i) {
    guests_.push_back(MakeGuest("DomU" + std::to_string(i + 1), config));
  }

  if (config.audit || config.race_detect) {
    ucheck::Auditor::Options opts;
    opts.race_detect = config.race_detect;
    auditor_ = std::make_unique<ucheck::Auditor>(machine_, opts);
    auditor_->AttachVmm(*hv_);
  }
}

void VmmStack::ArmFaults(const hwsim::FaultPlan& plan) {
  fault_injector_ = std::make_unique<hwsim::FaultInjector>(machine_, plan);
  nic_.SetFaultInjector(fault_injector_.get());
  disk_.SetFaultInjector(fault_injector_.get());
}

std::unique_ptr<VmmStack::Guest> VmmStack::MakeGuest(const std::string& name,
                                                     const Config& config) {
  auto g = std::make_unique<Guest>();
  auto dom = hv_->CreateDomain(name, config.guest_pages, /*privileged=*/false);
  assert(dom.ok());
  g->domain = *dom;
  machine_.tracer().RegisterDomain(g->domain, name);
  g->mux = std::make_unique<PortMux>();
  Err err = hv_->HcSetUpcall(g->domain, g->mux->AsUpcall());
  assert(err == Err::kNone);

  // Dedicated pfn pools at the top of the guest's pseudo-physical memory.
  std::vector<uvmm::Pfn> net_pool;
  std::vector<uvmm::Pfn> blk_pool;
  for (uvmm::Pfn pfn = config.guest_pages - 64; pfn < config.guest_pages - 8; ++pfn) {
    net_pool.push_back(pfn);
  }
  for (uvmm::Pfn pfn = config.guest_pages - 8; pfn < config.guest_pages; ++pfn) {
    blk_pool.push_back(pfn);
  }

  g->netfront = std::make_unique<NetFront>(machine_, *hv_, g->domain, net_pool, *g->mux);
  if (config.io_batch > 1) {
    g->netfront->SetIoBatch(config.io_batch);
  }
  if (config.persistent_grants) {
    g->netfront->SetPersistentGrants(true);
  }
  if (crash_recovery_) {
    g->netfront->SetCrashRecovery(true);
  }
  err = g->netfront->Connect(*netback_);
  assert(err == Err::kNone);
  g->blkfront = std::make_unique<BlkFront>(machine_, *hv_, g->domain, blk_pool, *g->mux);
  if (config.persistent_grants) {
    g->blkfront->SetPersistentGrants(true);
  }
  if (crash_recovery_) {
    g->blkfront->SetCrashRecovery(true);
    // Backend death reaches the guest as a kDomainDead upcall ("xenbus
    // watch fired"); each frontend decides whether the corpse was its peer.
    Guest* raw = g.get();
    err = hv_->HcSetDomainDeadHandler(g->domain, [raw](ukvm::DomainId dead) {
      raw->netfront->OnBackendDead(dead);
      raw->blkfront->OnBackendDead(dead);
    });
    assert(err == Err::kNone);
  }
  err = g->blkfront->Connect(*blkback_);
  assert(err == Err::kNone);
  (void)err;

  g->port = std::make_unique<minios::VmmPort>(machine_, *hv_, g->domain, g->netfront.get(),
                                              g->blkfront.get(), config.request_fast_syscall);
  g->os = std::make_unique<minios::Os>(machine_, *g->port, name);
  ukvm::ProfScope boot_frame(machine_.tracer(),
                             machine_.tracer().profiler().InternFrame("guest.boot"));
  const Err boot = g->os->Boot(/*format_disk=*/true);
  g->booted = boot == Err::kNone;
  if (!g->booted) {
    UKVM_WARN("vmm stack: guest %s failed to boot: %s", name.c_str(), ukvm::ErrName(boot));
  }
  return g;
}

Err VmmStack::RunAsApp(size_t i, const std::function<void()>& fn) {
  ukvm::ProfScope app_frame(machine_.tracer(),
                            machine_.tracer().profiler().InternFrame("guest.app"));
  return hv_->RunGuestUser(guest(i).domain, fn);
}

void VmmStack::RouteWirePort(uint16_t wire_port, size_t i) {
  netback_->RoutePort(wire_port, guest(i).domain);
  // Remember the route so a net-domain restart can replay it into the
  // replacement netback (latest registration wins, as in the live table).
  std::erase_if(wire_routes_, [wire_port](const auto& r) { return r.first == wire_port; });
  wire_routes_.emplace_back(wire_port, i);
}

Err VmmStack::KillStorage() { return hv_->DestroyDomain(storage_dom_); }

Err VmmStack::CrashStorageService() {
  if (parallax_) {
    return KillStorage();
  }
  if (!crash_recovery_) {
    return Err::kNotSupported;  // a dom0 driver crash has no legacy analogue
  }
  if (!hv_->DomainAlive(dom0_)) {
    return Err::kDead;
  }
  // The blkback inside Dom0 stops answering; the old instance stays
  // allocated until RestartStorage replaces it (mirroring a crashed driver
  // process whose DMA the restart path must still quiesce). Detaching the
  // frontends wakes their in-flight waits with kDead.
  for (auto& g : guests_) {
    if (hv_->DomainAlive(g->domain)) {
      g->blkfront->OnBackendDead(storage_dom_);
    }
  }
  return Err::kNone;
}

Err VmmStack::KillNetDomain() { return hv_->DestroyDomain(net_dom_); }

Err VmmStack::KillDom0() { return hv_->DestroyDomain(dom0_); }

Err VmmStack::KillGuest(size_t i) { return hv_->DestroyDomain(guest(i).domain); }

Err VmmStack::RestartStorage() {
  if (crash_recovery_) {
    // The supervisor has decided the backend is gone: advance each live
    // frontend's xenbus machine and quiesce the disk's completion queue so
    // no in-flight DMA queued by the dead backend lands after teardown.
    for (auto& g : guests_) {
      if (hv_->DomainAlive(g->domain)) {
        g->blkfront->xenbus().OnDetected();
      }
    }
    machine_.counters().AddNamed("recovery.disk.dma_cancelled", disk_.CancelPending());
  }
  if (parallax_) {
    auto sd = hv_->CreateDomain("ParallaxVM-2", storage_pages_, /*privileged=*/true);
    if (!sd.ok()) {
      return sd.error();
    }
    storage_dom_ = *sd;
    machine_.tracer().RegisterDomain(storage_dom_, "ParallaxVM-2");
    storage_mux_ = std::make_unique<PortMux>();
    UKVM_TRY(hv_->HcSetUpcall(storage_dom_, storage_mux_->AsUpcall()));
  } else if (!hv_->DomainAlive(dom0_)) {
    return Err::kDead;  // Dom0-hosted storage cannot outlive Dom0
  }
  PortMux& storage_mux = parallax_ ? *storage_mux_ : *dom0_mux_;
  disk_driver_ = std::make_unique<udrv::DiskDriver>(machine_, disk_);
  disk_driver_->SetRetryPolicy(disk_retry_);
  blkback_ = std::make_unique<BlkBack>(machine_, *hv_, storage_dom_, *disk_driver_,
                                       slice_blocks_, storage_mux);
  blkback_->SetDegradePolicy(degrade_);
  if (persistent_grants_) {
    blkback_->SetPersistentGrants(true);
  }
  if (crash_recovery_) {
    // The exactly-once ledger outlives the backend — the replacement picks
    // it up and suppresses replayed writes that already landed.
    blkback_->SetRecoveryLog(&blk_recovery_log_);
    for (auto& g : guests_) {
      if (hv_->DomainAlive(g->domain)) {
        g->blkfront->xenbus().OnReclaimed();
      }
    }
  }
  auto disk_port = hv_->HcEvtchnAllocUnbound(storage_dom_, storage_dom_);
  if (!disk_port.ok()) {
    return disk_port.error();
  }
  storage_mux.Route(*disk_port, [this] { disk_driver_->OnInterrupt(); });
  UKVM_TRY(hv_->HcBindIrq(storage_dom_, disk_.line(), *disk_port));
  for (auto& g : guests_) {
    if (hv_->DomainAlive(g->domain)) {
      if (crash_recovery_) {
        UKVM_TRY(g->blkfront->Reconnect(*blkback_));
      } else {
        UKVM_TRY(g->blkfront->Connect(*blkback_));
      }
    }
  }
  return Err::kNone;
}

Err VmmStack::RestartNetDomain() {
  if (crash_recovery_) {
    for (auto& g : guests_) {
      if (hv_->DomainAlive(g->domain)) {
        g->netfront->xenbus().OnDetected();
      }
    }
    // Quiesce: forget posted rx buffers (a late arrival must not DMA into
    // pages the dead driver posted) and orphan in-flight completions.
    machine_.counters().AddNamed("recovery.nic.rx_forgotten", nic_.CancelPosted());
  }
  if (net_driver_domain_) {
    auto nd = hv_->CreateDomain("NetDriverVM-2", net_domain_pages_, /*privileged=*/true);
    if (!nd.ok()) {
      return nd.error();
    }
    net_dom_ = *nd;
    machine_.tracer().RegisterDomain(net_dom_, "NetDriverVM-2");
    net_mux_ = std::make_unique<PortMux>();
    UKVM_TRY(hv_->HcSetUpcall(net_dom_, net_mux_->AsUpcall()));
  } else if (!hv_->DomainAlive(dom0_)) {
    return Err::kDead;  // Dom0-hosted networking cannot outlive Dom0
  }
  PortMux& net_mux = net_driver_domain_ ? *net_mux_ : *dom0_mux_;
  {
    uvmm::Domain* nd = hv_->FindDomain(net_dom_);
    std::vector<hwsim::Frame> pool;
    for (uvmm::Pfn pfn = 0; pfn < 64; ++pfn) {
      pool.push_back(nd->p2m[pfn]);
    }
    nic_driver_ = std::make_unique<udrv::NicDriver>(machine_, nic_, std::move(pool));
    nic_driver_->SetRetryPolicy(nic_retry_);
  }
  netback_ = std::make_unique<NetBack>(machine_, *hv_, net_dom_, *nic_driver_, rx_mode_,
                                       net_mux);
  netback_->SetDegradePolicy(degrade_);
  nic_driver_->SetRxCallback(
      [this](hwsim::Frame frame, uint32_t len) { netback_->OnPacketReceived(frame, len); });
  if (io_batch_ > 1) {
    netback_->SetRxBatch(io_batch_);
    nic_driver_->SetBatchDrainHook([this] { netback_->FlushRx(); });
    nic_driver_->SetDeferredContext([this](const std::function<void()>& fn) {
      (void)hv_->RunAsDomainKernel(net_dom_, fn);
    });
    nic_driver_->SetInterruptMitigation(true);
  }
  if (persistent_grants_) {
    netback_->SetPersistentGrants(true);
  }
  auto nic_port = hv_->HcEvtchnAllocUnbound(net_dom_, net_dom_);
  if (!nic_port.ok()) {
    return nic_port.error();
  }
  net_mux.Route(*nic_port, [this] { nic_driver_->OnInterrupt(); });
  UKVM_TRY(hv_->HcBindIrq(net_dom_, nic_.line(), *nic_port));
  if (crash_recovery_) {
    for (auto& g : guests_) {
      if (hv_->DomainAlive(g->domain)) {
        g->netfront->xenbus().OnReclaimed();
      }
    }
  }
  for (auto& g : guests_) {
    if (hv_->DomainAlive(g->domain)) {
      if (crash_recovery_) {
        UKVM_TRY(g->netfront->Reconnect(*netback_));
      } else {
        UKVM_TRY(g->netfront->Connect(*netback_));
      }
    }
  }
  // The routing table died with the old netback; replay the recorded routes.
  for (const auto& [wire_port, idx] : wire_routes_) {
    if (idx < guests_.size() && hv_->DomainAlive(guests_[idx]->domain)) {
      netback_->RoutePort(wire_port, guests_[idx]->domain);
    }
  }
  return Err::kNone;
}

// --- Health probes ---------------------------------------------------------------

Err VmmStack::ProbeStorageService() {
  for (auto& g : guests_) {
    if (!hv_->DomainAlive(g->domain)) {
      continue;
    }
    // One real 1-block read through the split-driver ring — the same
    // round-trip any guest file I/O takes.
    std::vector<uint8_t> buf(g->blkfront->block_size());
    return g->blkfront->Read(0, 1, buf);
  }
  return Err::kDead;  // no live guest left to probe through
}

Err VmmStack::ProbeNetService() {
  for (auto& g : guests_) {
    if (!hv_->DomainAlive(g->domain)) {
      continue;
    }
    const std::array<uint8_t, 32> probe{};
    return g->netfront->Send(probe);
  }
  return Err::kDead;
}

}  // namespace ustack
