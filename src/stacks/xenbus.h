// Xenbus-style connection state machine for split drivers (E19).
//
// Xen's real xenbus is a store-plus-watch protocol whose visible effect is a
// per-device connection state machine: frontend and backend advertise states
// (Initialising, Connected, Closing, ...) and each side reacts to the
// other's transitions. What E19 needs from it is exactly that skeleton: a
// frontend that can discover its backend died, tear down the stale shared
// state (rings, grants, event channels), wait for reclamation, rebuild the
// connection against the restarted backend, and replay unacknowledged work.
//
// XenbusConn is that skeleton, shared by netsplit and blksplit and mirrored
// by the ukernel stack's server-session reconnect. It owns no rings or
// grants itself — the drivers do — it owns the *phases* and the clock: each
// transition timestamps its segment into the recovery.* histograms so the
// E19 bench can decompose recovery latency into detection, reclamation,
// reconnect, and replay.
//
//   kInit ── OnConnected ──► kConnected ── OnDetected ──► kClosing
//      ▲                          ▲                            │
//      │                          │                       OnReclaimed
//      │                    OnReconnected                      │
//      │                          │                            ▼
//      └──────────────────────────┴──────────────────── kReconnecting
//
// The watchdog's ordinary probe/restart path drives it: MarkFailure() is
// called when the backend is killed (or at the first failed probe),
// OnDetected() when the supervisor decides the service is down, and the
// stack's RestartFn calls OnReclaimed/OnReconnected/OnReplayed as it works
// through teardown, rebind, and journal replay.

#ifndef UKVM_SRC_STACKS_XENBUS_H_
#define UKVM_SRC_STACKS_XENBUS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "src/core/ids.h"
#include "src/hw/machine.h"

namespace ustack {

// Exactly-once write ledger (E19), owned by the *stack* so it survives
// backend restarts — the moral equivalent of Parallax keeping its metadata
// in the store rather than in the (restartable) server process. The backend
// marks a (client, id) applied when the write actually hits the disk; a
// replayed duplicate is answered success without touching the device. The
// client key is a guest domain for the VMM's blkback and a client task for
// the ukernel's block server — both are DomainId-typed.
class BlkRecoveryLog {
 public:
  bool Applied(ukvm::DomainId client, uint64_t id) const {
    auto it = applied_.find(client);
    return it != applied_.end() && it->second.contains(id);
  }
  void MarkApplied(ukvm::DomainId client, uint64_t id) {
    if (applied_[client].insert(id).second) {
      ++applied_total_;
    }
  }
  void CountSuppressed() { ++suppressed_total_; }

  // Distinct (client, id) writes that reached the disk exactly once.
  uint64_t applied_total() const { return applied_total_; }
  // Replayed duplicates answered from the log instead of the device.
  uint64_t suppressed_total() const { return suppressed_total_; }

 private:
  std::unordered_map<ukvm::DomainId, std::unordered_set<uint64_t>> applied_;
  uint64_t applied_total_ = 0;
  uint64_t suppressed_total_ = 0;
};

enum class XenbusState : uint8_t {
  kInit,          // created, never connected
  kConnected,     // rings mapped, event channels bound, traffic flowing
  kClosing,       // backend death detected; stale state being torn down
  kReconnecting,  // corpse reclaimed; rebuilding against the new backend
};

const char* XenbusStateName(XenbusState state);

// Timestamps of the most recent completed recovery, captured at
// OnReconnected before the failure mark is re-armed. Drivers use it to
// attach recovery-phase leaves to the request DAGs of journaled work (E22):
// detect = [failure_at, detected_at], reclaim = [detected_at, reclaimed_at],
// reconnect = [reclaimed_at, reconnected_at].
struct RecoveryPhases {
  uint64_t failure_at = 0;
  uint64_t detected_at = 0;
  uint64_t reclaimed_at = 0;
  uint64_t reconnected_at = 0;
  bool valid() const { return reconnected_at != 0; }
};

class XenbusConn {
 public:
  // `service` names the connection in traces ("blk", "net", "uk-blk", ...);
  // `domain` is the frontend's domain for span attribution.
  XenbusConn(hwsim::Machine& machine, std::string_view service, ukvm::DomainId domain);

  XenbusConn(const XenbusConn&) = delete;
  XenbusConn& operator=(const XenbusConn&) = delete;

  // --- Transitions -----------------------------------------------------------

  // kInit -> kConnected: the first successful connect. Idempotent on an
  // already-connected conn (frontends reconnect through OnReconnected).
  void OnConnected();

  // Remembers when the backend actually failed (the kill edge, or the
  // watchdog's first failed probe). Earliest mark in a streak wins so the
  // detection segment measures the full outage, not the last retry.
  void MarkFailure(uint64_t when);

  // kConnected -> kClosing: the supervisor decided the backend is dead.
  // Records recovery.detect = Now() - failure mark and opens the recovery
  // span.
  void OnDetected();

  // kClosing -> kReconnecting: stale grants/event channels/device state for
  // the dead backend are gone. Records recovery.reclaim.
  void OnReclaimed();

  // kReconnecting -> kConnected: rings re-allocated, grants re-issued,
  // event channels rebound against the restarted backend. Records
  // recovery.reconnect and recovery.e2e, closes the recovery span.
  void OnReconnected();

  // Journal replay finished (`replayed` requests re-issued). Records
  // recovery.replay as the segment since OnReconnected.
  void OnReplayed(uint64_t replayed);

  // --- Introspection ---------------------------------------------------------

  XenbusState state() const { return state_; }
  bool connected() const { return state_ == XenbusState::kConnected; }
  uint64_t reconnects() const { return reconnects_; }
  uint64_t replayed_total() const { return replayed_total_; }
  const std::string& service() const { return service_; }
  const RecoveryPhases& last_phases() const { return last_phases_; }

 private:
  void Transition(XenbusState next);

  hwsim::Machine& machine_;
  std::string service_;
  ukvm::DomainId domain_;
  XenbusState state_ = XenbusState::kInit;

  uint64_t failure_at_ = 0;    // earliest unhandled failure mark; 0 = none
  uint64_t detected_at_ = 0;
  uint64_t reclaimed_at_ = 0;
  uint64_t reconnected_at_ = 0;
  uint64_t reconnects_ = 0;
  uint64_t replayed_total_ = 0;
  RecoveryPhases last_phases_;

  uint32_t trace_state_name_ = 0;     // instant per transition
  uint32_t trace_recovery_name_ = 0;  // span over detect..reconnect
  uint64_t recovery_span_ = 0;        // open span token; 0 = none
  uint32_t hist_detect_ = 0;
  uint32_t hist_reclaim_ = 0;
  uint32_t hist_reconnect_ = 0;
  uint32_t hist_replay_ = 0;
  uint32_t hist_e2e_ = 0;
};

}  // namespace ustack

#endif  // UKVM_SRC_STACKS_XENBUS_H_
