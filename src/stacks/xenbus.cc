#include "src/stacks/xenbus.h"

#include "src/core/metrics.h"
#include "src/core/trace.h"

namespace ustack {

const char* XenbusStateName(XenbusState state) {
  switch (state) {
    case XenbusState::kInit:
      return "init";
    case XenbusState::kConnected:
      return "connected";
    case XenbusState::kClosing:
      return "closing";
    case XenbusState::kReconnecting:
      return "reconnecting";
  }
  return "?";
}

XenbusConn::XenbusConn(hwsim::Machine& machine, std::string_view service,
                       ukvm::DomainId domain)
    : machine_(machine), service_(service), domain_(domain) {
  auto& tracer = machine_.tracer();
  trace_state_name_ = tracer.InternName("xenbus." + service_ + ".state");
  trace_recovery_name_ = tracer.InternName("xenbus." + service_ + ".recovery");
  hist_detect_ = tracer.InternHistogram("recovery.detect");
  hist_reclaim_ = tracer.InternHistogram("recovery.reclaim");
  hist_reconnect_ = tracer.InternHistogram("recovery.reconnect");
  hist_replay_ = tracer.InternHistogram("recovery.replay");
  hist_e2e_ = tracer.InternHistogram("recovery.e2e");
}

void XenbusConn::Transition(XenbusState next) {
  state_ = next;
  machine_.tracer().Instant(trace_state_name_, domain_,
                            static_cast<uint64_t>(next), reconnects_);
}

void XenbusConn::OnConnected() {
  if (state_ != XenbusState::kInit) {
    return;  // reconnects land via OnReconnected, which records the segment
  }
  Transition(XenbusState::kConnected);
}

void XenbusConn::MarkFailure(uint64_t when) {
  if (failure_at_ == 0 || when < failure_at_) {
    failure_at_ = when;
  }
}

void XenbusConn::OnDetected() {
  if (state_ != XenbusState::kConnected) {
    return;  // already mid-recovery (or never connected): keep the first clock
  }
  detected_at_ = machine_.Now();
  if (failure_at_ == 0) {
    failure_at_ = detected_at_;  // nobody marked the kill edge; detect = 0
  }
  machine_.tracer().RecordLatency(hist_detect_, detected_at_ - failure_at_);
  recovery_span_ = machine_.tracer().BeginSpan(trace_recovery_name_, domain_);
  Transition(XenbusState::kClosing);
}

void XenbusConn::OnReclaimed() {
  if (state_ != XenbusState::kClosing) {
    return;
  }
  reclaimed_at_ = machine_.Now();
  machine_.tracer().RecordLatency(hist_reclaim_, reclaimed_at_ - detected_at_);
  Transition(XenbusState::kReconnecting);
}

void XenbusConn::OnReconnected() {
  if (state_ != XenbusState::kReconnecting) {
    return;
  }
  reconnected_at_ = machine_.Now();
  ++reconnects_;
  auto& tracer = machine_.tracer();
  tracer.RecordLatency(hist_reconnect_, reconnected_at_ - reclaimed_at_);
  tracer.RecordLatency(hist_e2e_, reconnected_at_ - failure_at_);
  if (recovery_span_ != 0) {
    tracer.EndSpan(recovery_span_);
    recovery_span_ = 0;
  }
  machine_.counters().AddNamed("xenbus.reconnects");
  last_phases_ = RecoveryPhases{failure_at_, detected_at_, reclaimed_at_, reconnected_at_};
  failure_at_ = 0;
  Transition(XenbusState::kConnected);
}

void XenbusConn::OnReplayed(uint64_t replayed) {
  replayed_total_ += replayed;
  machine_.tracer().RecordLatency(hist_replay_, machine_.Now() - reconnected_at_);
  machine_.counters().AddNamed("xenbus.replayed", replayed);
}

}  // namespace ustack
