// Shared-memory descriptor rings, as used between Xen split-driver
// frontends and backends.
//
// A real ring lives in a shared page and is accessed with plain loads and
// stores; here the structure is a C++ queue and the cost model charges the
// descriptor copies. Notification still travels out-of-band via event
// channels — the ring is only the data plane.

#ifndef UKVM_SRC_STACKS_XENRING_H_
#define UKVM_SRC_STACKS_XENRING_H_

#include <cstdint>
#include <deque>
#include <optional>

#include "src/hw/machine.h"

namespace ustack {

template <typename Req, typename Resp>
class XenRing {
 public:
  XenRing(hwsim::Machine& machine, size_t capacity) : machine_(machine), capacity_(capacity) {}

  // Frontend side.
  bool PushRequest(const Req& req) {
    if (requests_.size() >= capacity_) {
      return false;
    }
    machine_.ChargeCopy(sizeof(Req));
    requests_.push_back(req);
    return true;
  }
  std::optional<Resp> PopResponse() {
    if (responses_.empty()) {
      return std::nullopt;
    }
    machine_.ChargeCopy(sizeof(Resp));
    Resp resp = responses_.front();
    responses_.pop_front();
    return resp;
  }

  // Backend side.
  std::optional<Req> PopRequest() {
    if (requests_.empty()) {
      return std::nullopt;
    }
    machine_.ChargeCopy(sizeof(Req));
    Req req = requests_.front();
    requests_.pop_front();
    return req;
  }
  bool PushResponse(const Resp& resp) {
    if (responses_.size() >= capacity_) {
      return false;
    }
    machine_.ChargeCopy(sizeof(Resp));
    responses_.push_back(resp);
    return true;
  }

  size_t pending_requests() const { return requests_.size(); }
  size_t pending_responses() const { return responses_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  hwsim::Machine& machine_;
  size_t capacity_;
  std::deque<Req> requests_;
  std::deque<Resp> responses_;
};

}  // namespace ustack

#endif  // UKVM_SRC_STACKS_XENRING_H_
