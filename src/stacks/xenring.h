// Shared-memory descriptor rings, as used between Xen split-driver
// frontends and backends.
//
// A real ring lives in a shared page and is accessed with plain loads and
// stores; here the structure is a C++ queue and the cost model charges the
// descriptor copies. Notification still travels out-of-band via event
// channels — the ring is only the data plane.

#ifndef UKVM_SRC_STACKS_XENRING_H_
#define UKVM_SRC_STACKS_XENRING_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "src/hw/machine.h"

namespace ustack {

template <typename Req, typename Resp>
class XenRing {
 public:
  XenRing(hwsim::Machine& machine, size_t capacity) : machine_(machine), capacity_(capacity) {}

  // Frontend side.
  bool PushRequest(const Req& req) {
    if (requests_.size() >= capacity_) {
      return false;
    }
    machine_.ChargeCopy(sizeof(Req));
    requests_.push_back(req);
    return true;
  }
  std::optional<Resp> PopResponse() {
    if (responses_.empty()) {
      return std::nullopt;
    }
    machine_.ChargeCopy(sizeof(Resp));
    Resp resp = responses_.front();
    responses_.pop_front();
    return resp;
  }

  // Backend side.
  std::optional<Req> PopRequest() {
    if (requests_.empty()) {
      return std::nullopt;
    }
    machine_.ChargeCopy(sizeof(Req));
    Req req = requests_.front();
    requests_.pop_front();
    return req;
  }
  bool PushResponse(const Resp& resp) {
    if (responses_.size() >= capacity_) {
      return false;
    }
    machine_.ChargeCopy(sizeof(Resp));
    responses_.push_back(resp);
    return true;
  }

  // --- Batched variants -------------------------------------------------------
  // One descriptor-array copy per call instead of one per descriptor: the
  // byte volume charged is identical, but producer and consumer touch the
  // ring (and later kick/upcall) once per batch. Returns how many fit.

  size_t PushRequests(std::span<const Req> reqs) {
    const size_t n = std::min(reqs.size(), capacity_ - requests_.size());
    if (n > 0) {
      machine_.ChargeCopy(n * sizeof(Req));
      requests_.insert(requests_.end(), reqs.begin(), reqs.begin() + static_cast<ptrdiff_t>(n));
    }
    return n;
  }
  std::vector<Req> PopRequests(size_t max) {
    const size_t n = std::min(max, requests_.size());
    std::vector<Req> out;
    if (n > 0) {
      machine_.ChargeCopy(n * sizeof(Req));
      out.assign(requests_.begin(), requests_.begin() + static_cast<ptrdiff_t>(n));
      requests_.erase(requests_.begin(), requests_.begin() + static_cast<ptrdiff_t>(n));
    }
    return out;
  }
  size_t PushResponses(std::span<const Resp> resps) {
    const size_t n = std::min(resps.size(), capacity_ - responses_.size());
    if (n > 0) {
      machine_.ChargeCopy(n * sizeof(Resp));
      responses_.insert(responses_.end(), resps.begin(),
                        resps.begin() + static_cast<ptrdiff_t>(n));
    }
    return n;
  }
  std::vector<Resp> PopResponses(size_t max) {
    const size_t n = std::min(max, responses_.size());
    std::vector<Resp> out;
    if (n > 0) {
      machine_.ChargeCopy(n * sizeof(Resp));
      out.assign(responses_.begin(), responses_.begin() + static_cast<ptrdiff_t>(n));
      responses_.erase(responses_.begin(), responses_.begin() + static_cast<ptrdiff_t>(n));
    }
    return out;
  }

  size_t pending_requests() const { return requests_.size(); }
  size_t pending_responses() const { return responses_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  hwsim::Machine& machine_;
  size_t capacity_;
  std::deque<Req> requests_;
  std::deque<Resp> responses_;
};

}  // namespace ustack

#endif  // UKVM_SRC_STACKS_XENRING_H_
