// Shared-memory descriptor rings, as used between Xen split-driver
// frontends and backends.
//
// A real ring lives in a shared page and is accessed with plain loads and
// stores; here the structure is a C++ queue and the cost model charges the
// descriptor copies. Notification still travels out-of-band via event
// channels — the ring is only the data plane.
//
// When the machine has a race sink installed (E20), the ring reports the
// real protocol it models: the producer's slot stores (SharedWrite per
// descriptor), its index publish (RingPublish — the release half), and the
// consumer's index check (RingObserve — the acquire half) followed by its
// slot loads (SharedRead). Absolute produced/consumed counters per side
// stand in for the shared ring indices. BindRaceEndpoints names which
// domain plays which role — the *current* domain is wrong for completions
// that run in device-event context. SetRaceMutation seeds one protocol bug
// for the detector's self-tests.
//
// When the machine has request tracing armed (E22), every push also stashes
// the ambient request's id in the machine's shadow side-table, keyed by the
// same absolute index the race discipline uses; every pop consumes the
// stash, which appends a ring-wait queue node to the owning request's DAG
// and hands the caller its ref via popped_traces(). Batched pushes can
// carry per-slot refs (SetPushTraceRefs) because a flush serves many
// requests in one call.

#ifndef UKVM_SRC_STACKS_XENRING_H_
#define UKVM_SRC_STACKS_XENRING_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "src/hw/machine.h"

namespace ustack {

// Seeded protocol violations for the race detector's mutation self-tests.
// One-shot: the mutation applies to the next affected operation only.
enum class RingMutation : uint8_t {
  kNone = 0,
  kSkipPublish,   // producer omits one index publish -> kRingReadBeforePublish
  kEarlyPublish,  // producer publishes before the slot store -> kUnsyncedSharedAccess
};

template <typename Req, typename Resp>
class XenRing {
 public:
  XenRing(hwsim::Machine& machine, size_t capacity) : machine_(machine), capacity_(capacity) {}

  // The channel (and its in-flight slots) dies with the ring — an E19
  // backend crash, not a lost propagation point. Settle the trace
  // side-table so journaled requests replayed later still lint clean.
  ~XenRing() {
    if (ring_id_ != 0) {
      machine_.reqtrace().RingDropped(ring_id_);
    }
  }
  XenRing(const XenRing&) = delete;
  XenRing& operator=(const XenRing&) = delete;

  // Names the domains on each end for race reporting. Without this the ring
  // stays uninstrumented even when a sink is installed.
  void BindRaceEndpoints(ukvm::DomainId frontend, ukvm::DomainId backend) {
    front_ = frontend;
    back_ = backend;
  }

  void SetRaceMutation(RingMutation mutation) {
    mutation_ = mutation;
    mutation_used_ = false;
  }

  // Frontend side.
  bool PushRequest(const Req& req) {
    if (requests_.size() >= capacity_) {
      return false;
    }
    machine_.ChargeCopy(sizeof(Req));
    RaceProduce(front_, ReqKey(), req_prod_, 1);
    TraceStash(ukvm::RingSide::kRequest, req_prod_);
    requests_.push_back(req);
    ++req_prod_;
    return true;
  }
  std::optional<Resp> PopResponse() {
    popped_traces_.clear();
    if (responses_.empty()) {
      return std::nullopt;
    }
    machine_.ChargeCopy(sizeof(Resp));
    RaceConsume(front_, RespKey(), rsp_cons_, "ring.resp");
    popped_traces_.push_back(TraceConsume(ukvm::RingSide::kResponse, rsp_cons_, front_));
    Resp resp = responses_.front();
    responses_.pop_front();
    ++rsp_cons_;
    return resp;
  }

  // Backend side.
  std::optional<Req> PopRequest() {
    popped_traces_.clear();
    if (requests_.empty()) {
      return std::nullopt;
    }
    machine_.ChargeCopy(sizeof(Req));
    RaceConsume(back_, ReqKey(), req_cons_, "ring.req");
    popped_traces_.push_back(TraceConsume(ukvm::RingSide::kRequest, req_cons_, back_));
    Req req = requests_.front();
    requests_.pop_front();
    ++req_cons_;
    return req;
  }
  bool PushResponse(const Resp& resp) {
    if (responses_.size() >= capacity_) {
      return false;
    }
    machine_.ChargeCopy(sizeof(Resp));
    RaceProduce(back_, RespKey(), rsp_prod_, 1);
    TraceStash(ukvm::RingSide::kResponse, rsp_prod_);
    responses_.push_back(resp);
    ++rsp_prod_;
    return true;
  }

  // --- Batched variants -------------------------------------------------------
  // One descriptor-array copy per call instead of one per descriptor: the
  // byte volume charged is identical, but producer and consumer touch the
  // ring (and later kick/upcall) once per batch. Returns how many fit.

  size_t PushRequests(std::span<const Req> reqs) {
    const size_t n = std::min(reqs.size(), capacity_ - requests_.size());
    if (n > 0) {
      machine_.ChargeCopy(n * sizeof(Req));
      RaceProduce(front_, ReqKey(), req_prod_, n);
      TraceStashBatch(ukvm::RingSide::kRequest, req_prod_, n);
      requests_.insert(requests_.end(), reqs.begin(), reqs.begin() + static_cast<ptrdiff_t>(n));
      req_prod_ += n;
    }
    push_refs_.clear();
    return n;
  }
  std::vector<Req> PopRequests(size_t max) {
    popped_traces_.clear();
    const size_t n = std::min(max, requests_.size());
    std::vector<Req> out;
    if (n > 0) {
      machine_.ChargeCopy(n * sizeof(Req));
      for (size_t i = 0; i < n; ++i) {
        RaceConsume(back_, ReqKey(), req_cons_ + i, "ring.req");
        popped_traces_.push_back(TraceConsume(ukvm::RingSide::kRequest, req_cons_ + i, back_));
      }
      out.assign(requests_.begin(), requests_.begin() + static_cast<ptrdiff_t>(n));
      requests_.erase(requests_.begin(), requests_.begin() + static_cast<ptrdiff_t>(n));
      req_cons_ += n;
    }
    return out;
  }
  size_t PushResponses(std::span<const Resp> resps) {
    const size_t n = std::min(resps.size(), capacity_ - responses_.size());
    if (n > 0) {
      machine_.ChargeCopy(n * sizeof(Resp));
      RaceProduce(back_, RespKey(), rsp_prod_, n);
      TraceStashBatch(ukvm::RingSide::kResponse, rsp_prod_, n);
      responses_.insert(responses_.end(), resps.begin(),
                        resps.begin() + static_cast<ptrdiff_t>(n));
      rsp_prod_ += n;
    }
    push_refs_.clear();
    return n;
  }
  std::vector<Resp> PopResponses(size_t max) {
    popped_traces_.clear();
    const size_t n = std::min(max, responses_.size());
    std::vector<Resp> out;
    if (n > 0) {
      machine_.ChargeCopy(n * sizeof(Resp));
      for (size_t i = 0; i < n; ++i) {
        RaceConsume(front_, RespKey(), rsp_cons_ + i, "ring.resp");
        popped_traces_.push_back(TraceConsume(ukvm::RingSide::kResponse, rsp_cons_ + i, front_));
      }
      out.assign(responses_.begin(), responses_.begin() + static_cast<ptrdiff_t>(n));
      responses_.erase(responses_.begin(), responses_.begin() + static_cast<ptrdiff_t>(n));
      rsp_cons_ += n;
    }
    return out;
  }

  size_t pending_requests() const { return requests_.size(); }
  size_t pending_responses() const { return responses_.size(); }
  size_t capacity() const { return capacity_; }

  // --- Request-trace plumbing -------------------------------------------------

  // Per-slot request refs for the *next* batched push (slot i gets refs[i];
  // missing entries fall back to the ambient request). Consumed by the push.
  void SetPushTraceRefs(std::vector<ukvm::ReqTraceRef> refs) { push_refs_ = std::move(refs); }

  // Refs of the requests whose slots the last Pop* call consumed, in pop
  // order (invalid entries for untraced slots). Valid until the next pop.
  const std::vector<ukvm::ReqTraceRef>& popped_traces() const { return popped_traces_; }

 private:
  bool RaceOn(ukvm::DomainId ctx) const {
    return machine_.race_sink() != nullptr && ctx.valid();
  }
  uint64_t RingId() {
    if (ring_id_ == 0) {
      ring_id_ = machine_.AllocRaceObjectId();
    }
    return ring_id_;
  }
  uint64_t ReqKey() { return hwsim::RaceEdgeKey(hwsim::RaceEdgeKind::kRingReq, RingId()); }
  uint64_t RespKey() { return hwsim::RaceEdgeKey(hwsim::RaceEdgeKind::kRingResp, RingId()); }
  const char* SlotLabel(uint64_t key) const {
    return (static_cast<hwsim::RaceEdgeKind>(key >> 56) == hwsim::RaceEdgeKind::kRingReq)
               ? "ring.req"
               : "ring.resp";
  }
  bool TraceOn() const { return machine_.reqtrace().enabled(); }
  void TraceStash(ukvm::RingSide side, uint64_t index) {
    if (TraceOn()) {
      machine_.reqtrace().RingStash(RingId(), side, index);
    }
  }
  void TraceStashBatch(ukvm::RingSide side, uint64_t first, size_t count) {
    if (!TraceOn()) {
      return;
    }
    for (size_t i = 0; i < count; ++i) {
      if (i < push_refs_.size()) {
        machine_.reqtrace().RingStashRef(RingId(), side, first + i, push_refs_[i]);
      } else {
        machine_.reqtrace().RingStash(RingId(), side, first + i);
      }
    }
  }
  ukvm::ReqTraceRef TraceConsume(ukvm::RingSide side, uint64_t index, ukvm::DomainId ctx) {
    if (!TraceOn()) {
      return ukvm::ReqTraceRef{};
    }
    return machine_.reqtrace().RingConsume(RingId(), side, index, ctx);
  }

  bool TakeMutation(RingMutation which) {
    if (mutation_ != which || mutation_used_) {
      return false;
    }
    mutation_used_ = true;
    return true;
  }

  // Traffic from before the sink was installed (the detector attaches after
  // boot, and frontends advertise rx buffers during it) is ordered history:
  // mark everything already produced as published, with no context, so it
  // neither fires kRingReadBeforePublish nor adds an artificial HB edge.
  void RaceBaseline(hwsim::RaceSink& sink) {
    if (race_baseline_done_) {
      return;
    }
    race_baseline_done_ = true;
    sink.RingPublish(ukvm::DomainId::Invalid(), ReqKey(), req_prod_);
    sink.RingPublish(ukvm::DomainId::Invalid(), RespKey(), rsp_prod_);
  }

  // Producer protocol for `count` descriptors starting at absolute index
  // `prod`: store each slot, then publish the new producer index.
  void RaceProduce(ukvm::DomainId ctx, uint64_t key, uint64_t prod, size_t count) {
    if (!RaceOn(ctx)) {
      return;
    }
    hwsim::RaceSink& sink = *machine_.race_sink();
    RaceBaseline(sink);
    if (TakeMutation(RingMutation::kEarlyPublish)) {
      // Bug under test: index published before the slot stores land.
      sink.RingPublish(ctx, key, prod + count);
      for (size_t i = 0; i < count; ++i) {
        sink.SharedWrite(ctx, key, (prod + i) % capacity_, SlotLabel(key));
      }
      return;
    }
    for (size_t i = 0; i < count; ++i) {
      sink.SharedWrite(ctx, key, (prod + i) % capacity_, SlotLabel(key));
    }
    if (TakeMutation(RingMutation::kSkipPublish)) {
      return;  // bug under test: slot stores with no index publish
    }
    sink.RingPublish(ctx, key, prod + count);
  }

  // Consumer protocol for the descriptor at absolute index `cons`: check
  // the published index, then load the slot (skipped if unpublished, so a
  // missing publish fires exactly one rule).
  void RaceConsume(ukvm::DomainId ctx, uint64_t key, uint64_t cons, const char* what) {
    if (!RaceOn(ctx)) {
      return;
    }
    hwsim::RaceSink& sink = *machine_.race_sink();
    RaceBaseline(sink);
    if (sink.RingObserve(ctx, key, cons)) {
      sink.SharedRead(ctx, key, cons % capacity_, what);
    }
  }

  hwsim::Machine& machine_;
  size_t capacity_;
  std::deque<Req> requests_;
  std::deque<Resp> responses_;

  // Race instrumentation state. The absolute index counters model the
  // shared req/rsp producer/consumer indices; they cost nothing and are
  // maintained unconditionally.
  ukvm::DomainId front_ = ukvm::DomainId::Invalid();
  ukvm::DomainId back_ = ukvm::DomainId::Invalid();
  uint64_t ring_id_ = 0;
  uint64_t req_prod_ = 0;
  uint64_t req_cons_ = 0;
  uint64_t rsp_prod_ = 0;
  uint64_t rsp_cons_ = 0;
  RingMutation mutation_ = RingMutation::kNone;
  bool mutation_used_ = false;
  bool race_baseline_done_ = false;

  // Request-trace plumbing (E22): per-slot refs for the next batched push
  // and the refs consumed by the last pop.
  std::vector<ukvm::ReqTraceRef> push_refs_;
  std::vector<ukvm::ReqTraceRef> popped_traces_;
};

}  // namespace ustack

#endif  // UKVM_SRC_STACKS_XENRING_H_
