// The complete VMM system: Xen-style hypervisor, a privileged Dom0 hosting
// the legacy drivers and the netback, a storage backend (inside Dom0 or in
// a separate Parallax-style storage VM), and paravirtualized MiniOS guests
// reached via split drivers.

#ifndef UKVM_SRC_STACKS_VMM_STACK_H_
#define UKVM_SRC_STACKS_VMM_STACK_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/check/auditor.h"
#include "src/drivers/disk_driver.h"
#include "src/drivers/nic_driver.h"
#include "src/drivers/retry_policy.h"
#include "src/hw/disk.h"
#include "src/hw/fault_injector.h"
#include "src/hw/machine.h"
#include "src/hw/nic.h"
#include "src/hw/platform.h"
#include "src/os/kernel.h"
#include "src/os/ports/vmm_port.h"
#include "src/stacks/blksplit.h"
#include "src/stacks/netsplit.h"
#include "src/stacks/port_mux.h"
#include "src/vmm/hypervisor.h"

namespace ustack {

class VmmStack {
 public:
  struct Config {
    hwsim::Platform platform = hwsim::MakeX86Platform();
    uint64_t memory_bytes = 64ull * 1024 * 1024;
    uint32_t num_vcpus = 1;  // >1 arms the TLB shootdown protocol (E18)
    uint32_t num_guests = 1;
    uint64_t dom0_pages = 2048;
    uint64_t guest_pages = 1024;
    uint64_t storage_pages = 1024;
    uint64_t slice_blocks = 8192;
    RxMode rx_mode = RxMode::kPageFlip;
    bool parallax_storage = false;   // blkback in a separate storage VM
    bool net_driver_domain = false;  // NIC driver + netback in a separate
                                     // driver domain instead of Dom0
    uint64_t net_domain_pages = 1024;
    bool request_fast_syscall = true;
    // E16 batching knobs — both default off, so the unbatched datapath (and
    // every E1–E15 number measured over it) is untouched.
    //   io_batch > 1: netback stages rx packets and flushes them through one
    //   multicall per burst; the NIC driver switches to NAPI-style polled
    //   drains (masked IRQ) with NetBack::FlushRx as the batch boundary; the
    //   frontends drain and re-advertise rings in batches of this size.
    uint32_t io_batch = 1;
    //   persistent_grants: both ends of the net and blk split drivers keep
    //   grants/mappings alive across packets (grant recycling).
    bool persistent_grants = false;
    // E19 crash recovery — default off, so every pre-E19 path (and all
    // E1–E18 numbers) is byte-identical. On:
    //  - DestroyDomain force-revokes the corpse's grants/event channels and
    //    upcalls surviving peers (kDomainDead);
    //  - frontends journal writes and replay them (same ids) over a
    //    xenbus-style reconnect; the stack-owned BlkRecoveryLog makes block
    //    writes exactly-once across backend restarts;
    //  - Restart* paths quiesce device DMA queues before tearing down the
    //    dead backend's driver.
    bool crash_recovery = false;
    hwsim::Nic::Config nic;
    hwsim::Disk::Config disk;
    // Chaos knobs (E15): seeded device fault injection plus the driver and
    // backend hardening policies applied against it.
    hwsim::FaultPlan faults;
    udrv::RetryPolicy disk_retry;
    udrv::RetryPolicy nic_retry;
    DegradePolicy degrade;
    // Constructs the isolation auditor (src/check) over this stack. The
    // default follows the UKVM_CHECK build option; benches flip it off to
    // measure hook-free baselines.
    bool audit = UKVM_CHECK_DEFAULT != 0;
    // E20 happens-before race detection over the split drivers' rings and
    // grant-shared frames. Off by default; the detector charges no simulated
    // cycles, so every measured result is byte-identical either way.
    bool race_detect = false;
    // E17 flight recorder / histograms / profiler. Off by default; with
    // tracing off, the instrumented paths charge exactly the same simulated
    // cycles as before the tracer existed.
    ukvm::TraceConfig trace;
    // E22 causal request tracing: per-request DAGs across ring slots, event
    // channels, and recovery replay. Same discipline as `trace` — enabling
    // it never changes a single simulated cycle.
    ukvm::ReqTraceConfig request_trace;
  };

  struct Guest {
    ukvm::DomainId domain;
    std::unique_ptr<PortMux> mux;
    std::unique_ptr<NetFront> netfront;
    std::unique_ptr<BlkFront> blkfront;
    std::unique_ptr<minios::VmmPort> port;
    std::unique_ptr<minios::Os> os;
    bool booted = false;
  };

  explicit VmmStack(Config config);
  VmmStack() : VmmStack(Config{}) {}

  hwsim::Machine& machine() { return machine_; }
  uvmm::Hypervisor& hv() { return *hv_; }
  hwsim::Nic& nic() { return nic_; }
  hwsim::Disk& disk() { return disk_; }
  ukvm::DomainId dom0() const { return dom0_; }
  ukvm::DomainId storage_domain() const { return storage_dom_; }
  // The domain hosting the NIC driver + netback (== dom0 unless
  // net_driver_domain).
  ukvm::DomainId net_domain() const { return net_dom_; }
  NetBack& netback() { return *netback_; }
  BlkBack& blkback() { return *blkback_; }
  // The NIC driver (benches tune its poll interval to the offered rate).
  udrv::NicDriver& nic_driver() { return *nic_driver_; }
  // The isolation auditor; nullptr when the config disabled it.
  ucheck::Auditor* auditor() { return auditor_.get(); }

  size_t num_guests() const { return guests_.size(); }
  Guest& guest(size_t i) { return *guests_.at(i); }
  minios::Os& guest_os(size_t i) { return *guests_.at(i)->os; }
  minios::VmmPort& guest_port(size_t i) { return *guests_.at(i)->port; }

  // Runs `fn` as guest `i`'s application (guest-user context).
  ukvm::Err RunAsApp(size_t i, const std::function<void()>& fn);

  // Routes inbound wire traffic for `wire_port` to guest `i`.
  void RouteWirePort(uint16_t wire_port, size_t i);

  // --- Fault injection (experiment E5) ----------------------------------------

  // Kills the storage service (the Parallax VM, or Dom0 if storage is there).
  ukvm::Err KillStorage();
  // Crashes the storage *service*. With Parallax the service is a whole VM,
  // so this is KillStorage (domain death: reclamation + kDomainDead
  // upcalls). Inside Dom0 it is a driver crash — the domain survives but
  // the backend stops answering; frontends detach so in-flight requests
  // wake with kDead and the watchdog's RestartStorage rebuilds the service.
  // Requires crash recovery (the dom0-hosted form has no legacy analogue).
  ukvm::Err CrashStorageService();
  // Kills the network driver domain (Dom0 unless disaggregated).
  ukvm::Err KillNetDomain();
  ukvm::Err KillDom0();
  ukvm::Err KillGuest(size_t i);

  // --- Service recovery ---------------------------------------------------------

  // Boots a replacement storage backend (a fresh Parallax VM when
  // disaggregated; rebuilding inside Dom0 otherwise requires Dom0 alive)
  // and reconnects every guest's blkfront. Disk contents survive. With
  // crash recovery on, the path quiesces the disk's DMA queue first and
  // drives each frontend's xenbus machine through reconnect + replay.
  ukvm::Err RestartStorage();

  // Boots a replacement network backend (a fresh driver VM when
  // disaggregated; rebuilding inside Dom0 otherwise), reconnects every
  // guest's netfront, and replays the recorded wire routes. With crash
  // recovery on, posted rx buffers and in-flight NIC completions are
  // cancelled before the old driver is torn down.
  ukvm::Err RestartNetDomain();

  // The stack-owned exactly-once write ledger (survives backend restarts).
  const BlkRecoveryLog& blk_recovery_log() const { return blk_recovery_log_; }
  bool crash_recovery() const { return crash_recovery_; }

  // --- Health probes (service watchdog) ----------------------------------------
  // One request through guest 0's ordinary frontend — the same ring
  // round-trip any application I/O takes. kNone means the backend answered.
  ukvm::Err ProbeStorageService();
  ukvm::Err ProbeNetService();

  // Attaches (or replaces) a seeded fault injector on both devices. Chaos
  // benches boot the stack clean and arm the plan once steady state holds.
  void ArmFaults(const hwsim::FaultPlan& plan);
  hwsim::FaultInjector* fault_injector() { return fault_injector_.get(); }

 private:
  static constexpr uint32_t kNicIrq = 5;
  static constexpr uint32_t kDiskIrq = 6;

  std::unique_ptr<Guest> MakeGuest(const std::string& name, const Config& config);

  hwsim::Machine machine_;
  hwsim::Nic nic_;
  hwsim::Disk disk_;
  std::unique_ptr<hwsim::FaultInjector> fault_injector_;
  std::unique_ptr<uvmm::Hypervisor> hv_;

  ukvm::DomainId dom0_;
  ukvm::DomainId storage_dom_;  // == dom0_ unless parallax_storage
  ukvm::DomainId net_dom_;      // == dom0_ unless net_driver_domain
  std::unique_ptr<PortMux> dom0_mux_;
  std::unique_ptr<PortMux> storage_mux_;
  std::unique_ptr<PortMux> net_mux_;
  std::unique_ptr<udrv::NicDriver> nic_driver_;
  std::unique_ptr<udrv::DiskDriver> disk_driver_;
  std::unique_ptr<NetBack> netback_;
  std::unique_ptr<BlkBack> blkback_;
  std::vector<std::unique_ptr<Guest>> guests_;
  bool parallax_ = false;
  bool persistent_grants_ = false;
  uint64_t storage_pages_ = 1024;
  uint64_t slice_blocks_ = 8192;
  bool net_driver_domain_ = false;
  uint64_t net_domain_pages_ = 1024;
  RxMode rx_mode_ = RxMode::kPageFlip;
  uint32_t io_batch_ = 1;
  bool crash_recovery_ = false;
  BlkRecoveryLog blk_recovery_log_;
  // Wire routes as (wire port, guest index), replayed after a net restart
  // (the routing table lives in the netback and dies with it).
  std::vector<std::pair<uint16_t, size_t>> wire_routes_;
  udrv::RetryPolicy disk_retry_;
  udrv::RetryPolicy nic_retry_;
  DegradePolicy degrade_;
  // Declared last: destroyed first, detaching its hooks while the
  // hypervisor and machine are still alive.
  std::unique_ptr<ucheck::Auditor> auditor_;
};

}  // namespace ustack

#endif  // UKVM_SRC_STACKS_VMM_STACK_H_
