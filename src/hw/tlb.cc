#include "src/hw/tlb.h"

#include <cassert>

namespace hwsim {

Tlb::Tlb(uint32_t capacity) : slots_(capacity) { assert(capacity > 0); }

std::optional<TlbEntry> Tlb::Lookup(Vaddr vpn) {
  auto it = index_.find(vpn);
  if (it == index_.end() || !slots_[it->second].valid) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return slots_[it->second];
}

void Tlb::Insert(Vaddr vpn, Frame frame, bool writable, bool user) {
  auto it = index_.find(vpn);
  uint32_t slot;
  if (it != index_.end()) {
    slot = it->second;
  } else {
    slot = next_victim_;
    next_victim_ = (next_victim_ + 1) % static_cast<uint32_t>(slots_.size());
    if (slots_[slot].valid) {
      index_.erase(slots_[slot].vpn);
    }
    index_[vpn] = slot;
  }
  slots_[slot] = TlbEntry{vpn, frame, writable, user, true, ++insert_seq_};
  if (insert_hook_) {
    insert_hook_(slots_[slot]);
  }
}

uint32_t Tlb::FlushIf(const std::function<bool(const TlbEntry&)>& pred) {
  uint32_t flushed = 0;
  for (TlbEntry& entry : slots_) {
    if (entry.valid && pred(entry)) {
      index_.erase(entry.vpn);
      entry.valid = false;
      ++flushed;
    }
  }
  return flushed;
}

std::optional<TlbEntry> Tlb::Probe(Vaddr vpn) const {
  auto it = index_.find(vpn);
  if (it == index_.end() || !slots_[it->second].valid) {
    return std::nullopt;
  }
  return slots_[it->second];
}

void Tlb::ForEachValid(const std::function<void(const TlbEntry&)>& fn) const {
  for (const TlbEntry& entry : slots_) {
    if (entry.valid) {
      fn(entry);
    }
  }
}

void Tlb::ForEachValidSince(uint64_t after,
                            const std::function<void(const TlbEntry&)>& fn) const {
  for (const TlbEntry& entry : slots_) {
    if (entry.valid && entry.stamp > after) {
      fn(entry);
    }
  }
}

void Tlb::FlushAll() {
  for (TlbEntry& entry : slots_) {
    entry.valid = false;
  }
  index_.clear();
  ++flushes_;
}

void Tlb::FlushPage(Vaddr vpn) {
  auto it = index_.find(vpn);
  if (it != index_.end()) {
    slots_[it->second].valid = false;
    index_.erase(it);
  }
}

uint32_t Tlb::valid_entries() const {
  uint32_t n = 0;
  for (const TlbEntry& entry : slots_) {
    if (entry.valid) {
      ++n;
    }
  }
  return n;
}

}  // namespace hwsim
