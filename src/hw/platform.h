// Platform descriptors (experiment E6).
//
// Section 2.2 of the paper claims L4 software "naturally runs on nine
// different processor platforms" because the microkernel hides hardware
// peculiarities, while VMM interfaces are "inherently unportable". To test
// that, the simulated machine is parameterized by a platform descriptor:
// page size, availability of segmentation (the x86 feature Xen's fast
// system-call shortcut depends on), software- vs hardware-loaded TLBs, and
// per-platform costs. Portable software must not depend on any of these.

#ifndef UKVM_SRC_HW_PLATFORM_H_
#define UKVM_SRC_HW_PLATFORM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/hw/cost_model.h"

namespace hwsim {

struct Platform {
  std::string name;

  // Virtual-memory geometry.
  uint32_t page_shift = 12;      // log2(page size)
  uint32_t vaddr_bits = 32;      // width of the virtual address space
  uint32_t tlb_entries = 64;

  // Architectural features.
  bool has_segmentation = false;     // x86-style segment limits (enables the
                                     // Xen trap-gate shortcut of section 3.2)
  bool software_loaded_tlb = false;  // Itanium/MIPS-style: kernel refills TLB
  bool tagged_tlb = false;           // ASID/region-tagged TLB: address-space
                                     // switches do not flush it
  bool has_guest_ring = false;       // a distinct privilege ring between the
                                     // kernel and user (x86 ring 1), needed
                                     // for classic paravirtualization
  bool has_fcse = false;             // ARM Fast Context Switch Extension: a
                                     // PID register relocates small address
                                     // spaces, so switching between them
                                     // needs neither a flush nor a segment
                                     // reload (Wiggins/Heiser SA-1100 trick)

  uint32_t irq_lines = 16;

  CostModel costs;

  uint64_t page_size() const { return uint64_t{1} << page_shift; }
};

// Factory functions for the platforms the experiments sweep over. These
// mirror the spread of the nine L4 ports the paper cites: embedded ARM up
// to large Itanium/PowerPC machines.
Platform MakeX86Platform();       // 4 KiB pages, segmentation, ring 1
Platform MakeArmPlatform();       // 4 KiB pages, no segments, no ring 1
Platform MakePowerPcPlatform();   // 4 KiB pages, hash-TLB-ish costs
Platform MakeItaniumPlatform();   // 16 KiB pages, software TLB
Platform MakeMipsPlatform();      // 4 KiB pages, software TLB
Platform MakeAlphaPlatform();     // 8 KiB pages

// All of the above, for sweeps.
std::vector<Platform> AllPlatforms();

}  // namespace hwsim

#endif  // UKVM_SRC_HW_PLATFORM_H_
