#include "src/hw/memory.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace hwsim {

PhysicalMemory::PhysicalMemory(uint64_t bytes, uint32_t page_shift) : page_shift_(page_shift) {
  assert(page_shift >= 6 && page_shift <= 20);
  const uint64_t frames = (bytes + page_size() - 1) >> page_shift_;
  bytes_.assign(frames << page_shift_, 0);
  owners_.assign(frames, ukvm::DomainId::Invalid());
  free_list_.reserve(frames);
  // Hand frames out in ascending order: push in reverse so pop_back yields 0 first.
  for (Frame f = frames; f > 0; --f) {
    free_list_.push_back(f - 1);
  }
}

ukvm::Result<Frame> PhysicalMemory::AllocFrame(ukvm::DomainId owner) {
  if (free_list_.empty()) {
    return ukvm::Err::kNoMemory;
  }
  const Frame frame = free_list_.back();
  free_list_.pop_back();
  owners_[frame] = owner;
  // Kernels zero frames on allocation; model that for reproducibility.
  std::memset(&bytes_[frame << page_shift_], 0, page_size());
  return frame;
}

ukvm::Err PhysicalMemory::FreeFrame(Frame frame) {
  if (!FrameInRange(frame)) {
    return ukvm::Err::kOutOfRange;
  }
  if (!owners_[frame].valid()) {
    return ukvm::Err::kInvalidArgument;  // double free
  }
  owners_[frame] = ukvm::DomainId::Invalid();
  free_list_.push_back(frame);
  return ukvm::Err::kNone;
}

ukvm::Err PhysicalMemory::TransferFrame(Frame frame, ukvm::DomainId new_owner) {
  if (!FrameInRange(frame)) {
    return ukvm::Err::kOutOfRange;
  }
  if (!owners_[frame].valid()) {
    return ukvm::Err::kInvalidArgument;
  }
  owners_[frame] = new_owner;
  return ukvm::Err::kNone;
}

ukvm::DomainId PhysicalMemory::OwnerOf(Frame frame) const {
  if (!FrameInRange(frame)) {
    return ukvm::DomainId::Invalid();
  }
  return owners_[frame];
}

ukvm::Err PhysicalMemory::Read(Paddr addr, std::span<uint8_t> out) const {
  if (addr + out.size() > bytes_.size()) {
    return ukvm::Err::kOutOfRange;
  }
  std::memcpy(out.data(), &bytes_[addr], out.size());
  return ukvm::Err::kNone;
}

ukvm::Err PhysicalMemory::Write(Paddr addr, std::span<const uint8_t> in) {
  if (addr + in.size() > bytes_.size()) {
    return ukvm::Err::kOutOfRange;
  }
  std::memcpy(&bytes_[addr], in.data(), in.size());
  return ukvm::Err::kNone;
}

std::span<uint8_t> PhysicalMemory::FrameData(Frame frame) {
  assert(FrameInRange(frame));
  return std::span<uint8_t>(&bytes_[frame << page_shift_], page_size());
}

std::span<const uint8_t> PhysicalMemory::FrameData(Frame frame) const {
  assert(FrameInRange(frame));
  return std::span<const uint8_t>(&bytes_[frame << page_shift_], page_size());
}

}  // namespace hwsim
