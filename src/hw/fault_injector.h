// Seeded, deterministic fault injection for the simulated devices.
//
// The paper's §3.1 liability-inversion argument ("a failure of the Parallax
// server only affects its clients") is only honest if both stacks survive
// *partial* failures, not just clean kills: dropped frames, flaky sectors,
// lost completion interrupts. A FaultPlan describes, per fault class, how
// often and in which burst windows faults fire; a FaultInjector attached to
// a Nic/Disk draws from per-class deterministic PRNG streams so the same
// seed always produces the bit-identical fault schedule (experiment E15
// compares stacks under one schedule and tests assert reproducibility).
//
// Every injected fault is counted in the machine's ukvm::Counters under
// "fault.*" names, so benches and tests can observe exactly what happened.

#ifndef UKVM_SRC_HW_FAULT_INJECTOR_H_
#define UKVM_SRC_HW_FAULT_INJECTOR_H_

#include <cstdint>
#include <span>

#include "src/core/error.h"
#include "src/core/metrics.h"
#include "src/hw/machine.h"

namespace hwsim {

// One fault class's firing rule. Each decision point ("opportunity") draws
// against `probability`; while simulated time falls inside the burst window
// (Now() % burst_period in [burst_start, burst_start + burst_len) cycles,
// with burst_period > 0), `burst_probability` is used instead. Bursts model
// the interesting real-world shape — a cable yanked for a while, a disk
// region going bad — and give experiments a deterministic "storm" phase.
// Windows are wall-clock (simulated) on purpose: a storm must end when time
// passes, not when the victim has submitted enough requests — otherwise a
// circuit breaker that stops submitting would freeze the storm open.
struct FaultRate {
  double probability = 0.0;
  uint64_t burst_period = 0;  // cycles
  uint64_t burst_start = 0;   // cycles into each period
  uint64_t burst_len = 0;     // cycles
  double burst_probability = 1.0;

  bool enabled() const { return probability > 0.0 || (burst_period > 0 && burst_len > 0); }
};

struct FaultPlan {
  uint64_t seed = 1;

  FaultRate nic_tx_drop;   // transmitted frame lost on the wire (after DMA)
  FaultRate nic_rx_drop;   // inbound frame dropped before DMA
  FaultRate nic_corrupt;   // one byte of the frame flipped in transit

  FaultRate disk_read_error;   // request completes with Err::kCorrupted
  FaultRate disk_write_error;  // request completes with Err::kFault
  FaultRate disk_latency;      // service time spiked by disk_latency_spike_cycles
  uint64_t disk_latency_spike_cycles = 0;

  FaultRate irq_lost;      // a completion's IRQ edge is swallowed
  FaultRate irq_spurious;  // an extra IRQ edge with no completion behind it

  bool any_enabled() const {
    return nic_tx_drop.enabled() || nic_rx_drop.enabled() || nic_corrupt.enabled() ||
           disk_read_error.enabled() || disk_write_error.enabled() || disk_latency.enabled() ||
           irq_lost.enabled() || irq_spurious.enabled();
  }
};

class FaultInjector {
 public:
  FaultInjector(Machine& machine, const FaultPlan& plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // --- Decision points (each advances its own deterministic stream) ---------

  bool DropTxFrame();                              // "fault.nic.tx_drop"
  bool DropRxFrame();                              // "fault.nic.rx_drop"
  bool CorruptFrame(std::span<uint8_t> frame);     // "fault.nic.corrupt"
  ukvm::Err DiskIoError(bool is_write);            // "fault.disk.{read,write}_error"
  uint64_t DiskExtraLatency();                     // "fault.disk.latency"
  bool LoseIrq();                                  // "fault.irq.lost"
  bool SpuriousIrq();                              // "fault.irq.spurious"

  // --- Introspection --------------------------------------------------------

  const FaultPlan& plan() const { return plan_; }
  uint64_t injected_total() const { return injected_total_; }

 private:
  struct Stream {
    FaultRate rate;
    uint64_t rng_state = 0;
    uint32_t counter_id = 0;
    uint32_t trace_name = 0;
  };

  Stream MakeStream(const FaultRate& rate, uint64_t stream_id, const char* counter_name);
  // Draws the next decision from `s`, counting the fault when it fires.
  bool Fire(Stream& s);

  Machine& machine_;
  FaultPlan plan_;
  uint64_t injected_total_ = 0;

  Stream tx_drop_;
  Stream rx_drop_;
  Stream corrupt_;
  Stream read_error_;
  Stream write_error_;
  Stream latency_;
  Stream irq_lost_;
  Stream irq_spurious_;
};

}  // namespace hwsim

#endif  // UKVM_SRC_HW_FAULT_INJECTOR_H_
