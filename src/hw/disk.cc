#include "src/hw/disk.h"

#include <algorithm>
#include <cstring>

namespace hwsim {

Disk::Disk(Machine& machine, ukvm::IrqLine line, Config config)
    : machine_(machine), line_(line), config_(config) {
  backing_.assign(config_.capacity_blocks * config_.block_size, 0);
}

ukvm::Result<uint64_t> Disk::SubmitRead(uint64_t lba, uint32_t blocks, Paddr dest) {
  return Submit(Op::kRead, lba, blocks, dest);
}

ukvm::Result<uint64_t> Disk::SubmitWrite(uint64_t lba, uint32_t blocks, Paddr src) {
  return Submit(Op::kWrite, lba, blocks, src);
}

ukvm::Result<uint64_t> Disk::Submit(Op op, uint64_t lba, uint32_t blocks, Paddr mem_addr) {
  if (blocks == 0) {
    return ukvm::Err::kInvalidArgument;
  }
  if (lba + blocks > config_.capacity_blocks) {
    return ukvm::Err::kOutOfRange;
  }
  const uint64_t bytes = uint64_t{blocks} * config_.block_size;
  if (mem_addr + bytes > machine_.memory().size_bytes()) {
    return ukvm::Err::kOutOfRange;
  }
  const uint64_t request_id = next_request_id_++;
  auto& mem = machine_.memory();
  for (Frame f = mem.FrameOf(mem_addr); f <= mem.FrameOf(mem_addr + bytes - 1); ++f) {
    machine_.NotifyDmaTarget(mem.FrameBase(f), /*to_memory=*/op == Op::kRead);
  }
  uint64_t service_time = config_.fixed_latency + blocks * config_.per_block_latency +
                          machine_.costs().DmaCost(bytes);

  // Fault decisions happen at submit so the schedule depends only on the
  // sequence of requests; their effects land with the completion.
  ukvm::Err injected = ukvm::Err::kNone;
  bool irq_lost = false;
  if (faults_ != nullptr) {
    if (faults_->SpuriousIrq()) {
      machine_.irq_controller().Assert(line_);
    }
    service_time += faults_->DiskExtraLatency();
    injected = faults_->DiskIoError(op == Op::kWrite);
    irq_lost = faults_->LoseIrq();
  }

  busy_until_ = std::max(busy_until_, machine_.Now()) + service_time;
  machine_.AccountOnly(ukvm::kHardwareDomain, machine_.costs().DmaCost(bytes));

  ++inflight_;
  machine_.ScheduleAt(busy_until_, [this, op, lba, bytes, mem_addr, request_id, injected,
                                    irq_lost, epoch = cancel_epoch_] {
    if (epoch != cancel_epoch_) {
      return;  // cancelled by a quiesce; the DMA must not land
    }
    --inflight_;
    const uint64_t disk_off = lba * config_.block_size;
    if (injected == ukvm::Err::kNone) {
      if (op == Op::kRead) {
        machine_.memory().Write(mem_addr, std::span<const uint8_t>(&backing_[disk_off], bytes));
      } else {
        std::vector<uint8_t> tmp(bytes);
        machine_.memory().Read(mem_addr, tmp);
        std::memcpy(&backing_[disk_off], tmp.data(), bytes);
      }
    }
    completions_.push_back(Completion{request_id, op, injected});
    ++completed_;
    if (!irq_lost) {
      machine_.irq_controller().Assert(line_);
    }
  });
  return request_id;
}

uint64_t Disk::CancelPending() {
  const uint64_t cancelled = inflight_;
  inflight_ = 0;
  ++cancel_epoch_;
  completions_.clear();
  return cancelled;
}

std::optional<Disk::Completion> Disk::TakeCompletion() {
  if (completions_.empty()) {
    return std::nullopt;
  }
  Completion completion = completions_.front();
  completions_.pop_front();
  return completion;
}

ukvm::Err Disk::ReadBacking(uint64_t lba, std::span<uint8_t> out) const {
  const uint64_t off = lba * config_.block_size;
  if (off + out.size() > backing_.size()) {
    return ukvm::Err::kOutOfRange;
  }
  std::memcpy(out.data(), &backing_[off], out.size());
  return ukvm::Err::kNone;
}

ukvm::Err Disk::WriteBacking(uint64_t lba, std::span<const uint8_t> in) {
  const uint64_t off = lba * config_.block_size;
  if (off + in.size() > backing_.size()) {
    return ukvm::Err::kOutOfRange;
  }
  std::memcpy(&backing_[off], in.data(), in.size());
  return ukvm::Err::kNone;
}

}  // namespace hwsim
