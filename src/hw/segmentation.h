// x86-style segmentation, modelled at the granularity the paper needs.
//
// Section 3.2 describes Xen's system-call shortcut: a trap gate that enters
// the guest kernel directly, skipping the VMM. It is safe only while every
// active segment's limit excludes the VMM's address range — and because an
// x86 trap reloads only two of the six segment registers (CS and SS), the
// VMM cannot re-truncate the other four on the fly. The paper notes that
// "Linux's latest glibc violates the assumption and renders the shortcut
// useless" (glibc's TLS support loads full-range GS/DS descriptors). This
// module models exactly those ingredients: six segment registers,
// descriptors with base/limit, and the two-of-six reload property.

#ifndef UKVM_SRC_HW_SEGMENTATION_H_
#define UKVM_SRC_HW_SEGMENTATION_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace hwsim {

enum class SegmentReg : uint8_t { kCs = 0, kSs, kDs, kEs, kFs, kGs };
inline constexpr size_t kSegmentRegCount = 6;

// Number of segment registers an x86 trap-gate transition reloads: CS and
// SS only. The other four retain whatever the guest last loaded.
inline constexpr size_t kTrapReloadedSegments = 2;

const char* SegmentRegName(SegmentReg reg);

struct SegmentDescriptor {
  uint64_t base = 0;
  uint64_t limit = uint64_t{1} << 32;  // size in bytes; default: flat 4 GiB
  uint8_t dpl = 3;                     // descriptor privilege level

  uint64_t end() const { return base + limit; }

  // True if no byte of [range_base, range_end) is addressable through this
  // segment.
  bool Excludes(uint64_t range_base, uint64_t range_end) const {
    return end() <= range_base || base >= range_end;
  }
};

// The segment state of one protection domain (all six registers).
class SegmentState {
 public:
  SegmentState();

  void Set(SegmentReg reg, SegmentDescriptor descriptor);
  const SegmentDescriptor& Get(SegmentReg reg) const;

  // True if every register's segment excludes [range_base, range_end) — the
  // precondition for Xen's trap-gate shortcut to preserve protection.
  bool AllExclude(uint64_t range_base, uint64_t range_end) const;

  // Truncates all six segments to [0, limit); what Xen's paravirtual setup
  // does so guests cannot address the hypervisor.
  void TruncateAll(uint64_t limit);

 private:
  std::array<SegmentDescriptor, kSegmentRegCount> regs_;
};

}  // namespace hwsim

#endif  // UKVM_SRC_HW_SEGMENTATION_H_
