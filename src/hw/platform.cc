#include "src/hw/platform.h"

namespace hwsim {

Platform MakeX86Platform() {
  Platform p;
  p.name = "x86-32";
  p.page_shift = 12;
  p.vaddr_bits = 32;
  p.tlb_entries = 64;
  p.has_segmentation = true;
  p.software_loaded_tlb = false;
  p.has_guest_ring = true;
  p.irq_lines = 16;
  // Defaults in CostModel are calibrated to a ~2 GHz Pentium-4-era core.
  return p;
}

Platform MakeArmPlatform() {
  Platform p;
  p.name = "arm-v5";
  p.page_shift = 12;
  p.vaddr_bits = 32;
  p.tlb_entries = 32;
  p.has_segmentation = false;
  p.software_loaded_tlb = false;
  p.has_guest_ring = false;
  p.has_fcse = true;  // ARMv5 FCSE: PID-relocated small spaces switch for free
  p.irq_lines = 32;
  p.costs.trap_entry = 120;  // exception entry is cheap on ARM
  p.costs.trap_return = 100;
  p.costs.fast_trap_entry = 60;
  p.costs.fast_trap_return = 50;
  p.costs.hypercall_entry = 110;
  p.costs.hypercall_return = 90;
  p.costs.address_space_switch = 900;  // untagged VIVT caches make AS switches dear
  p.costs.segment_reload = 0;
  return p;
}

Platform MakePowerPcPlatform() {
  Platform p;
  p.name = "ppc-64";
  p.page_shift = 12;
  p.vaddr_bits = 64;
  p.tlb_entries = 128;
  p.has_segmentation = false;
  p.software_loaded_tlb = false;
  p.has_guest_ring = false;
  p.irq_lines = 64;
  p.costs.trap_entry = 200;
  p.costs.trap_return = 160;
  p.costs.fast_trap_entry = 110;  // lightweight system-call entry
  p.costs.fast_trap_return = 90;
  p.costs.address_space_switch = 300;  // hashed page table, no full TLB flush
  p.costs.tlb_miss_walk = 160;         // hash-table walk is slower
  p.costs.segment_reload = 0;
  return p;
}

Platform MakeItaniumPlatform() {
  Platform p;
  p.name = "ia64";
  p.page_shift = 14;  // 16 KiB pages
  p.vaddr_bits = 64;
  p.tlb_entries = 96;
  p.has_segmentation = false;
  p.software_loaded_tlb = true;
  p.tagged_tlb = true;
  p.has_guest_ring = true;  // ia64 has four privilege levels
  p.irq_lines = 64;
  p.costs.trap_entry = 250;
  p.costs.trap_return = 200;
  p.costs.fast_trap_entry = 140;  // epc-style light entry
  p.costs.fast_trap_return = 110;
  p.costs.tlb_miss_walk = 220;  // software refill handler
  p.costs.address_space_switch = 250;  // region registers, no flush
  p.costs.segment_reload = 0;
  return p;
}

Platform MakeMipsPlatform() {
  Platform p;
  p.name = "mips-r4k";
  p.page_shift = 12;
  p.vaddr_bits = 40;
  p.tlb_entries = 48;
  p.has_segmentation = false;
  p.software_loaded_tlb = true;
  p.tagged_tlb = true;
  p.has_guest_ring = false;
  p.irq_lines = 8;
  p.costs.trap_entry = 100;
  p.costs.trap_return = 80;
  p.costs.fast_trap_entry = 55;
  p.costs.fast_trap_return = 45;
  p.costs.tlb_miss_walk = 180;
  p.costs.address_space_switch = 120;  // ASID-tagged TLB, no flush
  p.costs.tlb_flush_full = 0;          // never needed with ASIDs
  p.costs.segment_reload = 0;
  return p;
}

Platform MakeAlphaPlatform() {
  Platform p;
  p.name = "alpha-ev6";
  p.page_shift = 13;  // 8 KiB pages
  p.vaddr_bits = 64;
  p.tlb_entries = 128;
  p.has_segmentation = false;
  p.software_loaded_tlb = true;  // PALcode refill
  p.tagged_tlb = true;
  p.has_guest_ring = false;
  p.irq_lines = 16;
  p.costs.trap_entry = 90;  // PALcode entry is lightweight
  p.costs.trap_return = 70;
  p.costs.fast_trap_entry = 50;  // PALcode callsys fast path
  p.costs.fast_trap_return = 40;
  p.costs.tlb_miss_walk = 140;
  p.costs.address_space_switch = 150;
  p.costs.segment_reload = 0;
  return p;
}

std::vector<Platform> AllPlatforms() {
  return {MakeX86Platform(),     MakeArmPlatform(),  MakePowerPcPlatform(),
          MakeItaniumPlatform(), MakeMipsPlatform(), MakeAlphaPlatform()};
}

}  // namespace hwsim
