#include "src/hw/nic.h"

#include <algorithm>

#include "src/core/log.h"

namespace hwsim {

Nic::Nic(Machine& machine, ukvm::IrqLine line, Config config)
    : machine_(machine), line_(line), config_(config) {}

ukvm::Err Nic::PostRxBuffer(Paddr addr, uint32_t len) {
  if (len == 0 || addr + len > machine_.memory().size_bytes()) {
    return ukvm::Err::kOutOfRange;
  }
  if (rx_buffers_.size() >= config_.rx_queue_depth) {
    return ukvm::Err::kBusy;
  }
  auto& mem = machine_.memory();
  for (Frame f = mem.FrameOf(addr); f <= mem.FrameOf(addr + len - 1); ++f) {
    machine_.NotifyDmaTarget(mem.FrameBase(f), /*to_memory=*/true);
  }
  rx_buffers_.push_back(Buffer{addr, len});
  return ukvm::Err::kNone;
}

ukvm::Err Nic::Transmit(Paddr addr, uint32_t len) {
  if (len == 0 || len > config_.mtu) {
    return ukvm::Err::kInvalidArgument;
  }
  std::vector<uint8_t> packet(len);
  if (machine_.memory().Read(addr, packet) != ukvm::Err::kNone) {
    return ukvm::Err::kOutOfRange;
  }
  auto& mem = machine_.memory();
  for (Frame f = mem.FrameOf(addr); f <= mem.FrameOf(addr + len - 1); ++f) {
    machine_.NotifyDmaTarget(mem.FrameBase(f), /*to_memory=*/false);
  }
  const uint64_t dma = machine_.costs().DmaCost(len);
  machine_.AccountOnly(ukvm::kHardwareDomain, dma);
  ++tx_packets_;

  // Fault decisions happen at the transmit edge so the schedule depends only
  // on the sequence of operations, not on event timing.
  bool dropped = false;
  if (faults_ != nullptr) {
    if (faults_->SpuriousIrq()) {
      machine_.irq_controller().Assert(line_);
    }
    dropped = faults_->DropTxFrame();
    if (!dropped) {
      faults_->CorruptFrame(packet);
    }
  }

  // TX completion after the DMA engine has drained the buffer. The device
  // cannot see a wire drop, so the completion fires either way.
  machine_.ScheduleAfter(dma, [this, addr, len, epoch = cancel_epoch_] {
    if (epoch != cancel_epoch_) {
      return;  // quiesced: the driver that queued this is gone
    }
    tx_completions_.push_back(NicTxCompletion{addr, len});
    RaiseIrq();
  });

  // The packet reaches the peer after DMA + propagation.
  if (!dropped) {
    machine_.ScheduleAfter(dma + config_.wire_latency,
                           [this, packet = std::move(packet)]() mutable {
      if (peer_) {
        peer_(std::move(packet));
      }
    });
  }
  return ukvm::Err::kNone;
}

std::optional<NicRxCompletion> Nic::TakeRxCompletion() {
  if (rx_completions_.empty()) {
    return std::nullopt;
  }
  NicRxCompletion completion = rx_completions_.front();
  rx_completions_.pop_front();
  return completion;
}

std::optional<NicTxCompletion> Nic::TakeTxCompletion() {
  if (tx_completions_.empty()) {
    return std::nullopt;
  }
  NicTxCompletion completion = tx_completions_.front();
  tx_completions_.pop_front();
  return completion;
}

void Nic::InjectPacket(std::span<const uint8_t> bytes) {
  if (faults_ != nullptr && faults_->DropRxFrame()) {
    return;  // lost on the wire before the NIC ever saw it
  }
  if (rx_buffers_.empty()) {
    ++rx_drops_;
    return;
  }
  Buffer buffer = rx_buffers_.front();
  rx_buffers_.pop_front();
  const auto len = static_cast<uint32_t>(std::min<uint64_t>(bytes.size(), buffer.len));
  if (faults_ != nullptr) {
    std::vector<uint8_t> mangled(bytes.begin(), bytes.begin() + len);
    if (faults_->CorruptFrame(mangled)) {
      machine_.memory().Write(buffer.addr, mangled);
    } else {
      machine_.memory().Write(buffer.addr, bytes.subspan(0, len));
    }
  } else {
    machine_.memory().Write(buffer.addr, bytes.subspan(0, len));
  }
  const uint64_t dma = machine_.costs().DmaCost(len);
  machine_.AccountOnly(ukvm::kHardwareDomain, dma);
  ++rx_packets_;
  machine_.ScheduleAfter(dma, [this, buffer, len, epoch = cancel_epoch_] {
    if (epoch != cancel_epoch_) {
      return;  // quiesced: the posting driver is gone
    }
    rx_completions_.push_back(NicRxCompletion{buffer.addr, len});
    RaiseIrq();
  });
}

uint64_t Nic::CancelPosted() {
  const uint64_t forgotten = rx_buffers_.size();
  rx_buffers_.clear();
  rx_completions_.clear();
  tx_completions_.clear();
  irq_latched_ = false;
  ++cancel_epoch_;
  return forgotten;
}

void Nic::RaiseIrq() {
  if (faults_ != nullptr && faults_->LoseIrq()) {
    return;  // completion queued, but the edge never reaches the controller
  }
  if (!irq_enabled_) {
    irq_latched_ = true;  // mitigation: the driver is polling, hold the edge
    ++irqs_suppressed_;
    return;
  }
  ++irqs_raised_;
  machine_.irq_controller().Assert(line_);
}

void Nic::SetInterruptEnable(bool enabled) {
  irq_enabled_ = enabled;
  if (enabled && irq_latched_) {
    irq_latched_ = false;
    ++irqs_raised_;
    machine_.irq_controller().Assert(line_);
  }
}

}  // namespace hwsim
