// Physical memory and frame allocation.
//
// All payload data in the simulation lives in this byte-addressable
// physical memory, so cross-domain transfers (IPC string copies, grant
// copies, page flips) move real bytes that tests can check for integrity.
// Frames carry an owner domain, which is what grant tables and the
// microkernel's mapping database validate against.

#ifndef UKVM_SRC_HW_MEMORY_H_
#define UKVM_SRC_HW_MEMORY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/core/error.h"
#include "src/core/ids.h"

namespace hwsim {

using Paddr = uint64_t;   // physical byte address
using Vaddr = uint64_t;   // virtual byte address
using Frame = uint64_t;   // physical frame (page) number

class PhysicalMemory {
 public:
  PhysicalMemory(uint64_t bytes, uint32_t page_shift);

  uint64_t size_bytes() const { return bytes_.size(); }
  uint64_t num_frames() const { return owners_.size(); }
  uint64_t page_size() const { return uint64_t{1} << page_shift_; }
  uint32_t page_shift() const { return page_shift_; }
  uint64_t free_frames() const { return free_list_.size(); }

  // Allocates one frame for `owner`; fails with kNoMemory when exhausted.
  ukvm::Result<Frame> AllocFrame(ukvm::DomainId owner);
  ukvm::Err FreeFrame(Frame frame);

  // Changes frame ownership; this is the accounting half of a page flip.
  ukvm::Err TransferFrame(Frame frame, ukvm::DomainId new_owner);

  // Owner of a frame; invalid id for free or out-of-range frames.
  ukvm::DomainId OwnerOf(Frame frame) const;

  ukvm::Err Read(Paddr addr, std::span<uint8_t> out) const;
  ukvm::Err Write(Paddr addr, std::span<const uint8_t> in);

  // Direct access to one frame's bytes (bounds-checked); used by devices and
  // by tests for integrity checks without charging simulated cycles.
  std::span<uint8_t> FrameData(Frame frame);
  std::span<const uint8_t> FrameData(Frame frame) const;

  Paddr FrameBase(Frame frame) const { return frame << page_shift_; }
  Frame FrameOf(Paddr addr) const { return addr >> page_shift_; }

 private:
  bool FrameInRange(Frame frame) const { return frame < owners_.size(); }

  uint32_t page_shift_;
  std::vector<uint8_t> bytes_;
  std::vector<ukvm::DomainId> owners_;  // invalid id == free
  std::vector<Frame> free_list_;
};

}  // namespace hwsim

#endif  // UKVM_SRC_HW_MEMORY_H_
