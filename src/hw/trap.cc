#include "src/hw/trap.h"

namespace hwsim {

const char* TrapVectorName(TrapVector vector) {
  switch (vector) {
    case TrapVector::kDivideError:
      return "divide-error";
    case TrapVector::kDebug:
      return "debug";
    case TrapVector::kBreakpoint:
      return "breakpoint";
    case TrapVector::kInvalidOpcode:
      return "invalid-opcode";
    case TrapVector::kGeneralProtection:
      return "general-protection";
    case TrapVector::kPageFault:
      return "page-fault";
    case TrapVector::kSyscall:
      return "syscall";
    case TrapVector::kHypercall:
      return "hypercall";
  }
  return "?";
}

}  // namespace hwsim
