// Simulated block device with a request queue and a seek+transfer latency
// model. Underpins the storage experiments (E5: Parallax-style storage
// service vs. a microkernel file server).

#ifndef UKVM_SRC_HW_DISK_H_
#define UKVM_SRC_HW_DISK_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "src/core/error.h"
#include "src/core/ids.h"
#include "src/hw/fault_injector.h"
#include "src/hw/machine.h"

namespace hwsim {

class Disk {
 public:
  struct Config {
    uint32_t block_size = 512;
    uint64_t capacity_blocks = 64 * 1024;          // 32 MiB at 512 B blocks
    uint64_t fixed_latency = 100 * kCyclesPerUs;   // seek + rotational
    uint64_t per_block_latency = 2 * kCyclesPerUs; // media transfer rate
  };

  enum class Op : uint8_t { kRead, kWrite };

  struct Completion {
    uint64_t request_id = 0;
    Op op = Op::kRead;
    ukvm::Err status = ukvm::Err::kNone;
  };

  Disk(Machine& machine, ukvm::IrqLine line, Config config);

  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  // --- Driver interface ----------------------------------------------------

  // Reads `blocks` blocks starting at `lba` into physical memory at `dest`.
  ukvm::Result<uint64_t> SubmitRead(uint64_t lba, uint32_t blocks, Paddr dest);
  // Writes `blocks` blocks starting at `lba` from physical memory at `src`.
  ukvm::Result<uint64_t> SubmitWrite(uint64_t lba, uint32_t blocks, Paddr src);

  std::optional<Completion> TakeCompletion();

  // Crash-recovery quiesce (E19): abandons every queued-but-uncompleted
  // request — its DMA never lands and its completion IRQ never fires — and
  // drops undelivered completions, so a restarted driver can never be
  // completed into memory it no longer owns. The mechanical model keeps
  // spinning (busy_until_ stands). Returns the number of in-flight
  // requests cancelled.
  uint64_t CancelPending();

  // --- Fault injection ------------------------------------------------------

  // Attaches a fault injector (nullptr detaches). Not owned. Injected
  // faults: read errors (kCorrupted), write errors (kFault), latency
  // spikes, lost completion IRQs, spurious IRQ edges.
  void SetFaultInjector(FaultInjector* injector) { faults_ = injector; }
  FaultInjector* fault_injector() const { return faults_; }

  // --- Introspection and test access ---------------------------------------

  const Config& config() const { return config_; }
  ukvm::IrqLine line() const { return line_; }
  uint64_t completed_requests() const { return completed_; }

  // Direct backing-store access (no cycles charged); for tests and for
  // preparing disk images.
  ukvm::Err ReadBacking(uint64_t lba, std::span<uint8_t> out) const;
  ukvm::Err WriteBacking(uint64_t lba, std::span<const uint8_t> in);

 private:
  ukvm::Result<uint64_t> Submit(Op op, uint64_t lba, uint32_t blocks, Paddr mem_addr);

  Machine& machine_;
  ukvm::IrqLine line_;
  Config config_;
  FaultInjector* faults_ = nullptr;
  std::vector<uint8_t> backing_;
  std::deque<Completion> completions_;
  uint64_t next_request_id_ = 1;
  uint64_t busy_until_ = 0;  // requests are serviced serially
  uint64_t completed_ = 0;
  uint64_t inflight_ = 0;
  uint64_t cancel_epoch_ = 0;  // bumping it orphans scheduled completions
};

}  // namespace hwsim

#endif  // UKVM_SRC_HW_DISK_H_
