// Observation interface for the happens-before race detector (E20).
//
// The simulator's synchronization vocabulary is small and explicit: event
// channels, shootdown IPIs, hypercall entry/exit, IPC crossings, and the
// publish/observe protocol on shared-memory descriptor rings. Each of those
// mechanisms reports its release/acquire halves here, and the code that
// touches shared frames or ring slots reports the accesses; the detector
// (src/check/race) runs vector clocks over the stream. Everything is pure
// observation — implementations must never charge simulated cycles, so a
// machine behaves byte-identically with or without a sink installed.

#ifndef UKVM_SRC_HW_RACE_SINK_H_
#define UKVM_SRC_HW_RACE_SINK_H_

#include <cstdint>

#include "src/core/ids.h"

namespace hwsim {

// Namespaces for the 64-bit edge keys: a synchronization slot is identified
// by (kind, a, b), so e.g. an event channel's slot can never collide with a
// shootdown round's even if their numeric ids coincide.
enum class RaceEdgeKind : uint8_t {
  kEvtchn = 1,   // a = target domain, b = target port
  kIpi,          // a = shootdown request id (send -> handler)
  kIpiAck,       // a = shootdown request id (handler -> initiator wait)
  kHypercall,    // a = calling domain (degenerate self-edge, stats only)
  kIpc,          // a = from domain, b = to domain (ledger crossings)
  kRingReq,      // a = ring object id (request-side publish/observe)
  kRingResp,     // a = ring object id (response-side publish/observe)
  kFrame,        // a = physical frame, b = owner domain (shadow objects)
};

// Packs (kind, a, b) into one key: 8 bits of kind, 28 bits each of a and b.
constexpr uint64_t RaceEdgeKey(RaceEdgeKind kind, uint64_t a, uint64_t b = 0) {
  return (static_cast<uint64_t>(kind) << 56) | ((a & 0xFFF'FFFFull) << 28) |
         (b & 0xFFF'FFFFull);
}

class RaceSink {
 public:
  virtual ~RaceSink() = default;

  // Release/acquire halves of a synchronization edge: the releasing
  // context's history becomes visible to every context that later acquires
  // the same key. An acquire of a never-released key is a no-op.
  virtual void Release(ukvm::DomainId ctx, uint64_t key) = 0;
  virtual void Acquire(ukvm::DomainId ctx, uint64_t key) = 0;

  // One access to shared state. `object`/`offset` name the cell (a ring
  // side + slot index, or a frame keyed by RaceEdgeKind::kFrame); `what`
  // labels the access site in violation reports.
  virtual void SharedWrite(ukvm::DomainId ctx, uint64_t object, uint64_t offset,
                           const char* what) = 0;
  virtual void SharedRead(ukvm::DomainId ctx, uint64_t object, uint64_t offset,
                          const char* what) = 0;

  // Ring-index publish discipline: the producer publishes after writing
  // descriptors (count = total entries ever published on this side); the
  // consumer observes before reading slot `index`. Publish doubles as a
  // release of `key`, a successful observe as an acquire. Returns false if
  // `index` is not covered by any publish — the caller must then skip its
  // SharedRead of the slot, so one protocol bug fires exactly one rule.
  virtual void RingPublish(ukvm::DomainId ctx, uint64_t key, uint64_t count) = 0;
  virtual bool RingObserve(ukvm::DomainId ctx, uint64_t key, uint64_t index) = 0;

  // `ctx` was destroyed and its shared mappings force-revoked; the
  // revocation orders the dead context's accesses before everything later,
  // so they can no longer race.
  virtual void ContextDead(ukvm::DomainId ctx) = 0;
};

}  // namespace hwsim

#endif  // UKVM_SRC_HW_RACE_SINK_H_
