#include "src/hw/paging.h"

#include <cassert>

namespace hwsim {

TlbSaltRegistry::State& TlbSaltRegistry::state() {
  static State s;
  return s;
}

uint64_t TlbSaltRegistry::Acquire() {
  State& s = state();
  if (!s.free.empty()) {
    const uint64_t id = s.free.back();
    s.free.pop_back();
    ++s.reuses;
    return id;
  }
  return s.next_id++;
}

void TlbSaltRegistry::Retire(uint64_t salt_id) {
  State& s = state();
  if (auto it = s.released.find(salt_id); it != s.released.end()) {
    s.released.erase(it);
    s.free.push_back(salt_id);
    return;
  }
  s.retired.insert(salt_id);
}

void TlbSaltRegistry::Release(uint64_t salt_id) {
  State& s = state();
  if (auto it = s.retired.find(salt_id); it != s.retired.end()) {
    s.retired.erase(it);
    s.free.push_back(salt_id);
    return;
  }
  s.released.insert(salt_id);
}

bool TlbSaltRegistry::IsQuarantined(uint64_t salt_id) {
  return state().retired.contains(salt_id);
}

size_t TlbSaltRegistry::quarantined_count() { return state().retired.size(); }

uint64_t TlbSaltRegistry::reuses() { return state().reuses; }

PageTable::PageTable(uint32_t page_shift, uint32_t vaddr_bits)
    : page_shift_(page_shift), vaddr_bits_(vaddr_bits), salt_id_(TlbSaltRegistry::Acquire()) {
  static uint64_t next_instance_id = 0;
  instance_id_ = ++next_instance_id;
  assert(vaddr_bits_ > page_shift_);
}

PageTable::~PageTable() { TlbSaltRegistry::Retire(salt_id_); }

uint64_t PageTable::max_va() const {
  if (vaddr_bits_ >= 64) {
    return ~uint64_t{0};
  }
  return uint64_t{1} << vaddr_bits_;
}

ukvm::Err PageTable::Map(Vaddr va, Frame frame, PtePerms perms) {
  if (!VaInRange(va)) {
    return ukvm::Err::kOutOfRange;
  }
  Pte& pte = WalkCreate(va);
  if (!pte.present) {
    ++mapped_pages_;
  }
  pte.frame = frame;
  pte.present = true;
  pte.writable = perms.writable;
  pte.user = perms.user;
  pte.accessed = false;
  pte.dirty = false;
  if (audit_hook_) {
    audit_hook_(AuditOp::kMap, VpnOf(va), pte);
  }
  return ukvm::Err::kNone;
}

ukvm::Err PageTable::Unmap(Vaddr va) {
  if (!VaInRange(va)) {
    return ukvm::Err::kOutOfRange;
  }
  Pte* pte = Walk(va);
  if (pte == nullptr || !pte->present) {
    return ukvm::Err::kNotFound;
  }
  const Pte removed = *pte;
  *pte = Pte{};
  --mapped_pages_;
  if (audit_hook_) {
    audit_hook_(AuditOp::kUnmap, VpnOf(va), removed);
  }
  return ukvm::Err::kNone;
}

ukvm::Result<Pte> PageTable::Lookup(Vaddr va) const {
  if (!VaInRange(va)) {
    return ukvm::Err::kOutOfRange;
  }
  const Pte* pte = Walk(va);
  if (pte == nullptr || !pte->present) {
    return ukvm::Err::kNotFound;
  }
  return *pte;
}

Pte& PageTable::WalkCreate(Vaddr va) {
  const Vaddr vpn = VpnOf(va);
  const uint64_t dir = vpn >> kLeafBits;
  auto& leaf = directory_[dir];
  if (!leaf) {
    leaf = std::make_unique<LeafTable>();
  }
  return leaf->entries[vpn & (kLeafSize - 1)];
}

Pte* PageTable::Walk(Vaddr va) {
  const Vaddr vpn = VpnOf(va);
  auto it = directory_.find(vpn >> kLeafBits);
  if (it == directory_.end()) {
    return nullptr;
  }
  return &it->second->entries[vpn & (kLeafSize - 1)];
}

const Pte* PageTable::Walk(Vaddr va) const {
  const Vaddr vpn = VpnOf(va);
  auto it = directory_.find(vpn >> kLeafBits);
  if (it == directory_.end()) {
    return nullptr;
  }
  return &it->second->entries[vpn & (kLeafSize - 1)];
}

void PageTable::ForEachMapping(const std::function<void(Vaddr vpn, const Pte&)>& fn) const {
  for (const auto& [dir, leaf] : directory_) {
    for (uint64_t slot = 0; slot < kLeafSize; ++slot) {
      const Pte& pte = leaf->entries[slot];
      if (pte.present) {
        fn((dir << kLeafBits) | slot, pte);
      }
    }
  }
}

}  // namespace hwsim
