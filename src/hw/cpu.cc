#include "src/hw/cpu.h"

#include <functional>

#include "src/hw/machine.h"

namespace hwsim {

const char* PrivLevelName(PrivLevel level) {
  switch (level) {
    case PrivLevel::kPrivileged:
      return "privileged";
    case PrivLevel::kGuestKernel:
      return "guest-kernel";
    case PrivLevel::kUser:
      return "user";
  }
  return "?";
}

Cpu::Cpu(Machine& machine, uint32_t tlb_entries, uint32_t vcpu_id)
    : machine_(machine), vcpu_id_(vcpu_id), tlb_(tlb_entries) {}

void Cpu::SwitchAddressSpace(PageTable* space) {
  if (space == address_space_) {
    return;
  }
  address_space_ = space;
  ++context_switches_;
  machine_.Charge(machine_.costs().address_space_switch);
  if (machine_.platform().tagged_tlb) {
    // ASID-tagged TLB: entries survive, distinguished by their tag.
    tlb_salt_ = TlbSaltOf(space);
  } else {
    tlb_salt_ = 0;
    salt0_space_ = space;
    tlb_.FlushAll();
    machine_.Charge(machine_.costs().tlb_flush_full);
  }
}

void Cpu::SwitchAddressSpaceSmall(PageTable* space) {
  if (space == address_space_) {
    return;
  }
  address_space_ = space;
  // Entries of this space live at different linear addresses (its segment
  // base relocates them); the salt reproduces that distinctness.
  tlb_salt_ = TlbSaltOf(space);
  ++context_switches_;
  // Segment remap: reload the four data-segment registers; no TLB flush.
  ChargeSegmentReloads(4);
}

void Cpu::InvalidatePage(const PageTable* space, Vaddr vpn) {
  // An entry for this page can live under two keys: the raw vpn (inserted
  // while the space was loaded untagged, salt 0) or the salted key
  // (inserted while it was active as a tagged or small space). Salts keep
  // to the upper 32 bits and vpns below them, so the keys are distinct and
  // flushing both is exact.
  tlb_.FlushPage(vpn);
  tlb_.FlushPage(vpn ^ TlbSaltOf(space));
}

void Cpu::InvalidatePageKeyed(uint64_t salt, Vaddr vpn) {
  tlb_.FlushPage(vpn);
  if (salt != 0) {
    tlb_.FlushPage(vpn ^ salt);
  }
}

uint32_t Cpu::FlushSpaceEntries(const PageTable* space, uint64_t salt) {
  const bool owns_salt0 = salt0_space_ == space && space != nullptr;
  const uint32_t flushed = tlb_.FlushIf([&](const TlbEntry& entry) {
    const uint64_t entry_salt = entry.vpn & ~uint64_t{0xffffffff};
    if (salt != 0 && entry_salt == salt) {
      return true;
    }
    return entry_salt == 0 && owns_salt0;
  });
  if (owns_salt0) {
    salt0_space_ = nullptr;
  }
  return flushed;
}

ukvm::Result<Translation> Cpu::Translate(Vaddr va, bool write, bool user_access) {
  if (address_space_ == nullptr) {
    return ukvm::Err::kFault;
  }
  const Vaddr vpn = (va >> address_space_->page_shift()) ^ tlb_salt_;
  const uint64_t offset = va & (address_space_->page_size() - 1);

  if (auto hit = tlb_.Lookup(vpn)) {
    if ((write && !hit->writable) || (user_access && !hit->user)) {
      // Permission upgrade requires the page tables; fall through to a walk
      // so dirty-bit emulation and copy-on-write schemes can work.
    } else {
      return Translation{machine_.memory().FrameBase(hit->frame) + offset, hit->frame,
                         hit->writable, hit->user};
    }
  }

  // TLB miss (or permission recheck): walk the page table.
  machine_.Charge(machine_.costs().tlb_miss_walk);
  Pte* pte = address_space_->Walk(va);
  if (pte == nullptr || !pte->present) {
    return ukvm::Err::kFault;
  }
  if (write && !pte->writable) {
    return ukvm::Err::kFault;
  }
  if (user_access && !pte->user) {
    return ukvm::Err::kFault;
  }
  pte->accessed = true;
  if (write) {
    pte->dirty = true;
  }
  tlb_.Insert(vpn, pte->frame, pte->writable, pte->user);
  return Translation{machine_.memory().FrameBase(pte->frame) + offset, pte->frame, pte->writable,
                     pte->user};
}

void Cpu::ChargeSegmentReloads(uint32_t count) {
  machine_.Charge(machine_.costs().segment_reload * count);
}

}  // namespace hwsim
