// Architectural cost model.
//
// The simulation is structural, not instruction-level: software runs as real
// C++ but every architecturally significant operation (trap, address-space
// switch, TLB refill, page-table update, byte copy, ...) charges a number of
// cycles drawn from this table. Absolute values are calibrated to
// early-2000s x86 folklore (Liedtke's IPC papers, the Xen SOSP'03 paper,
// Cherkasova & Gardner's measurements); what matters for the experiments is
// the *relative* structure, e.g. that a page flip has a large
// size-independent fixed cost while a copy scales with bytes.

#ifndef UKVM_SRC_HW_COST_MODEL_H_
#define UKVM_SRC_HW_COST_MODEL_H_

#include <cstdint>

namespace hwsim {

struct CostModel {
  // Privilege transitions.
  uint64_t trap_entry = 350;          // int/exception into the privileged kernel
  uint64_t trap_return = 250;         // iret back to less privileged mode
  uint64_t fast_trap_entry = 120;     // trap gate direct to guest kernel (no VMM)
  uint64_t fast_trap_return = 100;
  uint64_t hypercall_entry = 300;     // paravirtual call into the hypervisor
  uint64_t hypercall_return = 220;

  // MMU.
  uint64_t address_space_switch = 550;  // page-table base reload
  uint64_t tlb_flush_full = 200;        // flush operation itself
  uint64_t tlb_flush_page = 40;         // single-page invalidate (invlpg)
  uint64_t tlb_miss_walk = 90;          // hardware page-walk on a miss
  uint64_t pte_write = 25;              // one page-table entry update
  uint64_t tlb_shootdown = 900;         // cross-domain invalidate (IPI + flush)
  uint64_t ipi_send = 450;              // one inter-processor interrupt (APIC write + bus)

  // Segmentation (zero-cost on platforms without it).
  uint64_t segment_reload = 60;         // one selector reload incl. descriptor check

  // Data movement: cycles per 64-byte cache line moved by the CPU.
  uint64_t copy_per_line = 12;
  // Device DMA cost per line (charged to the hardware domain).
  uint64_t dma_per_line = 4;

  // Events and devices.
  uint64_t interrupt_dispatch = 400;    // controller ack + vectoring
  uint64_t mmio_access = 150;           // one device register access
  uint64_t schedule_decision = 180;     // picking the next runnable entity

  // Fixed per-operation kernel bookkeeping costs.
  uint64_t kernel_op = 80;              // validate args, locate objects, etc.

  // Cycles to copy `bytes` with the CPU.
  constexpr uint64_t CopyCost(uint64_t bytes) const {
    return ((bytes + 63) / 64) * copy_per_line;
  }
  // Cycles for a device to DMA `bytes`.
  constexpr uint64_t DmaCost(uint64_t bytes) const { return ((bytes + 63) / 64) * dma_per_line; }
};

}  // namespace hwsim

#endif  // UKVM_SRC_HW_COST_MODEL_H_
