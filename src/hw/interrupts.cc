#include "src/hw/interrupts.h"

#include <cassert>

namespace hwsim {

InterruptController::InterruptController(uint32_t lines)
    : pending_(lines, false), masked_(lines, false) {
  assert(lines > 0);
}

void InterruptController::Assert(ukvm::IrqLine line) {
  assert(LineInRange(line));
  if (!pending_[line.value()]) {
    pending_[line.value()] = true;
    ++asserts_;
    if (trace_hook_) {
      trace_hook_(line, /*delivered=*/false);
    }
  }
}

void InterruptController::SetMask(ukvm::IrqLine line, bool masked) {
  assert(LineInRange(line));
  masked_[line.value()] = masked;
}

bool InterruptController::IsMasked(ukvm::IrqLine line) const {
  assert(LineInRange(line));
  return masked_[line.value()];
}

std::optional<ukvm::IrqLine> InterruptController::TakePending() {
  for (uint32_t i = 0; i < pending_.size(); ++i) {
    if (pending_[i] && !masked_[i]) {
      pending_[i] = false;
      ++deliveries_;
      if (trace_hook_) {
        trace_hook_(ukvm::IrqLine(i), /*delivered=*/true);
      }
      return ukvm::IrqLine(i);
    }
  }
  return std::nullopt;
}

bool InterruptController::AnyDeliverable() const {
  for (uint32_t i = 0; i < pending_.size(); ++i) {
    if (pending_[i] && !masked_[i]) {
      return true;
    }
  }
  return false;
}

IpiController::IpiController(uint32_t num_vcpus)
    : pending_(num_vcpus, std::vector<bool>(kIpiVectorCount, false)) {
  assert(num_vcpus > 0);
}

void IpiController::Post(uint32_t vcpu, IpiVector vec) {
  assert(vcpu < pending_.size());
  if (!pending_[vcpu][static_cast<size_t>(vec)]) {
    pending_[vcpu][static_cast<size_t>(vec)] = true;
    ++posted_;
  }
}

bool IpiController::Pending(uint32_t vcpu, IpiVector vec) const {
  assert(vcpu < pending_.size());
  return pending_[vcpu][static_cast<size_t>(vec)];
}

bool IpiController::TakePending(uint32_t vcpu, IpiVector vec) {
  assert(vcpu < pending_.size());
  if (!pending_[vcpu][static_cast<size_t>(vec)]) {
    return false;
  }
  pending_[vcpu][static_cast<size_t>(vec)] = false;
  ++delivered_;
  return true;
}

}  // namespace hwsim
