// The simulated CPU: privilege mode, current protection domain, current
// address space, TLB, and segment state.
//
// The CPU does not fetch instructions — guest code runs as real C++ — but
// it owns everything architectural that the experiments measure: whose
// cycles are being consumed (current domain), what a translation costs
// (TLB + page walk), and what an address-space switch costs (base reload +
// flush + refill misses).

#ifndef UKVM_SRC_HW_CPU_H_
#define UKVM_SRC_HW_CPU_H_

#include <cstdint>
#include <functional>

#include "src/core/error.h"
#include "src/core/ids.h"
#include "src/hw/paging.h"
#include "src/hw/segmentation.h"
#include "src/hw/tlb.h"

namespace hwsim {

class Machine;

// Privilege levels. kGuestKernel models x86 ring 1 / ia64 PL1, the ring
// classic paravirtualization parks the guest kernel in.
enum class PrivLevel : uint8_t {
  kPrivileged = 0,  // microkernel / hypervisor
  kGuestKernel = 1,
  kUser = 3,
};

const char* PrivLevelName(PrivLevel level);

class Cpu {
 public:
  Cpu(Machine& machine, uint32_t tlb_entries, uint32_t vcpu_id = 0);

  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  uint32_t vcpu_id() const { return vcpu_id_; }
  ukvm::DomainId current_domain() const { return domain_; }
  PrivLevel mode() const { return mode_; }
  bool interrupts_enabled() const { return interrupts_enabled_; }
  PageTable* address_space() const { return address_space_; }
  SegmentState* segments() const { return segments_; }
  Tlb& tlb() { return tlb_; }
  const Tlb& tlb() const { return tlb_; }

  // Re-attributes subsequent cycle charges without any architectural cost
  // (the kernel flipping its accounting pointer).
  void SetDomain(ukvm::DomainId domain) { domain_ = domain; }
  void SetMode(PrivLevel mode) { mode_ = mode; }
  void SetInterruptsEnabled(bool enabled) { interrupts_enabled_ = enabled; }
  void SetSegments(SegmentState* segments) { segments_ = segments; }

  // Loads a new page-table base: charges the switch cost and flushes the
  // TLB (unless the platform has a tagged TLB). Passing the current space
  // is a no-op. Does not change the accounting domain; call SetDomain.
  void SwitchAddressSpace(PageTable* space);

  // Liedtke's small-spaces switch [Lie95]: the new protection domain is
  // reached by segment remapping inside the shared page table, so neither
  // the page-table base nor the TLB is touched — only segment registers
  // reload. Valid only on platforms with segmentation; the kernel decides
  // eligibility. Translation still uses `space` (the small space's view).
  void SwitchAddressSpaceSmall(PageTable* space);

  // Invalidates any TLB entry for `vpn` in `space`, whether it was
  // inserted under the space's tag/segment salt or untagged. Kernels must
  // use this (not tlb().FlushPage) when revoking a mapping: on tagged-TLB
  // platforms and under small spaces, entries survive address-space
  // switches under a salted key, so flushing the raw vpn of the currently
  // loaded space is not enough.
  void InvalidatePage(const PageTable* space, Vaddr vpn);

  // Same invalidation given only the space's salt — used by the machine's
  // shootdown protocol, whose requests must stay valid after the space
  // object is gone (death shootdowns outlive the table).
  void InvalidatePageKeyed(uint64_t salt, Vaddr vpn);

  // Drops every entry attributable to `space` (salted key, or raw key if
  // this vCPU's last untagged switch loaded it) and forgets the salt-0
  // attribution. Pointer compared, never dereferenced; `salt` is passed in
  // by the caller for the same lifetime reason as InvalidatePageKeyed.
  // Returns the number of entries dropped. No cycles are charged — the
  // shootdown protocol prices the flush.
  uint32_t FlushSpaceEntries(const PageTable* space, uint64_t salt);

  // The salt that entries of `space` carry when it is active as a tagged
  // or small space (upper 32 bits only; vpns stay below 2^32). Delegates to
  // the table's monotonic identity rather than hashing the pointer: a hash
  // could collide for two live spaces (or a recycled allocation), aliasing
  // their TLB keys and masking a stale-entry violation from the auditor.
  static uint64_t TlbSaltOf(const PageTable* space) {
    return space == nullptr ? 0 : space->tlb_salt();
  }
  uint64_t tlb_salt() const { return tlb_salt_; }
  // The space whose entries were inserted with salt 0 (the last untagged
  // full switch); lets auditors attribute unsalted TLB entries.
  const PageTable* salt0_space() const { return salt0_space_; }

  // Translates `va` through TLB and page tables, charging miss costs and
  // setting accessed/dirty bits. Fails with kFault on missing/forbidden
  // mappings — the caller decides whether to raise a page-fault trap.
  ukvm::Result<Translation> Translate(Vaddr va, bool write, bool user_access);

  // Charges the cost of reloading `count` segment registers (zero-cost on
  // platforms without segmentation).
  void ChargeSegmentReloads(uint32_t count);

  uint64_t context_switches() const { return context_switches_; }

 private:
  Machine& machine_;
  uint32_t vcpu_id_ = 0;
  ukvm::DomainId domain_ = ukvm::DomainId::Invalid();
  PrivLevel mode_ = PrivLevel::kPrivileged;
  bool interrupts_enabled_ = false;
  PageTable* address_space_ = nullptr;
  SegmentState* segments_ = nullptr;
  Tlb tlb_;
  // Distinguishes TLB entries of different small spaces sharing one page
  // table: models the distinct linear addresses produced by their segment
  // bases. XORed into the TLB key.
  uint64_t tlb_salt_ = 0;
  const PageTable* salt0_space_ = nullptr;
  uint64_t context_switches_ = 0;
};

}  // namespace hwsim

#endif  // UKVM_SRC_HW_CPU_H_
