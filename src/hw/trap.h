// Trap vectors and frames — the hardware/software boundary.
//
// Whatever privileged software boots on the machine (the microkernel or the
// hypervisor) registers a TrapHandler; the CPU delivers exceptions, system
// calls, hypercalls, and interrupts through it. Section 3.2's observation
// that "each guest-application exception and system call causes a trap into
// the VMM" is directly visible here: in the VMM stack this handler is the
// hypervisor, which then reflects the event into the guest kernel.

#ifndef UKVM_SRC_HW_TRAP_H_
#define UKVM_SRC_HW_TRAP_H_

#include <array>
#include <cstdint>

#include "src/core/ids.h"
#include "src/hw/memory.h"

namespace hwsim {

enum class TrapVector : uint8_t {
  kDivideError = 0,
  kDebug,
  kBreakpoint,
  kInvalidOpcode,
  kGeneralProtection,
  kPageFault,
  kSyscall,    // the int-0x80 style software interrupt
  kHypercall,  // paravirtual call into the most privileged software
};

const char* TrapVectorName(TrapVector vector);

// Register file snapshot carried across a trap. regs[0] doubles as the
// call number on syscall/hypercall entry and the return value on exit.
struct TrapFrame {
  TrapVector vector = TrapVector::kDivideError;
  uint64_t error_code = 0;
  Vaddr fault_addr = 0;       // page faults: the faulting virtual address
  bool write_access = false;  // page faults: was it a write?
  bool from_user = true;      // privilege level the trap came from
  std::array<uint64_t, 6> regs{};
};

// Implemented by the privileged software (microkernel or hypervisor).
class TrapHandler {
 public:
  virtual ~TrapHandler() = default;

  // Handles a synchronous trap; may mutate `frame` (return values in regs).
  virtual void HandleTrap(TrapFrame& frame) = 0;

  // Handles a hardware interrupt that the machine is delivering.
  virtual void HandleInterrupt(ukvm::IrqLine line) = 0;
};

}  // namespace hwsim

#endif  // UKVM_SRC_HW_TRAP_H_
