#include "src/hw/segmentation.h"

#include <cassert>

namespace hwsim {

const char* SegmentRegName(SegmentReg reg) {
  switch (reg) {
    case SegmentReg::kCs:
      return "CS";
    case SegmentReg::kSs:
      return "SS";
    case SegmentReg::kDs:
      return "DS";
    case SegmentReg::kEs:
      return "ES";
    case SegmentReg::kFs:
      return "FS";
    case SegmentReg::kGs:
      return "GS";
  }
  return "?";
}

SegmentState::SegmentState() = default;

void SegmentState::Set(SegmentReg reg, SegmentDescriptor descriptor) {
  regs_[static_cast<size_t>(reg)] = descriptor;
}

const SegmentDescriptor& SegmentState::Get(SegmentReg reg) const {
  return regs_[static_cast<size_t>(reg)];
}

bool SegmentState::AllExclude(uint64_t range_base, uint64_t range_end) const {
  assert(range_base < range_end);
  for (const SegmentDescriptor& descriptor : regs_) {
    if (!descriptor.Excludes(range_base, range_end)) {
      return false;
    }
  }
  return true;
}

void SegmentState::TruncateAll(uint64_t limit) {
  for (SegmentDescriptor& descriptor : regs_) {
    descriptor.base = 0;
    descriptor.limit = limit;
  }
}

}  // namespace hwsim
