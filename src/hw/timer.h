// Programmable periodic timer raising a hardware interrupt line.

#ifndef UKVM_SRC_HW_TIMER_H_
#define UKVM_SRC_HW_TIMER_H_

#include <cstdint>

#include "src/core/ids.h"
#include "src/hw/machine.h"

namespace hwsim {

class Timer {
 public:
  Timer(Machine& machine, ukvm::IrqLine line);
  ~Timer();

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  // (Re)starts periodic ticking every `period_cycles`.
  void Start(uint64_t period_cycles);
  void Stop();

  bool running() const { return running_; }
  uint64_t ticks() const { return ticks_; }
  ukvm::IrqLine line() const { return line_; }

 private:
  void ScheduleTick();

  Machine& machine_;
  ukvm::IrqLine line_;
  uint64_t period_ = 0;
  uint64_t ticks_ = 0;
  bool running_ = false;
  Machine::EventId pending_event_ = 0;
};

}  // namespace hwsim

#endif  // UKVM_SRC_HW_TIMER_H_
