// Page tables: a two-level radix structure, hardware-walkable.
//
// Each protection domain owns a PageTable; the MMU (src/hw/mmu in cpu.cc)
// consults it on TLB misses. The VMM's paravirtual page-table interface
// validates and applies guest updates to these same structures, and the
// microkernel's mapping database records map/grant relationships over them,
// so both kernels exercise real page-table state transitions.

#ifndef UKVM_SRC_HW_PAGING_H_
#define UKVM_SRC_HW_PAGING_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/core/error.h"
#include "src/hw/memory.h"

namespace hwsim {

// One page-table entry.
struct Pte {
  Frame frame = 0;
  bool present = false;
  bool writable = false;
  bool user = false;      // accessible from user mode
  bool accessed = false;  // set by the MMU on translation
  bool dirty = false;     // set by the MMU on write translation
};

struct PtePerms {
  bool writable = false;
  bool user = true;
};

// Result of a translation attempt.
struct Translation {
  Paddr paddr = 0;
  Frame frame = 0;
  bool writable = false;
  bool user = false;
};

class PageTable {
 public:
  PageTable(uint32_t page_shift, uint32_t vaddr_bits);

  // Installs a mapping, overwriting any existing one at `va`.
  ukvm::Err Map(Vaddr va, Frame frame, PtePerms perms);
  ukvm::Err Unmap(Vaddr va);

  // Pure lookup without access/dirty side effects; kNotFound if unmapped.
  ukvm::Result<Pte> Lookup(Vaddr va) const;

  // Walks to the PTE, creating intermediate levels; used by the MMU (to set
  // accessed/dirty) and by the hypervisor's PT-update validation.
  Pte& WalkCreate(Vaddr va);
  // Walks without creating; nullptr if the leaf table is absent.
  Pte* Walk(Vaddr va);
  const Pte* Walk(Vaddr va) const;

  // Visits every present mapping (vpn, pte).
  void ForEachMapping(const std::function<void(Vaddr vpn, const Pte&)>& fn) const;

  // Observer for Map/Unmap on this table. For kMap the PTE is the entry as
  // installed; for kUnmap it is the entry that was just removed. Installed
  // per-instance by the invariant auditor; pass nullptr to detach. Direct
  // WalkCreate writers (the paravirtual PT interface) bypass this and carry
  // their own hook.
  enum class AuditOp : uint8_t { kMap, kUnmap };
  void SetAuditHook(std::function<void(AuditOp, Vaddr vpn, const Pte&)> hook) {
    audit_hook_ = std::move(hook);
  }

  uint64_t mapped_pages() const { return mapped_pages_; }
  uint32_t page_shift() const { return page_shift_; }
  uint64_t max_va() const;

  // The TLB salt entries of this table carry when it is active as a tagged
  // or small space: a monotonically issued identity in the upper 32 bits
  // (vpns stay below them). Issued once at construction and never reused,
  // so two live tables — or a dead table and a new one reallocated at the
  // same address — can never alias, which a pointer hash cannot promise.
  uint64_t tlb_salt() const { return salt_id_ << 32; }

  Vaddr VpnOf(Vaddr va) const { return va >> page_shift_; }
  Vaddr PageBase(Vaddr va) const { return va & ~(page_size() - 1); }
  uint64_t page_size() const { return uint64_t{1} << page_shift_; }

 private:
  static constexpr uint32_t kLeafBits = 10;  // 1024 PTEs per leaf table
  static constexpr uint64_t kLeafSize = uint64_t{1} << kLeafBits;

  struct LeafTable {
    std::vector<Pte> entries;
    LeafTable() : entries(kLeafSize) {}
  };

  bool VaInRange(Vaddr va) const { return va < max_va(); }

  inline static uint64_t next_salt_id_ = 1;  // 0 stays the untagged salt

  uint32_t page_shift_;
  uint32_t vaddr_bits_;
  uint64_t salt_id_ = 0;
  uint64_t mapped_pages_ = 0;
  std::unordered_map<uint64_t, std::unique_ptr<LeafTable>> directory_;
  std::function<void(AuditOp, Vaddr, const Pte&)> audit_hook_;
};

}  // namespace hwsim

#endif  // UKVM_SRC_HW_PAGING_H_
