// Page tables: a two-level radix structure, hardware-walkable.
//
// Each protection domain owns a PageTable; the MMU (src/hw/mmu in cpu.cc)
// consults it on TLB misses. The VMM's paravirtual page-table interface
// validates and applies guest updates to these same structures, and the
// microkernel's mapping database records map/grant relationships over them,
// so both kernels exercise real page-table state transitions.

#ifndef UKVM_SRC_HW_PAGING_H_
#define UKVM_SRC_HW_PAGING_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/core/error.h"
#include "src/hw/memory.h"

namespace hwsim {

// Issues the TLB salt identities page tables carry (upper 32 key bits).
// Recycling is double-gated: an id returns to the free pool only after the
// table is destroyed (Retire) AND the machine's shootdown protocol reports
// every vCPU acknowledged the space's death flush (Release). Until both
// happen the id is quarantined, so a new table can never alias TLB keys
// with entries of a dead space that some vCPU might still hold.
class TlbSaltRegistry {
 public:
  static uint64_t Acquire();
  // The table carrying `salt_id` was destroyed.
  static void Retire(uint64_t salt_id);
  // Every vCPU acked the death shootdown for the space carrying `salt_id`.
  static void Release(uint64_t salt_id);

  // Retired without a completed death shootdown: not reusable.
  static bool IsQuarantined(uint64_t salt_id);
  static size_t quarantined_count();
  static uint64_t reuses();

 private:
  struct State {
    uint64_t next_id = 1;  // 0 stays the untagged salt
    std::vector<uint64_t> free;
    std::unordered_set<uint64_t> retired;   // destroyed, awaiting Release
    std::unordered_set<uint64_t> released;  // acked, table still alive
    uint64_t reuses = 0;
  };
  static State& state();
};

// One page-table entry.
struct Pte {
  Frame frame = 0;
  bool present = false;
  bool writable = false;
  bool user = false;      // accessible from user mode
  bool accessed = false;  // set by the MMU on translation
  bool dirty = false;     // set by the MMU on write translation
};

struct PtePerms {
  bool writable = false;
  bool user = true;
};

// Result of a translation attempt.
struct Translation {
  Paddr paddr = 0;
  Frame frame = 0;
  bool writable = false;
  bool user = false;
};

class PageTable {
 public:
  PageTable(uint32_t page_shift, uint32_t vaddr_bits);
  ~PageTable();

  PageTable(const PageTable&) = delete;
  PageTable& operator=(const PageTable&) = delete;

  // Installs a mapping, overwriting any existing one at `va`.
  ukvm::Err Map(Vaddr va, Frame frame, PtePerms perms);
  ukvm::Err Unmap(Vaddr va);

  // Pure lookup without access/dirty side effects; kNotFound if unmapped.
  ukvm::Result<Pte> Lookup(Vaddr va) const;

  // Walks to the PTE, creating intermediate levels; used by the MMU (to set
  // accessed/dirty) and by the hypervisor's PT-update validation.
  Pte& WalkCreate(Vaddr va);
  // Walks without creating; nullptr if the leaf table is absent.
  Pte* Walk(Vaddr va);
  const Pte* Walk(Vaddr va) const;

  // Visits every present mapping (vpn, pte).
  void ForEachMapping(const std::function<void(Vaddr vpn, const Pte&)>& fn) const;

  // Observer for Map/Unmap on this table. For kMap the PTE is the entry as
  // installed; for kUnmap it is the entry that was just removed. Installed
  // per-instance by the invariant auditor; pass nullptr to detach. Direct
  // WalkCreate writers (the paravirtual PT interface) bypass this and carry
  // their own hook.
  enum class AuditOp : uint8_t { kMap, kUnmap };
  void SetAuditHook(std::function<void(AuditOp, Vaddr vpn, const Pte&)> hook) {
    audit_hook_ = std::move(hook);
  }

  uint64_t mapped_pages() const { return mapped_pages_; }
  uint32_t page_shift() const { return page_shift_; }
  uint64_t max_va() const;

  // The TLB salt entries of this table carry when it is active as a tagged
  // or small space: an identity in the upper 32 bits (vpns stay below
  // them) issued by TlbSaltRegistry at construction. Two live tables — or
  // a dead table and a new one reallocated at the same address — can never
  // alias, which a pointer hash cannot promise; recycling of dead ids is
  // quarantined behind the shootdown-ack gate (see TlbSaltRegistry).
  uint64_t tlb_salt() const { return salt_id_ << 32; }

  // Process-unique, never-recycled construction number. Salt ids leave
  // quarantine once a death shootdown fully acks, and the allocator can
  // hand a new table the old one's address, so across time both can alias;
  // this is the identity that cannot (used by the dead-space registry).
  uint64_t instance_id() const { return instance_id_; }

  Vaddr VpnOf(Vaddr va) const { return va >> page_shift_; }
  Vaddr PageBase(Vaddr va) const { return va & ~(page_size() - 1); }
  uint64_t page_size() const { return uint64_t{1} << page_shift_; }

 private:
  static constexpr uint32_t kLeafBits = 10;  // 1024 PTEs per leaf table
  static constexpr uint64_t kLeafSize = uint64_t{1} << kLeafBits;

  struct LeafTable {
    std::vector<Pte> entries;
    LeafTable() : entries(kLeafSize) {}
  };

  bool VaInRange(Vaddr va) const { return va < max_va(); }

  uint32_t page_shift_;
  uint32_t vaddr_bits_;
  uint64_t salt_id_ = 0;
  uint64_t instance_id_ = 0;
  uint64_t mapped_pages_ = 0;
  std::unordered_map<uint64_t, std::unique_ptr<LeafTable>> directory_;
  std::function<void(AuditOp, Vaddr, const Pte&)> audit_hook_;
};

}  // namespace hwsim

#endif  // UKVM_SRC_HW_PAGING_H_
