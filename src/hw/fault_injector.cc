#include "src/hw/fault_injector.h"

namespace hwsim {

namespace {

// splitmix64: tiny, well-mixed, and fully portable — the fault schedule must
// be bit-identical across platforms and runs, so no std:: engine.
uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// Uniform double in [0, 1) from the top 53 bits.
double NextDouble(uint64_t& state) {
  return static_cast<double>(SplitMix64(state) >> 11) * 0x1.0p-53;
}

}  // namespace

FaultInjector::FaultInjector(Machine& machine, const FaultPlan& plan)
    : machine_(machine), plan_(plan) {
  tx_drop_ = MakeStream(plan.nic_tx_drop, 1, "fault.nic.tx_drop");
  rx_drop_ = MakeStream(plan.nic_rx_drop, 2, "fault.nic.rx_drop");
  corrupt_ = MakeStream(plan.nic_corrupt, 3, "fault.nic.corrupt");
  read_error_ = MakeStream(plan.disk_read_error, 4, "fault.disk.read_error");
  write_error_ = MakeStream(plan.disk_write_error, 5, "fault.disk.write_error");
  latency_ = MakeStream(plan.disk_latency, 6, "fault.disk.latency");
  irq_lost_ = MakeStream(plan.irq_lost, 7, "fault.irq.lost");
  irq_spurious_ = MakeStream(plan.irq_spurious, 8, "fault.irq.spurious");
}

FaultInjector::Stream FaultInjector::MakeStream(const FaultRate& rate, uint64_t stream_id,
                                                const char* counter_name) {
  Stream s;
  s.rate = rate;
  // Decorrelate streams: each gets its own state derived from (seed, id), so
  // the nic schedule does not depend on how often the disk consulted its own
  // stream.
  s.rng_state = plan_.seed * 0x9e3779b97f4a7c15ull + stream_id;
  s.counter_id = machine_.counters().Intern(counter_name);
  s.trace_name = machine_.tracer().InternName(counter_name);
  return s;
}

bool FaultInjector::Fire(Stream& s) {
  if (!s.rate.enabled()) {
    return false;
  }
  double p = s.rate.probability;
  if (s.rate.burst_period > 0 && s.rate.burst_len > 0) {
    const uint64_t phase = machine_.Now() % s.rate.burst_period;
    if (phase >= s.rate.burst_start && phase < s.rate.burst_start + s.rate.burst_len) {
      p = s.rate.burst_probability;
    }
  }
  if (p <= 0.0 || NextDouble(s.rng_state) >= p) {
    return false;
  }
  machine_.counters().Add(s.counter_id);
  machine_.tracer().Instant(s.trace_name, ukvm::kHardwareDomain);
  ++injected_total_;
  return true;
}

bool FaultInjector::DropTxFrame() { return Fire(tx_drop_); }

bool FaultInjector::DropRxFrame() { return Fire(rx_drop_); }

bool FaultInjector::CorruptFrame(std::span<uint8_t> frame) {
  if (!Fire(corrupt_)) {
    return false;
  }
  if (!frame.empty()) {
    // Deterministic victim byte and flip pattern from the corruption stream.
    const uint64_t draw = SplitMix64(corrupt_.rng_state);
    frame[draw % frame.size()] ^= static_cast<uint8_t>(0x01u << ((draw >> 32) & 7u)) | 0x80u;
  }
  return true;
}

ukvm::Err FaultInjector::DiskIoError(bool is_write) {
  if (is_write) {
    return Fire(write_error_) ? ukvm::Err::kFault : ukvm::Err::kNone;
  }
  return Fire(read_error_) ? ukvm::Err::kCorrupted : ukvm::Err::kNone;
}

uint64_t FaultInjector::DiskExtraLatency() {
  return Fire(latency_) ? plan_.disk_latency_spike_cycles : 0;
}

bool FaultInjector::LoseIrq() { return Fire(irq_lost_); }

bool FaultInjector::SpuriousIrq() { return Fire(irq_spurious_); }

}  // namespace hwsim
