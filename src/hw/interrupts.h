// Interrupt controller: edge-triggered lines with per-line masking.
//
// Devices assert lines; the machine drains pending unmasked lines into the
// registered TrapHandler at interrupt-delivery points. In the VMM stack the
// hypervisor owns this controller and forwards events to Dom0's virtualized
// interrupt controller (paper section 2.2, primitive 9); in the microkernel
// stack interrupts are converted to IPC messages to user-level driver
// threads.

#ifndef UKVM_SRC_HW_INTERRUPTS_H_
#define UKVM_SRC_HW_INTERRUPTS_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "src/core/ids.h"

namespace hwsim {

class InterruptController {
 public:
  explicit InterruptController(uint32_t lines);

  uint32_t num_lines() const { return static_cast<uint32_t>(pending_.size()); }

  // Device-side: asserts a line (idempotent while pending).
  void Assert(ukvm::IrqLine line);

  // Masking (masked lines stay pending but are not delivered).
  void SetMask(ukvm::IrqLine line, bool masked);
  bool IsMasked(ukvm::IrqLine line) const;

  // Takes the lowest-numbered pending unmasked line, clearing its pending
  // bit (edge-triggered semantics); nullopt if none.
  std::optional<ukvm::IrqLine> TakePending();

  bool AnyDeliverable() const;
  uint64_t asserts() const { return asserts_; }
  uint64_t deliveries() const { return deliveries_; }

  // Observer for the flight recorder: fired on each Assert that latches a
  // new edge (delivered=false) and on each successful TakePending
  // (delivered=true). Purely observational — no cycles, no state.
  void SetTraceHook(std::function<void(ukvm::IrqLine, bool delivered)> hook) {
    trace_hook_ = std::move(hook);
  }

 private:
  bool LineInRange(ukvm::IrqLine line) const { return line.value() < pending_.size(); }

  std::vector<bool> pending_;
  std::vector<bool> masked_;
  uint64_t asserts_ = 0;
  uint64_t deliveries_ = 0;
  std::function<void(ukvm::IrqLine, bool)> trace_hook_;
};

// Inter-processor interrupt vectors. Unlike device lines these are
// CPU-to-CPU: the machine's shootdown protocol posts kTlbShootdown at the
// target vCPUs, which drain their latched vectors at delivery points.
enum class IpiVector : uint8_t {
  kTlbShootdown = 0,
};
inline constexpr uint32_t kIpiVectorCount = 1;

class IpiController {
 public:
  explicit IpiController(uint32_t num_vcpus);

  uint32_t num_vcpus() const { return static_cast<uint32_t>(pending_.size()); }

  // Latches `vec` at `vcpu` (idempotent while pending).
  void Post(uint32_t vcpu, IpiVector vec);
  bool Pending(uint32_t vcpu, IpiVector vec) const;
  // Clears and returns whether `vec` was pending at `vcpu`.
  bool TakePending(uint32_t vcpu, IpiVector vec);

  uint64_t posted() const { return posted_; }
  uint64_t delivered() const { return delivered_; }

 private:
  // pending_[vcpu][vector]
  std::vector<std::vector<bool>> pending_;
  uint64_t posted_ = 0;
  uint64_t delivered_ = 0;
};

}  // namespace hwsim

#endif  // UKVM_SRC_HW_INTERRUPTS_H_
