#include "src/hw/machine.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/core/log.h"

namespace hwsim {

Machine::Machine(Platform platform, uint64_t memory_bytes, uint32_t num_vcpus)
    : platform_(std::move(platform)),
      memory_(memory_bytes, platform_.page_shift),
      irq_controller_(platform_.irq_lines),
      ipis_(num_vcpus == 0 ? 1 : num_vcpus),
      vcpu_accounting_(num_vcpus == 0 ? 1 : num_vcpus) {
  if (num_vcpus == 0) {
    num_vcpus = 1;
  }
  cpus_.reserve(num_vcpus);
  for (uint32_t v = 0; v < num_vcpus; ++v) {
    cpus_.push_back(std::make_unique<Cpu>(*this, platform_.tlb_entries, v));
  }
  ledger_.SetTimeSource([this] { return now_; });
  tracer_.SetTimeSource([this] { return now_; });
  reqtrace_.SetTimeSource([this] { return now_; });
  trace_idle_frame_ = tracer_.profiler().InternFrame("idle");
  trace_irq_assert_name_ = tracer_.InternName("irq.assert");
  trace_irq_deliver_name_ = tracer_.InternName("irq.deliver");
  irq_controller_.SetTraceHook([this](ukvm::IrqLine line, bool delivered) {
    tracer_.Instant(delivered ? trace_irq_deliver_name_ : trace_irq_assert_name_,
                    ukvm::kHardwareDomain, line.value());
  });
}

void Machine::EnableTracing(const ukvm::TraceConfig& config) {
  tracer_.Enable(config);
  // The tracer lives in core and cannot see this layer's idle constant.
  tracer_.RegisterDomain(kIdleDomain, "idle");
  tracer_.RegisterDomain(ukvm::kHardwareDomain, "hardware");
  if (trace_sink_id_ == 0) {
    trace_sink_id_ = ledger_.AddTraceSink(
        [this](const ukvm::CrossingEvent& event) { tracer_.OnCrossing(event, ledger_); });
  }
  accounting_.SetObserver(&tracer_.profiler());
}

void Machine::DisableTracing() {
  accounting_.SetObserver(nullptr);
  if (trace_sink_id_ != 0) {
    ledger_.RemoveTraceSink(trace_sink_id_);
    trace_sink_id_ = 0;
  }
  tracer_.Disable();
}

void Machine::EnableRequestTracing(const ukvm::ReqTraceConfig& config) {
  reqtrace_.Enable(config);
  if (reqtrace_sink_id_ == 0) {
    reqtrace_sink_id_ = ledger_.AddTraceSink(
        [this](const ukvm::CrossingEvent& event) { reqtrace_.OnCrossing(event, ledger_); });
  }
}

void Machine::DisableRequestTracing() {
  if (reqtrace_sink_id_ != 0) {
    ledger_.RemoveTraceSink(reqtrace_sink_id_);
    reqtrace_sink_id_ = 0;
  }
  reqtrace_.Disable();
}

void Machine::Charge(uint64_t cycles) { ChargeTo(cpu().current_domain(), cycles); }

void Machine::ChargeTo(ukvm::DomainId domain, uint64_t cycles) {
  if (cycles == 0) {
    return;
  }
  const ukvm::DomainId billed = domain.valid() ? domain : ukvm::kHardwareDomain;
  accounting_.Charge(billed, cycles);
  vcpu_accounting_[current_vcpu_].Charge(billed, cycles);
  now_ += cycles;
}

void Machine::AccountOnly(ukvm::DomainId domain, uint64_t cycles) {
  AccountToVcpu(current_vcpu_, domain, cycles);
}

void Machine::AccountToVcpu(uint32_t vcpu, ukvm::DomainId domain, uint64_t cycles) {
  if (cycles == 0) {
    return;
  }
  const ukvm::DomainId billed = domain.valid() ? domain : ukvm::kHardwareDomain;
  accounting_.Charge(billed, cycles);
  vcpu_accounting_[vcpu].Charge(billed, cycles);
}

void Machine::ChargeCopy(uint64_t bytes) {
  const uint64_t t0 = now_;
  Charge(costs().CopyCost(bytes));
  reqtrace_.CopyLeaf(cpu().current_domain(), t0, now_, bytes);
}

Machine::EventId Machine::ScheduleAt(uint64_t time, std::function<void()> fn) {
  const EventId id = next_event_id_++;
  events_.push(Event{time < now_ ? now_ : time, id, std::move(fn)});
  return id;
}

Machine::EventId Machine::ScheduleAfter(uint64_t delay, std::function<void()> fn) {
  return ScheduleAt(now_ + delay, std::move(fn));
}

void Machine::CancelEvent(EventId id) { cancelled_.insert(id); }

bool Machine::HasPendingEvents() const { return events_.size() > cancelled_.size(); }

void Machine::AdvanceClockTo(uint64_t time) {
  if (time > now_) {
    ukvm::ProfScope idle(tracer_, trace_idle_frame_);
    accounting_.Charge(kIdleDomain, time - now_);
    vcpu_accounting_[current_vcpu_].Charge(kIdleDomain, time - now_);
    now_ = time;
  }
}

bool Machine::RunNextEvent() {
  while (!events_.empty()) {
    Event event = events_.top();
    events_.pop();
    if (auto it = cancelled_.find(event.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    AdvanceClockTo(event.time);
    // Event callbacks run on behalf of devices, not whatever request the
    // interrupted code was serving: clear the ambient request around them
    // so causality never leaks across a scheduling boundary.
    const ukvm::ReqTraceRef ambient = reqtrace_.SwapCurrent(ukvm::ReqTraceRef{});
    event.fn();
    reqtrace_.SwapCurrent(ambient);
    return true;
  }
  return false;
}

void Machine::RunUntilIdle(uint64_t max_events) {
  for (uint64_t i = 0; i < max_events; ++i) {
    if (!RunNextEvent()) {
      return;
    }
    DeliverPendingInterrupts();
  }
  UKVM_WARN("RunUntilIdle: stopped after %llu events",
            static_cast<unsigned long long>(max_events));
}

void Machine::RunFor(uint64_t cycles) {
  const uint64_t deadline = now_ + cycles;
  while (now_ < deadline) {
    if (events_.empty()) {
      AdvanceClockTo(deadline);
      return;
    }
    const uint64_t next_time = events_.top().time;
    if (next_time > deadline) {
      AdvanceClockTo(deadline);
      return;
    }
    RunNextEvent();
    DeliverPendingInterrupts();
  }
}

ukvm::Err Machine::WaitUntil(const std::function<bool()>& pred, uint64_t timeout_cycles) {
  const uint64_t deadline = now_ + timeout_cycles;
  while (!pred()) {
    if (now_ >= deadline) {
      return ukvm::Err::kTimedOut;
    }
    if (!HasPendingEvents()) {
      return ukvm::Err::kWouldBlock;  // nothing can ever satisfy the predicate
    }
    RunNextEvent();
    DeliverPendingInterrupts();
  }
  return ukvm::Err::kNone;
}

uint32_t Machine::SwitchVcpu(uint32_t vcpu) {
  assert(vcpu < num_vcpus());
  const uint32_t previous = current_vcpu_;
  current_vcpu_ = vcpu;
  if (ipis_.Pending(vcpu, IpiVector::kTlbShootdown)) {
    DeliverShootdownIpis(vcpu);
  }
  return previous;
}

uint64_t Machine::BeginTlbShootdown(const PageTable* space, std::span<const Vaddr> vpns,
                                    bool space_dying) {
  const uint64_t salt = Cpu::TlbSaltOf(space);
  ++shootdown_stats_.requests;
  shootdown_stats_.pages_requested += vpns.size();
  if (vpns.empty()) {
    ++shootdown_stats_.full_flushes;
  }

  // Local invalidation. The caller's unmap path usually did this already
  // (and charged for it); repeating it is idempotent and free, and covers
  // direct protocol users.
  Cpu& self = cpu();
  if (vpns.empty()) {
    self.FlushSpaceEntries(space, salt);
  } else {
    for (const Vaddr vpn : vpns) {
      self.InvalidatePageKeyed(salt, vpn);
    }
  }

  const uint64_t id = next_shootdown_id_++;
  if (num_vcpus() == 1) {
    return id;  // nobody else to notify; complete, nothing stored or charged
  }

  ShootdownRequest req;
  req.space = space;
  req.salt = salt;
  req.vpns.assign(vpns.begin(), vpns.end());
  req.space_dying = space_dying;
  req.initiator = current_vcpu_;
  req.pending.assign(num_vcpus(), false);
  for (uint32_t v = 0; v < num_vcpus(); ++v) {
    if (v == current_vcpu_) {
      continue;
    }
    req.pending[v] = true;
    ++req.outstanding;
    ipis_.Post(v, IpiVector::kTlbShootdown);
    ++shootdown_stats_.ipis_sent;
    Charge(costs().ipi_send);
  }
  if (race_sink_ != nullptr) {
    // The IPI posts publish the request's flush list to every target.
    race_sink_->Release(cpu().current_domain(), RaceEdgeKey(RaceEdgeKind::kIpi, id));
  }
  shootdowns_.emplace(id, std::move(req));
  return id;
}

void Machine::DeliverShootdownIpis(uint32_t vcpu) {
  ipis_.TakePending(vcpu, IpiVector::kTlbShootdown);
  Cpu& target = *cpus_[vcpu];
  for (auto& [id, req] : shootdowns_) {
    if (!req.pending[vcpu]) {
      continue;
    }
    uint64_t cost = costs().interrupt_dispatch;
    if (req.vpns.empty()) {
      target.FlushSpaceEntries(req.space, req.salt);
      cost += costs().tlb_flush_full;
    } else {
      for (const Vaddr vpn : req.vpns) {
        target.InvalidatePageKeyed(req.salt, vpn);
      }
      cost += costs().tlb_flush_page * req.vpns.size();
    }
    // The handler runs concurrently with the (spinning) initiator, so the
    // clock does not advance; the cycles bill to whatever the target vCPU
    // was running when the IPI hit.
    AccountToVcpu(vcpu, target.current_domain(), cost);
    req.pending[vcpu] = false;
    --req.outstanding;
    if (cost > req.max_target_cost) {
      req.max_target_cost = cost;
    }
    ++shootdown_stats_.remote_acks;
    if (race_sink_ != nullptr) {
      // The handler sees the initiator's history (IPI receipt) and its ack
      // publishes its own back to the initiator's spin-wait.
      race_sink_->Acquire(target.current_domain(), RaceEdgeKey(RaceEdgeKind::kIpi, id));
      race_sink_->Release(target.current_domain(), RaceEdgeKey(RaceEdgeKind::kIpiAck, id));
    }
  }
}

void Machine::WaitTlbShootdown(uint64_t id) {
  auto it = shootdowns_.find(id);
  if (it == shootdowns_.end()) {
    return;
  }
  for (uint32_t v = 0; v < num_vcpus(); ++v) {
    if (it->second.pending[v]) {
      DeliverShootdownIpis(v);
    }
  }
  // The initiator spun until the slowest target acked.
  const uint64_t spin_t0 = now_;
  Charge(it->second.max_target_cost);
  reqtrace_.ShootdownLeaf(cpu().current_domain(), spin_t0, now_);
  if (race_sink_ != nullptr) {
    race_sink_->Acquire(cpu().current_domain(), RaceEdgeKey(RaceEdgeKind::kIpiAck, id));
  }
  shootdowns_.erase(it);
}

bool Machine::ShootdownComplete(uint64_t id) const {
  const auto it = shootdowns_.find(id);
  return it == shootdowns_.end() || it->second.outstanding == 0;
}

uint64_t Machine::TlbShootdown(const PageTable* space, std::span<const Vaddr> vpns,
                               bool space_dying) {
  const uint64_t id = BeginTlbShootdown(space, vpns, space_dying);
  WaitTlbShootdown(id);
  return id;
}

void Machine::ShootdownSpaceDeath(const PageTable* space) {
  if (space == nullptr) {
    return;
  }
  // Idempotency is per table *instance*, not per pointer: the allocator can
  // hand a new table a destroyed one's address (and the salt registry its
  // salt id, once quarantine lifts), and that new table's death still needs
  // its own flush round.
  for (const DeadSpace& dead : dead_spaces_) {
    if (dead.instance == space->instance_id()) {
      return;
    }
  }
  const uint64_t salt = Cpu::TlbSaltOf(space);
  dead_spaces_.push_back(DeadSpace{space, salt, space->instance_id(), false});
  const size_t record = dead_spaces_.size() - 1;
  const uint64_t id = BeginTlbShootdown(space, {}, /*space_dying=*/true);
  WaitTlbShootdown(id);
  dead_spaces_[record].flush_acked = true;
  // Every vCPU acked the death flush: the salt id may leave quarantine
  // once the table object itself is gone.
  TlbSaltRegistry::Release(salt >> 32);
}

const Machine::DeadSpace* Machine::FindDeadSpaceBySalt(uint64_t salt) const {
  for (const DeadSpace& dead : dead_spaces_) {
    if (dead.salt == salt) {
      return &dead;
    }
  }
  return nullptr;
}

bool Machine::IsDeadSpace(const PageTable* space) const {
  for (const DeadSpace& dead : dead_spaces_) {
    if (dead.space == space) {
      return true;
    }
  }
  return false;
}

size_t Machine::unacked_shootdowns() const {
  size_t n = 0;
  for (const auto& [id, req] : shootdowns_) {
    if (req.outstanding > 0) {
      ++n;
    }
  }
  return n;
}

void Machine::ForEachUnackedShootdown(
    const std::function<void(uint64_t, uint32_t, uint32_t)>& fn) const {
  // Sorted so the auditor's reports are deterministic.
  std::vector<uint64_t> ids;
  ids.reserve(shootdowns_.size());
  for (const auto& [id, req] : shootdowns_) {
    if (req.outstanding > 0) {
      ids.push_back(id);
    }
  }
  std::sort(ids.begin(), ids.end());
  for (const uint64_t id : ids) {
    const ShootdownRequest& req = shootdowns_.at(id);
    fn(id, req.initiator, req.outstanding);
  }
}

void Machine::RaiseTrap(TrapFrame& frame) {
  assert(trap_handler_ != nullptr && "no privileged software booted");
  Charge(costs().trap_entry);
  trap_handler_->HandleTrap(frame);
  Charge(costs().trap_return);
}

void Machine::NotifyDmaTarget(Paddr target, bool to_memory) {
  if (!dma_audit_hook_) {
    return;
  }
  dma_audit_hook_(DmaAccess{memory_.FrameOf(target), to_memory, cpu().current_domain()});
}

void Machine::DeliverPendingInterrupts() {
  if (trap_handler_ == nullptr || !cpu().interrupts_enabled() || in_interrupt_delivery_) {
    return;
  }
  in_interrupt_delivery_ = true;
  const ukvm::ReqTraceRef ambient = reqtrace_.SwapCurrent(ukvm::ReqTraceRef{});
  while (auto line = irq_controller_.TakePending()) {
    Charge(costs().interrupt_dispatch);
    trap_handler_->HandleInterrupt(*line);
  }
  reqtrace_.SwapCurrent(ambient);
  in_interrupt_delivery_ = false;
}

void Machine::PostMortemDump(const char* reason) {
  if (postmortem_dumped_) {
    return;
  }
  postmortem_dumped_ = true;
  const char* dir = std::getenv("UKVM_TRACE_DIR");
  if (dir == nullptr || dir[0] == '\0') {
    return;
  }
  // One file per dumping machine; a process-wide sequence number keeps
  // multi-machine tests from clobbering each other's bundles.
  static int sequence = 0;
  const int seq = sequence++;
  const std::string path =
      std::string(dir) + "/POSTMORTEM_" + std::to_string(seq) + "_" + reason + ".txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return;
  }
  std::fprintf(f, "post-mortem bundle: %s\nsim time: %llu cycles\n\n", reason,
               static_cast<unsigned long long>(now_));

  std::fprintf(f, "== histograms ==\n");
  const auto dump_hist = [f](const std::string& name, const ukvm::LogHistogram& h) {
    const ukvm::HistogramSnapshot s = h.Snapshot();
    std::fprintf(f, "%s count=%llu min=%llu p50=%llu p90=%llu p99=%llu max=%llu\n",
                 name.c_str(), static_cast<unsigned long long>(s.count),
                 static_cast<unsigned long long>(s.min), static_cast<unsigned long long>(s.p50),
                 static_cast<unsigned long long>(s.p90), static_cast<unsigned long long>(s.p99),
                 static_cast<unsigned long long>(s.max));
  };
  tracer_.ForEachHistogram(dump_hist);
  reqtrace_.ForEachHistogram(dump_hist);

  std::fprintf(f, "\n== slowest requests ==\n%s", reqtrace_.SlowestReport().c_str());

  std::fprintf(f, "\n== flight recorder (oldest first) ==\n");
  tracer_.ForEachEvent([this, f](const ukvm::TraceEvent& event) {
    std::fprintf(f, "seq=%llu t=%llu type=%u name=%s dom=%s dur=%llu a=%llu b=%llu\n",
                 static_cast<unsigned long long>(event.seq),
                 static_cast<unsigned long long>(event.time),
                 static_cast<unsigned>(event.type), tracer_.Name(event.name).c_str(),
                 tracer_.DomainName(event.domain).c_str(),
                 static_cast<unsigned long long>(event.dur),
                 static_cast<unsigned long long>(event.a),
                 static_cast<unsigned long long>(event.b));
  });
  std::fclose(f);
  UKVM_WARN("post-mortem bundle written: %s", path.c_str());
}

}  // namespace hwsim
