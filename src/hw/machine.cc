#include "src/hw/machine.h"

#include <cassert>

#include "src/core/log.h"

namespace hwsim {

Machine::Machine(Platform platform, uint64_t memory_bytes)
    : platform_(std::move(platform)),
      memory_(memory_bytes, platform_.page_shift),
      irq_controller_(platform_.irq_lines),
      cpu_(*this, platform_.tlb_entries) {
  ledger_.SetTimeSource([this] { return now_; });
  tracer_.SetTimeSource([this] { return now_; });
  trace_idle_frame_ = tracer_.profiler().InternFrame("idle");
  trace_irq_assert_name_ = tracer_.InternName("irq.assert");
  trace_irq_deliver_name_ = tracer_.InternName("irq.deliver");
  irq_controller_.SetTraceHook([this](ukvm::IrqLine line, bool delivered) {
    tracer_.Instant(delivered ? trace_irq_deliver_name_ : trace_irq_assert_name_,
                    ukvm::kHardwareDomain, line.value());
  });
}

void Machine::EnableTracing(const ukvm::TraceConfig& config) {
  tracer_.Enable(config);
  // The tracer lives in core and cannot see this layer's idle constant.
  tracer_.RegisterDomain(kIdleDomain, "idle");
  tracer_.RegisterDomain(ukvm::kHardwareDomain, "hardware");
  if (trace_sink_id_ == 0) {
    trace_sink_id_ = ledger_.AddTraceSink(
        [this](const ukvm::CrossingEvent& event) { tracer_.OnCrossing(event, ledger_); });
  }
  accounting_.SetObserver(&tracer_.profiler());
}

void Machine::DisableTracing() {
  accounting_.SetObserver(nullptr);
  if (trace_sink_id_ != 0) {
    ledger_.RemoveTraceSink(trace_sink_id_);
    trace_sink_id_ = 0;
  }
  tracer_.Disable();
}

void Machine::Charge(uint64_t cycles) { ChargeTo(cpu_.current_domain(), cycles); }

void Machine::ChargeTo(ukvm::DomainId domain, uint64_t cycles) {
  if (cycles == 0) {
    return;
  }
  accounting_.Charge(domain.valid() ? domain : ukvm::kHardwareDomain, cycles);
  now_ += cycles;
}

void Machine::AccountOnly(ukvm::DomainId domain, uint64_t cycles) {
  if (cycles == 0) {
    return;
  }
  accounting_.Charge(domain.valid() ? domain : ukvm::kHardwareDomain, cycles);
}

Machine::EventId Machine::ScheduleAt(uint64_t time, std::function<void()> fn) {
  const EventId id = next_event_id_++;
  events_.push(Event{time < now_ ? now_ : time, id, std::move(fn)});
  return id;
}

Machine::EventId Machine::ScheduleAfter(uint64_t delay, std::function<void()> fn) {
  return ScheduleAt(now_ + delay, std::move(fn));
}

void Machine::CancelEvent(EventId id) { cancelled_.insert(id); }

bool Machine::HasPendingEvents() const { return events_.size() > cancelled_.size(); }

void Machine::AdvanceClockTo(uint64_t time) {
  if (time > now_) {
    ukvm::ProfScope idle(tracer_, trace_idle_frame_);
    accounting_.Charge(kIdleDomain, time - now_);
    now_ = time;
  }
}

bool Machine::RunNextEvent() {
  while (!events_.empty()) {
    Event event = events_.top();
    events_.pop();
    if (auto it = cancelled_.find(event.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    AdvanceClockTo(event.time);
    event.fn();
    return true;
  }
  return false;
}

void Machine::RunUntilIdle(uint64_t max_events) {
  for (uint64_t i = 0; i < max_events; ++i) {
    if (!RunNextEvent()) {
      return;
    }
    DeliverPendingInterrupts();
  }
  UKVM_WARN("RunUntilIdle: stopped after %llu events",
            static_cast<unsigned long long>(max_events));
}

void Machine::RunFor(uint64_t cycles) {
  const uint64_t deadline = now_ + cycles;
  while (now_ < deadline) {
    if (events_.empty()) {
      AdvanceClockTo(deadline);
      return;
    }
    const uint64_t next_time = events_.top().time;
    if (next_time > deadline) {
      AdvanceClockTo(deadline);
      return;
    }
    RunNextEvent();
    DeliverPendingInterrupts();
  }
}

ukvm::Err Machine::WaitUntil(const std::function<bool()>& pred, uint64_t timeout_cycles) {
  const uint64_t deadline = now_ + timeout_cycles;
  while (!pred()) {
    if (now_ >= deadline) {
      return ukvm::Err::kTimedOut;
    }
    if (!HasPendingEvents()) {
      return ukvm::Err::kWouldBlock;  // nothing can ever satisfy the predicate
    }
    RunNextEvent();
    DeliverPendingInterrupts();
  }
  return ukvm::Err::kNone;
}

void Machine::RaiseTrap(TrapFrame& frame) {
  assert(trap_handler_ != nullptr && "no privileged software booted");
  Charge(costs().trap_entry);
  trap_handler_->HandleTrap(frame);
  Charge(costs().trap_return);
}

void Machine::NotifyDmaTarget(Paddr target, bool to_memory) {
  if (!dma_audit_hook_) {
    return;
  }
  dma_audit_hook_(DmaAccess{memory_.FrameOf(target), to_memory, cpu_.current_domain()});
}

void Machine::DeliverPendingInterrupts() {
  if (trap_handler_ == nullptr || !cpu_.interrupts_enabled() || in_interrupt_delivery_) {
    return;
  }
  in_interrupt_delivery_ = true;
  while (auto line = irq_controller_.TakePending()) {
    Charge(costs().interrupt_dispatch);
    trap_handler_->HandleInterrupt(*line);
  }
  in_interrupt_delivery_ = false;
}

}  // namespace hwsim
