// The simulated machine: N vCPUs, physical memory, an interrupt controller,
// a virtual clock, and a discrete-event queue for devices.
//
// Execution model: software (kernels, guests, applications) runs as real
// C++ invoked through kernel entry points; each architectural operation
// charges cycles to the CPU's current domain, advancing the clock. Device
// activity is scheduled on the event queue at absolute times and is drained
// by the Run*/Wait* family; events never fire re-entrantly inside Charge(),
// which keeps the simulation deterministic and the call stack sane.

#ifndef UKVM_SRC_HW_MACHINE_H_
#define UKVM_SRC_HW_MACHINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/core/crossings.h"
#include "src/core/error.h"
#include "src/core/ids.h"
#include "src/core/metrics.h"
#include "src/core/reqtrace.h"
#include "src/core/trace.h"
#include "src/hw/cpu.h"
#include "src/hw/interrupts.h"
#include "src/hw/memory.h"
#include "src/hw/platform.h"
#include "src/hw/race_sink.h"
#include "src/hw/trap.h"

namespace hwsim {

// Accounting domain used while the CPU waits for devices with nothing to run.
inline constexpr ukvm::DomainId kIdleDomain{0xfffffffdu};

// Simulated cycles per microsecond (a ~2 GHz core); used to convert device
// latencies and experiment durations.
inline constexpr uint64_t kCyclesPerUs = 2000;

class Machine {
 public:
  Machine(Platform platform, uint64_t memory_bytes, uint32_t num_vcpus = 1);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  const Platform& platform() const { return platform_; }
  const CostModel& costs() const { return platform_.costs; }
  PhysicalMemory& memory() { return memory_; }
  InterruptController& irq_controller() { return irq_controller_; }
  IpiController& ipis() { return ipis_; }
  // The vCPU software is currently running on. Single-vCPU machines (the
  // default) behave exactly as before: one CPU, never switched.
  Cpu& cpu() { return *cpus_[current_vcpu_]; }
  const Cpu& cpu() const { return *cpus_[current_vcpu_]; }
  Cpu& cpu(uint32_t vcpu) { return *cpus_[vcpu]; }
  const Cpu& cpu(uint32_t vcpu) const { return *cpus_[vcpu]; }
  uint32_t num_vcpus() const { return static_cast<uint32_t>(cpus_.size()); }
  uint32_t current_vcpu() const { return current_vcpu_; }
  ukvm::CrossingLedger& ledger() { return ledger_; }
  ukvm::CpuAccounting& accounting() { return accounting_; }
  // Per-vCPU attribution (charges land on both this and the global table).
  ukvm::CpuAccounting& vcpu_accounting(uint32_t vcpu) { return vcpu_accounting_[vcpu]; }
  ukvm::Counters& counters() { return counters_; }
  ukvm::Tracer& tracer() { return tracer_; }
  const ukvm::Tracer& tracer() const { return tracer_; }
  ukvm::RequestTrace& reqtrace() { return reqtrace_; }
  const ukvm::RequestTrace& reqtrace() const { return reqtrace_; }

  // Moves execution to another vCPU (bookkeeping only — the cost of getting
  // there, if any, is the caller's to model). Returns the previous index.
  // Pending shootdown IPIs latched at the destination are delivered first,
  // as a real core drains its IPI queue when it next opens interrupts.
  uint32_t SwitchVcpu(uint32_t vcpu);
  // Round-robin step to the next vCPU; returns the new index.
  uint32_t NextVcpu() {
    SwitchVcpu((current_vcpu_ + 1) % num_vcpus());
    return current_vcpu_;
  }

  // --- Tracing (E17) --------------------------------------------------------

  // Arms the flight recorder, latency histograms, and cycle profiler: hooks
  // the ledger's trace stream, the IRQ controller, and CPU accounting.
  // Observation never charges simulated cycles, so enabling this leaves
  // every sim-cycle number byte-identical (bench_e17_trace_overhead).
  void EnableTracing(const ukvm::TraceConfig& config);
  void DisableTracing();

  // --- Request tracing (E22) ------------------------------------------------

  // Arms the causal request tracer: hooks the ledger's trace stream and
  // makes ChargeCopy / shootdown waits / the event loop feed per-request
  // DAGs. Same contract as EnableTracing: observation only, zero charges,
  // sim results byte-identical on or off (bench_e22_reqtrace).
  void EnableRequestTracing(const ukvm::ReqTraceConfig& config);
  void DisableRequestTracing();

  // Post-mortem bundle: on the first auditor violation or watchdog trip the
  // failure edge calls this to dump the flight-recorder ring, histogram
  // snapshots, and the K slowest request DAGs into $UKVM_TRACE_DIR (no-op
  // without the variable; at most one dump per machine).
  void PostMortemDump(const char* reason);

  // --- Clock and cycle charging -------------------------------------------

  uint64_t Now() const { return now_; }

  // Charges `cycles` to the CPU's current domain and advances the clock.
  void Charge(uint64_t cycles);

  // Charges to an explicit domain (e.g. kernel work on behalf of a domain)
  // and advances the clock.
  void ChargeTo(ukvm::DomainId domain, uint64_t cycles);

  // Attributes cycles without advancing the clock — for work that proceeds
  // concurrently with the CPU, such as device DMA.
  void AccountOnly(ukvm::DomainId domain, uint64_t cycles);

  // Charges the CPU cost of copying `bytes` (and, with request tracing
  // armed, attaches the copy interval to the ambient request).
  void ChargeCopy(uint64_t bytes);

  // --- Event queue ---------------------------------------------------------

  using EventId = uint64_t;
  EventId ScheduleAt(uint64_t time, std::function<void()> fn);
  EventId ScheduleAfter(uint64_t delay, std::function<void()> fn);
  void CancelEvent(EventId id);
  bool HasPendingEvents() const;

  // Runs the next due event, advancing the clock to its time (idle cycles
  // are attributed to kIdleDomain). False if the queue is empty.
  bool RunNextEvent();

  // Drains events until the queue is empty or `max_events` have run.
  void RunUntilIdle(uint64_t max_events = 1'000'000);

  // Processes events until the clock reaches Now()+cycles; idle gaps are
  // skipped (and attributed to kIdleDomain). Pending interrupts are
  // delivered between events if the CPU has them enabled.
  void RunFor(uint64_t cycles);

  // Advances events until `pred()` is true; kTimedOut after `timeout_cycles`.
  ukvm::Err WaitUntil(const std::function<bool()>& pred, uint64_t timeout_cycles);

  // --- TLB shootdown (E18) --------------------------------------------------
  //
  // Multi-vCPU TLB coherence: when a mapping is revoked (or a whole space
  // dies), every other vCPU may hold stale entries, so the initiator sends
  // IPIs and spins until all targets flushed and acked. With one vCPU the
  // protocol charges nothing at all, keeping single-vCPU experiments
  // byte-identical; the caller's existing local flush charges still apply.

  struct ShootdownStats {
    uint64_t requests = 0;
    uint64_t full_flushes = 0;     // whole-space (death) requests
    uint64_t pages_requested = 0;  // page-granular vpns across all requests
    uint64_t ipis_sent = 0;
    uint64_t remote_acks = 0;
  };

  // Starts a shootdown round for `vpns` of `space` (empty span = flush the
  // space's every entry): invalidates locally, posts kTlbShootdown IPIs to
  // every other vCPU and charges the APIC sends to the current domain.
  // Returns a request id for WaitTlbShootdown. `space` is captured by salt
  // and pointer identity only — never dereferenced after this call — so
  // requests stay valid across the space's destruction.
  uint64_t BeginTlbShootdown(const PageTable* space, std::span<const Vaddr> vpns,
                             bool space_dying);

  // Delivers any pending shootdown IPIs at `vcpu`: flushes the requested
  // entries from its TLB, attributes the handler cost to whatever that vCPU
  // is running (concurrently — the clock does not advance) and acks.
  void DeliverShootdownIpis(uint32_t vcpu);

  // Initiator side: delivers outstanding IPIs for `id` on their targets and
  // charges the spin-wait (the slowest target's handler cost) to the
  // current domain. No-op for unknown/already-completed ids.
  void WaitTlbShootdown(uint64_t id);

  bool ShootdownComplete(uint64_t id) const;

  // Begin + Wait. The common synchronous case.
  uint64_t TlbShootdown(const PageTable* space, std::span<const Vaddr> vpns,
                        bool space_dying = false);

  // Full address-space death: records the space in the dead-space registry
  // (the auditor flags any TLB entry still attributable to it), runs a
  // whole-space shootdown round, and releases the space's salt id to the
  // recycling quarantine once every vCPU acked. Idempotent per space.
  void ShootdownSpaceDeath(const PageTable* space);

  // Dead-space registry: spaces whose death shootdown ran. Pointers are
  // identity only — the PageTable object may be long gone.
  struct DeadSpace {
    const PageTable* space;
    uint64_t salt;
    uint64_t instance;  // PageTable::instance_id(): survives pointer AND salt reuse
    bool flush_acked;
  };
  const std::vector<DeadSpace>& dead_spaces() const { return dead_spaces_; }
  const DeadSpace* FindDeadSpaceBySalt(uint64_t salt) const;
  bool IsDeadSpace(const PageTable* space) const;

  // In-flight (not fully acked) shootdown requests, for the auditor.
  size_t unacked_shootdowns() const;
  void ForEachUnackedShootdown(
      const std::function<void(uint64_t id, uint32_t initiator, uint32_t outstanding)>& fn) const;

  const ShootdownStats& shootdown_stats() const { return shootdown_stats_; }

  // --- Traps and interrupts ------------------------------------------------

  void SetTrapHandler(TrapHandler* handler) { trap_handler_ = handler; }
  TrapHandler* trap_handler() const { return trap_handler_; }

  // Raises a synchronous trap: charges the entry cost, invokes the handler
  // (which may mutate the frame), charges the return cost.
  void RaiseTrap(TrapFrame& frame);

  // Delivers all pending unmasked interrupts through the trap handler if
  // the CPU has interrupts enabled. Kernels call this at safe points.
  void DeliverPendingInterrupts();

  // --- DMA auditing ---------------------------------------------------------

  // One device DMA touching physical memory: the frame under `target`,
  // whether the device writes memory (rx/read) or reads it (tx/write), and
  // the domain that was running when the transfer was submitted.
  struct DmaAccess {
    Frame frame = 0;
    bool to_memory = false;
    ukvm::DomainId initiator;
  };

  // Observer for device DMA; installed by the invariant auditor, nullptr to
  // detach. Devices report targets via NotifyDmaTarget at submit time.
  void SetDmaAuditHook(std::function<void(const DmaAccess&)> hook) {
    dma_audit_hook_ = std::move(hook);
  }

  // Called by device models for each page a DMA transfer touches.
  void NotifyDmaTarget(Paddr target, bool to_memory);

  // --- Race detection (E20) --------------------------------------------------

  // Observer for synchronization edges and shared-memory accesses; installed
  // by the happens-before detector (src/check/race), nullptr to detach.
  // Observation only — with or without a sink, charges are identical.
  void SetRaceSink(RaceSink* sink) { race_sink_ = sink; }
  RaceSink* race_sink() const { return race_sink_; }

  // Deterministic per-machine identity for shared objects (descriptor
  // rings) named in race-detector keys.
  uint64_t AllocRaceObjectId() { return next_race_object_id_++; }

 private:
  struct Event {
    uint64_t time;
    EventId id;
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      return a.time != b.time ? a.time > b.time : a.id > b.id;
    }
  };

  struct ShootdownRequest {
    const PageTable* space;  // identity only, never dereferenced
    uint64_t salt;
    std::vector<Vaddr> vpns;  // empty = whole-space flush
    bool space_dying;
    uint32_t initiator;
    std::vector<bool> pending;  // per vCPU
    uint32_t outstanding = 0;
    uint64_t max_target_cost = 0;
  };

  void AdvanceClockTo(uint64_t time);
  // Attributes concurrent work done at `vcpu` (no clock advance).
  void AccountToVcpu(uint32_t vcpu, ukvm::DomainId domain, uint64_t cycles);

  Platform platform_;
  PhysicalMemory memory_;
  InterruptController irq_controller_;
  IpiController ipis_;
  std::vector<std::unique_ptr<Cpu>> cpus_;
  uint32_t current_vcpu_ = 0;
  ukvm::CrossingLedger ledger_;
  ukvm::CpuAccounting accounting_;
  std::vector<ukvm::CpuAccounting> vcpu_accounting_;
  std::unordered_map<uint64_t, ShootdownRequest> shootdowns_;
  uint64_t next_shootdown_id_ = 1;
  std::vector<DeadSpace> dead_spaces_;
  ShootdownStats shootdown_stats_;
  ukvm::Counters counters_;
  ukvm::Tracer tracer_;
  uint32_t trace_sink_id_ = 0;
  ukvm::RequestTrace reqtrace_;
  uint32_t reqtrace_sink_id_ = 0;
  bool postmortem_dumped_ = false;
  uint32_t trace_idle_frame_ = 0;
  uint32_t trace_irq_assert_name_ = 0;
  uint32_t trace_irq_deliver_name_ = 0;
  TrapHandler* trap_handler_ = nullptr;
  std::function<void(const DmaAccess&)> dma_audit_hook_;
  RaceSink* race_sink_ = nullptr;
  uint64_t next_race_object_id_ = 1;

  uint64_t now_ = 0;
  EventId next_event_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  std::unordered_set<EventId> cancelled_;
  bool in_interrupt_delivery_ = false;
};

}  // namespace hwsim

#endif  // UKVM_SRC_HW_MACHINE_H_
