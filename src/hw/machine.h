// The simulated machine: one CPU, physical memory, an interrupt controller,
// a virtual clock, and a discrete-event queue for devices.
//
// Execution model: software (kernels, guests, applications) runs as real
// C++ invoked through kernel entry points; each architectural operation
// charges cycles to the CPU's current domain, advancing the clock. Device
// activity is scheduled on the event queue at absolute times and is drained
// by the Run*/Wait* family; events never fire re-entrantly inside Charge(),
// which keeps the simulation deterministic and the call stack sane.

#ifndef UKVM_SRC_HW_MACHINE_H_
#define UKVM_SRC_HW_MACHINE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/core/crossings.h"
#include "src/core/error.h"
#include "src/core/ids.h"
#include "src/core/metrics.h"
#include "src/core/trace.h"
#include "src/hw/cpu.h"
#include "src/hw/interrupts.h"
#include "src/hw/memory.h"
#include "src/hw/platform.h"
#include "src/hw/trap.h"

namespace hwsim {

// Accounting domain used while the CPU waits for devices with nothing to run.
inline constexpr ukvm::DomainId kIdleDomain{0xfffffffdu};

// Simulated cycles per microsecond (a ~2 GHz core); used to convert device
// latencies and experiment durations.
inline constexpr uint64_t kCyclesPerUs = 2000;

class Machine {
 public:
  Machine(Platform platform, uint64_t memory_bytes);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  const Platform& platform() const { return platform_; }
  const CostModel& costs() const { return platform_.costs; }
  PhysicalMemory& memory() { return memory_; }
  InterruptController& irq_controller() { return irq_controller_; }
  Cpu& cpu() { return cpu_; }
  ukvm::CrossingLedger& ledger() { return ledger_; }
  ukvm::CpuAccounting& accounting() { return accounting_; }
  ukvm::Counters& counters() { return counters_; }
  ukvm::Tracer& tracer() { return tracer_; }
  const ukvm::Tracer& tracer() const { return tracer_; }

  // --- Tracing (E17) --------------------------------------------------------

  // Arms the flight recorder, latency histograms, and cycle profiler: hooks
  // the ledger's trace stream, the IRQ controller, and CPU accounting.
  // Observation never charges simulated cycles, so enabling this leaves
  // every sim-cycle number byte-identical (bench_e17_trace_overhead).
  void EnableTracing(const ukvm::TraceConfig& config);
  void DisableTracing();

  // --- Clock and cycle charging -------------------------------------------

  uint64_t Now() const { return now_; }

  // Charges `cycles` to the CPU's current domain and advances the clock.
  void Charge(uint64_t cycles);

  // Charges to an explicit domain (e.g. kernel work on behalf of a domain)
  // and advances the clock.
  void ChargeTo(ukvm::DomainId domain, uint64_t cycles);

  // Attributes cycles without advancing the clock — for work that proceeds
  // concurrently with the CPU, such as device DMA.
  void AccountOnly(ukvm::DomainId domain, uint64_t cycles);

  // Charges the CPU cost of copying `bytes`.
  void ChargeCopy(uint64_t bytes) { Charge(costs().CopyCost(bytes)); }

  // --- Event queue ---------------------------------------------------------

  using EventId = uint64_t;
  EventId ScheduleAt(uint64_t time, std::function<void()> fn);
  EventId ScheduleAfter(uint64_t delay, std::function<void()> fn);
  void CancelEvent(EventId id);
  bool HasPendingEvents() const;

  // Runs the next due event, advancing the clock to its time (idle cycles
  // are attributed to kIdleDomain). False if the queue is empty.
  bool RunNextEvent();

  // Drains events until the queue is empty or `max_events` have run.
  void RunUntilIdle(uint64_t max_events = 1'000'000);

  // Processes events until the clock reaches Now()+cycles; idle gaps are
  // skipped (and attributed to kIdleDomain). Pending interrupts are
  // delivered between events if the CPU has them enabled.
  void RunFor(uint64_t cycles);

  // Advances events until `pred()` is true; kTimedOut after `timeout_cycles`.
  ukvm::Err WaitUntil(const std::function<bool()>& pred, uint64_t timeout_cycles);

  // --- Traps and interrupts ------------------------------------------------

  void SetTrapHandler(TrapHandler* handler) { trap_handler_ = handler; }
  TrapHandler* trap_handler() const { return trap_handler_; }

  // Raises a synchronous trap: charges the entry cost, invokes the handler
  // (which may mutate the frame), charges the return cost.
  void RaiseTrap(TrapFrame& frame);

  // Delivers all pending unmasked interrupts through the trap handler if
  // the CPU has interrupts enabled. Kernels call this at safe points.
  void DeliverPendingInterrupts();

  // --- DMA auditing ---------------------------------------------------------

  // One device DMA touching physical memory: the frame under `target`,
  // whether the device writes memory (rx/read) or reads it (tx/write), and
  // the domain that was running when the transfer was submitted.
  struct DmaAccess {
    Frame frame = 0;
    bool to_memory = false;
    ukvm::DomainId initiator;
  };

  // Observer for device DMA; installed by the invariant auditor, nullptr to
  // detach. Devices report targets via NotifyDmaTarget at submit time.
  void SetDmaAuditHook(std::function<void(const DmaAccess&)> hook) {
    dma_audit_hook_ = std::move(hook);
  }

  // Called by device models for each page a DMA transfer touches.
  void NotifyDmaTarget(Paddr target, bool to_memory);

 private:
  struct Event {
    uint64_t time;
    EventId id;
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      return a.time != b.time ? a.time > b.time : a.id > b.id;
    }
  };

  void AdvanceClockTo(uint64_t time);

  Platform platform_;
  PhysicalMemory memory_;
  InterruptController irq_controller_;
  Cpu cpu_;
  ukvm::CrossingLedger ledger_;
  ukvm::CpuAccounting accounting_;
  ukvm::Counters counters_;
  ukvm::Tracer tracer_;
  uint32_t trace_sink_id_ = 0;
  uint32_t trace_idle_frame_ = 0;
  uint32_t trace_irq_assert_name_ = 0;
  uint32_t trace_irq_deliver_name_ = 0;
  TrapHandler* trap_handler_ = nullptr;
  std::function<void(const DmaAccess&)> dma_audit_hook_;

  uint64_t now_ = 0;
  EventId next_event_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  std::unordered_set<EventId> cancelled_;
  bool in_interrupt_delivery_ = false;
};

}  // namespace hwsim

#endif  // UKVM_SRC_HW_MACHINE_H_
