// A small fully-associative TLB with FIFO replacement.
//
// TLB behaviour matters to the experiments because address-space switches
// (which both kernels perform on every protection-domain crossing on
// untagged architectures) flush it, and the subsequent refill cost is part
// of the true price of a crossing — the effect Liedtke's small-spaces work
// (cited by the paper as [Lie95]) was designed to avoid.

#ifndef UKVM_SRC_HW_TLB_H_
#define UKVM_SRC_HW_TLB_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/hw/memory.h"

namespace hwsim {

struct TlbEntry {
  Vaddr vpn = 0;
  Frame frame = 0;
  bool writable = false;
  bool user = false;
  bool valid = false;
  // Monotonic insertion stamp (per TLB); lets the auditor's incremental
  // coherence sweep visit only entries inserted since its last checkpoint.
  uint64_t stamp = 0;
};

class Tlb {
 public:
  explicit Tlb(uint32_t capacity);

  std::optional<TlbEntry> Lookup(Vaddr vpn);
  void Insert(Vaddr vpn, Frame frame, bool writable, bool user);
  void FlushAll();
  void FlushPage(Vaddr vpn);

  // Side-effect-free lookup for auditors: no hit/miss accounting, no cost.
  std::optional<TlbEntry> Probe(Vaddr vpn) const;

  // Invalidates every valid entry matching `pred`; returns how many.
  uint32_t FlushIf(const std::function<bool(const TlbEntry&)>& pred);

  // Visits every valid entry (keys as inserted, i.e. salted vpns).
  void ForEachValid(const std::function<void(const TlbEntry&)>& fn) const;

  // Visits every valid entry inserted after stamp `after` (exclusive).
  void ForEachValidSince(uint64_t after, const std::function<void(const TlbEntry&)>& fn) const;

  // Observer called after each Insert with the entry as stored. Installed
  // by the invariant auditor; pass nullptr to detach.
  void SetInsertHook(std::function<void(const TlbEntry&)> hook) {
    insert_hook_ = std::move(hook);
  }

  uint32_t capacity() const { return static_cast<uint32_t>(slots_.size()); }
  // Stamp of the most recent insert; entries carry stamps in (0, insert_seq].
  uint64_t insert_seq() const { return insert_seq_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t flushes() const { return flushes_; }
  uint32_t valid_entries() const;

 private:
  std::vector<TlbEntry> slots_;
  std::unordered_map<Vaddr, uint32_t> index_;  // vpn -> slot
  uint32_t next_victim_ = 0;                   // FIFO hand
  uint64_t insert_seq_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t flushes_ = 0;
  std::function<void(const TlbEntry&)> insert_hook_;
};

}  // namespace hwsim

#endif  // UKVM_SRC_HW_TLB_H_
