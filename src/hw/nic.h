// Simulated network interface with DMA rings and a pluggable wire.
//
// This is the device underneath experiment E3 (the Cherkasova & Gardner
// reproduction): packets DMA'd to/from physical memory, a completion IRQ
// per packet (drivers may coalesce by draining multiple completions per
// interrupt), and a wire modelled as a latency + peer callback so traffic
// generators and sinks can be attached.

#ifndef UKVM_SRC_HW_NIC_H_
#define UKVM_SRC_HW_NIC_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "src/core/error.h"
#include "src/core/ids.h"
#include "src/hw/fault_injector.h"
#include "src/hw/machine.h"

namespace hwsim {

struct NicRxCompletion {
  Paddr addr = 0;    // the posted buffer the packet was DMA'd into
  uint32_t len = 0;  // bytes received
};

struct NicTxCompletion {
  Paddr addr = 0;
  uint32_t len = 0;
};

class Nic {
 public:
  struct Config {
    uint32_t mtu = 1514;
    uint32_t rx_queue_depth = 256;
    uint64_t wire_latency = 20 * kCyclesPerUs;  // one-way propagation
  };

  Nic(Machine& machine, ukvm::IrqLine line, Config config);

  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  // --- Driver interface ----------------------------------------------------

  // Posts a receive buffer; incoming packets fill buffers in FIFO order.
  ukvm::Err PostRxBuffer(Paddr addr, uint32_t len);

  // Transmits `len` bytes DMA'd from `addr`. The packet reaches the peer
  // after DMA + wire latency; a TX completion IRQ fires after DMA.
  ukvm::Err Transmit(Paddr addr, uint32_t len);

  std::optional<NicRxCompletion> TakeRxCompletion();
  std::optional<NicTxCompletion> TakeTxCompletion();

  // Crash-recovery quiesce (E19): forgets every posted rx buffer (a later
  // arrival must not DMA into memory the dead driver posted), drops queued
  // completions, and orphans in-flight completion events. Packets already
  // on the wire still reach the peer. Returns the rx buffers forgotten.
  uint64_t CancelPosted();

  // The device's interrupt-enable register (NAPI-style mitigation: the
  // driver disables it, drains completions by polling, re-enables when the
  // rings run dry). While disabled, completion edges are latched instead of
  // asserted; re-enabling with a latched edge raises one IRQ, so a
  // completion that landed during the re-arm race is never lost.
  void SetInterruptEnable(bool enabled);
  bool interrupt_enabled() const { return irq_enabled_; }

  // --- Wire interface ------------------------------------------------------

  using PacketSink = std::function<void(std::vector<uint8_t>)>;

  // Where transmitted packets go (a peer NIC's InjectPacket, or a sink).
  void SetPeer(PacketSink sink) { peer_ = std::move(sink); }

  // A packet arriving from the wire: DMA'd into the next posted rx buffer
  // (truncated to the buffer), then an RX completion + IRQ. Dropped (and
  // counted) if no buffer is posted.
  void InjectPacket(std::span<const uint8_t> bytes);

  // --- Fault injection -----------------------------------------------------

  // Attaches a fault injector (nullptr detaches). Not owned; must outlive
  // the NIC or be detached first. Injected faults: tx frames silently lost
  // on the wire, rx frames dropped before DMA, byte corruption in transit,
  // lost completion IRQs, spurious IRQ edges.
  void SetFaultInjector(FaultInjector* injector) { faults_ = injector; }
  FaultInjector* fault_injector() const { return faults_; }

  // --- Introspection -------------------------------------------------------

  const Config& config() const { return config_; }
  ukvm::IrqLine line() const { return line_; }
  uint64_t tx_packets() const { return tx_packets_; }
  uint64_t rx_packets() const { return rx_packets_; }
  uint64_t rx_drops() const { return rx_drops_; }
  uint64_t irqs_raised() const { return irqs_raised_; }
  uint64_t irqs_suppressed() const { return irqs_suppressed_; }
  size_t posted_rx_buffers() const { return rx_buffers_.size(); }

 private:
  // Asserts the completion IRQ unless the injector swallows the edge.
  void RaiseIrq();
  struct Buffer {
    Paddr addr;
    uint32_t len;
  };

  Machine& machine_;
  ukvm::IrqLine line_;
  Config config_;
  FaultInjector* faults_ = nullptr;
  PacketSink peer_;
  std::deque<Buffer> rx_buffers_;
  std::deque<NicRxCompletion> rx_completions_;
  std::deque<NicTxCompletion> tx_completions_;
  bool irq_enabled_ = true;
  bool irq_latched_ = false;
  uint64_t cancel_epoch_ = 0;  // bumping it orphans scheduled completions
  uint64_t tx_packets_ = 0;
  uint64_t rx_packets_ = 0;
  uint64_t rx_drops_ = 0;
  uint64_t irqs_raised_ = 0;
  uint64_t irqs_suppressed_ = 0;
};

}  // namespace hwsim

#endif  // UKVM_SRC_HW_NIC_H_
