#include "src/hw/timer.h"

#include <cassert>

namespace hwsim {

Timer::Timer(Machine& machine, ukvm::IrqLine line) : machine_(machine), line_(line) {}

Timer::~Timer() { Stop(); }

void Timer::Start(uint64_t period_cycles) {
  assert(period_cycles > 0);
  Stop();
  period_ = period_cycles;
  running_ = true;
  ScheduleTick();
}

void Timer::Stop() {
  if (running_ && pending_event_ != 0) {
    machine_.CancelEvent(pending_event_);
  }
  running_ = false;
  pending_event_ = 0;
}

void Timer::ScheduleTick() {
  pending_event_ = machine_.ScheduleAfter(period_, [this] {
    if (!running_) {
      return;
    }
    ++ticks_;
    machine_.irq_controller().Assert(line_);
    ScheduleTick();
  });
}

}  // namespace hwsim
