#include "src/check/ledger_lint.h"

#include <cctype>

namespace ucheck {
namespace {

// Splits a dotted mechanism name; empty result means a malformed segment.
std::vector<std::string> SplitName(const std::string& name) {
  std::vector<std::string> segments;
  std::string current;
  for (char c : name) {
    if (c == '.') {
      if (current.empty()) {
        return {};
      }
      segments.push_back(current);
      current.clear();
      continue;
    }
    const bool legal = (std::islower(static_cast<unsigned char>(c)) != 0) ||
                       (std::isdigit(static_cast<unsigned char>(c)) != 0) || c == '_';
    if (!legal) {
      return {};
    }
    current += c;
  }
  if (current.empty()) {
    return {};
  }
  segments.push_back(current);
  return segments;
}

}  // namespace

const char* LintRuleName(LintRule rule) {
  switch (rule) {
    case LintRule::kUnmatchedReply:
      return "unmatched-reply";
    case LintRule::kUnbalancedPair:
      return "unbalanced-pair";
    case LintRule::kNonMonotonicTime:
      return "non-monotonic-time";
    case LintRule::kBadMechanismName:
      return "bad-mechanism-name";
    case LintRule::kKindMismatch:
      return "kind-mismatch";
  }
  return "?";
}

LedgerLint::LedgerLint(const ukvm::CrossingLedger& ledger)
    : ledger_(ledger), stack_prefixes_{"l4", "xen", "native"} {
  groups_.push_back(PairGroup{"ipc", {}, 0});
  groups_.push_back(PairGroup{"hypercall", {}, 0});
  groups_.push_back(PairGroup{"guest-trap", {}, 0});
}

LedgerLint::MechanismInfo LedgerLint::Classify(uint32_t id) const {
  MechanismInfo info;
  info.name = ledger_.MechanismName(id);
  info.kind = ledger_.MechanismKind(id);
  // The pairing table. Mechanisms absent here are exempt: either not a
  // paired kind, or one-way by design (l4.ipc.send has no reply transfer,
  // xen.syscall.fastgate and native.syscall return without a recorded
  // crossing — the return path is the point of those fast paths).
  struct Role {
    const char* name;
    PairRole role;
    int group;
  };
  static constexpr Role kRoles[] = {
      {"l4.ipc.call", PairRole::kOpens, 0},
      {"l4.pf.ipc", PairRole::kOpens, 0},
      {"l4.ipc.reply", PairRole::kCloses, 0},
      // E23: the coalesced reply-and-wait crossing closes the same group a
      // fast Call opened — a fast path that forgets it leaves the pair
      // unbalanced, which is exactly what the mutation test checks.
      {"l4.ipc.replywait", PairRole::kCloses, 0},
      {"xen.hypercall", PairRole::kOpens, 1},
      {"xen.hypercall.return", PairRole::kCloses, 1},
      {"xen.syscall.reflect", PairRole::kOpens, 2},
      {"xen.pf.reflect", PairRole::kOpens, 2},
      {"xen.exc.reflect", PairRole::kOpens, 2},
      {"xen.iret", PairRole::kCloses, 2},
  };
  for (const Role& role : kRoles) {
    if (info.name == role.name) {
      info.role = role.role;
      info.group = role.group;
      break;
    }
  }
  return info;
}

const LedgerLint::MechanismInfo& LedgerLint::InfoFor(uint32_t id) {
  auto it = mechanisms_.find(id);
  if (it != mechanisms_.end()) {
    return it->second;
  }
  return mechanisms_.emplace(id, Classify(id)).first->second;
}

void LedgerLint::CheckName(const MechanismInfo& info, const ukvm::CrossingEvent& event) {
  auto flag = [&](LintRule rule, std::string detail) {
    violations_.push_back(LintViolation{rule, info.name, event.time, event.seq,
                                        std::move(detail)});
  };

  const std::vector<std::string> segments = SplitName(info.name);
  if (segments.size() < 2 || segments.size() > 4) {
    flag(LintRule::kBadMechanismName,
         "name must be 2-4 dot-separated segments of [a-z0-9_]+");
    return;
  }
  bool prefix_ok = false;
  for (const std::string& prefix : stack_prefixes_) {
    if (segments.front() == prefix) {
      prefix_ok = true;
      break;
    }
  }
  if (!prefix_ok) {
    flag(LintRule::kBadMechanismName, "unknown stack prefix '" + segments.front() + "'");
  }

  if (info.kind == ukvm::CrossingKind::kKindCount) {
    flag(LintRule::kKindMismatch, "mechanism interned with the sentinel kind");
    return;
  }
  // The name's last segment implies a kind; the interned kind must agree.
  const std::string& op = segments.back();
  auto expect = [&](ukvm::CrossingKind kind) {
    if (info.kind != kind) {
      flag(LintRule::kKindMismatch, "suffix '" + op + "' implies " +
                                        ukvm::CrossingKindName(kind) + " but interned as " +
                                        ukvm::CrossingKindName(info.kind));
    }
  };
  if (op == "reply" || op == "return") {
    expect(ukvm::CrossingKind::kSyncReply);
  } else if (op == "iret") {
    expect(ukvm::CrossingKind::kTrapReturn);
  } else if (op == "irq" || op == "virq") {
    expect(ukvm::CrossingKind::kInterrupt);
  }
}

void LedgerLint::Observe(const ukvm::CrossingEvent& event) {
  ++events_observed_;

  if (have_last_time_ && event.time < last_time_) {
    violations_.push_back(LintViolation{LintRule::kNonMonotonicTime,
                                        ledger_.MechanismName(event.mechanism), event.time,
                                        event.seq, "time ran backwards"});
  }
  last_time_ = event.time;
  have_last_time_ = true;

  const bool first_sighting = !mechanisms_.contains(event.mechanism);
  const MechanismInfo& info = InfoFor(event.mechanism);
  if (first_sighting) {
    CheckName(info, event);
  }

  if (info.role == PairRole::kNone) {
    return;
  }
  PairGroup& group = groups_[static_cast<size_t>(info.group)];
  const auto from = event.from.value();
  const auto to = event.to.value();
  if (info.role == PairRole::kOpens) {
    ++group.outstanding[{from, to}];
    return;
  }
  // A close travels the reverse direction of the open it matches.
  auto it = group.outstanding.find({to, from});
  if (it == group.outstanding.end() || it->second <= 0) {
    violations_.push_back(LintViolation{LintRule::kUnmatchedReply, info.name, event.time,
                                        event.seq,
                                        "no outstanding " + group.name + " call for this pair"});
    return;
  }
  if (--it->second == 0) {
    group.outstanding.erase(it);
  }
  ++group.completed;
}

void LedgerLint::CheckBalanced() {
  for (const PairGroup& group : groups_) {
    for (const auto& [pair, count] : group.outstanding) {
      if (count != 0) {
        violations_.push_back(LintViolation{
            LintRule::kUnbalancedPair, group.name, last_time_, events_observed_,
            std::to_string(count) + " outstanding between domains " +
                std::to_string(pair.first) + " -> " + std::to_string(pair.second)});
      }
    }
  }
}

void LedgerLint::Reset() {
  for (PairGroup& group : groups_) {
    group.outstanding.clear();
    group.completed = 0;
  }
  have_last_time_ = false;
  last_time_ = 0;
  events_observed_ = 0;
}

uint64_t LedgerLint::CompletedPairs(const std::string& group) const {
  for (const PairGroup& g : groups_) {
    if (g.name == group) {
      return g.completed;
    }
  }
  return 0;
}

}  // namespace ucheck
