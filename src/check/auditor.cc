#include "src/check/auditor.h"

#include <utility>

#include "src/core/log.h"
#include "src/hw/cpu.h"
#include "src/ukernel/kernel.h"
#include "src/ukernel/mapdb.h"
#include "src/ukernel/task.h"
#include "src/vmm/domain.h"
#include "src/vmm/grant_table.h"
#include "src/vmm/hypervisor.h"
#include "src/vmm/pt_virt.h"

namespace ucheck {

Auditor::Auditor(hwsim::Machine& machine) : Auditor(machine, Options{}) {}

Auditor::Auditor(hwsim::Machine& machine, Options options)
    : machine_(machine), options_(options), invariants_(machine), lint_(machine.ledger()) {
  trace_sink_id_ = machine_.ledger().AddTraceSink(
      [this](const ukvm::CrossingEvent& event) { OnCrossing(event); });
  machine_.ledger().SetResetHook([this] { lint_.Reset(); });
  if (options_.check_tlb_inserts) {
    // Every vCPU's TLB, not just the boot CPU's: remote shootdown targets
    // refill their TLBs too.
    for (uint32_t v = 0; v < machine_.num_vcpus(); ++v) {
      machine_.cpu(v).tlb().SetInsertHook(
          [this](const hwsim::TlbEntry& entry) { invariants_.CheckTlbInsert(entry); });
    }
  }
  if (options_.check_dma) {
    machine_.SetDmaAuditHook(
        [this](const hwsim::Machine::DmaAccess& access) { invariants_.CheckDmaTarget(access); });
  }
  if (options_.race_detect) {
    race_ = std::make_unique<RaceDetector>(machine_);
  }
}

Auditor::~Auditor() {
  machine_.ledger().RemoveTraceSink(trace_sink_id_);
  machine_.ledger().SetResetHook(nullptr);
  for (uint32_t v = 0; v < machine_.num_vcpus(); ++v) {
    machine_.cpu(v).tlb().SetInsertHook(nullptr);
  }
  machine_.SetDmaAuditHook(nullptr);
  if (kernel_ != nullptr) {
    kernel_->mapdb().SetAuditHook(nullptr);
    kernel_->ForEachTask([](ukern::Task& t) { t.space.SetAuditHook(nullptr); });
  }
  if (hv_ != nullptr) {
    hv_->gnttab().SetAuditHook(nullptr);
    hv_->pt_virt().SetAuditHook(nullptr);
    hv_->ForEachDomain([](uvmm::Domain& d) { d.space.SetAuditHook(nullptr); });
  }
  for (auto& [domain, space] : raw_spaces_) {
    space->SetAuditHook(nullptr);
  }
}

void Auditor::AttachUkernel(ukern::Kernel& kernel) {
  kernel_ = &kernel;
  invariants_.AttachUkernel(kernel);
  kernel.mapdb().SetAuditHook([this] { mapdb_dirty_ = true; });
  RefreshSpaceHooks();
}

void Auditor::AttachVmm(uvmm::Hypervisor& hv) {
  hv_ = &hv;
  invariants_.AttachVmm(hv);
  if (race_) {
    race_->SetHubDomain(hv.vmm_domain());
  }
  hv.gnttab().SetAuditHook([this] { grants_dirty_ = true; });
  // PT-update batches bypass no hooks (PtVirt goes through PageTable::Map/
  // Unmap), but the batch hook gives a consistent point to rescan just the
  // touched domain's table, catching multi-update interactions the
  // per-update checks cannot see.
  hv.pt_virt().SetAuditHook([this](const uvmm::Domain& dom) {
    if (options_.check_pt_updates) {
      invariants_.CheckSpace(dom.id, SpaceKind::kVmmDomain, dom.space);
    }
  });
  RefreshSpaceHooks();
}

void Auditor::AttachSpace(ukvm::DomainId domain, hwsim::PageTable& space) {
  raw_spaces_.emplace_back(domain, &space);
  invariants_.AttachSpace(domain, space);
  HookSpace(domain, SpaceKind::kRaw, space);
}

void Auditor::DetachSpace(hwsim::PageTable& space) {
  space.SetAuditHook(nullptr);
  std::erase_if(raw_spaces_, [sp = &space](const auto& e) { return e.second == sp; });
  invariants_.DetachSpace(&space);
}

void Auditor::HookSpace(ukvm::DomainId domain, SpaceKind kind, hwsim::PageTable& space) {
  if (!options_.check_pt_updates) {
    return;
  }
  space.SetAuditHook([this, domain, kind, sp = &space](hwsim::PageTable::AuditOp op,
                                                       hwsim::Vaddr vpn, const hwsim::Pte& pte) {
    OnPtOp(sp, domain, kind, op, vpn, pte);
  });
}

void Auditor::RefreshSpaceHooks() {
  if (kernel_ != nullptr) {
    kernel_->ForEachTask(
        [this](ukern::Task& t) { HookSpace(t.id, SpaceKind::kUkernelTask, t.space); });
  }
  if (hv_ != nullptr) {
    hv_->ForEachDomain(
        [this](uvmm::Domain& d) { HookSpace(d.id, SpaceKind::kVmmDomain, d.space); });
  }
}

void Auditor::OnPtOp(const hwsim::PageTable* space, ukvm::DomainId domain, SpaceKind kind,
                     hwsim::PageTable::AuditOp op, hwsim::Vaddr vpn, const hwsim::Pte& pte) {
  if (op == hwsim::PageTable::AuditOp::kUnmap) {
    // The kernel flushes the TLB right after this hook fires, so the check
    // must wait: it runs at the next recorded crossing (by which time the
    // operation has completed) or at the next checkpoint.
    pending_unmaps_.push_back(PendingUnmap{space, vpn});
    return;
  }
  invariants_.CheckMappedPte(domain, kind, vpn, pte);
}

void Auditor::DrainPendingUnmaps() {
  for (const PendingUnmap& pending : pending_unmaps_) {
    invariants_.CheckUnmapFlushed(pending.space, pending.vpn);
  }
  pending_unmaps_.clear();
}

void Auditor::OnCrossing(const ukvm::CrossingEvent& event) {
  if (options_.lint_crossings) {
    lint_.Observe(event);
  }
  if (!pending_unmaps_.empty()) {
    DrainPendingUnmaps();
  }
}

void Auditor::Checkpoint(const std::string& phase) {
  ++checkpoints_;
  RefreshSpaceHooks();
  DrainPendingUnmaps();
  if (options_.incremental_tlb) {
    invariants_.CheckTlbCoherenceSince(tlb_stamps_);
  } else {
    invariants_.CheckTlbCoherence();
  }
  invariants_.CheckShootdownAcks();
  invariants_.CheckFrameOwnership();
  invariants_.CheckPrivilegeDiscipline();
  invariants_.CheckDeadDomainReclamation();
  if (grants_dirty_) {
    invariants_.CheckGrantRefcounts();
    grants_dirty_ = false;
  }
  if (mapdb_dirty_) {
    invariants_.CheckMapDbCoherence();
    mapdb_dirty_ = false;
  }
  if (options_.lint_crossings) {
    lint_.CheckBalanced();
  }
  const std::vector<std::string> reports = ViolationReports();
  for (size_t i = warned_; i < reports.size(); ++i) {
    UKVM_WARN("ukvm-check[%s]: %s", phase.c_str(), reports[i].c_str());
  }
  if (warned_ == 0 && !reports.empty()) {
    // First violation this machine has ever seen: capture the evidence
    // (flight recorder, histograms, slowest request DAGs) while it is
    // still in the retained windows.
    machine_.PostMortemDump("auditor-violation");
  }
  warned_ = reports.size();
}

std::vector<std::string> Auditor::ViolationReports() const {
  std::vector<std::string> reports;
  for (const InvariantViolation& v : invariants_.violations()) {
    reports.push_back("invariant " + std::string(InvariantName(v.rule)) + " at t=" +
                      std::to_string(v.time) + ": " + v.detail);
  }
  for (const LintViolation& v : lint_.violations()) {
    reports.push_back("lint " + std::string(LintRuleName(v.rule)) + " at t=" +
                      std::to_string(v.time) + " seq=" + std::to_string(v.seq) + " [" +
                      v.mechanism + "]: " + v.detail);
  }
  if (race_) {
    for (std::string& report : race_->ViolationReports()) {
      reports.push_back(std::move(report));
    }
  }
  return reports;
}

void Auditor::ClearViolations() {
  invariants_.ClearViolations();
  lint_.ClearViolations();
  if (race_) {
    race_->ClearViolations();
  }
  warned_ = 0;
}

}  // namespace ucheck
