#include "src/check/race.h"

#include <algorithm>
#include <sstream>

#include "src/core/crossings.h"

namespace ucheck {

const char* RaceRuleName(RaceRule rule) {
  switch (rule) {
    case RaceRule::kUnsyncedSharedAccess:
      return "kUnsyncedSharedAccess";
    case RaceRule::kRingReadBeforePublish:
      return "kRingReadBeforePublish";
    case RaceRule::kRuleCount:
      break;
  }
  return "kUnknownRaceRule";
}

RaceDetector::RaceDetector(hwsim::Machine& machine) : machine_(machine) {
  trace_sink_id_ = machine_.ledger().AddTraceSink(
      [this](const ukvm::CrossingEvent& event) { OnCrossing(event); });
  machine_.SetRaceSink(this);
}

RaceDetector::~RaceDetector() {
  if (machine_.race_sink() == this) {
    machine_.SetRaceSink(nullptr);
  }
  machine_.ledger().RemoveTraceSink(trace_sink_id_);
}

size_t RaceDetector::CtxOf(ukvm::DomainId ctx) {
  if (!ctx.valid()) {
    return kNoCtx;
  }
  auto [it, inserted] = ctx_index_.try_emplace(ctx.value(), clocks_.size());
  if (inserted) {
    size_t c = it->second;
    ctx_dom_.push_back(ctx.value());
    clocks_.emplace_back(c + 1, 0);
    clocks_[c][c] = 1;  // epoch 0 is reserved for "never wrote"
    dead_.push_back(false);
  }
  return it->second;
}

size_t RaceDetector::FindCtx(ukvm::DomainId ctx) const {
  if (!ctx.valid()) {
    return kNoCtx;
  }
  auto it = ctx_index_.find(ctx.value());
  return it == ctx_index_.end() ? kNoCtx : it->second;
}

void RaceDetector::JoinInto(std::vector<uint64_t>& dst, const std::vector<uint64_t>& src) {
  if (src.size() > dst.size()) {
    dst.resize(src.size(), 0);
  }
  for (size_t i = 0; i < src.size(); ++i) {
    dst[i] = std::max(dst[i], src[i]);
  }
}

bool RaceDetector::Ordered(size_t c, size_t prev, uint64_t epoch) const {
  if (prev == c) {
    return true;  // program order within one context
  }
  if (dead_[prev]) {
    // The context died and its shared mappings were force-revoked (with a
    // shootdown); nothing it did can race with accesses after its death.
    return true;
  }
  return At(clocks_[c], prev) >= epoch;
}

void RaceDetector::Release(ukvm::DomainId ctx, uint64_t key) {
  size_t c = CtxOf(ctx);
  if (c == kNoCtx) {
    return;
  }
  ++stats_.releases;
  JoinInto(edges_[key], clocks_[c]);
  ++clocks_[c][c];  // FastTrack: the epoch advances at release points only
}

void RaceDetector::Acquire(ukvm::DomainId ctx, uint64_t key) {
  size_t c = CtxOf(ctx);
  if (c == kNoCtx) {
    return;
  }
  ++stats_.acquires;
  auto it = edges_.find(key);
  if (it == edges_.end()) {
    return;  // acquire of a never-released key orders nothing
  }
  JoinInto(clocks_[c], it->second);
}

void RaceDetector::SharedWrite(ukvm::DomainId ctx, uint64_t object, uint64_t offset,
                               const char* what) {
  size_t c = CtxOf(ctx);
  if (c == kNoCtx) {
    return;
  }
  ++stats_.shared_accesses;
  Cell& cell = shadow_[object][offset];
  if (cell.writer != kNoCtx && !Ordered(c, cell.writer, cell.write_epoch)) {
    std::ostringstream os;
    os << "write/write on " << DescribeObject(object, offset) << ": "
       << CtxName(c) << " '" << (what ? what : "?") << "' vs " << CtxName(cell.writer)
       << " '" << (cell.write_what ? cell.write_what : "?") << "' with no happens-before edge";
    RecordViolation(RaceRule::kUnsyncedSharedAccess, os.str());
  }
  for (const auto& [rc, read] : cell.reads) {
    if (!Ordered(c, rc, read.epoch)) {
      std::ostringstream os;
      os << "read/write on " << DescribeObject(object, offset) << ": write by "
         << CtxName(c) << " '" << (what ? what : "?") << "' unordered vs read by "
         << CtxName(rc) << " '" << (read.what ? read.what : "?") << "'";
      RecordViolation(RaceRule::kUnsyncedSharedAccess, os.str());
    }
  }
  cell.writer = c;
  cell.write_epoch = OwnEpoch(c);
  cell.write_what = what;
  cell.reads.clear();
}

void RaceDetector::SharedRead(ukvm::DomainId ctx, uint64_t object, uint64_t offset,
                              const char* what) {
  size_t c = CtxOf(ctx);
  if (c == kNoCtx) {
    return;
  }
  ++stats_.shared_accesses;
  Cell& cell = shadow_[object][offset];
  if (cell.writer != kNoCtx && !Ordered(c, cell.writer, cell.write_epoch)) {
    std::ostringstream os;
    os << "write/read on " << DescribeObject(object, offset) << ": read by "
       << CtxName(c) << " '" << (what ? what : "?") << "' unordered vs write by "
       << CtxName(cell.writer) << " '" << (cell.write_what ? cell.write_what : "?") << "'";
    RecordViolation(RaceRule::kUnsyncedSharedAccess, os.str());
  }
  ReadRecord& read = cell.reads[c];
  read.epoch = OwnEpoch(c);
  read.what = what;
}

void RaceDetector::RingPublish(ukvm::DomainId ctx, uint64_t key, uint64_t count) {
  uint64_t& published = published_[key];
  published = std::max(published, count);
  size_t c = CtxOf(ctx);
  if (c == kNoCtx) {
    return;  // contextless baseline publish: ordered history, no HB edge
  }
  ++stats_.ring_publishes;
  // The index store is the release half of the ring's publish protocol.
  JoinInto(edges_[key], clocks_[c]);
  ++clocks_[c][c];
  ++stats_.releases;
}

bool RaceDetector::RingObserve(ukvm::DomainId ctx, uint64_t key, uint64_t index) {
  size_t c = CtxOf(ctx);
  if (c == kNoCtx) {
    return true;  // untracked context: don't second-guess the caller
  }
  ++stats_.ring_observes;
  auto it = published_.find(key);
  uint64_t published = it == published_.end() ? 0 : it->second;
  if (index >= published) {
    std::ostringstream os;
    os << CtxName(c) << " read " << DescribeObject(key, index) << " at index " << index
       << " but only " << published << " entries are published";
    RecordViolation(RaceRule::kRingReadBeforePublish, os.str());
    return false;  // caller skips the slot read: one bug, one rule
  }
  auto edge = edges_.find(key);
  if (edge != edges_.end()) {
    JoinInto(clocks_[c], edge->second);
  }
  ++stats_.acquires;
  return true;
}

void RaceDetector::ContextDead(ukvm::DomainId ctx) {
  size_t c = FindCtx(ctx);
  if (c != kNoCtx) {
    dead_[c] = true;
  }
}

void RaceDetector::OnCrossing(const ukvm::CrossingEvent& event) {
  // Every hypercall/return crossing touches the VMM hub domain; treating
  // those as edges would totally order all guests through the hub and mask
  // real races, so hub-adjacent crossings are skipped (see SetHubDomain).
  if (!event.from.valid() || !event.to.valid() || event.from == event.to ||
      event.from == hub_ || event.to == hub_) {
    return;
  }
  uint64_t key =
      hwsim::RaceEdgeKey(hwsim::RaceEdgeKind::kIpc, event.from.value(), event.to.value());
  Release(event.from, key);
  Acquire(event.to, key);
}

void RaceDetector::RecordViolation(RaceRule rule, std::string detail) {
  ++rule_counts_[static_cast<size_t>(rule)];
  if (violations_.size() < kMaxStoredViolations) {
    violations_.push_back(RaceViolation{rule, machine_.Now(), std::move(detail)});
  }
}

std::string RaceDetector::DescribeObject(uint64_t object, uint64_t offset) const {
  auto kind = static_cast<hwsim::RaceEdgeKind>(object >> 56);
  uint64_t a = (object >> 28) & 0xFFF'FFFFull;
  uint64_t b = object & 0xFFF'FFFFull;
  std::ostringstream os;
  switch (kind) {
    case hwsim::RaceEdgeKind::kRingReq:
      os << "ring#" << a << ".req[" << offset << "]";
      break;
    case hwsim::RaceEdgeKind::kRingResp:
      os << "ring#" << a << ".rsp[" << offset << "]";
      break;
    case hwsim::RaceEdgeKind::kFrame:
      os << "frame 0x" << std::hex << a << std::dec << " (owner dom " << b << ")";
      break;
    default:
      os << "object 0x" << std::hex << object << std::dec << "+" << offset;
      break;
  }
  return os.str();
}

std::string RaceDetector::CtxName(size_t c) const {
  uint32_t dom = ctx_dom_[c];
  std::ostringstream os;
  if (ukvm::DomainId{dom} == ukvm::kHardwareDomain) {
    os << "dom<hw>";
  } else {
    os << "dom" << dom;
  }
  return os.str();
}

size_t RaceDetector::violation_count() const {
  size_t total = 0;
  for (uint64_t count : rule_counts_) {
    total += count;
  }
  return total;
}

std::vector<std::string> RaceDetector::ViolationReports() const {
  std::vector<std::string> reports;
  reports.reserve(violations_.size());
  for (const RaceViolation& v : violations_) {
    std::ostringstream os;
    os << "race " << RaceRuleName(v.rule) << " at t=" << v.time << ": " << v.detail;
    reports.push_back(os.str());
  }
  return reports;
}

void RaceDetector::ClearViolations() {
  violations_.clear();
  for (uint64_t& count : rule_counts_) {
    count = 0;
  }
}

RaceDetector::Stats RaceDetector::stats() const {
  Stats s = stats_;
  s.contexts = clocks_.size();
  s.edge_slots = edges_.size();
  size_t cells = 0;
  for (const auto& [object, by_offset] : shadow_) {
    cells += by_offset.size();
  }
  s.shadow_cells = cells;
  return s;
}

}  // namespace ucheck
