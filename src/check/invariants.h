// Isolation-invariant checks over the simulated machine state.
//
// The paper's whole argument rests on both kernels actually enforcing
// protection-domain isolation while they perform their crossings; a
// simulator that silently leaks a frame across domains or serves stale TLB
// translations would make every measurement meaningless. The
// InvariantAuditor walks machine + kernel state and verifies:
//
//  - TLB coherence: every valid TLB entry that can be attributed to a live
//    address space agrees with that space's page table (present, same
//    frame, permissions not exceeding the PTE);
//  - frame-ownership exclusivity: a frame mapped into a domain that does
//    not own it must have a recorded delegation — a mapdb node in the
//    microkernel stack, an active grant in the VMM stack;
//  - privilege discipline: no user-accessible PTE may target a frame owned
//    by the kernel/hypervisor domain; guest spaces may never map the
//    hypervisor hole; DMA may only target live, unprivileged frames;
//  - grant-refcount consistency: each grant's active-mapping count matches
//    the live PTEs actually mapping foreign frames in the grantee's space;
//  - mapdb coherence: every mapping-database node corresponds to a present
//    PTE with the recorded frame in a live task;
//  - shootdown discipline (E18): a TLB entry attributable to a destroyed
//    address space is a violation on any vCPU, and no shootdown round may
//    be left waiting for acks at a checkpoint.
//
// The class holds only non-owning pointers to the kernels; the wiring layer
// (src/check/auditor.h) decides when checks run.

#ifndef UKVM_SRC_CHECK_INVARIANTS_H_
#define UKVM_SRC_CHECK_INVARIANTS_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/core/ids.h"
#include "src/hw/machine.h"
#include "src/hw/paging.h"
#include "src/hw/tlb.h"

namespace ukern {
class Kernel;
}
namespace uvmm {
class Hypervisor;
}

namespace ucheck {

enum class Invariant : uint8_t {
  kTlbStale,                   // TLB serves a translation the tables revoked
  kTlbMismatch,                // TLB frame/permissions disagree with the PTE
  kFreeFrameMapping,           // PTE targets an unallocated frame
  kUnownedMapping,             // foreign frame mapped without mapdb/grant record
  kPrivilegedFrameUserMapped,  // user PTE onto a kernel/hypervisor frame
  kHypervisorHoleMapping,      // guest space maps into the hypervisor hole
                               // (defence-in-depth: MapGrant and mmu_update
                               // both reject these at the hypercall boundary)
  kGrantRefcountMismatch,      // grant active_mappings != live foreign PTEs
  kMapDbIncoherent,            // mapdb node without a matching live PTE
  kDmaToFreeFrame,             // device DMA targets an unallocated frame
  kDmaToPrivilegedFrame,       // device DMA targets a kernel/hypervisor frame
  kStaleTlbAfterDestroy,       // TLB entry attributable to a destroyed space
  kUnackedShootdown,           // shootdown round still awaiting vCPU acks
  kGrantHeldByDeadDomain,      // active grant names a destroyed domain (E19)
  kDanglingEventChannel,       // event channel references a destroyed domain
};

const char* InvariantName(Invariant rule);

struct InvariantViolation {
  Invariant rule;
  std::string detail;  // human-readable specifics with addresses/ids
  uint64_t time = 0;   // simulated time when the check ran
};

// What discipline a page table is held to: microkernel task spaces justify
// foreign frames through the mapping database, VMM domain spaces through
// grant entries, raw spaces (tests, bare-metal) only through ownership.
enum class SpaceKind : uint8_t { kUkernelTask, kVmmDomain, kRaw };

class InvariantAuditor {
 public:
  explicit InvariantAuditor(hwsim::Machine& machine) : machine_(machine) {}

  // Attach the kernel whose state the full scans should cover. Non-owning;
  // the kernel must outlive the auditor (or be detached by destroying the
  // auditor first — the stacks order their members accordingly).
  void AttachUkernel(ukern::Kernel& kernel) { kernel_ = &kernel; }
  void AttachVmm(uvmm::Hypervisor& hv) { hv_ = &hv; }

  // Registers a standalone space audited under the ownership-only rule.
  void AttachSpace(ukvm::DomainId domain, hwsim::PageTable& space) {
    raw_spaces_.emplace_back(domain, &space);
  }

  // Unregisters a raw space about to be destroyed (pointer compared only).
  void DetachSpace(const hwsim::PageTable* space) {
    std::erase_if(raw_spaces_, [space](const auto& e) { return e.second == space; });
  }

  // --- Full scans (checkpoint granularity) -----------------------------------

  void CheckTlbCoherence();
  void CheckFrameOwnership();
  void CheckPrivilegeDiscipline();
  void CheckGrantRefcounts();
  void CheckMapDbCoherence();
  void CheckAll();

  // Incremental TLB-coherence sweep: audits only entries inserted since the
  // stamps recorded in `stamps` (one per vCPU; resized on first use) and
  // advances the stamps to the present. Staleness introduced by unmaps is
  // the deferred-unmap probes' job, so full and incremental sweeps flag
  // identical violation sets on coherent histories while the incremental
  // path touches strictly fewer entries (closes the ROADMAP item).
  void CheckTlbCoherenceSince(std::vector<uint64_t>& stamps);

  // Every shootdown round must eventually collect all its acks; a request
  // still outstanding at a checkpoint means some vCPU may serve stale
  // translations indefinitely.
  void CheckShootdownAcks();

  // Domain-death reclamation (E19): after a DestroyDomain, no grant entry
  // may name the corpse (as granter or grantee) and no event channel may
  // still be owned by — or stay connected to — it.
  void CheckDeadDomainReclamation();

  // Ownership + privilege scan of a single space (used by the paravirtual
  // PT-update hook, which knows which domain's table just changed).
  void CheckSpace(ukvm::DomainId domain, SpaceKind kind, const hwsim::PageTable& space);

  // --- Incremental checks (hook granularity) ---------------------------------

  // A PTE was just installed: is the frame live, non-privileged, outside
  // the hole?
  void CheckMappedPte(ukvm::DomainId domain, SpaceKind kind, hwsim::Vaddr vpn,
                      const hwsim::Pte& pte);

  // A PTE was removed earlier this operation: no TLB entry for the page may
  // survive, under either the raw or the salted key. `space` is only
  // pointer-hashed, never dereferenced, so the check stays safe after the
  // space is destroyed (task teardown queues these).
  void CheckUnmapFlushed(const hwsim::PageTable* space, hwsim::Vaddr vpn);

  // The MMU just inserted a TLB entry: it must agree with the currently
  // loaded space's PTE.
  void CheckTlbInsert(const hwsim::TlbEntry& entry);

  // A device DMA touches `access.frame`.
  void CheckDmaTarget(const hwsim::Machine::DmaAccess& access);

  // --- Results ----------------------------------------------------------------

  const std::vector<InvariantViolation>& violations() const { return violations_; }
  size_t violation_count() const { return violations_.size(); }
  void ClearViolations() { violations_.clear(); }

  // TLB-sweep coverage counters (cumulative across sweeps). An audited
  // entry was attributed and verified; a skipped entry could not be
  // attributed to any live or dead space — the skip list is explicit, not
  // a silent `return`, so tests can pin down exactly what the auditor does
  // not see.
  uint64_t tlb_entries_audited() const { return tlb_entries_audited_; }
  uint64_t tlb_entries_skipped() const { return tlb_entries_skipped_; }

 private:
  struct SpaceView {
    ukvm::DomainId domain;
    SpaceKind kind;
    hwsim::PageTable* space;
  };

  std::vector<SpaceView> Views() const;
  // Active grant mappings as (grantee, machine frame) -> expected count.
  std::map<std::pair<uint32_t, hwsim::Frame>, uint64_t> GrantMappedFrames() const;

  // Audits one TLB entry of `vcpu` against the live views and the
  // dead-space registry; shared by the full and incremental sweeps.
  void AuditTlbEntry(uint32_t vcpu, const std::vector<SpaceView>& views,
                     const hwsim::TlbEntry& entry);

  void Flag(Invariant rule, std::string detail);

  hwsim::Machine& machine_;
  ukern::Kernel* kernel_ = nullptr;
  uvmm::Hypervisor* hv_ = nullptr;
  std::vector<std::pair<ukvm::DomainId, hwsim::PageTable*>> raw_spaces_;
  std::vector<InvariantViolation> violations_;
  uint64_t tlb_entries_audited_ = 0;
  uint64_t tlb_entries_skipped_ = 0;
};

}  // namespace ucheck

#endif  // UKVM_SRC_CHECK_INVARIANTS_H_
