// The crossing-discipline linter.
//
// The crossing ledger is the project's measurement instrument; if kernels
// record crossings sloppily (a call without its reply, a trap that never
// returns, a misclassified mechanism) every experiment built on the ledger
// inherits the error. The linter consumes the ledger's event stream and
// checks the discipline the taxonomy promises:
//
//  - pairing: synchronous calls and traps must be balanced by their reply /
//    return mechanism per ordered domain pair (mechanisms that are one-way
//    by design are explicitly exempt);
//  - monotonicity: event sequence numbers and simulated timestamps never
//    run backwards;
//  - taxonomy conformance: mechanism names follow the dotted
//    "<stack>.<subsystem>[.<op>...]" scheme with a known stack prefix, and
//    the interned CrossingKind matches what the name's suffix implies.
//
// Violations carry the mechanism name and the simulated-time location so a
// failing test points at the offending crossing, not just at a count.

#ifndef UKVM_SRC_CHECK_LEDGER_LINT_H_
#define UKVM_SRC_CHECK_LEDGER_LINT_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/crossings.h"
#include "src/core/ids.h"

namespace ucheck {

enum class LintRule : uint8_t {
  kUnmatchedReply,    // reply/return with no outstanding call/trap
  kUnbalancedPair,    // calls/traps still outstanding at a quiescent point
  kNonMonotonicTime,  // event timestamp ran backwards
  kBadMechanismName,  // name violates the dotted taxonomy
  kKindMismatch,      // interned kind contradicts the name's suffix
};

const char* LintRuleName(LintRule rule);

struct LintViolation {
  LintRule rule;
  std::string mechanism;  // offending mechanism name ("" for stream-level)
  uint64_t time = 0;      // simulated time of the offending event
  uint64_t seq = 0;       // event ordinal
  std::string detail;     // human-readable specifics
};

class LedgerLint {
 public:
  explicit LedgerLint(const ukvm::CrossingLedger& ledger);

  // Feeds one event from the ledger's trace stream.
  void Observe(const ukvm::CrossingEvent& event);

  // Quiescent-point check: every call/trap group must have zero
  // outstanding entries. Appends violations for any imbalance found.
  void CheckBalanced();

  // Drops pairing state and per-mechanism roles (ledger Reset).
  void Reset();

  const std::vector<LintViolation>& violations() const { return violations_; }
  size_t violation_count() const { return violations_.size(); }
  void ClearViolations() { violations_.clear(); }

  uint64_t events_observed() const { return events_observed_; }

  // Completed call/reply (or trap/return) pairs for a pairing group, summed
  // over all domain pairs. Group names: "ipc", "hypercall", "guest-trap".
  uint64_t CompletedPairs(const std::string& group) const;

  // Registers an additional legal first-segment name ("l4", "xen" and
  // "native" are built in).
  void AllowStackPrefix(const std::string& prefix) { stack_prefixes_.push_back(prefix); }

 private:
  // How a mechanism participates in pairing: it opens a group, closes one,
  // or is exempt (one-way by design, or not a paired kind at all).
  enum class PairRole : uint8_t { kNone, kOpens, kCloses };

  struct MechanismInfo {
    std::string name;
    ukvm::CrossingKind kind = ukvm::CrossingKind::kKindCount;
    PairRole role = PairRole::kNone;
    int group = -1;  // index into groups_ when role != kNone
  };

  struct PairGroup {
    std::string name;
    // Outstanding opens per ordered (from, to) domain pair; a close for the
    // group decrements the reversed pair.
    std::map<std::pair<uint32_t, uint32_t>, int64_t> outstanding;
    uint64_t completed = 0;
  };

  const MechanismInfo& InfoFor(uint32_t id);
  MechanismInfo Classify(uint32_t id) const;
  void CheckName(const MechanismInfo& info, const ukvm::CrossingEvent& event);

  const ukvm::CrossingLedger& ledger_;
  std::vector<std::string> stack_prefixes_;
  std::vector<PairGroup> groups_;
  std::unordered_map<uint32_t, MechanismInfo> mechanisms_;
  std::vector<uint32_t> name_checked_;  // mechanism ids already linted
  std::vector<LintViolation> violations_;
  uint64_t events_observed_ = 0;
  uint64_t last_time_ = 0;
  bool have_last_time_ = false;
};

}  // namespace ucheck

#endif  // UKVM_SRC_CHECK_LEDGER_LINT_H_
