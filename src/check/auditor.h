// The auditor: wires the invariant checks and the crossing-discipline
// linter into a live machine.
//
// One Auditor per simulated machine. It owns the ledger's trace stream and
// fans events out to the linter; it installs the per-instance observer
// hooks (page-table map/unmap, TLB insert, grant-table / mapdb / PT-virt
// mutation, device DMA) and decides *when* each class of check runs:
//
//  - per crossing: linter observation, plus draining any unmap operations
//    queued since the last event (a removed PTE must have left the TLB by
//    the time the next crossing is recorded);
//  - per PT update: cheap locality checks on the installed PTE (live frame,
//    privilege, hypervisor hole) — full-table work would be unaffordable on
//    hot paths;
//  - per checkpoint (Checkpoint()): every full scan, plus ledger pairing
//    balance, which is only meaningful at a quiescent point. Checkpoints
//    also pick up address spaces created since the last one, so per-update
//    hooks cover new tasks/domains from the next checkpoint on.
//
// Destruction detaches every hook, so the auditor may be torn down before
// the kernels it watches; the stacks order members accordingly.

#ifndef UKVM_SRC_CHECK_AUDITOR_H_
#define UKVM_SRC_CHECK_AUDITOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include <memory>

#include "src/check/invariants.h"
#include "src/check/ledger_lint.h"
#include "src/check/race.h"
#include "src/hw/machine.h"
#include "src/hw/paging.h"

namespace ukern {
class Kernel;
}
namespace uvmm {
class Hypervisor;
}

// Build-level default for whether stacks enable auditing; the UKVM_CHECK
// CMake option sets this (ON by default). Falls back to enabled when built
// outside the project's CMake.
#ifndef UKVM_CHECK_DEFAULT
#define UKVM_CHECK_DEFAULT 1
#endif

namespace ucheck {

class Auditor {
 public:
  struct Options {
    bool lint_crossings = true;   // feed every ledger event to the linter
    bool check_pt_updates = true; // per-update PTE checks + deferred TLB drains
    bool check_tlb_inserts = true;
    bool check_dma = true;
    // Checkpoint TLB sweeps audit only entries inserted since the previous
    // checkpoint (per vCPU). Staleness from unmaps is caught by the
    // deferred-unmap drains, so coverage is unchanged; set false to force
    // the full sweep every time.
    bool incremental_tlb = true;
    // Happens-before race detection over shared rings and grant-mapped
    // frames (E20). Off by default: the detector costs host time but never
    // simulated cycles, so results are identical either way.
    bool race_detect = false;
  };

  explicit Auditor(hwsim::Machine& machine);  // default options
  Auditor(hwsim::Machine& machine, Options options);
  ~Auditor();

  Auditor(const Auditor&) = delete;
  Auditor& operator=(const Auditor&) = delete;

  // Attach a kernel; installs its mutation hooks and hooks every existing
  // address space. Call after the kernel has booted.
  void AttachUkernel(ukern::Kernel& kernel);
  void AttachVmm(uvmm::Hypervisor& hv);

  // Registers a standalone space (ownership-only discipline) and hooks it.
  void AttachSpace(ukvm::DomainId domain, hwsim::PageTable& space);

  // Unhooks and unregisters a raw space before it is destroyed. Deferred
  // unmap probes already queued for it stay queued — they resolve through
  // the machine's dead-space registry, never the table itself.
  void DetachSpace(hwsim::PageTable& space);

  // Full audit: refresh space hooks, drain deferred checks, run every
  // invariant scan, and verify the ledger's pairing groups are balanced.
  // `phase` labels the checkpoint in warnings.
  void Checkpoint(const std::string& phase);

  // Violations found so far, across all checkers.
  size_t violation_count() const {
    return invariants_.violation_count() + lint_.violation_count() +
           (race_ ? race_->violation_count() : 0);
  }
  std::vector<std::string> ViolationReports() const;
  void ClearViolations();

  InvariantAuditor& invariants() { return invariants_; }
  LedgerLint& lint() { return lint_; }
  // Null unless Options.race_detect.
  RaceDetector* race() { return race_.get(); }
  uint64_t checkpoints() const { return checkpoints_; }
  const Options& options() const { return options_; }

 private:
  void OnCrossing(const ukvm::CrossingEvent& event);
  void OnPtOp(const hwsim::PageTable* space, ukvm::DomainId domain, SpaceKind kind,
              hwsim::PageTable::AuditOp op, hwsim::Vaddr vpn, const hwsim::Pte& pte);
  void DrainPendingUnmaps();
  // (Re)installs the per-space hook on every live space; idempotent, run at
  // attach time and every checkpoint so later-created spaces get covered.
  void RefreshSpaceHooks();
  void HookSpace(ukvm::DomainId domain, SpaceKind kind, hwsim::PageTable& space);

  hwsim::Machine& machine_;
  Options options_;
  InvariantAuditor invariants_;
  LedgerLint lint_;
  std::unique_ptr<RaceDetector> race_;
  uint32_t trace_sink_id_ = 0;
  ukern::Kernel* kernel_ = nullptr;
  uvmm::Hypervisor* hv_ = nullptr;
  std::vector<std::pair<ukvm::DomainId, hwsim::PageTable*>> raw_spaces_;

  struct PendingUnmap {
    const hwsim::PageTable* space;  // pointer-hashed only, never dereferenced
    hwsim::Vaddr vpn;
  };
  std::vector<PendingUnmap> pending_unmaps_;

  // Scan-skipping dirt: set by the grant/mapdb hooks, cleared when the
  // corresponding full scan runs at a checkpoint.
  bool grants_dirty_ = true;
  bool mapdb_dirty_ = true;

  // Per-vCPU TLB insert stamps consumed by the incremental coherence sweep.
  std::vector<uint64_t> tlb_stamps_;

  uint64_t checkpoints_ = 0;
  size_t warned_ = 0;  // violations already reported via UKVM_WARN
};

}  // namespace ucheck

#endif  // UKVM_SRC_CHECK_AUDITOR_H_
