#include "src/check/invariants.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "src/hw/cpu.h"
#include "src/ukernel/kernel.h"
#include "src/ukernel/mapdb.h"
#include "src/ukernel/task.h"
#include "src/vmm/domain.h"
#include "src/vmm/grant_table.h"
#include "src/vmm/hypervisor.h"

namespace ucheck {
namespace {

// The domain id both kernels reserve for themselves; frames it owns must
// never become user-accessible and must never be DMA targets.
constexpr ukvm::DomainId kPrivilegedDomain{0};

std::string Fmt(const char* format, auto... args) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), format, args...);
  return std::string(buf);
}

const char* KindName(SpaceKind kind) {
  switch (kind) {
    case SpaceKind::kUkernelTask:
      return "task";
    case SpaceKind::kVmmDomain:
      return "domain";
    case SpaceKind::kRaw:
      return "space";
  }
  return "?";
}

}  // namespace

const char* InvariantName(Invariant rule) {
  switch (rule) {
    case Invariant::kTlbStale:
      return "tlb-stale";
    case Invariant::kTlbMismatch:
      return "tlb-mismatch";
    case Invariant::kFreeFrameMapping:
      return "free-frame-mapping";
    case Invariant::kUnownedMapping:
      return "unowned-mapping";
    case Invariant::kPrivilegedFrameUserMapped:
      return "privileged-frame-user-mapped";
    case Invariant::kHypervisorHoleMapping:
      return "hypervisor-hole-mapping";
    case Invariant::kGrantRefcountMismatch:
      return "grant-refcount-mismatch";
    case Invariant::kMapDbIncoherent:
      return "mapdb-incoherent";
    case Invariant::kDmaToFreeFrame:
      return "dma-to-free-frame";
    case Invariant::kDmaToPrivilegedFrame:
      return "dma-to-privileged-frame";
    case Invariant::kStaleTlbAfterDestroy:
      return "stale-tlb-after-destroy";
    case Invariant::kUnackedShootdown:
      return "unacked-shootdown";
    case Invariant::kGrantHeldByDeadDomain:
      return "grant-held-by-dead-domain";
    case Invariant::kDanglingEventChannel:
      return "dangling-event-channel";
  }
  return "?";
}

void InvariantAuditor::Flag(Invariant rule, std::string detail) {
  violations_.push_back(InvariantViolation{rule, std::move(detail), machine_.Now()});
}

std::vector<InvariantAuditor::SpaceView> InvariantAuditor::Views() const {
  std::vector<SpaceView> views;
  if (kernel_ != nullptr) {
    kernel_->ForEachTask([&](ukern::Task& t) {
      views.push_back(SpaceView{t.id, SpaceKind::kUkernelTask, &t.space});
    });
  }
  if (hv_ != nullptr) {
    hv_->ForEachDomain([&](uvmm::Domain& d) {
      views.push_back(SpaceView{d.id, SpaceKind::kVmmDomain, &d.space});
    });
  }
  for (const auto& [domain, space] : raw_spaces_) {
    views.push_back(SpaceView{domain, SpaceKind::kRaw, space});
  }
  return views;
}

std::map<std::pair<uint32_t, hwsim::Frame>, uint64_t> InvariantAuditor::GrantMappedFrames() const {
  std::map<std::pair<uint32_t, hwsim::Frame>, uint64_t> mapped;
  if (hv_ == nullptr) {
    return mapped;
  }
  hv_->gnttab().ForEachActive([&](const uvmm::GrantTable::GrantView& g) {
    if (g.active_mappings == 0) {
      return;
    }
    uvmm::Domain* granter = hv_->FindDomain(g.granter);
    if (granter == nullptr) {
      return;
    }
    auto mfn = granter->MfnOf(g.pfn);
    if (!mfn.ok()) {
      return;
    }
    mapped[{g.grantee.value(), *mfn}] += g.active_mappings;
  });
  return mapped;
}

void InvariantAuditor::AuditTlbEntry(uint32_t vcpu, const std::vector<SpaceView>& views,
                                     const hwsim::TlbEntry& entry) {
  // Attribute the entry to a space via its salt (the upper 32 key bits).
  // Unsalted entries belong to that vCPU's last untagged full switch;
  // salted ones to whichever live space holds that salt. Entries whose
  // space died are violations (the death shootdown should have flushed
  // them); entries attributable to nothing at all land on the explicit
  // skip list rather than vanishing silently.
  const hwsim::Cpu& cpu = machine_.cpu(vcpu);
  const uint64_t salt = entry.vpn & ~uint64_t{0xffffffff};
  const hwsim::PageTable* key_space = salt == 0 ? cpu.salt0_space() : nullptr;
  const hwsim::Vaddr vpn = entry.vpn ^ salt;
  if (salt != 0) {
    for (const SpaceView& v : views) {
      if (hwsim::Cpu::TlbSaltOf(v.space) == salt) {
        key_space = v.space;
        break;
      }
    }
    if (key_space == nullptr) {
      if (machine_.FindDeadSpaceBySalt(salt) != nullptr) {
        ++tlb_entries_audited_;
        Flag(Invariant::kStaleTlbAfterDestroy,
             Fmt("vcpu %u TLB still holds vpn 0x%" PRIx64
                 " of a destroyed space (salt id %" PRIu64 ")",
                 vcpu, vpn, salt >> 32));
        return;
      }
      // Unknown salt: the space vanished without a death shootdown (raw
      // spaces in tests). Nothing safe to dereference — count it.
      ++tlb_entries_skipped_;
      return;
    }
  }
  if (key_space == nullptr) {
    ++tlb_entries_skipped_;  // untagged entry with no recorded salt0 space
    return;
  }
  const SpaceView* view = nullptr;
  for (const SpaceView& v : views) {
    if (v.space == key_space) {
      view = &v;
      break;
    }
  }
  if (view == nullptr) {
    if (machine_.IsDeadSpace(key_space)) {
      ++tlb_entries_audited_;
      Flag(Invariant::kStaleTlbAfterDestroy,
           Fmt("vcpu %u TLB still holds untagged vpn 0x%" PRIx64 " of a destroyed space", vcpu,
               vpn));
      return;
    }
    ++tlb_entries_skipped_;  // salt0 space gone without a death record
    return;
  }
  ++tlb_entries_audited_;
  const hwsim::Pte* pte = view->space->Walk(vpn << view->space->page_shift());
  if (pte == nullptr || !pte->present) {
    Flag(Invariant::kTlbStale,
         Fmt("vcpu %u TLB holds vpn 0x%" PRIx64 " of %s %u but the PTE is gone", vcpu, vpn,
             KindName(view->kind), view->domain.value()));
    return;
  }
  if (pte->frame != entry.frame) {
    Flag(Invariant::kTlbMismatch,
         Fmt("vcpu %u TLB maps vpn 0x%" PRIx64 " of %s %u to frame %" PRIu64
             " but the PTE says %" PRIu64,
             vcpu, vpn, KindName(view->kind), view->domain.value(), entry.frame, pte->frame));
    return;
  }
  if ((entry.writable && !pte->writable) || (entry.user && !pte->user)) {
    Flag(Invariant::kTlbMismatch,
         Fmt("vcpu %u TLB permissions for vpn 0x%" PRIx64 " of %s %u exceed the PTE", vcpu, vpn,
             KindName(view->kind), view->domain.value()));
  }
}

void InvariantAuditor::CheckTlbCoherence() {
  const std::vector<SpaceView> views = Views();
  for (uint32_t v = 0; v < machine_.num_vcpus(); ++v) {
    machine_.cpu(v).tlb().ForEachValid(
        [&](const hwsim::TlbEntry& entry) { AuditTlbEntry(v, views, entry); });
  }
}

void InvariantAuditor::CheckTlbCoherenceSince(std::vector<uint64_t>& stamps) {
  stamps.resize(machine_.num_vcpus(), 0);
  const std::vector<SpaceView> views = Views();
  for (uint32_t v = 0; v < machine_.num_vcpus(); ++v) {
    const hwsim::Tlb& tlb = machine_.cpu(v).tlb();
    tlb.ForEachValidSince(stamps[v],
                          [&](const hwsim::TlbEntry& entry) { AuditTlbEntry(v, views, entry); });
    stamps[v] = tlb.insert_seq();
  }
}

void InvariantAuditor::CheckShootdownAcks() {
  machine_.ForEachUnackedShootdown([&](uint64_t id, uint32_t initiator, uint32_t outstanding) {
    Flag(Invariant::kUnackedShootdown,
         Fmt("shootdown %" PRIu64 " begun on vcpu %u still awaits %u ack(s)", id, initiator,
             outstanding));
  });
}

void InvariantAuditor::CheckFrameOwnership() {
  const std::vector<SpaceView> views = Views();
  const auto grant_mapped = GrantMappedFrames();
  hwsim::PhysicalMemory& mem = machine_.memory();
  for (const SpaceView& view : views) {
    view.space->ForEachMapping([&](hwsim::Vaddr vpn, const hwsim::Pte& pte) {
      const ukvm::DomainId owner = mem.OwnerOf(pte.frame);
      if (!owner.valid()) {
        Flag(Invariant::kFreeFrameMapping,
             Fmt("%s %u maps vpn 0x%" PRIx64 " to free frame %" PRIu64, KindName(view.kind),
                 view.domain.value(), vpn, pte.frame));
        return;
      }
      if (owner == view.domain) {
        return;
      }
      switch (view.kind) {
        case SpaceKind::kUkernelTask: {
          ukern::MapNode* node = kernel_->mapdb().Find(view.domain, vpn);
          if (node != nullptr && node->frame == pte.frame) {
            return;
          }
          break;
        }
        case SpaceKind::kVmmDomain:
          if (grant_mapped.contains({view.domain.value(), pte.frame})) {
            return;
          }
          break;
        case SpaceKind::kRaw:
          break;
      }
      Flag(Invariant::kUnownedMapping,
           Fmt("%s %u maps vpn 0x%" PRIx64 " to frame %" PRIu64
               " owned by domain %u with no recorded delegation",
               KindName(view.kind), view.domain.value(), vpn, pte.frame, owner.value()));
    });
  }
}

void InvariantAuditor::CheckSpace(ukvm::DomainId domain, SpaceKind kind,
                                  const hwsim::PageTable& space) {
  space.ForEachMapping([&](hwsim::Vaddr vpn, const hwsim::Pte& pte) {
    CheckMappedPte(domain, kind, vpn, pte);
  });
}

void InvariantAuditor::CheckPrivilegeDiscipline() {
  const std::vector<SpaceView> views = Views();
  for (const SpaceView& view : views) {
    view.space->ForEachMapping([&](hwsim::Vaddr vpn, const hwsim::Pte& pte) {
      CheckMappedPte(view.domain, view.kind, vpn, pte);
    });
  }
}

void InvariantAuditor::CheckMappedPte(ukvm::DomainId domain, SpaceKind kind, hwsim::Vaddr vpn,
                                      const hwsim::Pte& pte) {
  if (!pte.present) {
    return;
  }
  const ukvm::DomainId owner = machine_.memory().OwnerOf(pte.frame);
  if (!owner.valid()) {
    Flag(Invariant::kFreeFrameMapping,
         Fmt("%s %u maps vpn 0x%" PRIx64 " to free frame %" PRIu64, KindName(kind),
             domain.value(), vpn, pte.frame));
    return;
  }
  if (pte.user && owner == kPrivilegedDomain && domain != kPrivilegedDomain) {
    Flag(Invariant::kPrivilegedFrameUserMapped,
         Fmt("%s %u has user-accessible vpn 0x%" PRIx64 " onto kernel-owned frame %" PRIu64,
             KindName(kind), domain.value(), vpn, pte.frame));
  }
  if (kind == SpaceKind::kVmmDomain && hv_ != nullptr) {
    const uint64_t va = vpn << machine_.memory().page_shift();
    const auto& config = hv_->config();
    if (va >= config.hole_base && va < config.hole_end) {
      Flag(Invariant::kHypervisorHoleMapping,
           Fmt("domain %u maps va 0x%" PRIx64 " inside the hypervisor hole", domain.value(), va));
    }
  }
}

void InvariantAuditor::CheckGrantRefcounts() {
  if (hv_ == nullptr) {
    return;
  }
  const auto expected = GrantMappedFrames();
  // Live foreign-frame PTEs per (grantee, frame) across all guest spaces.
  std::map<std::pair<uint32_t, hwsim::Frame>, uint64_t> actual;
  hwsim::PhysicalMemory& mem = machine_.memory();
  hv_->ForEachDomain([&](uvmm::Domain& d) {
    d.space.ForEachMapping([&](hwsim::Vaddr vpn, const hwsim::Pte& pte) {
      (void)vpn;
      const ukvm::DomainId owner = mem.OwnerOf(pte.frame);
      if (owner.valid() && owner != d.id) {
        ++actual[{d.id.value(), pte.frame}];
      }
    });
  });
  for (const auto& [key, want] : expected) {
    const auto it = actual.find(key);
    const uint64_t have = it == actual.end() ? 0 : it->second;
    if (have != want) {
      Flag(Invariant::kGrantRefcountMismatch,
           Fmt("grants to domain %u for frame %" PRIu64 " record %" PRIu64
               " active mappings but %" PRIu64 " live PTEs exist",
               key.first, key.second, want, have));
    }
  }
  // Foreign PTEs with no grant at all are CheckFrameOwnership's finding;
  // reporting them here too would double-count the same defect.
}

void InvariantAuditor::CheckMapDbCoherence() {
  if (kernel_ == nullptr) {
    return;
  }
  kernel_->mapdb().ForEachNode([&](const ukern::MapNode& node) {
    ukern::Task* task = kernel_->FindTask(node.task);
    if (task == nullptr || !task->alive) {
      Flag(Invariant::kMapDbIncoherent,
           Fmt("mapdb node (task %u, vpn 0x%" PRIx64 ") refers to a dead task", node.task.value(),
               node.vpn));
      return;
    }
    const hwsim::Pte* pte = task->space.Walk(node.vpn << task->space.page_shift());
    if (pte == nullptr || !pte->present) {
      Flag(Invariant::kMapDbIncoherent,
           Fmt("mapdb node (task %u, vpn 0x%" PRIx64 ") has no live PTE", node.task.value(),
               node.vpn));
      return;
    }
    if (pte->frame != node.frame) {
      Flag(Invariant::kMapDbIncoherent,
           Fmt("mapdb node (task %u, vpn 0x%" PRIx64 ") records frame %" PRIu64
               " but the PTE holds %" PRIu64,
               node.task.value(), node.vpn, node.frame, pte->frame));
    }
  });
}

void InvariantAuditor::CheckDeadDomainReclamation() {
  if (hv_ == nullptr) {
    return;
  }
  hv_->gnttab().ForEachActive([&](const uvmm::GrantTable::GrantView& g) {
    if (!hv_->DomainAlive(g.granter)) {
      Flag(Invariant::kGrantHeldByDeadDomain,
           Fmt("grant (granter %u, ref %u) survives its granter's destruction", g.granter.value(),
               g.ref));
    } else if (!hv_->DomainAlive(g.grantee)) {
      Flag(Invariant::kGrantHeldByDeadDomain,
           Fmt("grant (granter %u, ref %u) still names destroyed grantee %u", g.granter.value(),
               g.ref, g.grantee.value()));
    }
  });
  hv_->evtchn().ForEachChannel([&](const uvmm::EventChannelTable::ChannelView& c) {
    if (!hv_->DomainAlive(c.owner)) {
      Flag(Invariant::kDanglingEventChannel,
           Fmt("port %u of destroyed domain %u is still allocated", c.port, c.owner.value()));
    } else if (c.connected && !hv_->DomainAlive(c.remote_dom)) {
      Flag(Invariant::kDanglingEventChannel,
           Fmt("domain %u port %u is still connected to destroyed domain %u", c.owner.value(),
               c.port, c.remote_dom.value()));
    }
  });
}

void InvariantAuditor::CheckUnmapFlushed(const hwsim::PageTable* space, hwsim::Vaddr vpn) {
  // The dead-space registry knows the salt of a destroyed space without
  // touching the (possibly freed) PageTable; only live spaces are
  // dereferenced for theirs. Recycling makes two probes unverifiable, and
  // both are skipped rather than guessed at:
  //  - the heap address of a destroyed table can be reused by a live one,
  //    so a pointer in both the registry and the live views is ambiguous;
  //  - a dead space's salt can be re-acquired (after the death shootdown
  //    fully acked) by a live space that legitimately maps the same vpn.
  const std::vector<SpaceView> views = Views();
  const bool live = std::any_of(views.begin(), views.end(),
                                [space](const SpaceView& v) { return v.space == space; });
  const hwsim::Machine::DeadSpace* dead = nullptr;
  for (const auto& ds : machine_.dead_spaces()) {
    if (ds.space == space) {
      dead = &ds;
      break;
    }
  }
  if (live && dead != nullptr) {
    return;  // pointer reused: the queued probe's target is gone
  }
  const uint64_t salt = dead != nullptr ? dead->salt : hwsim::Cpu::TlbSaltOf(space);
  bool salt_recycled = false;
  if (dead != nullptr && salt != 0) {
    salt_recycled = std::any_of(views.begin(), views.end(), [salt](const SpaceView& v) {
      return hwsim::Cpu::TlbSaltOf(v.space) == salt;
    });
  }
  for (uint32_t v = 0; v < machine_.num_vcpus(); ++v) {
    const hwsim::Cpu& cpu = machine_.cpu(v);
    const hwsim::Tlb& tlb = cpu.tlb();
    if (tlb.Probe(vpn).has_value() && cpu.salt0_space() == space) {
      Flag(Invariant::kTlbStale,
           Fmt("unmapped vpn 0x%" PRIx64 " still translatable via vcpu %u's untagged TLB key", vpn,
               v));
    }
    if (salt != 0 && !salt_recycled && tlb.Probe(vpn ^ salt).has_value()) {
      Flag(Invariant::kTlbStale,
           Fmt("unmapped vpn 0x%" PRIx64 " still translatable via vcpu %u's salted TLB key", vpn,
               v));
    }
  }
}

void InvariantAuditor::CheckTlbInsert(const hwsim::TlbEntry& entry) {
  hwsim::Cpu& cpu = machine_.cpu();
  hwsim::PageTable* space = cpu.address_space();
  if (space == nullptr) {
    return;
  }
  const hwsim::Vaddr vpn = entry.vpn ^ cpu.tlb_salt();
  const hwsim::Pte* pte = space->Walk(vpn << space->page_shift());
  if (pte == nullptr || !pte->present) {
    Flag(Invariant::kTlbStale,
         Fmt("TLB insert for vpn 0x%" PRIx64 " with no backing PTE", vpn));
    return;
  }
  if (pte->frame != entry.frame) {
    Flag(Invariant::kTlbMismatch,
         Fmt("TLB insert for vpn 0x%" PRIx64 " caches frame %" PRIu64 " but the PTE says %" PRIu64,
             vpn, entry.frame, pte->frame));
    return;
  }
  if ((entry.writable && !pte->writable) || (entry.user && !pte->user)) {
    Flag(Invariant::kTlbMismatch,
         Fmt("TLB insert for vpn 0x%" PRIx64 " grants permissions the PTE withholds", vpn));
  }
}

void InvariantAuditor::CheckDmaTarget(const hwsim::Machine::DmaAccess& access) {
  const ukvm::DomainId owner = machine_.memory().OwnerOf(access.frame);
  if (!owner.valid()) {
    Flag(Invariant::kDmaToFreeFrame,
         Fmt("device DMA %s free frame %" PRIu64 " (initiated under domain %u)",
             access.to_memory ? "writes" : "reads", access.frame, access.initiator.value()));
    return;
  }
  if (owner == kPrivilegedDomain) {
    Flag(Invariant::kDmaToPrivilegedFrame,
         Fmt("device DMA %s kernel-owned frame %" PRIu64 " (initiated under domain %u)",
             access.to_memory ? "writes" : "reads", access.frame, access.initiator.value()));
  }
}

void InvariantAuditor::CheckAll() {
  CheckTlbCoherence();
  CheckFrameOwnership();
  CheckPrivilegeDiscipline();
  CheckGrantRefcounts();
  CheckMapDbCoherence();
  CheckShootdownAcks();
  CheckDeadDomainReclamation();
}

}  // namespace ucheck
