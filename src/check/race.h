// Happens-before race detector for the simulator's shared-memory channels
// (E20).
//
// The split-driver datapath is exactly the surface the paper argues about:
// frontends and backends in separate protection domains sharing descriptor
// rings and grant-mapped payload frames, synchronized only by an explicit
// protocol (write descriptor -> publish ring index -> kick event channel).
// Nothing in PR 2's invariant auditor checks that protocol — a frontend
// reading a slot before the backend's publish, or a payload frame mutated
// with no synchronizing edge in between, is invisible to ownership checks
// because every access is to memory both sides may legally touch.
//
// This detector closes that gap with the standard dynamic-race machinery,
// specialized to the simulator:
//
//  - every domain is an execution context with a vector clock (the
//    simulation interleaves contexts on a deterministic schedule, but the
//    *protocol* must not depend on that schedule — the detector checks the
//    ordering the protocol itself establishes, not the one the scheduler
//    happened to produce);
//  - synchronization edges come from the events the system already models,
//    reported through hwsim::RaceSink: event-channel send -> upcall, IPI
//    send -> shootdown handler -> ack wait, hypercall entry/exit, IPC
//    call/reply crossings (observed via the CrossingLedger sink fan-out),
//    and ring-index publish/observe in stacks/xenring.h. Each edge key maps
//    to a slot clock; Release joins the releaser's clock into the slot and
//    advances the releaser's epoch, Acquire joins the slot back (FastTrack
//    discipline: epochs advance only at release points);
//  - shared accesses (ring descriptor slots, grant-mapped payload frames)
//    go through a shadow-state table keyed (object, offset) recording the
//    last writer's epoch and all readers since. A write/write or read/write
//    pair unordered by the clocks is kUnsyncedSharedAccess; a consumer read
//    of a ring slot index no publish has covered is kRingReadBeforePublish.
//
// The detector is pure observation: it never charges simulated cycles, so
// enabling it cannot perturb any measured result (bench_e20 gates this).

#ifndef UKVM_SRC_CHECK_RACE_H_
#define UKVM_SRC_CHECK_RACE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/ids.h"
#include "src/hw/machine.h"
#include "src/hw/race_sink.h"

namespace ucheck {

enum class RaceRule : uint8_t {
  kUnsyncedSharedAccess = 0,  // write/write or read/write with no HB edge
  kRingReadBeforePublish,     // consumer observed a slot index never published
  kRuleCount,
};

inline constexpr size_t kRaceRuleCount = static_cast<size_t>(RaceRule::kRuleCount);

const char* RaceRuleName(RaceRule rule);

struct RaceViolation {
  RaceRule rule = RaceRule::kRuleCount;
  uint64_t time = 0;  // simulated time when detected
  std::string detail;
};

class RaceDetector : public hwsim::RaceSink {
 public:
  struct Stats {
    uint64_t releases = 0;
    uint64_t acquires = 0;
    uint64_t shared_accesses = 0;
    uint64_t ring_publishes = 0;
    uint64_t ring_observes = 0;
    size_t contexts = 0;
    size_t edge_slots = 0;
    size_t shadow_cells = 0;
  };

  // Installs itself as the machine's race sink and as a ledger trace sink
  // (for IPC call/reply edges). One detector per machine.
  explicit RaceDetector(hwsim::Machine& machine);
  ~RaceDetector() override;

  RaceDetector(const RaceDetector&) = delete;
  RaceDetector& operator=(const RaceDetector&) = delete;

  // The VMM domain relays every hypercall, so ledger crossings touching it
  // would serialize all guests through one context and mask real races;
  // crossings from/to the hub are ignored (the true edges — evtchn send ->
  // upcall etc. — are reported at their mechanism sites instead).
  void SetHubDomain(ukvm::DomainId hub) { hub_ = hub; }

  // hwsim::RaceSink interface.
  void Release(ukvm::DomainId ctx, uint64_t key) override;
  void Acquire(ukvm::DomainId ctx, uint64_t key) override;
  void SharedWrite(ukvm::DomainId ctx, uint64_t object, uint64_t offset,
                   const char* what) override;
  void SharedRead(ukvm::DomainId ctx, uint64_t object, uint64_t offset,
                  const char* what) override;
  void RingPublish(ukvm::DomainId ctx, uint64_t key, uint64_t count) override;
  bool RingObserve(ukvm::DomainId ctx, uint64_t key, uint64_t index) override;
  void ContextDead(ukvm::DomainId ctx) override;

  size_t violation_count() const;
  uint64_t RuleCount(RaceRule rule) const {
    return rule_counts_[static_cast<size_t>(rule)];
  }
  // Stored violation records (capped; counts above are exact).
  const std::vector<RaceViolation>& violations() const { return violations_; }
  std::vector<std::string> ViolationReports() const;
  void ClearViolations();

  Stats stats() const;

 private:
  static constexpr size_t kNoCtx = static_cast<size_t>(-1);
  static constexpr size_t kMaxStoredViolations = 256;

  struct ReadRecord {
    uint64_t epoch = 0;
    const char* what = nullptr;
  };
  struct Cell {
    size_t writer = kNoCtx;
    uint64_t write_epoch = 0;
    const char* write_what = nullptr;
    std::unordered_map<size_t, ReadRecord> reads;  // ctx index -> last read
  };

  // Dense context index for a domain, created on first sight; kNoCtx for
  // invalid ids (accesses from no context are not checked).
  size_t CtxOf(ukvm::DomainId ctx);
  // Looks up without creating; kNoCtx if never seen.
  size_t FindCtx(ukvm::DomainId ctx) const;

  uint64_t OwnEpoch(size_t c) const { return clocks_[c][c]; }
  // clock[i] with missing components read as 0.
  static uint64_t At(const std::vector<uint64_t>& clock, size_t i) {
    return i < clock.size() ? clock[i] : 0;
  }
  static void JoinInto(std::vector<uint64_t>& dst, const std::vector<uint64_t>& src);
  // True when accesses by `prev` up to `epoch` happen-before the current
  // point of context `c` (same context, dead context, or clock coverage).
  bool Ordered(size_t c, size_t prev, uint64_t epoch) const;

  void RecordViolation(RaceRule rule, std::string detail);
  std::string DescribeObject(uint64_t object, uint64_t offset) const;
  std::string CtxName(size_t c) const;

  void OnCrossing(const ukvm::CrossingEvent& event);

  hwsim::Machine& machine_;
  uint32_t trace_sink_id_ = 0;
  ukvm::DomainId hub_ = ukvm::DomainId::Invalid();

  std::unordered_map<uint32_t, size_t> ctx_index_;  // DomainId value -> dense
  std::vector<uint32_t> ctx_dom_;                   // dense -> DomainId value
  std::vector<std::vector<uint64_t>> clocks_;
  std::vector<bool> dead_;

  std::unordered_map<uint64_t, std::vector<uint64_t>> edges_;  // key -> slot clock
  std::unordered_map<uint64_t, uint64_t> published_;  // ring key -> entries published
  std::unordered_map<uint64_t, std::unordered_map<uint64_t, Cell>> shadow_;

  std::vector<RaceViolation> violations_;
  uint64_t rule_counts_[kRaceRuleCount] = {};
  Stats stats_;
};

}  // namespace ucheck

#endif  // UKVM_SRC_CHECK_RACE_H_
