#include "src/drivers/disk_driver.h"

#include <utility>

namespace udrv {

using ukvm::Err;

DiskDriver::DiskDriver(hwsim::Machine& machine, hwsim::Disk& disk)
    : machine_(machine), disk_(disk), alive_(std::make_shared<bool>(true)) {}

DiskDriver::~DiskDriver() = default;

uint32_t DiskDriver::blocks_per_page() const {
  return static_cast<uint32_t>(machine_.memory().page_size() / disk_.config().block_size);
}

Err DiskDriver::Read(uint64_t lba, uint32_t blocks, hwsim::Frame frame, DoneCallback done) {
  return Submit(/*is_write=*/false, lba, blocks, frame, std::move(done));
}

Err DiskDriver::Write(uint64_t lba, uint32_t blocks, hwsim::Frame frame, DoneCallback done) {
  return Submit(/*is_write=*/true, lba, blocks, frame, std::move(done));
}

Err DiskDriver::Submit(bool is_write, uint64_t lba, uint32_t blocks, hwsim::Frame frame,
                       DoneCallback done) {
  if (blocks == 0 || blocks > blocks_per_page()) {
    return Err::kInvalidArgument;
  }
  Pending req;
  req.is_write = is_write;
  req.lba = lba;
  req.blocks = blocks;
  req.frame = frame;
  req.done = std::move(done);
  return Issue(req);
}

Err DiskDriver::Issue(Pending& req) {
  machine_.Charge(machine_.costs().mmio_access);  // queue the request
  const hwsim::Paddr addr = machine_.memory().FrameBase(req.frame);
  auto id = req.is_write ? disk_.SubmitWrite(req.lba, req.blocks, addr)
                         : disk_.SubmitRead(req.lba, req.blocks, addr);
  if (!id.ok()) {
    return id.error();
  }
  if (policy_.timeout_enabled()) {
    req.timeout_event = machine_.ScheduleAfter(
        policy_.timeout_cycles,
        [this, guard = std::weak_ptr<bool>(alive_), request_id = *id] {
          if (!guard.expired()) {
            OnTimeout(request_id);
          }
        });
  }
  pending_.emplace(*id, std::move(req));
  return Err::kNone;
}

void DiskDriver::OnInterrupt() {
  machine_.Charge(machine_.costs().mmio_access);
  while (auto completion = disk_.TakeCompletion()) {
    auto it = pending_.find(completion->request_id);
    if (it == pending_.end()) {
      continue;  // stale: a timed-out attempt we already resubmitted or failed
    }
    Pending req = std::move(it->second);
    pending_.erase(it);
    if (req.timeout_event != 0) {
      machine_.CancelEvent(req.timeout_event);
      req.timeout_event = 0;
    }
    if (completion->status != Err::kNone) {
      OnAttemptFailed(std::move(req), completion->status);
    } else {
      Finish(req, Err::kNone);
    }
  }
}

void DiskDriver::OnTimeout(uint64_t request_id) {
  auto it = pending_.find(request_id);
  if (it == pending_.end()) {
    return;  // completion won the race with the deadline
  }
  Pending req = std::move(it->second);
  pending_.erase(it);
  req.timeout_event = 0;
  ++timeouts_;
  machine_.counters().AddNamed("drv.disk.timeout");
  OnAttemptFailed(std::move(req), Err::kTimedOut);
}

void DiskDriver::OnAttemptFailed(Pending req, Err err) {
  if (req.attempt < policy_.max_attempts) {
    ++retries_;
    machine_.counters().AddNamed("drv.disk.retry");
    const uint64_t backoff = policy_.BackoffFor(req.attempt);
    ++req.attempt;
    machine_.ScheduleAfter(
        backoff, [this, guard = std::weak_ptr<bool>(alive_), req = std::move(req)]() mutable {
          if (guard.expired()) {
            return;
          }
          const Err submit_err = Issue(req);
          if (submit_err != Err::kNone) {
            Finish(req, submit_err);
          }
        });
    return;
  }
  // Out of attempts. A silent device reports kTimedOut; a persistently
  // erroring one reports kRetryExhausted (or its raw status when the policy
  // never allowed retries in the first place).
  Err terminal = err;
  if (err != Err::kTimedOut && policy_.retries_enabled()) {
    terminal = Err::kRetryExhausted;
  }
  if (policy_.retries_enabled()) {
    machine_.counters().AddNamed("drv.disk.exhausted");
  }
  Finish(req, terminal);
}

void DiskDriver::Finish(Pending& req, Err status) {
  ++completed_;
  if (req.done) {
    req.done(status);
  }
}

}  // namespace udrv
