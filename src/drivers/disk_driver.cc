#include "src/drivers/disk_driver.h"

namespace udrv {

using ukvm::Err;

DiskDriver::DiskDriver(hwsim::Machine& machine, hwsim::Disk& disk)
    : machine_(machine), disk_(disk) {}

uint32_t DiskDriver::blocks_per_page() const {
  return static_cast<uint32_t>(machine_.memory().page_size() / disk_.config().block_size);
}

Err DiskDriver::Read(uint64_t lba, uint32_t blocks, hwsim::Frame frame, DoneCallback done) {
  return Submit(/*is_write=*/false, lba, blocks, frame, std::move(done));
}

Err DiskDriver::Write(uint64_t lba, uint32_t blocks, hwsim::Frame frame, DoneCallback done) {
  return Submit(/*is_write=*/true, lba, blocks, frame, std::move(done));
}

Err DiskDriver::Submit(bool is_write, uint64_t lba, uint32_t blocks, hwsim::Frame frame,
                       DoneCallback done) {
  if (blocks == 0 || blocks > blocks_per_page()) {
    return Err::kInvalidArgument;
  }
  machine_.Charge(machine_.costs().mmio_access);  // queue the request
  const hwsim::Paddr addr = machine_.memory().FrameBase(frame);
  auto id = is_write ? disk_.SubmitWrite(lba, blocks, addr) : disk_.SubmitRead(lba, blocks, addr);
  if (!id.ok()) {
    return id.error();
  }
  pending_.emplace(*id, std::move(done));
  return Err::kNone;
}

void DiskDriver::OnInterrupt() {
  machine_.Charge(machine_.costs().mmio_access);
  while (auto completion = disk_.TakeCompletion()) {
    auto it = pending_.find(completion->request_id);
    if (it == pending_.end()) {
      continue;
    }
    DoneCallback done = std::move(it->second);
    pending_.erase(it);
    ++completed_;
    if (done) {
      done(completion->status);
    }
  }
}

}  // namespace udrv
