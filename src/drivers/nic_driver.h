// NIC device driver.
//
// The same driver code runs in two homes — as a user-level driver server on
// the microkernel and inside Dom0 on the VMM (FHN+04's "encapsulate legacy
// device drivers" arrangement) — which is itself a portability data point
// for experiment E6. It owns a pool of frames for rx/tx staging, services
// completion interrupts, and hands received frames to a callback.

#ifndef UKVM_SRC_DRIVERS_NIC_DRIVER_H_
#define UKVM_SRC_DRIVERS_NIC_DRIVER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/core/error.h"
#include "src/drivers/retry_policy.h"
#include "src/hw/machine.h"
#include "src/hw/nic.h"

namespace udrv {

class NicDriver {
 public:
  // Received frame: the staging frame holding the packet and its length.
  // The callback must consume (copy/flip) the data before returning; the
  // driver re-posts the buffer afterwards.
  using RxCallback = std::function<void(hwsim::Frame frame, uint32_t len)>;

  // `pool` are frames owned by the driver's domain, split evenly between
  // rx buffers and tx staging.
  NicDriver(hwsim::Machine& machine, hwsim::Nic& nic, std::vector<hwsim::Frame> pool);

  NicDriver(const NicDriver&) = delete;
  NicDriver& operator=(const NicDriver&) = delete;

  void SetRxCallback(RxCallback cb) { rx_callback_ = std::move(cb); }

  void SetRetryPolicy(const RetryPolicy& policy) { policy_ = policy; }
  const RetryPolicy& retry_policy() const { return policy_; }

  // Transmits `len` bytes already staged in `frame` (zero-copy path).
  ukvm::Err SendFrame(hwsim::Frame frame, uint32_t len);

  // Convenience: stages `payload` into a free tx frame and transmits.
  ukvm::Err SendCopy(std::span<const uint8_t> payload);

  // SendCopy with the retry policy applied: when the tx ring is starved
  // (kBusy — e.g. completion interrupts were lost), backs off in simulated
  // time, reclaims finished tx slots by polling, and tries again. Returns
  // kRetryExhausted once the attempt budget is spent.
  ukvm::Err SendCopyWithRetry(std::span<const uint8_t> payload);

  // Interrupt service routine: drains rx/tx completions.
  void OnInterrupt();

  // NAPI-style interrupt mitigation: the ISR disables the device's
  // interrupt-enable register, drains the rings in polled rounds spaced
  // `poll_interval` cycles apart, and re-enables interrupts only once a
  // round finds both rings empty. Completions arriving while disabled are
  // latched by the device, not delivered — N per-packet IRQs collapse into
  // one interrupt plus a polling run.
  void SetInterruptMitigation(bool on, uint64_t poll_interval = 8 * hwsim::kCyclesPerUs);

  // Batch-consumer mode: while a drain hook is installed, the driver does
  // NOT repost an rx frame after the rx callback — the consumer stages the
  // frame and must return it (or a replacement, after a page flip) via
  // RepostRx. The hook runs after each polled round that delivered frames,
  // so the consumer can flush its staged batch.
  void SetBatchDrainHook(std::function<void()> hook) { drain_hook_ = std::move(hook); }
  void RepostRx(hwsim::Frame frame) { PostRx(frame); }

  // Deferred poll rounds run off machine timer events, outside any domain
  // context. The owner installs a wrapper that re-enters its domain (e.g.
  // Hypervisor::RunAsDomainKernel) so drain work is charged like a softirq
  // to the driver's home, not to whichever domain last ran.
  void SetDeferredContext(std::function<void(const std::function<void()>&)> ctx) {
    deferred_ctx_ = std::move(ctx);
  }

  // Reclaims finished tx staging frames without touching the rx path (safe
  // to call from inside request handlers; no re-entrant rx callbacks).
  void PollTxCompletions();

  // Replaces a staging frame with another (used after a page flip took the
  // frame away).
  void ReplaceRxFrame(hwsim::Frame old_frame, hwsim::Frame new_frame);

  uint64_t rx_delivered() const { return rx_delivered_; }
  uint64_t tx_sent() const { return tx_sent_; }
  uint64_t retries() const { return retries_; }
  uint64_t poll_rounds() const { return poll_rounds_; }
  size_t free_tx_frames() const { return tx_free_.size(); }

 private:
  struct Replacement {
    hwsim::Frame valid_for = static_cast<hwsim::Frame>(-1);
    hwsim::Frame replacement = 0;
  };

  void PostRx(hwsim::Frame frame);

  void DrainTxCompletions();
  size_t DrainRxCompletions();
  void PollRound();

  hwsim::Machine& machine_;
  hwsim::Nic& nic_;
  RetryPolicy policy_;
  RxCallback rx_callback_;
  std::function<void()> drain_hook_;
  std::function<void(const std::function<void()>&)> deferred_ctx_;
  bool mitigation_ = false;
  bool polling_ = false;
  uint64_t poll_interval_ = 0;
  uint64_t poll_rounds_ = 0;
  std::deque<hwsim::Frame> tx_free_;
  std::unordered_map<hwsim::Paddr, hwsim::Frame> rx_posted_;  // paddr -> frame
  std::unordered_map<hwsim::Paddr, hwsim::Frame> tx_inflight_;
  Replacement frame_after_replace_;
  uint64_t rx_delivered_ = 0;
  uint64_t tx_sent_ = 0;
  uint64_t retries_ = 0;
};

}  // namespace udrv

#endif  // UKVM_SRC_DRIVERS_NIC_DRIVER_H_
