// Disk device driver: asynchronous request/completion with per-request
// callbacks. Like the NIC driver, it runs unmodified as a microkernel
// user-level server and inside Dom0.

#ifndef UKVM_SRC_DRIVERS_DISK_DRIVER_H_
#define UKVM_SRC_DRIVERS_DISK_DRIVER_H_

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "src/core/error.h"
#include "src/hw/disk.h"
#include "src/hw/machine.h"

namespace udrv {

class DiskDriver {
 public:
  using DoneCallback = std::function<void(ukvm::Err status)>;

  DiskDriver(hwsim::Machine& machine, hwsim::Disk& disk);

  DiskDriver(const DiskDriver&) = delete;
  DiskDriver& operator=(const DiskDriver&) = delete;

  // Reads `blocks` blocks at `lba` into `frame` (must fit in one page).
  ukvm::Err Read(uint64_t lba, uint32_t blocks, hwsim::Frame frame, DoneCallback done);
  ukvm::Err Write(uint64_t lba, uint32_t blocks, hwsim::Frame frame, DoneCallback done);

  // Interrupt service routine: completes finished requests.
  void OnInterrupt();

  uint32_t blocks_per_page() const;
  uint64_t requests_completed() const { return completed_; }
  size_t inflight() const { return pending_.size(); }

 private:
  ukvm::Err Submit(bool is_write, uint64_t lba, uint32_t blocks, hwsim::Frame frame,
                   DoneCallback done);

  hwsim::Machine& machine_;
  hwsim::Disk& disk_;
  std::unordered_map<uint64_t, DoneCallback> pending_;
  uint64_t completed_ = 0;
};

}  // namespace udrv

#endif  // UKVM_SRC_DRIVERS_DISK_DRIVER_H_
