// Disk device driver: asynchronous request/completion with per-request
// callbacks. Like the NIC driver, it runs unmodified as a microkernel
// user-level server and inside Dom0.
//
// With a RetryPolicy set, the driver is also the recovery layer: requests
// that complete with a device error are resubmitted after exponential
// backoff, and a per-attempt timeout catches completions whose interrupt
// was lost. Exhausted requests report Err::kRetryExhausted (persistent
// device errors) or Err::kTimedOut (persistent silence).

#ifndef UKVM_SRC_DRIVERS_DISK_DRIVER_H_
#define UKVM_SRC_DRIVERS_DISK_DRIVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "src/core/error.h"
#include "src/drivers/retry_policy.h"
#include "src/hw/disk.h"
#include "src/hw/machine.h"

namespace udrv {

class DiskDriver {
 public:
  using DoneCallback = std::function<void(ukvm::Err status)>;

  DiskDriver(hwsim::Machine& machine, hwsim::Disk& disk);
  ~DiskDriver();

  DiskDriver(const DiskDriver&) = delete;
  DiskDriver& operator=(const DiskDriver&) = delete;

  void SetRetryPolicy(const RetryPolicy& policy) { policy_ = policy; }
  const RetryPolicy& retry_policy() const { return policy_; }

  // Reads `blocks` blocks at `lba` into `frame` (must fit in one page).
  ukvm::Err Read(uint64_t lba, uint32_t blocks, hwsim::Frame frame, DoneCallback done);
  ukvm::Err Write(uint64_t lba, uint32_t blocks, hwsim::Frame frame, DoneCallback done);

  // Interrupt service routine: completes finished requests.
  void OnInterrupt();

  uint32_t blocks_per_page() const;
  uint64_t requests_completed() const { return completed_; }
  uint64_t retries() const { return retries_; }
  uint64_t timeouts() const { return timeouts_; }
  size_t inflight() const { return pending_.size(); }

 private:
  struct Pending {
    bool is_write = false;
    uint64_t lba = 0;
    uint32_t blocks = 0;
    hwsim::Frame frame = 0;
    DoneCallback done;
    uint32_t attempt = 1;
    hwsim::Machine::EventId timeout_event = 0;  // 0 = none armed
  };

  ukvm::Err Submit(bool is_write, uint64_t lba, uint32_t blocks, hwsim::Frame frame,
                   DoneCallback done);
  // Hands `req` to the device and arms the per-attempt timeout. On success
  // `req` moves into pending_; on a synchronous submit error `req` is left
  // intact and the error returned.
  ukvm::Err Issue(Pending& req);
  // Failure of one attempt (`err` is the device status or kTimedOut):
  // retries with backoff or finishes the request with the terminal error.
  void OnAttemptFailed(Pending req, ukvm::Err err);
  void OnTimeout(uint64_t request_id);
  void Finish(Pending& req, ukvm::Err status);

  hwsim::Machine& machine_;
  hwsim::Disk& disk_;
  RetryPolicy policy_;
  std::unordered_map<uint64_t, Pending> pending_;  // keyed by device request id
  uint64_t completed_ = 0;
  uint64_t retries_ = 0;
  uint64_t timeouts_ = 0;
  // Guards timeout/backoff events still on the machine queue after the
  // driver is destroyed (service restarts tear drivers down mid-flight).
  std::shared_ptr<bool> alive_;
};

}  // namespace udrv

#endif  // UKVM_SRC_DRIVERS_DISK_DRIVER_H_
