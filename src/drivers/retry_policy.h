// Retry/timeout/backoff policy shared by the device drivers.
//
// The drivers run in whichever protection domain the stack puts them in
// (user-level server or Dom0), so recovery from flaky hardware must live in
// the driver itself — bounded retries with exponential backoff in simulated
// cycles, and a per-request timeout so a lost completion interrupt cannot
// wedge the service forever. The default policy (one attempt, no timeout)
// preserves the original fire-and-forget behaviour.

#ifndef UKVM_SRC_DRIVERS_RETRY_POLICY_H_
#define UKVM_SRC_DRIVERS_RETRY_POLICY_H_

#include <cstdint>

namespace udrv {

struct RetryPolicy {
  uint32_t max_attempts = 1;    // total tries per request (1 = no retry)
  uint64_t timeout_cycles = 0;  // per-attempt completion deadline (0 = wait forever)
  uint64_t backoff_cycles = 0;  // delay before attempt k+1 is backoff << (k-1)

  bool retries_enabled() const { return max_attempts > 1; }
  bool timeout_enabled() const { return timeout_cycles > 0; }

  uint64_t BackoffFor(uint32_t attempt) const {  // attempt is 1-based
    return attempt == 0 ? backoff_cycles : backoff_cycles << (attempt - 1);
  }
};

}  // namespace udrv

#endif  // UKVM_SRC_DRIVERS_RETRY_POLICY_H_
