#include "src/drivers/nic_driver.h"

#include <cassert>

#include "src/core/log.h"

namespace udrv {

using ukvm::Err;

NicDriver::NicDriver(hwsim::Machine& machine, hwsim::Nic& nic, std::vector<hwsim::Frame> pool)
    : machine_(machine), nic_(nic) {
  assert(pool.size() >= 2);
  const size_t rx_count = pool.size() / 2;
  for (size_t i = 0; i < pool.size(); ++i) {
    if (i < rx_count) {
      PostRx(pool[i]);
    } else {
      tx_free_.push_back(pool[i]);
    }
  }
}

void NicDriver::PostRx(hwsim::Frame frame) {
  const hwsim::Paddr addr = machine_.memory().FrameBase(frame);
  const auto len = static_cast<uint32_t>(
      std::min<uint64_t>(machine_.memory().page_size(), nic_.config().mtu));
  if (nic_.PostRxBuffer(addr, len) == Err::kNone) {
    rx_posted_[addr] = frame;
  }
}

Err NicDriver::SendFrame(hwsim::Frame frame, uint32_t len) {
  machine_.Charge(machine_.costs().mmio_access);  // ring doorbell
  const Err err = nic_.Transmit(machine_.memory().FrameBase(frame), len);
  if (err == Err::kNone) {
    tx_inflight_[machine_.memory().FrameBase(frame)] = frame;
    ++tx_sent_;
  }
  return err;
}

Err NicDriver::SendCopyWithRetry(std::span<const uint8_t> payload) {
  Err err = SendCopy(payload);
  uint32_t attempt = 1;
  while (err == Err::kBusy && attempt < policy_.max_attempts) {
    // Back off in simulated time, then reclaim any tx slots whose
    // completions have landed (their interrupts may have been lost).
    machine_.RunFor(policy_.BackoffFor(attempt));
    PollTxCompletions();
    ++retries_;
    machine_.counters().AddNamed("drv.nic.retry");
    ++attempt;
    err = SendCopy(payload);
  }
  if (err == Err::kBusy && policy_.retries_enabled()) {
    machine_.counters().AddNamed("drv.nic.exhausted");
    return Err::kRetryExhausted;
  }
  return err;
}

Err NicDriver::SendCopy(std::span<const uint8_t> payload) {
  if (tx_free_.empty()) {
    return Err::kBusy;
  }
  if (payload.size() > machine_.memory().page_size() || payload.size() > nic_.config().mtu) {
    return Err::kInvalidArgument;
  }
  const hwsim::Frame frame = tx_free_.front();
  tx_free_.pop_front();
  machine_.ChargeCopy(payload.size());
  machine_.memory().Write(machine_.memory().FrameBase(frame), payload);
  const Err err = SendFrame(frame, static_cast<uint32_t>(payload.size()));
  if (err != Err::kNone) {
    tx_free_.push_back(frame);
  }
  return err;
}

void NicDriver::OnInterrupt() {
  machine_.Charge(machine_.costs().mmio_access);  // read interrupt status
  if (mitigation_) {
    if (polling_) {
      return;  // a poll chain is already running; it will pick the work up
    }
    // Mask at the device and switch to polled rounds (NAPI). Completions
    // arriving meanwhile are latched, not delivered, so a whole burst is
    // served by this one interrupt.
    machine_.Charge(machine_.costs().mmio_access);
    nic_.SetInterruptEnable(false);
    polling_ = true;
    PollRound();
    return;
  }
  (void)DrainRxCompletions();
  DrainTxCompletions();
}

void NicDriver::PollRound() {
  ++poll_rounds_;
  const size_t rx_drained = DrainRxCompletions();
  const size_t tx_before = tx_free_.size();
  DrainTxCompletions();
  if (rx_drained > 0 && drain_hook_) {
    drain_hook_();  // let the consumer flush its staged batch
  }
  if (rx_drained > 0 || tx_free_.size() != tx_before) {
    machine_.ScheduleAfter(poll_interval_, [this] {
      if (deferred_ctx_) {
        deferred_ctx_([this] { PollRound(); });
      } else {
        PollRound();
      }
    });
    return;
  }
  // Rings ran dry: re-arm the device interrupt and leave polled mode. A
  // completion latched during this round re-raises the IRQ on re-enable.
  polling_ = false;
  machine_.Charge(machine_.costs().mmio_access);
  nic_.SetInterruptEnable(true);
}

size_t NicDriver::DrainRxCompletions() {
  size_t drained = 0;
  while (auto rx = nic_.TakeRxCompletion()) {
    auto it = rx_posted_.find(rx->addr);
    if (it == rx_posted_.end()) {
      UKVM_WARN("nic driver: rx completion for unknown buffer");
      continue;
    }
    const hwsim::Frame frame = it->second;
    rx_posted_.erase(it);
    ++rx_delivered_;
    ++drained;
    if (rx_callback_) {
      rx_callback_(frame, rx->len);
    }
    if (drain_hook_) {
      continue;  // batch mode: the consumer staged the frame; RepostRx returns it
    }
    // The consumer is done with (or has replaced) the frame; repost it. The
    // mapping may have been updated by ReplaceRxFrame during the callback.
    PostRx(frame_after_replace_.valid_for == frame ? frame_after_replace_.replacement : frame);
    frame_after_replace_ = {};
  }
  return drained;
}

void NicDriver::SetInterruptMitigation(bool on, uint64_t poll_interval) {
  mitigation_ = on;
  poll_interval_ = poll_interval;
  if (!on && !nic_.interrupt_enabled()) {
    nic_.SetInterruptEnable(true);
  }
}

void NicDriver::PollTxCompletions() {
  machine_.Charge(machine_.costs().mmio_access);  // read tx ring head
  DrainTxCompletions();
}

void NicDriver::DrainTxCompletions() {
  while (auto tx = nic_.TakeTxCompletion()) {
    auto it = tx_inflight_.find(tx->addr);
    if (it != tx_inflight_.end()) {
      tx_free_.push_back(it->second);
      tx_inflight_.erase(it);
    }
  }
}

void NicDriver::ReplaceRxFrame(hwsim::Frame old_frame, hwsim::Frame new_frame) {
  frame_after_replace_ = Replacement{old_frame, new_frame};
}

}  // namespace udrv
