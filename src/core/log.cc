#include "src/core/log.h"

namespace ukvm {
namespace {

LogLevel g_level = LogLevel::kWarn;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return g_level; }

void SetLogLevel(LogLevel level) { g_level = level; }

void LogMessage(LogLevel level, const char* format, ...) {
  std::fprintf(stderr, "[%s] ", LevelTag(level));
  va_list args;
  va_start(args, format);
  std::vfprintf(stderr, format, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace ukvm
