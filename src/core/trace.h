// The E17 observability layer: flight recorder, latency histograms, and
// cycle-attribution profiler.
//
// Everything here observes the simulation without perturbing it: no method
// in this file ever charges simulated cycles, so a run with tracing on is
// cycle-for-cycle identical to the same run with tracing off (proven by
// bench_e17_trace_overhead). The only cost of tracing is host wall-clock.
//
// Three instruments share one Tracer per machine:
//   - Flight recorder: a fixed-capacity ring of typed TraceEvents. Spans
//     are recorded as *completed* intervals (begin time + duration) when
//     they close, so a wrapped ring never holds a begin without its end.
//   - Latency histograms: named LogHistograms fed per-mechanism crossing
//     latency (automatically, from the ledger's trace stream) and
//     end-to-end request latency (from the split drivers).
//   - Cycle profiler: a ChargeObserver that tags every CpuAccounting
//     charge with the interned attribution path pushed by the code that
//     is running (hypercall nr, IPC op, softirq, ...), and dumps
//     collapsed stacks for flamegraph.pl.
//
// Determinism: all recorded content derives from simulated time, interned
// ids, and event order; exports sort any unordered containers. Same seed +
// same Config => byte-identical dumps.

#ifndef UKVM_SRC_CORE_TRACE_H_
#define UKVM_SRC_CORE_TRACE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/core/histogram.h"
#include "src/core/ids.h"
#include "src/core/metrics.h"

namespace ukvm {

struct CrossingEvent;
class CrossingLedger;

// Per-stack tracing knobs. Default-off: stacks built with an all-default
// Config run with zero instrumentation active.
struct TraceConfig {
  bool enabled = false;
  // Flight-recorder capacity in events; oldest events are overwritten.
  size_t ring_capacity = 1u << 16;
};

enum class TraceEventType : uint8_t {
  kSpan = 0,  // completed interval: time = begin, dur = length
  kInstant,   // point event (IRQ, sched switch, fault firing, ...)
  kCrossing,  // one ledger crossing (a = from-domain, b = bytes)
};

struct TraceEvent {
  TraceEventType type = TraceEventType::kInstant;
  uint32_t name = 0;  // interned via Tracer::InternName
  DomainId domain;    // the domain the event is attributed to
  uint64_t time = 0;  // simulated cycles
  uint64_t dur = 0;   // span length (kSpan) or crossing cycles (kCrossing)
  uint64_t a = 0;     // event-specific payload
  uint64_t b = 0;
  uint64_t seq = 0;   // global ordinal; survives ring wrap
};

// Cycle-attribution profiler. Instrumented code pushes interned frames
// (via ProfScope) around the work it charges; every CpuAccounting::Charge
// is then attributed to (domain, active path). Paths are interned in a
// trie so the hot path is one map lookup + one counter bump.
class CycleProfiler : public ChargeObserver {
 public:
  CycleProfiler();

  uint32_t InternFrame(std::string_view name);
  const std::string& FrameName(uint32_t id) const { return frame_names_.at(id); }

  void Push(uint32_t frame);
  void Pop();
  size_t depth() const { return stack_.size(); }

  void OnCharge(DomainId domain, uint64_t cycles) override;

  uint64_t total_cycles() const { return total_cycles_; }

  // Visits every (domain, path, cycles) attribution, path outermost-first
  // (empty for cycles charged with no frames pushed). Deterministic order:
  // sorted by (domain, trie node).
  void ForEachAttribution(
      const std::function<void(DomainId, const std::vector<uint32_t>&, uint64_t)>& fn) const;

  void Reset();

 private:
  struct Node {
    uint32_t parent = 0;  // index into nodes_; node 0 is the root
    uint32_t frame = 0;
  };

  std::vector<std::string> frame_names_;
  std::unordered_map<std::string, uint32_t> frames_by_name_;
  std::vector<Node> nodes_;
  std::unordered_map<uint64_t, uint32_t> children_;  // (parent<<32)|frame -> node
  std::vector<uint32_t> stack_;                      // open frames as trie nodes
  uint32_t current_ = 0;                             // trie node of the full path
  std::unordered_map<uint64_t, uint64_t> cycles_;    // (domain<<32)|node -> cycles
  uint64_t total_cycles_ = 0;
};

class Tracer {
 public:
  Tracer();

  // Arms the instruments. Clears any previously recorded events/attributions
  // and sizes the ring per `config`. (Interned names survive: instrumented
  // code caches ids at construction time.)
  void Enable(const TraceConfig& config);
  // Stops recording; already-captured data stays readable for export.
  void Disable();
  bool enabled() const { return enabled_; }

  void SetTimeSource(std::function<uint64_t()> now) { now_ = std::move(now); }

  // --- Names and domains ------------------------------------------------------

  // Interns an event/span name. Id 0 is reserved (the empty name), so
  // instrumentation sites can use 0 as an "not yet interned" sentinel.
  uint32_t InternName(std::string_view name);
  const std::string& Name(uint32_t id) const { return names_.at(id); }

  // Display names for domains in exports ("Dom0", "sigma0", ...).
  void RegisterDomain(DomainId domain, std::string_view name);
  // Registered name, or "invalid" / "dom<N>" fallbacks.
  std::string DomainName(DomainId domain) const;
  // Sorted by domain id — export iteration order.
  const std::map<uint32_t, std::string>& domain_names() const { return domain_names_; }

  // --- Flight recorder --------------------------------------------------------

  // Opens a span; returns a token for EndSpan. No-op (returns 0) while
  // disabled. Spans nest LIFO; closing out of order counts a mismatch and
  // discards the intervening opens.
  uint64_t BeginSpan(uint32_t name, DomainId domain);
  void EndSpan(uint64_t token);

  void Instant(uint32_t name, DomainId domain, uint64_t a = 0, uint64_t b = 0);

  // Ledger sink: records a kCrossing event and feeds the per-mechanism
  // latency histogram "xing.<mechanism>".
  void OnCrossing(const CrossingEvent& event, const CrossingLedger& ledger);

  // Oldest-first walk of the retained window.
  void ForEachEvent(const std::function<void(const TraceEvent&)>& fn) const;
  uint64_t events_recorded() const { return events_recorded_; }
  uint64_t events_dropped() const;
  size_t ring_capacity() const { return ring_.size(); }
  uint64_t span_mismatches() const { return span_mismatches_; }
  size_t open_spans() const { return open_spans_.size(); }

  // --- Latency histograms -----------------------------------------------------

  uint32_t InternHistogram(std::string_view name);
  void RecordLatency(uint32_t id, uint64_t value) {
    if (enabled_) {
      histograms_[id].Record(value);
    }
  }
  const LogHistogram& Histogram(uint32_t id) const { return histograms_.at(id); }
  const std::string& HistogramName(uint32_t id) const { return histogram_names_.at(id); }
  // Name-sorted walk — export iteration order.
  void ForEachHistogram(
      const std::function<void(const std::string&, const LogHistogram&)>& fn) const;

  CycleProfiler& profiler() { return profiler_; }
  const CycleProfiler& profiler() const { return profiler_; }

 private:
  void Emit(TraceEvent event);

  struct OpenSpan {
    uint64_t token = 0;
    uint32_t name = 0;
    DomainId domain;
    uint64_t start = 0;
  };

  bool enabled_ = false;
  std::function<uint64_t()> now_;

  std::vector<std::string> names_;
  std::unordered_map<std::string, uint32_t> name_ids_;
  std::map<uint32_t, std::string> domain_names_;

  std::vector<TraceEvent> ring_;
  uint64_t events_recorded_ = 0;
  std::vector<OpenSpan> open_spans_;
  uint64_t next_span_token_ = 1;
  uint64_t span_mismatches_ = 0;

  std::vector<std::string> histogram_names_;
  std::unordered_map<std::string, uint32_t> histograms_by_name_;
  std::vector<LogHistogram> histograms_;

  // Per-mechanism caches for OnCrossing (indexed by ledger mechanism id;
  // name 0 / kNoHistogram mean "not yet cached").
  static constexpr uint32_t kNoHistogram = 0xffffffffu;
  std::vector<uint32_t> mech_name_ids_;
  std::vector<uint32_t> mech_histogram_ids_;

  CycleProfiler profiler_;
};

// RAII span. Safe to construct while tracing is disabled (no-op), and to
// destroy after tracing was disabled mid-span.
class SpanScope {
 public:
  SpanScope(Tracer& tracer, uint32_t name, DomainId domain) : tracer_(tracer) {
    if (tracer_.enabled()) {
      token_ = tracer_.BeginSpan(name, domain);
    }
  }
  ~SpanScope() {
    if (token_ != 0) {
      tracer_.EndSpan(token_);
    }
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  Tracer& tracer_;
  uint64_t token_ = 0;
};

// RAII profiler frame.
class ProfScope {
 public:
  ProfScope(Tracer& tracer, uint32_t frame) : tracer_(tracer) {
    if (tracer_.enabled()) {
      tracer_.profiler().Push(frame);
      pushed_ = true;
    }
  }
  ~ProfScope() {
    if (pushed_) {
      tracer_.profiler().Pop();
    }
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  Tracer& tracer_;
  bool pushed_ = false;
};

}  // namespace ukvm

#endif  // UKVM_SRC_CORE_TRACE_H_
