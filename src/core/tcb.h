// Trusted-computing-base inventory (experiments E7 and E8).
//
// Goldberg's reliability argument — "the VMM is likely to be correct
// [because it] is likely to be a very small program" — and the paper's
// super-VM critique (a Dom0 running a legacy OS "re-introduces a large
// number of software bugs") are both claims about how much code sits inside
// the trust boundary of each configuration. This module lets every stack
// declare its components (name, privilege, source files) and produces a
// report with *actual* line counts of this repository's implementation, so
// TCB comparisons are grounded in the code that really runs.

#ifndef UKVM_SRC_CORE_TCB_H_
#define UKVM_SRC_CORE_TCB_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ukvm {

// How a component relates to the trust boundary of a configuration.
enum class TrustClass {
  kPrivileged,     // runs in the most privileged mode (kernel / hypervisor)
  kCriticalPath,   // unprivileged but its failure takes down system services
                   // for many clients (e.g. Dom0, a root file server)
  kIsolated,       // failure affects only its own clients
};

const char* TrustClassName(TrustClass trust);

// One component of a system configuration.
struct TcbComponent {
  std::string name;
  TrustClass trust = TrustClass::kIsolated;
  // Paths relative to the repository root; lines are counted from disk.
  std::vector<std::string> source_files;
};

struct TcbRow {
  std::string component;
  TrustClass trust = TrustClass::kIsolated;
  uint64_t lines = 0;
};

struct TcbReport {
  std::string configuration;
  std::vector<TcbRow> rows;
  uint64_t privileged_lines = 0;
  uint64_t critical_lines = 0;    // privileged + critical-path
  uint64_t total_lines = 0;
};

// Counts non-blank source lines of `repo_relative_path`; returns 0 if the
// file cannot be read (e.g. when running outside the source tree).
uint64_t CountSourceLines(const std::string& repo_relative_path);

// Builds a report by counting the lines of every component's files.
TcbReport BuildTcbReport(const std::string& configuration,
                         const std::vector<TcbComponent>& components);

// Absolute path of the repository root baked in at build time.
const char* RepoSourceDir();

}  // namespace ukvm

#endif  // UKVM_SRC_CORE_TCB_H_
