// Strong identifier types shared across the microkernel and VMM stacks.
//
// Both kernels manage protection domains, schedulable entities, and
// capabilities/handles; using distinct C++ types for each identifier class
// prevents the classic bug of passing a thread id where a domain id is
// expected. All ids are cheap value types.

#ifndef UKVM_SRC_CORE_IDS_H_
#define UKVM_SRC_CORE_IDS_H_

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>

namespace ukvm {

// A strongly-typed wrapper around a 32-bit identifier. `Tag` is a phantom
// type that makes ids of different classes mutually unassignable.
template <typename Tag>
class Id {
 public:
  constexpr Id() = default;
  constexpr explicit Id(uint32_t value) : value_(value) {}

  constexpr uint32_t value() const { return value_; }
  constexpr bool valid() const { return value_ != kInvalidValue; }

  static constexpr Id Invalid() { return Id(); }

  friend constexpr auto operator<=>(Id, Id) = default;

 private:
  static constexpr uint32_t kInvalidValue = 0xffffffffu;
  uint32_t value_ = kInvalidValue;
};

// A protection domain: an address space plus the resources delegated to it.
// In the microkernel stack this is a task/address space; in the VMM stack a
// virtual machine (domain in Xen terminology); the privileged kernel itself
// is also a domain for accounting purposes.
struct DomainTag {};
using DomainId = Id<DomainTag>;

// A schedulable execution context (kernel thread or virtual CPU).
struct ThreadTag {};
using ThreadId = Id<ThreadTag>;

// A guest-OS process running inside a MiniOS instance.
struct ProcessTag {};
using ProcessId = Id<ProcessTag>;

// A hardware interrupt line on the simulated machine.
struct IrqTag {};
using IrqLine = Id<IrqTag>;

// Well-known accounting domains used by the simulated hardware before any
// kernel has defined its own domains.
inline constexpr DomainId kHardwareDomain{0xfffffffeu};

}  // namespace ukvm

// Hashing support so ids can key unordered containers.
template <typename Tag>
struct std::hash<ukvm::Id<Tag>> {
  size_t operator()(const ukvm::Id<Tag>& id) const noexcept {
    return std::hash<uint32_t>{}(id.value());
  }
};

#endif  // UKVM_SRC_CORE_IDS_H_
