#include "src/core/trace.h"

#include <algorithm>
#include <cassert>

#include "src/core/crossings.h"

namespace ukvm {

// --- CycleProfiler ---------------------------------------------------------------

CycleProfiler::CycleProfiler() {
  nodes_.push_back(Node{});  // node 0: the root (empty path)
}

uint32_t CycleProfiler::InternFrame(std::string_view name) {
  auto it = frames_by_name_.find(std::string(name));
  if (it != frames_by_name_.end()) {
    return it->second;
  }
  const auto id = static_cast<uint32_t>(frame_names_.size());
  frame_names_.emplace_back(name);
  frames_by_name_.emplace(std::string(name), id);
  return id;
}

void CycleProfiler::Push(uint32_t frame) {
  const uint64_t key = (uint64_t{current_} << 32) | frame;
  auto it = children_.find(key);
  uint32_t node;
  if (it != children_.end()) {
    node = it->second;
  } else {
    node = static_cast<uint32_t>(nodes_.size());
    nodes_.push_back(Node{current_, frame});
    children_.emplace(key, node);
  }
  stack_.push_back(node);
  current_ = node;
}

void CycleProfiler::Pop() {
  assert(!stack_.empty());
  stack_.pop_back();
  current_ = stack_.empty() ? 0 : stack_.back();
}

void CycleProfiler::OnCharge(DomainId domain, uint64_t cycles) {
  cycles_[(uint64_t{domain.value()} << 32) | current_] += cycles;
  total_cycles_ += cycles;
}

void CycleProfiler::ForEachAttribution(
    const std::function<void(DomainId, const std::vector<uint32_t>&, uint64_t)>& fn) const {
  std::vector<std::pair<uint64_t, uint64_t>> entries(cycles_.begin(), cycles_.end());
  std::sort(entries.begin(), entries.end());
  std::vector<uint32_t> path;
  for (const auto& [key, cycles] : entries) {
    const DomainId domain{static_cast<uint32_t>(key >> 32)};
    path.clear();
    for (uint32_t node = static_cast<uint32_t>(key & 0xffffffffu); node != 0;
         node = nodes_[node].parent) {
      path.push_back(nodes_[node].frame);
    }
    std::reverse(path.begin(), path.end());
    fn(domain, path, cycles);
  }
}

void CycleProfiler::Reset() {
  cycles_.clear();
  total_cycles_ = 0;
}

// --- Tracer ----------------------------------------------------------------------

Tracer::Tracer() {
  const uint32_t reserved = InternName("");  // id 0: the "unset" sentinel
  assert(reserved == 0);
  (void)reserved;
}

void Tracer::Enable(const TraceConfig& config) {
  ring_.assign(config.ring_capacity > 0 ? config.ring_capacity : 1, TraceEvent{});
  events_recorded_ = 0;
  open_spans_.clear();
  span_mismatches_ = 0;
  for (LogHistogram& h : histograms_) {
    h.Reset();
  }
  profiler_.Reset();
  enabled_ = true;
}

void Tracer::Disable() { enabled_ = false; }

uint32_t Tracer::InternName(std::string_view name) {
  auto it = name_ids_.find(std::string(name));
  if (it != name_ids_.end()) {
    return it->second;
  }
  const auto id = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  name_ids_.emplace(std::string(name), id);
  return id;
}

void Tracer::RegisterDomain(DomainId domain, std::string_view name) {
  domain_names_[domain.value()] = std::string(name);
}

std::string Tracer::DomainName(DomainId domain) const {
  auto it = domain_names_.find(domain.value());
  if (it != domain_names_.end()) {
    return it->second;
  }
  if (!domain.valid()) {
    return "invalid";
  }
  return "dom" + std::to_string(domain.value());
}

void Tracer::Emit(TraceEvent event) {
  if (!enabled_) {
    return;
  }
  event.seq = events_recorded_;
  ring_[events_recorded_ % ring_.size()] = event;
  ++events_recorded_;
}

uint64_t Tracer::BeginSpan(uint32_t name, DomainId domain) {
  if (!enabled_) {
    return 0;
  }
  const uint64_t token = next_span_token_++;
  open_spans_.push_back(OpenSpan{token, name, domain, now_ ? now_() : 0});
  return token;
}

void Tracer::EndSpan(uint64_t token) {
  if (token == 0) {
    return;
  }
  // Spans close LIFO; an out-of-order close (a bug in the instrumentation,
  // or a span crossing an Enable() reset) discards the opens above it and
  // counts each as a mismatch.
  while (!open_spans_.empty() && open_spans_.back().token != token) {
    open_spans_.pop_back();
    ++span_mismatches_;
  }
  if (open_spans_.empty()) {
    ++span_mismatches_;
    return;
  }
  const OpenSpan span = open_spans_.back();
  open_spans_.pop_back();
  TraceEvent event;
  event.type = TraceEventType::kSpan;
  event.name = span.name;
  event.domain = span.domain;
  event.time = span.start;
  event.dur = (now_ ? now_() : 0) - span.start;
  Emit(event);
}

void Tracer::Instant(uint32_t name, DomainId domain, uint64_t a, uint64_t b) {
  if (!enabled_) {
    return;
  }
  TraceEvent event;
  event.type = TraceEventType::kInstant;
  event.name = name;
  event.domain = domain;
  event.time = now_ ? now_() : 0;
  event.a = a;
  event.b = b;
  Emit(event);
}

void Tracer::OnCrossing(const CrossingEvent& crossing, const CrossingLedger& ledger) {
  if (!enabled_) {
    return;
  }
  if (crossing.mechanism >= mech_name_ids_.size()) {
    mech_name_ids_.resize(crossing.mechanism + 1, 0);
    mech_histogram_ids_.resize(crossing.mechanism + 1, kNoHistogram);
  }
  uint32_t& name = mech_name_ids_[crossing.mechanism];
  uint32_t& hist = mech_histogram_ids_[crossing.mechanism];
  if (name == 0) {
    const std::string& mech = ledger.MechanismName(crossing.mechanism);
    name = InternName(mech);
    hist = InternHistogram("xing." + mech);
  }
  TraceEvent event;
  event.type = TraceEventType::kCrossing;
  event.name = name;
  event.domain = crossing.to;
  event.time = crossing.time;
  event.dur = crossing.cycles;
  event.a = crossing.from.value();
  event.b = crossing.bytes;
  Emit(event);
  histograms_[hist].Record(crossing.cycles);
}

void Tracer::ForEachEvent(const std::function<void(const TraceEvent&)>& fn) const {
  if (ring_.empty()) {
    return;
  }
  const uint64_t capacity = ring_.size();
  const uint64_t retained = events_recorded_ < capacity ? events_recorded_ : capacity;
  const uint64_t first = events_recorded_ - retained;
  for (uint64_t i = 0; i < retained; ++i) {
    fn(ring_[(first + i) % capacity]);
  }
}

uint64_t Tracer::events_dropped() const {
  const uint64_t capacity = ring_.size();
  return events_recorded_ > capacity ? events_recorded_ - capacity : 0;
}

uint32_t Tracer::InternHistogram(std::string_view name) {
  auto it = histograms_by_name_.find(std::string(name));
  if (it != histograms_by_name_.end()) {
    return it->second;
  }
  const auto id = static_cast<uint32_t>(histograms_.size());
  histogram_names_.emplace_back(name);
  histograms_.emplace_back();
  histograms_by_name_.emplace(std::string(name), id);
  return id;
}

void Tracer::ForEachHistogram(
    const std::function<void(const std::string&, const LogHistogram&)>& fn) const {
  std::vector<uint32_t> order(histograms_.size());
  for (uint32_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [this](uint32_t a, uint32_t b) {
    return histogram_names_[a] < histogram_names_[b];
  });
  for (uint32_t id : order) {
    fn(histogram_names_[id], histograms_[id]);
  }
}

}  // namespace ukvm
