#include "src/core/metrics.h"

#include <algorithm>
#include <cassert>

namespace ukvm {

void CpuAccounting::Charge(DomainId domain, uint64_t cycles) {
  cycles_[domain] += cycles;
  total_ += cycles;
  if (observer_ != nullptr) {
    observer_->OnCharge(domain, cycles);
  }
}

uint64_t CpuAccounting::CyclesOf(DomainId domain) const {
  auto it = cycles_.find(domain);
  return it == cycles_.end() ? 0 : it->second;
}

double CpuAccounting::ShareOf(DomainId domain) const {
  if (total_ == 0) {
    return 0.0;
  }
  return static_cast<double>(CyclesOf(domain)) / static_cast<double>(total_);
}

std::vector<std::pair<DomainId, uint64_t>> CpuAccounting::ByDomain() const {
  std::vector<std::pair<DomainId, uint64_t>> out(cycles_.begin(), cycles_.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first.value() < b.first.value();
  });
  return out;
}

void CpuAccounting::Reset() {
  cycles_.clear();
  total_ = 0;
}

uint32_t Counters::Intern(std::string_view name) {
  auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) {
    return it->second;
  }
  const auto id = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  values_.push_back(0);
  by_name_.emplace(std::string(name), id);
  return id;
}

void Counters::Add(uint32_t id, uint64_t delta) {
  assert(id < values_.size());
  values_[id] += delta;
}

void Counters::AddNamed(std::string_view name, uint64_t delta) { Add(Intern(name), delta); }

uint64_t Counters::Get(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? 0 : values_[it->second];
}

std::vector<std::pair<std::string, uint64_t>> Counters::All() const {
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(names_.size());
  for (size_t i = 0; i < names_.size(); ++i) {
    out.emplace_back(names_[i], values_[i]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void Counters::Reset() { std::fill(values_.begin(), values_.end(), 0); }

}  // namespace ukvm
