#include "src/core/histogram.h"

namespace ukvm {

uint64_t LogHistogram::ValueAtPermille(uint32_t p) const {
  if (count_ == 0) {
    return 0;
  }
  const uint64_t target = (count_ * p + 999) / 1000;
  if (target == 0) {
    return min_;
  }
  uint64_t cumulative = 0;
  for (uint32_t i = 0; i < kBucketCount; ++i) {
    cumulative += counts_[i];
    if (cumulative >= target) {
      const uint64_t upper = BucketUpperBound(i);
      return upper < max_ ? upper : max_;
    }
  }
  return max_;
}

HistogramSnapshot LogHistogram::Snapshot() const {
  HistogramSnapshot s;
  s.count = count_;
  s.min = min_;
  s.max = max_;
  s.sum = sum_;
  s.p50 = ValueAtPermille(500);
  s.p90 = ValueAtPermille(900);
  s.p99 = ValueAtPermille(990);
  return s;
}

void LogHistogram::Reset() {
  counts_.fill(0);
  count_ = 0;
  min_ = 0;
  max_ = 0;
  sum_ = 0;
}

}  // namespace ukvm
