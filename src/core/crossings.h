// The crossing ledger: the project's central measurement construct.
//
// Heiser et al.'s argument against Hand et al. is structural: a Xen-style
// VMM performs "essentially the same number of IPC operations" as an
// L4-style microkernel for the same workload, it merely spells them
// differently (event channels, page flips, trap-and-reflect). To test that
// claim both kernels in this project report every protection-domain crossing
// to a shared ledger, using a shared taxonomy, so crossing counts and costs
// can be compared apples-to-apples (experiments E1-E4).

#ifndef UKVM_SRC_CORE_CROSSINGS_H_
#define UKVM_SRC_CORE_CROSSINGS_H_

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/core/ids.h"

namespace ukvm {

// Taxonomy of protection-domain crossings. Section 2.2 of the paper lists
// the three orthogonal roles of microkernel IPC (control transfer, data
// transfer, resource delegation); traps and interrupts are the
// hardware-initiated flavours that VMMs additionally distinguish.
enum class CrossingKind : uint8_t {
  kSyncCall = 0,       // kernel-mediated synchronous control transfer (IPC call, hypercall)
  kSyncReply,          // the matching return transfer
  kAsyncNotify,        // asynchronous notification (event channel, virtual IRQ, async IPC)
  kDataTransfer,       // bulk data movement across domains (string IPC, grant copy)
  kResourceDelegate,   // resource delegation (map/grant/unmap, grant transfer, page flip)
  kTrap,               // exception/syscall entry into a more privileged domain
  kTrapReturn,         // return from trap to the less privileged domain
  kInterrupt,          // hardware interrupt delivery into a domain
  kKindCount,          // sentinel
};

inline constexpr size_t kCrossingKindCount = static_cast<size_t>(CrossingKind::kKindCount);

// Stable display name for a crossing kind.
const char* CrossingKindName(CrossingKind kind);

// Aggregated statistics for one named mechanism (e.g. "l4.ipc.call",
// "xen.evtchn.send", "xen.gnttab.transfer").
struct MechanismStats {
  std::string name;
  CrossingKind kind = CrossingKind::kKindCount;
  uint64_t count = 0;
  uint64_t cycles = 0;
  uint64_t bytes = 0;
};

// Point-in-time totals, used by experiments to measure deltas around a
// workload phase.
struct CrossingSnapshot {
  std::array<uint64_t, kCrossingKindCount> kind_counts{};
  std::vector<MechanismStats> mechanisms;
  uint64_t total_count = 0;
  uint64_t total_cycles = 0;

  // Crossings that the paper counts as "IPC operations": everything except
  // hardware interrupt delivery.
  uint64_t IpcLikeCount() const;
};

// Computes `after - before` field-wise (mechanisms matched by name).
CrossingSnapshot DiffSnapshots(const CrossingSnapshot& before, const CrossingSnapshot& after);

// One crossing as it happened, for stream consumers (the ledger linter in
// src/check). Only produced while a trace sink is installed; the aggregate
// counters above are always maintained.
struct CrossingEvent {
  uint32_t mechanism = 0;
  CrossingKind kind = CrossingKind::kKindCount;
  DomainId from;
  DomainId to;
  uint64_t cycles = 0;
  uint64_t bytes = 0;
  uint64_t seq = 0;   // ordinal of this event since the ledger was created
  uint64_t time = 0;  // simulated time at the record call (0 without a clock)
};

// Records crossings. One ledger per simulated machine; not thread-safe (the
// simulation is single-threaded and deterministic).
class CrossingLedger {
 public:
  // Interns a mechanism name, returning a dense id for cheap recording on
  // hot paths. Repeated calls with the same name return the same id. The
  // kind given at interning time classifies all events of this mechanism.
  uint32_t InternMechanism(std::string_view name, CrossingKind kind);

  // Records one crossing event of `mechanism` (an id from InternMechanism)
  // from domain `from` to domain `to`, costing `cycles` and moving `bytes`.
  void Record(uint32_t mechanism, DomainId from, DomainId to, uint64_t cycles, uint64_t bytes);

  uint64_t CountByKind(CrossingKind kind) const;
  uint64_t total_count() const { return total_count_; }
  uint64_t total_cycles() const { return total_cycles_; }

  // Count/cycles for one mechanism by name; zero if never interned.
  MechanismStats StatsFor(std::string_view name) const;

  CrossingSnapshot Snapshot() const;
  void Reset();

  // --- Trace stream (feeds the crossing-discipline linter and the flight
  // --- recorder) --------------------------------------------------------------

  // Adds a per-event observer and returns a handle for RemoveTraceSink.
  // Any number of sinks may be live at once (the ukvm-check linter and the
  // E17 flight recorder both observe the same stream); events fan out to
  // all of them in installation order.
  uint32_t AddTraceSink(std::function<void(const CrossingEvent&)> sink);
  void RemoveTraceSink(uint32_t handle);
  bool tracing() const { return !sinks_.empty(); }

  // Clock for event timestamps; the owning Machine installs its simulated
  // clock here. Without one, event times are 0.
  void SetTimeSource(std::function<uint64_t()> now) { now_ = std::move(now); }

  // Observer for Reset(), so stream consumers can drop their running state
  // in step with the aggregates.
  void SetResetHook(std::function<void()> hook) { reset_hook_ = std::move(hook); }

  // Mechanism table introspection (ids are dense, [0, mechanism_count)).
  size_t mechanism_count() const { return slots_.size(); }
  const std::string& MechanismName(uint32_t id) const { return slots_.at(id).name; }
  CrossingKind MechanismKind(uint32_t id) const { return slots_.at(id).kind; }

  uint64_t events_recorded() const { return events_recorded_; }

 private:
  struct MechanismSlot {
    std::string name;
    CrossingKind kind = CrossingKind::kKindCount;
    uint64_t count = 0;
    uint64_t cycles = 0;
    uint64_t bytes = 0;
  };

  std::vector<MechanismSlot> slots_;
  std::unordered_map<std::string, uint32_t> by_name_;
  std::array<uint64_t, kCrossingKindCount> kind_counts_{};
  uint64_t total_count_ = 0;
  uint64_t total_cycles_ = 0;
  uint64_t events_recorded_ = 0;
  std::vector<std::pair<uint32_t, std::function<void(const CrossingEvent&)>>> sinks_;
  uint32_t next_sink_id_ = 1;
  std::function<uint64_t()> now_;
  std::function<void()> reset_hook_;
};

}  // namespace ukvm

#endif  // UKVM_SRC_CORE_CROSSINGS_H_
