#include "src/core/reqtrace.h"

#include <algorithm>
#include <utility>

#include "src/core/crossings.h"

namespace ukvm {

namespace {

uint64_t Clamp(uint64_t v, uint64_t lo, uint64_t hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

uint64_t ChannelKey(DomainId target, uint32_t port) {
  return (uint64_t{target.value()} << 32) | port;
}

}  // namespace

const char* ReqNodeKindName(ReqNodeKind kind) {
  switch (kind) {
    case ReqNodeKind::kOrigin:
      return "origin";
    case ReqNodeKind::kQueue:
      return "queue";
    case ReqNodeKind::kCrossing:
      return "crossing";
    case ReqNodeKind::kCopy:
      return "copy";
    case ReqNodeKind::kDevice:
      return "device";
    case ReqNodeKind::kShootdown:
      return "shootdown";
    case ReqNodeKind::kRecovery:
      return "recovery";
    case ReqNodeKind::kCompute:
      return "compute";
    case ReqNodeKind::kKindCount:
      break;
  }
  return "?";
}

RequestTrace::RequestTrace() {
  names_.emplace_back();  // id 0: the reserved empty name
  name_ids_[""] = 0;
  name_ring_wait_ = InternName("ring.wait");
  name_upcall_ = InternName("evtchn.upcall");
  name_copy_ = InternName("copy");
  name_shootdown_ = InternName("tlb.shootdown");
}

void RequestTrace::Enable(const ReqTraceConfig& config) {
  config_ = config;
  enabled_ = true;
  next_trace_id_ = 1;
  live_.clear();
  current_ = ReqTraceRef{};
  rings_.clear();
  channels_.clear();
  channels_seen_.clear();
  e2e_.Reset();
  for (LogHistogram& h : critpath_) {
    h.Reset();
  }
  slowest_.clear();
  started_ = completed_ = fully_parented_ = abandoned_ = 0;
  orphaned_handoffs_ = dropped_nodes_ = 0;
  drop_next_ring_stash_ = drop_next_channel_adopt_ = false;
}

void RequestTrace::Disable() {
  enabled_ = false;
  current_ = ReqTraceRef{};
}

uint32_t RequestTrace::InternName(std::string_view name) {
  const auto it = name_ids_.find(std::string(name));
  if (it != name_ids_.end()) {
    return it->second;
  }
  const auto id = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  name_ids_[names_.back()] = id;
  return id;
}

RequestTrace::LiveRequest* RequestTrace::Find(ReqTraceRef ref) {
  if (!ref.valid()) {
    return nullptr;
  }
  const auto it = live_.find(ref.trace);
  return it == live_.end() ? nullptr : &it->second;
}

uint32_t RequestTrace::Append(LiveRequest& req, ReqNode node) {
  if (req.nodes.size() >= config_.max_nodes_per_request) {
    ++req.dropped_nodes;
    return 0;  // degrade: further children hang off the root
  }
  req.nodes.push_back(node);
  return static_cast<uint32_t>(req.nodes.size() - 1);
}

ReqTraceRef RequestTrace::BeginRequest(uint32_t name, DomainId domain) {
  if (!enabled_) {
    return ReqTraceRef{};
  }
  const uint32_t id = next_trace_id_++;
  LiveRequest req;
  ReqNode root;
  root.name = name;
  root.kind = ReqNodeKind::kOrigin;
  root.domain = domain;
  root.t0 = Now();
  req.nodes.push_back(root);
  live_.emplace(id, std::move(req));
  ++started_;
  return ReqTraceRef{id, 0};
}

ReqTraceRef RequestTrace::AddLeafTo(ReqTraceRef parent, uint32_t name, ReqNodeKind kind,
                                    DomainId domain, uint64_t t0, uint64_t t1) {
  if (!enabled_) {
    return ReqTraceRef{};
  }
  LiveRequest* req = Find(parent);
  if (req == nullptr) {
    return ReqTraceRef{};
  }
  ReqNode node;
  node.name = name;
  node.kind = kind;
  node.domain = domain;
  node.t0 = t0;
  node.t1 = t1 < t0 ? t0 : t1;
  node.parent = parent.node;
  return ReqTraceRef{parent.trace, Append(*req, node)};
}

ReqTraceRef RequestTrace::AddLeaf(uint32_t name, ReqNodeKind kind, DomainId domain, uint64_t t0,
                                  uint64_t t1) {
  return AddLeafTo(current_, name, kind, domain, t0, t1);
}

void RequestTrace::AttachSharedSpan(const std::vector<ReqTraceRef>& refs, uint32_t name,
                                    ReqNodeKind kind, DomainId domain, uint64_t t0, uint64_t t1) {
  if (!enabled_) {
    return;
  }
  std::vector<uint32_t> done;
  for (const ReqTraceRef& ref : refs) {
    if (!ref.valid() || std::find(done.begin(), done.end(), ref.trace) != done.end()) {
      continue;
    }
    done.push_back(ref.trace);
    (void)AddLeafTo(ref, name, kind, domain, t0, t1);
  }
}

void RequestTrace::CopyLeaf(DomainId domain, uint64_t t0, uint64_t t1, uint64_t bytes) {
  (void)bytes;
  if (!enabled_ || !current_.valid()) {
    return;
  }
  (void)AddLeaf(name_copy_, ReqNodeKind::kCopy, domain, t0, t1);
}

void RequestTrace::ShootdownLeaf(DomainId domain, uint64_t t0, uint64_t t1) {
  if (!enabled_ || !current_.valid()) {
    return;
  }
  (void)AddLeaf(name_shootdown_, ReqNodeKind::kShootdown, domain, t0, t1);
}

void RequestTrace::RingStash(uint64_t ring, RingSide side, uint64_t index) {
  RingStashRef(ring, side, index, current_);
}

void RequestTrace::RingStashRef(uint64_t ring, RingSide side, uint64_t index, ReqTraceRef ref) {
  if (!enabled_) {
    return;
  }
  if (drop_next_ring_stash_) {
    drop_next_ring_stash_ = false;
    return;
  }
  RingTable& table = rings_[ring];
  const auto s = static_cast<size_t>(side);
  if (table.first[s] == kReqOpen) {
    table.first[s] = index;
  }
  Stash stash;
  stash.trace = ref.valid() ? ref.trace : 0;
  stash.node = ref.node;
  stash.t0 = Now();
  if (LiveRequest* req = Find(ref)) {
    ++req->pending_handoffs;
  } else {
    stash.trace = 0;
  }
  table.slots[s][index] = stash;
}

ReqTraceRef RequestTrace::RingConsume(uint64_t ring, RingSide side, uint64_t index,
                                      DomainId domain) {
  if (!enabled_) {
    return ReqTraceRef{};
  }
  const auto rit = rings_.find(ring);
  if (rit == rings_.end()) {
    return ReqTraceRef{};  // ring never stashed: armed after traffic started
  }
  RingTable& table = rit->second;
  const auto s = static_cast<size_t>(side);
  const auto it = table.slots[s].find(index);
  if (it == table.slots[s].end()) {
    if (table.first[s] != kReqOpen && index >= table.first[s]) {
      // Inside the densely stashed window: a propagation point was skipped.
      ++orphaned_handoffs_;
    }
    return ReqTraceRef{};
  }
  const Stash stash = it->second;
  table.slots[s].erase(it);
  if (stash.trace == 0) {
    return ReqTraceRef{};
  }
  const ReqTraceRef parent{stash.trace, stash.node};
  LiveRequest* req = Find(parent);
  if (req == nullptr) {
    return ReqTraceRef{};  // the request already finished elsewhere
  }
  if (req->pending_handoffs > 0) {
    --req->pending_handoffs;
  }
  ReqNode node;
  node.name = name_ring_wait_;
  node.kind = ReqNodeKind::kQueue;
  node.domain = domain;
  node.t0 = stash.t0;
  node.t1 = Now();
  node.parent = stash.node;
  return ReqTraceRef{stash.trace, Append(*req, node)};
}

void RequestTrace::RingDropped(uint64_t ring) {
  if (!enabled_) {
    return;
  }
  const auto rit = rings_.find(ring);
  if (rit == rings_.end()) {
    return;
  }
  for (auto& side : rit->second.slots) {
    for (const auto& [index, stash] : side) {
      UnstashLive(stash);
    }
  }
  rings_.erase(rit);
}

void RequestTrace::UnstashLive(const Stash& stash) {
  LiveRequest* req = Find(ReqTraceRef{stash.trace, stash.node});
  if (req != nullptr && req->pending_handoffs > 0) {
    --req->pending_handoffs;
  }
}

void RequestTrace::ChannelStash(DomainId target, uint32_t port, bool coalesced) {
  if (!enabled_) {
    return;
  }
  const uint64_t key = ChannelKey(target, port);
  channels_seen_.insert(key);
  const auto it = channels_.find(key);
  if (coalesced && it != channels_.end()) {
    return;  // latched: the first sender owns the edge
  }
  if (it != channels_.end()) {
    // A fresh send over an unconsumed stash: the port was torn down and
    // reused (crash reclamation). The old edge is moot, not a bug.
    UnstashLive(it->second);
  }
  Stash stash;
  stash.trace = current_.valid() ? current_.trace : 0;
  stash.node = current_.node;
  stash.t0 = Now();
  if (LiveRequest* req = Find(current_)) {
    ++req->pending_handoffs;
  } else {
    stash.trace = 0;
  }
  channels_[key] = stash;
}

ReqTraceRef RequestTrace::ChannelAdopt(DomainId target, uint32_t port, DomainId domain) {
  if (!enabled_) {
    return ReqTraceRef{};
  }
  const uint64_t key = ChannelKey(target, port);
  const auto it = channels_.find(key);
  if (it == channels_.end()) {
    if (channels_seen_.count(key) != 0) {
      ++orphaned_handoffs_;  // a send stashed here before and the id is gone
    }
    return ReqTraceRef{};  // IRQ-bound port: upcalls without sends are normal
  }
  const Stash stash = it->second;
  channels_.erase(it);
  if (drop_next_channel_adopt_) {
    drop_next_channel_adopt_ = false;
    return ReqTraceRef{};  // the edge is lost; the sender stays in debt
  }
  if (stash.trace == 0) {
    return ReqTraceRef{};
  }
  const ReqTraceRef parent{stash.trace, stash.node};
  LiveRequest* req = Find(parent);
  if (req == nullptr) {
    return ReqTraceRef{};
  }
  if (req->pending_handoffs > 0) {
    --req->pending_handoffs;
  }
  ReqNode node;
  node.name = name_upcall_;
  node.kind = ReqNodeKind::kCrossing;
  node.domain = domain;
  node.t0 = stash.t0;
  node.t1 = Now();
  node.parent = stash.node;
  return ReqTraceRef{stash.trace, Append(*req, node)};
}

void RequestTrace::ForgiveHandoffs(ReqTraceRef ref) {
  if (LiveRequest* req = Find(ref)) {
    req->pending_handoffs = 0;
    req->damaged = false;
  }
}

void RequestTrace::OnCrossing(const CrossingEvent& event, const CrossingLedger& ledger) {
  if (!enabled_ || !current_.valid()) {
    return;
  }
  if (mech_name_ids_.size() < ledger.mechanism_count()) {
    mech_name_ids_.resize(ledger.mechanism_count(), 0);
  }
  uint32_t& name = mech_name_ids_[event.mechanism];
  if (name == 0) {
    name = InternName("xing." + ledger.MechanismName(event.mechanism));
  }
  const uint64_t t1 = event.time;
  const uint64_t t0 = t1 - std::min(event.cycles, t1);
  (void)AddLeaf(name, ReqNodeKind::kCrossing, event.from, t0, t1);
}

void RequestTrace::EndRequest(ReqTraceRef ref) {
  if (!ref.valid()) {
    return;
  }
  const auto it = live_.find(ref.trace);
  if (it == live_.end()) {
    return;
  }
  LiveRequest req = std::move(it->second);
  live_.erase(it);
  Finish(ref.trace, std::move(req), Now());
}

void RequestTrace::AbandonRequest(ReqTraceRef ref) {
  if (!ref.valid()) {
    return;
  }
  const auto it = live_.find(ref.trace);
  if (it == live_.end()) {
    return;
  }
  dropped_nodes_ += it->second.dropped_nodes;
  live_.erase(it);
  ++abandoned_;
}

void RequestTrace::Finish(uint32_t id, LiveRequest&& req, uint64_t end) {
  std::vector<ReqNode>& nodes = req.nodes;
  const uint64_t t0 = nodes.front().t0;
  if (end < t0) {
    end = t0;
  }
  for (ReqNode& node : nodes) {
    if (node.t1 == kReqOpen) {
      node.t1 = end;
    }
  }

  ++completed_;
  const bool parented = !req.damaged && req.pending_handoffs == 0;
  if (parented) {
    ++fully_parented_;
  }
  dropped_nodes_ += req.dropped_nodes;
  e2e_.Record(end - t0);

  // Critical path: partition [t0, end] into elementary intervals at every
  // node boundary and attribute each interval to the deepest active node
  // (ties to the latest-created). Depths are well-defined because parents
  // are always created before children.
  const size_t n = nodes.size();
  std::vector<uint32_t> depth(n, 0);
  std::vector<uint64_t> lo(n);
  std::vector<uint64_t> hi(n);
  std::vector<uint64_t> cuts;
  cuts.reserve(2 * n);
  for (size_t i = 0; i < n; ++i) {
    if (i > 0 && nodes[i].parent != kReqNoParent) {
      depth[i] = depth[nodes[i].parent] + 1;
    }
    lo[i] = Clamp(nodes[i].t0, t0, end);
    hi[i] = Clamp(nodes[i].t1, t0, end);
    cuts.push_back(lo[i]);
    cuts.push_back(hi[i]);
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  std::array<uint64_t, kReqNodeKindCount> breakdown{};
  std::vector<ReqSegment> segments;
  for (size_t c = 0; c + 1 < cuts.size(); ++c) {
    const uint64_t a = cuts[c];
    const uint64_t b = cuts[c + 1];
    size_t best = 0;
    for (size_t i = 1; i < n; ++i) {
      if (lo[i] <= a && hi[i] >= b &&
          (depth[i] > depth[best] || (depth[i] == depth[best] && i > best))) {
        best = i;
      }
    }
    ReqNodeKind bucket = nodes[best].kind;
    if (bucket == ReqNodeKind::kOrigin) {
      bucket = ReqNodeKind::kQueue;  // origin-only time: the request waited
    }
    breakdown[static_cast<size_t>(bucket)] += b - a;
    if (!segments.empty() && segments.back().node == best && segments.back().t1 == a) {
      segments.back().t1 = b;
    } else {
      segments.push_back(ReqSegment{static_cast<uint32_t>(best), a, b});
    }
  }
  for (size_t k = 0; k < kReqNodeKindCount; ++k) {
    if (breakdown[k] > 0) {
      critpath_[k].Record(breakdown[k]);
    }
  }

  if (config_.k_slowest == 0) {
    return;
  }
  const uint64_t e2e = end - t0;
  const auto slower = [](const CompletedRequest& x, uint64_t x_e2e, uint32_t x_id) {
    const uint64_t y = x.t1 - x.t0;
    return y > x_e2e || (y == x_e2e && x.id < x_id);
  };
  auto pos = slowest_.begin();
  while (pos != slowest_.end() && slower(*pos, e2e, id)) {
    ++pos;
  }
  if (pos == slowest_.end() && slowest_.size() >= config_.k_slowest) {
    return;
  }
  CompletedRequest cr;
  cr.id = id;
  cr.t0 = t0;
  cr.t1 = end;
  cr.nodes = std::move(nodes);
  cr.critical_path = std::move(segments);
  cr.breakdown = breakdown;
  cr.parented = parented;
  slowest_.insert(pos, std::move(cr));
  if (slowest_.size() > config_.k_slowest) {
    slowest_.pop_back();
  }
}

void RequestTrace::ForEachHistogram(
    const std::function<void(const std::string&, const LogHistogram&)>& fn) const {
  std::vector<std::pair<std::string, const LogHistogram*>> rows;
  for (size_t k = 0; k < kReqNodeKindCount; ++k) {
    if (critpath_[k].count() > 0) {
      rows.emplace_back(std::string("req.critpath.") + ReqNodeKindName(static_cast<ReqNodeKind>(k)),
                        &critpath_[k]);
    }
  }
  rows.emplace_back("req.e2e", &e2e_);
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [name, hist] : rows) {
    fn(name, *hist);
  }
}

ReqTraceLint RequestTrace::Lint() const {
  ReqTraceLint lint;
  lint.completed = completed_;
  lint.fully_parented = fully_parented_;
  lint.orphaned_handoffs = orphaned_handoffs_;
  lint.abandoned = abandoned_;
  lint.open = live_.size();
  lint.dropped_nodes = dropped_nodes_;
  return lint;
}

std::string RequestTrace::SlowestReport() const {
  std::string out = "slowest requests (";
  out += std::to_string(slowest_.size());
  out += " retained of ";
  out += std::to_string(completed_);
  out += " completed):\n";
  for (const CompletedRequest& cr : slowest_) {
    out += "  #";
    out += std::to_string(cr.id);
    out += " ";
    out += Name(cr.nodes.front().name);
    out += " dom";
    out += std::to_string(cr.nodes.front().domain.value());
    out += " e2e=";
    out += std::to_string(cr.t1 - cr.t0);
    out += " parented=";
    out += cr.parented ? "yes" : "NO";
    out += " breakdown:";
    for (size_t k = 0; k < kReqNodeKindCount; ++k) {
      if (cr.breakdown[k] > 0) {
        out += " ";
        out += ReqNodeKindName(static_cast<ReqNodeKind>(k));
        out += "=";
        out += std::to_string(cr.breakdown[k]);
      }
    }
    out += "\n    critical path:";
    for (const ReqSegment& seg : cr.critical_path) {
      const ReqNode& node = cr.nodes[seg.node];
      out += " ";
      out += Name(node.name);
      out += "[";
      out += std::to_string(seg.t1 - seg.t0);
      out += "]";
    }
    out += "\n";
  }
  return out;
}

}  // namespace ukvm
