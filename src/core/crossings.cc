#include "src/core/crossings.h"

#include <algorithm>
#include <cassert>

namespace ukvm {

const char* CrossingKindName(CrossingKind kind) {
  switch (kind) {
    case CrossingKind::kSyncCall:
      return "sync-call";
    case CrossingKind::kSyncReply:
      return "sync-reply";
    case CrossingKind::kAsyncNotify:
      return "async-notify";
    case CrossingKind::kDataTransfer:
      return "data-transfer";
    case CrossingKind::kResourceDelegate:
      return "resource-delegate";
    case CrossingKind::kTrap:
      return "trap";
    case CrossingKind::kTrapReturn:
      return "trap-return";
    case CrossingKind::kInterrupt:
      return "interrupt";
    case CrossingKind::kKindCount:
      break;
  }
  return "?";
}

uint64_t CrossingSnapshot::IpcLikeCount() const {
  uint64_t sum = 0;
  for (size_t i = 0; i < kCrossingKindCount; ++i) {
    if (static_cast<CrossingKind>(i) == CrossingKind::kInterrupt) {
      continue;
    }
    sum += kind_counts[i];
  }
  return sum;
}

CrossingSnapshot DiffSnapshots(const CrossingSnapshot& before, const CrossingSnapshot& after) {
  CrossingSnapshot diff;
  for (size_t i = 0; i < kCrossingKindCount; ++i) {
    diff.kind_counts[i] = after.kind_counts[i] - before.kind_counts[i];
  }
  diff.total_count = after.total_count - before.total_count;
  diff.total_cycles = after.total_cycles - before.total_cycles;
  diff.mechanisms = after.mechanisms;
  for (auto& mech : diff.mechanisms) {
    auto it = std::find_if(before.mechanisms.begin(), before.mechanisms.end(),
                           [&](const MechanismStats& m) { return m.name == mech.name; });
    if (it != before.mechanisms.end()) {
      mech.count -= it->count;
      mech.cycles -= it->cycles;
      mech.bytes -= it->bytes;
    }
  }
  return diff;
}

uint32_t CrossingLedger::InternMechanism(std::string_view name, CrossingKind kind) {
  auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) {
    assert(slots_[it->second].kind == kind);
    return it->second;
  }
  const auto id = static_cast<uint32_t>(slots_.size());
  slots_.push_back(MechanismSlot{std::string(name), kind, 0, 0, 0});
  by_name_.emplace(std::string(name), id);
  return id;
}

void CrossingLedger::Record(uint32_t mechanism, DomainId from, DomainId to, uint64_t cycles,
                            uint64_t bytes) {
  assert(mechanism < slots_.size());
  MechanismSlot& slot = slots_[mechanism];
  slot.count += 1;
  slot.cycles += cycles;
  slot.bytes += bytes;
  kind_counts_[static_cast<size_t>(slot.kind)] += 1;
  total_count_ += 1;
  total_cycles_ += cycles;
  const uint64_t seq = events_recorded_++;
  if (!sinks_.empty()) {
    CrossingEvent event;
    event.mechanism = mechanism;
    event.kind = slot.kind;
    event.from = from;
    event.to = to;
    event.cycles = cycles;
    event.bytes = bytes;
    event.seq = seq;
    event.time = now_ ? now_() : 0;
    for (const auto& [id, sink] : sinks_) {
      sink(event);
    }
  }
}

uint32_t CrossingLedger::AddTraceSink(std::function<void(const CrossingEvent&)> sink) {
  assert(sink);
  const uint32_t handle = next_sink_id_++;
  sinks_.emplace_back(handle, std::move(sink));
  return handle;
}

void CrossingLedger::RemoveTraceSink(uint32_t handle) {
  std::erase_if(sinks_, [handle](const auto& entry) { return entry.first == handle; });
}

uint64_t CrossingLedger::CountByKind(CrossingKind kind) const {
  return kind_counts_[static_cast<size_t>(kind)];
}

MechanismStats CrossingLedger::StatsFor(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) {
    return MechanismStats{std::string(name), CrossingKind::kKindCount, 0, 0, 0};
  }
  const MechanismSlot& slot = slots_[it->second];
  return MechanismStats{slot.name, slot.kind, slot.count, slot.cycles, slot.bytes};
}

CrossingSnapshot CrossingLedger::Snapshot() const {
  CrossingSnapshot snap;
  snap.kind_counts = kind_counts_;
  snap.total_count = total_count_;
  snap.total_cycles = total_cycles_;
  snap.mechanisms.reserve(slots_.size());
  for (const MechanismSlot& slot : slots_) {
    snap.mechanisms.push_back(
        MechanismStats{slot.name, slot.kind, slot.count, slot.cycles, slot.bytes});
  }
  return snap;
}

void CrossingLedger::Reset() {
  for (MechanismSlot& slot : slots_) {
    slot.count = 0;
    slot.cycles = 0;
    slot.bytes = 0;
  }
  kind_counts_.fill(0);
  total_count_ = 0;
  total_cycles_ = 0;
  if (reset_hook_) {
    reset_hook_();
  }
}

}  // namespace ukvm
