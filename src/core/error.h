// Error handling primitives used throughout the project.
//
// Kernels cannot throw across protection boundaries, so all fallible
// interfaces return either a bare `Err` or a `Result<T>` (value-or-error).
// This mirrors the zx_status_t / fit::result idiom of production kernels.

#ifndef UKVM_SRC_CORE_ERROR_H_
#define UKVM_SRC_CORE_ERROR_H_

#include <cassert>
#include <utility>
#include <variant>

namespace ukvm {

// Error codes. `kNone` is success for interfaces that return a bare Err.
enum class Err {
  kNone = 0,
  kInvalidArgument,
  kNotFound,
  kNoMemory,
  kPermissionDenied,
  kWouldBlock,
  kTimedOut,
  kBusy,
  kAborted,
  kBadHandle,
  kOutOfRange,
  kAlreadyExists,
  kNotSupported,
  kFault,        // memory access violation / unresolvable page fault
  kDead,         // peer protection domain has been destroyed
  kQuotaExceeded,
  kRetryExhausted,  // bounded retries used up against a persistently failing device
  kCorrupted,       // data failed integrity checks (bad sector, mangled frame)
};

// Number of Err enumerators, for exhaustive iteration in tests. Keep in sync
// with the last enumerator above.
inline constexpr int kNumErrCodes = static_cast<int>(Err::kCorrupted) + 1;

// Human-readable name for an error code (stable, for logs and test output).
const char* ErrName(Err err);

// Value-or-error. Intentionally minimal: implicit construction from both the
// value type and Err, checked access.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Err err) : repr_(err) { assert(err != Err::kNone); }  // NOLINT

  bool ok() const { return std::holds_alternative<T>(repr_); }
  explicit operator bool() const { return ok(); }

  Err error() const { return ok() ? Err::kNone : std::get<Err>(repr_); }

  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  T value_or(T fallback) const { return ok() ? std::get<T>(repr_) : std::move(fallback); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Err> repr_;
};

// Uniform error extraction for UKVM_TRY: works on bare Err and on Result<T>.
inline Err GetErr(Err err) { return err; }
template <typename T>
Err GetErr(const Result<T>& result) {
  return result.error();
}

// Propagate-on-error helper: evaluates a Result/Err expression and returns
// its error code from the enclosing function on failure.
#define UKVM_TRY(expr)                                                 \
  do {                                                                 \
    if (auto ukvm_try_err_ = ::ukvm::GetErr((expr));                   \
        ukvm_try_err_ != ::ukvm::Err::kNone) {                         \
      return ukvm_try_err_;                                            \
    }                                                                  \
  } while (0)

}  // namespace ukvm

#endif  // UKVM_SRC_CORE_ERROR_H_
