// The E22 causal request tracer: per-request DAGs with critical-path and
// tail-latency attribution.
//
// E17's instruments aggregate: per-mechanism latency histograms say that
// *some* crossing was slow, never *which request* it made slow. This layer
// follows one request end-to-end across every handoff the simulator models —
// ring descriptor slots (a shadow side-table keyed by absolute prod/cons
// index, the E20 race-detector trick), event-channel send→upcall pairs,
// ledger crossings, multicall sub-ops, TLB-shootdown waits, and E19 recovery
// replay — and records a causal DAG of (node, parent, cycle-interval) per
// request. On completion it computes the critical path, buckets it into
// queueing / crossing / copy / device / shootdown-wait / recovery-phase
// time, feeds `req.e2e` / `req.critpath.*` histograms, and retains the K
// slowest requests' full DAGs so tail outliers can be linked to their cause.
//
// Discipline (same contract as the E17 tracer and E20 race detector): no
// method here ever charges simulated cycles, so a run with request tracing
// on is cycle-for-cycle identical to the same run with it off; everything
// recorded derives from simulated time and interned ids, so two runs of the
// same config export byte-identical dumps.
//
// Completeness lint: every completed request's DAG must be rooted and
// connected. Two failure shapes are detected:
//   - orphaned handoff: a ring slot is consumed inside the stashed window
//     but no id was stashed for it (a propagation point was skipped);
//   - unparented request: a request completes while handoffs it stashed
//     (ring slots, event-channel sends) were never adopted by the far side.
// Crash recovery legitimately severs handoffs mid-flight; the recovery path
// calls ForgiveHandoffs / RingDropped so journaled requests replayed after a
// reconnect still lint clean.

#ifndef UKVM_SRC_CORE_REQTRACE_H_
#define UKVM_SRC_CORE_REQTRACE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/core/histogram.h"
#include "src/core/ids.h"

namespace ukvm {

struct CrossingEvent;
class CrossingLedger;

// Per-stack request-tracing knobs. Default-off: stacks built with an
// all-default Config run with zero instrumentation active.
struct ReqTraceConfig {
  bool enabled = false;
  // How many of the slowest completed requests keep their full DAG.
  size_t k_slowest = 8;
  // Per-request node cap: runaway instrumentation degrades to dropped
  // leaves (counted) instead of unbounded memory.
  size_t max_nodes_per_request = 4096;
};

// What a DAG node's interval was spent on. Doubles as the critical-path
// breakdown bucket (origin-only time counts as queueing: the request
// existed but nothing specific was happening to it).
enum class ReqNodeKind : uint8_t {
  kOrigin = 0,  // the request's root span (birth to completion)
  kQueue,       // waiting in a ring slot between stash and consume
  kCrossing,    // one ledger crossing (hypercall, IPC, trap, upcall)
  kCopy,        // bulk data movement (ChargeCopy)
  kDevice,      // simulated device service time (NIC send, disk I/O)
  kShootdown,   // TLB-shootdown wait
  kRecovery,    // E19 recovery phase (detect / reconnect / replay)
  kCompute,     // everything else explicitly attributed
  kKindCount,   // sentinel
};

inline constexpr size_t kReqNodeKindCount = static_cast<size_t>(ReqNodeKind::kKindCount);

// Stable display name ("origin", "queue", ...).
const char* ReqNodeKindName(ReqNodeKind kind);

// Handle to one node of one live request. trace == 0 means "no request"
// (tracing disabled, or the handoff's id was lost); every API here accepts
// invalid refs as cheap no-ops.
struct ReqTraceRef {
  uint32_t trace = 0;
  uint32_t node = 0;
  constexpr bool valid() const { return trace != 0; }
};

inline constexpr uint32_t kReqNoParent = 0xffffffffu;
// t1 of a node that is still open; closed at EndRequest time.
inline constexpr uint64_t kReqOpen = ~0ull;

struct ReqNode {
  uint32_t name = 0;  // interned via RequestTrace::InternName
  ReqNodeKind kind = ReqNodeKind::kCompute;
  DomainId domain;        // where the interval was spent
  uint64_t t0 = 0;        // simulated cycles
  uint64_t t1 = kReqOpen; // kReqOpen while the node is live
  uint32_t parent = kReqNoParent;
};

// One stretch of a completed request's critical path: during [t0, t1) the
// deepest active DAG node was `node`.
struct ReqSegment {
  uint32_t node = 0;
  uint64_t t0 = 0;
  uint64_t t1 = 0;
};

// A completed request retained in the flight recorder (one of the K
// slowest seen so far).
struct CompletedRequest {
  uint32_t id = 0;
  uint64_t t0 = 0;
  uint64_t t1 = 0;
  std::vector<ReqNode> nodes;          // node 0 is the root
  std::vector<ReqSegment> critical_path;
  // Critical-path cycles per bucket. Origin-only time is bucketed as
  // kQueue, so the kOrigin slot is always 0.
  std::array<uint64_t, kReqNodeKindCount> breakdown{};
  bool parented = true;  // all stashed handoffs were adopted
};

// Completeness verdict, cheap to recompute at any time.
struct ReqTraceLint {
  uint64_t completed = 0;
  uint64_t fully_parented = 0;
  uint64_t orphaned_handoffs = 0;
  uint64_t abandoned = 0;
  uint64_t open = 0;          // still-live requests at lint time
  uint64_t dropped_nodes = 0; // leaves discarded by the per-request cap

  double parented_fraction() const {
    return completed == 0 ? 1.0
                          : static_cast<double>(fully_parented) / static_cast<double>(completed);
  }
  bool clean() const {
    return orphaned_handoffs == 0 && completed == fully_parented && dropped_nodes == 0;
  }
};

// Which side of a ring a stashed slot id belongs to.
enum class RingSide : uint8_t { kRequest = 0, kResponse = 1 };

class RequestTrace {
 public:
  RequestTrace();

  // Arms the tracer; clears previously recorded requests. Interned names
  // survive (instrumentation sites cache ids at construction time).
  void Enable(const ReqTraceConfig& config);
  // Stops recording; already-captured data stays readable for export.
  void Disable();
  bool enabled() const { return enabled_; }

  void SetTimeSource(std::function<uint64_t()> now) { now_ = std::move(now); }

  // Interns a node name. Id 0 is reserved (the empty name), so call sites
  // can use 0 as a "not yet interned" sentinel.
  uint32_t InternName(std::string_view name);
  const std::string& Name(uint32_t id) const { return names_.at(id); }

  // --- Request lifecycle ------------------------------------------------------

  // Mints a new request rooted at `name` in `domain`, starting now. Returns
  // an invalid ref while disabled.
  ReqTraceRef BeginRequest(uint32_t name, DomainId domain);
  // Completes the request: closes open nodes, computes the critical path
  // and breakdown, feeds the histograms, and retains it if slow enough.
  void EndRequest(ReqTraceRef ref);
  // Drops a request that will never complete (packet lost on a crashed
  // backend). Not a lint failure.
  void AbandonRequest(ReqTraceRef ref);

  // --- Ambient request context ------------------------------------------------
  //
  // The currently-executing request, used by instrumentation that has no
  // explicit ref in hand (the ledger sink, ChargeCopy). The machine's event
  // loop clears it around every event callback so causality never leaks
  // across scheduling boundaries; ReqOriginScope / ReqAdoptScope set it.

  ReqTraceRef current() const { return current_; }
  ReqTraceRef SwapCurrent(ReqTraceRef ref) {
    const ReqTraceRef prev = current_;
    current_ = ref;
    return prev;
  }

  // --- Leaves -----------------------------------------------------------------

  // Attaches a closed interval under the ambient request; no-op without one.
  ReqTraceRef AddLeaf(uint32_t name, ReqNodeKind kind, DomainId domain, uint64_t t0,
                      uint64_t t1);
  // Same, under an explicit parent.
  ReqTraceRef AddLeafTo(ReqTraceRef parent, uint32_t name, ReqNodeKind kind, DomainId domain,
                        uint64_t t0, uint64_t t1);
  // Attaches the same interval to every (distinct, valid) request in
  // `refs` — a multicall flush serves a whole batch at once.
  void AttachSharedSpan(const std::vector<ReqTraceRef>& refs, uint32_t name, ReqNodeKind kind,
                        DomainId domain, uint64_t t0, uint64_t t1);
  // Convenience leaves for the machine's own hooks.
  void CopyLeaf(DomainId domain, uint64_t t0, uint64_t t1, uint64_t bytes);
  void ShootdownLeaf(DomainId domain, uint64_t t0, uint64_t t1);

  // --- Ring shadow side-table -------------------------------------------------
  //
  // Rings carry slot payloads, not trace ids; the id rides in a shadow
  // side-table keyed by (ring, side, absolute index) — the same trick the
  // E20 race detector uses for its happens-before slot clocks. Every push
  // while enabled stashes (an invalid ambient stashes the "no request"
  // id), so the stashed window is dense and a missing entry inside it is a
  // dropped propagation point, not pre-arming traffic.

  // Stashes the ambient request for the slot pushed at `index`.
  void RingStash(uint64_t ring, RingSide side, uint64_t index);
  // Stashes an explicit ref (batched pushes carry per-slot refs).
  void RingStashRef(uint64_t ring, RingSide side, uint64_t index, ReqTraceRef ref);
  // Consumes the stash for the slot popped at `index`: appends a queue node
  // ("spent [stash, now] waiting in the ring") to the stashed request and
  // returns it. Returns an invalid ref (and counts an orphan if the slot is
  // inside the stashed window) when no id was stashed.
  ReqTraceRef RingConsume(uint64_t ring, RingSide side, uint64_t index, DomainId domain);
  // The ring died (E19 backend crash tears the channel down): outstanding
  // stashes are benign, not orphans — un-counts them and drops the table.
  void RingDropped(uint64_t ring);

  // --- Event-channel latch ----------------------------------------------------
  //
  // One stash per (domain, port): a Send latches the sender's request until
  // the upcall delivers. A coalesced Send (pending was already set) keeps
  // the existing stash — the first sender owns the edge.

  void ChannelStash(DomainId target, uint32_t port, bool coalesced);
  // Consumes the stash at upcall delivery: appends a "evtchn.upcall"
  // crossing node [send, now] to the sender's request and returns it.
  ReqTraceRef ChannelAdopt(DomainId target, uint32_t port, DomainId domain);

  // --- Recovery support -------------------------------------------------------

  // A crash severed this request's in-flight handoffs; the journal will
  // replay it. Clears its outstanding-handoff debt so the replayed request
  // still lints as fully parented.
  void ForgiveHandoffs(ReqTraceRef ref);

  // --- Ledger sink ------------------------------------------------------------

  // CrossingLedger trace-sink: attaches every crossing charged while a
  // request is ambient as a kCrossing leaf [time - cycles, time].
  void OnCrossing(const CrossingEvent& event, const CrossingLedger& ledger);

  // --- Results ----------------------------------------------------------------

  const LogHistogram& e2e() const { return e2e_; }
  const LogHistogram& critpath(ReqNodeKind kind) const {
    return critpath_.at(static_cast<size_t>(kind));
  }
  // Name-sorted walk over req.e2e + non-empty req.critpath.* — export order.
  void ForEachHistogram(
      const std::function<void(const std::string&, const LogHistogram&)>& fn) const;

  // The K slowest completed requests, slowest first (ties broken by id).
  const std::vector<CompletedRequest>& slowest() const { return slowest_; }

  ReqTraceLint Lint() const;

  // Human-readable report of the retained slowest requests: e2e, breakdown,
  // and the named critical-path segments. Deterministic; the E22 bench gate
  // greps it for recovery phases and the post-mortem bundle embeds it.
  std::string SlowestReport() const;

  uint64_t requests_started() const { return started_; }
  uint64_t requests_completed() const { return completed_; }
  uint64_t requests_abandoned() const { return abandoned_; }
  uint64_t orphaned_handoffs() const { return orphaned_handoffs_; }

  // --- Mutation hooks (trace-completeness self-tests) -------------------------

  // Drops the next ring-slot stash: the consumer then finds a hole inside
  // the stashed window and flags an orphaned handoff.
  void TestDropNextRingStash() { drop_next_ring_stash_ = true; }
  // Drops the next upcall adoption: the sender's request then completes
  // with an unadopted handoff and lints as unparented.
  void TestDropNextChannelAdopt() { drop_next_channel_adopt_ = true; }

 private:
  struct LiveRequest {
    std::vector<ReqNode> nodes;
    uint32_t pending_handoffs = 0;  // stashed but not yet adopted
    uint64_t dropped_nodes = 0;
    bool damaged = false;  // a handoff provably went missing
  };

  struct Stash {
    uint32_t trace = 0;
    uint32_t node = 0;
    uint64_t t0 = 0;
  };

  struct RingTable {
    // Absolute index of the first slot stashed after arming; consumes below
    // it predate the tracer and are benign.
    std::array<uint64_t, 2> first{{kReqOpen, kReqOpen}};
    std::unordered_map<uint64_t, Stash> slots[2];
  };

  uint64_t Now() const { return now_ ? now_() : 0; }
  LiveRequest* Find(ReqTraceRef ref);
  uint32_t Append(LiveRequest& req, ReqNode node);
  void UnstashLive(const Stash& stash);
  void Finish(uint32_t id, LiveRequest&& req, uint64_t end);

  bool enabled_ = false;
  ReqTraceConfig config_;
  std::function<uint64_t()> now_;

  std::vector<std::string> names_;
  std::unordered_map<std::string, uint32_t> name_ids_;

  uint32_t next_trace_id_ = 1;
  std::unordered_map<uint32_t, LiveRequest> live_;
  ReqTraceRef current_;

  std::unordered_map<uint64_t, RingTable> rings_;
  std::unordered_map<uint64_t, Stash> channels_;       // (dom << 32) | port
  std::unordered_set<uint64_t> channels_seen_;

  LogHistogram e2e_;
  std::array<LogHistogram, kReqNodeKindCount> critpath_;
  std::vector<CompletedRequest> slowest_;

  uint64_t started_ = 0;
  uint64_t completed_ = 0;
  uint64_t fully_parented_ = 0;
  uint64_t abandoned_ = 0;
  uint64_t orphaned_handoffs_ = 0;
  uint64_t dropped_nodes_ = 0;

  bool drop_next_ring_stash_ = false;
  bool drop_next_channel_adopt_ = false;

  // Cached interned names for the built-in leaves.
  uint32_t name_ring_wait_ = 0;
  uint32_t name_upcall_ = 0;
  uint32_t name_copy_ = 0;
  uint32_t name_shootdown_ = 0;
  // Per-ledger-mechanism name cache ("xing.<mechanism>"), indexed by
  // mechanism id; 0 = not yet cached.
  std::vector<uint32_t> mech_name_ids_;
};

// RAII origin: mints a request, makes it ambient for the scope, and
// restores the previous ambient at exit. The request itself stays live —
// completion is a separate, possibly far-away EndRequest.
class ReqOriginScope {
 public:
  ReqOriginScope(RequestTrace& rt, uint32_t name, DomainId domain) : rt_(rt) {
    ref_ = rt_.BeginRequest(name, domain);
    prev_ = rt_.SwapCurrent(ref_);
  }
  ~ReqOriginScope() { rt_.SwapCurrent(prev_); }
  ReqOriginScope(const ReqOriginScope&) = delete;
  ReqOriginScope& operator=(const ReqOriginScope&) = delete;

  ReqTraceRef ref() const { return ref_; }

 private:
  RequestTrace& rt_;
  ReqTraceRef ref_;
  ReqTraceRef prev_;
};

// RAII adoption: makes an already-minted request (from a ring or channel
// stash) ambient for the scope. An invalid ref clears the ambient — work on
// an untraced request must not attach to whoever ran last.
class ReqAdoptScope {
 public:
  ReqAdoptScope(RequestTrace& rt, ReqTraceRef ref) : rt_(rt), prev_(rt.SwapCurrent(ref)) {}
  ~ReqAdoptScope() { rt_.SwapCurrent(prev_); }
  ReqAdoptScope(const ReqAdoptScope&) = delete;
  ReqAdoptScope& operator=(const ReqAdoptScope&) = delete;

 private:
  RequestTrace& rt_;
  ReqTraceRef prev_;
};

}  // namespace ukvm

#endif  // UKVM_SRC_CORE_REQTRACE_H_
