// Minimal leveled logging. Experiments run millions of simulated operations,
// so logging must be cheap when disabled: the macro checks the level before
// evaluating any arguments.

#ifndef UKVM_SRC_CORE_LOG_H_
#define UKVM_SRC_CORE_LOG_H_

#include <cstdarg>
#include <cstdio>

namespace ukvm {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

// Global log threshold; messages below it are discarded.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

// printf-style sink; prepends the level tag. Not for hot paths.
void LogMessage(LogLevel level, const char* format, ...) __attribute__((format(printf, 2, 3)));

}  // namespace ukvm

#define UKVM_LOG(level, ...)                              \
  do {                                                    \
    if ((level) >= ::ukvm::GetLogLevel()) {               \
      ::ukvm::LogMessage((level), __VA_ARGS__);           \
    }                                                     \
  } while (0)

#define UKVM_TRACE(...) UKVM_LOG(::ukvm::LogLevel::kTrace, __VA_ARGS__)
#define UKVM_DEBUG(...) UKVM_LOG(::ukvm::LogLevel::kDebug, __VA_ARGS__)
#define UKVM_INFO(...) UKVM_LOG(::ukvm::LogLevel::kInfo, __VA_ARGS__)
#define UKVM_WARN(...) UKVM_LOG(::ukvm::LogLevel::kWarn, __VA_ARGS__)
#define UKVM_ERROR(...) UKVM_LOG(::ukvm::LogLevel::kError, __VA_ARGS__)

#endif  // UKVM_SRC_CORE_LOG_H_
