#include "src/core/error.h"

namespace ukvm {

const char* ErrName(Err err) {
  switch (err) {
    case Err::kNone:
      return "OK";
    case Err::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case Err::kNotFound:
      return "NOT_FOUND";
    case Err::kNoMemory:
      return "NO_MEMORY";
    case Err::kPermissionDenied:
      return "PERMISSION_DENIED";
    case Err::kWouldBlock:
      return "WOULD_BLOCK";
    case Err::kTimedOut:
      return "TIMED_OUT";
    case Err::kBusy:
      return "BUSY";
    case Err::kAborted:
      return "ABORTED";
    case Err::kBadHandle:
      return "BAD_HANDLE";
    case Err::kOutOfRange:
      return "OUT_OF_RANGE";
    case Err::kAlreadyExists:
      return "ALREADY_EXISTS";
    case Err::kNotSupported:
      return "NOT_SUPPORTED";
    case Err::kFault:
      return "FAULT";
    case Err::kDead:
      return "DEAD";
    case Err::kQuotaExceeded:
      return "QUOTA_EXCEEDED";
    case Err::kRetryExhausted:
      return "RETRY_EXHAUSTED";
    case Err::kCorrupted:
      return "CORRUPTED";
  }
  return "UNKNOWN";
}

}  // namespace ukvm
