// Per-domain CPU accounting and named event counters.
//
// Experiment E3 reproduces Cherkasova & Gardner's finding that Dom0's CPU
// time dominates a Xen system under I/O load and is proportional to the
// number of page-flipping operations. That requires attributing every
// simulated cycle to the protection domain that consumed it, which is what
// `CpuAccounting` does; `Counters` tracks discrete events (page flips, TLB
// flushes, interrupts) by name.

#ifndef UKVM_SRC_CORE_METRICS_H_
#define UKVM_SRC_CORE_METRICS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/ids.h"

namespace ukvm {

// Observes every CpuAccounting::Charge. The cycle-attribution profiler
// (src/core/trace.h) implements this to tag charges with the active
// attribution path; the accounting itself never depends on the observer.
class ChargeObserver {
 public:
  virtual ~ChargeObserver() = default;
  virtual void OnCharge(DomainId domain, uint64_t cycles) = 0;
};

// Attributes simulated cycles to protection domains.
class CpuAccounting {
 public:
  void Charge(DomainId domain, uint64_t cycles);

  // Installs (or, with nullptr, removes) a per-charge observer. Observation
  // is side-effect-free for the accounting: totals are identical with or
  // without one installed.
  void SetObserver(ChargeObserver* observer) { observer_ = observer; }

  uint64_t CyclesOf(DomainId domain) const;
  uint64_t total_cycles() const { return total_; }

  // Fraction of all accounted cycles consumed by `domain`; 0 if none.
  double ShareOf(DomainId domain) const;

  // All (domain, cycles) pairs, sorted by descending cycles.
  std::vector<std::pair<DomainId, uint64_t>> ByDomain() const;

  void Reset();

 private:
  std::unordered_map<DomainId, uint64_t> cycles_;
  uint64_t total_ = 0;
  ChargeObserver* observer_ = nullptr;
};

// Named monotonic counters with cheap hot-path increments via interned ids.
class Counters {
 public:
  uint32_t Intern(std::string_view name);

  void Add(uint32_t id, uint64_t delta = 1);

  // Convenience slow path for cold code.
  void AddNamed(std::string_view name, uint64_t delta = 1);

  uint64_t Get(std::string_view name) const;
  std::vector<std::pair<std::string, uint64_t>> All() const;
  void Reset();

 private:
  std::vector<std::string> names_;
  std::vector<uint64_t> values_;
  std::unordered_map<std::string, uint32_t> by_name_;
};

}  // namespace ukvm

#endif  // UKVM_SRC_CORE_METRICS_H_
