// Log-bucketed latency histograms (HDR-style).
//
// E17 needs latency *distributions* — per-mechanism crossing latency and
// end-to-end request latency in the split drivers — not just totals. The
// bucketing scheme follows HdrHistogram: each power-of-two octave is split
// into a fixed number of linear sub-buckets, so relative error is bounded
// (< 1/16 here) across the whole range while the bucket count stays small
// and Record() is a handful of integer ops. No floats anywhere on the hot
// path, so recording is deterministic and replayable.

#ifndef UKVM_SRC_CORE_HISTOGRAM_H_
#define UKVM_SRC_CORE_HISTOGRAM_H_

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace ukvm {

// Percentile summary of one histogram, for tables and JSON export.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  uint64_t sum = 0;
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p99 = 0;
};

class LogHistogram {
 public:
  // 16 linear sub-buckets per octave: values < 16 land in exact unit
  // buckets, larger values have bounded ~6% relative error.
  static constexpr uint32_t kSubBucketBits = 4;
  static constexpr uint32_t kSubBucketCount = 1u << kSubBucketBits;
  // Enough octaves to cover the full uint64 range: the top octave's shift
  // is 63 - 4 = 59, so the largest index is 59 * 16 + 31.
  static constexpr size_t kBucketCount = 59 * kSubBucketCount + kSubBucketCount * 2;

  // Maps a value to its bucket index. Pure integer math, branch-light.
  static uint32_t BucketIndex(uint64_t value) {
    const uint32_t msb = static_cast<uint32_t>(std::bit_width(value | 1)) - 1;
    if (msb < kSubBucketBits) {
      return static_cast<uint32_t>(value);  // exact unit buckets below 16
    }
    const uint32_t shift = msb - kSubBucketBits;
    const auto sub = static_cast<uint32_t>(value >> shift);  // in [16, 32)
    return shift * kSubBucketCount + sub;
  }

  // Largest value that maps into bucket `index` (inclusive upper bound).
  static uint64_t BucketUpperBound(uint32_t index) {
    if (index < kSubBucketCount * 2) {
      return index;  // unit buckets
    }
    const uint32_t shift = index / kSubBucketCount - 1;
    const uint32_t sub = index % kSubBucketCount + kSubBucketCount;
    return ((uint64_t{sub} + 1) << shift) - 1;
  }

  void Record(uint64_t value) {
    ++counts_[BucketIndex(value)];
    ++count_;
    sum_ += value;
    if (count_ == 1 || value < min_) {
      min_ = value;
    }
    if (value > max_) {
      max_ = value;
    }
  }

  uint64_t count() const { return count_; }
  uint64_t min() const { return min_; }
  uint64_t max() const { return max_; }
  uint64_t sum() const { return sum_; }

  // Value at permille `p` in [0, 1000]: the bucket upper bound at which the
  // cumulative count first reaches ceil(count * p / 1000), clamped to the
  // exact observed max so p1000 == max().
  uint64_t ValueAtPermille(uint32_t p) const;

  HistogramSnapshot Snapshot() const;

  void Reset();

 private:
  std::array<uint64_t, kBucketCount> counts_{};
  uint64_t count_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
  uint64_t sum_ = 0;
};

}  // namespace ukvm

#endif  // UKVM_SRC_CORE_HISTOGRAM_H_
