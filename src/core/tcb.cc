#include "src/core/tcb.h"

#include <fstream>
#include <string>

#ifndef UKVM_SOURCE_DIR
#define UKVM_SOURCE_DIR "."
#endif

namespace ukvm {

const char* TrustClassName(TrustClass trust) {
  switch (trust) {
    case TrustClass::kPrivileged:
      return "privileged";
    case TrustClass::kCriticalPath:
      return "critical-path";
    case TrustClass::kIsolated:
      return "isolated";
  }
  return "?";
}

const char* RepoSourceDir() { return UKVM_SOURCE_DIR; }

uint64_t CountSourceLines(const std::string& repo_relative_path) {
  std::ifstream in(std::string(UKVM_SOURCE_DIR) + "/" + repo_relative_path);
  if (!in) {
    return 0;
  }
  uint64_t lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    // Count non-blank lines only; comments count, they must be maintained too.
    if (line.find_first_not_of(" \t\r") != std::string::npos) {
      ++lines;
    }
  }
  return lines;
}

TcbReport BuildTcbReport(const std::string& configuration,
                         const std::vector<TcbComponent>& components) {
  TcbReport report;
  report.configuration = configuration;
  for (const TcbComponent& component : components) {
    TcbRow row;
    row.component = component.name;
    row.trust = component.trust;
    for (const std::string& file : component.source_files) {
      row.lines += CountSourceLines(file);
    }
    report.total_lines += row.lines;
    if (component.trust == TrustClass::kPrivileged) {
      report.privileged_lines += row.lines;
      report.critical_lines += row.lines;
    } else if (component.trust == TrustClass::kCriticalPath) {
      report.critical_lines += row.lines;
    }
    report.rows.push_back(std::move(row));
  }
  return report;
}

}  // namespace ukvm
