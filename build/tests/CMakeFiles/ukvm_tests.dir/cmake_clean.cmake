file(REMOVE_RECURSE
  "CMakeFiles/ukvm_tests.dir/test_core.cc.o"
  "CMakeFiles/ukvm_tests.dir/test_core.cc.o.d"
  "CMakeFiles/ukvm_tests.dir/test_devices.cc.o"
  "CMakeFiles/ukvm_tests.dir/test_devices.cc.o.d"
  "CMakeFiles/ukvm_tests.dir/test_harness.cc.o"
  "CMakeFiles/ukvm_tests.dir/test_harness.cc.o.d"
  "CMakeFiles/ukvm_tests.dir/test_machine.cc.o"
  "CMakeFiles/ukvm_tests.dir/test_machine.cc.o.d"
  "CMakeFiles/ukvm_tests.dir/test_mapdb.cc.o"
  "CMakeFiles/ukvm_tests.dir/test_mapdb.cc.o.d"
  "CMakeFiles/ukvm_tests.dir/test_memory_paging.cc.o"
  "CMakeFiles/ukvm_tests.dir/test_memory_paging.cc.o.d"
  "CMakeFiles/ukvm_tests.dir/test_misc.cc.o"
  "CMakeFiles/ukvm_tests.dir/test_misc.cc.o.d"
  "CMakeFiles/ukvm_tests.dir/test_os.cc.o"
  "CMakeFiles/ukvm_tests.dir/test_os.cc.o.d"
  "CMakeFiles/ukvm_tests.dir/test_props.cc.o"
  "CMakeFiles/ukvm_tests.dir/test_props.cc.o.d"
  "CMakeFiles/ukvm_tests.dir/test_splitdrv.cc.o"
  "CMakeFiles/ukvm_tests.dir/test_splitdrv.cc.o.d"
  "CMakeFiles/ukvm_tests.dir/test_stacks.cc.o"
  "CMakeFiles/ukvm_tests.dir/test_stacks.cc.o.d"
  "CMakeFiles/ukvm_tests.dir/test_ukernel.cc.o"
  "CMakeFiles/ukvm_tests.dir/test_ukernel.cc.o.d"
  "CMakeFiles/ukvm_tests.dir/test_vmm.cc.o"
  "CMakeFiles/ukvm_tests.dir/test_vmm.cc.o.d"
  "ukvm_tests"
  "ukvm_tests.pdb"
  "ukvm_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ukvm_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
