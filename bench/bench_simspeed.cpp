// Simulator hot-path throughput (google-benchmark).
//
// Unlike the E1-E9 harnesses, which report *simulated* cycles, this binary
// measures how fast the simulator itself executes the hot operations on the
// host — useful when sizing bigger experiments (how many simulated packets
// or IPCs per host-second we can afford).

#include <benchmark/benchmark.h>

#include "src/hw/machine.h"
#include "src/stacks/native_stack.h"
#include "src/stacks/ukernel_stack.h"
#include "src/stacks/vmm_stack.h"

namespace {

void BM_MachineChargeOnly(benchmark::State& state) {
  hwsim::Machine machine(hwsim::MakeX86Platform(), 1 << 20);
  machine.cpu().SetDomain(ukvm::DomainId(1));
  for (auto _ : state) {
    machine.Charge(100);
  }
}
BENCHMARK(BM_MachineChargeOnly);

void BM_PageTableMapUnmap(benchmark::State& state) {
  hwsim::PageTable pt(12, 32);
  uint64_t va = 0;
  for (auto _ : state) {
    (void)pt.Map(va, 1, hwsim::PtePerms{true, true});
    (void)pt.Unmap(va);
    va = (va + 4096) & 0xFFFFFFF;
  }
}
BENCHMARK(BM_PageTableMapUnmap);

void BM_TlbLookup(benchmark::State& state) {
  hwsim::Tlb tlb(64);
  for (uint32_t i = 0; i < 64; ++i) {
    tlb.Insert(i, i, true, true);
  }
  uint64_t vpn = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tlb.Lookup(vpn));
    vpn = (vpn + 1) % 64;
  }
}
BENCHMARK(BM_TlbLookup);

void BM_UkernelNullIpc(benchmark::State& state) {
  hwsim::Machine machine(hwsim::MakeX86Platform(), 8 << 20);
  ukern::Kernel kernel(machine);
  auto server_task = kernel.CreateTask(ukvm::ThreadId::Invalid());
  auto server = kernel.CreateThread(*server_task, 128, [](ukvm::ThreadId, ukern::IpcMessage) {
    return ukern::IpcMessage{};
  });
  auto client_task = kernel.CreateTask(ukvm::ThreadId::Invalid());
  auto client = kernel.CreateThread(*client_task, 128, nullptr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel.Call(*client, *server, ukern::IpcMessage::Short(1)));
  }
}
BENCHMARK(BM_UkernelNullIpc);

void BM_UkernelNullIpcFastpath(benchmark::State& state) {
  hwsim::Machine machine(hwsim::MakeX86Platform(), 8 << 20);
  ukern::Kernel kernel(machine);
  kernel.SetIpcFastpath(true);
  auto server_task = kernel.CreateTask(ukvm::ThreadId::Invalid());
  auto server = kernel.CreateThread(*server_task, 128, [](ukvm::ThreadId, ukern::IpcMessage) {
    return ukern::IpcMessage{};
  });
  auto client_task = kernel.CreateTask(ukvm::ThreadId::Invalid());
  auto client = kernel.CreateThread(*client_task, 128, nullptr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel.Call(*client, *server, ukern::IpcMessage::Short(1)));
  }
}
BENCHMARK(BM_UkernelNullIpcFastpath);

// One "seed" = boot a full microkernel stack, push a small syscall workload
// through it, tear it down — the unit the E18/E19 fuzz banks repeat. With
// items_per_second this reports wall-clock seeds/sec, which is what sizes
// how large a seed bank check.sh can afford.
void BM_LifecycleSeed(benchmark::State& state) {
  for (auto _ : state) {
    ustack::UkernelStack stack;
    auto pid = stack.guest_os(0).Spawn("seed");
    (void)stack.kernel().ActivateThread(stack.guest(0).app_thread);
    for (int i = 0; i < 16; ++i) {
      benchmark::DoNotOptimize(stack.guest_os(0).Null(*pid));
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("seeds");
}
BENCHMARK(BM_LifecycleSeed);

void BM_VmmHypercall(benchmark::State& state) {
  hwsim::Machine machine(hwsim::MakeX86Platform(), 8 << 20);
  uvmm::Hypervisor hv(machine);
  auto guest = hv.CreateDomain("g", 16, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hv.HcSchedYield(*guest));
  }
}
BENCHMARK(BM_VmmHypercall);

void BM_NativeNullSyscall(benchmark::State& state) {
  ustack::NativeStack stack;
  auto pid = stack.os().Spawn("bench");
  for (auto _ : state) {
    benchmark::DoNotOptimize(stack.os().Null(*pid));
  }
}
BENCHMARK(BM_NativeNullSyscall);

void BM_UkernelStackNullSyscall(benchmark::State& state) {
  ustack::UkernelStack stack;
  auto pid = stack.guest_os(0).Spawn("bench");
  (void)stack.kernel().ActivateThread(stack.guest(0).app_thread);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stack.guest_os(0).Null(*pid));
  }
}
BENCHMARK(BM_UkernelStackNullSyscall);

void BM_VmmStackNullSyscall(benchmark::State& state) {
  ustack::VmmStack stack;
  auto pid = stack.guest_os(0).Spawn("bench");
  for (auto _ : state) {
    benchmark::DoNotOptimize(stack.guest_os(0).Null(*pid));
  }
}
BENCHMARK(BM_VmmStackNullSyscall);

}  // namespace

BENCHMARK_MAIN();
