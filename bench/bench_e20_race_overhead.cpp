// E20: what happens-before race detection costs.
//
// The detector's contract mirrors the tracer's (E17): it observes the
// simulation without perturbing it. No RaceSink method charges simulated
// cycles, so a run with race detection on is cycle-for-cycle identical to
// the same run with it off — the first gate asserts sim delta == 0 on
// every row (the process exits nonzero otherwise, and scripts/check.sh
// gates on it). The real cost is host wall-clock, reported as a ratio.
//
// The second gate is the detector's verdict itself: every stock split-driver
// protocol here must run race-free (zero violations on every row). The
// mutation self-tests in tests/test_race.cc cover the other direction —
// that seeded protocol bugs do fire.

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "src/experiments/table.h"
#include "src/stacks/ukernel_stack.h"
#include "src/stacks/vmm_stack.h"
#include "src/workloads/netio.h"
#include "src/workloads/oswork.h"

namespace {

struct RunResult {
  uint64_t sim_cycles = 0;
  double host_ms = 0;
  uint64_t violations = 0;  // detector verdict (must be 0)
  uint64_t edges = 0;       // release + acquire operations observed
  uint64_t accesses = 0;    // shared slot/frame accesses checked
};

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

template <typename Stack>
void Harvest(Stack& stack, RunResult& r) {
  r.sim_cycles = stack.machine().Now();
  if (stack.auditor() != nullptr && stack.auditor()->race() != nullptr) {
    r.violations = stack.auditor()->violation_count();
    const ucheck::RaceDetector::Stats s = stack.auditor()->race()->stats();
    r.edges = s.releases + s.acquires;
    r.accesses = s.shared_accesses;
  }
}

RunResult RunVmmFlipReceive(bool race) {
  ustack::VmmStack::Config config;
  config.audit = false;
  config.race_detect = race;
  config.rx_mode = ustack::RxMode::kPageFlip;
  const auto t0 = std::chrono::steady_clock::now();
  ustack::VmmStack stack(config);
  uwork::WireHost wire(stack.machine(), stack.nic());
  stack.RouteWirePort(40, 0);
  auto& os = stack.guest_os(0);
  (void)stack.RunAsApp(0, [&] {
    auto pid = os.Spawn("bench");
    (void)os.NetBind(*pid, 40);
    wire.StartStream(40, 1024, 20 * hwsim::kCyclesPerUs, 64);
    uwork::RunUdpReceive(stack.machine(), os, *pid, 40, 64, 1'000'000'000ull);
  });
  stack.machine().RunUntilIdle();
  RunResult r;
  Harvest(stack, r);
  r.host_ms = MsSince(t0);
  return r;
}

RunResult RunVmmBlkTraffic(bool race) {
  ustack::VmmStack::Config config;
  config.audit = false;
  config.race_detect = race;
  const auto t0 = std::chrono::steady_clock::now();
  ustack::VmmStack stack(config);
  auto& front = *stack.guest(0).blkfront;
  std::vector<uint8_t> block(front.block_size(), 0x5A);
  std::vector<uint8_t> back(front.block_size(), 0);
  for (uint64_t lba = 0; lba < 32; ++lba) {
    (void)front.Write(lba, 1, block);
  }
  for (uint64_t lba = 0; lba < 32; ++lba) {
    (void)front.Read(lba, 1, back);
  }
  stack.machine().RunUntilIdle();
  RunResult r;
  Harvest(stack, r);
  r.host_ms = MsSince(t0);
  return r;
}

RunResult RunVmmBatchedCopyReceive(bool race) {
  ustack::VmmStack::Config config;
  config.audit = false;
  config.race_detect = race;
  config.rx_mode = ustack::RxMode::kGrantCopy;
  config.io_batch = 8;
  config.persistent_grants = true;
  const auto t0 = std::chrono::steady_clock::now();
  ustack::VmmStack stack(config);
  uwork::WireHost wire(stack.machine(), stack.nic());
  stack.RouteWirePort(41, 0);
  auto& os = stack.guest_os(0);
  (void)stack.RunAsApp(0, [&] {
    auto pid = os.Spawn("bench");
    (void)os.NetBind(*pid, 41);
    wire.StartStream(41, 1024, 20 * hwsim::kCyclesPerUs, 64);
    uwork::RunUdpReceive(stack.machine(), os, *pid, 41, 64, 1'000'000'000ull);
  });
  stack.machine().RunUntilIdle();
  RunResult r;
  Harvest(stack, r);
  r.host_ms = MsSince(t0);
  return r;
}

RunResult RunUkernelIpc(bool race) {
  ustack::UkernelStack::Config config;
  config.audit = false;
  config.race_detect = race;
  const auto t0 = std::chrono::steady_clock::now();
  ustack::UkernelStack stack(config);
  auto& os = stack.guest_os(0);
  (void)stack.RunAsApp(0, [&] {
    auto pid = os.Spawn("bench");
    uwork::RunNullSyscalls(stack.machine(), os, *pid, 2000);
  });
  stack.machine().RunUntilIdle();
  RunResult r;
  Harvest(stack, r);
  r.host_ms = MsSince(t0);
  return r;
}

}  // namespace

int main() {
  uharness::PrintHeading("E20",
                         "race-detection overhead: vector clocks + ring discipline");

  struct Shape {
    const char* name;
    std::function<RunResult(bool)> run;
  };
  const std::vector<Shape> shapes = {
      {"E9 flip receive (vmm, 64 pkts page-flip)", RunVmmFlipReceive},
      {"blk write/read (vmm, 32 blocks each way)", RunVmmBlkTraffic},
      {"E16 batched copy receive (vmm, batch 8)", RunVmmBatchedCopyReceive},
      {"E1 ipc-pingpong (ukernel, 2000 syscalls)", RunUkernelIpc},
  };

  // Deterministic counters and host wall-clock live in separate tables so
  // the former can join the bit-exact JSON comparison in scripts/check.sh
  // (host timing varies run to run and goes to BENCH_E20_HOST.json).
  uharness::Table table("race detection off vs on (deterministic)",
                        {"workload", "sim cycles (off)", "sim cycles (on)", "sim delta",
                         "hb edges", "accesses", "violations"});
  uharness::Table host_table("race detection host overhead",
                             {"workload", "host ms (off)", "host ms (on)",
                              "host overhead"});
  host_table.MarkHostTime();

  bool sim_clean = true;
  bool races_clean = true;
  for (const Shape& shape : shapes) {
    // Warm-up run to stabilise host timing (allocator, page cache).
    (void)shape.run(false);
    const RunResult off = shape.run(false);
    const RunResult on = shape.run(true);
    const int64_t delta =
        static_cast<int64_t>(on.sim_cycles) - static_cast<int64_t>(off.sim_cycles);
    if (delta != 0) {
      sim_clean = false;
    }
    if (on.violations != 0) {
      races_clean = false;
    }
    const double ratio = off.host_ms > 0 ? on.host_ms / off.host_ms : 0;
    char overhead[32];
    std::snprintf(overhead, sizeof overhead, "%.2fx", ratio);
    char delta_str[32];
    std::snprintf(delta_str, sizeof delta_str, "%lld", static_cast<long long>(delta));
    table.AddRow({shape.name, uharness::FmtInt(off.sim_cycles),
                  uharness::FmtInt(on.sim_cycles), delta_str, uharness::FmtInt(on.edges),
                  uharness::FmtInt(on.accesses), uharness::FmtInt(on.violations)});
    host_table.AddRow({shape.name, uharness::FmtDouble(off.host_ms, 1),
                       uharness::FmtDouble(on.host_ms, 1), overhead});
  }
  table.Print();
  host_table.Print();

  std::printf(
      "\nInvariant: detection must be invisible in simulated time (sim delta == 0 on\n"
      "every row — no RaceSink method charges cycles) — %s. Stock protocols must be\n"
      "race-free (violations == 0 on every row) — %s.\n",
      sim_clean ? "holds" : "VIOLATED", races_clean ? "holds" : "VIOLATED");
  uharness::WriteJsonIfRequested("E20");
  return sim_clean && races_clean ? 0 : 1;
}
