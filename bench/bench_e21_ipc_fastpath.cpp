// E21 — "IPC done right": the L4 fast path (gating bench).
//
// Paper §2: the microkernel rebuttal rests on Liedtke-style IPC fast
// paths. This bench measures the E21 fast path — fast trap entry/exit,
// register transfer at zero copy cost, direct process switch with
// time-slice donation, lazy scheduling, and a temporary-mapping window for
// string items — against the unchanged slow path, and *gates*:
//
//   1. >= 2x fewer cycles per 0-word ping-pong on at least two platforms
//      (classic Liedtke configuration: small spaces, where the trap cost
//      dominates — x86 segment remap and ARM FCSE PID relocation);
//   2. the E1 flat-x86 shape and the E11 syscall-redirection shape both
//      improve (fastpath-on strictly cheaper);
//   3. a fastpath-on stack run is auditor- and race-detector-clean with a
//      balanced crossing ledger.
//
// Exits non-zero if any gate fails.

#include <cstdio>
#include <memory>
#include <vector>

#include "src/experiments/table.h"
#include "src/hw/machine.h"
#include "src/stacks/ukernel_stack.h"
#include "src/ukernel/kernel.h"

namespace {

using ukvm::Err;
using ukvm::ThreadId;

constexpr int kRounds = 100;

// Two tasks, echo server, optional small spaces — the E1 harness shape.
struct PingPong {
  hwsim::Machine machine;
  std::unique_ptr<ukern::Kernel> kernel;
  ThreadId client;
  ThreadId server;
  static constexpr hwsim::Vaddr kClientWin = 0x100000;
  static constexpr hwsim::Vaddr kServerWin = 0x200000;

  PingPong(const hwsim::Platform& platform, bool small, bool fastpath)
      : machine(platform, 16 << 20) {
    kernel = std::make_unique<ukern::Kernel>(machine);
    kernel->SetIpcFastpath(fastpath);
    // This bench is the E21 historical record: pin the Call-only feature
    // set so its committed tables stay bit-identical. bench_e23_replywait
    // measures the full family against this baseline.
    kernel->SetFastpathFeatures(ukern::Kernel::FastpathFeatures::CallOnly());
    auto MakeSide = [&](hwsim::Vaddr window, ukern::IpcHandler handler) {
      auto task = kernel->CreateTask(ThreadId::Invalid());
      auto thread = kernel->CreateThread(*task, 128, std::move(handler));
      ukern::Task* t = kernel->FindTask(*task);
      for (int i = 0; i < 4; ++i) {
        auto frame = machine.memory().AllocFrame(*task);
        const hwsim::Vaddr va = window + static_cast<uint64_t>(i) * machine.memory().page_size();
        (void)t->space.Map(va, *frame, hwsim::PtePerms{true, true});
        kernel->mapdb().AddRoot(*task, t->space.VpnOf(va), *frame);
      }
      (void)kernel->SetRecvBuffer(*thread, window,
                                  4 * static_cast<uint32_t>(machine.memory().page_size()));
      return std::pair{*task, *thread};
    };
    auto [server_task, server_thread] = MakeSide(kServerWin, [](ThreadId, ukern::IpcMessage msg) {
      ukern::IpcMessage reply;
      reply.regs[0] = msg.regs[0];
      reply.reg_count = 1;
      if (msg.has_string) {
        reply.has_string = true;
        reply.string = ukern::StringItem{kServerWin, msg.string.len};
      }
      return reply;
    });
    auto [client_task, client_thread] = MakeSide(kClientWin, nullptr);
    server = server_thread;
    client = client_thread;
    if (small) {
      (void)kernel->SetSmallSpace(server_task, true);
      (void)kernel->SetSmallSpace(client_task, true);
    }
    (void)RoundTrip(0);  // settle contexts: steady-state switches from here on
  }

  uint64_t RoundTrip(uint32_t bytes) {
    ukern::IpcMessage msg = ukern::IpcMessage::Short(1);
    if (bytes > 0) {
      msg.has_string = true;
      msg.string = ukern::StringItem{kClientWin, bytes};
    }
    const uint64_t t0 = machine.Now();
    ukern::IpcMessage reply = kernel->Call(client, server, msg);
    if (reply.status != Err::kNone) {
      std::fprintf(stderr, "e21 round trip failed: %s\n", ukvm::ErrName(reply.status));
    }
    return machine.Now() - t0;
  }

  uint64_t Mean(uint32_t bytes) {
    uint64_t total = 0;
    for (int r = 0; r < kRounds; ++r) {
      total += RoundTrip(bytes);
    }
    return total / kRounds;
  }
};

uint64_t NullSyscallMean(bool fastpath) {
  ustack::UkernelStack::Config config;
  config.audit = false;  // hook-free baseline, as in the other benches
  config.ipc_fastpath = fastpath;
  config.fastpath_features = ukern::Kernel::FastpathFeatures::CallOnly();
  ustack::UkernelStack stack(config);
  auto pid = stack.guest_os(0).Spawn("bench");
  (void)stack.kernel().ActivateThread(stack.guest(0).app_thread);
  (void)stack.guest_os(0).Null(*pid);  // settle
  const uint64_t t0 = stack.machine().Now();
  for (int r = 0; r < kRounds; ++r) {
    (void)stack.guest_os(0).Null(*pid);
  }
  return (stack.machine().Now() - t0) / kRounds;
}

// Gate 3: a fastpath-on stack stays auditor- and race-detector-clean (the
// checkpoint sweeps the invariants, the crossing-ledger lint's balance
// check, and the race detector's findings).
bool FastpathRunIsClean() {
  ustack::UkernelStack::Config config;
  config.audit = true;
  config.race_detect = true;
  config.ipc_fastpath = true;
  ustack::UkernelStack stack(config);
  auto pid = stack.guest_os(0).Spawn("gate");
  (void)stack.kernel().ActivateThread(stack.guest(0).app_thread);
  // Delta over the syscall loop: boot traffic takes the fast path before the
  // auditor attaches, so a cumulative count would pass vacuously.
  const uint64_t taken_before = stack.kernel().fastpath_stats().taken;
  for (int r = 0; r < 32; ++r) {
    (void)stack.guest_os(0).Null(*pid);
  }
  stack.auditor()->Checkpoint("e21-fastpath");
  const uint64_t violations = stack.auditor()->violation_count();
  if (violations != 0) {
    std::fprintf(stderr, "e21: fastpath-on run has %llu checker violations\n",
                 static_cast<unsigned long long>(violations));
  }
  const auto& stats = stack.kernel().fastpath_stats();
  if (stats.taken <= taken_before) {
    std::fprintf(stderr, "e21: audited run never took the fast path\n");
    return false;
  }
  return violations == 0;
}

}  // namespace

int main() {
  uharness::PrintHeading("E21",
                         "L4 fast-path IPC: direct process switch, lazy scheduling, temp-map "
                         "window");

  struct Config {
    const char* label;
    hwsim::Platform platform;
    bool small;
    bool gated;  // participates in the >=2x two-platform gate
  };
  const std::vector<Config> configs = {
      {"x86 flat spaces", hwsim::MakeX86Platform(), false, false},
      {"x86 small spaces", hwsim::MakeX86Platform(), true, true},
      {"arm-v5 FCSE small spaces", hwsim::MakeArmPlatform(), true, true},
      {"mips-r4k tagged TLB", hwsim::MakeMipsPlatform(), false, false},
  };

  bool fail = false;

  uharness::Table pingpong("0-word ping-pong, cycles per round trip (mean of 100)",
                           {"configuration", "fastpath off", "fastpath on", "speedup"});
  int gated_over_2x = 0;
  uint64_t e1_off = 0;
  uint64_t e1_on = 0;
  for (const Config& config : configs) {
    PingPong off(config.platform, config.small, false);
    PingPong on(config.platform, config.small, true);
    const uint64_t off_mean = off.Mean(0);
    const uint64_t on_mean = on.Mean(0);
    const double ratio = static_cast<double>(off_mean) / static_cast<double>(on_mean);
    if (config.gated && ratio >= 2.0) {
      ++gated_over_2x;
    }
    if (!config.small && config.platform.name == "x86-32") {
      e1_off = off_mean;
      e1_on = on_mean;
    }
    const auto& stats = on.kernel->fastpath_stats();
    if (stats.taken == 0 || stats.fallback_not_ready + stats.fallback_map +
                                stats.fallback_string !=
                            0) {
      std::fprintf(stderr, "e21: %s: unexpected fallbacks on the 0-word path\n", config.label);
      fail = true;
    }
    pingpong.AddRow({config.label, uharness::FmtInt(off_mean), uharness::FmtInt(on_mean),
                     uharness::FmtDouble(ratio, 2) + "x"});
  }
  pingpong.Print();

  if (gated_over_2x < 2) {
    std::fprintf(stderr,
                 "e21 GATE FAILED: >=2x on %d platform(s); need at least two "
                 "(x86 small spaces + ARM FCSE)\n",
                 gated_over_2x);
    fail = true;
  }

  // E1 shape: the flat-x86 configuration every E1 row uses must improve
  // even though the full 550-cycle switch + flush still dominates.
  if (e1_on >= e1_off) {
    std::fprintf(stderr, "e21 GATE FAILED: flat-x86 (E1 shape) did not improve\n");
    fail = true;
  }

  // Temporary-mapping window: a single-page string replaces the walk-twice
  // gather/scatter with one PTE write and one charged copy.
  uharness::Table strings("256 B string ping-pong, cycles per round trip (mean of 100)",
                          {"configuration", "fastpath off", "fastpath on", "speedup"});
  {
    PingPong off(hwsim::MakeX86Platform(), false, false);
    PingPong on(hwsim::MakeX86Platform(), false, true);
    const uint64_t off_mean = off.Mean(256);
    const uint64_t on_mean = on.Mean(256);
    strings.AddRow({"x86 flat spaces", uharness::FmtInt(off_mean), uharness::FmtInt(on_mean),
                    uharness::FmtDouble(static_cast<double>(off_mean) /
                                            static_cast<double>(on_mean),
                                        2) +
                        "x"});
    if (on.kernel->fastpath_stats().string_windows == 0) {
      std::fprintf(stderr, "e21 GATE FAILED: string path never used the temp-map window\n");
      fail = true;
    }
    if (on_mean >= off_mean) {
      std::fprintf(stderr, "e21 GATE FAILED: string fast path did not improve\n");
      fail = true;
    }
  }
  strings.Print();

  // E11 shape: syscall redirection (app -> OS server Call) rides the fast
  // path with no changes to the port layer.
  uharness::Table syscalls("null syscall via redirection, cycles (mean of 100)",
                           {"configuration", "fastpath off", "fastpath on", "speedup"});
  {
    const uint64_t off_mean = NullSyscallMean(false);
    const uint64_t on_mean = NullSyscallMean(true);
    syscalls.AddRow({"uk-stack null syscall", uharness::FmtInt(off_mean),
                     uharness::FmtInt(on_mean),
                     uharness::FmtDouble(static_cast<double>(off_mean) /
                                             static_cast<double>(on_mean),
                                         2) +
                         "x"});
    if (on_mean >= off_mean) {
      std::fprintf(stderr, "e21 GATE FAILED: null-syscall redirection did not improve\n");
      fail = true;
    }
  }
  syscalls.Print();

  if (!FastpathRunIsClean()) {
    std::fprintf(stderr, "e21 GATE FAILED: fastpath-on run not checker-clean\n");
    fail = true;
  }

  std::printf(
      "\nShape check: with small spaces the trap sequence dominates the round trip, so\n"
      "the fast path's cheap entry/exit clears 2x on both remap mechanisms (x86\n"
      "segments, ARM FCSE); flat spaces keep the full switch + flush and improve less.\n"
      "The checker gate pins that the fast path emits balanced call/reply crossings.\n");

  uharness::WriteJsonIfRequested("E21");
  return fail ? 1 : 0;
}
