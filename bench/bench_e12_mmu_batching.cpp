// E12 — ablation: the paravirtual MMU tax and hypercall batching.
//
// Paper §2.2, primitive 5: "resource allocation within the VM (e.g., via
// hardware page-table virtualisation)". A paravirtual guest cannot write a
// PTE; it must ask the hypervisor, which validates every update. Xen's
// mitigation is batching: one mmu_update hypercall carries many updates.
// This bench maps N pages (a) natively, (b) one hypercall per update, and
// (c) in one batched hypercall, and reports the per-page cost.

#include <cstdio>
#include <vector>

#include "src/experiments/table.h"
#include "src/hw/machine.h"
#include "src/vmm/hypervisor.h"

int main() {
  uharness::PrintHeading("E12", "page-table update cost: native vs paravirtual (batched or not)");

  uharness::Table table("cycles per PTE update when mapping N pages",
                        {"N pages", "native pte write", "mmu_update (1/call)",
                         "mmu_update (batched)", "paravirt tax (batched)"});

  for (uint32_t n : {1u, 8u, 64u, 256u, 1024u}) {
    // (a) Native: the kernel writes PTEs directly.
    uint64_t native_cost = 0;
    {
      hwsim::Machine machine(hwsim::MakeX86Platform(), 16 << 20);
      hwsim::PageTable pt(12, 32);
      machine.cpu().SetDomain(ukvm::DomainId(1));
      const uint64_t t0 = machine.Now();
      for (uint32_t i = 0; i < n; ++i) {
        machine.Charge(machine.costs().pte_write);
        (void)pt.Map(uint64_t{i} * 4096, i, hwsim::PtePerms{true, true});
      }
      native_cost = (machine.Now() - t0) / n;
    }

    // (b) Paravirtual, one hypercall per update.
    uint64_t single_cost = 0;
    {
      hwsim::Machine machine(hwsim::MakeX86Platform(), 16 << 20);
      uvmm::Hypervisor hv(machine);
      auto guest = hv.CreateDomain("g", n + 8, false);
      const uint64_t t0 = machine.Now();
      for (uint32_t i = 0; i < n; ++i) {
        std::vector<uvmm::MmuUpdate> one = {{uint64_t{i} * 4096, i, true, true}};
        (void)hv.HcMmuUpdate(*guest, one);
      }
      single_cost = (machine.Now() - t0) / n;
    }

    // (c) Paravirtual, one batched hypercall.
    uint64_t batched_cost = 0;
    {
      hwsim::Machine machine(hwsim::MakeX86Platform(), 16 << 20);
      uvmm::Hypervisor hv(machine);
      auto guest = hv.CreateDomain("g", n + 8, false);
      std::vector<uvmm::MmuUpdate> batch;
      batch.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        batch.push_back({uint64_t{i} * 4096, i, true, true});
      }
      const uint64_t t0 = machine.Now();
      (void)hv.HcMmuUpdate(*guest, batch);
      batched_cost = (machine.Now() - t0) / n;
    }

    table.AddRow({uharness::FmtInt(n), uharness::FmtInt(native_cost),
                  uharness::FmtInt(single_cost), uharness::FmtInt(batched_cost),
                  uharness::FmtDouble(static_cast<double>(batched_cost) /
                                      static_cast<double>(native_cost)) +
                      "x"});
  }
  table.Print();

  std::printf(
      "\nShape check: unbatched paravirtual updates pay a full hypercall each and are\n"
      "~20-30x native; batching amortises the entry/exit to near the pure validation\n"
      "cost, converging to a constant per-page tax (validation never disappears —\n"
      "that is the price of keeping the guest out of ring 0).\n");
  return 0;
}
