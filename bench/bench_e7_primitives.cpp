// E7 — kernel primitive inventory (table).
//
// Paper §2.2: microkernel IPC serves three orthogonal roles through ONE
// primitive; "VMMs in comparison ... offer a rich variety of primitives.
// Each primitive requires a dedicated set of security mechanisms,
// resources, and kernel code." This bench enumerates both ABIs, measures
// one invocation of each mechanism, and counts the privileged lines
// implementing each subsystem.

#include <cstdio>

#include "src/core/tcb.h"
#include "src/experiments/table.h"
#include "src/hw/machine.h"
#include "src/ukernel/kernel.h"
#include "src/vmm/hypervisor.h"

namespace {

using ukvm::DomainId;
using ukvm::ThreadId;

uint64_t Lines(std::initializer_list<const char*> files) {
  uint64_t total = 0;
  for (const char* f : files) {
    total += ukvm::CountSourceLines(f);
  }
  return total;
}

}  // namespace

int main() {
  uharness::PrintHeading("E7", "kernel ABIs: one primitive vs a rich variety");

  // --- The microkernel ABI -----------------------------------------------------
  {
    hwsim::Machine machine(hwsim::MakeX86Platform(), 8 << 20);
    ukern::Kernel kernel(machine);

    // Minimal two-task world.
    auto MakeSide = [&](hwsim::Vaddr window, ukern::IpcHandler handler) {
      auto task = kernel.CreateTask(ThreadId::Invalid());
      auto thread = kernel.CreateThread(*task, 128, std::move(handler));
      ukern::Task* t = kernel.FindTask(*task);
      for (int i = 0; i < 4; ++i) {
        auto frame = machine.memory().AllocFrame(*task);
        const hwsim::Vaddr va = window + static_cast<uint64_t>(i) * machine.memory().page_size();
        (void)t->space.Map(va, *frame, hwsim::PtePerms{true, true});
        kernel.mapdb().AddRoot(*task, t->space.VpnOf(va), *frame);
      }
      (void)kernel.SetRecvBuffer(*thread, window, 4 * 4096);
      return *thread;
    };
    ThreadId server = MakeSide(0x10000, [](ThreadId, ukern::IpcMessage m) {
      ukern::IpcMessage r;
      if (m.has_string) {
        r.has_string = true;
        r.string = ukern::StringItem{0x10000, m.string.len};
      }
      return r;
    });
    ThreadId client = MakeSide(0x20000, nullptr);

    auto Measure = [&](auto op) {
      const uint64_t t0 = machine.Now();
      op();
      return machine.Now() - t0;
    };

    uharness::Table table(
        "microkernel: 6 syscalls, IPC is THE primitive (3 roles in one)",
        {"syscall / role", "mechanism", "cycles (one op)"});
    table.AddRow({"Ipc: control transfer", "call/reply (registers)",
                  uharness::FmtInt(Measure([&] {
                    (void)kernel.Call(client, server, ukern::IpcMessage::Short(1));
                  }))});
    table.AddRow({"Ipc: data transfer", "string item (1 KiB)", uharness::FmtInt(Measure([&] {
                    ukern::IpcMessage m = ukern::IpcMessage::Short(1);
                    m.has_string = true;
                    m.string = ukern::StringItem{0x20000, 1024};
                    (void)kernel.Call(client, server, m);
                  }))});
    table.AddRow({"Ipc: resource delegation", "map item (1 page)", uharness::FmtInt(Measure([&] {
                    ukern::IpcMessage m = ukern::IpcMessage::Short(1);
                    m.map_items.push_back(ukern::MapItem{0x20000, 0x90000, 1, true, false});
                    (void)kernel.Call(client, server, m);
                  }))});
    table.AddRow({"Unmap", "recursive revoke", uharness::FmtInt(Measure([&] {
                    (void)kernel.Unmap(*kernel.TaskOf(client), 0x20000, 1, false);
                  }))});
    table.AddRow({"ThreadControl", "create thread", uharness::FmtInt(Measure([&] {
                    (void)kernel.CreateThread(*kernel.TaskOf(client), 5, nullptr);
                  }))});
    table.AddRow({"TaskControl", "create task", uharness::FmtInt(Measure([&] {
                    (void)kernel.CreateTask(ThreadId::Invalid());
                  }))});
    table.AddRow({"IrqControl", "route irq to thread", uharness::FmtInt(Measure([&] {
                    (void)kernel.AssociateIrq(ukvm::IrqLine(3), server);
                  }))});
    table.AddRow({"(kernel total)",
                  "privileged LoC: " + uharness::FmtInt(Lines(
                      {"src/ukernel/kernel.cc", "src/ukernel/kernel.h", "src/ukernel/ipc.h",
                       "src/ukernel/mapdb.cc", "src/ukernel/mapdb.h", 
                       "src/ukernel/sched.h", "src/ukernel/task.h", "src/ukernel/thread.h"})),
                  ""});
    table.Print();
  }

  // --- The VMM ABI ---------------------------------------------------------------
  {
    hwsim::Machine machine(hwsim::MakeX86Platform(), 8 << 20);
    uvmm::Hypervisor hv(machine);
    DomainId dom0 = *hv.CreateDomain("Dom0", 64, true);
    DomainId guest = *hv.CreateDomain("DomU", 64, false);
    (void)hv.HcSetUpcall(dom0, [](uint32_t) {});
    (void)hv.HcSetUpcall(guest, [](uint32_t) {});

    auto Measure = [&](auto op) {
      const uint64_t t0 = machine.Now();
      op();
      return machine.Now() - t0;
    };

    uharness::Table table("VMM: 12 hypercalls, one mechanism per concern (paper §2.2 list)",
                          {"hypercall", "paper §2.2 primitive", "cycles (one op)"});
    table.AddRow({"set_trap_table", "#1/#2/#7 exception virtualisation",
                  uharness::FmtInt(Measure([&] {
                    (void)hv.HcSetTrapTable(guest, [](hwsim::TrapFrame&) { return 0ull; },
                                            nullptr, true);
                  }))});
    table.AddRow({"mmu_update", "#5 page-table virtualisation", uharness::FmtInt(Measure([&] {
                    std::vector<uvmm::MmuUpdate> u = {{0x1000, 1, true, true}};
                    (void)hv.HcMmuUpdate(guest, u);
                  }))});
    table.AddRow({"set_segment", "#2 guest kernel/user switching", uharness::FmtInt(Measure([&] {
                    hwsim::SegmentDescriptor d;
                    d.limit = hv.config().hole_base;
                    (void)hv.HcSetSegment(guest, hwsim::SegmentReg::kFs, d);
                  }))});
    uint32_t unbound = 0;
    uint32_t bound = 0;
    table.AddRow({"event_channel_op (alloc+bind)", "#3 async channels",
                  uharness::FmtInt(Measure([&] {
                    unbound = *hv.HcEvtchnAllocUnbound(dom0, guest);
                    bound = *hv.HcEvtchnBind(guest, dom0, unbound);
                  }))});
    table.AddRow({"event_channel_op (send)", "#8 async event notification",
                  uharness::FmtInt(Measure([&] { (void)hv.HcEvtchnSend(guest, bound); }))});
    uint32_t gref = 0;
    table.AddRow({"grant_table_op (access+map)", "#6 resource re-allocation",
                  uharness::FmtInt(Measure([&] {
                    gref = *hv.HcGrantAccess(guest, dom0, 3, true);
                    (void)hv.HcGrantMap(dom0, guest, gref, 0xE0000000, true);
                  }))});
    table.AddRow({"grant_table_op (transfer)", "#6 page flipping", uharness::FmtInt(Measure([&] {
                    auto slot = hv.HcGrantTransferSlot(guest, dom0, 4);
                    (void)hv.HcGrantTransfer(dom0, 5, guest, *slot);
                  }))});
    table.AddRow({"physdev_op (bind irq)", "#9 virtualized interrupt controller",
                  uharness::FmtInt(Measure([&] {
                    auto port = hv.HcEvtchnAllocUnbound(dom0, dom0);
                    (void)hv.HcBindIrq(dom0, ukvm::IrqLine(4), *port);
                  }))});
    table.AddRow({"sched_op", "#4 resource allocation per VM",
                  uharness::FmtInt(Measure([&] { (void)hv.HcSchedYield(guest); }))});
    table.AddRow({"console_io", "#10 common devices", uharness::FmtInt(Measure([&] {
                    (void)hv.HcConsoleIo(guest, "x");
                  }))});
    table.AddRow({"vcpu_op (set upcall)", "#8 event delivery setup",
                  uharness::FmtInt(Measure([&] {
                    (void)hv.HcSetUpcall(guest, [](uint32_t) {});
                  }))});
    table.AddRow({"domctl (create+destroy domain)", "#4 per-VM allocation",
                  uharness::FmtInt(Measure([&] {
                    auto d = hv.CreateDomain("tmp", 8, false);
                    (void)hv.DestroyDomain(*d);
                  }))});
    table.AddRow({"(hypervisor total)",
                  "privileged LoC: " + uharness::FmtInt(Lines(
                      {"src/vmm/hypervisor.cc", "src/vmm/hypervisor.h", "src/vmm/domain.h",
                       "src/vmm/event_channel.cc", "src/vmm/event_channel.h",
                       "src/vmm/grant_table.cc", "src/vmm/grant_table.h", "src/vmm/pt_virt.cc",
                       "src/vmm/pt_virt.h", "src/vmm/exception_virt.cc",
                       "src/vmm/exception_virt.h", "src/vmm/sched.cc", "src/vmm/sched.h"})),
                  ""});
    table.Print();
  }

  std::printf(
      "\nShape check: %u microkernel syscalls (one of which — IPC — carries all three\n"
      "roles) against %u hypercalls, each with its own validation machinery and code,\n"
      "and a correspondingly larger privileged code base.\n",
      ukern::kSyscallCount, uvmm::kHypercallCount);
  return 0;
}
