// E13 — proportional-share scheduling of complete operating systems.
//
// Paper §3.2 concedes that "Xen schedules complete operating systems";
// §2.2 lists "resource allocation per VM via VMM hypercall interface" as
// primitive 4. This bench runs CPU-bound guests under the credit scheduler
// with different weights and shows (a) that CPU shares during the
// competitive phase track the weights, and (b) that heavier guests finish
// equal work earlier, while the scheduler stays work-conserving.

#include <array>
#include <cstdio>
#include <memory>

#include "src/experiments/table.h"
#include "src/hw/machine.h"
#include "src/vmm/hypervisor.h"

namespace {

struct RunResult {
  std::array<double, 3> shares_at_first_finish{};  // competitive-phase shares
  std::array<double, 3> finish_ms{};
};

RunResult RunWeighted(const std::array<uint32_t, 3>& weights, int steps_each) {
  hwsim::Machine machine(hwsim::MakeX86Platform(), 16 << 20);
  uvmm::Hypervisor hv(machine);
  std::vector<ukvm::DomainId> doms;
  for (int i = 0; i < 3; ++i) {
    doms.push_back(*hv.CreateDomain("guest" + std::to_string(i), 16, false));
    hv.sched().SetWeight(doms.back(), weights[static_cast<size_t>(i)]);
  }

  RunResult result;
  bool first_finish_seen = false;
  uvmm::CreditRunner runner(machine, hv.sched());
  for (int i = 0; i < 3; ++i) {
    auto remaining = std::make_shared<int>(steps_each);
    runner.Add(hv.FindDomain(doms[static_cast<size_t>(i)]), [&, i, remaining] {
      machine.Charge(20 * hwsim::kCyclesPerUs);  // one quantum of guest work
      const bool done = --*remaining <= 0;
      if (done) {
        result.finish_ms[static_cast<size_t>(i)] =
            static_cast<double>(machine.Now()) / (1000.0 * hwsim::kCyclesPerUs);
        if (!first_finish_seen) {
          first_finish_seen = true;
          // Sample shares while everyone was still competing.
          double total = 0;
          std::array<uint64_t, 3> consumed{};
          for (int j = 0; j < 3; ++j) {
            consumed[static_cast<size_t>(j)] = runner.ConsumedBy(doms[static_cast<size_t>(j)]);
            total += static_cast<double>(consumed[static_cast<size_t>(j)]);
          }
          for (int j = 0; j < 3; ++j) {
            result.shares_at_first_finish[static_cast<size_t>(j)] =
                static_cast<double>(consumed[static_cast<size_t>(j)]) / total;
          }
        }
      }
      return done;
    });
  }
  runner.Run();
  return result;
}

}  // namespace

int main() {
  uharness::PrintHeading("E13", "credit scheduler: CPU shares track per-VM weights");

  uharness::Table table("three guests, 40 ms CPU work each",
                        {"weights (A:B:C)", "shares while competing (A/B/C)",
                         "expected shares", "finish times ms (A/B/C)"});

  const std::vector<std::array<uint32_t, 3>> weight_sets = {
      {256, 256, 256}, {512, 256, 256}, {512, 256, 128}, {1024, 512, 256}};

  for (const auto& weights : weight_sets) {
    RunResult r = RunWeighted(weights, /*steps_each=*/2000);
    const double wsum = weights[0] + weights[1] + weights[2];
    auto triple = [](double a, double b, double c) {
      return uharness::FmtPercent(a) + " / " + uharness::FmtPercent(b) + " / " +
             uharness::FmtPercent(c);
    };
    table.AddRow({std::to_string(weights[0]) + ":" + std::to_string(weights[1]) + ":" +
                      std::to_string(weights[2]),
                  triple(r.shares_at_first_finish[0], r.shares_at_first_finish[1],
                         r.shares_at_first_finish[2]),
                  triple(weights[0] / wsum, weights[1] / wsum, weights[2] / wsum),
                  uharness::FmtDouble(r.finish_ms[0]) + " / " +
                      uharness::FmtDouble(r.finish_ms[1]) + " / " +
                      uharness::FmtDouble(r.finish_ms[2])});
  }
  table.Print();

  std::printf(
      "\nShape check: competitive-phase shares match the weight vector; heavier\n"
      "guests finish equal work earlier; after a guest finishes, the survivors\n"
      "absorb the slack (work-conserving). Primitive 4 of section 2.2, observable.\n");
  return 0;
}
