// E2 — system-call path comparison (table).
//
// Paper §3.2: "each guest-application exception and system call causes a
// trap into the VMM, which then invokes corresponding functionality in the
// guest OS. This is nothing but an IPC operation." Xen's trap-gate shortcut
// avoids the VMM — until glibc loads a full-range segment and the shortcut
// is revoked. This bench measures a null system call on every path.

#include <cstdio>

#include "src/experiments/table.h"
#include "src/stacks/native_stack.h"
#include "src/stacks/ukernel_stack.h"
#include "src/stacks/vmm_stack.h"

namespace {

constexpr int kWarmup = 16;
constexpr int kIters = 500;

template <typename Fn>
uint64_t MeasurePerOp(hwsim::Machine& machine, Fn op) {
  for (int i = 0; i < kWarmup; ++i) {
    op();
  }
  const uint64_t t0 = machine.Now();
  for (int i = 0; i < kIters; ++i) {
    op();
  }
  return (machine.Now() - t0) / kIters;
}

}  // namespace

int main() {
  uharness::PrintHeading("E2", "null system call latency by entry path");

  uharness::Table table("simulated cycles per null syscall",
                        {"path", "cycles", "VMM entries per syscall", "relative to native"});

  // 1. Native: one trap into the kernel.
  uint64_t native_cost = 0;
  {
    ustack::NativeStack stack;
    auto pid = stack.os().Spawn("bench");
    native_cost = MeasurePerOp(stack.machine(), [&] { (void)stack.os().Null(*pid); });
    table.AddRow({"native trap", uharness::FmtInt(native_cost), "0", "1.00x"});
  }

  auto rel = [&](uint64_t cycles) {
    return uharness::FmtDouble(static_cast<double>(cycles) / static_cast<double>(native_cost)) +
           "x";
  };

  // 2. VMM with the fast trap gate armed.
  {
    ustack::VmmStack stack;
    auto pid = stack.guest_os(0).Spawn("bench");
    uint64_t cost = 0;
    stack.RunAsApp(0, [&] {
      cost = MeasurePerOp(stack.machine(), [&] { (void)stack.guest_os(0).Null(*pid); });
    });
    table.AddRow({"vmm fast trap gate", uharness::FmtInt(cost), "0", rel(cost)});
  }

  // 3. VMM after glibc-style segments: the shortcut is revoked, every
  //    syscall reflects through the hypervisor (2 VMM entries).
  {
    ustack::VmmStack stack;
    (void)stack.guest_port(0).LoadGlibcStyleSegments();
    auto pid = stack.guest_os(0).Spawn("bench");
    uint64_t cost = 0;
    stack.RunAsApp(0, [&] {
      cost = MeasurePerOp(stack.machine(), [&] { (void)stack.guest_os(0).Null(*pid); });
    });
    table.AddRow({"vmm trap-and-reflect (glibc segments)", uharness::FmtInt(cost), "2",
                  rel(cost)});
  }

  // 4. VMM that never requested the shortcut (pure trap-and-reflect).
  {
    ustack::VmmStack::Config config;
    config.request_fast_syscall = false;
    ustack::VmmStack stack(config);
    auto pid = stack.guest_os(0).Spawn("bench");
    uint64_t cost = 0;
    stack.RunAsApp(0, [&] {
      cost = MeasurePerOp(stack.machine(), [&] { (void)stack.guest_os(0).Null(*pid); });
    });
    table.AddRow({"vmm trap-and-reflect (no shortcut)", uharness::FmtInt(cost), "2", rel(cost)});
  }

  // 5. Microkernel: syscall = IPC to the OS server (L4Linux-style).
  {
    ustack::UkernelStack stack;
    auto pid = stack.guest_os(0).Spawn("bench");
    uint64_t cost = 0;
    stack.RunAsApp(0, [&] {
      cost = MeasurePerOp(stack.machine(), [&] { (void)stack.guest_os(0).Null(*pid); });
    });
    table.AddRow({"ukernel IPC redirection (L4Linux)", uharness::FmtInt(cost), "0", rel(cost)});
  }

  table.Print();
  std::printf(
      "\nShape check: fast gate ~= native << trap-and-reflect; loading one glibc-style\n"
      "segment silently degrades the VMM to the reflected path (paper section 3.2).\n"
      "The microkernel's IPC syscall sits between native and reflected cost.\n");
  return 0;
}
