// E23 — completing the Liedtke fast-path family (gating bench).
//
// E21 built the fast path for Call only. This bench measures the rest of
// the family against that baseline and *gates*:
//
//   1. reply-wait coalescing: the server's handler return IS its
//      reply-and-wait syscall, so a register-only reply from a living
//      server skips the second kernel entry — >= 1.3x vs the E21
//      Call-only fast path on at least two platform shapes where the trap
//      sequence dominates (x86 flat same-task, ARM FCSE small spaces,
//      MIPS tagged TLB same-task);
//   2. register-only Send and Notify ride the fast stubs (strictly
//      cheaper than the slow path, with the fast counters moving);
//   3. the pager's fault IPC takes the fast stubs (strictly cheaper than
//      the Call-only configuration, which still reflects faults through
//      the full trap sequence);
//   4. the per-vCPU pinned string window amortises the temp-map PTE
//      write across a burst (exactly (N-1) * pte_write saved);
//   5. a full-family stack run stays auditor- and race-detector-clean
//      with a balanced crossing ledger and nonzero new-path counters.
//
// Exits non-zero if any gate fails. bench_e21_ipc_fastpath pins the
// Call-only feature set and remains the E21 historical record.

#include <cstdio>
#include <memory>
#include <vector>

#include "src/experiments/table.h"
#include "src/hw/machine.h"
#include "src/stacks/ukernel_stack.h"
#include "src/ukernel/kernel.h"

namespace {

using ukvm::Err;
using ukvm::ThreadId;
using Features = ukern::Kernel::FastpathFeatures;

constexpr hwsim::Vaddr kClientWin = 0x100000;
constexpr hwsim::Vaddr kServerWin = 0x200000;

enum class Mode { kSlow, kCallOnly, kFamily };

Features FeaturesOf(Mode mode) {
  return mode == Mode::kFamily ? Features{} : Features::CallOnly();
}

// The E21 PingPong harness, extended with a same-task shape: with client
// and server threads sharing one address space, every switch is free and
// the round trip is pure trap arithmetic — the cleanest view of what
// coalescing removes.
struct PingPong {
  hwsim::Machine machine;
  std::unique_ptr<ukern::Kernel> kernel;
  ukvm::DomainId client_task;
  ukvm::DomainId server_task;
  ThreadId client;
  ThreadId server;

  PingPong(const hwsim::Platform& platform, bool same_task, bool small, Mode mode)
      : machine(platform, 16 << 20) {
    kernel = std::make_unique<ukern::Kernel>(machine);
    kernel->SetIpcFastpath(mode != Mode::kSlow);
    kernel->SetFastpathFeatures(FeaturesOf(mode));
    auto echo = [](ThreadId, ukern::IpcMessage msg) {
      ukern::IpcMessage reply;
      reply.regs[0] = msg.regs[0];
      reply.reg_count = 1;
      return reply;
    };
    auto make_side = [&](ukvm::DomainId task, hwsim::Vaddr window, ukern::IpcHandler handler) {
      auto thread = kernel->CreateThread(task, 128, std::move(handler));
      ukern::Task* t = kernel->FindTask(task);
      for (int i = 0; i < 4; ++i) {
        auto frame = machine.memory().AllocFrame(task);
        const hwsim::Vaddr va = window + static_cast<uint64_t>(i) * machine.memory().page_size();
        (void)t->space.Map(va, *frame, hwsim::PtePerms{true, true});
        kernel->mapdb().AddRoot(task, t->space.VpnOf(va), *frame);
      }
      (void)kernel->SetRecvBuffer(*thread, window,
                                  4 * static_cast<uint32_t>(machine.memory().page_size()));
      return *thread;
    };
    server_task = *kernel->CreateTask(ThreadId::Invalid());
    client_task = same_task ? server_task : *kernel->CreateTask(ThreadId::Invalid());
    server = make_side(server_task, kServerWin, echo);
    client = make_side(client_task, kClientWin, nullptr);
    if (small) {
      (void)kernel->SetSmallSpace(server_task, true);
      if (client_task != server_task) {
        (void)kernel->SetSmallSpace(client_task, true);
      }
    }
    (void)RoundTrip(0);  // settle contexts: steady-state switches from here on
  }

  uint64_t RoundTrip(uint32_t bytes) {
    ukern::IpcMessage msg = ukern::IpcMessage::Short(1);
    if (bytes > 0) {
      msg.has_string = true;
      msg.string = ukern::StringItem{kClientWin, bytes};
    }
    const uint64_t t0 = machine.Now();
    ukern::IpcMessage reply = kernel->Call(client, server, msg);
    if (reply.status != Err::kNone) {
      std::fprintf(stderr, "e23 round trip failed: %s\n", ukvm::ErrName(reply.status));
    }
    return machine.Now() - t0;
  }
};

// The pager harness: faults at fresh pages, one frame mapped per fault.
struct Paged {
  hwsim::Machine machine;
  std::unique_ptr<ukern::Kernel> kernel;
  ukvm::DomainId pager_task;
  ThreadId thread;

  explicit Paged(Mode mode) : machine(hwsim::MakeX86Platform(), 16 << 20) {
    kernel = std::make_unique<ukern::Kernel>(machine);
    kernel->SetIpcFastpath(mode != Mode::kSlow);
    kernel->SetFastpathFeatures(FeaturesOf(mode));
    pager_task = *kernel->CreateTask(ThreadId::Invalid());
    auto pager = kernel->CreateThread(
        pager_task, 255, [this](ThreadId, ukern::IpcMessage msg) {
          const hwsim::Vaddr fault_va = msg.regs[1];
          auto frame = machine.memory().AllocFrame(pager_task);
          ukern::Task* t = kernel->FindTask(pager_task);
          const hwsim::Vaddr src = machine.memory().FrameBase(*frame);
          (void)t->space.Map(src, *frame, hwsim::PtePerms{true, true});
          kernel->mapdb().AddRoot(pager_task, t->space.VpnOf(src), *frame);
          ukern::IpcMessage reply;
          reply.map_items.push_back(ukern::MapItem{
              src, fault_va & ~(machine.memory().page_size() - 1), 1, true, false});
          return reply;
        });
    auto task = kernel->CreateTask(*pager);
    thread = *kernel->CreateThread(*task, 100, nullptr);
  }

  uint64_t FaultMean(int n) {
    const uint64_t page = machine.memory().page_size();
    const uint64_t t0 = machine.Now();
    for (int i = 0; i < n; ++i) {
      const hwsim::Vaddr va = 0x500000 + static_cast<uint64_t>(i) * page;
      if (kernel->TouchPage(thread, va, /*write=*/true) != Err::kNone) {
        std::fprintf(stderr, "e23: fault resolution failed\n");
      }
    }
    return (machine.Now() - t0) / static_cast<uint64_t>(n);
  }
};

// Gate 5: a full-family stack run stays checker-clean and actually
// exercises the new paths (delta over the syscall loop: boot traffic runs
// before the auditor attaches).
bool FamilyRunIsClean() {
  ustack::UkernelStack::Config config;
  config.audit = true;
  config.race_detect = true;
  config.ipc_fastpath = true;  // features default to the full E23 family
  ustack::UkernelStack stack(config);
  auto pid = stack.guest_os(0).Spawn("gate");
  (void)stack.kernel().ActivateThread(stack.guest(0).app_thread);
  const auto before = stack.kernel().fastpath_stats();
  for (int r = 0; r < 32; ++r) {
    (void)stack.guest_os(0).Null(*pid);
  }
  stack.auditor()->Checkpoint("e23-family");
  const uint64_t violations = stack.auditor()->violation_count();
  if (violations != 0) {
    std::fprintf(stderr, "e23: family run has %llu checker violations\n",
                 static_cast<unsigned long long>(violations));
  }
  const auto& stats = stack.kernel().fastpath_stats();
  if (stats.taken <= before.taken || stats.replywait_coalesced <= before.replywait_coalesced) {
    std::fprintf(stderr, "e23: audited run never coalesced a reply-wait\n");
    return false;
  }
  return violations == 0;
}

}  // namespace

int main() {
  uharness::PrintHeading("E23",
                         "Liedtke fast-path family: reply-wait coalescing, Send/Notify, "
                         "pager fault IPC, pinned string window");

  bool fail = false;

  // --- Gate 1: reply-wait coalescing vs the E21 Call-only baseline -----
  struct Shape {
    const char* label;
    hwsim::Platform platform;
    bool same_task;
    bool small;
    bool gated;  // participates in the >=1.3x two-shape gate
  };
  const std::vector<Shape> shapes = {
      {"x86 flat, same task", hwsim::MakeX86Platform(), true, false, true},
      {"arm-v5 FCSE small spaces", hwsim::MakeArmPlatform(), false, true, true},
      {"mips-r4k tagged TLB, same task", hwsim::MakeMipsPlatform(), true, false, true},
      {"x86 small spaces", hwsim::MakeX86Platform(), false, true, false},
  };
  uharness::Table coalesce("0-word round trip, cycles (slow / E21 Call-only / E23 family)",
                           {"configuration", "slow path", "call-only", "family", "speedup"});
  int gated_over = 0;
  for (const Shape& shape : shapes) {
    PingPong slow(shape.platform, shape.same_task, shape.small, Mode::kSlow);
    PingPong callonly(shape.platform, shape.same_task, shape.small, Mode::kCallOnly);
    PingPong family(shape.platform, shape.same_task, shape.small, Mode::kFamily);
    const uint64_t s = slow.RoundTrip(0);
    const uint64_t co = callonly.RoundTrip(0);
    const uint64_t fam = family.RoundTrip(0);
    const double ratio = static_cast<double>(co) / static_cast<double>(fam);
    if (shape.gated && ratio >= 1.3) {
      ++gated_over;
    }
    if (family.kernel->fastpath_stats().replywait_coalesced == 0 ||
        callonly.kernel->fastpath_stats().replywait_coalesced != 0) {
      std::fprintf(stderr, "e23: %s: coalesce counters off\n", shape.label);
      fail = true;
    }
    coalesce.AddRow({shape.label, uharness::FmtInt(s), uharness::FmtInt(co),
                     uharness::FmtInt(fam), uharness::FmtDouble(ratio, 2) + "x"});
  }
  coalesce.Print();
  if (gated_over < 2) {
    std::fprintf(stderr,
                 "e23 GATE FAILED: reply-wait >=1.3x vs call-only on %d shape(s); "
                 "need at least two\n",
                 gated_over);
    fail = true;
  }

  // --- Gate 2: one-way Send and Notify ride the fast stubs -------------
  uharness::Table oneway("one-way IPC, cycles (x86 flat, cross-task)",
                         {"operation", "fastpath off", "fastpath on", "speedup"});
  {
    PingPong off(hwsim::MakeX86Platform(), false, false, Mode::kSlow);
    PingPong on(hwsim::MakeX86Platform(), false, false, Mode::kFamily);
    uint64_t send_cycles[2];
    int i = 0;
    for (PingPong* w : {&off, &on}) {
      (void)w->kernel->SetThreadHandler(w->server,
                                        [](ThreadId, ukern::IpcMessage) {
                                          return ukern::IpcMessage{};
                                        });
      (void)w->kernel->Send(w->client, w->server, ukern::IpcMessage::Short(0));  // settle
      const uint64_t t0 = w->machine.Now();
      (void)w->kernel->Send(w->client, w->server, ukern::IpcMessage::Short(7));
      send_cycles[i++] = w->machine.Now() - t0;
    }
    oneway.AddRow({"register-only Send", uharness::FmtInt(send_cycles[0]),
                   uharness::FmtInt(send_cycles[1]),
                   uharness::FmtDouble(static_cast<double>(send_cycles[0]) /
                                           static_cast<double>(send_cycles[1]),
                                       2) +
                       "x"});
    if (send_cycles[1] >= send_cycles[0] || on.kernel->fastpath_stats().send_fast == 0) {
      std::fprintf(stderr, "e23 GATE FAILED: Send did not ride the fast stubs\n");
      fail = true;
    }

    uint64_t notify_cycles[2];
    i = 0;
    for (PingPong* w : {&off, &on}) {
      (void)w->kernel->SetNotifyHandler(w->server, [](uint64_t) {});
      const uint64_t t0 = w->machine.Now();
      (void)w->kernel->Notify(w->server, 0b1);
      notify_cycles[i++] = w->machine.Now() - t0;
    }
    oneway.AddRow({"Notify, waiting receiver", uharness::FmtInt(notify_cycles[0]),
                   uharness::FmtInt(notify_cycles[1]),
                   uharness::FmtDouble(static_cast<double>(notify_cycles[0]) /
                                           static_cast<double>(notify_cycles[1]),
                                       2) +
                       "x"});
    if (notify_cycles[1] >= notify_cycles[0] || on.kernel->fastpath_stats().notify_fast == 0) {
      std::fprintf(stderr, "e23 GATE FAILED: Notify did not ride the fast stubs\n");
      fail = true;
    }
  }
  oneway.Print();

  // --- Gate 3: the pager's fault IPC takes the fast stubs ---------------
  uharness::Table faults("page fault resolution via pager, cycles per fault (mean of 16)",
                         {"configuration", "call-only", "family", "saved"});
  {
    constexpr int kFaults = 16;
    Paged callonly(Mode::kCallOnly);
    Paged family(Mode::kFamily);
    const uint64_t co = callonly.FaultMean(kFaults);
    const uint64_t fam = family.FaultMean(kFaults);
    faults.AddRow({"x86 flat, map-item reply", uharness::FmtInt(co), uharness::FmtInt(fam),
                   uharness::FmtInt(co - fam)});
    if (fam >= co ||
        family.kernel->fastpath_stats().fault_fast != static_cast<uint64_t>(kFaults) ||
        callonly.kernel->fastpath_stats().fault_fast != 0) {
      std::fprintf(stderr, "e23 GATE FAILED: fault IPC did not ride the fast stubs\n");
      fail = true;
    }
  }
  faults.Print();

  // --- Gate 4: the pinned window amortises a same-page string burst -----
  uharness::Table burst("8 x 200 B same-page strings, total cycles (x86 flat, cross-task)",
                        {"configuration", "pin off", "pin on", "saved"});
  {
    constexpr int kBurst = 8;
    Features no_pin;  // full family minus the pin: isolates the window
    no_pin.pinned_window = false;
    PingPong unpinned(hwsim::MakeX86Platform(), false, false, Mode::kFamily);
    unpinned.kernel->SetFastpathFeatures(no_pin);
    PingPong pinned(hwsim::MakeX86Platform(), false, false, Mode::kFamily);
    uint64_t totals[2] = {0, 0};
    int i = 0;
    for (PingPong* w : {&unpinned, &pinned}) {
      for (int r = 0; r < kBurst; ++r) {
        totals[i] += w->RoundTrip(200);
      }
      ++i;
    }
    burst.AddRow({"x86 flat, 200 B echo", uharness::FmtInt(totals[0]),
                  uharness::FmtInt(totals[1]), uharness::FmtInt(totals[0] - totals[1])});
    const uint64_t expect_saved =
        (kBurst - 1) * pinned.machine.costs().pte_write;
    if (totals[0] - totals[1] != expect_saved ||
        pinned.kernel->fastpath_stats().window_pins != kBurst - 1) {
      std::fprintf(stderr,
                   "e23 GATE FAILED: pinned window saved %llu cycles over the burst; "
                   "expected exactly %llu ((N-1) * pte_write)\n",
                   static_cast<unsigned long long>(totals[0] - totals[1]),
                   static_cast<unsigned long long>(expect_saved));
      fail = true;
    }
  }
  burst.Print();

  // --- Gate 5: full-family stack run is checker-clean ------------------
  if (!FamilyRunIsClean()) {
    std::fprintf(stderr, "e23 GATE FAILED: family run not checker-clean\n");
    fail = true;
  }

  std::printf(
      "\nShape check: coalescing removes one fast entry + fast return per round trip,\n"
      "so it clears 1.3x wherever switches are free (same task, FCSE, tagged TLB) and\n"
      "helps least where segment reloads dominate (x86 small spaces, reported above).\n"
      "The fault path saves the trap-vs-stub delta per fault; the pinned window saves\n"
      "exactly one PTE write per burst member after the first.\n");

  uharness::WriteJsonIfRequested("E23");
  return fail ? 1 : 0;
}
