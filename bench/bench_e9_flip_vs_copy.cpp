// E9 — page flip vs copy: the crossover (figure).
//
// Cherkasova & Gardner's observation (cited in §3.2) that Dom0 CPU cost is
// "proportional to the number of page-flipping operations ... irrespective
// of the message size" holds because a flip's cost has no per-byte term.
// This bench moves N bytes from one domain to another by flipping and by
// grant-copying, sweeping N, and locates the crossover.

#include <cstdio>
#include <vector>

#include "src/experiments/table.h"
#include "src/hw/machine.h"
#include "src/vmm/hypervisor.h"

namespace {

using ukvm::DomainId;

struct Setup {
  hwsim::Machine machine{hwsim::MakeX86Platform(), 32 << 20};
  std::unique_ptr<uvmm::Hypervisor> hv;
  DomainId src, dst;

  Setup() {
    hv = std::make_unique<uvmm::Hypervisor>(machine);
    src = *hv->CreateDomain("src", 1024, true);
    dst = *hv->CreateDomain("dst", 1024, false);
  }
};

}  // namespace

int main() {
  uharness::PrintHeading("E9", "moving N bytes between domains: flip vs copy");

  Setup s;
  auto& hv = *s.hv;
  const auto page = static_cast<uint32_t>(s.machine.memory().page_size());

  uharness::Table table("cycles to move N bytes (one-way)",
                        {"bytes", "pages", "copy (per-pkt grants)", "copy (persistent grants)",
                         "page-flip", "cheapest"});

  // Persistent grants for the second copy variant: set up once, reused for
  // every transfer (the optimisation that later made copy the Xen default).
  std::vector<uint32_t> persistent_refs;
  for (uint32_t p = 0; p < 16; ++p) {
    persistent_refs.push_back(*hv.HcGrantAccess(s.dst, s.src, 600 + p, /*writable=*/true));
  }

  std::vector<uint32_t> sizes = {64, 256, 1024, 2048, 4096, 8192, 16384, 32768, 65536};
  for (uint32_t bytes : sizes) {
    const uint32_t pages = (bytes + page - 1) / page;

    // Copy, Xen-2.x style: grant + copy + end-grant per page.
    uint64_t copy_cycles = 0;
    {
      const uint64_t t0 = s.machine.Now();
      uint32_t left = bytes;
      for (uint32_t p = 0; p < pages; ++p) {
        auto ref = hv.HcGrantAccess(s.dst, s.src, /*pfn=*/100 + p, /*writable=*/true);
        const uint32_t chunk = std::min(left, page);
        (void)hv.HcGrantCopy(s.src, s.dst, *ref, 0, /*local_pfn=*/100 + p, 0, chunk,
                             /*to_grant=*/true);
        left -= chunk;
        (void)hv.HcGrantEnd(s.dst, *ref);
      }
      copy_cycles = s.machine.Now() - t0;
    }

    // Copy with persistent grants: just the copy hypercall per page.
    uint64_t persist_cycles = 0;
    {
      const uint64_t t0 = s.machine.Now();
      uint32_t left = bytes;
      for (uint32_t p = 0; p < pages; ++p) {
        const uint32_t chunk = std::min(left, page);
        (void)hv.HcGrantCopy(s.src, s.dst, persistent_refs[p], 0, 100 + p, 0, chunk, true);
        left -= chunk;
      }
      persist_cycles = s.machine.Now() - t0;
    }

    // Flip path: one slot advertisement + one transfer per page.
    uint64_t flip_cycles = 0;
    {
      const uint64_t t0 = s.machine.Now();
      for (uint32_t p = 0; p < pages; ++p) {
        auto slot = hv.HcGrantTransferSlot(s.dst, s.src, 200 + p);
        (void)hv.HcGrantTransfer(s.src, 300 + p, s.dst, *slot);
      }
      flip_cycles = s.machine.Now() - t0;
    }

    const char* cheapest = "flip";
    if (copy_cycles <= flip_cycles && copy_cycles <= persist_cycles) {
      cheapest = "copy";
    } else if (persist_cycles <= flip_cycles) {
      cheapest = "copy (persistent)";
    }
    table.AddRow({uharness::FmtInt(bytes), uharness::FmtInt(pages),
                  uharness::FmtInt(copy_cycles), uharness::FmtInt(persist_cycles),
                  uharness::FmtInt(flip_cycles), cheapest});
  }
  table.Print();
  std::printf(
      "Ablation note: with Xen-2.x per-packet grant management, flipping wins (and it\n"
      "was the default); once grants persist, the copy is cheaper at every size the\n"
      "NIC can deliver — which is why later Xen abandoned flipping. Either way the\n"
      "flip's own cost never depends on the payload.\n");

  // Per-packet view at network payload sizes (CG05's angle): the flip cost
  // is literally constant.
  uharness::Table per_pkt("per-packet cost at NIC payload sizes",
                          {"payload B", "flip cycles", "copy cycles",
                           "flip cost varies with size?"});
  uint64_t first_flip = 0;
  for (uint32_t bytes : {64u, 512u, 1024u, 1460u}) {
    const uint64_t t0 = s.machine.Now();
    auto slot = hv.HcGrantTransferSlot(s.dst, s.src, 400);
    (void)hv.HcGrantTransfer(s.src, 500, s.dst, *slot);
    const uint64_t flip = s.machine.Now() - t0;
    if (first_flip == 0) {
      first_flip = flip;
    }
    const uint64_t t1 = s.machine.Now();
    auto ref = hv.HcGrantAccess(s.dst, s.src, 401, true);
    (void)hv.HcGrantCopy(s.src, s.dst, *ref, 0, 501, 0, bytes, true);
    (void)hv.HcGrantEnd(s.dst, *ref);
    const uint64_t copy = s.machine.Now() - t1;
    per_pkt.AddRow({uharness::FmtInt(bytes), uharness::FmtInt(flip), uharness::FmtInt(copy),
                    flip == first_flip ? "no (flat)" : "YES (bug!)"});
  }
  per_pkt.Print();

  std::printf(
      "\nShape check: copy wins below ~a page (per-byte cost small, flip's fixed\n"
      "PTE+shootdown cost large); flips only pay off for page-multiple bulk data.\n"
      "At NIC payload sizes the flip cost is exactly flat — CG05's 'irrespective of\n"
      "the message size'.\n");
  return 0;
}
