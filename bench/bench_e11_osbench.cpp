// E11 — OS microbenchmarks across substrates (lmbench-style table).
//
// The paper leans on Härtig et al., "The performance of µ-kernel-based
// systems" [HHL+97], which compared native Linux against L4Linux with
// lmbench-style operations. This bench reproduces that comparison across
// all four configurations of this repository: native, L4Linux-style
// microkernel, paravirtual VMM with the fast gate, and the VMM degraded to
// trap-and-reflect.
//
// For I/O operations, the interesting number is *busy* CPU cycles (device
// latency shows up as idle time and would swamp the software-path cost), so
// both totals are reported.

#include <cstdio>
#include <functional>

#include "src/experiments/table.h"
#include "src/stacks/native_stack.h"
#include "src/stacks/ukernel_stack.h"
#include "src/stacks/vmm_stack.h"
#include "src/workloads/netio.h"

namespace {

struct OpCost {
  uint64_t busy = 0;  // non-idle cycles per op
  uint64_t wall = 0;  // elapsed simulated cycles per op
};

struct Bench {
  std::string name;
  // Runs `iters` of the operation on (os, pid); returns ops done.
  std::function<uint64_t(minios::Os&, ukvm::ProcessId, int iters)> op;
};

std::vector<Bench> MakeBenches() {
  return {
      {"null syscall",
       [](minios::Os& os, ukvm::ProcessId pid, int iters) {
         uint64_t done = 0;
         for (int i = 0; i < iters; ++i) {
           done += os.Null(pid) == 0 ? 1 : 0;
         }
         return done;
       }},
      {"getpid",
       [](minios::Os& os, ukvm::ProcessId pid, int iters) {
         uint64_t done = 0;
         for (int i = 0; i < iters; ++i) {
           done += os.GetPid(pid) >= 0 ? 1 : 0;
         }
         return done;
       }},
      {"open+close",
       [](minios::Os& os, ukvm::ProcessId pid, int iters) {
         if (os.Open(pid, "bench-oc") < 0) {
           (void)os.Create(pid, "bench-oc");
         }
         uint64_t done = 0;
         for (int i = 0; i < iters; ++i) {
           const auto fd = os.Open(pid, "bench-oc");
           if (fd >= 0 && os.Close(pid, fd) == 0) {
             ++done;
           }
         }
         return done;
       }},
      {"write 512B (file)",
       [](minios::Os& os, ukvm::ProcessId pid, int iters) {
         auto fd = os.Open(pid, "bench-w");
         if (fd < 0) {
           fd = os.Create(pid, "bench-w");
         }
         std::vector<uint8_t> block(512, 0x5A);
         uint64_t done = 0;
         for (int i = 0; i < iters; ++i) {
           (void)os.Seek(pid, fd, 0);
           done += os.Write(pid, fd, block) == 512 ? 1 : 0;
         }
         return done;
       }},
      {"read 512B (file)",
       [](minios::Os& os, ukvm::ProcessId pid, int iters) {
         auto fd = os.Open(pid, "bench-r");
         if (fd < 0) {
           fd = os.Create(pid, "bench-r");
         }
         std::vector<uint8_t> block(512, 0x5A);
         (void)os.Write(pid, fd, block);
         uint64_t done = 0;
         for (int i = 0; i < iters; ++i) {
           (void)os.Seek(pid, fd, 0);
           done += os.Read(pid, fd, block) == 512 ? 1 : 0;
         }
         return done;
       }},
      {"udp send 64B",
       [](minios::Os& os, ukvm::ProcessId pid, int iters) {
         std::vector<uint8_t> payload(64, 1);
         uint64_t done = 0;
         for (int i = 0; i < iters; ++i) {
           done += os.NetSend(pid, 80, 7, payload) == 64 ? 1 : 0;
         }
         return done;
       }},
  };
}

constexpr int kIters = 50;

template <typename StackT>
std::vector<OpCost> RunAll(StackT& stack, minios::Os& os,
                           const std::function<void(const std::function<void()>&)>& in_context) {
  std::vector<OpCost> costs;
  uwork::WireHost wire(stack.machine(), stack.nic());
  auto& machine = stack.machine();
  for (auto& bench : MakeBenches()) {
    OpCost cost;
    in_context([&] {
      auto pid = os.Spawn("bench");
      // Warm up (allocates fds, files, driver state).
      (void)bench.op(os, *pid, 4);
      machine.RunUntilIdle();
      const uint64_t idle0 = machine.accounting().CyclesOf(hwsim::kIdleDomain);
      const uint64_t hw0 = machine.accounting().CyclesOf(ukvm::kHardwareDomain);
      const uint64_t t0 = machine.Now();
      const uint64_t done = bench.op(os, *pid, kIters);
      machine.RunUntilIdle();
      const uint64_t wall = machine.Now() - t0;
      const uint64_t idle = machine.accounting().CyclesOf(hwsim::kIdleDomain) - idle0;
      const uint64_t hw = machine.accounting().CyclesOf(ukvm::kHardwareDomain) - hw0;
      if (done > 0) {
        cost.wall = wall / done;
        cost.busy = (wall - std::min(wall, idle + hw)) / done;
      }
    });
    costs.push_back(cost);
  }
  return costs;
}

}  // namespace

int main() {
  uharness::PrintHeading("E11", "lmbench-style OS operations across substrates [HHL+97 style]");

  std::vector<std::vector<OpCost>> columns;
  std::vector<std::string> names;

  {
    ustack::NativeStack stack;
    names.push_back("native");
    columns.push_back(
        RunAll(stack, stack.os(), [&](const std::function<void()>& fn) { fn(); }));
  }
  {
    ustack::UkernelStack stack;
    names.push_back("ukernel (L4Linux)");
    columns.push_back(RunAll(stack, stack.guest_os(0), [&](const std::function<void()>& fn) {
      stack.RunAsApp(0, fn);
    }));
  }
  {
    ustack::VmmStack stack;
    names.push_back("vmm (fast gate)");
    columns.push_back(RunAll(stack, stack.guest_os(0), [&](const std::function<void()>& fn) {
      stack.RunAsApp(0, fn);
    }));
  }
  {
    ustack::VmmStack::Config config;
    config.request_fast_syscall = false;
    ustack::VmmStack stack(config);
    names.push_back("vmm (reflected)");
    columns.push_back(RunAll(stack, stack.guest_os(0), [&](const std::function<void()>& fn) {
      stack.RunAsApp(0, fn);
    }));
  }

  auto benches = MakeBenches();
  {
    std::vector<std::string> header = {"operation (busy cycles/op)"};
    for (const auto& name : names) {
      header.push_back(name);
    }
    uharness::Table table("software-path cost (device/idle time excluded)", header);
    for (size_t b = 0; b < benches.size(); ++b) {
      std::vector<std::string> row = {benches[b].name};
      for (const auto& col : columns) {
        row.push_back(uharness::FmtInt(col[b].busy));
      }
      table.AddRow(row);
    }
    table.Print();
  }
  {
    std::vector<std::string> header = {"operation (wall cycles/op)"};
    for (const auto& name : names) {
      header.push_back(name);
    }
    uharness::Table table("end-to-end simulated time (device latency included)", header);
    for (size_t b = 0; b < benches.size(); ++b) {
      std::vector<std::string> row = {benches[b].name};
      for (const auto& col : columns) {
        row.push_back(uharness::FmtInt(col[b].wall));
      }
      table.AddRow(row);
    }
    table.Print();
  }

  std::printf(
      "\nShape check ([HHL+97] found L4Linux within ~5-10%% of native on macro loads,\n"
      "2-4x on null syscalls): pure-CPU ops order native <= vmm-fast < vmm-reflected <\n"
      "ukernel; I/O-bound ops converge as device time dominates — the architecture\n"
      "tax matters exactly where the paper's IPC argument says it does.\n");
  return 0;
}
