// E18 — multi-vCPU TLB shootdown: the cost of revocation grows with the
// machine, and batching is what keeps it affordable.
//
// The paper's isolation argument (§2) is priced on a uniprocessor. On a
// multiprocessor every revocation — unmap, grant end, address-space death —
// must also evict stale translations from every other vCPU's TLB: IPIs, a
// remote handler, and an initiator spin. This bench unmaps K pages on each
// stack while sweeping the vCPU count, twice: one shootdown round per page
// (the naive protocol) and one round for the whole batch (the multicall /
// queued-revocation path), and reports per-page cycles.
//
// Shape: per-page cost scales with the vCPU count on every stack (each
// extra target adds an IPI + a remote handler to every round), and at
// 4 vCPUs the batched path beats per-page by well over 2x, because the
// per-round protocol overhead is paid once instead of K times.

#include <cstdio>
#include <string>
#include <vector>

#include "src/experiments/table.h"
#include "src/hw/machine.h"
#include "src/hw/paging.h"
#include "src/hw/platform.h"
#include "src/ukernel/ipc.h"
#include "src/ukernel/kernel.h"
#include "src/ukernel/mapdb.h"
#include "src/ukernel/task.h"
#include "src/vmm/hypervisor.h"

namespace {

constexpr uint32_t kPages = 32;
constexpr uint64_t kVaBase = 0x0010'0000;

struct StackCosts {
  uint64_t per_page;  // one shootdown round per unmapped page, cycles/page
  uint64_t batched;   // one round for the whole batch, cycles/page
};

// Native: a kernel revoking PTEs directly on the machine's protocol.
StackCosts RunNative(uint32_t vcpus) {
  StackCosts out{};
  for (const bool batched : {false, true}) {
    hwsim::Machine machine(hwsim::MakeX86Platform(), 16 << 20, vcpus);
    hwsim::PageTable pt(machine.platform().page_shift, machine.platform().vaddr_bits);
    machine.cpu().SetDomain(ukvm::DomainId(1));
    std::vector<hwsim::Vaddr> vpns;
    for (uint32_t i = 0; i < kPages; ++i) {
      const hwsim::Vaddr va = kVaBase + uint64_t{i} * machine.memory().page_size();
      (void)pt.Map(va, i, hwsim::PtePerms{true, true});
      vpns.push_back(pt.VpnOf(va));
    }
    const uint64_t t0 = machine.Now();
    for (uint32_t i = 0; i < kPages; ++i) {
      (void)pt.Unmap(kVaBase + uint64_t{i} * machine.memory().page_size());
      machine.Charge(machine.costs().pte_write);
      if (!batched) {
        machine.TlbShootdown(&pt, {&vpns[i], 1});
      }
    }
    if (batched) {
      machine.TlbShootdown(&pt, vpns);
    }
    (batched ? out.batched : out.per_page) = (machine.Now() - t0) / kPages;
  }
  return out;
}

// Microkernel: kernel-mediated unmap. One syscall per page runs one queued
// IPI round each; a single K-page unmap drains the whole queue in one round.
StackCosts RunUkernel(uint32_t vcpus) {
  StackCosts out{};
  for (const bool batched : {false, true}) {
    hwsim::Machine machine(hwsim::MakeX86Platform(), 16 << 20, vcpus);
    ukern::Kernel kernel(machine);
    auto task = kernel.CreateTask(ukvm::ThreadId::Invalid());
    (void)kernel.CreateThread(*task, 128, [](ukvm::ThreadId, ukern::IpcMessage) {
      return ukern::IpcMessage{};
    });
    ukern::Task* t = kernel.FindTask(*task);
    for (uint32_t i = 0; i < kPages; ++i) {
      const hwsim::Vaddr va = kVaBase + uint64_t{i} * machine.memory().page_size();
      auto frame = machine.memory().AllocFrame(*task);
      (void)t->space.Map(va, *frame, hwsim::PtePerms{true, true});
      kernel.mapdb().AddRoot(*task, t->space.VpnOf(va), *frame);
    }
    const uint64_t t0 = machine.Now();
    if (batched) {
      (void)kernel.Unmap(*task, kVaBase, kPages, /*include_self=*/true);
    } else {
      for (uint32_t i = 0; i < kPages; ++i) {
        (void)kernel.Unmap(*task, kVaBase + uint64_t{i} * machine.memory().page_size(), 1,
                           /*include_self=*/true);
      }
    }
    (batched ? out.batched : out.per_page) = (machine.Now() - t0) / kPages;
  }
  return out;
}

// VMM: the guest asks for invalidation by hypercall — one HcTlbShootdown
// per page versus one multicall carrying K queued flush sub-ops.
StackCosts RunVmm(uint32_t vcpus) {
  StackCosts out{};
  for (const bool batched : {false, true}) {
    hwsim::Machine machine(hwsim::MakeX86Platform(), 32 << 20, vcpus);
    uvmm::Hypervisor hv(machine);
    auto guest = hv.CreateDomain("guest", kPages + 8, false);
    std::vector<uvmm::MmuUpdate> maps;
    for (uint32_t i = 0; i < kPages; ++i) {
      maps.push_back({kVaBase + uint64_t{i} * machine.memory().page_size(), i, true, true});
    }
    (void)hv.HcMmuUpdate(*guest, maps);
    const uint64_t t0 = machine.Now();
    if (batched) {
      std::vector<uvmm::MulticallOp> ops;
      for (uint32_t i = 0; i < kPages; ++i) {
        uvmm::MulticallOp op;
        op.kind = uvmm::MulticallOp::Kind::kTlbShootdown;
        op.va = kVaBase + uint64_t{i} * machine.memory().page_size();
        op.len = 1;
        ops.push_back(op);
      }
      (void)hv.HcMulticall(*guest, ops);
    } else {
      for (uint32_t i = 0; i < kPages; ++i) {
        const hwsim::Vaddr va = kVaBase + uint64_t{i} * machine.memory().page_size();
        (void)hv.HcTlbShootdown(*guest, {&va, 1});
      }
    }
    (batched ? out.batched : out.per_page) = (machine.Now() - t0) / kPages;
  }
  return out;
}

}  // namespace

int main() {
  uharness::PrintHeading("E18",
                         "TLB shootdown cost vs vCPU count: per-page rounds vs one batched round");

  uharness::Table table(
      "cycles per unmapped page, 32-page revocation",
      {"vCPUs", "native/page", "native batch", "ukernel/page", "ukernel batch", "vmm/page",
       "vmm batch", "vmm speedup"});

  bool ok = true;
  StackCosts native1{}, ukernel1{}, vmm1{};
  for (const uint32_t vcpus : {1u, 2u, 4u, 8u}) {
    const StackCosts native = RunNative(vcpus);
    const StackCosts ukernel = RunUkernel(vcpus);
    const StackCosts vmm = RunVmm(vcpus);
    if (vcpus == 1) {
      native1 = native;
      ukernel1 = ukernel;
      vmm1 = vmm;
    }
    table.AddRow({uharness::FmtInt(vcpus), uharness::FmtInt(native.per_page),
                  uharness::FmtInt(native.batched), uharness::FmtInt(ukernel.per_page),
                  uharness::FmtInt(ukernel.batched), uharness::FmtInt(vmm.per_page),
                  uharness::FmtInt(vmm.batched),
                  uharness::FmtDouble(static_cast<double>(vmm.per_page) /
                                      static_cast<double>(vmm.batched)) +
                      "x"});
    if (vcpus == 4) {
      // Shape gates (the experiment's claims, enforced).
      if (!(native.per_page > native1.per_page && ukernel.per_page > ukernel1.per_page &&
            vmm.per_page > vmm1.per_page)) {
        std::fprintf(stderr,
                     "FAIL: per-page shootdown cost did not grow from 1 to 4 vCPUs "
                     "(native %llu->%llu, ukernel %llu->%llu, vmm %llu->%llu)\n",
                     (unsigned long long)native1.per_page, (unsigned long long)native.per_page,
                     (unsigned long long)ukernel1.per_page, (unsigned long long)ukernel.per_page,
                     (unsigned long long)vmm1.per_page, (unsigned long long)vmm.per_page);
        ok = false;
      }
      if (vmm.per_page < 2 * vmm.batched) {
        std::fprintf(stderr, "FAIL: multicall batching under 2x at 4 vCPUs (%llu vs %llu)\n",
                     (unsigned long long)vmm.per_page, (unsigned long long)vmm.batched);
        ok = false;
      }
    }
  }
  table.Print();

  std::printf(
      "\nShape check: with one vCPU the protocol is free and all paths collapse to the\n"
      "local flush cost. Every added vCPU taxes every round with an IPI send plus a\n"
      "remote handler, so per-page rounds scale linearly in both K and the machine\n"
      "size, while the batched paths pay the round once — the same batching story as\n"
      "E12/E16, now for revocation. The microkernel queues revocations and drains\n"
      "them in one IPI round per syscall; the VMM gets the same effect only if the\n"
      "guest uses a multicall, otherwise each hypercall is its own round.\n");

  uharness::WriteJsonIfRequested("E18");
  return ok ? 0 : 1;
}
