// E4 — protection-domain crossing equivalence (table).
//
// Paper §3.2's conclusion: "A Xen-based system performs essentially the
// same number of IPC operations as a comparable microkernel-based system
// (such as L4Linux)." The same deterministic mixed workload (syscalls +
// file churn + datagram sends) runs on the native baseline, the
// microkernel, and the VMM; the crossing ledger reports what each
// architecture really did.

#include <cstdio>
#include <cstdlib>

#include "src/experiments/table.h"
#include "src/experiments/trace_export.h"
#include "src/stacks/native_stack.h"
#include "src/stacks/ukernel_stack.h"
#include "src/stacks/vmm_stack.h"
#include "src/workloads/netio.h"
#include "src/workloads/oswork.h"

namespace {

struct StackRun {
  std::string name;
  ukvm::CrossingSnapshot crossings;
  uint64_t cycles = 0;
  double success = 0;
};

template <typename StackT>
StackRun Run(const char* name, StackT& stack, minios::Os& os) {
  uwork::WireHost wire(stack.machine(), stack.nic());
  StackRun run;
  run.name = name;
  const auto before = stack.machine().ledger().Snapshot();
  uwork::WorkloadResult result;
  auto pid = os.Spawn("workload");
  result = uwork::RunMixedWorkload(stack.machine(), os, *pid, 80);
  stack.machine().RunUntilIdle();
  run.crossings = ukvm::DiffSnapshots(before, stack.machine().ledger().Snapshot());
  run.cycles = result.cycles;
  run.success = result.SuccessRate();
  return run;
}

}  // namespace

int main() {
  uharness::PrintHeading("E4", "crossings for the identical mixed workload, per architecture");

  // With UKVM_TRACE_DIR set, the headline runs also record flight-recorder
  // timelines and profiler stacks (zero simulated-cycle impact; see E17)
  // and export TRACE_e4_<stack>.json + STACKS_e4_<stack>.txt.
  const bool trace = std::getenv("UKVM_TRACE_DIR") != nullptr;

  std::vector<StackRun> runs;
  {
    ustack::NativeStack::Config config;
    config.trace.enabled = trace;
    ustack::NativeStack stack(config);
    runs.push_back(Run("native", stack, stack.os()));
    uharness::WriteTraceFilesIfRequested(stack.machine().tracer(), "e4_native",
                                         hwsim::kCyclesPerUs);
  }
  {
    ustack::UkernelStack::Config config;
    config.trace.enabled = trace;
    ustack::UkernelStack stack(config);
    StackRun run;
    stack.RunAsApp(0, [&] { run = Run("ukernel", stack, stack.guest_os(0)); });
    runs.push_back(run);
    uharness::WriteTraceFilesIfRequested(stack.machine().tracer(), "e4_ukernel",
                                         hwsim::kCyclesPerUs);
  }
  {
    ustack::VmmStack::Config config;
    config.trace.enabled = trace;
    ustack::VmmStack stack(config);
    StackRun run;
    stack.RunAsApp(0, [&] { run = Run("vmm (page-flip rx)", stack, stack.guest_os(0)); });
    runs.push_back(run);
    uharness::WriteTraceFilesIfRequested(stack.machine().tracer(), "e4_vmm",
                                         hwsim::kCyclesPerUs);
  }

  // Per-kind crossing counts.
  {
    std::vector<std::string> columns = {"crossing kind"};
    for (const auto& run : runs) {
      columns.push_back(run.name);
    }
    uharness::Table table("crossings by kind (identical workload)", columns);
    for (size_t k = 0; k < ukvm::kCrossingKindCount; ++k) {
      std::vector<std::string> row = {
          ukvm::CrossingKindName(static_cast<ukvm::CrossingKind>(k))};
      for (const auto& run : runs) {
        row.push_back(uharness::FmtInt(run.crossings.kind_counts[k]));
      }
      table.AddRow(row);
    }
    std::vector<std::string> total_row = {"TOTAL (IPC-like)"};
    for (const auto& run : runs) {
      total_row.push_back(uharness::FmtInt(run.crossings.IpcLikeCount()));
    }
    table.AddRow(total_row);
    std::vector<std::string> cycles_row = {"workload cycles"};
    for (const auto& run : runs) {
      cycles_row.push_back(uharness::FmtInt(run.cycles));
    }
    table.AddRow(cycles_row);
    table.Print();
  }

  // Per-mechanism detail for the two contenders.
  for (size_t i = 1; i < runs.size(); ++i) {
    uharness::Table table(runs[i].name + ": mechanisms", {"mechanism", "count", "bytes moved"});
    for (const auto& mech : runs[i].crossings.mechanisms) {
      if (mech.count > 0) {
        table.AddRow({mech.name, uharness::FmtInt(mech.count), uharness::FmtInt(mech.bytes)});
      }
    }
    table.Print();
  }

  // Crossing counts per workload *type*: where do the two systems diverge?
  {
    struct Mix {
      const char* name;
      std::function<void(hwsim::Machine&, minios::Os&, ukvm::ProcessId)> run;
    };
    std::vector<Mix> mixes = {
        {"syscall-only (500 null)",
         [](hwsim::Machine& m, minios::Os& os, ukvm::ProcessId pid) {
           (void)uwork::RunNullSyscalls(m, os, pid, 500);
         }},
        {"disk-only (8 files x 2 KiB)",
         [](hwsim::Machine& m, minios::Os& os, ukvm::ProcessId pid) {
           (void)uwork::RunFileChurn(m, os, pid, 8, 2048, "mx");
         }},
        {"net-only (100 x 512 B send)",
         [](hwsim::Machine& m, minios::Os& os, ukvm::ProcessId pid) {
           (void)uwork::RunUdpSend(m, os, pid, 80, 512, 100);
         }},
    };
    uharness::Table table("IPC-like crossings by workload type",
                          {"workload", "ukernel", "vmm", "vmm/ukernel"});
    for (auto& mix : mixes) {
      uint64_t uk = 0;
      uint64_t vm = 0;
      {
        ustack::UkernelStack stack;
        uwork::WireHost wire(stack.machine(), stack.nic());
        const auto before = stack.machine().ledger().Snapshot();
        stack.RunAsApp(0, [&] {
          auto pid = stack.guest_os(0).Spawn("w");
          mix.run(stack.machine(), stack.guest_os(0), *pid);
        });
        stack.machine().RunUntilIdle();
        uk = ukvm::DiffSnapshots(before, stack.machine().ledger().Snapshot()).IpcLikeCount();
      }
      {
        ustack::VmmStack stack;
        uwork::WireHost wire(stack.machine(), stack.nic());
        const auto before = stack.machine().ledger().Snapshot();
        stack.RunAsApp(0, [&] {
          auto pid = stack.guest_os(0).Spawn("w");
          mix.run(stack.machine(), stack.guest_os(0), *pid);
        });
        stack.machine().RunUntilIdle();
        vm = ukvm::DiffSnapshots(before, stack.machine().ledger().Snapshot()).IpcLikeCount();
      }
      table.AddRow({mix.name, uharness::FmtInt(uk), uharness::FmtInt(vm),
                    uharness::FmtDouble(static_cast<double>(vm) / static_cast<double>(uk))});
    }
    table.Print();
  }

  const double ratio = static_cast<double>(runs[2].crossings.IpcLikeCount()) /
                       static_cast<double>(runs[1].crossings.IpcLikeCount());
  std::printf(
      "\nVMM/microkernel IPC-like crossing ratio: %.2f\n"
      "Shape check: both protected systems cross domains orders of magnitude more than\n"
      "native, and within a small factor of each other — the paper's point that the VMM\n"
      "did not make IPC go away, it renamed it.\n",
      ratio);
  uharness::WriteJsonIfRequested("E4");
  return 0;
}
