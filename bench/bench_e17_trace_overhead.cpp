// E17: what the flight recorder / histograms / profiler cost.
//
// The tracer's contract is that it observes the simulation without
// perturbing it: no tracer method charges simulated cycles, so a run with
// tracing on is cycle-for-cycle identical to the same run with tracing off.
// The first table asserts exactly that (sim delta must be 0 on every row;
// the process exits nonzero otherwise, and scripts/check.sh gates on it).
// The real cost is host wall-clock, reported as a ratio.
//
// The second half demonstrates the instruments on the netsplit receive
// path: per-mechanism and end-to-end latency percentiles, cycle-attribution
// coverage, and — when UKVM_TRACE_DIR is set — a Perfetto-loadable Chrome
// trace plus flamegraph.pl collapsed stacks.

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "src/experiments/table.h"
#include "src/experiments/trace_export.h"
#include "src/stacks/ukernel_stack.h"
#include "src/stacks/vmm_stack.h"
#include "src/workloads/netio.h"
#include "src/workloads/oswork.h"

namespace {

struct RunResult {
  uint64_t sim_cycles = 0;
  double host_ms = 0;
  uint64_t events = 0;      // flight-recorder events captured
  uint64_t mismatches = 0;  // span discipline violations (must be 0)
};

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

RunResult RunUkernelIpc(bool trace) {
  ustack::UkernelStack::Config config;
  config.audit = false;
  config.trace.enabled = trace;
  const auto t0 = std::chrono::steady_clock::now();
  ustack::UkernelStack stack(config);
  auto& os = stack.guest_os(0);
  (void)stack.RunAsApp(0, [&] {
    auto pid = os.Spawn("bench");
    uwork::RunNullSyscalls(stack.machine(), os, *pid, 2000);
  });
  stack.machine().RunUntilIdle();
  RunResult r;
  r.sim_cycles = stack.machine().Now();
  r.host_ms = MsSince(t0);
  r.events = stack.machine().tracer().events_recorded();
  r.mismatches = stack.machine().tracer().span_mismatches();
  return r;
}

RunResult RunVmmMixed(bool trace) {
  ustack::VmmStack::Config config;
  config.audit = false;
  config.trace.enabled = trace;
  const auto t0 = std::chrono::steady_clock::now();
  ustack::VmmStack stack(config);
  auto& os = stack.guest_os(0);
  (void)stack.RunAsApp(0, [&] {
    auto pid = os.Spawn("bench");
    uwork::RunMixedWorkload(stack.machine(), os, *pid, 80);
  });
  stack.machine().RunUntilIdle();
  RunResult r;
  r.sim_cycles = stack.machine().Now();
  r.host_ms = MsSince(t0);
  r.events = stack.machine().tracer().events_recorded();
  r.mismatches = stack.machine().tracer().span_mismatches();
  return r;
}

RunResult RunVmmFlipReceive(bool trace) {
  ustack::VmmStack::Config config;
  config.audit = false;
  config.trace.enabled = trace;
  config.rx_mode = ustack::RxMode::kPageFlip;
  const auto t0 = std::chrono::steady_clock::now();
  ustack::VmmStack stack(config);
  uwork::WireHost wire(stack.machine(), stack.nic());
  stack.RouteWirePort(40, 0);
  auto& os = stack.guest_os(0);
  (void)stack.RunAsApp(0, [&] {
    auto pid = os.Spawn("bench");
    (void)os.NetBind(*pid, 40);
    wire.StartStream(40, 1024, 20 * hwsim::kCyclesPerUs, 64);
    uwork::RunUdpReceive(stack.machine(), os, *pid, 40, 64, 1'000'000'000ull);
  });
  stack.machine().RunUntilIdle();
  RunResult r;
  r.sim_cycles = stack.machine().Now();
  r.host_ms = MsSince(t0);
  r.events = stack.machine().tracer().events_recorded();
  r.mismatches = stack.machine().tracer().span_mismatches();
  return r;
}

// The demonstration run: netsplit receive with tracing on, instruments
// dumped before the stack dies.
void ShowInstruments(bool& attribution_ok) {
  ustack::VmmStack::Config config;
  config.audit = false;
  config.trace.enabled = true;
  config.rx_mode = ustack::RxMode::kPageFlip;
  ustack::VmmStack stack(config);
  uwork::WireHost wire(stack.machine(), stack.nic());
  stack.RouteWirePort(40, 0);
  auto& os = stack.guest_os(0);
  (void)stack.RunAsApp(0, [&] {
    auto pid = os.Spawn("bench");
    (void)os.NetBind(*pid, 40);
    wire.StartStream(40, 1024, 20 * hwsim::kCyclesPerUs, 64);
    uwork::RunUdpReceive(stack.machine(), os, *pid, 40, 64, 1'000'000'000ull);
  });
  stack.machine().RunUntilIdle();

  const ukvm::Tracer& tracer = stack.machine().tracer();
  uharness::Table hist("latency histograms (cycles), netsplit flip receive",
                       {"histogram", "count", "p50", "p90", "p99", "max"});
  tracer.ForEachHistogram([&hist](const std::string& name, const ukvm::LogHistogram& h) {
    if (h.count() == 0) {
      return;
    }
    const ukvm::HistogramSnapshot s = h.Snapshot();
    hist.AddRow({name, uharness::FmtInt(s.count), uharness::FmtInt(s.p50),
                 uharness::FmtInt(s.p90), uharness::FmtInt(s.p99), uharness::FmtInt(s.max)});
  });
  hist.Print();

  const uint64_t total = tracer.profiler().total_cycles();
  const uint64_t attributed = uharness::AttributedCycles(tracer.profiler());
  const double coverage = total > 0 ? static_cast<double>(attributed) / total : 0;
  attribution_ok = coverage >= 0.95;

  uharness::Table prof("cycle attribution (profiler)",
                       {"accounted cycles", "attributed", "coverage", "events", "dropped"});
  prof.AddRow({uharness::FmtInt(total), uharness::FmtInt(attributed),
               uharness::FmtPercent(coverage), uharness::FmtInt(tracer.events_recorded()),
               uharness::FmtInt(tracer.events_dropped())});
  prof.Print();

  uharness::WriteTraceFilesIfRequested(tracer, "e17_netsplit", hwsim::kCyclesPerUs);
}

}  // namespace

int main() {
  uharness::PrintHeading("E17",
                         "tracing overhead: flight recorder + histograms + profiler");

  struct Shape {
    const char* name;
    std::function<RunResult(bool)> run;
  };
  const std::vector<Shape> shapes = {
      {"E1 ipc-pingpong (ukernel, 2000 syscalls)", RunUkernelIpc},
      {"E4 mixed blend (vmm, syscalls+files+udp)", RunVmmMixed},
      {"E9 flip receive (vmm, 64 pkts page-flip)", RunVmmFlipReceive},
  };

  // Deterministic counters and host wall-clock live in separate tables so
  // the former can join the bit-exact JSON comparison in scripts/check.sh
  // (host timing varies run to run and goes to BENCH_E17_HOST.json).
  uharness::Table table("tracing off vs on (deterministic)",
                        {"workload", "sim cycles (off)", "sim cycles (on)", "sim delta",
                         "events", "span mismatches"});
  uharness::Table host_table("tracing host overhead",
                             {"workload", "host ms (off)", "host ms (on)",
                              "host overhead"});
  host_table.MarkHostTime();

  bool sim_clean = true;
  bool spans_clean = true;
  for (const Shape& shape : shapes) {
    // Warm-up run to stabilise host timing (allocator, page cache).
    (void)shape.run(false);
    const RunResult off = shape.run(false);
    const RunResult on = shape.run(true);
    const int64_t delta =
        static_cast<int64_t>(on.sim_cycles) - static_cast<int64_t>(off.sim_cycles);
    if (delta != 0) {
      sim_clean = false;
    }
    if (on.mismatches != 0) {
      spans_clean = false;
    }
    const double ratio = off.host_ms > 0 ? on.host_ms / off.host_ms : 0;
    char overhead[32];
    std::snprintf(overhead, sizeof overhead, "%.2fx", ratio);
    char delta_str[32];
    std::snprintf(delta_str, sizeof delta_str, "%lld", static_cast<long long>(delta));
    table.AddRow({shape.name, uharness::FmtInt(off.sim_cycles),
                  uharness::FmtInt(on.sim_cycles), delta_str, uharness::FmtInt(on.events),
                  uharness::FmtInt(on.mismatches)});
    host_table.AddRow({shape.name, uharness::FmtDouble(off.host_ms, 1),
                       uharness::FmtDouble(on.host_ms, 1), overhead});
  }
  table.Print();
  host_table.Print();

  bool attribution_ok = false;
  ShowInstruments(attribution_ok);

  std::printf(
      "\nInvariant: tracing must be invisible in simulated time (sim delta == 0 on\n"
      "every row — the tracer never charges cycles) — %s. Span discipline — %s.\n"
      "Cycle attribution >= 95%% — %s.\n",
      sim_clean ? "holds" : "VIOLATED", spans_clean ? "holds" : "VIOLATED",
      attribution_ok ? "holds" : "VIOLATED");
  uharness::WriteJsonIfRequested("E17");
  return sim_clean && spans_clean && attribution_ok ? 0 : 1;
}
