// E15 — chaos soak: both architectures under one seeded fault schedule.
//
// The paper's availability story (§3.1) is usually told with clean kills
// (E5/E14). Real devices fail messier: dropped frames, flaky sectors,
// latency spikes, lost completion interrupts. This bench attaches the same
// seeded FaultPlan — background noise plus deterministic "storm" windows
// where the disk errors every request — to the microkernel stack, the
// disaggregated VMM (Parallax storage VM), and the consolidated VMM (all
// drivers in Dom0), then soaks each with file churn + datagram sends while
// a watchdog probes the storage/net services through their ordinary
// request paths and drives the stack's existing restart procedure.
//
// Everything below is deterministic: same seed, same schedule, same table
// on every run. No Restart* is called by the bench body — recovery is the
// watchdog's job.

#include <cstdio>
#include <string>
#include <vector>

#include "src/experiments/table.h"
#include "src/hw/fault_injector.h"
#include "src/stacks/ukernel_stack.h"
#include "src/stacks/vmm_stack.h"
#include "src/stacks/watchdog.h"
#include "src/workloads/oswork.h"

namespace {

constexpr int kRounds = 24;

// One fault schedule for every architecture. Background noise on every
// class, plus a recurring 3M-cycle storm window (every 12M cycles) in
// which the disk fails *every* request — long enough to outlast the
// drivers' retry budgets, so the breaker opens, probes fail, and the
// watchdog has real work to do; short enough that recovery is observable.
hwsim::FaultPlan ChaosPlan() {
  hwsim::FaultPlan plan;
  plan.seed = 0x20050605;  // fixed: the whole point is one shared schedule

  plan.nic_tx_drop.probability = 0.04;
  plan.nic_corrupt.probability = 0.02;

  plan.disk_read_error.probability = 0.01;
  plan.disk_read_error.burst_period = 12'000'000;
  plan.disk_read_error.burst_start = 2'000'000;
  plan.disk_read_error.burst_len = 3'000'000;
  plan.disk_read_error.burst_probability = 1.0;
  plan.disk_write_error.probability = 0.01;
  plan.disk_write_error.burst_period = 12'000'000;
  plan.disk_write_error.burst_start = 8'000'000;  // offset from the read storm:
  plan.disk_write_error.burst_len = 3'000'000;    // it must overlap the phase
  plan.disk_write_error.burst_probability = 1.0;  // where the workload writes

  plan.disk_latency.probability = 0.03;
  plan.disk_latency_spike_cycles = 40'000;

  plan.irq_lost.probability = 0.01;
  plan.irq_spurious.probability = 0.01;
  return plan;
}

udrv::RetryPolicy DiskRetry() {
  udrv::RetryPolicy p;
  p.max_attempts = 3;
  p.timeout_cycles = 500'000;  // catches lost completion IRQs
  p.backoff_cycles = 60'000;
  return p;
}

udrv::RetryPolicy NicRetry() {
  udrv::RetryPolicy p;
  p.max_attempts = 3;
  p.backoff_cycles = 20'000;
  return p;
}

ustack::DegradePolicy Degrade() {
  ustack::DegradePolicy p;
  p.fail_threshold = 3;         // consecutive device failures to open the breaker
  p.cooldown_cycles = 400'000;  // short enough to half-close between rounds
  return p;
}

ustack::Watchdog::Policy WatchdogPolicy() {
  ustack::Watchdog::Policy p;
  p.probe_interval = 250'000;
  p.fail_threshold = 2;
  p.restart_budget = 5;
  p.restart_backoff_cycles = 400'000;
  return p;
}

struct SoakResult {
  uint64_t ops_attempted = 0;
  uint64_t ops_succeeded = 0;
  uint64_t injected = 0;
  uint64_t retries = 0;
  uint64_t degraded = 0;
  uint64_t probes = 0;
  uint64_t probe_failures = 0;
  uint64_t restarts = 0;
  uint64_t recovery_cycles = 0;
  std::vector<std::pair<std::string, uint64_t>> fault_counts;

  double Availability() const {
    return ops_attempted == 0
               ? 0.0
               : static_cast<double>(ops_succeeded) / static_cast<double>(ops_attempted);
  }
};

// Arms the chaos plan after a clean boot (steady state first, then the
// storm), soaks with the mixed workload, and lets the watchdog poll
// between rounds. Identical for every stack type.
template <typename StackT>
SoakResult Soak(StackT& stack, ustack::Watchdog& wd) {
  SoakResult r;
  hwsim::Machine& machine = stack.machine();

  ukvm::ProcessId pid{};
  stack.RunAsApp(0, [&] { pid = *stack.guest_os(0).Spawn("chaos"); });

  stack.ArmFaults(ChaosPlan());
  for (int round = 0; round < kRounds; ++round) {
    stack.RunAsApp(0, [&] {
      minios::Os& os = stack.guest_os(0);
      std::string prefix = "c";
      prefix += std::to_string(round);
      prefix += "_";
      const uwork::WorkloadResult churn = uwork::RunFileChurn(
          machine, os, pid, /*files=*/2, /*bytes_per_file=*/256, prefix);
      const uwork::WorkloadResult net =
          uwork::RunUdpSend(machine, os, pid, /*dst_port=*/7, /*payload_size=*/128, /*count=*/4);
      r.ops_attempted += churn.ops_attempted + net.ops_attempted;
      r.ops_succeeded += churn.ops_succeeded + net.ops_succeeded;
    });
    // Pump idle time after each burst of work, polling the watchdog as we
    // go. The slice length varies per round so probe times don't
    // phase-lock to the storm period — a storm the supervisor never
    // observes is a storm it cannot act on.
    for (int pump = 0; pump < 7; ++pump) {
      wd.Poll();
      machine.RunFor(260'000 + 40'000 * static_cast<uint64_t>(round % 5));
    }
  }

  r.injected = stack.fault_injector()->injected_total();
  r.retries = machine.counters().Get("drv.disk.retry") + machine.counters().Get("drv.nic.retry");
  r.degraded = machine.counters().Get("svc.degraded_reply");
  r.restarts = wd.restarts_total();
  for (const ustack::Watchdog::ServiceStats& s : wd.stats()) {
    r.probes += s.probes;
    r.probe_failures += s.probe_failures;
    r.recovery_cycles += s.recovery_cycles;
  }
  for (const char* name : {"fault.nic.tx_drop", "fault.nic.corrupt", "fault.disk.read_error",
                           "fault.disk.write_error", "fault.disk.latency", "fault.irq.lost",
                           "fault.irq.spurious"}) {
    r.fault_counts.emplace_back(name, machine.counters().Get(name));
  }
  return r;
}

std::vector<std::string> Row(const std::string& arch, const SoakResult& r) {
  return {arch,
          uharness::FmtInt(r.injected),
          uharness::FmtInt(r.retries),
          uharness::FmtInt(r.degraded),
          uharness::FmtInt(r.probe_failures) + "/" + uharness::FmtInt(r.probes),
          uharness::FmtInt(r.restarts),
          uharness::FmtCycles(r.recovery_cycles),
          uharness::FmtPercent(r.Availability())};
}

}  // namespace

int main() {
  uharness::PrintHeading("E15",
                         "chaos soak: seeded device faults vs retries, breakers, and a watchdog");

  uharness::Table table("soak under one seeded fault schedule (storms included)",
                        {"architecture", "faults injected", "driver retries", "degraded replies",
                         "probe fails/total", "watchdog restarts", "recovery cycles",
                         "availability"});
  uharness::Table faults("injected faults by class",
                         {"fault class", "ukernel", "vmm + parallax", "vmm dom0 storage"});

  SoakResult uk;
  {
    ustack::UkernelStack::Config config;
    config.disk_retry = DiskRetry();
    config.nic_retry = NicRetry();
    config.degrade = Degrade();
    ustack::UkernelStack stack(config);
    ustack::Watchdog wd(stack.machine(), WatchdogPolicy());
    wd.Watch("blk", [&] { return stack.ProbeBlockService(); },
             [&] { (void)stack.RestartBlockServer(); });
    wd.Watch("net", [&] { return stack.ProbeNetService(); },
             [&] { (void)stack.RestartNetServer(); });
    uk = Soak(stack, wd);
    table.AddRow(Row("ukernel", uk));
  }

  SoakResult vp;
  {
    ustack::VmmStack::Config config;
    config.parallax_storage = true;
    config.disk_retry = DiskRetry();
    config.nic_retry = NicRetry();
    config.degrade = Degrade();
    ustack::VmmStack stack(config);
    ustack::Watchdog wd(stack.machine(), WatchdogPolicy());
    wd.Watch("storage", [&] { return stack.ProbeStorageService(); },
             [&] { (void)stack.RestartStorage(); });
    vp = Soak(stack, wd);
    table.AddRow(Row("vmm + parallax", vp));
  }

  SoakResult vd;
  {
    ustack::VmmStack::Config config;
    config.parallax_storage = false;  // blkback consolidated into Dom0
    config.disk_retry = DiskRetry();
    config.nic_retry = NicRetry();
    config.degrade = Degrade();
    ustack::VmmStack stack(config);
    ustack::Watchdog wd(stack.machine(), WatchdogPolicy());
    wd.Watch("storage", [&] { return stack.ProbeStorageService(); },
             [&] { (void)stack.RestartStorage(); });
    vd = Soak(stack, wd);
    table.AddRow(Row("vmm dom0 storage", vd));
  }
  table.Print();

  for (size_t i = 0; i < uk.fault_counts.size(); ++i) {
    faults.AddRow({uk.fault_counts[i].first, uharness::FmtInt(uk.fault_counts[i].second),
                   uharness::FmtInt(vp.fault_counts[i].second),
                   uharness::FmtInt(vd.fault_counts[i].second)});
  }
  faults.Print();

  std::printf(
      "\nShape check: every architecture keeps serving (availability > 0) through the\n"
      "same storms — retries absorb transient faults, breakers turn persistent ones\n"
      "into bounded error replies, and the watchdog restarts via each stack's own\n"
      "recovery path (never a private back door). The schedule is seeded: a second\n"
      "run prints this table bit-identically.\n");
  const bool ok = uk.Availability() > 0.0 && vp.Availability() > 0.0 && vd.Availability() > 0.0;
  if (!ok) {
    std::printf("FAIL: an architecture lost all availability under the soak\n");
    return 1;
  }
  return 0;
}
