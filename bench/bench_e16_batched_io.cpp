// E16 — batched split-driver datapath (multicalls, event coalescing, grant
// recycling).
//
// §3.2's per-packet costs — one hypercall round-trip per flip, one event-
// channel notification per packet, a TLB shootdown per transfer — are not
// laws of nature; Xen itself amortised them with multicalls, interrupt
// mitigation, and persistent grants. This experiment reruns E3's receive
// load with the batch size swept over {1, 4, 16, 64} and reports how the
// per-packet Dom0 cost, the crossing count, and the hypercall entry count
// fall as a whole burst shares one hypervisor entry, one notification, and
// one TLB flush. The E4 VMM/µ-kernel crossing ratio is then recomputed
// under batching: batching narrows the gap without changing the
// architecture — the VMM is still doing IPC, just in bulk.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/experiments/table.h"
#include "src/stacks/ukernel_stack.h"
#include "src/stacks/vmm_stack.h"
#include "src/workloads/netio.h"
#include "src/workloads/oswork.h"

namespace {

constexpr uint16_t kPort = 40;
constexpr uint32_t kPayload = 1460;
constexpr uint64_t kIntervalUs = 8;  // E3 figure C's fastest offered rate
constexpr uint64_t kCount = 600;

struct BatchRun {
  uint64_t packets = 0;
  uint64_t flips = 0;
  uint64_t dom0_cycles = 0;
  uint64_t guest_cycles = 0;
  uint64_t vmm_cycles = 0;
  uint64_t idle_cycles = 0;
  uint64_t hypercalls = 0;   // hypervisor entries (a multicall counts once)
  uint64_t subops = 0;       // sub-ops executed under multicalls
  uint64_t crossings = 0;    // IPC-like ledger crossings
  uint64_t coalesced = 0;    // event-channel sends absorbed by a pending bit
  uint64_t irqs = 0;         // NIC interrupts actually raised
  uint64_t irqs_suppressed = 0;
  uint64_t shootdowns_deferred = 0;
  uint64_t busy_cycles() const { return dom0_cycles + guest_cycles + vmm_cycles; }
  uint64_t PerPacket(uint64_t total) const { return packets == 0 ? 0 : total / packets; }
};

BatchRun RunBatched(ustack::RxMode mode, uint32_t batch, bool persistent) {
  ustack::VmmStack::Config config;
  config.rx_mode = mode;
  config.io_batch = batch;
  config.persistent_grants = persistent;
  ustack::VmmStack stack(config);
  if (batch > 1) {
    // NAPI tuning: one poll round should gather ~one batch at the offered
    // rate (interrupt moderation matched to the load, as ethtool would).
    // The moderation window is clamped below the NIC's 32-slot rx ring —
    // moderating past ring capacity just drops packets at the device.
    const uint64_t window = std::min<uint64_t>(batch, 24);
    stack.nic_driver().SetInterruptMitigation(
        true, window * kIntervalUs * hwsim::kCyclesPerUs);
  }
  uwork::WireHost wire(stack.machine(), stack.nic());
  stack.RouteWirePort(kPort, 0);

  auto& machine = stack.machine();
  auto& acct = machine.accounting();
  const ukvm::DomainId dom0 = stack.dom0();
  const ukvm::DomainId guest = stack.guest(0).domain;
  const ukvm::DomainId vmm = stack.hv().vmm_domain();

  BatchRun run;
  stack.RunAsApp(0, [&] {
    auto& os = stack.guest_os(0);
    auto pid = os.Spawn("netserver");
    (void)os.NetBind(*pid, kPort);

    const uint64_t dom0_before = acct.CyclesOf(dom0);
    const uint64_t guest_before = acct.CyclesOf(guest);
    const uint64_t vmm_before = acct.CyclesOf(vmm);
    const uint64_t idle_before = acct.CyclesOf(hwsim::kIdleDomain);
    const uint64_t flips_before = machine.counters().Get("xen.page_flips");
    const uint64_t hc_before = stack.hv().total_hypercalls();
    const uint64_t sub_before = stack.hv().multicall_subops();
    const uint64_t coal_before = stack.hv().evtchn().coalesced_sends();
    const uint64_t irq_before = stack.nic().irqs_raised();
    const uint64_t supp_before = stack.nic().irqs_suppressed();
    const uint64_t defer_before = stack.hv().gnttab().deferred_shootdowns();
    const auto ledger_before = machine.ledger().Snapshot();

    wire.StartStream(kPort, kPayload, kIntervalUs * hwsim::kCyclesPerUs, kCount);
    auto recv = uwork::RunUdpReceive(machine, os, *pid, kPort, kCount,
                                     kCount * kIntervalUs * hwsim::kCyclesPerUs * 20);
    machine.RunUntilIdle();

    run.packets = recv.ops_succeeded;
    run.flips = machine.counters().Get("xen.page_flips") - flips_before;
    run.dom0_cycles = acct.CyclesOf(dom0) - dom0_before;
    run.guest_cycles = acct.CyclesOf(guest) - guest_before;
    run.vmm_cycles = acct.CyclesOf(vmm) - vmm_before;
    run.idle_cycles = acct.CyclesOf(hwsim::kIdleDomain) - idle_before;
    run.hypercalls = stack.hv().total_hypercalls() - hc_before;
    run.subops = stack.hv().multicall_subops() - sub_before;
    run.coalesced = stack.hv().evtchn().coalesced_sends() - coal_before;
    run.irqs = stack.nic().irqs_raised() - irq_before;
    run.irqs_suppressed = stack.nic().irqs_suppressed() - supp_before;
    run.shootdowns_deferred = stack.hv().gnttab().deferred_shootdowns() - defer_before;
    run.crossings =
        ukvm::DiffSnapshots(ledger_before, machine.ledger().Snapshot()).IpcLikeCount();
  });
  return run;
}

// The µ-kernel side of E4's comparison, under the identical receive load.
struct UkRun {
  uint64_t packets = 0;
  uint64_t crossings = 0;
};

UkRun RunUkernelReceive() {
  ustack::UkernelStack stack;
  uwork::WireHost wire(stack.machine(), stack.nic());
  stack.RouteWirePort(kPort, 0);
  auto& machine = stack.machine();
  UkRun run;
  const auto before = machine.ledger().Snapshot();
  stack.RunAsApp(0, [&] {
    auto& os = stack.guest_os(0);
    auto pid = os.Spawn("netserver");
    (void)os.NetBind(*pid, kPort);
    wire.StartStream(kPort, kPayload, kIntervalUs * hwsim::kCyclesPerUs, kCount);
    auto recv = uwork::RunUdpReceive(machine, os, *pid, kPort, kCount,
                                     kCount * kIntervalUs * hwsim::kCyclesPerUs * 20);
    machine.RunUntilIdle();
    run.packets = recv.ops_succeeded;
  });
  run.crossings = ukvm::DiffSnapshots(before, machine.ledger().Snapshot()).IpcLikeCount();
  return run;
}

double PerPacketD(const BatchRun& run, uint64_t total) {
  return run.packets == 0 ? 0.0
                          : static_cast<double>(total) / static_cast<double>(run.packets);
}

}  // namespace

int main() {
  uharness::PrintHeading(
      "E16", "batched datapath: multicalls, event coalescing, grant recycling");

  const std::vector<uint32_t> batches = {1, 4, 16, 64};

  // --- Table A: page-flip RX, batch sweep --------------------------------------
  uint64_t flip_b1 = 0;
  uint64_t flip_b16 = 0;
  {
    uharness::Table table(
        "Table A: page-flip RX, 600 x 1460 B @ one per 8us, batch sweep",
        {"batch", "packets", "Dom0 cyc/pkt", "hc entries/pkt", "subops/pkt",
         "crossings/pkt", "NIC irqs", "irqs saved", "deferred shootdowns"});
    for (uint32_t batch : batches) {
      BatchRun run = RunBatched(ustack::RxMode::kPageFlip, batch, /*persistent=*/false);
      if (batch == 1) {
        flip_b1 = run.PerPacket(run.dom0_cycles);
      }
      if (batch == 16) {
        flip_b16 = run.PerPacket(run.dom0_cycles);
      }
      table.AddRow({uharness::FmtInt(batch), uharness::FmtInt(run.packets),
                    uharness::FmtInt(run.PerPacket(run.dom0_cycles)),
                    uharness::FmtDouble(PerPacketD(run, run.hypercalls)),
                    uharness::FmtDouble(PerPacketD(run, run.subops)),
                    uharness::FmtDouble(PerPacketD(run, run.crossings)),
                    uharness::FmtInt(run.irqs), uharness::FmtInt(run.irqs_suppressed),
                    uharness::FmtInt(run.shootdowns_deferred)});
    }
    table.Print();
    std::printf(
        "Expected: Dom0 cyc/pkt falls monotonically with batch (>=2x by batch 16);\n"
        "hypercall entries/pkt drops below 1 from batch 4 — one multicall, one\n"
        "notification and one TLB shootdown serve the whole burst.\n");
  }

  // --- Table B: grant-copy RX, batching + persistent grants --------------------
  {
    uharness::Table table(
        "Table B: grant-copy RX, same load, batching x grant recycling",
        {"batch", "persistent", "packets", "Dom0 cyc/pkt", "hc entries/pkt",
         "crossings/pkt"});
    for (uint32_t batch : batches) {
      for (bool persistent : {false, true}) {
        BatchRun run = RunBatched(ustack::RxMode::kGrantCopy, batch, persistent);
        table.AddRow({uharness::FmtInt(batch), persistent ? "yes" : "no",
                      uharness::FmtInt(run.packets),
                      uharness::FmtInt(run.PerPacket(run.dom0_cycles)),
                      uharness::FmtDouble(PerPacketD(run, run.hypercalls)),
                      uharness::FmtDouble(PerPacketD(run, run.crossings))});
      }
    }
    table.Print();
    std::printf(
        "Expected: persistent grants shave the per-packet grant bookkeeping on top\n"
        "of batching (steady state re-advertises rx slots with zero hypercalls).\n");
  }

  // --- Table C: the E4 ratio, recomputed under batching ------------------------
  {
    UkRun uk = RunUkernelReceive();
    const double uk_per_pkt =
        uk.packets == 0 ? 0.0
                        : static_cast<double>(uk.crossings) / static_cast<double>(uk.packets);
    uharness::Table table(
        "Table C: IPC-like crossings per packet, VMM (page-flip) vs microkernel",
        {"system", "packets", "crossings/pkt", "vs ukernel"});
    table.AddRow({"ukernel", uharness::FmtInt(uk.packets), uharness::FmtDouble(uk_per_pkt),
                  uharness::FmtDouble(1.0)});
    for (uint32_t batch : batches) {
      BatchRun run = RunBatched(ustack::RxMode::kPageFlip, batch, /*persistent=*/false);
      const double per_pkt = PerPacketD(run, run.crossings);
      table.AddRow({"vmm batch=" + std::to_string(batch), uharness::FmtInt(run.packets),
                    uharness::FmtDouble(per_pkt),
                    uharness::FmtDouble(uk_per_pkt == 0.0 ? 0.0 : per_pkt / uk_per_pkt)});
    }
    table.Print();
    std::printf(
        "Expected: batching shrinks the VMM's crossing count per packet — E4's\n"
        "\"essentially the same number of IPCs\" equivalence holds at every batch\n"
        "size; the VMM amortises crossings exactly the way a microkernel would.\n");
  }

  if (flip_b1 > 0 && flip_b16 > 0) {
    std::printf("\nDom0 cyc/pkt, batch 1 -> 16 (page flip): %llu -> %llu (%.2fx)\n",
                static_cast<unsigned long long>(flip_b1),
                static_cast<unsigned long long>(flip_b16),
                static_cast<double>(flip_b1) / static_cast<double>(flip_b16));
  }
  uharness::WriteJsonIfRequested("E16");
  return 0;
}
