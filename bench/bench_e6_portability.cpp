// E6 — portability matrix (table).
//
// Paper §2.2: "software that is written for an L4 microkernel naturally
// runs on nine different processor platforms ... In contrast, [VMM]
// software developed for one VMM is inherently unportable across
// architectures." Both complete stacks (identical source) are booted on
// every simulated platform; the matrix records what ran unmodified and
// which architecture-specific mechanisms were available.

#include <cstdio>

#include "src/experiments/table.h"
#include "src/stacks/ukernel_stack.h"
#include "src/stacks/vmm_stack.h"
#include "src/workloads/netio.h"
#include "src/workloads/oswork.h"

namespace {

const char* YesNo(bool b) { return b ? "yes" : "no"; }

}  // namespace

int main() {
  uharness::PrintHeading("E6", "one source tree across platforms");

  uharness::Table table("portability matrix (same binaries, per platform)",
                        {"platform", "page", "ukernel stack", "ukernel workload", "vmm stack",
                         "vmm workload", "fast syscall gate", "workload cycles (uk)"});

  for (const hwsim::Platform& platform : hwsim::AllPlatforms()) {
    bool uk_boots = false;
    bool uk_work = false;
    uint64_t uk_cycles = 0;
    {
      ustack::UkernelStack::Config config;
      config.platform = platform;
      ustack::UkernelStack stack(config);
      uk_boots = stack.guest(0).booted;
      if (uk_boots) {
        stack.RunAsApp(0, [&] {
          auto pid = stack.guest_os(0).Spawn("w");
          auto result =
              uwork::RunFileChurn(stack.machine(), stack.guest_os(0), *pid, 3, 2048, "port");
          uk_work = result.SuccessRate() == 1.0;
          uk_cycles = result.cycles;
        });
      }
    }

    bool vmm_boots = false;
    bool vmm_work = false;
    bool fast_gate = false;
    {
      ustack::VmmStack::Config config;
      config.platform = platform;
      ustack::VmmStack stack(config);
      vmm_boots = stack.guest(0).booted;
      if (vmm_boots) {
        stack.RunAsApp(0, [&] {
          auto pid = stack.guest_os(0).Spawn("w");
          auto result =
              uwork::RunFileChurn(stack.machine(), stack.guest_os(0), *pid, 3, 2048, "port");
          vmm_work = result.SuccessRate() == 1.0;
        });
        fast_gate = stack.hv().FindDomain(stack.guest(0).domain)->fast_trap_enabled;
      }
    }

    table.AddRow({platform.name, uharness::FmtInt(platform.page_size()), YesNo(uk_boots),
                  YesNo(uk_work), YesNo(vmm_boots), YesNo(vmm_work), YesNo(fast_gate),
                  uharness::FmtInt(uk_cycles)});
  }
  table.Print();

  std::printf(
      "\nShape check: the microkernel stack and its user-level servers run unmodified\n"
      "everywhere — the kernel hides page size, TLB style, and segmentation. The VMM\n"
      "stack also boots (this reproduction shares the portable substrate), but its\n"
      "x86-specific optimisation — the trap-gate syscall shortcut of section 3.2 —\n"
      "exists only where segmentation does, illustrating the paper's point that VMM\n"
      "interfaces mirror one architecture's peculiarities.\n");
  return 0;
}
