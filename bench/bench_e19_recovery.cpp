// E19 — crash-tolerant split drivers: kill the storage backend mid-burst,
// decompose the recovery latency, and prove exactly-once write semantics.
//
// E14 priced a *clean* restart (quiescent service, no work in flight). The
// paper's liability argument (§3.1) is only honest if the backend can die
// while requests are on the ring: the frontend must detect the death, the
// supervisor must reclaim the corpse's grants and event channels, the
// connection must be rebuilt xenbus-style, and every unacknowledged write
// must be replayed — exactly once, even if the dead backend had already
// committed it to the disk. This bench drives that full path on all three
// architectures (microkernel block server, VMM + Parallax storage VM, VMM
// with Dom0-hosted storage), killing the backend mid-burst several times
// under a seeded fault storm, and reports:
//
//   - the recovery phases (detect / reclaim / reconnect / replay / e2e)
//     from the recovery.* histograms the xenbus machinery records;
//   - the exactly-once ledger arithmetic: journaled writes replayed,
//     duplicate replays suppressed by the stack-owned recovery log, and
//     applied_total == sum of acknowledged writes (zero lost, zero dup);
//   - a full data read-back against a model of every write that was either
//     acknowledged or journaled (the durable-eventually set).
//
// The storm includes NIC noise, disk latency spikes (burst windows where
// every request is spiked), and spurious IRQs — but deliberately *not*
// disk media errors: a media error is an answered failure the journal
// resolves on the spot, so it is orthogonal to crash recovery, and keeping
// it out keeps the "journaled => durable-eventually" ledger arithmetic
// exact. Everything is seeded and deterministic: same kills, same storms,
// same table on every run.

#include <cstdio>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "src/core/histogram.h"
#include "src/experiments/table.h"
#include "src/hw/fault_injector.h"
#include "src/stacks/ukernel_stack.h"
#include "src/stacks/vmm_stack.h"

namespace {

using ukvm::Err;

constexpr uint64_t kLbas = 16;        // round-robin write targets
constexpr int kKillCycles = 3;        // kill/recover cycles per stack
constexpr int kWritesPerCycle = 24;   // burst length around each kill
constexpr int kKillAtWrite = 8;       // burst index that arms the kill

// Background noise plus a recurring latency storm; no media errors (see
// the header comment) and no lost IRQs (a swallowed completion is retry
// territory, E15's subject, not crash recovery).
hwsim::FaultPlan StormPlan() {
  hwsim::FaultPlan plan;
  plan.seed = 0x20050605;  // one shared schedule, as in E15
  plan.nic_tx_drop.probability = 0.02;
  plan.nic_corrupt.probability = 0.01;
  plan.disk_latency.probability = 0.05;
  plan.disk_latency.burst_period = 8'000'000;
  plan.disk_latency.burst_start = 1'000'000;
  plan.disk_latency.burst_len = 2'000'000;
  plan.disk_latency.burst_probability = 1.0;
  plan.disk_latency_spike_cycles = 30'000;
  plan.irq_spurious.probability = 0.01;
  return plan;
}

// One crash-recoverable storage stack under the bench: the three
// architectures differ only in how the backend dies and comes back.
struct Target {
  hwsim::Machine* machine = nullptr;
  ucheck::Auditor* auditor = nullptr;
  std::function<Err(uint64_t lba, std::span<const uint8_t>)> write;
  std::function<Err(uint64_t lba, std::span<uint8_t>)> read;
  std::function<void()> kill;
  std::function<Err()> restart;
  std::function<size_t()> journal_depth;
  std::function<uint64_t()> applied_total;
  std::function<uint64_t()> suppressed_total;
  std::function<uint64_t()> acked_total;
  std::function<uint64_t()> reconnects;
  std::function<uint64_t()> replayed_total;
  uint32_t block_size = 0;
};

struct PhaseStats {
  uint64_t count = 0;
  uint64_t p50 = 0;
  uint64_t max = 0;
};

struct RunResult {
  uint64_t writes_attempted = 0;
  uint64_t writes_acked = 0;
  uint64_t writes_journaled = 0;  // returned kDead but entered the journal
  uint64_t reconnects = 0;
  uint64_t replayed = 0;
  uint64_t suppressed = 0;
  uint64_t applied = 0;
  uint64_t acked_ledger = 0;
  uint64_t dma_cancelled = 0;
  uint64_t journal_residue = 0;
  uint64_t faults_injected = 0;
  bool data_intact = true;
  uint64_t violations = 0;
  std::map<std::string, PhaseStats> phases;  // recovery.* histograms

  bool ExactlyOnce() const {
    return journal_residue == 0 && applied == acked_ledger && data_intact;
  }
};

RunResult RunBurstsWithKills(Target& t) {
  RunResult r;
  hwsim::Machine& machine = *t.machine;
  std::vector<uint8_t> block(t.block_size);
  std::vector<uint8_t> back(t.block_size);
  // lba -> fill byte of the last acknowledged-or-journaled write: the
  // durable-eventually set. Journaled writes replay in id order before any
  // post-restart write, so last-writer-wins matches issue order.
  std::map<uint64_t, uint8_t> model;

  uint8_t fill = 0;
  for (int cycle = 0; cycle < kKillCycles; ++cycle) {
    bool alive = true;
    for (int i = 0; i < kWritesPerCycle; ++i) {
      const uint64_t lba = static_cast<uint64_t>(i) % kLbas;
      ++fill;
      std::fill(block.begin(), block.end(), fill);
      if (alive && i == kKillAtWrite) {
        // Land inside the request's completion wait (disk fixed latency is
        // ~100us): the backend dies with this write on the ring. The delay
        // varies per cycle so the kill samples different interleavings —
        // including the applied-but-unacknowledged one the recovery log
        // exists for.
        const uint64_t delay = (30 + 17 * static_cast<uint64_t>(cycle)) * hwsim::kCyclesPerUs;
        machine.ScheduleAfter(delay, [&t] { t.kill(); });
      }
      const size_t depth_before = t.journal_depth();
      const Err err = t.write(lba, block);
      ++r.writes_attempted;
      if (err == Err::kNone) {
        ++r.writes_acked;
        model[lba] = fill;
      } else if (t.journal_depth() > depth_before) {
        ++r.writes_journaled;
        model[lba] = fill;
      }
      if (alive && i == kKillAtWrite) {
        machine.RunUntilIdle();  // drain the kill + any orphaned completion
        alive = false;
      }
    }
    const Err restarted = t.restart();
    if (restarted != Err::kNone) {
      std::printf("FAIL: restart returned %s\n", ukvm::ErrName(restarted));
      r.data_intact = false;
      return r;
    }
    machine.RunFor(200 * hwsim::kCyclesPerUs);  // settle between cycles
  }

  // Full read-back of the durable-eventually set.
  for (const auto& [lba, expect] : model) {
    if (t.read(lba, back) != Err::kNone || back[0] != expect ||
        back[t.block_size - 1] != expect) {
      r.data_intact = false;
      std::printf("FAIL: lba %llu read back %02x, expected %02x\n",
                  static_cast<unsigned long long>(lba), back[0], expect);
    }
  }

  r.reconnects = t.reconnects();
  r.replayed = t.replayed_total();
  r.suppressed = t.suppressed_total();
  r.applied = t.applied_total();
  r.acked_ledger = t.acked_total();
  r.journal_residue = t.journal_depth();
  r.dma_cancelled = machine.counters().Get("recovery.disk.dma_cancelled");
  r.faults_injected = machine.counters().Get("fault.nic.tx_drop") +
                      machine.counters().Get("fault.nic.corrupt") +
                      machine.counters().Get("fault.disk.latency") +
                      machine.counters().Get("fault.irq.spurious");
  machine.tracer().ForEachHistogram([&r](const std::string& name, const ukvm::LogHistogram& h) {
    if (name.starts_with("recovery.")) {
      const ukvm::HistogramSnapshot s = h.Snapshot();
      r.phases[name] = PhaseStats{s.count, s.p50, s.max};
    }
  });
  if (t.auditor != nullptr) {
    t.auditor->Checkpoint("e19-final");
    r.violations = t.auditor->violation_count();
    for (const std::string& report : t.auditor->ViolationReports()) {
      std::printf("FAIL: %s\n", report.c_str());
    }
  }
  return r;
}

RunResult RunUkernel() {
  ustack::UkernelStack::Config config;
  config.crash_recovery = true;
  config.trace.enabled = true;
  ustack::UkernelStack stack(config);
  stack.ArmFaults(StormPlan());
  auto* block = stack.guest(0).port->block();
  Target t;
  t.machine = &stack.machine();
  t.auditor = stack.auditor();
  t.block_size = block->block_size();
  t.write = [&](uint64_t lba, std::span<const uint8_t> in) { return block->Write(lba, 1, in); };
  t.read = [&](uint64_t lba, std::span<uint8_t> out) { return block->Read(lba, 1, out); };
  t.kill = [&] { (void)stack.KillBlockServer(); };
  t.restart = [&] { return stack.RestartBlockServer(); };
  t.journal_depth = [&] { return stack.guest(0).port->blk_journal_depth(); };
  t.applied_total = [&] { return stack.blk_recovery_log().applied_total(); };
  t.suppressed_total = [&] { return stack.blk_recovery_log().suppressed_total(); };
  t.acked_total = [&] { return stack.guest(0).port->blk_writes_acked_ok(); };
  t.reconnects = [&] { return stack.guest(0).xenbus->reconnects(); };
  t.replayed_total = [&] { return stack.guest(0).xenbus->replayed_total(); };
  return RunBurstsWithKills(t);
}

RunResult RunVmm(bool parallax) {
  ustack::VmmStack::Config config;
  config.parallax_storage = parallax;
  config.crash_recovery = true;
  config.trace.enabled = true;
  ustack::VmmStack stack(config);
  stack.ArmFaults(StormPlan());
  auto& front = *stack.guest(0).blkfront;
  Target t;
  t.machine = &stack.machine();
  t.auditor = stack.auditor();
  t.block_size = front.block_size();
  t.write = [&](uint64_t lba, std::span<const uint8_t> in) { return front.Write(lba, 1, in); };
  t.read = [&](uint64_t lba, std::span<uint8_t> out) { return front.Read(lba, 1, out); };
  // Parallax: whole-VM death (grant reclamation + kDomainDead upcalls).
  // Dom0-hosted: the driver crashes inside the surviving Dom0.
  t.kill = [&] { parallax ? (void)stack.KillStorage() : (void)stack.CrashStorageService(); };
  t.restart = [&] { return stack.RestartStorage(); };
  t.journal_depth = [&] { return front.journal_depth(); };
  t.applied_total = [&] { return stack.blk_recovery_log().applied_total(); };
  t.suppressed_total = [&] { return stack.blk_recovery_log().suppressed_total(); };
  t.acked_total = [&] { return front.writes_acked_ok(); };
  t.reconnects = [&] { return front.xenbus().reconnects(); };
  t.replayed_total = [&] { return front.xenbus().replayed_total(); };
  return RunBurstsWithKills(t);
}

std::string Phase(const RunResult& r, const std::string& name) {
  auto it = r.phases.find(name);
  if (it == r.phases.end() || it->second.count == 0) {
    return "-";
  }
  return uharness::FmtCycles(it->second.p50);
}

}  // namespace

int main() {
  uharness::PrintHeading(
      "E19", "kill the storage backend mid-burst; reclaim, reconnect, replay exactly once");

  struct Arch {
    const char* name;
    const char* unit;
    RunResult r;
  };
  std::vector<Arch> archs;
  archs.push_back({"ukernel", "user-level server task", RunUkernel()});
  archs.push_back({"vmm + parallax", "whole storage VM", RunVmm(/*parallax=*/true)});
  archs.push_back({"vmm dom0 storage", "driver inside Dom0", RunVmm(/*parallax=*/false)});

  uharness::Table phases("recovery latency by phase (p50 over the kill cycles)",
                         {"architecture", "replacement unit", "kills", "detect", "reclaim",
                          "reconnect", "replay", "end-to-end"});
  for (const Arch& a : archs) {
    phases.AddRow({a.name, a.unit, uharness::FmtInt(a.r.reconnects), Phase(a.r, "recovery.detect"),
                   Phase(a.r, "recovery.reclaim"), Phase(a.r, "recovery.reconnect"),
                   Phase(a.r, "recovery.replay"), Phase(a.r, "recovery.e2e")});
  }
  phases.Print();

  uharness::Table ledger("exactly-once ledger (zero lost, zero duplicated)",
                         {"architecture", "writes", "acked", "journaled", "replayed",
                          "dups suppressed", "dma cancelled", "applied==acked", "data intact"});
  for (const Arch& a : archs) {
    ledger.AddRow({a.name, uharness::FmtInt(a.r.writes_attempted),
                   uharness::FmtInt(a.r.writes_acked), uharness::FmtInt(a.r.writes_journaled),
                   uharness::FmtInt(a.r.replayed), uharness::FmtInt(a.r.suppressed),
                   uharness::FmtInt(a.r.dma_cancelled),
                   a.r.applied == a.r.acked_ledger ? "yes" : "NO",
                   a.r.data_intact ? "yes" : "NO"});
  }
  ledger.Print();

  std::printf(
      "\nShape check: every architecture survives a backend killed with writes on the\n"
      "ring. Detection is the frontend's kDead wake, reclamation is the supervisor\n"
      "revoking the corpse's grants and channels (a whole domain for Parallax, a task\n"
      "for the microkernel, a driver teardown inside Dom0), reconnect rebuilds the\n"
      "rings xenbus-style, and replay settles the journal — with the stack-owned\n"
      "recovery log suppressing any write the dead backend had already committed.\n"
      "applied == acked and an intact read-back together mean zero lost and zero\n"
      "duplicated writes, under the same seeded storm on every stack.\n");

  uharness::WriteJsonIfRequested("E19");

  bool ok = true;
  for (const Arch& a : archs) {
    if (!a.r.ExactlyOnce() || a.r.violations != 0 ||
        a.r.reconnects != static_cast<uint64_t>(kKillCycles)) {
      std::printf("FAIL: %s — exactly_once=%d violations=%llu reconnects=%llu\n", a.name,
                  a.r.ExactlyOnce(), static_cast<unsigned long long>(a.r.violations),
                  static_cast<unsigned long long>(a.r.reconnects));
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
