// E10 — ablation: Liedtke's small address spaces [Lie95].
//
// The paper cites Liedtke's Pentium address-space multiplexing as prior art
// ([Lie95]): by parking small tasks inside one page table behind distinct
// segment bases, an IPC-heavy system avoids the page-table reload and TLB
// flush on every switch. This bench measures the round-trip IPC cost and
// the induced TLB misses with and without small spaces, on platforms with
// and without segmentation.

#include <cstdio>

#include "src/experiments/table.h"
#include "src/hw/machine.h"
#include "src/ukernel/kernel.h"

namespace {

using ukvm::Err;
using ukvm::ThreadId;

struct World {
  hwsim::Machine machine;
  std::unique_ptr<ukern::Kernel> kernel;
  ThreadId client;
  ThreadId server;
  ukvm::DomainId client_task;
  ukvm::DomainId server_task;

  explicit World(const hwsim::Platform& platform) : machine(platform, 16 << 20) {
    kernel = std::make_unique<ukern::Kernel>(machine);
    auto MakeSide = [&](hwsim::Vaddr window, ukern::IpcHandler handler, ukvm::DomainId* out) {
      auto task = kernel->CreateTask(ThreadId::Invalid());
      auto thread = kernel->CreateThread(*task, 128, std::move(handler));
      ukern::Task* t = kernel->FindTask(*task);
      for (int i = 0; i < 8; ++i) {
        auto frame = machine.memory().AllocFrame(*task);
        const hwsim::Vaddr va = window + static_cast<uint64_t>(i) * machine.memory().page_size();
        (void)t->space.Map(va, *frame, hwsim::PtePerms{true, true});
        kernel->mapdb().AddRoot(*task, t->space.VpnOf(va), *frame);
      }
      (void)kernel->SetRecvBuffer(*thread, window, 8 * 4096);
      *out = *task;
      return *thread;
    };
    server = MakeSide(0x10000, [](ThreadId, ukern::IpcMessage) { return ukern::IpcMessage{}; },
                      &server_task);
    client = MakeSide(0x20000, nullptr, &client_task);
  }

  // Mean cycles and TLB misses for one call round trip, with the client
  // touching its working set between calls (what makes flushes expensive).
  void Measure(int rounds, uint64_t* cycles_out, uint64_t* misses_out) {
    (void)kernel->ActivateThread(client);
    uint64_t cycles = 0;
    const uint64_t misses0 = machine.cpu().tlb().misses();
    for (int r = 0; r < rounds; ++r) {
      // The client touches its 8-page working set (through the TLB).
      for (int p = 0; p < 8; ++p) {
        (void)machine.cpu().Translate(0x20000 + static_cast<uint64_t>(p) * 4096, false, true);
      }
      const uint64_t t0 = machine.Now();
      (void)kernel->Call(client, server, ukern::IpcMessage::Short(1));
      cycles += machine.Now() - t0;
    }
    *cycles_out = cycles / static_cast<uint64_t>(rounds);
    *misses_out = (machine.cpu().tlb().misses() - misses0) / static_cast<uint64_t>(rounds);
  }
};

}  // namespace

int main() {
  uharness::PrintHeading("E10", "small address spaces [Lie95]: IPC without the TLB flush");

  uharness::Table table("round-trip IPC + 8-page working set, per configuration",
                        {"platform", "small spaces", "cycles/round", "TLB misses/round",
                         "speedup"});

  for (const auto& platform :
       {hwsim::MakeX86Platform(), hwsim::MakeArmPlatform(), hwsim::MakeMipsPlatform()}) {
    uint64_t base_cycles = 0, base_misses = 0;
    {
      World world(platform);
      world.Measure(200, &base_cycles, &base_misses);
      table.AddRow({platform.name, "off", uharness::FmtInt(base_cycles),
                    uharness::FmtInt(base_misses), "1.00x"});
    }
    {
      World world(platform);
      const Err err_a = world.kernel->SetSmallSpace(world.client_task, true);
      const Err err_b = world.kernel->SetSmallSpace(world.server_task, true);
      if (err_a != Err::kNone || err_b != Err::kNone) {
        table.AddRow({platform.name, "unsupported (no segmentation)", "-", "-", "-"});
        continue;
      }
      uint64_t cycles = 0, misses = 0;
      world.Measure(200, &cycles, &misses);
      table.AddRow({platform.name, "on", uharness::FmtInt(cycles), uharness::FmtInt(misses),
                    uharness::FmtDouble(static_cast<double>(base_cycles) /
                                        static_cast<double>(cycles)) +
                        "x"});
    }
  }
  table.Print();

  std::printf(
      "\nShape check: on x86 (untagged TLB + segmentation) small spaces remove both\n"
      "the page-table reloads and the refill misses the flush causes, a solid IPC\n"
      "speedup — the optimisation the paper's [Lie95] citation refers to. On a\n"
      "tagged-TLB platform (MIPS) there is little to win; without segmentation (ARM)\n"
      "the mechanism does not exist. Same single-primitive API in every case.\n");
  return 0;
}
