// E22: causal request tracing with critical-path and tail-latency attribution.
//
// The request tracer's contract extends E17's: it follows individual
// requests across every handoff the simulator models (ring slots, event
// channels, ledger crossings, multicalls, recovery replay) without charging
// a single simulated cycle. Three gates, all deterministic:
//
//   1. zero perturbation: sim delta == 0 on every shape with tracing armed
//      (the process exits nonzero otherwise, and scripts/check.sh gates);
//   2. completeness: >= 99% of completed requests are fully parented (every
//      stashed handoff adopted by the far side) and zero orphaned handoffs —
//      the propagation points cover the protocols end to end;
//   3. attribution: on the E19 crash shape, the slowest retained request's
//      critical path names the recovery phases (detect / reconnect /
//      replay) — a tail outlier is linked to its cause, not just measured.
//
// When UKVM_TRACE_DIR is set the crash shape also exports its K slowest
// request DAGs as a Perfetto-loadable flow view plus a per-request JSON
// table.

#include <array>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "src/core/reqtrace.h"
#include "src/experiments/table.h"
#include "src/experiments/trace_export.h"
#include "src/stacks/ukernel_stack.h"
#include "src/stacks/vmm_stack.h"
#include "src/workloads/netio.h"
#include "src/workloads/oswork.h"

namespace {

using ukvm::Err;

struct ShapeResult {
  uint64_t sim_cycles = 0;
  ukvm::ReqTraceLint lint;
  uint64_t started = 0;
  ukvm::HistogramSnapshot e2e;
  std::string slowest_origin = "-";
  uint64_t slowest_e2e = 0;
  std::array<uint64_t, ukvm::kReqNodeKindCount> slowest_breakdown{};
  std::string report;
};

ShapeResult Harvest(hwsim::Machine& machine) {
  ShapeResult r;
  r.sim_cycles = machine.Now();
  const ukvm::RequestTrace& rt = machine.reqtrace();
  r.lint = rt.Lint();
  r.started = rt.requests_started();
  r.e2e = rt.e2e().Snapshot();
  if (!rt.slowest().empty()) {
    const ukvm::CompletedRequest& slow = rt.slowest().front();
    r.slowest_origin = rt.Name(slow.nodes.front().name);
    r.slowest_e2e = slow.t1 - slow.t0;
    r.slowest_breakdown = slow.breakdown;
  }
  r.report = rt.SlowestReport();
  return r;
}

ShapeResult RunUkernelIpc(bool rtrace) {
  ustack::UkernelStack::Config config;
  config.audit = false;
  config.trace.enabled = true;
  config.request_trace.enabled = rtrace;
  ustack::UkernelStack stack(config);
  auto& os = stack.guest_os(0);
  (void)stack.RunAsApp(0, [&] {
    auto pid = os.Spawn("bench");
    uwork::RunNullSyscalls(stack.machine(), os, *pid, 2000);
  });
  stack.machine().RunUntilIdle();
  return Harvest(stack.machine());
}

ShapeResult RunVmmMixed(bool rtrace) {
  ustack::VmmStack::Config config;
  config.audit = false;
  config.trace.enabled = true;
  config.request_trace.enabled = rtrace;
  ustack::VmmStack stack(config);
  auto& os = stack.guest_os(0);
  (void)stack.RunAsApp(0, [&] {
    auto pid = os.Spawn("bench");
    uwork::RunMixedWorkload(stack.machine(), os, *pid, 80);
  });
  stack.machine().RunUntilIdle();
  return Harvest(stack.machine());
}

ShapeResult RunVmmBatchedCopyReceive(bool rtrace) {
  ustack::VmmStack::Config config;
  config.audit = false;
  config.trace.enabled = true;
  config.request_trace.enabled = rtrace;
  config.rx_mode = ustack::RxMode::kGrantCopy;
  config.io_batch = 8;
  config.persistent_grants = true;
  ustack::VmmStack stack(config);
  uwork::WireHost wire(stack.machine(), stack.nic());
  stack.RouteWirePort(41, 0);
  auto& os = stack.guest_os(0);
  (void)stack.RunAsApp(0, [&] {
    auto pid = os.Spawn("bench");
    (void)os.NetBind(*pid, 41);
    wire.StartStream(41, 1024, 20 * hwsim::kCyclesPerUs, 64);
    uwork::RunUdpReceive(stack.machine(), os, *pid, 41, 64, 1'000'000'000ull);
  });
  stack.machine().RunUntilIdle();
  return Harvest(stack.machine());
}

// The E19 shape: kill the storage VM with writes on the ring, restart,
// replay the journal. With tracing on, the replayed requests' DAGs must
// attribute the stall to the recovery phases.
ShapeResult RunRecoveryKill(bool rtrace) {
  ustack::VmmStack::Config config;
  config.audit = false;
  config.trace.enabled = true;
  config.request_trace.enabled = rtrace;
  config.parallax_storage = true;
  config.crash_recovery = true;
  ustack::VmmStack stack(config);
  auto& front = *stack.guest(0).blkfront;
  std::vector<uint8_t> block(front.block_size(), 0);
  for (int i = 0; i < 16; ++i) {
    block.assign(block.size(), static_cast<uint8_t>(i + 1));
    if (i == 8) {
      // Land inside this write's completion wait: it dies on the ring,
      // journals, and replays after the restart.
      stack.machine().ScheduleAfter(30 * hwsim::kCyclesPerUs,
                                    [&stack] { (void)stack.KillStorage(); });
    }
    (void)front.Write(static_cast<uint64_t>(i) % 8, 1, block);
    if (i == 11) {
      stack.machine().RunUntilIdle();
      if (stack.RestartStorage() != Err::kNone) {
        std::printf("FAIL: RestartStorage failed\n");
      }
    }
  }
  stack.machine().RunUntilIdle();
  ShapeResult r = Harvest(stack.machine());
  if (rtrace) {
    uharness::WriteRequestTraceFilesIfRequested(stack.machine().reqtrace(),
                                                stack.machine().tracer(), "e22_recovery",
                                                hwsim::kCyclesPerUs);
  }
  return r;
}

}  // namespace

int main() {
  uharness::PrintHeading(
      "E22", "causal request tracing: critical-path and tail-latency attribution");

  struct Shape {
    const char* name;
    std::function<ShapeResult(bool)> run;
    bool recovery = false;
  };
  const std::vector<Shape> shapes = {
      {"E1 ipc-pingpong (ukernel, 2000 syscalls)", RunUkernelIpc},
      {"E4 mixed blend (vmm, syscalls+files+udp)", RunVmmMixed},
      {"E16 batched copy receive (vmm, batch 8)", RunVmmBatchedCopyReceive},
      {"E19 killed backend mid-write (vmm+parallax)", RunRecoveryKill, true},
  };

  uharness::Table table("request tracing off vs on (deterministic)",
                        {"workload", "sim cycles (off)", "sim cycles (on)", "sim delta",
                         "requests", "completed", "abandoned", "parented", "orphans"});
  uharness::Table tail("tail-latency attribution (slowest retained request)",
                       {"workload", "e2e count", "e2e p50", "e2e p99", "slowest origin",
                        "slowest e2e", "dominant bucket", "bucket cycles"});

  bool sim_clean = true;
  bool parented_ok = true;
  bool recovery_ok = false;
  std::array<uint64_t, ukvm::kReqNodeKindCount> recovery_breakdown{};
  for (const Shape& shape : shapes) {
    const ShapeResult off = shape.run(false);
    const ShapeResult on = shape.run(true);
    const int64_t delta =
        static_cast<int64_t>(on.sim_cycles) - static_cast<int64_t>(off.sim_cycles);
    if (delta != 0) {
      sim_clean = false;
    }
    if (on.lint.parented_fraction() < 0.99 || on.lint.orphaned_handoffs != 0 ||
        on.lint.completed == 0) {
      parented_ok = false;
    }
    char delta_str[32];
    std::snprintf(delta_str, sizeof delta_str, "%lld", static_cast<long long>(delta));
    table.AddRow({shape.name, uharness::FmtInt(off.sim_cycles),
                  uharness::FmtInt(on.sim_cycles), delta_str, uharness::FmtInt(on.started),
                  uharness::FmtInt(on.lint.completed), uharness::FmtInt(on.lint.abandoned),
                  uharness::FmtPercent(on.lint.parented_fraction()),
                  uharness::FmtInt(on.lint.orphaned_handoffs)});

    // Dominant critical-path bucket of the slowest retained request.
    size_t dominant = static_cast<size_t>(ukvm::ReqNodeKind::kQueue);
    for (size_t k = 0; k < ukvm::kReqNodeKindCount; ++k) {
      if (on.slowest_breakdown[k] > on.slowest_breakdown[dominant]) {
        dominant = k;
      }
    }
    tail.AddRow({shape.name, uharness::FmtInt(on.e2e.count), uharness::FmtCycles(on.e2e.p50),
                 uharness::FmtCycles(on.e2e.p99), on.slowest_origin,
                 uharness::FmtCycles(on.slowest_e2e),
                 ukvm::ReqNodeKindName(static_cast<ukvm::ReqNodeKind>(dominant)),
                 uharness::FmtCycles(on.slowest_breakdown[dominant])});

    if (shape.recovery) {
      const bool named = on.report.find("recovery.detect") != std::string::npos &&
                         on.report.find("recovery.reconnect") != std::string::npos &&
                         on.report.find("recovery.replay") != std::string::npos;
      const uint64_t rec_cycles =
          on.slowest_breakdown[static_cast<size_t>(ukvm::ReqNodeKind::kRecovery)];
      recovery_ok = named && rec_cycles > 0;
      recovery_breakdown = on.slowest_breakdown;
    }
  }
  table.Print();
  tail.Print();

  uharness::Table rec("E19 shape: slowest request critical-path breakdown",
                      {"bucket", "cycles"});
  for (size_t k = 0; k < ukvm::kReqNodeKindCount; ++k) {
    if (recovery_breakdown[k] != 0) {
      rec.AddRow({ukvm::ReqNodeKindName(static_cast<ukvm::ReqNodeKind>(k)),
                  uharness::FmtCycles(recovery_breakdown[k])});
    }
  }
  rec.Print();

  std::printf(
      "\nInvariant: request tracing must be invisible in simulated time (sim delta\n"
      "== 0 on every row) — %s. Completeness: >= 99%% of completed requests fully\n"
      "parented, zero orphaned handoffs — %s. Attribution: the E19 crash shape's\n"
      "slowest request names detect/reconnect/replay on its critical path — %s.\n",
      sim_clean ? "holds" : "VIOLATED", parented_ok ? "holds" : "VIOLATED",
      recovery_ok ? "holds" : "VIOLATED");

  uharness::WriteJsonIfRequested("E22");
  return sim_clean && parented_ok && recovery_ok ? 0 : 1;
}
