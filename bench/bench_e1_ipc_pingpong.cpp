// E1 — IPC cost vs message size (figure).
//
// Paper §2.2: the microkernel has ONE primitive, optimised until cheap; the
// VMM offers several mechanisms, each with its own price. This bench
// ping-pongs a payload between two protection domains over every mechanism
// and prints per-round-trip simulated cycles across payload sizes.
//
// Expected shape: L4 register IPC is the floor; string IPC and grant-copy
// grow linearly with size; the page flip is flat (size-independent) but
// starts expensive — so flipping wins only for large payloads.

#include <cstdio>
#include <vector>

#include "src/experiments/table.h"
#include "src/hw/machine.h"
#include "src/ukernel/kernel.h"
#include "src/vmm/hypervisor.h"

namespace {

using ukvm::DomainId;
using ukvm::Err;
using ukvm::ThreadId;

constexpr int kRounds = 100;

// --- Microkernel side -------------------------------------------------------

struct UkSetup {
  hwsim::Machine machine{hwsim::MakeX86Platform(), 16 << 20};
  std::unique_ptr<ukern::Kernel> kernel;
  ThreadId client;
  ThreadId server;
  static constexpr hwsim::Vaddr kClientWin = 0x100000;
  static constexpr hwsim::Vaddr kServerWin = 0x200000;

  UkSetup() {
    kernel = std::make_unique<ukern::Kernel>(machine);
    auto MakeSide = [&](hwsim::Vaddr window, ukern::IpcHandler handler) {
      auto task = kernel->CreateTask(ThreadId::Invalid());
      auto thread = kernel->CreateThread(*task, 128, std::move(handler));
      ukern::Task* t = kernel->FindTask(*task);
      for (int i = 0; i < 32; ++i) {
        auto frame = machine.memory().AllocFrame(*task);
        const hwsim::Vaddr va = window + static_cast<uint64_t>(i) * machine.memory().page_size();
        (void)t->space.Map(va, *frame, hwsim::PtePerms{true, true});
        kernel->mapdb().AddRoot(*task, t->space.VpnOf(va), *frame);
      }
      (void)kernel->SetRecvBuffer(*thread, window,
                                  32 * static_cast<uint32_t>(machine.memory().page_size()));
      return *thread;
    };
    server = MakeSide(kServerWin, [](ThreadId, ukern::IpcMessage msg) {
      // Echo server: replies with a payload of the same size.
      ukern::IpcMessage reply;
      reply.regs[0] = msg.regs[0];
      reply.reg_count = 1;
      if (msg.has_string) {
        reply.has_string = true;
        reply.string = ukern::StringItem{kServerWin, msg.string.len};
      }
      return reply;
    });
    client = MakeSide(kClientWin, nullptr);
  }

  // Round trip carrying `bytes` each way (0 = registers only).
  uint64_t RoundTrip(uint32_t bytes) {
    ukern::IpcMessage msg = ukern::IpcMessage::Short(1);
    if (bytes > 0) {
      msg.has_string = true;
      msg.string = ukern::StringItem{kClientWin, bytes};
    }
    const uint64_t t0 = machine.Now();
    ukern::IpcMessage reply = kernel->Call(client, server, msg);
    if (reply.status != Err::kNone) {
      std::fprintf(stderr, "l4 round trip failed: %s\n", ukvm::ErrName(reply.status));
    }
    return machine.Now() - t0;
  }
};

// --- VMM side ----------------------------------------------------------------

struct VmmSetup {
  hwsim::Machine machine{hwsim::MakeX86Platform(), 16 << 20};
  std::unique_ptr<uvmm::Hypervisor> hv;
  DomainId a, b;
  uint32_t a_to_b_port = 0;  // a's sending port
  uint32_t b_port = 0;       // b's receiving port

  VmmSetup() {
    hv = std::make_unique<uvmm::Hypervisor>(machine);
    a = *hv->CreateDomain("A", 256, true);
    b = *hv->CreateDomain("B", 256, false);
    (void)hv->HcSetUpcall(b, [](uint32_t) { /* payload consumed by caller */ });
    auto unbound = hv->HcEvtchnAllocUnbound(b, a);
    b_port = *unbound;
    a_to_b_port = *hv->HcEvtchnBind(a, b, *unbound);
  }

  // Round trip via grant-copy: A copies `bytes` into B's granted page,
  // notifies; B copies a reply back; A is notified.
  uint64_t RoundTripCopy(uint32_t bytes) {
    const auto page = static_cast<uint32_t>(machine.memory().page_size());
    const uint64_t t0 = machine.Now();
    // Payloads larger than a page need one grant + copy per page, exactly
    // as a real backend would loop over ring descriptors.
    auto CopyLeg = [&](DomainId from, DomainId to) {
      uint32_t left = bytes;
      uvmm::Pfn pfn = 10;
      while (true) {
        auto ref = hv->HcGrantAccess(to, from, pfn, /*writable=*/true);
        const uint32_t chunk = std::min(left, page);
        if (chunk > 0) {
          (void)hv->HcGrantCopy(from, to, *ref, 0, pfn, 0, chunk, /*to_grant=*/true);
          left -= chunk;
        }
        (void)hv->HcGrantEnd(to, *ref);
        if (left == 0) {
          break;
        }
        ++pfn;
      }
    };
    CopyLeg(a, b);
    (void)hv->HcEvtchnSend(a, a_to_b_port);
    CopyLeg(b, a);
    (void)hv->HcEvtchnSend(b, b_port);
    return machine.Now() - t0;
  }

  // Round trip via page flipping: A flips a page to B and B flips one back.
  uint64_t RoundTripFlip(uvmm::Pfn& a_pfn, uvmm::Pfn& b_pfn) {
    const uint64_t t0 = machine.Now();
    auto slot_b = hv->HcGrantTransferSlot(b, a, b_pfn);
    (void)hv->HcGrantTransfer(a, a_pfn, b, *slot_b);
    (void)hv->HcEvtchnSend(a, a_to_b_port);
    auto slot_a = hv->HcGrantTransferSlot(a, b, a_pfn);
    (void)hv->HcGrantTransfer(b, b_pfn, a, *slot_a);
    (void)hv->HcEvtchnSend(b, b_port);
    return machine.Now() - t0;
  }
};

}  // namespace

int main() {
  uharness::PrintHeading("E1", "IPC round-trip cost vs payload size, by mechanism");

  UkSetup uk;
  VmmSetup vmm;

  const std::vector<uint32_t> sizes = {0, 64, 256, 1024, 4096, 16384, 65536};
  uharness::Table table(
      "cycles per round trip (mean of 100)",
      {"payload B", "l4 ipc (regs/string)", "xen evtchn+grant-copy", "xen evtchn+page-flip"});

  for (uint32_t size : sizes) {
    uint64_t l4 = 0, copy = 0, flip = 0;
    for (int r = 0; r < kRounds; ++r) {
      l4 += uk.RoundTrip(size);
    }
    for (int r = 0; r < kRounds; ++r) {
      copy += vmm.RoundTripCopy(size);
    }
    // Page flips move whole pages regardless of payload; pfn pair cycles.
    uvmm::Pfn a_pfn = 20, b_pfn = 20;
    for (int r = 0; r < kRounds; ++r) {
      flip += vmm.RoundTripFlip(a_pfn, b_pfn);
    }
    const uint32_t pages = (size + 4095) / 4096;
    const uint64_t flip_total = (flip / kRounds) * std::max(1u, pages);
    table.AddRow({uharness::FmtInt(size), uharness::FmtInt(l4 / kRounds),
                  uharness::FmtInt(copy / kRounds), uharness::FmtInt(flip_total)});
  }
  table.Print();

  std::printf(
      "\nShape check: the single L4 primitive is the floor at small sizes; copy-based\n"
      "mechanisms scale with bytes; the page flip is size-independent per page, so it\n"
      "only wins once payloads approach page multiples — and it is never free.\n");
  uharness::WriteJsonIfRequested("E1");
  return 0;
}
