// E5 — liability inversion and fault isolation (table).
//
// Paper §3.1: Hand et al. claimed Xen "avoids liability inversion", yet
// Parallax provides "a critical system service for a set of VMMs" — exactly
// a microkernel user-level server. "The argument is made that a failure of
// the Parallax server only affects its clients — exactly the same situation
// as if a server fails in an L4-based system."
//
// This bench kills each service and reports the blast radius in both
// architectures, plus the super-VM case (Dom0 hosting everything).

#include <cstdio>

#include "src/experiments/table.h"
#include "src/stacks/ukernel_stack.h"
#include "src/stacks/vmm_stack.h"
#include "src/workloads/netio.h"

namespace {

using minios::ErrOf;
using ukvm::Err;

struct Probe {
  bool syscalls = false;
  bool network = false;
  bool storage = false;
};

// Probes what still works for one guest.
template <typename StackT>
Probe ProbeGuest(StackT& stack, size_t guest) {
  Probe probe;
  if (guest >= stack.num_guests()) {
    return probe;
  }
  stack.RunAsApp(guest, [&] {
    auto& os = stack.guest_os(guest);
    auto pid = os.Spawn("probe");
    probe.syscalls = os.Null(*pid) == 0;
    std::vector<uint8_t> p = {1, 2, 3};
    probe.network = os.NetSend(*pid, 80, 7, p) == 3;
    const auto fd = os.Create(*pid, "probe-" + std::to_string(stack.machine().Now() % 100000));
    probe.storage = fd >= 0 && os.Write(*pid, fd, p) == 3;
  });
  return probe;
}

const char* Mark(bool ok) { return ok ? "OK" : "DEAD"; }

template <typename StackT, typename KillFn>
void Scenario(uharness::Table& table, const char* arch, const char* scenario, StackT& stack,
              KillFn kill) {
  kill(stack);
  const Probe g0 = ProbeGuest(stack, 0);
  const Probe g1 = ProbeGuest(stack, 1);
  table.AddRow({arch, scenario, Mark(g0.syscalls), Mark(g0.network), Mark(g0.storage),
                Mark(g1.syscalls && g1.network && g1.storage)});
}

}  // namespace

int main() {
  uharness::PrintHeading("E5", "failure blast radius: kill a service, probe every guest");

  uharness::Table table("what still works after the kill (guest 0 probes; guest 1 summary)",
                        {"architecture", "scenario", "g0 syscalls", "g0 network", "g0 storage",
                         "g1 all"});

  // Baselines: nothing killed.
  {
    ustack::UkernelStack::Config c;
    c.num_guests = 2;
    ustack::UkernelStack stack(c);
    Scenario(table, "ukernel", "baseline (nothing killed)", stack, [](auto&) {});
  }
  {
    ustack::VmmStack::Config c;
    c.num_guests = 2;
    c.parallax_storage = true;
    ustack::VmmStack stack(c);
    Scenario(table, "vmm+parallax", "baseline (nothing killed)", stack, [](auto&) {});
  }

  // Storage-service death: the §3.1 comparison.
  {
    ustack::UkernelStack::Config c;
    c.num_guests = 2;
    ustack::UkernelStack stack(c);
    Scenario(table, "ukernel", "kill block server", stack,
             [](ustack::UkernelStack& s) { (void)s.KillBlockServer(); });
  }
  {
    ustack::VmmStack::Config c;
    c.num_guests = 2;
    c.parallax_storage = true;
    ustack::VmmStack stack(c);
    Scenario(table, "vmm+parallax", "kill Parallax storage VM", stack,
             [](ustack::VmmStack& s) { (void)s.KillStorage(); });
  }

  // Network-driver death.
  {
    ustack::UkernelStack::Config c;
    c.num_guests = 2;
    ustack::UkernelStack stack(c);
    Scenario(table, "ukernel", "kill net driver server", stack,
             [](ustack::UkernelStack& s) { (void)s.KillNetServer(); });
  }

  // Full disaggregation: net driver VM + Parallax storage VM, Dom0 empty.
  // Killing the net driver VM must spare storage — the VMM rebuilt as a
  // multiserver system.
  {
    ustack::VmmStack::Config c;
    c.num_guests = 2;
    c.parallax_storage = true;
    c.net_driver_domain = true;
    ustack::VmmStack stack(c);
    Scenario(table, "vmm fully disaggregated", "kill net driver VM", stack,
             [](ustack::VmmStack& s) { (void)s.KillNetDomain(); });
  }

  // The super-VM single point of failure (§2.2): Dom0 hosts drivers AND
  // (without Parallax) the storage backend.
  {
    ustack::VmmStack::Config c;
    c.num_guests = 2;
    ustack::VmmStack stack(c);
    Scenario(table, "vmm (no parallax)", "kill Dom0 (super-VM)", stack,
             [](ustack::VmmStack& s) { (void)s.KillDom0(); });
  }

  // A guest dying must never affect the other.
  {
    ustack::UkernelStack::Config c;
    c.num_guests = 2;
    ustack::UkernelStack stack(c);
    Scenario(table, "ukernel", "kill guest 0", stack,
             [](ustack::UkernelStack& s) { (void)s.KillGuest(0); });
  }
  {
    ustack::VmmStack::Config c;
    c.num_guests = 2;
    ustack::VmmStack stack(c);
    Scenario(table, "vmm", "kill guest 0", stack,
             [](ustack::VmmStack& s) { (void)s.KillGuest(0); });
  }

  table.Print();
  std::printf(
      "\nShape check: storage-service death looks IDENTICAL in both architectures —\n"
      "storage dead, everything else alive (the paper: 'exactly the same situation as\n"
      "if a server fails in an L4-based system'). Only the super-VM configuration\n"
      "(everything in Dom0) turns one failure into a system-wide I/O outage.\n");
  return 0;
}
