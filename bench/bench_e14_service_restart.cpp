// E14 — extension: service restartability and recovery cost.
//
// The flip side of the paper's fault-isolation argument (§3.1): if a
// storage service is "just a server", it can be *replaced*. This bench
// crashes the storage service in both architectures, restarts it, and
// measures the recovery cost in simulated cycles and crossings — the
// microkernel's user-level server versus the VMM's Parallax storage VM
// (which must boot a whole domain). Data must survive in both.

#include <cstdio>

#include "src/experiments/table.h"
#include "src/stacks/ukernel_stack.h"
#include "src/stacks/vmm_stack.h"

namespace {

using minios::SyscallRet;

struct Recovery {
  bool data_survived = false;
  uint64_t restart_cycles = 0;
  uint64_t restart_crossings = 0;
};

template <typename StackT, typename KillFn, typename RestartFn>
Recovery MeasureRecovery(StackT& stack, KillFn kill, RestartFn restart) {
  Recovery r;
  ukvm::ProcessId pid;
  stack.RunAsApp(0, [&] {
    auto& os = stack.guest_os(0);
    pid = *os.Spawn("app");
    const SyscallRet fd = os.Create(pid, "precious");
    std::vector<uint8_t> data = {1, 2, 3, 4};
    (void)os.Write(pid, fd, data);
    (void)os.Close(pid, fd);
  });

  kill(stack);
  const uint64_t t0 = stack.machine().Now();
  const uint64_t x0 = stack.machine().ledger().total_count();
  restart(stack);
  // Recovery is complete when a client can use the service again.
  stack.RunAsApp(0, [&] {
    auto& os = stack.guest_os(0);
    const SyscallRet fd = os.Open(pid, "precious");
    if (fd >= 0) {
      std::vector<uint8_t> back(4);
      r.data_survived = os.Read(pid, fd, back) == 4 &&
                        back == std::vector<uint8_t>({1, 2, 3, 4});
    }
  });
  r.restart_cycles = stack.machine().Now() - t0;
  r.restart_crossings = stack.machine().ledger().total_count() - x0;
  return r;
}

}  // namespace

int main() {
  uharness::PrintHeading("E14", "crash the storage service, replace it, keep the data");

  uharness::Table table("storage-service crash + restart",
                        {"architecture", "replacement unit", "recovery cycles",
                         "crossings during recovery", "data survived"});

  {
    ustack::UkernelStack stack;
    Recovery r = MeasureRecovery(
        stack, [](ustack::UkernelStack& s) { (void)s.KillBlockServer(); },
        [](ustack::UkernelStack& s) { (void)s.RestartBlockServer(); });
    table.AddRow({"ukernel", "user-level server task", uharness::FmtInt(r.restart_cycles),
                  uharness::FmtInt(r.restart_crossings), r.data_survived ? "yes" : "NO"});
  }
  {
    ustack::VmmStack::Config config;
    config.parallax_storage = true;
    ustack::VmmStack stack(config);
    Recovery r = MeasureRecovery(
        stack, [](ustack::VmmStack& s) { (void)s.KillStorage(); },
        [](ustack::VmmStack& s) { (void)s.RestartStorage(); });
    table.AddRow({"vmm + parallax", "whole storage VM", uharness::FmtInt(r.restart_cycles),
                  uharness::FmtInt(r.restart_crossings), r.data_survived ? "yes" : "NO"});
  }
  table.Print();

  std::printf(
      "\nShape check: both architectures can replace the dead service with client data\n"
      "intact — the service really is 'just a server' in both worlds (§3.1). The VMM's\n"
      "replacement unit is a whole domain (memory allocation, event channels, ring\n"
      "reconnects), the microkernel's a task — same semantics, different granularity.\n");
  return 0;
}
