// ukvm-check overhead: what the always-on auditor costs.
//
// The auditor's hooks charge no simulated cycles — by design, enabling it
// must not perturb any measured number (the first table asserts exactly
// that). Its real cost is host CPU time spent in the checks, which bounds
// how much auditing the tier-1 suite can afford to leave default-ON. This
// bench runs the E1 (IPC ping-pong path), E4 (mixed crossing blend), and
// E9 (page-flip receive path) workload shapes with auditing off and on and
// reports the host-time ratio.

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "src/experiments/table.h"
#include "src/stacks/ukernel_stack.h"
#include "src/stacks/vmm_stack.h"
#include "src/workloads/netio.h"
#include "src/workloads/oswork.h"

namespace {

struct RunResult {
  uint64_t sim_cycles = 0;
  double host_ms = 0;
  uint64_t checks_flagged = 0;  // violations (must be 0 on healthy stacks)
};

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

RunResult RunUkernelIpc(bool audit) {
  ustack::UkernelStack::Config config;
  config.audit = audit;
  const auto t0 = std::chrono::steady_clock::now();
  ustack::UkernelStack stack(config);
  auto& os = stack.guest_os(0);
  RunResult r;
  const ukvm::Err err = stack.RunAsApp(0, [&] {
    auto pid = os.Spawn("bench");
    uwork::RunNullSyscalls(stack.machine(), os, *pid, 2000);
  });
  (void)err;
  stack.machine().RunUntilIdle();
  if (stack.auditor() != nullptr) {
    stack.auditor()->Checkpoint("bench-end");
    r.checks_flagged = stack.auditor()->violation_count();
  }
  r.sim_cycles = stack.machine().Now();
  r.host_ms = MsSince(t0);
  return r;
}

RunResult RunVmmMixed(bool audit) {
  ustack::VmmStack::Config config;
  config.audit = audit;
  const auto t0 = std::chrono::steady_clock::now();
  ustack::VmmStack stack(config);
  auto& os = stack.guest_os(0);
  RunResult r;
  const ukvm::Err err = stack.RunAsApp(0, [&] {
    auto pid = os.Spawn("bench");
    uwork::RunMixedWorkload(stack.machine(), os, *pid, 80);
  });
  (void)err;
  stack.machine().RunUntilIdle();
  if (stack.auditor() != nullptr) {
    stack.auditor()->Checkpoint("bench-end");
    r.checks_flagged = stack.auditor()->violation_count();
  }
  r.sim_cycles = stack.machine().Now();
  r.host_ms = MsSince(t0);
  return r;
}

RunResult RunVmmFlipReceive(bool audit) {
  ustack::VmmStack::Config config;
  config.audit = audit;
  config.rx_mode = ustack::RxMode::kPageFlip;
  const auto t0 = std::chrono::steady_clock::now();
  ustack::VmmStack stack(config);
  uwork::WireHost wire(stack.machine(), stack.nic());
  stack.RouteWirePort(40, 0);
  auto& os = stack.guest_os(0);
  RunResult r;
  const ukvm::Err err = stack.RunAsApp(0, [&] {
    auto pid = os.Spawn("bench");
    (void)os.NetBind(*pid, 40);
    wire.StartStream(40, 1024, 20 * hwsim::kCyclesPerUs, 64);
    uwork::RunUdpReceive(stack.machine(), os, *pid, 40, 64, 1'000'000'000ull);
  });
  (void)err;
  stack.machine().RunUntilIdle();
  if (stack.auditor() != nullptr) {
    stack.auditor()->Checkpoint("bench-end");
    r.checks_flagged = stack.auditor()->violation_count();
  }
  r.sim_cycles = stack.machine().Now();
  r.host_ms = MsSince(t0);
  return r;
}

}  // namespace

int main() {
  uharness::PrintHeading("check-overhead",
                         "cost of the always-on isolation auditor (src/check)");

  struct Shape {
    const char* name;
    std::function<RunResult(bool)> run;
  };
  const std::vector<Shape> shapes = {
      {"E1 ipc-pingpong (ukernel, 2000 syscalls)", RunUkernelIpc},
      {"E4 mixed blend (vmm, syscalls+files+udp)", RunVmmMixed},
      {"E9 flip receive (vmm, 64 pkts page-flip)", RunVmmFlipReceive},
  };

  uharness::Table table("audit off vs on",
                        {"workload", "sim cycles (off)", "sim cycles (on)", "sim delta",
                         "host ms (off)", "host ms (on)", "host overhead", "violations"});

  bool sim_clean = true;
  for (const Shape& shape : shapes) {
    // Warm-up run to stabilise host timing (allocator, page cache).
    (void)shape.run(false);
    const RunResult off = shape.run(false);
    const RunResult on = shape.run(true);
    const int64_t delta =
        static_cast<int64_t>(on.sim_cycles) - static_cast<int64_t>(off.sim_cycles);
    if (delta != 0) {
      sim_clean = false;
    }
    const double ratio = off.host_ms > 0 ? on.host_ms / off.host_ms : 0;
    char overhead[32];
    std::snprintf(overhead, sizeof overhead, "%.2fx", ratio);
    char delta_str[32];
    std::snprintf(delta_str, sizeof delta_str, "%lld", static_cast<long long>(delta));
    table.AddRow({shape.name, uharness::FmtInt(off.sim_cycles),
                  uharness::FmtInt(on.sim_cycles), delta_str,
                  uharness::FmtDouble(off.host_ms, 1), uharness::FmtDouble(on.host_ms, 1),
                  overhead, uharness::FmtInt(on.checks_flagged)});
  }
  table.Print();

  std::printf(
      "\nInvariant: auditing must be invisible in simulated time (sim delta == 0 on\n"
      "every row: hooks charge no cycles, flushes have no counters) — %s. The host\n"
      "column is the real price; it is what UKVM_CHECK=OFF buys back.\n",
      sim_clean ? "holds" : "VIOLATED");
  return sim_clean ? 0 : 1;
}
