// E8 — trusted-computing-base size per configuration (table).
//
// Paper §2.1: Goldberg's reliability argument assumes "the VMM is likely to
// be a very small program"; §2.2 counters that real VMM systems hang a
// super-VM (Dom0 running a legacy OS) off the critical path, which
// "re-introduces a large number of software bugs [CYC+01]". Line counts
// below are measured from this repository's own implementation files.

#include <cstdio>

#include "src/core/tcb.h"
#include "src/experiments/table.h"
#include "src/stacks/tcb_lists.h"

namespace {

void PrintReport(const ukvm::TcbReport& report) {
  uharness::Table table(report.configuration + " — component inventory",
                        {"component", "trust class", "lines"});
  for (const auto& row : report.rows) {
    table.AddRow({row.component, ukvm::TrustClassName(row.trust), uharness::FmtInt(row.lines)});
  }
  table.AddRow({"TOTAL privileged", "", uharness::FmtInt(report.privileged_lines)});
  table.AddRow({"TOTAL critical path (priv + critical)", "",
                uharness::FmtInt(report.critical_lines)});
  table.AddRow({"TOTAL", "", uharness::FmtInt(report.total_lines)});
  table.Print();
}

}  // namespace

int main() {
  uharness::PrintHeading("E8", "how much code sits inside each trust boundary");

  const auto native = ukvm::BuildTcbReport("native monolithic OS",
                                           ustack::NativeTcbComponents());
  const auto uk = ukvm::BuildTcbReport("microkernel + user-level servers",
                                       ustack::UkernelTcbComponents());
  const auto vmm = ukvm::BuildTcbReport("VMM + Dom0 (storage in Dom0)",
                                        ustack::VmmTcbComponents(/*parallax_storage=*/false));
  const auto vmm_px = ukvm::BuildTcbReport("VMM + Dom0 + Parallax storage VM",
                                           ustack::VmmTcbComponents(/*parallax_storage=*/true));

  PrintReport(native);
  PrintReport(uk);
  PrintReport(vmm);
  PrintReport(vmm_px);

  uharness::Table summary("summary: lines inside the trust boundary",
                          {"configuration", "privileged", "critical path", "ratio vs ukernel"});
  const double base = static_cast<double>(uk.critical_lines);
  auto Row = [&](const ukvm::TcbReport& r) {
    summary.AddRow({r.configuration, uharness::FmtInt(r.privileged_lines),
                    uharness::FmtInt(r.critical_lines),
                    uharness::FmtDouble(static_cast<double>(r.critical_lines) / base) + "x"});
  };
  Row(uk);
  Row(vmm);
  Row(vmm_px);
  Row(native);
  summary.Print();

  std::printf(
      "\nShape check: the microkernel keeps the smallest privileged core and critical\n"
      "path; the VMM's hypervisor alone is bigger (one mechanism per primitive), and\n"
      "pulling the legacy-OS Dom0 onto the critical path dwarfs both. Moving storage\n"
      "into a Parallax VM shrinks the VMM critical path — disaggregation works, which\n"
      "is precisely the microkernel design point the paper defends.\n");
  return 0;
}
