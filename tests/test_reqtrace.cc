// E22 causal request tracing tests: deterministic byte-identical exports on
// all three stacks, zero simulated-time perturbation, lint-clean DAGs on
// stock protocols, mutation self-tests (a dropped ring-slot stash must flag
// an orphaned handoff; a dropped upcall adoption must leave the request
// unparented), and recovery attribution — a backend killed mid-write must
// surface recovery.* phases on the replayed request's critical path.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/reqtrace.h"
#include "src/experiments/trace_export.h"
#include "src/hw/machine.h"
#include "src/hw/platform.h"
#include "src/stacks/native_stack.h"
#include "src/stacks/ukernel_stack.h"
#include "src/stacks/vmm_stack.h"
#include "src/ukernel/kernel.h"
#include "src/ukernel/task.h"
#include "src/workloads/netio.h"
#include "src/workloads/oswork.h"

namespace {

using ukvm::Err;

// --- Unit-level: core tracer semantics ------------------------------------------

TEST(ReqTrace, DisabledMintsNothing) {
  ukvm::RequestTrace rt;
  const uint32_t name = rt.InternName("x");
  const ukvm::ReqTraceRef ref = rt.BeginRequest(name, ukvm::DomainId{1});
  EXPECT_FALSE(ref.valid());
  rt.EndRequest(ref);  // no-op, must not crash
  EXPECT_EQ(rt.requests_started(), 0u);
  EXPECT_EQ(rt.Lint().completed, 0u);
}

TEST(ReqTrace, CriticalPathPrefersDeepestNode) {
  ukvm::RequestTrace rt;
  uint64_t now = 0;
  rt.SetTimeSource([&now] { return now; });
  ukvm::ReqTraceConfig config;
  config.enabled = true;
  rt.Enable(config);
  const uint32_t origin = rt.InternName("origin");
  const uint32_t dev = rt.InternName("dev");

  const ukvm::ReqTraceRef ref = rt.BeginRequest(origin, ukvm::DomainId{1});
  ASSERT_TRUE(ref.valid());
  // Device leaf covers [100, 400); origin-only time is the rest.
  rt.AddLeafTo(ref, dev, ukvm::ReqNodeKind::kDevice, ukvm::DomainId{2}, 100, 400);
  now = 1000;
  rt.EndRequest(ref);

  ASSERT_EQ(rt.slowest().size(), 1u);
  const ukvm::CompletedRequest& req = rt.slowest()[0];
  EXPECT_EQ(req.t1 - req.t0, 1000u);
  EXPECT_TRUE(req.parented);
  // 300 cycles on the device, 700 origin-only => queue bucket.
  EXPECT_EQ(req.breakdown[static_cast<size_t>(ukvm::ReqNodeKind::kDevice)], 300u);
  EXPECT_EQ(req.breakdown[static_cast<size_t>(ukvm::ReqNodeKind::kQueue)], 700u);
  EXPECT_EQ(req.breakdown[static_cast<size_t>(ukvm::ReqNodeKind::kOrigin)], 0u);
}

TEST(ReqTrace, RingStashConsumePairsAppendQueueNode) {
  ukvm::RequestTrace rt;
  uint64_t now = 0;
  rt.SetTimeSource([&now] { return now; });
  ukvm::ReqTraceConfig config;
  config.enabled = true;
  rt.Enable(config);
  const uint32_t origin = rt.InternName("origin");

  const ukvm::ReqTraceRef ref = rt.BeginRequest(origin, ukvm::DomainId{1});
  {
    ukvm::ReqAdoptScope scope(rt, ref);
    rt.RingStash(0x1234, ukvm::RingSide::kRequest, 0);
  }
  now = 50;
  const ukvm::ReqTraceRef got =
      rt.RingConsume(0x1234, ukvm::RingSide::kRequest, 0, ukvm::DomainId{2});
  EXPECT_EQ(got.trace, ref.trace);
  now = 80;
  rt.EndRequest(ref);
  const ukvm::ReqTraceLint lint = rt.Lint();
  EXPECT_EQ(lint.completed, 1u);
  EXPECT_EQ(lint.fully_parented, 1u);
  EXPECT_EQ(lint.orphaned_handoffs, 0u);
  // The queue node covers the slot's [stash, consume] wait.
  ASSERT_EQ(rt.slowest().size(), 1u);
  EXPECT_EQ(rt.slowest()[0].breakdown[static_cast<size_t>(ukvm::ReqNodeKind::kQueue)], 80u);
}

TEST(ReqTrace, ConsumeInsideStashedWindowWithoutEntryIsOrphan) {
  ukvm::RequestTrace rt;
  uint64_t now = 0;
  rt.SetTimeSource([&now] { return now; });
  ukvm::ReqTraceConfig config;
  config.enabled = true;
  rt.Enable(config);
  const uint32_t origin = rt.InternName("origin");

  // First stash lands at slot 10: the stashed window is dense from there
  // on. Consuming slot 11 with no entry is an orphan (a propagation point
  // was skipped); consuming slot 3 predates the tracer and is benign.
  const ukvm::ReqTraceRef ref = rt.BeginRequest(origin, ukvm::DomainId{1});
  rt.RingStashRef(7, ukvm::RingSide::kRequest, 10, ref);
  rt.RingStashRef(7, ukvm::RingSide::kRequest, 12, ref);
  (void)rt.RingConsume(7, ukvm::RingSide::kRequest, 11, ukvm::DomainId{2});
  EXPECT_EQ(rt.orphaned_handoffs(), 1u);
  (void)rt.RingConsume(7, ukvm::RingSide::kRequest, 3, ukvm::DomainId{2});
  EXPECT_EQ(rt.orphaned_handoffs(), 1u);
}

// --- Stack-level exports ---------------------------------------------------------

struct ReqExport {
  std::string perfetto;
  std::string table;
  std::string report;
  uint64_t sim_cycles = 0;
  ukvm::ReqTraceLint lint;
};

ReqExport HarvestMachine(hwsim::Machine& machine) {
  ReqExport out;
  out.perfetto =
      uharness::RequestTraceJson(machine.reqtrace(), machine.tracer(), hwsim::kCyclesPerUs);
  out.table = uharness::RequestTableJson(machine.reqtrace(), machine.tracer());
  out.report = machine.reqtrace().SlowestReport();
  out.sim_cycles = machine.Now();
  out.lint = machine.reqtrace().Lint();
  return out;
}

ReqExport RunTracedVmm(bool request_trace = true) {
  ustack::VmmStack::Config config;
  config.trace.enabled = true;
  config.request_trace.enabled = request_trace;
  config.rx_mode = ustack::RxMode::kGrantCopy;
  config.io_batch = 4;
  ustack::VmmStack stack(config);
  uwork::WireHost wire(stack.machine(), stack.nic());
  stack.RouteWirePort(40, 0);
  auto& os = stack.guest_os(0);
  (void)stack.RunAsApp(0, [&] {
    auto pid = os.Spawn("app");
    (void)os.NetBind(*pid, 40);
    wire.StartStream(40, 512, 20 * hwsim::kCyclesPerUs, 16);
    uwork::RunUdpReceive(stack.machine(), os, *pid, 40, 16, 1'000'000'000ull);
  });
  auto& front = *stack.guest(0).blkfront;
  std::vector<uint8_t> block(front.block_size(), 0x5A);
  std::vector<uint8_t> back(front.block_size(), 0);
  for (uint64_t lba = 0; lba < 4; ++lba) {
    EXPECT_EQ(front.Write(lba, 1, block), Err::kNone);
    EXPECT_EQ(front.Read(lba, 1, back), Err::kNone);
  }
  stack.machine().RunUntilIdle();
  return HarvestMachine(stack.machine());
}

ReqExport RunTracedUkernel() {
  ustack::UkernelStack::Config config;
  config.trace.enabled = true;
  config.request_trace.enabled = true;
  ustack::UkernelStack stack(config);
  auto& os = stack.guest_os(0);
  (void)stack.RunAsApp(0, [&] {
    auto pid = os.Spawn("app");
    uwork::RunMixedWorkload(stack.machine(), os, *pid, 20);
  });
  stack.machine().RunUntilIdle();
  return HarvestMachine(stack.machine());
}

ReqExport RunTracedNative() {
  ustack::NativeStack::Config config;
  config.trace.enabled = true;
  config.request_trace.enabled = true;
  ustack::NativeStack stack(config);
  auto pid = stack.os().Spawn("app");
  uwork::RunMixedWorkload(stack.machine(), stack.os(), *pid, 20);
  stack.machine().RunUntilIdle();
  return HarvestMachine(stack.machine());
}

TEST(ReqTraceE2E, ExportsAreDeterministicAcrossRuns) {
  // Same config, two fresh stacks: byte-identical dumps, on every stack.
  const ReqExport vmm1 = RunTracedVmm();
  const ReqExport vmm2 = RunTracedVmm();
  EXPECT_EQ(vmm1.perfetto, vmm2.perfetto);
  EXPECT_EQ(vmm1.table, vmm2.table);
  EXPECT_EQ(vmm1.report, vmm2.report);
  EXPECT_EQ(vmm1.sim_cycles, vmm2.sim_cycles);

  const ReqExport uk1 = RunTracedUkernel();
  const ReqExport uk2 = RunTracedUkernel();
  EXPECT_EQ(uk1.perfetto, uk2.perfetto);
  EXPECT_EQ(uk1.table, uk2.table);

  const ReqExport nat1 = RunTracedNative();
  const ReqExport nat2 = RunTracedNative();
  EXPECT_EQ(nat1.perfetto, nat2.perfetto);
  EXPECT_EQ(nat1.table, nat2.table);
}

TEST(ReqTraceE2E, TracingDoesNotPerturbSimulatedTime) {
  const ReqExport off = RunTracedVmm(/*request_trace=*/false);
  const ReqExport on = RunTracedVmm(/*request_trace=*/true);
  EXPECT_EQ(off.sim_cycles, on.sim_cycles);
}

TEST(ReqTraceE2E, StockProtocolsLintClean) {
  for (const ReqExport& e : {RunTracedVmm(), RunTracedUkernel(), RunTracedNative()}) {
    EXPECT_GT(e.lint.completed, 0u);
    EXPECT_EQ(e.lint.completed, e.lint.fully_parented);
    EXPECT_EQ(e.lint.orphaned_handoffs, 0u);
    EXPECT_EQ(e.lint.dropped_nodes, 0u);
    EXPECT_DOUBLE_EQ(e.lint.parented_fraction(), 1.0);
  }
}

TEST(ReqTraceE2E, ExportsCarryRequestStructure) {
  const ReqExport vmm = RunTracedVmm();
  EXPECT_NE(vmm.perfetto.find("\"traceEvents\""), std::string::npos);
  // Cross-domain causal edges exported as Perfetto flow pairs.
  EXPECT_NE(vmm.perfetto.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(vmm.perfetto.find("\"ph\":\"f\""), std::string::npos);
  // The per-request table names origins and carries the lint block.
  EXPECT_NE(vmm.table.find("\"lint\""), std::string::npos);
  EXPECT_NE(vmm.table.find("blk.write"), std::string::npos);
  EXPECT_NE(vmm.table.find("critical_path"), std::string::npos);
}

// --- E23 follow-up: origins the E22 cut missed -----------------------------------

TEST(ReqTraceE2E, BareFaultMintsPageFaultOrigin) {
  // A page fault that arrives outside any traced request (a bare TouchPage)
  // must mint its own "l4.pf" origin so the pager protocol parents into the
  // request DAG instead of vanishing.
  hwsim::Machine machine(hwsim::MakeX86Platform(), 16 << 20);
  ukern::Kernel kernel(machine);
  ukvm::ReqTraceConfig config;
  config.enabled = true;
  machine.EnableRequestTracing(config);

  auto pager_task = kernel.CreateTask(ukvm::ThreadId::Invalid());
  ASSERT_TRUE(pager_task.ok());
  auto pager = kernel.CreateThread(*pager_task, 255, [&](ukvm::ThreadId, ukern::IpcMessage msg) {
    const hwsim::Vaddr fault_va = msg.regs[1];
    auto frame = machine.memory().AllocFrame(*pager_task);
    EXPECT_TRUE(frame.ok());
    ukern::Task* pt = kernel.FindTask(*pager_task);
    const hwsim::Vaddr src = machine.memory().FrameBase(*frame);
    EXPECT_EQ(pt->space.Map(src, *frame, hwsim::PtePerms{true, true}), Err::kNone);
    kernel.mapdb().AddRoot(*pager_task, pt->space.VpnOf(src), *frame);
    ukern::IpcMessage reply;
    reply.map_items.push_back(
        ukern::MapItem{src, fault_va & ~(machine.memory().page_size() - 1), 1, true, false});
    return reply;
  });
  ASSERT_TRUE(pager.ok());
  auto task = kernel.CreateTask(*pager);
  auto thread = kernel.CreateThread(*task, 100, nullptr);
  ASSERT_TRUE(thread.ok());

  ASSERT_EQ(kernel.TouchPage(*thread, 0x555000, /*write=*/true), Err::kNone);
  const ukvm::ReqTraceLint lint = machine.reqtrace().Lint();
  EXPECT_EQ(lint.completed, 1u);
  EXPECT_EQ(lint.fully_parented, 1u);
  EXPECT_NE(machine.reqtrace().SlowestReport().find("l4.pf"), std::string::npos)
      << machine.reqtrace().SlowestReport();

  // An unresolvable fault abandons its origin rather than completing it.
  auto orphan_task = kernel.CreateTask(ukvm::ThreadId::Invalid());
  auto orphan = kernel.CreateThread(*orphan_task, 100, nullptr);
  EXPECT_EQ(kernel.TouchPage(*orphan, 0x700000, false), Err::kFault);
  EXPECT_EQ(machine.reqtrace().Lint().completed, 1u);
}

TEST(ReqTraceE2E, VmmSyscallPathMintsOrigins) {
  // The VMM port's trap-and-reflect syscall path mints an "os.syscall"
  // origin per guest system call, like the ukernel port already does — the
  // E22 cut left the VMM stack's control path origin-less.
  ustack::VmmStack::Config config;
  config.trace.enabled = true;
  config.request_trace.enabled = true;
  // Guest boot mints long blk.write requests; keep enough DAGs that the
  // short syscall requests still appear in the slowest-K table.
  config.request_trace.k_slowest = 64;
  ustack::VmmStack stack(config);
  auto& os = stack.guest_os(0);
  const uint64_t completed_before = stack.machine().reqtrace().Lint().completed;
  (void)stack.RunAsApp(0, [&] {
    auto pid = os.Spawn("app");
    for (int i = 0; i < 8; ++i) {
      (void)os.Null(*pid);
    }
  });
  stack.machine().RunUntilIdle();
  const ukvm::ReqTraceLint lint = stack.machine().reqtrace().Lint();
  // Eight Nulls: at least eight syscall-origin requests completed.
  EXPECT_GE(lint.completed, completed_before + 8);
  EXPECT_EQ(lint.completed, lint.fully_parented);
  const std::string table =
      uharness::RequestTableJson(stack.machine().reqtrace(), stack.machine().tracer());
  EXPECT_NE(table.find("os.syscall"), std::string::npos) << table;
}

// --- Mutation self-tests ---------------------------------------------------------

TEST(ReqTraceMutation, DroppedRingStashFlagsOrphanedHandoff) {
  ustack::VmmStack::Config config;
  config.trace.enabled = true;
  config.request_trace.enabled = true;
  ustack::VmmStack stack(config);
  auto& front = *stack.guest(0).blkfront;
  std::vector<uint8_t> block(front.block_size(), 0x11);
  stack.machine().reqtrace().TestDropNextRingStash();
  (void)front.Write(0, 1, block);
  stack.machine().RunUntilIdle();
  EXPECT_GT(stack.machine().reqtrace().Lint().orphaned_handoffs, 0u);
}

TEST(ReqTraceMutation, DroppedUpcallAdoptionLeavesRequestUnparented) {
  ustack::VmmStack::Config config;
  config.trace.enabled = true;
  config.request_trace.enabled = true;
  ustack::VmmStack stack(config);
  auto& front = *stack.guest(0).blkfront;
  std::vector<uint8_t> block(front.block_size(), 0x22);
  stack.machine().reqtrace().TestDropNextChannelAdopt();
  (void)front.Write(0, 1, block);
  stack.machine().RunUntilIdle();
  const ukvm::ReqTraceLint lint = stack.machine().reqtrace().Lint();
  EXPECT_GT(lint.completed, 0u);
  EXPECT_LT(lint.fully_parented, lint.completed);
  EXPECT_LT(lint.parented_fraction(), 1.0);
}

// --- Recovery attribution --------------------------------------------------------

TEST(ReqTraceRecovery, KilledBackendShowsRecoveryPhasesOnCriticalPath) {
  ustack::VmmStack::Config config;
  config.parallax_storage = true;
  config.crash_recovery = true;
  config.trace.enabled = true;
  config.request_trace.enabled = true;
  ustack::VmmStack stack(config);
  auto& front = *stack.guest(0).blkfront;
  std::vector<uint8_t> block(front.block_size(), 0xAB);

  // Kill the storage VM while the write is waiting on the ring; the write
  // journals, the restart reconnects and replays it.
  stack.machine().ScheduleAfter(30 * hwsim::kCyclesPerUs, [&] { (void)stack.KillStorage(); });
  const Err err = front.Write(0, 1, block);
  EXPECT_NE(err, Err::kNone);
  stack.machine().RunUntilIdle();
  EXPECT_GT(front.journal_depth(), 0u);
  ASSERT_EQ(stack.RestartStorage(), Err::kNone);
  stack.machine().RunUntilIdle();
  EXPECT_EQ(front.journal_depth(), 0u);

  // The replayed request completed, lints clean (its severed handoffs were
  // forgiven), and its retained DAG names the recovery phases.
  const ukvm::ReqTraceLint lint = stack.machine().reqtrace().Lint();
  EXPECT_GT(lint.completed, 0u);
  EXPECT_EQ(lint.orphaned_handoffs, 0u);
  EXPECT_EQ(lint.completed, lint.fully_parented);

  const std::string report = stack.machine().reqtrace().SlowestReport();
  EXPECT_NE(report.find("recovery.detect"), std::string::npos) << report;
  EXPECT_NE(report.find("recovery.reconnect"), std::string::npos) << report;
  EXPECT_NE(report.find("recovery.replay"), std::string::npos) << report;

  // And the recovery time dominates the request's breakdown: the e2e
  // histogram saw it, and some retained request charges kRecovery cycles.
  bool recovery_attributed = false;
  for (const ukvm::CompletedRequest& req : stack.machine().reqtrace().slowest()) {
    if (req.breakdown[static_cast<size_t>(ukvm::ReqNodeKind::kRecovery)] > 0) {
      recovery_attributed = true;
    }
  }
  EXPECT_TRUE(recovery_attributed);
}

}  // namespace
